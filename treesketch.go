// Package treesketch implements TreeSketch synopses for approximate XML
// query answering, reproducing "Approximate XML Query Answers" (Polyzotis,
// Garofalakis, Ioannidis; SIGMOD 2004).
//
// A TreeSketch is a concise graph synopsis of an XML document: a clustering
// of elements in which each cluster stores an element count and each edge
// the average number of children per element. Twig queries evaluated over
// the synopsis yield approximate tree-structured answers and selectivity
// estimates orders of magnitude faster than exact evaluation.
//
// Typical pipeline:
//
//	doc, _ := treesketch.ParseXMLFile("catalog.xml")
//	syn, stats := treesketch.Build(doc, treesketch.BuildOptions{BudgetBytes: 50 << 10})
//	q, _ := treesketch.ParseQuery("//item[//keyword]{//name?}")
//	approx := treesketch.EvaluateApprox(syn, q, treesketch.EvalOptions{})
//	fmt.Println(approx.Selectivity())
//	preview, _ := approx.Expand(0) // approximate nesting tree
//
// The package re-exports the building blocks (documents, count-stable
// summaries, synopses, queries, evaluation results, and the ESD error
// metric) as type aliases; see the internal packages for algorithmic
// detail and DESIGN.md for the system map.
package treesketch

import (
	"io"

	"treesketch/internal/datagen"
	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

// Core data types, re-exported from the implementation packages.
type (
	// Document is a parsed XML document: a rooted node-labeled tree.
	Document = xmltree.Tree
	// Element is one element node of a Document.
	Element = xmltree.Node
	// StableSummary is the lossless count-stable summary (Section 3.2 of
	// the paper) from which TreeSketches are compressed.
	StableSummary = stable.Synopsis
	// Synopsis is a TreeSketch: the compressed graph synopsis.
	Synopsis = sketch.Sketch
	// BuildOptions configures TreeSketch construction (budget, heap
	// bounds).
	BuildOptions = tsbuild.Options
	// BuildStats reports construction telemetry.
	BuildStats = tsbuild.Stats
	// Query is a twig query over the document structure.
	Query = query.Query
	// WorkloadOptions configures random workload generation.
	WorkloadOptions = query.GenOptions
	// Index accelerates exact query evaluation over a document.
	Index = eval.Index
	// ExactResult is the ground-truth answer of a twig query.
	ExactResult = eval.ExactResult
	// ApproxResult is the approximate answer synopsis computed over a
	// TreeSketch.
	ApproxResult = eval.Result
	// EvalOptions configures approximate evaluation.
	EvalOptions = eval.Options
	// ESDNode is a node of the summary DAG compared by the ESD metric.
	ESDNode = esd.Node
	// Maintainer keeps a count-stable summary synchronized with its
	// document under subtree insertions and deletions (an extension beyond
	// the paper's static setting).
	Maintainer = stable.Maintainer
)

// ParseXML reads an XML document from r, keeping only element structure.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseXMLFile reads an XML document from a file.
func ParseXMLFile(path string) (*Document, error) { return xmltree.ParseFile(path) }

// ParseXMLString reads an XML document from a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseString(s) }

// GenerateDataset synthesizes one of the benchmark document families
// ("imdb", "xmark", "swissprot", "dblp") with roughly the given number of
// elements; deterministic in seed.
func GenerateDataset(name string, elements int, seed int64) (*Document, error) {
	d, err := datagen.ParseName(name)
	if err != nil {
		return nil, err
	}
	return datagen.Generate(d, elements, seed), nil
}

// BuildStable computes the unique minimal count-stable summary of doc
// (BuildStable, Figure 4 of the paper). It is lossless: Expand reconstructs
// the document up to sibling order.
func BuildStable(doc *Document) *StableSummary { return stable.Build(doc) }

// Build constructs a TreeSketch of doc within opts.BudgetBytes: it builds
// the count-stable summary and compresses it bottom-up (TSBuild, Figure 5).
func Build(doc *Document, opts BuildOptions) (*Synopsis, BuildStats) {
	return tsbuild.Build(stable.Build(doc), opts)
}

// BuildFromStable compresses an existing count-stable summary, letting
// callers amortize the summary across multiple budgets.
func BuildFromStable(st *StableSummary, opts BuildOptions) (*Synopsis, BuildStats) {
	return tsbuild.Build(st, opts)
}

// NewMaintainer prepares doc for incremental summary maintenance: after
// InsertSubtree / DeleteSubtree updates, Maintainer.Synopsis() returns the
// up-to-date count-stable summary without re-summarizing the document, and
// BuildFromStable compresses it to any budget.
func NewMaintainer(doc *Document) *Maintainer { return stable.NewMaintainer(doc) }

// ParseQuery parses a twig query, e.g. "//a[//b]{//p{//k?},//n?}" (the
// paper's Figure 2 query): '/' and '//' axes, '[path]' existential
// predicates, '{...}' nested child variables, '?' for optional (dashed)
// edges.
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// GenerateWorkload samples n positive twig queries against the document
// summarized by st, following the paper's workload methodology.
func GenerateWorkload(st *StableSummary, n int, opts WorkloadOptions) []*Query {
	return query.Generate(st, n, opts)
}

// NewIndex prepares a document for exact evaluation.
func NewIndex(doc *Document) *Index { return eval.NewIndex(doc) }

// EvaluateExact computes the true nesting tree and binding-tuple count.
func EvaluateExact(ix *Index, q *Query) *ExactResult { return eval.Exact(ix, q) }

// EvaluateApprox computes the approximate answer synopsis over a
// TreeSketch (EvalQuery, Figure 7). The result expands to an approximate
// nesting tree and yields a selectivity estimate.
func EvaluateApprox(s *Synopsis, q *Query, opts EvalOptions) *ApproxResult {
	return eval.Approx(s, q, opts)
}

// EstimateSelectivity is a convenience wrapper: the estimated number of
// binding tuples of q over the synopsis (Section 4.4).
func EstimateSelectivity(s *Synopsis, q *Query) float64 {
	return eval.Approx(s, q, eval.Options{}).Selectivity()
}

// ESD computes the Element Simulation Distance (Section 5) between two
// answer graphs; use AnswerDistance for the common exact-vs-approximate
// comparison. Nil denotes an empty answer.
func ESD(a, b *ESDNode) float64 { return esd.Distance(a, b) }

// AnswerDistance quantifies the quality of an approximate answer: the ESD
// between the true and the approximate nesting tree (lower is better, 0 is
// a perfect structural match).
func AnswerDistance(exact *ExactResult, approx *ApproxResult) float64 {
	return esd.Distance(exact.ESDGraph(), approx.ESDGraph())
}

// RelativeError is the paper's selectivity error measure:
// |truth-est| / max(truth, sanity).
func RelativeError(truth, est, sanity float64) float64 {
	return eval.RelativeError(truth, est, sanity)
}
