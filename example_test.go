package treesketch_test

import (
	"fmt"

	"treesketch"
)

// The full pipeline: parse, summarize, query approximately, compare with
// the exact answer.
func Example() {
	doc, _ := treesketch.ParseXMLString(
		`<bib><author><name/><paper><title/></paper><paper><title/></paper></author>` +
			`<author><name/><paper><title/></paper></author></bib>`)
	syn, _ := treesketch.Build(doc, treesketch.BuildOptions{BudgetBytes: 4096})
	q, _ := treesketch.ParseQuery("//author{//paper}")

	approx := treesketch.EvaluateApprox(syn, q, treesketch.EvalOptions{})
	exact := treesketch.EvaluateExact(treesketch.NewIndex(doc), q)
	fmt.Printf("estimated %.0f, true %.0f, ESD %.0f\n",
		approx.Selectivity(), exact.Tuples, treesketch.AnswerDistance(exact, approx))
	// Output: estimated 3, true 3, ESD 0
}

func ExampleParseQuery() {
	// The paper's Figure 2 query: authors with a book; return their
	// papers' keywords and their name.
	q, _ := treesketch.ParseQuery("//a[//b]{//p{//k?},//n?}")
	fmt.Println(q.NumVars(), "variables:", q)
	// Output: 5 variables: //a[//b]{//p{//k?},//n?}
}

func ExampleBuildStable() {
	doc, _ := treesketch.ParseXMLString(
		`<r><a><b/></a><a><b/></a><a><b/></a></r>`)
	st := treesketch.BuildStable(doc)
	// Three identical a(b) subtrees collapse into one class each for r, a, b.
	fmt.Println(st.NumNodes(), "classes for", doc.Size(), "elements")
	// Output: 3 classes for 7 elements
}

func ExampleApproxResult_Expand() {
	doc, _ := treesketch.ParseXMLString(`<r><a><b/><b/></a><a><b/><b/></a></r>`)
	syn, _ := treesketch.Build(doc, treesketch.BuildOptions{BudgetBytes: 4096})
	q, _ := treesketch.ParseQuery("//a{/b}")
	preview, _ := treesketch.EvaluateApprox(syn, q, treesketch.EvalOptions{}).Expand(0)
	fmt.Println(preview.Compact())
	// Output: r(a(b,b),a(b,b))
}

func ExampleNewMaintainer() {
	doc, _ := treesketch.ParseXMLString(`<r><a><b/></a></r>`)
	m := treesketch.NewMaintainer(doc)

	// A new record arrives; the summary follows incrementally.
	rec, _ := treesketch.ParseXMLString(`<a><b/><b/></a>`)
	m.InsertSubtree(doc.Root, rec)
	fmt.Println("classes after insert:", m.Synopsis().NumNodes())

	// And the old record is retired.
	m.DeleteSubtree(doc.Root.Children[0])
	fmt.Println("classes after delete:", m.Synopsis().NumNodes())
	// Output:
	// classes after insert: 4
	// classes after delete: 3
}

func ExampleGenerateDataset() {
	doc, _ := treesketch.GenerateDataset("dblp", 1000, 42)
	fmt.Println(doc.Root.Label, doc.Size() >= 1000)
	// Output: dblp true
}
