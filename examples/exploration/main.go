// Exploration: the paper's motivating scenario — an analyst explores a
// large XML collection interactively. Queries run first against a small
// TreeSketch for instant approximate previews; only when a preview looks
// interesting is the exact query paid for. The example reports, per query,
// the approximate and exact selectivities, the answer quality (ESD), and
// the speedup.
package main

import (
	"fmt"
	"log"
	"time"

	"treesketch"
)

func main() {
	// A synthetic IMDB-like collection (stand-in for a large repository).
	doc, err := treesketch.GenerateDataset("imdb", 120000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d elements\n", doc.Size())

	// One-time cost: a 20KB synopsis of the whole collection.
	t0 := time.Now()
	syn, stats := treesketch.Build(doc, treesketch.BuildOptions{BudgetBytes: 20 << 10})
	fmt.Printf("synopsis:   %.1f KB built in %v (%d clusters)\n\n",
		float64(stats.FinalBytes)/1024, time.Since(t0).Round(time.Millisecond), stats.FinalNodes)

	ix := treesketch.NewIndex(doc)

	// An exploratory session: successively refined twig queries.
	session := []string{
		"//movie{//actor}",
		"//movie[//rating]{//actor{/role?}}",
		"//movie[//rating]{//keyword,//trivia?}",
		"//show{//season{//episode}}",
		"//show{//episode[/airdate]}",
	}
	for _, src := range session {
		q, err := treesketch.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}

		ta := time.Now()
		approx := treesketch.EvaluateApprox(syn, q, treesketch.EvalOptions{})
		approxTime := time.Since(ta)

		te := time.Now()
		exact := treesketch.EvaluateExact(ix, q)
		exactTime := time.Since(te)

		speedup := float64(exactTime) / float64(approxTime)
		fmt.Printf("query: %s\n", q)
		if approx.Empty {
			fmt.Printf("  preview: EMPTY in %v\n", approxTime.Round(time.Microsecond))
		} else {
			fmt.Printf("  preview: ~%.0f tuples in %v  (exact: %.0f in %v, %.0fx slower)\n",
				approx.Selectivity(), approxTime.Round(time.Microsecond),
				exact.Tuples, exactTime.Round(time.Microsecond), speedup)
			fmt.Printf("  answer quality: ESD %.1f; relative selectivity error %.1f%%\n",
				treesketch.AnswerDistance(exact, approx),
				100*treesketch.RelativeError(exact.Tuples, approx.Selectivity(), 1))
		}
		fmt.Println()
	}
}
