// Optimizer: the selectivity-estimation use case (Section 4.4). A query
// optimizer choosing between twig evaluation orders needs the relative
// selectivities of candidate sub-twigs. The example builds a small
// TreeSketch of a DBLP-like bibliography, estimates the selectivity of a
// workload of twigs, and reports how often the estimate ranks query pairs
// in the same order as the truth — the property a cost-based optimizer
// actually relies on — along with the average relative error.
package main

import (
	"fmt"
	"log"
	"sort"

	"treesketch"
)

func main() {
	doc, err := treesketch.GenerateDataset("dblp", 150000, 3)
	if err != nil {
		log.Fatal(err)
	}
	st := treesketch.BuildStable(doc)
	fmt.Printf("collection: %d elements; stable summary %.1f KB\n",
		doc.Size(), float64(st.SizeBytes())/1024)

	// DBLP is so regular that its stable summary is tiny; compress to half
	// its size so estimates are genuinely approximate.
	syn, stats := treesketch.BuildFromStable(st, treesketch.BuildOptions{BudgetBytes: st.SizeBytes() / 2})
	fmt.Printf("synopsis:   %.1f KB (%d clusters)\n\n", float64(stats.FinalBytes)/1024, stats.FinalNodes)

	ix := treesketch.NewIndex(doc)
	queries := treesketch.GenerateWorkload(st, 60, treesketch.WorkloadOptions{Seed: 9})

	type measured struct {
		q          *treesketch.Query
		truth, est float64
	}
	var items []measured
	var errSum float64
	for _, q := range queries {
		exact := treesketch.EvaluateExact(ix, q)
		if exact.Empty {
			continue
		}
		est := treesketch.EstimateSelectivity(syn, q)
		items = append(items, measured{q, exact.Tuples, est})
		errSum += treesketch.RelativeError(exact.Tuples, est, 1)
	}
	fmt.Printf("workload:   %d non-empty twigs; avg relative error %.1f%%\n",
		len(items), 100*errSum/float64(len(items)))

	// Pairwise ranking agreement: does est order pairs like truth does?
	agree, total := 0, 0
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].truth == items[j].truth {
				continue
			}
			total++
			if (items[i].truth < items[j].truth) == (items[i].est < items[j].est) {
				agree++
			}
		}
	}
	fmt.Printf("ranking:    %d/%d query pairs ordered correctly (%.1f%%)\n\n",
		agree, total, 100*float64(agree)/float64(total))

	// Show the five most and least selective twigs by estimate.
	sort.Slice(items, func(i, j int) bool { return items[i].est < items[j].est })
	fmt.Println("most selective twigs (smallest estimated result):")
	for _, it := range items[:min(5, len(items))] {
		fmt.Printf("  est %10.1f  true %10.0f  %s\n", it.est, it.truth, it.q)
	}
	fmt.Println("least selective twigs (largest estimated result):")
	for _, it := range items[max(0, len(items)-5):] {
		fmt.Printf("  est %10.1f  true %10.0f  %s\n", it.est, it.truth, it.q)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
