// Sweep: how much synopsis is enough? A data engineer provisioning an
// approximate-answering tier needs the budget/quality curve for their
// collection. This example builds TreeSketches of an XMark-like document
// at increasing budgets and reports, per budget: construction time,
// squared clustering error, average selectivity error, and average answer
// ESD over a query workload — the trade-off curve behind the paper's
// Figures 11-13.
package main

import (
	"fmt"
	"log"
	"time"

	"treesketch"
)

func main() {
	doc, err := treesketch.GenerateDataset("xmark", 60000, 11)
	if err != nil {
		log.Fatal(err)
	}
	st := treesketch.BuildStable(doc)
	fmt.Printf("collection: %d elements; lossless stable summary %.1f KB\n\n",
		doc.Size(), float64(st.SizeBytes())/1024)

	ix := treesketch.NewIndex(doc)
	queries := treesketch.GenerateWorkload(st, 40, treesketch.WorkloadOptions{Seed: 4})

	type truth struct {
		q      *treesketch.Query
		exact  *treesketch.ExactResult
		tuples float64
	}
	var workload []truth
	for _, q := range queries {
		ex := treesketch.EvaluateExact(ix, q)
		if !ex.Empty {
			workload = append(workload, truth{q, ex, ex.Tuples})
		}
	}
	fmt.Printf("workload: %d non-empty twig queries\n\n", len(workload))
	fmt.Printf("%-12s %10s %12s %12s %14s %12s\n",
		"Budget(KB)", "Size(KB)", "Build", "SqErr", "SelErr(avg%)", "ESD(avg)")

	for _, budgetKB := range []int{2, 5, 10, 20, 40, 80} {
		t0 := time.Now()
		syn, stats := treesketch.BuildFromStable(st, treesketch.BuildOptions{BudgetBytes: budgetKB << 10})
		build := time.Since(t0)

		var selErr, esdSum float64
		for _, w := range workload {
			approx := treesketch.EvaluateApprox(syn, w.q, treesketch.EvalOptions{})
			selErr += treesketch.RelativeError(w.tuples, approx.Selectivity(), 1)
			esdSum += treesketch.AnswerDistance(w.exact, approx)
		}
		n := float64(len(workload))
		fmt.Printf("%-12d %10.1f %12s %12.1f %14.2f %12.1f\n",
			budgetKB, float64(stats.FinalBytes)/1024, build.Round(time.Millisecond),
			stats.FinalSqErr, 100*selErr/n, esdSum/n)
	}

	fmt.Println("\nreading the curve: pick the smallest budget where SelErr and ESD")
	fmt.Println("flatten out; past the stable-summary size every answer is exact.")
}
