// Quickstart: parse a document, build a TreeSketch, and get an approximate
// answer with a selectivity estimate — the full pipeline in one page.
package main

import (
	"fmt"
	"log"
	"os"

	"treesketch"
)

const doc = `<bib>
  <author><name/><paper><title/><year/><keyword/><keyword/></paper>
          <paper><title/><year/><keyword/></paper><book><title/></book></author>
  <author><name/><paper><title/><year/><keyword/></paper></author>
  <author><name/><book><title/></book></author>
  <author><name/><paper><title/><year/><keyword/><keyword/><keyword/></paper></author>
</bib>`

func main() {
	// 1. Parse the document (only the element structure is kept).
	d, err := treesketch.ParseXMLString(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements, height %d\n", d.Size(), d.Height())

	// 2. Build a TreeSketch synopsis within a space budget. For this tiny
	// document the budget is generous, so the synopsis is lossless.
	syn, stats := treesketch.Build(d, treesketch.BuildOptions{BudgetBytes: 4096})
	fmt.Printf("synopsis: %d clusters, %d bytes, squared error %.1f\n",
		stats.FinalNodes, stats.FinalBytes, stats.FinalSqErr)

	// 3. Ask a twig query: authors who wrote a book, with their papers'
	// keywords and their name (the paper's Figure 2 query shape).
	q, err := treesketch.ParseQuery("//author[//book]{//paper{//keyword?},//name?}")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:    %s\n", q)

	// 4. Approximate answer from the synopsis alone.
	approx := treesketch.EvaluateApprox(syn, q, treesketch.EvalOptions{})
	fmt.Printf("estimated selectivity: %.1f binding tuples\n", approx.Selectivity())

	// 5. Compare against the exact answer.
	exact := treesketch.EvaluateExact(treesketch.NewIndex(d), q)
	fmt.Printf("true selectivity:      %.0f binding tuples\n", exact.Tuples)
	fmt.Printf("answer ESD:            %.2f (0 means structurally exact)\n",
		treesketch.AnswerDistance(exact, approx))

	// 6. Materialize the approximate answer as an XML preview.
	preview, err := approx.Expand(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approximate answer preview:")
	preview.Write(os.Stdout)
}
