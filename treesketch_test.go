package treesketch

import (
	"math"
	"strings"
	"testing"
)

const bibDoc = `<bib>
  <author><name/><paper><title/><year/><keyword/><keyword/></paper><book><title/></book></author>
  <author><name/><paper><title/><year/><keyword/></paper></author>
  <author><name/><book><title/></book></author>
</bib>`

func TestEndToEndPipeline(t *testing.T) {
	doc, err := ParseXMLString(bibDoc)
	if err != nil {
		t.Fatal(err)
	}
	syn, stats := Build(doc, BuildOptions{BudgetBytes: 1 << 20})
	if stats.FinalNodes == 0 {
		t.Fatal("empty synopsis")
	}
	q, err := ParseQuery("//author[//book]{//paper{//keyword?},//name?}")
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(doc)
	exact := EvaluateExact(ix, q)
	approx := EvaluateApprox(syn, q, EvalOptions{})
	if exact.Empty || approx.Empty {
		t.Fatalf("unexpected empty result: exact=%v approx=%v", exact.Empty, approx.Empty)
	}
	// With an uncompressed synopsis the answer is exact.
	if math.Abs(approx.Selectivity()-exact.Tuples) > 1e-9 {
		t.Fatalf("selectivity %g, exact %g", approx.Selectivity(), exact.Tuples)
	}
	if d := AnswerDistance(exact, approx); d > 1e-9 {
		t.Fatalf("AnswerDistance = %g, want 0", d)
	}
}

func TestCompressedSynopsisApproximates(t *testing.T) {
	doc, err := GenerateDataset("imdb", 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := BuildStable(doc)
	syn, stats := BuildFromStable(st, BuildOptions{BudgetBytes: 4 << 10})
	if !stats.BudgetReached && stats.Merges == 0 {
		t.Fatal("no compression happened")
	}
	if syn.SizeBytes() >= st.SizeBytes() {
		t.Fatalf("synopsis %dB not smaller than stable %dB", syn.SizeBytes(), st.SizeBytes())
	}
	ix := NewIndex(doc)
	qs := GenerateWorkload(st, 10, WorkloadOptions{Seed: 2})
	if len(qs) == 0 {
		t.Fatal("no workload queries")
	}
	sane := 0
	for _, q := range qs {
		exact := EvaluateExact(ix, q)
		if exact.Empty {
			continue
		}
		est := EstimateSelectivity(syn, q)
		if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("bad estimate %g for %s", est, q)
		}
		if RelativeError(exact.Tuples, est, 1) < 2.0 {
			sane++
		}
	}
	if sane == 0 {
		t.Fatal("every estimate was wildly off")
	}
}

func TestGenerateDatasetUnknown(t *testing.T) {
	if _, err := GenerateDataset("nope", 10, 0); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestESDNilSemantics(t *testing.T) {
	if ESD(nil, nil) != 0 {
		t.Fatal("ESD(nil,nil) != 0")
	}
}

func TestQueryRoundTripThroughFacade(t *testing.T) {
	src := "//a[//b]{//p{//k?},//n?}"
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != src {
		t.Fatalf("round trip: %q", q.String())
	}
}

func TestStableSummaryLossless(t *testing.T) {
	doc, _ := ParseXMLString(bibDoc)
	st := BuildStable(doc)
	back, err := st.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != doc.Size() {
		t.Fatalf("expanded %d nodes, want %d", back.Size(), doc.Size())
	}
	if !strings.HasPrefix(back.Compact(), "bib(") {
		t.Fatalf("bad expansion: %s", back.Compact())
	}
}

func TestApproxResultExpandPreview(t *testing.T) {
	doc, _ := ParseXMLString(bibDoc)
	syn, _ := Build(doc, BuildOptions{BudgetBytes: 1 << 20})
	q, _ := ParseQuery("//author{//paper}")
	approx := EvaluateApprox(syn, q, EvalOptions{})
	preview, err := approx.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if preview.Size() == 0 {
		t.Fatal("empty preview")
	}
}
