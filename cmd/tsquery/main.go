// Command tsquery evaluates a twig query exactly over an XML document
// and/or approximately over a TreeSketch synopsis, reporting selectivities,
// the ESD between true and approximate answers, and timings.
//
// Usage:
//
//	tsquery -doc xmark.xml -query '//item[//keyword]{//name?}'
//	tsquery -doc xmark.xml -synopsis xmark.syn -query '//person{//watch}'
//	tsquery -doc xmark.xml -budget 20 -query '//item{//mail}' -preview 30
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

func main() {
	var (
		docPath  = flag.String("doc", "", "XML document (required)")
		synPath  = flag.String("synopsis", "", "TreeSketch synopsis file (optional; built on the fly otherwise)")
		budgetKB = flag.Int("budget", 50, "budget in KB when building the synopsis on the fly")
		qsrc     = flag.String("query", "", "twig query, e.g. //a[//b]{//p{//k?},//n?} (required)")
		preview  = flag.Int("preview", 0, "print up to N nodes of the approximate answer")
		topK     = flag.Int("k", 0, "stream at most k result-synopsis nodes best-first and report the truncation bound (0: full batch answer, negative: unbounded streaming)")
		exact    = flag.Bool("exact", true, "also evaluate exactly for comparison")
		paper    = flag.Bool("paper", false, "evaluate with the paper's Figures 7/8 verbatim (disable refinements)")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if *docPath == "" || *qsrc == "" {
		fatal(fmt.Errorf("-doc and -query are required"))
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	doc, err := xmltree.ParseFile(*docPath)
	if err != nil {
		fatal(err)
	}
	q, err := query.Parse(*qsrc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("document: %d elements; query: %s (%d variables)\n", doc.Size(), q, q.NumVars())

	var sk *sketch.Sketch
	if *synPath != "" {
		sk, err = sketch.LoadFile(*synPath)
		if err != nil {
			fatal(err)
		}
	} else {
		st := stable.Build(doc)
		var stats tsbuild.Stats
		sk, stats = tsbuild.Build(st, tsbuild.Options{BudgetBytes: *budgetKB << 10})
		fmt.Printf("synopsis: built %.1f KB in %.2fs\n", float64(stats.FinalBytes)/1024, stats.Elapsed.Seconds())
	}

	t0 := time.Now()
	approx := eval.Approx(sk, q, eval.Options{PaperMode: *paper, Limit: *topK})
	approxTime := time.Since(t0)
	if approx.Empty {
		fmt.Printf("approximate answer: EMPTY (%.3fms)\n", ms(approxTime))
	} else {
		fmt.Printf("approximate answer: %d result clusters, est. selectivity %.1f (%.3fms)\n",
			len(approx.Nodes), approx.Selectivity(), ms(approxTime))
	}
	if tk := approx.TopK; tk != nil {
		bound := fmt.Sprintf("<= %.1f", tk.ErrorBound)
		if math.IsInf(tk.ErrorBound, 1) {
			bound = "unbounded (recursive schema)"
		}
		state := "truncated"
		if tk.Exhausted {
			state = "exhausted (complete answer)"
		}
		fmt.Printf("top-k stream:       expanded %d of %d discovered, emitted mass %.1f, remainder %s, %s\n",
			tk.Expanded, tk.Discovered, tk.EmittedMass, bound, state)
	}

	if *exact {
		t1 := time.Now()
		ix := eval.NewIndex(doc)
		ex := eval.Exact(ix, q)
		exactTime := time.Since(t1)
		if ex.Empty {
			fmt.Printf("exact answer:       EMPTY (%.3fms)\n", ms(exactTime))
		} else {
			fmt.Printf("exact answer:       selectivity %.0f (%.3fms, %.0fx slower)\n",
				ex.Tuples, ms(exactTime), float64(exactTime)/float64(approxTime))
			d := esd.Distance(ex.ESDGraph(), approx.ESDGraph())
			fmt.Printf("answer quality:     ESD = %.2f (0 = structurally exact)\n", d)
		}
	}

	if *preview > 0 && !approx.Empty {
		tree, err := approx.Expand(*preview)
		if err != nil {
			// Cap reached: show what fits.
			fmt.Printf("preview truncated: %v\n", err)
		}
		if tree != nil && tree.Root != nil {
			fmt.Println("approximate answer preview:")
			tree.Write(os.Stdout)
		}
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsquery:", err)
	os.Exit(1)
}
