// Command tsgen synthesizes benchmark XML documents (IMDB, XMark,
// SwissProt, DBLP families; see internal/datagen).
//
// Usage:
//
//	tsgen -dataset xmark -elements 100000 -seed 1 -o xmark.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"treesketch/internal/datagen"
	"treesketch/internal/obs"
	"treesketch/internal/stable"
)

func main() {
	var (
		dataset  = flag.String("dataset", "xmark", "dataset family: imdb, xmark, swissprot, dblp")
		elements = flag.Int("elements", 100000, "approximate number of element nodes")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output XML file (default: <dataset>.xml)")
		stats    = flag.Bool("stats", true, "print document statistics")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	d, err := datagen.ParseName(*dataset)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *dataset + ".xml"
	}
	doc := datagen.Generate(d, *elements, *seed)
	if err := doc.WriteFile(path); err != nil {
		fatal(err)
	}
	if *stats {
		st := stable.Build(doc)
		fmt.Printf("dataset:        %s\n", d)
		fmt.Printf("elements:       %d\n", doc.Size())
		fmt.Printf("file:           %s (%.1f KB)\n", path, float64(doc.XMLSize())/1024)
		fmt.Printf("labels:         %d\n", len(doc.Labels()))
		fmt.Printf("height:         %d\n", doc.Height())
		fmt.Printf("stable summary: %d classes, %.1f KB\n", st.NumNodes(), float64(st.SizeBytes())/1024)
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgen:", err)
	os.Exit(1)
}
