// Command tsinspect prints the contents of a saved TreeSketch synopsis:
// summary statistics, per-label element totals, and (optionally) the full
// node/edge dump.
//
// Usage:
//
//	tsinspect -in xmark.syn
//	tsinspect -in xmark.syn -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"treesketch/internal/obs"
	"treesketch/internal/sketch"
)

func main() {
	var (
		in   = flag.String("in", "", "synopsis file written by tsbuild (required)")
		dump = flag.Bool("dump", false, "print every node and edge")
		top  = flag.Int("top", 10, "show the N labels with most elements")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}
	sk, err := sketch.LoadFile(*in)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("clusters:      %d\n", sk.NumNodes())
	fmt.Printf("edges:         %d\n", sk.NumEdges())
	fmt.Printf("size:          %.1f KB\n", float64(sk.SizeBytes())/1024)
	fmt.Printf("elements:      %d\n", sk.TotalElements())
	fmt.Printf("height:        %d\n", sk.Height())
	fmt.Printf("squared error: %.1f\n", sk.SqErr())
	fmt.Printf("root:          %s (cluster %d)\n", sk.Nodes[sk.Root].Label, sk.Root)

	type lc struct {
		label string
		count int
	}
	counts := sk.LabelCounts()
	list := make([]lc, 0, len(counts))
	for l, c := range counts {
		list = append(list, lc{l, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].count != list[j].count {
			return list[i].count > list[j].count
		}
		return list[i].label < list[j].label
	})
	fmt.Printf("\ntop labels (%d of %d):\n", min(*top, len(list)), len(list))
	for i := 0; i < len(list) && i < *top; i++ {
		fmt.Printf("  %-20s %10d\n", list[i].label, list[i].count)
	}

	if *dump {
		fmt.Println("\nnodes:")
		fmt.Print(sk.Dump())
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsinspect:", err)
	os.Exit(1)
}
