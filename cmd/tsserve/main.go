// Command tsserve is the TreeSketch query-serving daemon: it loads one or
// more synopses (or builds them from documents on the fly) and serves
// selectivity estimates over HTTP with per-request deadlines, bounded
// admission (overload sheds 503 + Retry-After before any eval work),
// request-scoped traces, windowed tail-latency metrics, runtime/GC
// telemetry, and a full debug surface.
//
// Serve a prebuilt synopsis:
//
//	tsserve -synopsis xmark.syn
//	tsserve -synopsis xmark=xmark.syn,imdb=imdb.syn -addr :9000
//
// Build from a document at startup (live by default: the dataset accepts
// POST /update and answers estimates over a tiered base+delta synopsis with
// non-blocking background compaction; -live=false serves a frozen snapshot
// with ?mode=exact support instead):
//
//	tsserve -doc xmark.xml -budget 20
//
// Endpoints:
//
//	GET  /estimate?q=//item[//keyword]{//name?}&dataset=xmark
//	POST /update           insert/delete a subtree in a live dataset
//	GET  /datasets         published dataset names
//	GET /healthz           liveness probe
//	GET /metrics           OpenMetrics exposition (windowed p50/p99, rates)
//	GET /debug/obs         full JSON metrics snapshot
//	GET /debug/obs/slow    the K slowest request traces with phase spans
//	GET /debug/pprof/      CPU/heap/goroutine profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/serve"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tier"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		synopses = flag.String("synopsis", "", "comma-separated synopsis files to serve, each 'name=path' or a bare path (dataset name derived from the filename)")
		docs     = flag.String("doc", "", "comma-separated XML documents to build synopses from at startup, each 'name=path' or a bare path")
		budgetKB = flag.Int("budget", 50, "synopsis budget in KB when building from -doc")
		live     = flag.Bool("live", true, "serve -doc datasets as live tier stacks (POST /update, base+delta estimates, background compaction); false freezes them at startup and enables ?mode=exact")
		deadline = flag.Duration("deadline", serve.DefaultDeadline, "per-request processing deadline (<=0 disables)")
		maxEmb   = flag.Int("max-embeddings", 0, "cap on embedding enumeration per query (0: eval default)")
		maxResB  = flag.Int("max-result-bytes", 0, "per-request answer budget in bytes, served via streaming top-k emission with a truncation bound (0: unbudgeted; ?k= on a request overrides)")
		slowK    = flag.Int("slow", obs.DefaultFlightRecorderSize, "how many slowest request traces /debug/obs/slow retains")

		maxInflight = flag.Int("max-inflight", 0, "admission gate: max concurrently evaluating requests (0: 2x GOMAXPROCS, negative: disabled)")
		maxQueue    = flag.Int("max-queue", 0, "admission gate: max requests waiting for a slot (0: 4x effective -max-inflight, negative: no queue)")
		rtInterval  = flag.Duration("runtime-metrics", obs.DefaultRuntimeInterval, "runtime.* telemetry sampling interval (<=0 disables the collector)")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if *synopses == "" && *docs == "" {
		fatal(errors.New("at least one of -synopsis or -doc is required"))
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	srv := serve.New(serve.Options{
		Deadline:       *deadline,
		MaxEmbeddings:  *maxEmb,
		MaxResultBytes: *maxResB,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		SlowTraces:     *slowK,
	})
	if *rtInterval > 0 {
		rc := obs.StartRuntimeCollector(srv.Registry(), *rtInterval)
		defer rc.Stop()
	}

	for name, path := range parseNamedList(*synopses) {
		sk, err := sketch.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		srv.AddSketch(name, sk)
		fmt.Printf("tsserve: loaded %s from %s (%d nodes)\n", name, path, len(sk.Nodes))
	}
	for name, path := range parseNamedList(*docs) {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			fatal(err)
		}
		if *live {
			// Live dataset: the tier stack owns the document from here on
			// (all mutation goes through POST /update) and estimates answer
			// over its base+delta view. No eval.Index is published — an
			// index over a mutating document would go stale, so ?mode=exact
			// answers a structured 404 for live datasets.
			stk, err := tier.New(doc, tier.Options{
				BudgetBytes: *budgetKB << 10,
				Metrics:     srv.Registry(),
			})
			if err != nil {
				fatal(err)
			}
			srv.AddStack(name, stk)
			fmt.Printf("tsserve: built %s from %s: %d elems, live (POST /update on)\n",
				name, path, doc.Size())
			continue
		}
		st := stable.Build(doc)
		sk, stats := tsbuild.Build(st, tsbuild.Options{BudgetBytes: *budgetKB << 10})
		srv.AddSketch(name, sk)
		// Frozen doc-built datasets keep their index so /estimate?mode=exact
		// can answer true counts; synopsis-only datasets have no document.
		srv.AddIndex(name, eval.NewIndex(doc))
		fmt.Printf("tsserve: built %s from %s: %d elems -> %.1f KB in %.2fs (exact mode on)\n",
			name, path, doc.Size(), float64(stats.FinalBytes)/1024, stats.Elapsed.Seconds())
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("tsserve: serving %v on http://%s (try /estimate?q=...&dataset=..., /metrics, /debug/obs/slow)\n",
		srv.Datasets(), *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case sig := <-sigCh:
		fmt.Printf("tsserve: %v, draining\n", sig)
		// Shed new work first, then let the HTTP server wait out the
		// requests that were already admitted.
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fatal(err)
		}
		completed, shed := srv.DrainStats()
		fmt.Printf("tsserve: drained (%d completed, %d shed)\n", completed, shed)
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

// parseNamedList splits "a=x.syn,b=y.syn" (or bare paths) into name->path.
// Bare paths derive the dataset name from the filename stem.
func parseNamedList(s string) map[string]string {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, path, found := strings.Cut(part, "=")
		if !found {
			path = part
			name = stem(part)
		}
		out[name] = path
	}
	return out
}

// stem is the filename without directory or extension.
func stem(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsserve:", err)
	os.Exit(1)
}
