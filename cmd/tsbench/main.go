// Command tsbench runs the standardized end-to-end benchmark grid and
// maintains the committed performance baseline (BENCH_treesketch.json).
//
// Run the grid and (re)write a baseline file:
//
//	tsbench                      # full grid -> BENCH_treesketch.json
//	tsbench -quick               # reduced CI-scale grid
//	tsbench -quick -o new.json -seed 7
//
// Compare two result files, optionally failing on regressions:
//
//	tsbench -compare BENCH_treesketch.json new.json
//	tsbench -compare BENCH_treesketch.json new.json -gate -slack 5
//
// Verify build determinism (bit-identical synopses at any parallelism):
//
//	tsbench -quick -determinism                 # in-process Workers=1 vs N
//	GOMAXPROCS=1 tsbench -quick -determinism > a
//	GOMAXPROCS=4 tsbench -quick -determinism > b && diff a b
//
// Runs are seeded (default seed 1) and bit-reproducible in their accuracy
// metrics; timing metrics carry per-metric noise thresholds that -slack
// multiplies for noisy CI hardware. See README "Benchmarking" and DESIGN
// §6 for the JSON schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"treesketch/internal/bench"
	"treesketch/internal/obs"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run the reduced-scale grid (CI smoke scale; also the committed baseline's scale)")
		out      = flag.String("o", "BENCH_treesketch.json", "output file for the benchmark result")
		seed     = flag.Int64("seed", bench.DefaultSeed, "run seed; equal seeds give bit-identical accuracy metrics")
		datasets = flag.String("datasets", "", "comma-separated dataset override (default: the config's grid)")
		budgets  = flag.String("budgets", "", "comma-separated synopsis budgets in KB (override)")
		scale    = flag.Int("scale", 0, "document element count (override)")
		workload = flag.Int("workload", 0, "queries per dataset (override)")
		compare  = flag.Bool("compare", false, "compare two result files: tsbench -compare old.json new.json")
		gate     = flag.Bool("gate", false, "with -compare: exit nonzero when any metric regresses beyond threshold")
		slack    = flag.Float64("slack", 1, "with -compare: multiply every noise threshold (use >1 on noisy runners)")
		topk     = flag.Int("topk", 0, "node budget of the streaming top-k eval leg (0: default 16, negative: disable)")
		refEval  = flag.Bool("ref-eval", false, "run approximate-eval legs through the reference (pre-fast-path) enumeration; accuracy metrics must match a fast-path run bit-for-bit")
		olSec    = flag.Float64("openloop-seconds", 0, "open-loop overload leg duration per dataset (0: scale default, negative: disable)")
		olOver   = flag.Float64("openloop-overload", 0, "open-loop offered load as a multiple of measured capacity (0: default 1.5)")
		updOps   = flag.Int("update-ops", 0, "live-update leg: seeded insert/delete ops absorbed per dataset before the accuracy check and compaction (0: scale default, negative: disable)")
		negative = flag.Bool("negative", false, "run the negative-workload leg: guaranteed-empty queries must produce empty approximate answers")
		determ   = flag.Bool("determinism", false, "instead of benchmarking, print per-cell synopsis fingerprints and verify Workers=1 matches Workers=GOMAXPROCS; diff the output across GOMAXPROCS settings to check cross-core determinism")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	// Support flags after the positional file arguments
	// (`-compare old.json new.json -gate`): the stdlib parser stops at
	// the first positional, so interleave parsing until everything is
	// consumed.
	var files []string
	rest := flag.Args()
	for len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			if err := flag.CommandLine.Parse(rest); err != nil {
				fatal(err)
			}
			rest = flag.CommandLine.Args()
			continue
		}
		files = append(files, rest[0])
		rest = rest[1:]
	}

	if *compare {
		if len(files) != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files (old.json new.json), got %d args", len(files)))
		}
		runCompare(files[0], files[1], *gate, *slack)
		return
	}
	if len(files) != 0 {
		fatal(fmt.Errorf("unexpected arguments %v (did you mean -compare?)", files))
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	cfg := bench.FullConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	if *datasets != "" {
		cfg.Datasets = splitList(*datasets)
	}
	if *budgets != "" {
		cfg.BudgetsKB = parseBudgets(*budgets)
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *workload > 0 {
		cfg.WorkloadSize = *workload
	}
	cfg.TopKLimit = *topk
	cfg.ReferenceEval = *refEval
	cfg.OpenLoopSeconds = *olSec
	cfg.OpenLoopOverload = *olOver
	cfg.UpdateOps = *updOps
	cfg.Negative = *negative
	cfg.Out = os.Stdout

	if *determ {
		if err := bench.Determinism(cfg, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	res, err := bench.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if err := res.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: wrote %s (%d benchmarks, seed %d)\n", *out, len(res.Benchmarks), cfg.Seed)
	for _, nameErr := range obs.Default().NameErrors() {
		fmt.Fprintf(os.Stderr, "tsbench: warning: %v\n", nameErr)
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func runCompare(oldPath, newPath string, gate bool, slack float64) {
	base, err := bench.ReadFile(oldPath)
	if err != nil {
		fatal(err)
	}
	cur, err := bench.ReadFile(newPath)
	if err != nil {
		fatal(err)
	}
	c := bench.Compare(base, cur, slack)
	if err := c.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	if err := c.Gate(); err != nil {
		if gate {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tsbench: %v\n(informational: -gate not set)\n", err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseBudgets(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad -budgets entry %q", part))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsbench:", err)
	os.Exit(1)
}
