// Command tsbuild constructs a TreeSketch synopsis from an XML document.
//
// Usage:
//
//	tsbuild -in xmark.xml -budget 50 -o xmark.syn
//	tsbuild -in xmark.xml -budget 50 -v -metrics build-metrics.json -cpuprofile cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

func main() {
	var (
		in       = flag.String("in", "", "input XML document (required)")
		budgetKB = flag.Int("budget", 50, "space budget in KB")
		out      = flag.String("o", "", "output synopsis file (optional)")
		uh       = flag.Int("uh", 10000, "candidate-pool upper bound Uh")
		lh       = flag.Int("lh", 100, "candidate-pool lower bound Lh")
		workers  = flag.Int("workers", 0, "candidate-evaluation workers (0 = GOMAXPROCS); the synopsis is identical for any value")
		increfil = flag.Bool("incremental-refill", false, "restock a depleted pool incrementally instead of the paper's full CreatePool regenerate")
		verbose  = flag.Bool("v", false, "report construction progress milestones")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	doc, err := xmltree.ParseFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("document:       %d elements\n", doc.Size())

	t0 := time.Now()
	st := stable.Build(doc)
	fmt.Printf("stable summary: %d classes, %.1f KB (%.2fs)\n",
		st.NumNodes(), float64(st.SizeBytes())/1024, time.Since(t0).Seconds())

	opts := tsbuild.Options{
		BudgetBytes:       *budgetKB << 10,
		HeapUpper:         *uh,
		HeapLower:         *lh,
		Workers:           *workers,
		IncrementalRefill: *increfil,
	}
	if *verbose {
		opts.Progress = func(e tsbuild.ProgressEvent) {
			if e.Final {
				return // the summary lines below cover the final state
			}
			fmt.Printf("progress:       %d merges, %d pool builds, %.1f KB / %.1f KB, pool %d (%.2fs)\n",
				e.Merges, e.PoolBuilds, float64(e.SizeBytes)/1024, float64(e.BudgetBytes)/1024,
				e.PoolSize, e.Elapsed.Seconds())
		}
	}
	sk, stats := tsbuild.Build(st, opts)
	fmt.Printf("treesketch:     %d clusters, %.1f KB (budget %d KB, reached=%v)\n",
		stats.FinalNodes, float64(stats.FinalBytes)/1024, *budgetKB, stats.BudgetReached)
	fmt.Printf("construction:   %d merges, %d pool builds, %d pair evals, %.2fs\n",
		stats.Merges, stats.PoolBuilds, stats.PairEvals, stats.Elapsed.Seconds())
	fmt.Printf("heap:           %d pushes, %d evictions, max size %d, %d stale pops\n",
		stats.HeapPushes, stats.HeapEvictions, stats.MaxHeapSize, stats.StalePops)
	fmt.Printf("pool upkeep:    %d reevals, %d rebuilds, %d replenishes, %d truncated\n",
		stats.Reevals, stats.PoolRebuilds, stats.PoolReplenishes, stats.PoolTruncated)
	fmt.Printf("squared error:  %.1f\n", stats.FinalSqErr)

	if *out != "" {
		if err := sk.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("saved:          %s\n", *out)
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsbuild:", err)
	os.Exit(1)
}
