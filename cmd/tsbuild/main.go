// Command tsbuild constructs a TreeSketch synopsis from an XML document.
//
// Usage:
//
//	tsbuild -in xmark.xml -budget 50 -o xmark.syn
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

func main() {
	var (
		in       = flag.String("in", "", "input XML document (required)")
		budgetKB = flag.Int("budget", 50, "space budget in KB")
		out      = flag.String("o", "", "output synopsis file (optional)")
		uh       = flag.Int("uh", 10000, "candidate-pool upper bound Uh")
		lh       = flag.Int("lh", 100, "candidate-pool lower bound Lh")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	doc, err := xmltree.ParseFile(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("document:       %d elements\n", doc.Size())

	t0 := time.Now()
	st := stable.Build(doc)
	fmt.Printf("stable summary: %d classes, %.1f KB (%.2fs)\n",
		st.NumNodes(), float64(st.SizeBytes())/1024, time.Since(t0).Seconds())

	sk, stats := tsbuild.Build(st, tsbuild.Options{
		BudgetBytes: *budgetKB << 10,
		HeapUpper:   *uh,
		HeapLower:   *lh,
	})
	fmt.Printf("treesketch:     %d clusters, %.1f KB (budget %d KB, reached=%v)\n",
		stats.FinalNodes, float64(stats.FinalBytes)/1024, *budgetKB, stats.BudgetReached)
	fmt.Printf("construction:   %d merges, %d pool builds, %d pair evals, %.2fs\n",
		stats.Merges, stats.PoolBuilds, stats.PairEvals, stats.Elapsed.Seconds())
	fmt.Printf("squared error:  %.1f\n", stats.FinalSqErr)

	if *out != "" {
		if err := sk.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("saved:          %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsbuild:", err)
	os.Exit(1)
}
