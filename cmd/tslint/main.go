// Command tslint runs the TreeSketch static-analysis suite (internal/lint)
// over the module and exits nonzero when any invariant is violated.
//
// Usage:
//
//	tslint [-json] [-sarif] [-baseline file] [-list] [patterns...]
//
// Patterns follow the usual go tool shape: "./..." (the default) checks the
// whole module, "./internal/eval/..." restricts reported findings to that
// subtree. The module root is located by walking up from the working
// directory to the nearest go.mod. -sarif emits a SARIF 2.1.0 log for code
// scanning upload; -baseline filters findings through a committed allowlist
// (see internal/lint.Baseline) so CI gates only on new violations. Exit
// status is 0 when clean, 1 when findings were reported, and 2 on a load or
// usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"treesketch/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings to filter through")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tslint [-json] [-sarif] [-baseline file] [-list] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "tslint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers := lint.Analyzers()
	if *list {
		sorted := append([]*lint.Analyzer(nil), analyzers...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tslint:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tslint:", err)
		os.Exit(2)
	}

	findings := lint.RunAll(prog, analyzers)
	findings = filterByPatterns(findings, flag.Args())

	if *baselinePath != "" {
		baseline, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tslint:", err)
			os.Exit(2)
		}
		var stale []lint.BaselineEntry
		findings, stale = baseline.Apply(findings)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "tslint: stale baseline entry: [%s] %s: %s (delete it from %s)\n",
				e.Analyzer, e.File, e.Message, *baselinePath)
		}
	}

	if *sarifOut {
		if err := lint.WriteSARIF(os.Stdout, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, "tslint:", err)
			os.Exit(2)
		}
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "tslint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "tslint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterByPatterns keeps findings whose module-relative file path falls
// under one of the given patterns. No patterns, ".", or "./..." mean the
// whole module.
func filterByPatterns(findings []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return findings
	}
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "...")
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.Trim(pat, "/")
		if pat == "" || pat == "." {
			return findings
		}
		prefixes = append(prefixes, pat+"/")
	}
	var out []lint.Finding
	for _, f := range findings {
		for _, prefix := range prefixes {
			if strings.HasPrefix(f.File, prefix) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
