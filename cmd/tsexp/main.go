// Command tsexp regenerates the tables and figures of the paper's
// experimental study (Section 6) on the synthesized datasets.
//
// Usage:
//
//	tsexp -run all
//	tsexp -run table1,fig12 -tx-scale 100000 -workload 1000
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiments: "+strings.Join(exp.ExperimentNames(), ","))
		txScale  = flag.Int("tx-scale", 40000, "elements in the -TX documents (paper: ~100-180k)")
		lgScale  = flag.Int("large-scale", 150000, "elements in the large documents (paper: 237k-2M)")
		workload = flag.Int("workload", 100, "queries per evaluation workload (paper: 1000)")
		budgets  = flag.String("budgets", "10,20,30,40,50", "synopsis budgets in KB")
		xsw      = flag.Int("xs-workload", 100, "sample workload size for twig-XSketch construction")
		seed     = flag.Int64("seed", 1, "run seed")
		csvDir   = flag.String("csv", "", "directory for machine-readable CSV output (optional)")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}

	var budgetList []int
	for _, part := range strings.Split(*budgets, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad -budgets entry %q", part))
		}
		budgetList = append(budgetList, v)
	}

	cfg := exp.Config{
		TXScale:      *txScale,
		LargeScale:   *lgScale,
		WorkloadSize: *workload,
		BudgetsKB:    budgetList,
		XSWorkload:   *xsw,
		Seed:         *seed,
		Out:          os.Stdout,
	}
	if err := exp.Run(strings.Split(*run, ","), cfg, *csvDir); err != nil {
		fatal(err)
	}
	if err := obsFlags.Finish(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsexp:", err)
	os.Exit(1)
}
