module treesketch

go 1.22
