package exp

import (
	"time"

	"treesketch/internal/tsbuild"
	"treesketch/internal/xsketch"
)

// Table1Row reproduces one row of the paper's Table 1: dataset
// characteristics.
type Table1Row struct {
	Name      string
	Elements  int
	FileKB    float64
	StableKB  float64
	StableCls int
}

// Table1 regenerates Table 1 (dataset characteristics) on the synthesized
// datasets.
func (r *Runner) Table1() []Table1Row {
	names := append(append([]string{}, TXNames()...), LargeNames()...)
	rows := make([]Table1Row, 0, len(names))
	for _, name := range names {
		doc := r.Doc(name)
		st := r.Stable(name)
		rows = append(rows, Table1Row{
			Name:      name,
			Elements:  doc.Size(),
			FileKB:    float64(doc.XMLSize()) / 1024,
			StableKB:  float64(st.SizeBytes()) / 1024,
			StableCls: st.NumNodes(),
		})
	}
	r.csvTable1(rows)
	r.printf("\nTable 1: Data set characteristics\n")
	r.printf("%-10s %12s %12s %14s %10s\n", "Data Set", "Elements", "File (KB)", "Stable (KB)", "Classes")
	for _, row := range rows {
		r.printf("%-10s %12d %12.0f %14.1f %10d\n", row.Name, row.Elements, row.FileKB, row.StableKB, row.StableCls)
	}
	return rows
}

// Table2Row reproduces one row of Table 2: workload characteristics.
type Table2Row struct {
	Name      string
	Queries   int
	AvgTuples float64
}

// Table2 regenerates Table 2: the average number of binding tuples per
// workload query on each dataset.
func (r *Runner) Table2() []Table2Row {
	names := append(append([]string{}, TXNames()...), LargeNames()...)
	rows := make([]Table2Row, 0, len(names))
	for _, name := range names {
		w := r.Workload(name, r.cfg.WorkloadSize, false)
		var sum float64
		for _, item := range w {
			sum += item.Truth
		}
		avg := 0.0
		if len(w) > 0 {
			avg = sum / float64(len(w))
		}
		rows = append(rows, Table2Row{Name: name, Queries: len(w), AvgTuples: avg})
	}
	r.csvTable2(rows)
	r.printf("\nTable 2: Workload characteristics\n")
	r.printf("%-10s %10s %22s\n", "Data Set", "Queries", "Avg Binding Tuples")
	for _, row := range rows {
		r.printf("%-10s %10d %22.0f\n", row.Name, row.Queries, row.AvgTuples)
	}
	return rows
}

// Table3Row reproduces one row of Table 3: construction times.
type Table3Row struct {
	Name string
	// TreeSketch is the time to compress the stable summary down to the
	// label-split graph (the paper's worst-case measurement).
	TreeSketch time.Duration
	// TwigXSketch is the time to refine the label-split graph up to a 10KB
	// twig-XSketch with workload-driven evaluation.
	TwigXSketch time.Duration
}

// Table3 regenerates Table 3: TreeSketch vs twig-XSketch construction time
// on the -TX datasets.
func (r *Runner) Table3() []Table3Row {
	rows := make([]Table3Row, 0, 3)
	for _, name := range TXNames() {
		st := r.Stable(name)

		_, tsStats := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})

		w := r.Workload(name, r.cfg.XSWorkload, false)
		sample := make([]xsketch.SampleQuery, len(w))
		for i, item := range w {
			sample[i] = xsketch.SampleQuery{Q: item.Q, Truth: item.Truth}
		}
		_, xsStats := xsketch.Build(st, xsketch.BuildOptions{
			BudgetBytes: 10 * 1024,
			Workload:    sample,
		})

		rows = append(rows, Table3Row{Name: name, TreeSketch: tsStats.Elapsed, TwigXSketch: xsStats.Elapsed})
	}
	r.csvTable3(rows)
	r.printf("\nTable 3: Construction times\n")
	r.printf("%-10s %16s %16s\n", "Data Set", "TreeSketch", "Twig-XSketch")
	for _, row := range rows {
		r.printf("%-10s %16s %16s\n", row.Name, row.TreeSketch.Round(time.Millisecond), row.TwigXSketch.Round(time.Millisecond))
	}
	return rows
}
