package exp

import (
	"bytes"
	"testing"
)

func TestAblationPool(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	rows := r.AblationPool("IMDB-TX", 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Elapsed <= 0 {
			t.Errorf("%s: no time recorded", row.Name)
		}
		if row.PairEvals == 0 {
			t.Errorf("%s: no pair evaluations", row.Name)
		}
	}
	// A huge pool explores at least as many pairs as a tiny one.
	if rows[2].PairEvals < rows[1].PairEvals {
		t.Errorf("huge pool evaluated %d pairs, tiny %d", rows[2].PairEvals, rows[1].PairEvals)
	}
}

func TestNegativeWorkloadAllEmpty(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	rows := r.NegativeWorkload(2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.Queries == 0 {
			t.Errorf("%s: no negative queries generated", row.Name)
			continue
		}
		// The paper's observation: negative queries yield empty
		// approximate answers.
		if row.EmptyAnswers != row.Queries {
			t.Errorf("%s: %d/%d negative answers empty", row.Name, row.EmptyAnswers, row.Queries)
		}
	}
}

func TestRunIncludesExtensions(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run([]string{"negative"}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := Run([]string{"ablation"}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTimes(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.LargeScale = 3000
	rows := NewRunner(cfg).BuildTimes()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Elements <= 0 || row.StableTime <= 0 || row.SketchTime <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Name, row)
		}
		// At this tiny scale the stable summaries may already fit 50KB, so
		// zero merges is legitimate; Merges is asserted at full scale by
		// the harness run itself.
	}
}

func TestRefinementAblation(t *testing.T) {
	var buf bytes.Buffer
	rows := NewRunner(tinyConfig(&buf)).RefinementAblation(2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.QueriesCovered == 0 {
			t.Errorf("%s: no queries covered", row.Dataset)
		}
		if row.RefinedESD < 0 || row.PaperESD < 0 {
			t.Errorf("%s: negative ESD %+v", row.Dataset, row)
		}
	}
}
