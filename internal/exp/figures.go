package exp

import (
	"math"

	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xsketch"
)

// CurvePoint is one point of a budget-sweep curve. XSketch is NaN for
// TreeSketch-only sweeps (Figure 13).
type CurvePoint struct {
	BudgetKB   int
	TreeSketch float64
	XSketch    float64
}

// Curve is a budget sweep for one dataset.
type Curve struct {
	Dataset string
	Points  []CurvePoint
}

// buildTS compresses the dataset's stable summary to the given budget.
func (r *Runner) buildTS(name string, budgetKB int) *sketch.Sketch {
	sk, _ := tsbuild.Build(r.Stable(name), tsbuild.Options{BudgetBytes: budgetKB * 1024})
	return sk
}

// buildXS constructs the baseline twig-XSketch at the given budget.
func (r *Runner) buildXS(name string, budgetKB int) *xsketch.Sketch {
	w := r.Workload(name, r.cfg.XSWorkload, false)
	sample := make([]xsketch.SampleQuery, len(w))
	for i, item := range w {
		sample[i] = xsketch.SampleQuery{Q: item.Q, Truth: item.Truth}
	}
	xs, _ := xsketch.Build(r.Stable(name), xsketch.BuildOptions{
		BudgetBytes: budgetKB * 1024,
		Workload:    sample,
	})
	return xs
}

// Figure11 regenerates one panel of Figure 11: average ESD of approximate
// answers vs synopsis size, TreeSketch against twig-XSketch.
func (r *Runner) Figure11(name string) Curve {
	w := r.Workload(name, r.cfg.WorkloadSize, true)
	hESD := obs.Default().Histogram("eval.approx.esd_error")
	curve := Curve{Dataset: name}
	for _, budgetKB := range r.cfg.BudgetsKB {
		ts := r.buildTS(name, budgetKB)
		xs := r.buildXS(name, budgetKB)
		pairs := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
			if item.Empty {
				return [2]float64{}
			}
			res := eval.Approx(ts, item.Q, eval.Options{})
			ans := xs.ApproxAnswer(item.Q, xsketch.AnswerOptions{Seed: r.cfg.Seed + 7})
			d := esd.Distance(item.TruthESD, res.ESDGraph())
			hESD.Observe(d)
			return [2]float64{
				d,
				esd.Distance(item.TruthESD, ans.ESDGraph()),
			}
		})
		var tsSum, xsSum float64
		n := 0
		for i, item := range w {
			if item.Empty {
				continue
			}
			n++
			tsSum += pairs[i][0]
			xsSum += pairs[i][1]
		}
		p := CurvePoint{BudgetKB: budgetKB, TreeSketch: math.NaN(), XSketch: math.NaN()}
		if n > 0 {
			p.TreeSketch = tsSum / float64(n)
			p.XSketch = xsSum / float64(n)
		}
		curve.Points = append(curve.Points, p)
	}
	r.csvCurve("fig11-"+name, curve, true)
	r.svgCurve("fig11-"+name, "Figure 11: Approximate answers — "+name, "Avg ESD", curve, true)
	r.printFigure("Figure 11: Avg ESD of approximate answers — "+name, "Avg ESD", curve, true)
	return curve
}

// Figure12 regenerates one panel of Figure 12: average relative selectivity
// estimation error vs synopsis size, TreeSketch against twig-XSketch.
func (r *Runner) Figure12(name string) Curve {
	w := r.Workload(name, r.cfg.WorkloadSize, false)
	sanity := SanityBound(w)
	hSel := obs.Default().Histogram("eval.approx.sel_error")
	curve := Curve{Dataset: name}
	for _, budgetKB := range r.cfg.BudgetsKB {
		ts := r.buildTS(name, budgetKB)
		xs := r.buildXS(name, budgetKB)
		pairs := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
			if item.Empty {
				return [2]float64{}
			}
			tsEst := eval.Approx(ts, item.Q, eval.Options{}).Selectivity()
			xsEst := xs.Estimate(item.Q, xsketch.EstOptions{})
			tsErr := eval.RelativeError(item.Truth, tsEst, sanity)
			hSel.Observe(tsErr)
			return [2]float64{
				tsErr,
				eval.RelativeError(item.Truth, xsEst, sanity),
			}
		})
		var tsSum, xsSum float64
		n := 0
		for i, item := range w {
			if item.Empty {
				continue
			}
			n++
			tsSum += pairs[i][0]
			xsSum += pairs[i][1]
		}
		p := CurvePoint{BudgetKB: budgetKB, TreeSketch: math.NaN(), XSketch: math.NaN()}
		if n > 0 {
			p.TreeSketch = 100 * tsSum / float64(n)
			p.XSketch = 100 * xsSum / float64(n)
		}
		curve.Points = append(curve.Points, p)
	}
	r.csvCurve("fig12-"+name, curve, true)
	r.svgCurve("fig12-"+name, "Figure 12: Selectivity estimation — "+name, "Avg Rel Error (%)", curve, true)
	r.printFigure("Figure 12: Avg selectivity error (%) — "+name, "Avg Rel Error (%)", curve, true)
	return curve
}

// Figure13 regenerates Figure 13: TreeSketch selectivity estimation error
// on the large datasets.
func (r *Runner) Figure13() []Curve {
	var curves []Curve
	hSel := obs.Default().Histogram("eval.approx.sel_error")
	for _, name := range LargeNames() {
		w := r.Workload(name, r.cfg.WorkloadSize, false)
		sanity := SanityBound(w)
		curve := Curve{Dataset: name}
		for _, budgetKB := range r.cfg.BudgetsKB {
			ts := r.buildTS(name, budgetKB)
			errs := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
				if item.Empty {
					return [2]float64{}
				}
				est := eval.Approx(ts, item.Q, eval.Options{}).Selectivity()
				err := eval.RelativeError(item.Truth, est, sanity)
				hSel.Observe(err)
				return [2]float64{err, 0}
			})
			var sum float64
			n := 0
			for i, item := range w {
				if item.Empty {
					continue
				}
				n++
				sum += errs[i][0]
			}
			p := CurvePoint{BudgetKB: budgetKB, TreeSketch: math.NaN(), XSketch: math.NaN()}
			if n > 0 {
				p.TreeSketch = 100 * sum / float64(n)
			}
			curve.Points = append(curve.Points, p)
		}
		r.csvCurve("fig13-"+name, curve, false)
		r.svgCurve("fig13-"+name, "Figure 13: TreeSketch error — "+name, "Avg Rel Error (%)", curve, false)
		r.printFigure("Figure 13: TreeSketch estimation error (%) — "+name, "Avg Rel Error (%)", curve, false)
		curves = append(curves, curve)
	}
	return curves
}

func (r *Runner) printFigure(title, metric string, c Curve, withXS bool) {
	r.printf("\n%s\n", title)
	if withXS {
		r.printf("%-12s %18s %18s\n", "Budget (KB)", "TreeSketch", "TwigXSketch")
		for _, p := range c.Points {
			r.printf("%-12d %18.2f %18.2f\n", p.BudgetKB, p.TreeSketch, p.XSketch)
		}
		return
	}
	r.printf("%-12s %18s\n", "Budget (KB)", metric)
	for _, p := range c.Points {
		r.printf("%-12d %18.2f\n", p.BudgetKB, p.TreeSketch)
	}
}
