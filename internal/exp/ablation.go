package exp

import (
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/query"
	"treesketch/internal/tsbuild"
)

// AblationRow reports one TSBuild configuration of the construction
// ablation: how the candidate-pool design choices of Section 4.2 (bounded
// heap size Uh, pool regeneration threshold Lh, windowed pairing for
// oversized groups) trade construction time against synopsis quality.
type AblationRow struct {
	Name      string
	Elapsed   time.Duration
	SqErr     float64
	PairEvals int
	Merges    int
}

// AblationPool sweeps the candidate-pool parameters on one dataset at one
// budget: the paper's default (Uh=10000, Lh=100), a tiny pool, a huge
// pool, and aggressive windowed pairing. Quality is the squared error of
// the resulting synopsis (the workload-independent metric TSBuild
// optimizes).
func (r *Runner) AblationPool(name string, budgetKB int) []AblationRow {
	st := r.Stable(name)
	configs := []struct {
		label string
		opts  tsbuild.Options
	}{
		{"default (Uh=10000,Lh=100)", tsbuild.Options{}},
		{"tiny pool (Uh=200,Lh=20)", tsbuild.Options{HeapUpper: 200, HeapLower: 20}},
		{"huge pool (Uh=100000)", tsbuild.Options{HeapUpper: 100000, HeapLower: 100}},
		{"aggressive windowing (GroupCap=8,W=4)", tsbuild.Options{GroupCap: 8, PairWindow: 4}},
	}
	rows := make([]AblationRow, 0, len(configs))
	for _, c := range configs {
		c.opts.BudgetBytes = budgetKB * 1024
		_, stats := tsbuild.Build(st, c.opts)
		rows = append(rows, AblationRow{
			Name:      c.label,
			Elapsed:   stats.Elapsed,
			SqErr:     stats.FinalSqErr,
			PairEvals: stats.PairEvals,
			Merges:    stats.Merges,
		})
	}
	r.printf("\nAblation: candidate-pool design (%s @ %d KB)\n", name, budgetKB)
	r.printf("%-40s %12s %14s %12s %10s\n", "Configuration", "Time", "SqErr", "PairEvals", "Merges")
	for _, row := range rows {
		r.printf("%-40s %12s %14.1f %12d %10d\n",
			row.Name, row.Elapsed.Round(time.Millisecond), row.SqErr, row.PairEvals, row.Merges)
	}
	return rows
}

// NegativeRow reports the negative-workload sanity check for one dataset.
type NegativeRow struct {
	Name    string
	Queries int
	// EmptyAnswers counts approximate answers correctly reported empty;
	// the paper notes TreeSketches "consistently produce empty answers as
	// approximations" on negative workloads.
	EmptyAnswers int
}

// NegativeWorkload verifies the claim of Section 6.1 on negative
// workloads: queries guaranteed to have empty results (their final step
// targets a label absent from the document) must produce empty
// approximate answers over a compressed TreeSketch.
func (r *Runner) NegativeWorkload(budgetKB int) []NegativeRow {
	rows := make([]NegativeRow, 0, len(TXNames()))
	for _, name := range TXNames() {
		st := r.Stable(name)
		ts := r.buildTS(name, budgetKB)
		qs := query.Generate(st, r.cfg.WorkloadSize, query.GenOptions{Seed: r.cfg.Seed + 3})
		row := NegativeRow{Name: name}
		for _, q := range qs {
			neg := negate(q)
			if neg == nil {
				continue
			}
			row.Queries++
			if eval.Approx(ts, neg, eval.Options{}).Empty {
				row.EmptyAnswers++
			}
		}
		rows = append(rows, row)
	}
	r.printf("\nNegative workloads (budget %d KB)\n", budgetKB)
	r.printf("%-10s %10s %16s\n", "Data Set", "Queries", "Empty Answers")
	for _, row := range rows {
		r.printf("%-10s %10d %16d\n", row.Name, row.Queries, row.EmptyAnswers)
	}
	return rows
}

// negate rewrites a positive query into a guaranteed-negative one by
// retargeting the first required path's final step at a label that cannot
// occur. Returns nil if the query has no required edge.
func negate(q *query.Query) *query.Query {
	neg, err := query.Parse(q.String())
	if err != nil {
		return nil
	}
	for _, e := range neg.Root.Edges {
		if e.Optional {
			continue
		}
		e.Path.Steps[len(e.Path.Steps)-1].Label = "no-such-label"
		return neg
	}
	return nil
}
