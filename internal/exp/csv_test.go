package exp

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.SetCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	rows := r.Table1()
	c := r.Figure12("XMark-TX")

	f, err := os.Open(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(rows)+1 {
		t.Fatalf("table1.csv has %d records, want %d", len(recs), len(rows)+1)
	}
	if recs[0][0] != "dataset" {
		t.Fatalf("header %v", recs[0])
	}
	if el, _ := strconv.Atoi(recs[1][1]); el != rows[0].Elements {
		t.Fatalf("elements %s, want %d", recs[1][1], rows[0].Elements)
	}

	f2, err := os.Open(filepath.Join(dir, "fig12-XMark-TX.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	recs2, err := csv.NewReader(f2).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(c.Points)+1 {
		t.Fatalf("fig12 csv has %d records, want %d", len(recs2), len(c.Points)+1)
	}
	if recs2[0][2] != "twigxsketch" {
		t.Fatalf("header %v", recs2[0])
	}
}

func TestCSVDisabledByDefault(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	r.Table1() // must not panic or write anywhere
}

func TestRunWithCSVDir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := Run([]string{"table1"}, tinyConfig(&buf), dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestSVGExport(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(tinyConfig(nil))
	if err := r.SetCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	c := r.Figure12("IMDB-TX")
	data, err := os.ReadFile(filepath.Join(dir, "fig12-IMDB-TX.svg"))
	if err != nil {
		t.Fatal(err)
	}
	svg := string(data)
	for _, want := range []string{"<svg", "polyline", "TreeSketch", "Twig-XSketch", "Synopsis Size (KB)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if len(c.Points) == 0 {
		t.Fatal("no points")
	}
	// One circle marker per TreeSketch point.
	if got := strings.Count(svg, "<circle"); got != len(c.Points) {
		t.Errorf("markers = %d, want %d", got, len(c.Points))
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		0.5:       "0.50",
		42:        "42",
		1500:      "1.5k",
		2_500_000: "2.5M",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestForEachItemParallelPath(t *testing.T) {
	old := maxWorkers
	maxWorkers = func() int { return 4 }
	defer func() { maxWorkers = old }()

	w := make([]WorkloadItem, 37)
	for i := range w {
		w[i].Truth = float64(i)
	}
	got := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
		return [2]float64{item.Truth * 2, item.Truth * 3}
	})
	for i := range w {
		if got[i][0] != float64(i)*2 || got[i][1] != float64(i)*3 {
			t.Fatalf("item %d = %v", i, got[i])
		}
	}
}
