package exp

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps tests fast: small documents, few queries, two budgets.
func tinyConfig(out *bytes.Buffer) Config {
	var w io.Writer = io.Discard
	if out != nil {
		w = out
	}
	return Config{
		TXScale:      3000,
		LargeScale:   6000,
		WorkloadSize: 12,
		BudgetsKB:    []int{2, 8},
		XSWorkload:   6,
		Seed:         42,
		Out:          w,
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	rows := r.Table1()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (paper's Table 1)", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, row := range rows {
		byName[row.Name] = row
		if row.Elements <= 0 || row.FileKB <= 0 || row.StableKB <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Name, row)
		}
		if row.StableKB*1024 > float64(row.Elements)*12 {
			t.Errorf("%s: stable summary larger than element count suggests", row.Name)
		}
	}
	// The compressibility ordering the paper's Table 1 exhibits: DBLP's
	// stable summary is a far smaller fraction of its document than
	// XMark's.
	dblp := byName["DBLP"].StableKB / float64(byName["DBLP"].Elements)
	xmark := byName["XMark"].StableKB / float64(byName["XMark"].Elements)
	if !(dblp < xmark) {
		t.Errorf("DBLP ratio %.5f should be < XMark %.5f", dblp, xmark)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("no formatted output")
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	rows := r.Table2()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, row := range rows {
		if row.Queries == 0 {
			t.Errorf("%s: empty workload", row.Name)
		}
		if row.AvgTuples <= 0 {
			t.Errorf("%s: avg tuples %g, want > 0 (positive workload)", row.Name, row.AvgTuples)
		}
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	rows := r.Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if row.TreeSketch <= 0 || row.TwigXSketch <= 0 {
			t.Errorf("%s: non-positive times %+v", row.Name, row)
		}
	}
}

func TestFigure11ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	c := r.Figure11("XMark-TX")
	if len(c.Points) != 2 {
		t.Fatalf("points = %d", len(c.Points))
	}
	for _, p := range c.Points {
		if math.IsNaN(p.TreeSketch) || math.IsNaN(p.XSketch) {
			t.Fatalf("NaN point: %+v", p)
		}
		if p.TreeSketch < 0 || p.XSketch < 0 {
			t.Fatalf("negative ESD: %+v", p)
		}
	}
	// The paper's headline: TreeSketch answers are closer to the truth
	// than twig-XSketch answers at the largest budget.
	last := c.Points[len(c.Points)-1]
	if !(last.TreeSketch <= last.XSketch) {
		t.Errorf("TreeSketch ESD %.1f should be <= twig-XSketch %.1f at max budget", last.TreeSketch, last.XSketch)
	}
}

func TestFigure12ErrorsDecreaseWithBudget(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	c := r.Figure12("XMark-TX")
	first, last := c.Points[0], c.Points[len(c.Points)-1]
	if last.TreeSketch > first.TreeSketch+5 {
		t.Errorf("TreeSketch error grew with budget: %.1f%% -> %.1f%%", first.TreeSketch, last.TreeSketch)
	}
	for _, p := range c.Points {
		if p.TreeSketch < 0 || p.TreeSketch > 200 {
			t.Errorf("implausible error %+v", p)
		}
	}
}

func TestFigure13AllLargeDatasets(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.LargeScale = 4000
	r := NewRunner(cfg)
	curves := r.Figure13()
	if len(curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(curves))
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if math.IsNaN(p.TreeSketch) || p.TreeSketch < 0 {
				t.Errorf("%s: bad point %+v", c.Dataset, p)
			}
		}
	}
}

func TestFigure11DeterministicAcrossRuns(t *testing.T) {
	// The parallel workload evaluation must not perturb results: two
	// runners with the same config agree exactly.
	a := NewRunner(tinyConfig(nil)).Figure11("IMDB-TX")
	b := NewRunner(tinyConfig(nil)).Figure11("IMDB-TX")
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run([]string{"table1"}, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("table1 output missing")
	}
	if err := Run([]string{"bogus"}, cfg); err == nil {
		t.Error("Run accepted unknown experiment")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.TXScale = 1500
	cfg.LargeScale = 2000
	cfg.WorkloadSize = 6
	cfg.XSWorkload = 4
	cfg.BudgetsKB = []int{2}
	if err := Run([]string{"all"}, cfg, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3",
		"Figure 11", "Figure 12", "Figure 13",
		"Construction cost", "Ablation", "Negative workloads",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWorkloadCaching(t *testing.T) {
	r := NewRunner(tinyConfig(nil))
	w1 := r.Workload("IMDB-TX", 5, false)
	w2 := r.Workload("IMDB-TX", 5, false)
	if len(w1) == 0 || &w1[0] != &w2[0] {
		t.Error("workload not cached")
	}
}

func TestSanityBound(t *testing.T) {
	w := make([]WorkloadItem, 20)
	for i := range w {
		w[i].Truth = float64(i + 1)
	}
	if got := SanityBound(w); got != 3 {
		t.Errorf("SanityBound = %g, want 3 (10th percentile)", got)
	}
	if got := SanityBound(nil); got != 1 {
		t.Errorf("SanityBound(nil) = %g, want 1", got)
	}
}
