package exp

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// svgCurve renders a budget-sweep curve as a standalone SVG line chart next
// to the CSV output (when a CSV directory is configured). The charts mirror
// the paper's figures: budget (KB) on the x-axis, the metric on a linear
// y-axis, one series per technique.
func (r *Runner) svgCurve(name, title, yLabel string, c Curve, withXS bool) {
	if r.csvDir == "" || len(c.Points) == 0 {
		return
	}
	const (
		w, h                     = 640, 400
		left, right, top, bottom = 70, 20, 40, 50
	)
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)

	xMin := float64(c.Points[0].BudgetKB)
	xMax := xMin
	yMax := 0.0
	for _, p := range c.Points {
		x := float64(p.BudgetKB)
		if x < xMin {
			xMin = x
		}
		if x > xMax {
			xMax = x
		}
		for _, v := range []float64{p.TreeSketch, p.XSketch} {
			if !math.IsNaN(v) && v > yMax {
				yMax = v
			}
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax <= 0 {
		yMax = 1
	}
	yMax *= 1.08 // headroom

	xPos := func(v float64) float64 { return float64(left) + (v-xMin)/(xMax-xMin)*plotW }
	yPos := func(v float64) float64 { return float64(top) + plotH - v/yMax*plotH }

	line := func(vals func(CurvePoint) float64) string {
		var pts []string
		for _, p := range c.Points {
			v := vals(p)
			if math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xPos(float64(p.BudgetKB)), yPos(v)))
		}
		return strings.Join(pts, " ")
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, xmlEscape(title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", left, top, left, h-bottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", left, h-bottom, w-right, h-bottom)

	// X ticks at each budget.
	for _, p := range c.Points {
		x := xPos(float64(p.BudgetKB))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n", x, h-bottom, x, h-bottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%d</text>`+"\n", x, h-bottom+18, p.BudgetKB)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">Synopsis Size (KB)</text>`+"\n", left+int(plotW)/2, h-12)

	// Y ticks: 5 divisions.
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := yPos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n", left-5, y, left, y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n", left, y, w-right, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n", left-8, y+4, fmtTick(v))
	}
	fmt.Fprintf(&b, `<text x="18" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
		top+int(plotH)/2, top+int(plotH)/2, xmlEscape(yLabel))

	// Series.
	fmt.Fprintf(&b, `<polyline fill="none" stroke="#1f77b4" stroke-width="2" points="%s"/>`+"\n", line(func(p CurvePoint) float64 { return p.TreeSketch }))
	for _, p := range c.Points {
		if !math.IsNaN(p.TreeSketch) {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="#1f77b4"/>`+"\n", xPos(float64(p.BudgetKB)), yPos(p.TreeSketch))
		}
	}
	if withXS {
		fmt.Fprintf(&b, `<polyline fill="none" stroke="#d62728" stroke-width="2" stroke-dasharray="6,3" points="%s"/>`+"\n", line(func(p CurvePoint) float64 { return p.XSketch }))
		for _, p := range c.Points {
			if !math.IsNaN(p.XSketch) {
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="6" height="6" fill="#d62728"/>`+"\n", xPos(float64(p.BudgetKB))-3, yPos(p.XSketch)-3)
			}
		}
	}

	// Legend.
	lx, ly := w-right-190, top+8
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#1f77b4" stroke-width="2"/>`+"\n", lx, ly, lx+28, ly)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">TreeSketch</text>`+"\n", lx+34, ly+4)
	if withXS {
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#d62728" stroke-width="2" stroke-dasharray="6,3"/>`+"\n", lx, ly+18, lx+28, ly+18)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">Twig-XSketch</text>`+"\n", lx+34, ly+22)
	}
	b.WriteString("</svg>\n")

	path := filepath.Join(r.csvDir, name+".svg")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		r.printf("svg: %v\n", err)
	}
}

func fmtTick(v float64) string {
	switch {
	case v >= 1000000:
		return fmt.Sprintf("%.1fM", v/1000000)
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 10 || v == 0:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
