package exp

import (
	"runtime"
	"sync/atomic"
	"testing"

	"treesketch/internal/esd"
)

// setWorkers overrides the worker-pool width for the duration of a test.
func setWorkers(t *testing.T, n func() int) {
	t.Helper()
	old := maxWorkers
	maxWorkers = n
	t.Cleanup(func() { maxWorkers = old })
}

// chainESD builds a depth-n linked ESD graph so Size() has real memoization
// work to do at every level.
func chainESD(depth int) *esd.Node {
	n := &esd.Node{Label: "leaf"}
	for i := 0; i < depth; i++ {
		n = &esd.Node{Label: "mid", Edges: []esd.Edge{{Child: n, Mult: 2}}}
	}
	return n
}

// TestForEachItemOrdering checks that results land at the index of their
// item regardless of pool width, so downstream aggregation (CSV rows,
// averages) is deterministic.
func TestForEachItemOrdering(t *testing.T) {
	const n = 64
	items := make([]WorkloadItem, n)
	widths := map[string]func() int{
		"serial":  func() int { return 1 },
		"two":     func() int { return 2 },
		"numcpu":  runtime.NumCPU,
		"surplus": func() int { return n * 4 },
	}
	for name, w := range widths {
		t.Run(name, func(t *testing.T) {
			setWorkers(t, w)
			var calls atomic.Int64
			out := forEachItem(items, func(i int, _ WorkloadItem) [2]float64 {
				calls.Add(1)
				return [2]float64{float64(i), float64(i * i)}
			})
			if got := calls.Load(); got != n {
				t.Fatalf("fn called %d times, want %d", got, n)
			}
			if len(out) != n {
				t.Fatalf("got %d results, want %d", len(out), n)
			}
			for i, r := range out {
				if r != [2]float64{float64(i), float64(i * i)} {
					t.Fatalf("out[%d] = %v: result not at its item's index", i, r)
				}
			}
		})
	}
}

// TestForEachItemEmpty exercises the zero-item and single-item edges.
func TestForEachItemEmpty(t *testing.T) {
	setWorkers(t, runtime.NumCPU)
	if out := forEachItem(nil, func(int, WorkloadItem) [2]float64 {
		t.Fatal("fn called for empty workload")
		return [2]float64{}
	}); len(out) != 0 {
		t.Fatalf("got %d results for empty workload", len(out))
	}
	out := forEachItem([]WorkloadItem{{}}, func(i int, _ WorkloadItem) [2]float64 {
		return [2]float64{7, 7}
	})
	if len(out) != 1 || out[0] != [2]float64{7, 7} {
		t.Fatalf("single-item result = %v", out)
	}
}

// TestForEachItemESDWarmup shares one truth ESD graph across every item and
// calls esd.Size from fn, as the figure runners do. Size memoizes lazily on
// the shared nodes; forEachItem must warm the memo before fanning out or
// this test fails under -race.
func TestForEachItemESDWarmup(t *testing.T) {
	setWorkers(t, func() int { return 8 })
	shared := chainESD(64)
	want := esd.Size(chainESD(64)) // independent copy: the expected value
	items := make([]WorkloadItem, 128)
	for i := range items {
		items[i].TruthESD = shared
	}
	out := forEachItem(items, func(i int, item WorkloadItem) [2]float64 {
		return [2]float64{esd.Size(item.TruthESD), 0}
	})
	for i, r := range out {
		if r[0] != want {
			t.Fatalf("out[%d] size = %g, want %g", i, r[0], want)
		}
	}
}
