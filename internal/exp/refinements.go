package exp

import (
	"math"

	"treesketch/internal/esd"
	"treesketch/internal/eval"
)

// RefinementRow compares the paper-verbatim evaluator (Figures 7/8) with
// the refined default (required-edge conditioning + two-moment branch
// existence; DESIGN.md §2) on one dataset and budget.
type RefinementRow struct {
	Dataset        string
	BudgetKB       int
	PaperESD       float64
	RefinedESD     float64
	PaperSelErr    float64 // percent
	RefinedSelErr  float64 // percent
	QueriesCovered int
}

// RefinementAblation quantifies what the evaluation refinements buy on the
// -TX datasets at the given budget: both modes run the same synopses and
// workloads, so the delta is attributable to the evaluator alone.
func (r *Runner) RefinementAblation(budgetKB int) []RefinementRow {
	rows := make([]RefinementRow, 0, len(TXNames()))
	for _, name := range TXNames() {
		w := r.Workload(name, r.cfg.WorkloadSize, true)
		sanity := SanityBound(w)
		ts := r.buildTS(name, budgetKB)
		vals := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
			if item.Empty {
				return [2]float64{math.NaN(), math.NaN()}
			}
			refined := eval.Approx(ts, item.Q, eval.Options{})
			paper := eval.Approx(ts, item.Q, eval.Options{PaperMode: true})
			return [2]float64{
				esd.Distance(item.TruthESD, refined.ESDGraph()),
				esd.Distance(item.TruthESD, paper.ESDGraph()),
			}
		})
		errs := forEachItem(w, func(i int, item WorkloadItem) [2]float64 {
			if item.Empty {
				return [2]float64{math.NaN(), math.NaN()}
			}
			refined := eval.Approx(ts, item.Q, eval.Options{}).Selectivity()
			paper := eval.Approx(ts, item.Q, eval.Options{PaperMode: true}).Selectivity()
			return [2]float64{
				eval.RelativeError(item.Truth, refined, sanity),
				eval.RelativeError(item.Truth, paper, sanity),
			}
		})
		row := RefinementRow{Dataset: name, BudgetKB: budgetKB}
		for i := range w {
			if w[i].Empty {
				continue
			}
			row.QueriesCovered++
			row.RefinedESD += vals[i][0]
			row.PaperESD += vals[i][1]
			row.RefinedSelErr += 100 * errs[i][0]
			row.PaperSelErr += 100 * errs[i][1]
		}
		if row.QueriesCovered > 0 {
			n := float64(row.QueriesCovered)
			row.RefinedESD /= n
			row.PaperESD /= n
			row.RefinedSelErr /= n
			row.PaperSelErr /= n
		}
		rows = append(rows, row)
	}
	r.printf("\nAblation: evaluation refinements (budget %d KB; Paper = Figures 7/8 verbatim)\n", budgetKB)
	r.printf("%-10s %14s %14s %16s %16s\n", "Data Set", "Paper ESD", "Refined ESD", "Paper Err (%)", "Refined Err (%)")
	for _, row := range rows {
		r.printf("%-10s %14.1f %14.1f %16.2f %16.2f\n",
			row.Dataset, row.PaperESD, row.RefinedESD, row.PaperSelErr, row.RefinedSelErr)
	}
	return rows
}
