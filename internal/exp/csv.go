package exp

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// CSVDir, when set on a Runner via SetCSVDir, receives one CSV file per
// experiment (table1.csv, fig11-XMark-TX.csv, ...), so results can be
// plotted or diffed across runs without scraping the text output.
func (r *Runner) SetCSVDir(dir string) error {
	if dir == "" {
		r.csvDir = ""
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("exp: csv dir: %w", err)
	}
	r.csvDir = dir
	return nil
}

func (r *Runner) writeCSV(name string, header []string, rows [][]string) {
	if r.csvDir == "" {
		return
	}
	path := filepath.Join(r.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		r.printf("csv: %v\n", err)
		return
	}
	w := csv.NewWriter(f)
	w.Write(header)
	for _, row := range rows {
		w.Write(row)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		r.printf("csv: %v\n", err)
	}
	f.Close()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func (r *Runner) csvTable1(rows []Table1Row) {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = []string{row.Name, strconv.Itoa(row.Elements), f64(row.FileKB), f64(row.StableKB), strconv.Itoa(row.StableCls)}
	}
	r.writeCSV("table1", []string{"dataset", "elements", "file_kb", "stable_kb", "classes"}, out)
}

func (r *Runner) csvTable2(rows []Table2Row) {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = []string{row.Name, strconv.Itoa(row.Queries), f64(row.AvgTuples)}
	}
	r.writeCSV("table2", []string{"dataset", "queries", "avg_binding_tuples"}, out)
}

func (r *Runner) csvTable3(rows []Table3Row) {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = []string{row.Name, durS(row.TreeSketch), durS(row.TwigXSketch)}
	}
	r.writeCSV("table3", []string{"dataset", "treesketch_seconds", "twigxsketch_seconds"}, out)
}

func durS(d time.Duration) string { return f64(d.Seconds()) }

func (r *Runner) csvCurve(name string, c Curve, withXS bool) {
	header := []string{"budget_kb", "treesketch"}
	if withXS {
		header = append(header, "twigxsketch")
	}
	rows := make([][]string, len(c.Points))
	for i, p := range c.Points {
		row := []string{strconv.Itoa(p.BudgetKB), f64(p.TreeSketch)}
		if withXS {
			row = append(row, f64(p.XSketch))
		}
		rows[i] = row
	}
	r.writeCSV(name, header, rows)
}
