package exp

import (
	"time"

	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
)

// BuildTimeRow reports summarization and compression cost for one large
// dataset (the paper quotes these alongside Figure 13: 2.5 min – 4 h on
// 2004 hardware).
type BuildTimeRow struct {
	Name       string
	Elements   int
	StableTime time.Duration // document -> count-stable summary
	SketchTime time.Duration // stable summary -> 50KB TreeSketch
	Merges     int
}

// BuildTimes measures end-to-end synopsis construction cost on the large
// datasets: BuildStable over the document plus TSBuild down to a 50KB
// budget.
func (r *Runner) BuildTimes() []BuildTimeRow {
	rows := make([]BuildTimeRow, 0, len(LargeNames()))
	for _, name := range LargeNames() {
		doc := r.Doc(name)
		t0 := time.Now()
		st := stable.Build(doc)
		stableTime := time.Since(t0)
		_, stats := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 50 * 1024})
		rows = append(rows, BuildTimeRow{
			Name:       name,
			Elements:   doc.Size(),
			StableTime: stableTime,
			SketchTime: stats.Elapsed,
			Merges:     stats.Merges,
		})
	}
	r.printf("\nConstruction cost on large data sets (50 KB TreeSketch)\n")
	r.printf("%-10s %12s %14s %14s %10s\n", "Data Set", "Elements", "BuildStable", "TSBuild", "Merges")
	for _, row := range rows {
		r.printf("%-10s %12d %14s %14s %10d\n",
			row.Name, row.Elements, row.StableTime.Round(time.Millisecond),
			row.SketchTime.Round(time.Millisecond), row.Merges)
	}
	return rows
}
