package exp

import (
	"fmt"
	"path/filepath"
	"strings"

	"treesketch/internal/obs"
)

// ExperimentNames lists the runnable experiment identifiers. The first six
// regenerate the paper's tables and figures; "ablation" and "negative" are
// additional studies of the construction design choices and of negative
// workloads (both discussed but not plotted in the paper).
func ExperimentNames() []string {
	return []string{"table1", "table2", "table3", "fig11", "fig12", "fig13", "buildtimes", "ablation", "refinements", "negative", "all"}
}

// Run executes the named experiments ("table1", ..., "fig13", or "all"),
// writing formatted output to cfg.Out. csvDir, when non-empty, receives
// machine-readable CSV files per experiment.
func Run(names []string, cfg Config, csvDir ...string) error {
	r := NewRunner(cfg)
	if len(csvDir) > 0 && csvDir[0] != "" {
		if err := r.SetCSVDir(csvDir[0]); err != nil {
			return err
		}
	}
	if len(names) == 0 {
		names = []string{"all"}
	}
	want := make(map[string]bool)
	for _, n := range names {
		want[strings.ToLower(strings.TrimSpace(n))] = true
	}
	all := want["all"]
	ran := 0
	if all || want["table1"] {
		r.Table1()
		ran++
	}
	if all || want["table2"] {
		r.Table2()
		ran++
	}
	if all || want["table3"] {
		r.Table3()
		ran++
	}
	if all || want["fig11"] {
		for _, name := range []string{"XMark-TX", "IMDB-TX", "SProt-TX"} {
			r.Figure11(name)
		}
		ran++
	}
	if all || want["fig12"] {
		for _, name := range []string{"XMark-TX", "SProt-TX"} {
			r.Figure12(name)
		}
		ran++
	}
	if all || want["fig13"] {
		r.Figure13()
		ran++
	}
	if all || want["buildtimes"] {
		r.BuildTimes()
		ran++
	}
	if all || want["ablation"] {
		r.AblationPool("XMark-TX", 10)
		ran++
	}
	if all || want["refinements"] {
		r.RefinementAblation(10)
		ran++
	}
	if all || want["negative"] {
		r.NegativeWorkload(10)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("exp: no experiment matched %v (want %v)", names, ExperimentNames())
	}
	return r.WriteMetricsSidecar()
}

// WriteMetricsSidecar dumps the obs.Default metrics accumulated by the run
// (build phase timings, eval.approx.* behavior, error-vs-truth histograms)
// as metrics.json next to the experiment CSVs. It is a no-op when no CSV
// directory was configured.
func (r *Runner) WriteMetricsSidecar() error {
	if r.csvDir == "" {
		return nil
	}
	path := filepath.Join(r.csvDir, "metrics.json")
	if err := obs.Default().WriteJSONFile(path); err != nil {
		return fmt.Errorf("exp: metrics sidecar: %w", err)
	}
	r.printf("metrics: %s\n", path)
	return nil
}
