package exp

import (
	"runtime"
	"sync"

	"treesketch/internal/esd"
)

// maxWorkers returns the worker-pool width; overridable in tests so the
// concurrent path is exercised on single-core machines too.
var maxWorkers = runtime.NumCPU

// forEachItem evaluates fn over workload items on a worker pool and returns
// per-item results in order, so aggregation stays deterministic. Truth ESD
// graphs are warmed (subtree sizes memoized) before fan-out: esd.Size
// caches lazily on the shared nodes and must not race.
func forEachItem(w []WorkloadItem, fn func(i int, item WorkloadItem) [2]float64) [][2]float64 {
	for i := range w {
		if w[i].TruthESD != nil {
			esd.Size(w[i].TruthESD)
		}
	}
	out := make([][2]float64, len(w))
	workers := maxWorkers()
	if workers > len(w) {
		workers = len(w)
	}
	if workers <= 1 {
		for i, item := range w {
			out[i] = fn(i, item)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i, w[i])
			}
		}()
	}
	for i := range w {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
