// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's Section 6 on the synthesized datasets (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// outcomes).
//
// The harness scales the paper's setup down by default so a full run
// completes in minutes: smaller documents, 100-query workloads instead of
// 1000, and the same 10-50KB budget grid. All knobs are in Config.
package exp

import (
	"fmt"
	"io"
	"sort"

	"treesketch/internal/datagen"
	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// Config controls experiment scale.
type Config struct {
	// TXScale is the element count of the -TX documents (paper: ~100-180k;
	// default 40000).
	TXScale int
	// LargeScale is the element count of the large documents (paper:
	// 237k-2M; default 150000).
	LargeScale int
	// WorkloadSize is the number of evaluation queries per dataset (paper:
	// 1000; default 100).
	WorkloadSize int
	// BudgetsKB is the synopsis budget grid (paper and default:
	// 10,20,30,40,50).
	BudgetsKB []int
	// XSWorkload is the sample-workload size driving twig-XSketch
	// construction (default 100, matching the evaluation workload scale:
	// workload-driven refinement is the baseline's defining cost).
	XSWorkload int
	// Seed makes the whole run deterministic.
	Seed int64
	// Out receives formatted tables; nil discards them.
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.TXScale <= 0 {
		c.TXScale = 40000
	}
	if c.LargeScale <= 0 {
		c.LargeScale = 150000
	}
	if c.WorkloadSize <= 0 {
		c.WorkloadSize = 100
	}
	if len(c.BudgetsKB) == 0 {
		c.BudgetsKB = []int{10, 20, 30, 40, 50}
	}
	if c.XSWorkload <= 0 {
		c.XSWorkload = 100
	}
	return c
}

// Runner caches documents, summaries, and workloads across experiments.
type Runner struct {
	cfg    Config
	csvDir string

	docs      map[string]*xmltree.Tree
	stables   map[string]*stable.Synopsis
	indexes   map[string]*eval.Index
	workloads map[workloadKey][]WorkloadItem
}

type workloadKey struct {
	name    string
	n       int
	withESD bool
}

// NewRunner returns a harness for the given configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:       cfg.withDefaults(),
		docs:      make(map[string]*xmltree.Tree),
		stables:   make(map[string]*stable.Synopsis),
		indexes:   make(map[string]*eval.Index),
		workloads: make(map[workloadKey][]WorkloadItem),
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// TXNames lists the small-document dataset names used in the comparative
// experiments, in the paper's order.
func TXNames() []string { return []string{"IMDB-TX", "XMark-TX", "SProt-TX"} }

// LargeNames lists the large-document dataset names (Table 1, Figure 13).
func LargeNames() []string { return []string{"IMDB", "XMark", "SProt", "DBLP"} }

// dataset resolves a harness dataset name to its generator and scale.
func (r *Runner) datasetSpec(name string) (datagen.Dataset, int) {
	scale := r.cfg.LargeScale
	base := name
	if len(name) > 3 && name[len(name)-3:] == "-TX" {
		scale = r.cfg.TXScale
		base = name[:len(name)-3]
	}
	switch base {
	case "IMDB":
		return datagen.IMDB, scale
	case "XMark":
		return datagen.XMark, scale
	case "SProt":
		return datagen.SwissProt, scale
	case "DBLP":
		return datagen.DBLP, scale
	}
	panic(fmt.Sprintf("exp: unknown dataset %q", name))
}

// Doc returns (generating and caching) the document for a dataset name.
func (r *Runner) Doc(name string) *xmltree.Tree {
	if t, ok := r.docs[name]; ok {
		return t
	}
	d, scale := r.datasetSpec(name)
	t := datagen.Generate(d, scale, r.cfg.Seed)
	r.docs[name] = t
	return t
}

// Stable returns the cached count-stable summary of a dataset.
func (r *Runner) Stable(name string) *stable.Synopsis {
	if s, ok := r.stables[name]; ok {
		return s
	}
	s := stable.Build(r.Doc(name))
	r.stables[name] = s
	return s
}

// Index returns the cached evaluation index of a dataset.
func (r *Runner) Index(name string) *eval.Index {
	if ix, ok := r.indexes[name]; ok {
		return ix
	}
	ix := eval.NewIndex(r.Doc(name))
	r.indexes[name] = ix
	return ix
}

// WorkloadItem is one evaluation query with its ground truth.
type WorkloadItem struct {
	Q     *query.Query
	Truth float64
	// TruthESD is the consolidated ESD graph of the true nesting tree;
	// populated only when the workload was built with ESD graphs.
	TruthESD *esd.Node
	Empty    bool
}

// Workload builds (and caches) n positive queries with exact
// selectivities; withESD additionally materializes the true answers' ESD
// graphs (needed for the Figure 11 experiments).
func (r *Runner) Workload(name string, n int, withESD bool) []WorkloadItem {
	key := workloadKey{name, n, withESD}
	if w, ok := r.workloads[key]; ok {
		return w
	}
	st := r.Stable(name)
	ix := r.Index(name)
	qs := query.Generate(st, n, query.GenOptions{Seed: r.cfg.Seed + 1})
	out := make([]WorkloadItem, 0, len(qs))
	for _, q := range qs {
		ex := eval.Exact(ix, q)
		item := WorkloadItem{Q: q, Truth: ex.Tuples, Empty: ex.Empty}
		if withESD && !ex.Empty {
			item.TruthESD = ex.ESDGraph()
		}
		out = append(out, item)
	}
	r.workloads[key] = out
	return out
}

// SanityBound returns the 10-percentile of the workload's true counts
// (Section 6.1's s).
func SanityBound(w []WorkloadItem) float64 {
	if len(w) == 0 {
		return 1
	}
	truths := make([]float64, len(w))
	for i := range w {
		truths[i] = w[i].Truth
	}
	sort.Float64s(truths)
	s := truths[len(truths)/10]
	if s < 1 {
		s = 1
	}
	return s
}

func (r *Runner) printf(format string, args ...any) {
	if r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, format, args...)
	}
}
