package stable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"treesketch/internal/xmltree"
)

// Maintainer keeps a count-stable summary synchronized with its document
// under subtree insertions and deletions, without rebuilding from scratch:
// an update reclassifies only the affected subtree plus the ancestor path
// to the root (whose child signatures change). This extends the paper's
// static setting toward live collections; compressed TreeSketches are
// rebuilt from the maintained summary on demand (TSBuild is fast relative
// to re-summarizing the document).
type Maintainer struct {
	doc *xmltree.Tree

	classByKey map[string]int
	classOf    map[int]int // element OID -> class ID
	parentOf   map[int]*xmltree.Node
	member     map[*xmltree.Node]bool // identity set of document elements
	nodes      []*Node                // may contain nils (emptied classes)
	free       []int                  // recycled class IDs
	rootClass  int
}

// NewMaintainer builds the count-stable summary of doc and the auxiliary
// state for incremental updates. The document must not be mutated except
// through the Maintainer.
func NewMaintainer(doc *xmltree.Tree) *Maintainer {
	m := &Maintainer{
		doc:        doc,
		classByKey: make(map[string]int),
		classOf:    make(map[int]int),
		parentOf:   make(map[int]*xmltree.Node),
		member:     make(map[*xmltree.Node]bool),
	}
	if doc.Root == nil {
		m.rootClass = -1
		return m
	}
	doc.PostOrder(func(e *xmltree.Node) {
		m.classify(e)
		m.member[e] = true
	})
	doc.PreOrder(func(e *xmltree.Node) {
		for _, c := range e.Children {
			m.parentOf[c.OID] = e
		}
	})
	m.rootClass = m.classOf[doc.Root.OID]
	return m
}

// Doc returns the maintained document.
func (m *Maintainer) Doc() *xmltree.Tree { return m.doc }

// NumClasses reports the number of live equivalence classes.
func (m *Maintainer) NumClasses() int {
	n := 0
	for _, u := range m.nodes {
		if u != nil {
			n++
		}
	}
	return n
}

// key renders the count-stable signature of an element from its label and
// its children's current classes.
func (m *Maintainer) key(e *xmltree.Node) string {
	sig := make(map[int]int)
	for _, c := range e.Children {
		sig[m.classOf[c.OID]]++
	}
	ids := make([]int, 0, len(sig))
	for id := range sig {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString(e.Label)
	for _, id := range ids {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(id))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(sig[id]))
	}
	return b.String()
}

// classify assigns e to its (possibly new) class, incrementing its count;
// children must already be classified. The second result reports whether a
// new class had to be created for e's signature.
func (m *Maintainer) classify(e *xmltree.Node) (int, bool) {
	k := m.key(e)
	id, ok := m.classByKey[k]
	if !ok {
		id = m.newClass(e, k)
	}
	m.nodes[id].Count++
	m.classOf[e.OID] = id
	return id, !ok
}

func (m *Maintainer) newClass(e *xmltree.Node, k string) int {
	sig := make(map[int]int)
	for _, c := range e.Children {
		sig[m.classOf[c.OID]]++
	}
	edges := make([]Edge, 0, len(sig))
	depth := 0
	for id, count := range sig {
		edges = append(edges, Edge{Child: id, K: count})
		if d := m.nodes[id].depth + 1; d > depth {
			depth = d
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Child < edges[j].Child })

	var id int
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[id] = &Node{ID: id, Label: m.doc.Intern(e.Label), Edges: edges, depth: depth}
	} else {
		id = len(m.nodes)
		m.nodes = append(m.nodes, &Node{ID: id, Label: m.doc.Intern(e.Label), Edges: edges, depth: depth})
	}
	m.classByKey[k] = id
	return id
}

// unclassify removes e from its class, deleting the class when emptied.
func (m *Maintainer) unclassify(e *xmltree.Node) {
	id, ok := m.classOf[e.OID]
	if !ok {
		return
	}
	delete(m.classOf, e.OID)
	u := m.nodes[id]
	u.Count--
	if u.Count == 0 {
		// Reconstruct the key to drop the index entry.
		var b strings.Builder
		b.WriteString(u.Label)
		for _, ed := range u.Edges {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(ed.Child))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(ed.K))
		}
		delete(m.classByKey, b.String())
		m.nodes[id] = nil
		m.free = append(m.free, id)
	}
}

// InsertSubtree clones proto (an independent tree) as a new child of
// parent and updates the summary: the new elements are classified
// bottom-up, then parent and its ancestors are reclassified. Returns the
// adopted root element.
func (m *Maintainer) InsertSubtree(parent *xmltree.Node, proto *xmltree.Tree) (*xmltree.Node, error) {
	if parent == nil || proto == nil || proto.Root == nil {
		return nil, fmt.Errorf("stable: InsertSubtree: nil parent or empty subtree")
	}
	if !m.member[parent] {
		return nil, fmt.Errorf("stable: InsertSubtree: parent %d not part of the maintained document", parent.OID)
	}
	var adopt func(p *xmltree.Node) *xmltree.Node
	adopt = func(p *xmltree.Node) *xmltree.Node {
		n := m.doc.NewNode(p.Label)
		for _, c := range p.Children {
			cc := adopt(c)
			n.Children = append(n.Children, cc)
			m.parentOf[cc.OID] = n
		}
		m.classify(n)
		m.member[n] = true
		return n
	}
	root := adopt(proto.Root)
	parent.Children = append(parent.Children, root)
	m.parentOf[root.OID] = parent
	m.reclassifyAncestors(parent)
	return root, nil
}

// DeleteSubtree detaches the subtree rooted at n from the document and
// updates the summary. The document root cannot be deleted.
func (m *Maintainer) DeleteSubtree(n *xmltree.Node) error {
	if n == nil {
		return fmt.Errorf("stable: DeleteSubtree: nil element")
	}
	if !m.member[n] {
		return fmt.Errorf("stable: DeleteSubtree: element %d not part of the maintained document", n.OID)
	}
	parent := m.parentOf[n.OID]
	if parent == nil {
		return fmt.Errorf("stable: DeleteSubtree: cannot delete the document root")
	}
	idx := -1
	for i, c := range parent.Children {
		if c == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("stable: DeleteSubtree: element %d not under its recorded parent", n.OID)
	}
	parent.Children = append(parent.Children[:idx], parent.Children[idx+1:]...)

	removed := 0
	var drop func(e *xmltree.Node)
	drop = func(e *xmltree.Node) {
		for _, c := range e.Children {
			drop(c)
		}
		m.unclassify(e)
		delete(m.parentOf, e.OID)
		delete(m.member, e)
		removed++
	}
	drop(n)
	m.doc.SetSize(m.doc.Size() - removed)
	m.reclassifyAncestors(parent)
	return nil
}

// reclassifyAncestors walks from e to the root, moving each element to the
// class matching its updated child signature. The walk can stop early once
// an element's class is unchanged (then no ancestor signature changes
// either) — but only when the class genuinely survived: when cur was the
// sole member, unclassify frees its class ID and classify may recycle that
// same ID for the *changed* signature, so an ID match alone does not mean
// the signature (or its depth) is unchanged.
func (m *Maintainer) reclassifyAncestors(e *xmltree.Node) {
	for cur := e; cur != nil; cur = m.parentOf[cur.OID] {
		old := m.classOf[cur.OID]
		m.unclassify(cur)
		if id, created := m.classify(cur); id == old && !created {
			return
		}
	}
	m.rootClass = m.classOf[m.doc.Root.OID]
}

// Synopsis materializes the current summary as a standalone, densely
// numbered count-stable Synopsis (with ClassOf populated).
func (m *Maintainer) Synopsis() *Synopsis {
	s := &Synopsis{Root: -1}
	if m.doc.Root == nil {
		return s
	}
	remap := make(map[int]int)
	for _, u := range m.nodes {
		if u == nil || u.Count == 0 {
			continue
		}
		remap[u.ID] = len(s.Nodes)
		s.Nodes = append(s.Nodes, nil)
	}
	for _, u := range m.nodes {
		if u == nil || u.Count == 0 {
			continue
		}
		v := &Node{
			ID:    remap[u.ID],
			Label: u.Label,
			Count: u.Count,
			depth: u.depth,
			Edges: make([]Edge, len(u.Edges)),
		}
		for i, ed := range u.Edges {
			v.Edges[i] = Edge{Child: remap[ed.Child], K: ed.K}
		}
		sort.Slice(v.Edges, func(a, b int) bool { return v.Edges[a].Child < v.Edges[b].Child })
		s.Nodes[v.ID] = v
	}
	// ClassOf sized to the document's OID space; OIDs of deleted elements
	// keep -1.
	s.ClassOf = make([]int, m.doc.Size())
	for i := range s.ClassOf {
		s.ClassOf[i] = -1
	}
	maxOID := 0
	for oid := range m.classOf {
		if oid > maxOID {
			maxOID = oid
		}
	}
	if maxOID >= len(s.ClassOf) {
		grown := make([]int, maxOID+1)
		for i := range grown {
			grown[i] = -1
		}
		copy(grown, s.ClassOf)
		s.ClassOf = grown
	}
	for oid, id := range m.classOf {
		s.ClassOf[oid] = remap[id]
	}
	s.Root = remap[m.classOf[m.doc.Root.OID]]
	return s
}

// Parent returns the parent element of n in the maintained document, or nil
// when n is the document root or not part of the document.
func (m *Maintainer) Parent(n *xmltree.Node) *xmltree.Node {
	if n == nil {
		return nil
	}
	return m.parentOf[n.OID]
}

// CanonicalSynopsis materializes the current summary with classes numbered
// by first appearance in a document post-order walk — exactly the numbering
// Build assigns. A maintained document therefore yields a synopsis
// bit-identical to rebuilding from scratch, which is what lets compacted
// sketches be fingerprint-compared against a rebuild oracle. ClassOf is
// sized to the document's OID space with -1 for OIDs of deleted elements
// (Build leaves untouched entries at 0, but never has dead OIDs).
func (m *Maintainer) CanonicalSynopsis() *Synopsis {
	s := &Synopsis{Root: -1}
	if m.doc.Root == nil {
		return s
	}
	remap := make(map[int]int, len(m.classByKey))
	s.ClassOf = make([]int, m.doc.OIDSpace())
	for i := range s.ClassOf {
		s.ClassOf[i] = -1
	}
	m.doc.PostOrder(func(e *xmltree.Node) {
		id := m.classOf[e.OID]
		nid, ok := remap[id]
		if !ok {
			u := m.nodes[id]
			nid = len(s.Nodes)
			remap[id] = nid
			v := &Node{
				ID:    nid,
				Label: u.Label,
				Count: u.Count,
				depth: u.depth,
				Edges: make([]Edge, len(u.Edges)),
			}
			// Children precede parents in post-order, so every child class
			// is already remapped.
			for i, ed := range u.Edges {
				v.Edges[i] = Edge{Child: remap[ed.Child], K: ed.K}
			}
			sort.Slice(v.Edges, func(a, b int) bool { return v.Edges[a].Child < v.Edges[b].Child })
			s.Nodes = append(s.Nodes, v)
		}
		s.ClassOf[e.OID] = nid
	})
	s.Root = s.ClassOf[m.doc.Root.OID]
	return s
}
