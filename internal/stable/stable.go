// Package stable implements the count-stable summary of an XML document
// (Section 3.2 and Figure 4 of the paper).
//
// A count-stable summary is a graph synopsis in which every pair of node
// partitions (u, v) is k-stable: each element in extent(u) has exactly k
// child elements in extent(v). By Lemma 3.1 the minimal count-stable
// equivalence relation is unique and the original document can be
// reconstructed from it without error (Expand). The count-stable summary is
// the lossless starting point that TSBuild compresses down to a space
// budget.
package stable

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"treesketch/internal/obs"
	"treesketch/internal/xmltree"
)

// Size model: the footprint charged per synopsis node and edge when
// measuring summaries against a space budget. A node stores a label
// reference and an element count; an edge stores a target reference and a
// child count.
const (
	NodeBytes = 12
	EdgeBytes = 8
)

// Edge is a k-stable synopsis edge: every element of the source partition
// has exactly K children in the Child partition.
type Edge struct {
	Child int // target node ID
	K     int // exact per-element child count; always >= 1
}

// Node is one equivalence class (element partition) of the count-stable
// relation.
type Node struct {
	ID    int
	Label string
	Count int    // |extent|: number of document elements in the class
	Edges []Edge // outgoing edges, sorted by Child

	depth int // longest downward path to a leaf class
}

// Depth returns the node's depth: 0 for a class of leaf elements, otherwise
// 1 + the maximum depth among child classes. Because classes group elements
// with identical sub-tree structure, this equals the depth (in the paper's
// Section 4.2 sense) of every element in the extent.
func (n *Node) Depth() int { return n.depth }

// Synopsis is a count-stable summary. Nodes are indexed by ID; the graph is
// a DAG with a single root class of count 1.
type Synopsis struct {
	Nodes []*Node
	Root  int

	// ClassOf maps a document element OID to the ID of its equivalence
	// class. It is populated by Build and used by tests and by baseline
	// construction; it is nil for synopses produced other than by Build.
	ClassOf []int
}

// Build constructs the unique minimal count-stable summary of t using the
// BuildStable algorithm (Figure 4): a post-order traversal assigns each
// element to a class identified by its label plus the multiset of
// (child class, count) pairs; classes are deduplicated through a hash table.
// Runs in O(|T|) time (amortized).
func Build(t *xmltree.Tree) *Synopsis {
	if t.Root == nil {
		return &Synopsis{Root: -1}
	}
	span := obs.StartSpan("stable.build")
	s := &Synopsis{ClassOf: make([]int, t.OIDSpace())}
	classByKey := make(map[string]int)
	var keyBuf strings.Builder

	t.PostOrder(func(e *xmltree.Node) {
		// Gather (child class, count) signature; children already classified
		// by virtue of post-order.
		sig := make(map[int]int)
		for _, c := range e.Children {
			sig[s.ClassOf[c.OID]]++
		}
		pairs := make([]Edge, 0, len(sig))
		for id, k := range sig {
			pairs = append(pairs, Edge{Child: id, K: k})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Child < pairs[j].Child })

		keyBuf.Reset()
		keyBuf.WriteString(e.Label)
		for _, p := range pairs {
			keyBuf.WriteByte('|')
			keyBuf.WriteString(strconv.Itoa(p.Child))
			keyBuf.WriteByte(':')
			keyBuf.WriteString(strconv.Itoa(p.K))
		}
		key := keyBuf.String()

		id, ok := classByKey[key]
		if !ok {
			id = len(s.Nodes)
			depth := 0
			for _, p := range pairs {
				if d := s.Nodes[p.Child].depth + 1; d > depth {
					depth = d
				}
			}
			s.Nodes = append(s.Nodes, &Node{ID: id, Label: t.Intern(e.Label), Edges: pairs, depth: depth})
			classByKey[key] = id
		}
		s.Nodes[id].Count++
		s.ClassOf[e.OID] = id
	})
	s.Root = s.ClassOf[t.Root.OID]
	span.End()
	reg := obs.Default()
	reg.Counter("stable.build.runs").Inc()
	reg.Counter("stable.build.elements").Add(int64(t.Size()))
	reg.Histogram("stable.build.classes").Observe(float64(len(s.Nodes)))
	return s
}

// NumNodes reports the number of classes in the synopsis.
func (s *Synopsis) NumNodes() int { return len(s.Nodes) }

// NumEdges reports the total number of synopsis edges.
func (s *Synopsis) NumEdges() int {
	n := 0
	for _, u := range s.Nodes {
		n += len(u.Edges)
	}
	return n
}

// SizeBytes reports the storage footprint of the synopsis under the package
// size model.
func (s *Synopsis) SizeBytes() int {
	return s.NumNodes()*NodeBytes + s.NumEdges()*EdgeBytes
}

// Height returns the maximum node depth (the depth of the root class), or
// -1 for an empty synopsis.
func (s *Synopsis) Height() int {
	if s.Root < 0 {
		return -1
	}
	return s.Nodes[s.Root].depth
}

// TotalElements reports the number of document elements summarized, i.e. the
// sum of class counts.
func (s *Synopsis) TotalElements() int {
	n := 0
	for _, u := range s.Nodes {
		n += u.Count
	}
	return n
}

// Parents returns, for every node ID, the IDs of nodes with an edge into it.
func (s *Synopsis) Parents() [][]int {
	parents := make([][]int, len(s.Nodes))
	for _, u := range s.Nodes {
		for _, e := range u.Edges {
			parents[e.Child] = append(parents[e.Child], u.ID)
		}
	}
	return parents
}

// Expand reconstructs an XML document tree from the synopsis (the Expand
// function of Lemma 3.1). The result is isomorphic to the original document
// up to sibling order: each element of class u receives exactly e.K children
// of class e.Child for every outgoing edge. Expand fails if the root class
// count is not 1 or if the synopsis contains a cycle.
func (s *Synopsis) Expand() (*xmltree.Tree, error) {
	if s.Root < 0 {
		return xmltree.NewTree(), nil
	}
	root := s.Nodes[s.Root]
	if root.Count != 1 {
		return nil, fmt.Errorf("stable: root class has count %d, want 1", root.Count)
	}
	if err := s.checkAcyclic(); err != nil {
		return nil, err
	}
	t := xmltree.NewTree()
	var build func(id int) *xmltree.Node
	build = func(id int) *xmltree.Node {
		u := s.Nodes[id]
		n := t.NewNode(u.Label)
		for _, e := range u.Edges {
			for i := 0; i < e.K; i++ {
				n.Children = append(n.Children, build(e.Child))
			}
		}
		return n
	}
	t.Root = build(s.Root)
	return t, nil
}

func (s *Synopsis) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]int8, len(s.Nodes))
	var visit func(id int) error
	visit = func(id int) error {
		switch state[id] {
		case gray:
			return fmt.Errorf("stable: synopsis contains a cycle through node %d (%s)", id, s.Nodes[id].Label)
		case black:
			return nil
		}
		state[id] = gray
		for _, e := range s.Nodes[id].Edges {
			if err := visit(e.Child); err != nil {
				return err
			}
		}
		state[id] = black
		return nil
	}
	for id := range s.Nodes {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// Verify checks that the synopsis is a valid count-stable summary of t:
// every element is assigned a class with a matching label, and for every
// class pair (u, v) each element of u has exactly k(u,v) children in v.
// It requires ClassOf to be populated (i.e. a synopsis from Build).
func (s *Synopsis) Verify(t *xmltree.Tree) error {
	if s.ClassOf == nil {
		return fmt.Errorf("stable: Verify requires ClassOf")
	}
	if len(s.ClassOf) < t.OIDSpace() {
		return fmt.Errorf("stable: ClassOf covers %d OIDs, document needs %d", len(s.ClassOf), t.OIDSpace())
	}
	counts := make([]int, len(s.Nodes))
	var err error
	t.PreOrder(func(e *xmltree.Node) {
		if err != nil {
			return
		}
		id := s.ClassOf[e.OID]
		if id < 0 || id >= len(s.Nodes) {
			err = fmt.Errorf("stable: element %d has out-of-range class %d", e.OID, id)
			return
		}
		u := s.Nodes[id]
		counts[id]++
		if u.Label != e.Label {
			err = fmt.Errorf("stable: element %d label %q in class labeled %q", e.OID, e.Label, u.Label)
			return
		}
		got := make(map[int]int)
		for _, c := range e.Children {
			got[s.ClassOf[c.OID]]++
		}
		if len(got) != len(u.Edges) {
			err = fmt.Errorf("stable: element %d has children in %d classes, class %d has %d edges", e.OID, len(got), id, len(u.Edges))
			return
		}
		for _, edge := range u.Edges {
			if got[edge.Child] != edge.K {
				err = fmt.Errorf("stable: element %d has %d children in class %d, edge says %d", e.OID, got[edge.Child], edge.Child, edge.K)
				return
			}
		}
	})
	if err != nil {
		return err
	}
	for id, u := range s.Nodes {
		if counts[id] != u.Count {
			return fmt.Errorf("stable: class %d count %d, but %d elements assigned", id, u.Count, counts[id])
		}
	}
	return nil
}

// EdgeK returns the stable child count from node u to node v, or 0 when no
// edge exists (the k=0 case of Definition 3.1).
func (s *Synopsis) EdgeK(u, v int) int {
	edges := s.Nodes[u].Edges
	i := sort.Search(len(edges), func(i int) bool { return edges[i].Child >= v })
	if i < len(edges) && edges[i].Child == v {
		return edges[i].K
	}
	return 0
}
