package stable

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"treesketch/internal/xmltree"
)

// sameSummary checks that two synopses describe the same count-stable
// relation: identical multisets of (canonical class signature, count).
func sameSummary(t *testing.T, got, want *Synopsis) bool {
	t.Helper()
	canonical := func(s *Synopsis) map[string]int {
		// Canonical signature per class via iterative refinement over the
		// class DAG: render each class as label(children...) recursively.
		memo := make(map[int]string)
		var render func(id int) string
		render = func(id int) string {
			if c, ok := memo[id]; ok {
				return c
			}
			u := s.Nodes[id]
			parts := make([]string, 0, len(u.Edges))
			for _, e := range u.Edges {
				parts = append(parts, render(e.Child)+"*"+itoa(e.K))
			}
			// Class IDs are assignment-order-dependent; sorting the child
			// renderings makes the form canonical across synopses.
			sort.Strings(parts)
			out := u.Label + "(" + strings.Join(parts, ";") + ")"
			memo[id] = out
			return out
		}
		m := make(map[string]int)
		for _, u := range s.Nodes {
			m[render(u.ID)] += u.Count
		}
		return m
	}
	a, b := canonical(got), canonical(want)
	if len(a) != len(b) {
		t.Logf("class counts differ: %d vs %d", len(a), len(b))
		return false
	}
	for k, v := range a {
		if b[k] != v {
			t.Logf("class %q: count %d vs %d", k, v, b[k])
			return false
		}
	}
	return true
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return out
}

// identicalSynopsis checks bit-level equality of two synopses: same root,
// same node numbering, and per-node identical label, count, depth, and edge
// lists. This is strictly stronger than sameSummary — it is what compaction
// relies on when fingerprint-comparing a maintained document against a
// from-scratch rebuild.
func identicalSynopsis(t *testing.T, got, want *Synopsis) bool {
	t.Helper()
	if got.Root != want.Root || len(got.Nodes) != len(want.Nodes) {
		t.Logf("root %d vs %d, nodes %d vs %d", got.Root, want.Root, len(got.Nodes), len(want.Nodes))
		return false
	}
	for i, g := range got.Nodes {
		w := want.Nodes[i]
		if g.Label != w.Label || g.Count != w.Count || g.Depth() != w.Depth() || len(g.Edges) != len(w.Edges) {
			t.Logf("node %d: got {%s count=%d depth=%d edges=%d}, want {%s count=%d depth=%d edges=%d}",
				i, g.Label, g.Count, g.Depth(), len(g.Edges), w.Label, w.Count, w.Depth(), len(w.Edges))
			return false
		}
		for j := range g.Edges {
			if g.Edges[j] != w.Edges[j] {
				t.Logf("node %d edge %d: %+v vs %+v", i, j, g.Edges[j], w.Edges[j])
				return false
			}
		}
	}
	return true
}

func TestMaintainerMatchesBuildInitially(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b,b),a(b),c)")
	m := NewMaintainer(doc)
	if !sameSummary(t, m.Synopsis(), Build(doc)) {
		t.Fatal("initial maintained synopsis differs from Build")
	}
}

func TestMaintainerInsert(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b),a(b))")
	m := NewMaintainer(doc)

	// Insert a new a(b,b) record under the root.
	_, err := m.InsertSubtree(doc.Root, xmltree.MustCompact("a(b,b)"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 5+3 {
		t.Fatalf("doc size %d, want 8", doc.Size())
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameSummary(t, m.Synopsis(), Build(doc)) {
		t.Fatal("maintained synopsis differs from rebuild after insert")
	}
}

func TestMaintainerInsertCreatesAndSharesClasses(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b))")
	m := NewMaintainer(doc)
	// Identical record: classes shared, counts bumped.
	m.InsertSubtree(doc.Root, xmltree.MustCompact("a(b)"))
	s := m.Synopsis()
	byLabel := map[string]*Node{}
	for _, n := range s.Nodes {
		byLabel[n.Label] = n
	}
	if byLabel["a"].Count != 2 || byLabel["b"].Count != 2 {
		t.Fatalf("counts a=%d b=%d, want 2/2", byLabel["a"].Count, byLabel["b"].Count)
	}
	if s.NumNodes() != 3 {
		t.Fatalf("classes = %d, want 3", s.NumNodes())
	}
}

func TestMaintainerDelete(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b,b),a(b),c)")
	m := NewMaintainer(doc)
	// Delete the first a (with two b's).
	if err := m.DeleteSubtree(doc.Root.Children[0]); err != nil {
		t.Fatal(err)
	}
	if doc.Size() != 4 {
		t.Fatalf("doc size %d, want 4", doc.Size())
	}
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sameSummary(t, m.Synopsis(), Build(doc)) {
		t.Fatal("maintained synopsis differs from rebuild after delete")
	}
}

func TestMaintainerDeleteRootRejected(t *testing.T) {
	doc := xmltree.MustCompact("r(a)")
	m := NewMaintainer(doc)
	if err := m.DeleteSubtree(doc.Root); err == nil {
		t.Fatal("deleted the document root")
	}
}

func TestMaintainerInsertValidation(t *testing.T) {
	doc := xmltree.MustCompact("r(a)")
	m := NewMaintainer(doc)
	if _, err := m.InsertSubtree(nil, xmltree.MustCompact("x")); err == nil {
		t.Fatal("accepted nil parent")
	}
	if _, err := m.InsertSubtree(doc.Root, xmltree.NewTree()); err == nil {
		t.Fatal("accepted empty subtree")
	}
	foreign := xmltree.MustCompact("q(w)")
	if _, err := m.InsertSubtree(foreign.Root, xmltree.MustCompact("x")); err == nil {
		t.Fatal("accepted foreign parent")
	}
}

func TestMaintainerDeleteDetachedRejected(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b))")
	m := NewMaintainer(doc)
	b := doc.Root.Children[0].Children[0]
	if err := m.DeleteSubtree(b); err != nil {
		t.Fatal(err)
	}
	// Deleting it again must fail cleanly.
	if err := m.DeleteSubtree(b); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestMaintainerClassIDRecycling(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b))")
	m := NewMaintainer(doc)
	before := m.NumClasses()
	// Insert and delete a unique structure repeatedly; class count returns
	// to the baseline each time and internal state stays consistent.
	for i := 0; i < 10; i++ {
		n, err := m.InsertSubtree(doc.Root, xmltree.MustCompact("z(w,w,w)"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DeleteSubtree(n); err != nil {
			t.Fatal(err)
		}
		if got := m.NumClasses(); got != before {
			t.Fatalf("iteration %d: classes %d, want %d", i, got, before)
		}
	}
	if !sameSummary(t, m.Synopsis(), Build(doc)) {
		t.Fatal("state corrupted by insert/delete cycles")
	}
}

func TestMaintainerSynopsisUsableDownstream(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b,b),a(b))")
	m := NewMaintainer(doc)
	m.InsertSubtree(doc.Root, xmltree.MustCompact("a(b,b,b)"))
	s := m.Synopsis()
	if err := s.Verify(doc); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	back, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != doc.Size() {
		t.Fatalf("Expand size %d, want %d", back.Size(), doc.Size())
	}
}

// The next two tests pin one latent failure shape from two directions: when
// a reclassified ancestor was the sole member of its class, unclassify frees
// the class ID and classify immediately recycles the same ID for the
// *changed* signature. An ID-equality early stop in reclassifyAncestors then
// leaves every higher ancestor with a stale depth, so the maintained summary
// diverges from a rebuild (depth feeds TSBuild's pool ordering and the
// sketch fingerprint).

func TestMaintainerInsertUnderJustInsertedSubtree(t *testing.T) {
	doc := xmltree.MustCompact("r(x(b))")
	m := NewMaintainer(doc)
	x := doc.Root.Children[0]
	s1, err := m.InsertSubtree(x, xmltree.MustCompact("s(t)"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Parent(s1) != x {
		t.Fatal("Parent disagrees with the insertion point")
	}
	// Insert below a node that was itself just inserted: every ancestor up
	// to the root sits in a count-1 class, the recycling-prone shape.
	if _, err := m.InsertSubtree(s1.Children[0], xmltree.MustCompact("u(v)")); err != nil {
		t.Fatal(err)
	}
	canon := m.CanonicalSynopsis()
	if err := canon.Verify(doc); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !identicalSynopsis(t, canon, Build(doc)) {
		t.Fatal("canonical synopsis diverged from rebuild (stale ancestor depths)")
	}
}

func TestMaintainerDeleteThenReinsertSameShape(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c)))")
	m := NewMaintainer(doc)
	a := doc.Root.Children[0]
	if err := m.DeleteSubtree(a.Children[0]); err != nil {
		t.Fatal(err)
	}
	// The interesting state is *between* delete and reinsert: ancestor
	// depths must shrink with the deleted chain.
	if !identicalSynopsis(t, m.CanonicalSynopsis(), Build(doc)) {
		t.Fatal("canonical synopsis diverged from rebuild after delete")
	}
	if _, err := m.InsertSubtree(a, xmltree.MustCompact("b(c)")); err != nil {
		t.Fatal(err)
	}
	if !identicalSynopsis(t, m.CanonicalSynopsis(), Build(doc)) {
		t.Fatal("canonical synopsis diverged from rebuild after reinserting the same shape")
	}
}

// TestPropMaintainerEquivalentToRebuild drives random edit scripts and
// compares the maintained synopsis against a from-scratch Build after
// every step.
func TestPropMaintainerEquivalentToRebuild(t *testing.T) {
	protos := []string{
		"a(b)", "a(b,b)", "a(c)", "x(y(z))", "x(y)", "c", "a(b(c),b)",
	}
	f := func(seed uint64) bool {
		doc := randomTree(seed)
		m := NewMaintainer(doc)
		rng := seed
		next := func(n uint64) uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return (rng >> 33) % n
		}
		// Collect current elements for random targeting.
		elements := func() []*xmltree.Node {
			var out []*xmltree.Node
			doc.PreOrder(func(n *xmltree.Node) { out = append(out, n) })
			return out
		}
		for step := 0; step < 8; step++ {
			els := elements()
			if next(2) == 0 {
				parent := els[next(uint64(len(els)))]
				if _, err := m.InsertSubtree(parent, xmltree.MustCompact(protos[next(uint64(len(protos)))])); err != nil {
					t.Logf("seed %d step %d: insert: %v", seed, step, err)
					return false
				}
			} else if len(els) > 1 {
				victim := els[next(uint64(len(els)-1))+1] // never the root
				if err := m.DeleteSubtree(victim); err != nil {
					t.Logf("seed %d step %d: delete: %v", seed, step, err)
					return false
				}
			}
			if err := doc.Validate(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			if !sameSummary(t, m.Synopsis(), Build(doc)) {
				t.Logf("seed %d step %d: summaries diverged", seed, step)
				return false
			}
			if !identicalSynopsis(t, m.CanonicalSynopsis(), Build(doc)) {
				t.Logf("seed %d step %d: canonical synopsis not bit-identical to rebuild", seed, step)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
