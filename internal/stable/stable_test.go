package stable

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"treesketch/internal/xmltree"
)

// canon renders a tree in a canonical compact form that is invariant under
// sibling reordering, so isomorphism (Lemma 3.1) can be checked by string
// equality.
func canon(n *xmltree.Node) string {
	if len(n.Children) == 0 {
		return n.Label
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = canon(c)
	}
	sort.Strings(parts)
	return n.Label + "(" + strings.Join(parts, ",") + ")"
}

func TestBuildSingleNode(t *testing.T) {
	s := Build(xmltree.MustCompact("r"))
	if s.NumNodes() != 1 || s.Nodes[0].Count != 1 || s.Nodes[0].Label != "r" {
		t.Fatalf("unexpected synopsis: %+v", s.Nodes)
	}
	if s.Height() != 0 {
		t.Fatalf("Height = %d, want 0", s.Height())
	}
}

func TestBuildEmptyTree(t *testing.T) {
	s := Build(xmltree.NewTree())
	if s.NumNodes() != 0 || s.Root != -1 {
		t.Fatalf("empty tree synopsis: %+v", s)
	}
	tr, err := s.Expand()
	if err != nil || tr.Size() != 0 {
		t.Fatalf("Expand(empty) = %v, %v", tr.Size(), err)
	}
}

func TestBuildGroupsIdenticalSubtrees(t *testing.T) {
	// Four identical b(c) subtrees under two a parents: classes are
	// {r}, {a,a}, {b,b,b,b}, {c,c,c,c}.
	tr := xmltree.MustCompact("r(a(b(c),b(c)),a(b(c),b(c)))")
	s := Build(tr)
	if s.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", s.NumNodes())
	}
	byLabel := map[string]*Node{}
	for _, n := range s.Nodes {
		byLabel[n.Label] = n
	}
	if byLabel["a"].Count != 2 || byLabel["b"].Count != 4 || byLabel["c"].Count != 4 {
		t.Fatalf("counts: a=%d b=%d c=%d", byLabel["a"].Count, byLabel["b"].Count, byLabel["c"].Count)
	}
	if k := s.EdgeK(byLabel["a"].ID, byLabel["b"].ID); k != 2 {
		t.Fatalf("k(a,b) = %d, want 2", k)
	}
	if err := s.Verify(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSeparatesDifferentChildCounts(t *testing.T) {
	// Paper Figure 3(a): document T1 = r(a(b*1(c), b*4(c)), a(b*1(c), b*4(c))).
	// The two b variants (1 c child vs 4 c children) must land in distinct
	// classes; both a elements have one b of each kind so they share a class.
	tr := xmltree.MustCompact("r(a(b(c),b(c,c,c,c)),a(b(c),b(c,c,c,c)))")
	s := Build(tr)
	labels := map[string]int{}
	for _, n := range s.Nodes {
		labels[n.Label]++
	}
	if labels["b"] != 2 {
		t.Fatalf("b classes = %d, want 2", labels["b"])
	}
	if labels["a"] != 1 {
		t.Fatalf("a classes = %d, want 1", labels["a"])
	}
	if err := s.Verify(tr); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSeparatesByDescendantStructure(t *testing.T) {
	// Paper Figure 3(b): document T2 where one a has two b's with 1 c each
	// and the other a has two b's with 4 c's each. The two a elements have
	// different sub-trees and must be in different classes (Figure 3(f)).
	tr := xmltree.MustCompact("r(a(b(c),b(c)),a(b(c,c,c,c),b(c,c,c,c)))")
	s := Build(tr)
	labels := map[string]int{}
	for _, n := range s.Nodes {
		labels[n.Label]++
	}
	if labels["a"] != 2 {
		t.Fatalf("a classes = %d, want 2", labels["a"])
	}
	if labels["b"] != 2 {
		t.Fatalf("b classes = %d, want 2", labels["b"])
	}
}

func TestExpandRoundTrip(t *testing.T) {
	docs := []string{
		"r",
		"r(a)",
		"r(a(b,c),a(b,c))",
		"r(a(b(c),b(c,c,c,c)),a(b(c),b(c,c,c,c)))",
		"bib(author*3(name,paper*2(title,year,keyword*2),book(title)))",
		"r(x(y(z(w))),x(y(z(w))),x(y(z)))",
	}
	for _, src := range docs {
		tr := xmltree.MustCompact(src)
		s := Build(tr)
		back, err := s.Expand()
		if err != nil {
			t.Fatalf("%s: Expand: %v", src, err)
		}
		if canon(back.Root) != canon(tr.Root) {
			t.Errorf("%s: Expand not isomorphic:\n got %s\nwant %s", src, canon(back.Root), canon(tr.Root))
		}
		if back.Size() != tr.Size() {
			t.Errorf("%s: Expand size %d, want %d", src, back.Size(), tr.Size())
		}
	}
}

func TestExpandRejectsMultiRootCount(t *testing.T) {
	tr := xmltree.MustCompact("r(a,a)")
	s := Build(tr)
	s.Root = s.ClassOf[tr.Root.Children[0].OID] // point root at the a class (count 2)
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted root class with count != 1")
	}
}

func TestExpandRejectsCycle(t *testing.T) {
	s := &Synopsis{Root: 0}
	s.Nodes = []*Node{
		{ID: 0, Label: "a", Count: 1, Edges: []Edge{{Child: 1, K: 1}}},
		{ID: 1, Label: "b", Count: 1, Edges: []Edge{{Child: 0, K: 1}}},
	}
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted cyclic synopsis")
	}
}

func TestDepths(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b(c)),d)")
	s := Build(tr)
	for _, n := range s.Nodes {
		var want int
		switch n.Label {
		case "c", "d":
			want = 0
		case "b":
			want = 1
		case "a":
			want = 2
		case "r":
			want = 3
		}
		if n.Depth() != want {
			t.Errorf("depth(%s) = %d, want %d", n.Label, n.Depth(), want)
		}
	}
	if s.Height() != 3 {
		t.Errorf("Height = %d, want 3", s.Height())
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b),a(b))")
	s := Build(tr) // classes: r, a, b -> 3 nodes, edges r->a, a->b -> 2 edges
	if s.NumNodes() != 3 || s.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", s.NumNodes(), s.NumEdges())
	}
	want := 3*NodeBytes + 2*EdgeBytes
	if s.SizeBytes() != want {
		t.Fatalf("SizeBytes = %d, want %d", s.SizeBytes(), want)
	}
}

func TestTotalElements(t *testing.T) {
	tr := xmltree.MustCompact("r(a*5(b*2),c*3)")
	s := Build(tr)
	if got := s.TotalElements(); got != tr.Size() {
		t.Fatalf("TotalElements = %d, want %d", got, tr.Size())
	}
}

func TestParents(t *testing.T) {
	tr := xmltree.MustCompact("r(a(c),b(c))")
	s := Build(tr)
	parents := s.Parents()
	var cID int
	for _, n := range s.Nodes {
		if n.Label == "c" {
			cID = n.ID
		}
	}
	if len(parents[cID]) != 2 {
		t.Fatalf("c has %d parents, want 2", len(parents[cID]))
	}
	if len(parents[s.Root]) != 0 {
		t.Fatalf("root has %d parents, want 0", len(parents[s.Root]))
	}
}

func TestEdgeKMissingEdge(t *testing.T) {
	tr := xmltree.MustCompact("r(a,b)")
	s := Build(tr)
	var aID, bID int
	for _, n := range s.Nodes {
		switch n.Label {
		case "a":
			aID = n.ID
		case "b":
			bID = n.ID
		}
	}
	if k := s.EdgeK(aID, bID); k != 0 {
		t.Fatalf("k(a,b) = %d, want 0", k)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b),a(b))")
	s := Build(tr)
	s.Nodes[s.ClassOf[tr.Root.Children[0].OID]].Count++
	if err := s.Verify(tr); err == nil {
		t.Fatal("Verify accepted corrupted count")
	}
}

func TestVerifyRequiresClassOf(t *testing.T) {
	tr := xmltree.MustCompact("r")
	s := Build(tr)
	s.ClassOf = nil
	if err := s.Verify(tr); err == nil {
		t.Fatal("Verify accepted nil ClassOf")
	}
}

// randomTree builds a deterministic pseudo-random tree from a seed, with
// repeated structures to exercise class sharing.
func randomTree(seed uint64) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	labels := []string{"a", "b", "c"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(labels[next(3)])
		if depth < 4 {
			kids := int(next(4))
			for i := 0; i < kids; i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	root := tr.NewNode("r")
	for i := 0; i < int(next(5))+1; i++ {
		root.Children = append(root.Children, build(1))
	}
	tr.Root = root
	return tr
}

func TestPropBuildVerifyExpandRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTree(seed)
		s := Build(tr)
		if err := s.Verify(tr); err != nil {
			t.Logf("Verify: %v", err)
			return false
		}
		back, err := s.Expand()
		if err != nil {
			t.Logf("Expand: %v", err)
			return false
		}
		return canon(back.Root) == canon(tr.Root)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSynopsisNeverLargerThanDocument(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTree(seed)
		s := Build(tr)
		return s.NumNodes() <= tr.Size() && s.TotalElements() == tr.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMinimality(t *testing.T) {
	// Two elements land in the same class iff their canonical subtrees are
	// identical — this is exactly the minimal count-stable relation.
	f := func(seed uint64) bool {
		tr := randomTree(seed)
		s := Build(tr)
		canonOf := make(map[int]string)
		tr.PreOrder(func(n *xmltree.Node) { canonOf[n.OID] = canon(n) })
		classCanon := make(map[int]string)
		ok := true
		tr.PreOrder(func(n *xmltree.Node) {
			id := s.ClassOf[n.OID]
			if prev, seen := classCanon[id]; seen {
				if prev != canonOf[n.OID] {
					ok = false
				}
			} else {
				classCanon[id] = canonOf[n.OID]
			}
		})
		// Minimality: distinct classes must have distinct canonical forms.
		seen := make(map[string]bool)
		for _, c := range classCanon {
			if seen[c] {
				ok = false
			}
			seen[c] = true
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
