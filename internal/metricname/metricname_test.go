package metricname

import "testing"

func TestValid(t *testing.T) {
	good := []string{
		"tsbuild.heap.pushes",
		"eval.exact.latency_seconds",
		"eval.approx.selmemo.hits",
		"bench.imdb_tx.03kb.approx_latency_seconds",
		"xmltree.parse",
		"stable.build.runs",
		"a.b",
	}
	for _, name := range good {
		if err := Valid(name); err != nil {
			t.Errorf("Valid(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{
		"",
		"single",
		"tsbuild.createPool",         // uppercase
		"eval..exact",                // empty segment
		"eval.exact.",                // trailing empty segment
		"03kb.approx",                // first segment starts with digit
		"bench.IMDB-TX.latency",      // hyphen + uppercase
		"a.b.c.d.e",                  // too many segments
		"eval._hidden.latency",       // segment starts with underscore
		"eval.exact.latency seconds", // space
	}
	for _, name := range bad {
		if err := Valid(name); err == nil {
			t.Errorf("Valid(%q) = nil, want error", name)
		}
	}
}

func TestClean(t *testing.T) {
	cases := map[string]string{
		"IMDB-TX":    "imdb_tx",
		"XMark-TX":   "xmark_tx",
		"SProt":      "sprot",
		"already_ok": "already_ok",
		"a--b":       "a_b",
		"-lead-":     "lead",
		"":           "x",
		"---":        "x",
		"Mixed Case": "mixed_case",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
	// Clean output composed into a full name must satisfy Valid.
	for in := range cases {
		name := "bench." + Clean(in) + ".latency_seconds"
		if err := Valid(name); err != nil {
			t.Errorf("composed name %q invalid: %v", name, err)
		}
	}
}
