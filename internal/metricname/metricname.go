// Package metricname defines the canonical grammar for observability metric
// names. It is the single shared rule behind two enforcement layers: the
// obs.Registry validates names at registration time (recording typed errors
// for invalid or kind-colliding registrations), and the tslint `metricname`
// analyzer checks every constant registration site at compile time. Keeping
// the rule in one dependency-free package guarantees the two checks can
// never drift apart.
//
// The grammar is "pkg.subsystem.name": 2 to 4 dot-separated lowercase
// segments. The first segment names the owning package or subsystem and
// must start with a letter; later segments may start with a digit (budget
// cells like "03kb" appear mid-name in benchmark metrics). Within a
// segment only [a-z0-9_] is allowed. Examples: "tsbuild.heap.pushes",
// "eval.exact.latency_seconds", "bench.imdb_tx.03kb.approx_latency_seconds".
package metricname

import (
	"fmt"
	"strings"
)

// Grammar documents the accepted shape; error messages and docs quote it.
const Grammar = `2-4 dot-separated segments of [a-z0-9_], first segment starting with a letter ("pkg.subsystem.name")`

// MinSegments and MaxSegments bound the dot-separated segment count.
const (
	MinSegments = 2
	MaxSegments = 4
)

// Valid reports whether name conforms to the metric-name grammar, returning
// a descriptive error when it does not.
func Valid(name string) error {
	if name == "" {
		return fmt.Errorf("metric name is empty (grammar: %s)", Grammar)
	}
	segs := strings.Split(name, ".")
	if len(segs) < MinSegments || len(segs) > MaxSegments {
		return fmt.Errorf("metric name %q has %d segment(s), want %d-%d (grammar: %s)",
			name, len(segs), MinSegments, MaxSegments, Grammar)
	}
	for i, seg := range segs {
		if seg == "" {
			return fmt.Errorf("metric name %q has an empty segment (grammar: %s)", name, Grammar)
		}
		for j := 0; j < len(seg); j++ {
			c := seg[j]
			switch {
			case c >= 'a' && c <= 'z', c == '_':
			case c >= '0' && c <= '9':
				if i == 0 && j == 0 {
					return fmt.Errorf("metric name %q: first segment must start with a letter (grammar: %s)", name, Grammar)
				}
			default:
				return fmt.Errorf("metric name %q: segment %q contains %q, want [a-z0-9_] (grammar: %s)",
					name, seg, string(c), Grammar)
			}
		}
		if c := seg[0]; c == '_' {
			return fmt.Errorf("metric name %q: segment %q starts with '_' (grammar: %s)", name, seg, Grammar)
		}
	}
	return nil
}

// Clean maps an arbitrary string (a dataset name, a user-supplied label)
// onto a single valid metric-name segment: uppercase letters are lowered
// and every other character outside [a-z0-9] becomes '_'. Runs of '_' are
// collapsed and leading/trailing '_' trimmed; an empty result yields "x".
// Use it when composing metric names from dynamic components, e.g.
// "bench." + metricname.Clean(dataset) + ".exact_latency_seconds".
func Clean(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastUnderscore := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteByte(c)
			lastUnderscore = false
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
			lastUnderscore = false
		default:
			if !lastUnderscore && b.Len() > 0 {
				b.WriteByte('_')
				lastUnderscore = true
			}
		}
	}
	out := strings.TrimRight(b.String(), "_")
	if out == "" {
		return "x"
	}
	return out
}
