package eval

import (
	"math"
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

func TestEdgeExistenceMinKCertificate(t *testing.T) {
	// Mixture {1,2,3}: the Paley-Zygmund estimate alone would be < 1, but
	// MinK = 1 certifies universal presence.
	e := sketch.Edge{Avg: 2, Sum: 6, SumSq: 14, MinK: 1}
	if p := edgeExistence(e, 3); p != 1 {
		t.Fatalf("P = %g, want 1 (MinK certificate)", p)
	}
	// Two-point {0,3} with 1 of 3 elements: P = 1/3 exactly.
	e = sketch.Edge{Avg: 1, Sum: 3, SumSq: 9, MinK: 0}
	if p := edgeExistence(e, 3); math.Abs(p-1.0/3) > 1e-12 {
		t.Fatalf("P = %g, want 1/3", p)
	}
	// Degenerate.
	if p := edgeExistence(sketch.Edge{}, 3); p != 0 {
		t.Fatalf("P = %g, want 0", p)
	}
}

func TestBranchSelExactAfterMergeOnUniversalPredicate(t *testing.T) {
	// Entries with 1, 2, or 3 accessions merged into one cluster: the
	// predicate [/acc] is true for every entry, and the MinK certificate
	// keeps the estimate exact despite the merge.
	tr := xmltree.MustCompact("r(e(acc),e(acc,acc),e(acc,acc,acc),e(acc),e(acc,acc))")
	st := stable.Build(tr)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})
	r := Approx(sk, query.MustParse("//e[/acc]"), Options{})
	if got := r.Selectivity(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("selectivity = %g, want 5 (predicate universally true)", got)
	}
}

func TestBranchSelTwoMomentOnRareBurstyPredicate(t *testing.T) {
	// One of four movies has 3 awards; the rest none. After full merge the
	// edge is {0,0,0,3}: P = (3/4)^2 / (9/4)... = Sum^2/(Count*SumSq) =
	// 9/(4*9) = 1/4 — exactly the fraction with awards. PaperMode's rule
	// (k = 0.75 < 1, single term) uses 0.75 instead.
	tr := xmltree.MustCompact("r(m(aw,aw,aw),m(t),m(t),m(t))")
	st := stable.Build(tr)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})
	q := query.MustParse("//m[/aw]")
	refined := Approx(sk, q, Options{}).Selectivity()
	if math.Abs(refined-1) > 1e-9 {
		t.Fatalf("refined selectivity = %g, want 1 (exact for two-point counts)", refined)
	}
	paper := Approx(sk, q, Options{PaperMode: true}).Selectivity()
	if math.Abs(paper-3) > 1e-9 {
		// 4 movies * 0.75 = 3: the Figure 8 estimate.
		t.Fatalf("paper-mode selectivity = %g, want 3", paper)
	}
}

func TestDisablePruneKeepsUnsatisfiedNodes(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b),a(c))")
	st := stable.Build(tr)
	sk := sketch.FromStable(st)
	q := query.MustParse("//a{/b}")
	pruned := Approx(sk, q, Options{})
	raw := Approx(sk, q, Options{DisablePrune: true})
	if len(raw.Nodes) <= len(pruned.Nodes) {
		t.Fatalf("unpruned result (%d nodes) should exceed pruned (%d)", len(raw.Nodes), len(pruned.Nodes))
	}
}

func TestApproxResultNodeIDsDeterministic(t *testing.T) {
	tr := xmltree.MustCompact("r(x(f),y(f),z(f))")
	st := stable.Build(tr)
	sk := sketch.FromStable(st)
	q := query.MustParse("//f")
	a := Approx(sk, q, Options{})
	b := Approx(sk, q, Options{})
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ across runs")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Src != b.Nodes[i].Src || a.Nodes[i].Var != b.Nodes[i].Var {
			t.Fatalf("node %d differs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

func TestBestAssignmentSelNoPreds(t *testing.T) {
	a := &approxer{}
	e := embedding{nodes: []int{1, 2}, stepAts: [][]int{{0, 1}}}
	steps := query.MustParse("//a/b").Root.Edges[0].Path.Steps
	if got := a.bestAssignmentSel(steps, e); got != 1 {
		t.Fatalf("sel = %g, want 1 for predicate-free steps", got)
	}
}
