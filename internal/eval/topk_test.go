package eval

import (
	"container/list"
	"context"
	"math"
	"strings"
	"testing"

	"treesketch/internal/datagen"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
)

// TestTopKUnboundedMatchesBatchFingerprint is the streaming determinism
// oracle: an unbounded streaming run (Limit < 0) must replay to a result
// bit-identical to the batch path — same fingerprint over every node ID,
// label, count bit, and edge bit — on every quick-grid dataset family at
// two synopsis budgets.
func TestTopKUnboundedMatchesBatchFingerprint(t *testing.T) {
	pairs := 0
	for _, ds := range datagen.All() {
		doc := datagen.Generate(ds, 2000, 1)
		st := stable.Build(doc)
		for _, div := range []int{2, 8} {
			sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: st.SizeBytes() / div})
			for qi, q := range query.Generate(st, 40, query.GenOptions{Seed: int64(div)}) {
				pairs++
				batch := Approx(sk, q, Options{})
				stream := Approx(sk, q, Options{Limit: -1})
				if stream.TopK == nil {
					t.Fatalf("%s/%d q%d %s: streaming result has no TopK info", ds, div, qi, q)
				}
				if !stream.TopK.Exhausted {
					t.Fatalf("%s/%d q%d %s: unbounded stream not exhausted (expanded %d of %d)",
						ds, div, qi, q, stream.TopK.Expanded, stream.TopK.Discovered)
				}
				if stream.TopK.ErrorBound != 0 {
					t.Fatalf("%s/%d q%d %s: exhausted stream reports ErrorBound %v",
						ds, div, qi, q, stream.TopK.ErrorBound)
				}
				if bf, sf := batch.Fingerprint(), stream.Fingerprint(); bf != sf {
					t.Fatalf("%s/%d q%d %s: fingerprint batch=%016x stream=%016x (batch %d nodes, stream %d nodes)",
						ds, div, qi, q, bf, sf, len(batch.Nodes), len(stream.Nodes))
				}
			}
		}
	}
	if pairs < 300 {
		t.Fatalf("only %d streaming-vs-batch pairs, want >= 300", pairs)
	}
}

// TestTopKErrorBoundDominatesTruncatedMass checks the bound's contract on
// raw answer mass: for every finite budget, the mass the full evaluation
// carries beyond the streamed prefix must not exceed the reported
// ErrorBound. Pruning and conditioning redistribute mass non-monotonically,
// so both sides run with DisablePrune — the regime the bound is defined in.
func TestTopKErrorBoundDominatesTruncatedMass(t *testing.T) {
	cases, truncated, finiteBounds := 0, 0, 0
	for _, ds := range datagen.All() {
		doc := datagen.Generate(ds, 2000, 1)
		st := stable.Build(doc)
		for _, div := range []int{2, 8} {
			sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: st.SizeBytes() / div})
			for qi, q := range query.Generate(st, 25, query.GenOptions{Seed: int64(div) + 10}) {
				full := Approx(sk, q, Options{DisablePrune: true})
				fullByKey := make(map[resKey]float64, len(full.Nodes))
				for _, rn := range full.Nodes {
					fullByKey[resKey{rn.Src, rn.VarID}] = rn.Count
				}
				for _, k := range []int{1, 2, 4, 8} {
					cases++
					part := Approx(sk, q, Options{DisablePrune: true, Limit: k})
					info := part.TopK
					if info == nil {
						t.Fatalf("%s/%d q%d k=%d: no TopK info", ds, div, qi, k)
					}
					if info.Expanded > k {
						t.Fatalf("%s/%d q%d k=%d: expanded %d nodes over budget", ds, div, qi, k, info.Expanded)
					}
					if !info.Exhausted && !info.WorkCapped && info.Expanded != k {
						t.Fatalf("%s/%d q%d k=%d: stopped at %d expansions with frontier left",
							ds, div, qi, k, info.Expanded)
					}
					// Per-node monotonicity: a streamed node's raw count can
					// only miss mass (paths through the unexpanded frontier),
					// never invent it.
					for _, rn := range part.Nodes {
						fc, ok := fullByKey[resKey{rn.Src, rn.VarID}]
						if !ok {
							t.Fatalf("%s/%d q%d k=%d: streamed node (src %d, var %d) absent from full result",
								ds, div, qi, k, rn.Src, rn.VarID)
						}
						if rn.Count > fc*(1+1e-9)+1e-9 {
							t.Fatalf("%s/%d q%d k=%d: node (src %d, var %d) streamed count %v > full %v",
								ds, div, qi, k, rn.Src, rn.VarID, rn.Count, fc)
						}
					}
					trueTrunc := full.TotalNodes() - part.TotalNodes()
					if trueTrunc > 1e-9 {
						truncated++
					}
					if !math.IsInf(info.ErrorBound, 1) {
						finiteBounds++
					}
					if trueTrunc > info.ErrorBound*(1+1e-9)+1e-9 {
						t.Fatalf("%s/%d q%d k=%d: true truncated mass %v exceeds ErrorBound %v (full %v, emitted %v)",
							ds, div, qi, k, trueTrunc, info.ErrorBound, full.TotalNodes(), part.TotalNodes())
					}
					if info.Exhausted {
						if tt := math.Abs(trueTrunc); tt > 1e-9 {
							t.Fatalf("%s/%d q%d k=%d: exhausted but full carries %v extra mass", ds, div, qi, k, tt)
						}
					}
				}
			}
		}
	}
	// The test is vacuous unless a healthy share of cases actually truncate
	// and carry a finite bound.
	if truncated < cases/10 {
		t.Fatalf("only %d of %d cases truncated mass — budgets too generous to test the bound", truncated, cases)
	}
	if finiteBounds < cases/2 {
		t.Fatalf("only %d of %d cases had a finite ErrorBound", finiteBounds, cases)
	}
	t.Logf("cases %d, with truncated mass %d, finite bounds %d", cases, truncated, finiteBounds)
}

// TestTopKDeadlinePartial pins the deadline contract: with an already
// expired context, the streaming path still expands the answer root —
// callers are promised at least one emitted node — and reports DeadlineHit
// rather than failing.
func TestTopKDeadlinePartial(t *testing.T) {
	sk := fuzzSketch()
	q, err := query.Parse("//a{//b{//c?},//d?}")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ApproxContext(ctx, sk, q, Options{Limit: -1})
	info := res.TopK
	if info == nil {
		t.Fatal("no TopK info on deadline-partial result")
	}
	if info.Expanded != 1 {
		t.Fatalf("expired context expanded %d nodes, want exactly the root", info.Expanded)
	}
	if !info.DeadlineHit || info.Exhausted {
		t.Fatalf("expired context: DeadlineHit=%v Exhausted=%v, want true/false", info.DeadlineHit, info.Exhausted)
	}
	if info.Discovered <= 1 {
		t.Fatalf("root expansion discovered %d nodes, want a frontier", info.Discovered)
	}
	if res.Empty || len(res.Nodes) == 0 {
		t.Fatal("deadline-partial answer is empty")
	}
	if info.ErrorBound <= 0 {
		t.Fatalf("partial answer with frontier reports ErrorBound %v", info.ErrorBound)
	}

	// A live context on the same query must run to exhaustion and match the
	// batch fingerprint.
	live := ApproxContext(context.Background(), sk, q, Options{Limit: -1})
	if !live.TopK.Exhausted {
		t.Fatal("live unbounded run not exhausted")
	}
	if bf, sf := Approx(sk, q, Options{}).Fingerprint(), live.Fingerprint(); bf != sf {
		t.Fatalf("fingerprint batch=%016x stream=%016x", bf, sf)
	}
}

// TestTopKWorkCappedKeepsPartialAnswer pins the pool-truncation contract:
// when the shared enumeration pool dies on the root's own required-child
// edge, the stream must still answer with the root (WorkCapped, positive
// remainder bound) — not prune it to EMPTY for a child the cut enumeration
// never got to search for.
func TestTopKWorkCappedKeepsPartialAnswer(t *testing.T) {
	sk := fuzzSketch()
	q, err := query.Parse("//a{//b}")
	if err != nil {
		t.Fatal(err)
	}
	// MaxEmbeddings 1 caps the pool at one embedding, so the first edge
	// enumeration truncates almost immediately.
	res := Approx(sk, q, Options{MaxEmbeddings: 1, Limit: 4})
	info := res.TopK
	if info == nil {
		t.Fatal("no TopK info")
	}
	if !info.WorkCapped || info.Exhausted {
		t.Fatalf("WorkCapped=%v Exhausted=%v, want true/false", info.WorkCapped, info.Exhausted)
	}
	if res.Empty || len(res.Nodes) == 0 {
		t.Fatalf("work-capped stream answered EMPTY (bound %v)", info.ErrorBound)
	}
	if info.ErrorBound <= 0 {
		t.Fatalf("work-capped stream reports ErrorBound %v, want > 0", info.ErrorBound)
	}
}

// TestTopKBestFirstOrder checks the ranking actually front-loads answer
// mass: across budgets, the emitted mass must be non-decreasing in k, and
// the k=1 prefix of a query with a heavy and a light branch must carry at
// least as much mass as any single alternative expansion could.
func TestTopKBestFirstOrder(t *testing.T) {
	sk := fuzzSketch()
	q, err := query.Parse("//a{//b?,//c?}")
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, k := range []int{1, 2, 3, 4, 6, 8, -1} {
		res := Approx(sk, q, Options{DisablePrune: true, Limit: k})
		if res.TopK == nil {
			t.Fatalf("k=%d: no TopK info", k)
		}
		if res.TopK.EmittedMass+1e-12 < prev {
			t.Fatalf("k=%d: emitted mass %v dropped below %v at smaller budget", k, res.TopK.EmittedMass, prev)
		}
		prev = res.TopK.EmittedMass
	}
}

// FuzzEvalTopK fuzzes the streaming iterator's pop/expand invariants on
// arbitrary parser-accepted twigs: budgets are respected, frontier
// accounting is consistent, masses are non-negative and never NaN, and an
// exhausted stream is bit-identical to the batch result with a zero bound.
func FuzzEvalTopK(f *testing.F) {
	seeds := []struct {
		src string
		k   int
	}{
		{"//a", -1}, {"//a//b", 1}, {"/a/b", 2}, {"//a{/b,//c?}", 3},
		{"//a[//b]", -1}, {"//a[/b[/c]]{//d?}", 2}, {"//b//b//b", 1},
		{"//a{//b{//c}}", 4}, {"//z", 1}, {"//a[//z]", -1},
	}
	for _, s := range seeds {
		f.Add(s.src, s.k)
	}
	sk := fuzzSketch()
	f.Fuzz(func(t *testing.T, src string, k int) {
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		if k == 0 {
			k = -1 // 0 selects the batch path; fuzz the streaming one
		}
		res := Approx(sk, q, Options{MaxEmbeddings: 200, Limit: k})
		info := res.TopK
		if info == nil {
			t.Fatalf("query %q k=%d: no TopK info", q, k)
		}
		if info.Expanded < 1 {
			t.Fatalf("query %q k=%d: expanded %d, want >= 1", q, k, info.Expanded)
		}
		if k > 0 && info.Expanded > k {
			t.Fatalf("query %q k=%d: expanded %d over budget", q, k, info.Expanded)
		}
		if info.Discovered < info.Expanded {
			t.Fatalf("query %q k=%d: discovered %d < expanded %d", q, k, info.Discovered, info.Expanded)
		}
		if info.WorkCapped {
			// A work-capped stop truncated at least one enumeration, so
			// the result cannot claim batch identity even with an empty
			// frontier.
			if info.Exhausted {
				t.Fatalf("query %q k=%d: WorkCapped stream marked Exhausted", q, k)
			}
		} else if info.Exhausted != (info.Discovered == info.Expanded) {
			t.Fatalf("query %q k=%d: Exhausted=%v with %d discovered, %d expanded",
				q, k, info.Exhausted, info.Discovered, info.Expanded)
		}
		if math.IsNaN(info.EmittedMass) || info.EmittedMass < 0 {
			t.Fatalf("query %q k=%d: EmittedMass %v", q, k, info.EmittedMass)
		}
		if math.IsNaN(info.ErrorBound) || info.ErrorBound < 0 {
			t.Fatalf("query %q k=%d: ErrorBound %v", q, k, info.ErrorBound)
		}
		if info.Exhausted && info.ErrorBound != 0 {
			t.Fatalf("query %q k=%d: exhausted with ErrorBound %v", q, k, info.ErrorBound)
		}
		if sel := res.Selectivity(); math.IsNaN(sel) || math.IsInf(sel, 0) || sel < 0 {
			t.Fatalf("query %q k=%d: selectivity %v", q, k, sel)
		}
		for _, rn := range res.Nodes {
			if math.IsNaN(rn.Count) || math.IsInf(rn.Count, 0) || rn.Count < 0 {
				t.Fatalf("query %q k=%d: node count %v", q, k, rn.Count)
			}
		}
		if info.Exhausted {
			batch := Approx(sk, q, Options{MaxEmbeddings: 200})
			if bf, sf := batch.Fingerprint(), res.Fingerprint(); bf != sf {
				t.Fatalf("query %q k=%d: exhausted stream fingerprint %016x != batch %016x", q, k, sf, bf)
			}
		}
	})
}

// resetMassCache empties the process-wide mass-DP cache so a test observes
// only its own entries.
func resetMassCache() {
	massCache.Lock()
	massCache.m = make(map[massKey]*list.Element)
	massCache.lru.Init()
	massCache.Unlock()
}

// TestMassCacheTextKeyedAndBounded pins the serving-daemon memory contract
// of the mass-DP cache: entries are keyed by canonical query text (so the
// per-request *query.Query a server parses still hits), and the cache is
// LRU-bounded (so a client cycling query shapes cannot grow it without
// limit, and entries pinning a swapped-out synopsis eventually age out).
func TestMassCacheTextKeyedAndBounded(t *testing.T) {
	resetMassCache()
	defer resetMassCache()
	sk := fuzzSketch()
	vars := func(q *query.Query) ([]*query.Node, map[*query.Node]int) {
		qnodes := q.Vars()
		qidx := make(map[*query.Node]int, len(qnodes))
		for i, qn := range qnodes {
			qidx[qn] = i
		}
		return qnodes, qidx
	}

	// Two separately parsed queries with the same text — the serving
	// pattern — must share one entry.
	q1, err := query.Parse("//a{//b?,//d?}")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.Parse("//a{//b?,//d?}")
	if err != nil {
		t.Fatal(err)
	}
	if q1 == q2 {
		t.Fatal("test wants distinct query pointers")
	}
	n1, i1 := vars(q1)
	n2, i2 := vars(q2)
	mm1 := massFor(sk, q1, n1, i1)
	mm2 := massFor(sk, q2, n2, i2)
	if mm1 != mm2 {
		t.Fatal("same query text from distinct pointers did not hit the cache")
	}
	massCache.Lock()
	entries := len(massCache.m)
	massCache.Unlock()
	if entries != 1 {
		t.Fatalf("cache holds %d entries after one query text, want 1", entries)
	}

	// A client cycling distinct query texts is bounded by massCacheCap, and
	// the most recent entry stays resident.
	var last *query.Query
	for i := 0; i < 3*massCacheCap; i++ {
		src := "//a" + strings.Repeat("//b", i%2+1) + "{" + strings.Repeat("/c", i/2+1) + "?}"
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		qn, qi := vars(q)
		massFor(sk, q, qn, qi)
		last = q
	}
	massCache.Lock()
	entries, lruLen := len(massCache.m), massCache.lru.Len()
	massCache.Unlock()
	if entries > massCacheCap || lruLen > massCacheCap {
		t.Fatalf("cache grew to %d map / %d lru entries, cap %d", entries, lruLen, massCacheCap)
	}
	if entries != lruLen {
		t.Fatalf("map (%d) and lru (%d) out of sync", entries, lruLen)
	}
	qn, qi := vars(last)
	mmA := massFor(sk, last, qn, qi)
	mmB := massFor(sk, last, qn, qi)
	if mmA != mmB {
		t.Fatal("most recently used entry was evicted")
	}
}
