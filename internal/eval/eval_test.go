package eval

import (
	"math"
	"testing"
	"testing/quick"

	"treesketch/internal/esd"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestIndexChildrenAndDescendants(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c),b),a(c),b)")
	ix := NewIndex(doc)
	root := doc.Root
	if got := len(ix.Children(root, "a")); got != 2 {
		t.Fatalf("children a = %d, want 2", got)
	}
	if got := len(ix.Children(root, "b")); got != 1 {
		t.Fatalf("children b = %d, want 1", got)
	}
	if got := len(ix.Descendants(root, "b")); got != 3 {
		t.Fatalf("descendants b = %d, want 3", got)
	}
	if got := len(ix.Descendants(root, "c")); got != 2 {
		t.Fatalf("descendants c = %d, want 2", got)
	}
	a1 := root.Children[0]
	if got := len(ix.Descendants(a1, "c")); got != 1 {
		t.Fatalf("descendants c under a1 = %d, want 1", got)
	}
	if !ix.IsAncestor(root, a1) || ix.IsAncestor(a1, root) || ix.IsAncestor(a1, a1) {
		t.Fatal("IsAncestor wrong")
	}
}

func exactOf(doc string, q string) *ExactResult {
	tr := xmltree.MustCompact(doc)
	return Exact(NewIndex(tr), query.MustParse(q))
}

func TestExactSimplePaths(t *testing.T) {
	cases := []struct {
		doc, q string
		tuples float64
	}{
		{"r(a,a,a)", "//a", 3},
		{"r(a,a,a)", "/a", 3},
		{"r(a(b),a)", "/a/b", 1},
		{"r(a(b),a(b,b))", "//b", 3},
		{"r(a(b),a(b,b))", "//a{/b}", 3}, // (a1,b1),(a2,b2),(a2,b3)
		{"r(a(b),c(b))", "/a/b", 1},
		{"r(a(b(c)))", "//c", 1},
		{"r(a,b)", "//z", 0},
	}
	for _, c := range cases {
		r := exactOf(c.doc, c.q)
		if r.Tuples != c.tuples {
			t.Errorf("%s on %s: tuples = %g, want %g", c.q, c.doc, r.Tuples, c.tuples)
		}
		if (c.tuples == 0) != r.Empty {
			t.Errorf("%s on %s: Empty = %v", c.q, c.doc, r.Empty)
		}
	}
}

func TestExactPredicates(t *testing.T) {
	cases := []struct {
		doc, q string
		tuples float64
	}{
		{"r(a(b),a(c))", "//a[/b]", 1},
		{"r(a(b),a(c))", "//a[/c]", 1},
		{"r(a(b),a(c))", "//a[/z]", 0},
		{"r(a(x(b)),a(c))", "//a[//b]", 1},
		{"r(a(b,c),a(c))", "//a[/b][/c]", 1},
		{"r(a(x(y)),a(x))", "//a[/x[/y]]", 1},
	}
	for _, c := range cases {
		if r := exactOf(c.doc, c.q); r.Tuples != c.tuples {
			t.Errorf("%s on %s: tuples = %g, want %g", c.q, c.doc, r.Tuples, c.tuples)
		}
	}
}

func TestExactRequiredVsOptionalEdges(t *testing.T) {
	doc := "r(a(b),a(c))"
	// Required child edge: only the a with a b child binds q1.
	if r := exactOf(doc, "//a{/b}"); r.Tuples != 1 {
		t.Fatalf("required: tuples = %g, want 1", r.Tuples)
	}
	// Optional child edge: both a's bind; the one without b contributes a
	// NULL binding.
	if r := exactOf(doc, "//a{/b?}"); r.Tuples != 2 {
		t.Fatalf("optional: tuples = %g, want 2", r.Tuples)
	}
}

func TestExactValidityPropagation(t *testing.T) {
	// q1 binds a only if it has a p child that itself has a k child.
	doc := "r(a(p(k)),a(p),a)"
	if r := exactOf(doc, "//a{/p{/k}}"); r.Tuples != 1 {
		t.Fatalf("tuples = %g, want 1", r.Tuples)
	}
}

func TestExactDedupAcrossStepSets(t *testing.T) {
	// Both x's reach the same b via //: it must bind q1 once.
	doc := "r(x(x(b)))"
	if r := exactOf(doc, "//b"); r.Tuples != 1 {
		t.Fatalf("tuples = %g, want 1", r.Tuples)
	}
}

func TestExactHandPicked(t *testing.T) {
	// d(a1(n,p(k,k),b), a2(n,p(k)), a3(p(k,k,k))): query selects authors
	// with a book, returning their papers with keywords and names.
	doc := "d(a(n,p(k,k),b),a(n,p(k)),a(p(k,k,k)))"
	r := exactOf(doc, "//a[/b]{/p{/k?},/n?}")
	if r.Tuples != 2 {
		t.Fatalf("tuples = %g, want 2", r.Tuples)
	}
	nt, err := r.NestingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	// Nesting tree: d(a(p(k,k),n)) -> 6 nodes.
	if nt.Size() != 6 {
		t.Fatalf("nesting tree size = %d, want 6: %s", nt.Size(), nt.Compact())
	}
}

func TestNestingTreeCap(t *testing.T) {
	tr := xmltree.MustCompact("r(a*50(b*20))")
	r := Exact(NewIndex(tr), query.MustParse("//a{/b}"))
	if _, err := r.NestingTree(10); err == nil {
		t.Fatal("NestingTree ignored cap")
	}
}

func approxStable(doc, q string) (*ExactResult, *Result) {
	tr := xmltree.MustCompact(doc)
	st := stable.Build(tr)
	ex := Exact(NewIndex(tr), query.MustParse(q))
	ap := Approx(sketch.FromStable(st), query.MustParse(q), Options{})
	return ex, ap
}

func TestApproxExactOnStableSynopsis(t *testing.T) {
	cases := []struct {
		doc, q string
	}{
		{"r(a,a,a)", "//a"},
		{"r(a(b),a(b,b))", "//a{/b}"},
		{"r(a(b),a(c))", "//a[/b]"},
		{"r(a(b),a(c))", "//a{/b?}"},
		{"d(a(n,p(k,k),b),a(n,p(k)),a(p(k,k,k)))", "//a[/b]{/p{/k?},/n?}"},
		{"r(x(a(b,b)),x(a(b)),y(a(b,b,b)))", "//a{/b}"},
		{"r(a(p(k)),a(p),a)", "//a{/p{/k}}"},
		{"r(a(b,c),a(b),a(c))", "//a[/b][/c]"},
	}
	for _, c := range cases {
		ex, ap := approxStable(c.doc, c.q)
		if ex.Empty != ap.Empty {
			t.Errorf("%s on %s: Empty exact=%v approx=%v", c.q, c.doc, ex.Empty, ap.Empty)
			continue
		}
		if ex.Empty {
			continue
		}
		sel := ap.Selectivity()
		if math.Abs(sel-ex.Tuples) > 1e-9*(1+ex.Tuples) {
			t.Errorf("%s on %s: selectivity %g, exact %g", c.q, c.doc, sel, ex.Tuples)
		}
		d := esd.Distance(ex.ESDGraph(), ap.ESDGraph())
		if d > 1e-9 {
			t.Errorf("%s on %s: ESD to exact = %g, want 0", c.q, c.doc, d)
		}
	}
}

func TestApproxEmptyOnNegativeQuery(t *testing.T) {
	_, ap := approxStable("r(a(b))", "//z")
	if !ap.Empty {
		t.Fatal("negative query not Empty")
	}
	if ap.Selectivity() != 0 {
		t.Fatalf("Selectivity = %g, want 0", ap.Selectivity())
	}
	if ap.ESDGraph() != nil {
		t.Fatal("ESDGraph of empty result should be nil")
	}
}

func TestApproxRequiredVariableEmpty(t *testing.T) {
	// //a{/z} has bindings for q1 but none for required q2.
	_, ap := approxStable("r(a(b))", "//a{/z}")
	if !ap.Empty {
		t.Fatal("expected empty result")
	}
}

// figure9Sketch builds the synopsis of the paper's Figure 9(b) restricted
// to the d[/g]//f branch that the worked example computes.
func figure9Sketch() *sketch.Sketch {
	mk := func(id int, label string, count int, edges ...sketch.Edge) *sketch.Node {
		return &sketch.Node{ID: id, Label: label, Count: count, Edges: edges}
	}
	ed := func(child int, avg float64, srcCount int) sketch.Edge {
		c := float64(srcCount)
		return sketch.Edge{Child: child, Avg: avg, Sum: avg * c, SumSq: avg * avg * c}
	}
	sk := &sketch.Sketch{Root: 0}
	sk.Nodes = []*sketch.Node{
		mk(0, "r", 1, ed(1, 10, 1)),
		mk(1, "a", 10, ed(2, 2, 10)),
		mk(2, "d", 20, ed(3, 0.5, 20), ed(4, 0.6, 20), ed(5, 0.7, 20)),
		mk(3, "f", 10, ed(6, 1.5, 10)),
		mk(4, "g1", 12),
		mk(5, "g2", 14),
		mk(6, "c", 15),
	}
	// Distinct g classes share the label g (the paper's G1 and G2).
	sk.Nodes[4].Label = "g"
	sk.Nodes[5].Label = "g"
	return sk
}

func TestFigure9WorkedExample(t *testing.T) {
	// In PaperMode the output matches the paper's Example 4.1 verbatim.
	sk := figure9Sketch()
	q := query.MustParse("//a{/d[/g]//f{/c?}}")
	r := Approx(sk, q, Options{PaperMode: true})
	if r.Empty {
		t.Fatal("result empty")
	}
	byVar := map[string]*RNode{}
	for _, rn := range r.Nodes {
		byVar[rn.Var] = rn
	}
	// rQ -> AQ with count 10.
	root := r.Nodes[r.Root]
	if len(root.Edges) != 1 || math.Abs(root.Edges[0].K-10) > 1e-12 {
		t.Fatalf("root edge = %+v, want k=10", root.Edges)
	}
	// AQ -> FQ with k = nt * s = (2 * 0.5) * (0.6 + 0.7 - 0.6*0.7) = 0.88.
	aq := byVar["q1"]
	if aq == nil || len(aq.Edges) != 1 {
		t.Fatalf("AQ edges = %+v", aq)
	}
	if got := aq.Edges[0].K; math.Abs(got-0.88) > 1e-12 {
		t.Fatalf("k(AQ,FQ) = %g, want 0.88 (paper's Example 4.1)", got)
	}
	// FQ -> CQ with k = 1.5.
	fq := byVar["q2"]
	if fq == nil || len(fq.Edges) != 1 || math.Abs(fq.Edges[0].K-1.5) > 1e-12 {
		t.Fatalf("FQ edges = %+v, want k=1.5", fq.Edges)
	}
	// Selectivity: 10 * 0.88 * 1.5 = 13.2.
	if sel := r.Selectivity(); math.Abs(sel-13.2) > 1e-9 {
		t.Fatalf("Selectivity = %g, want 13.2", sel)
	}
}

func TestFigure9RefinedMode(t *testing.T) {
	// In the default refined mode the two-moment existence estimator reads
	// the hand-built synopsis's zero-variance statistics as "every d
	// element has g children" (P = Sum^2/(Count*SumSq) = 1), so the [/g]
	// branch passes for all elements: k(AQ,FQ) = nt*1 = 1, and the
	// required-edge conditioning leaves k(rQ,AQ) at 10 since k >= 1.
	sk := figure9Sketch()
	q := query.MustParse("//a{/d[/g]//f{/c?}}")
	r := Approx(sk, q, Options{})
	byVar := map[string]*RNode{}
	for _, rn := range r.Nodes {
		byVar[rn.Var] = rn
	}
	root := r.Nodes[r.Root]
	if got := root.Edges[0].K; math.Abs(got-10) > 1e-12 {
		t.Fatalf("k(rQ,AQ) = %g, want 10", got)
	}
	if got := byVar["q1"].Edges[0].K; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("k(AQ,FQ) = %g, want 1.0", got)
	}
	if sel := r.Selectivity(); math.Abs(sel-15) > 1e-9 {
		t.Fatalf("Selectivity = %g, want 15", sel)
	}
}

func TestBranchSelCertainty(t *testing.T) {
	// When some embedding yields count >= 1 the branch selectivity is
	// exactly 1 (Figure 8, lines 8-9).
	sk := figure9Sketch()
	// Raise one g edge count above 1.
	sk.Nodes[2].Edges[1].Avg = 1.2
	q := query.MustParse("//a{/d[/g]//f}")
	r := Approx(sk, q, Options{})
	byVar := map[string]*RNode{}
	for _, rn := range r.Nodes {
		byVar[rn.Var] = rn
	}
	if got := byVar["q1"].Edges[0].K; math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("k = %g, want 1.0 (selectivity clamped to 1)", got)
	}
}

func TestCountsAggregateAlongMultiplePaths(t *testing.T) {
	// Two synopsis paths lead to the same f class; counts must add
	// (Figure 7, line 12).
	mk := func(id int, label string, count int, edges ...sketch.Edge) *sketch.Node {
		return &sketch.Node{ID: id, Label: label, Count: count, Edges: edges}
	}
	ed := func(child int, avg float64, srcCount int) sketch.Edge {
		c := float64(srcCount)
		return sketch.Edge{Child: child, Avg: avg, Sum: avg * c, SumSq: avg * avg * c}
	}
	sk := &sketch.Sketch{Root: 0, Nodes: []*sketch.Node{
		mk(0, "r", 1, ed(1, 2, 1), ed(2, 3, 1)),
		mk(1, "x", 2, ed(3, 1, 2)),
		mk(2, "y", 3, ed(3, 2, 3)),
		mk(3, "f", 8),
	}}
	r := Approx(sk, query.MustParse("//f"), Options{})
	root := r.Nodes[r.Root]
	if len(root.Edges) != 1 {
		t.Fatalf("edges = %+v", root.Edges)
	}
	// 2*1 via x + 3*2 via y = 8.
	if got := root.Edges[0].K; math.Abs(got-8) > 1e-12 {
		t.Fatalf("k = %g, want 8", got)
	}
}

func TestTruncationFlag(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b(c),b(c)),a(b(c)))")
	st := stable.Build(tr)
	r := Approx(sketch.FromStable(st), query.MustParse("//c"), Options{MaxEmbeddings: 1})
	if !r.Truncated {
		t.Fatal("expected truncation with MaxEmbeddings=1")
	}
}

func TestResultExpandMatchesExactOnStable(t *testing.T) {
	doc := "d(a(n,p(k,k),b),a(n,p(k)),a(p(k,k,k)))"
	ex, ap := approxStable(doc, "//a[/b]{/p{/k?},/n?}")
	nt, err := ex.NestingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ap.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != nt.Size() {
		t.Fatalf("expanded size %d, exact nesting tree %d", out.Size(), nt.Size())
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		truth, est, sanity, want float64
	}{
		{100, 90, 10, 0.1},
		{100, 110, 10, 0.1},
		{0, 0, 10, 0},
		{5, 10, 10, 0.5}, // sanity bound kicks in
		{0, 5, 10, 0.5},
	}
	for _, c := range cases {
		if got := RelativeError(c.truth, c.est, c.sanity); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeError(%g,%g,%g) = %g, want %g", c.truth, c.est, c.sanity, got, c.want)
		}
	}
}

// stratifiedDoc builds a random document whose labels encode their depth,
// so no label nests within itself. On such documents approximate
// evaluation over the count-stable synopsis is exact (Section 4.3); label
// recursion would make multi-step descendant paths count elements once per
// matching ancestor, which set-semantics XPath deduplicates.
func stratifiedDoc(seed uint64) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	variants := []string{"a", "b"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(variants[next(2)] + itoa(depth))
		if depth < 4 {
			for i := uint64(0); i < next(4); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	tr.Root = tr.NewNode("r")
	for i := uint64(0); i <= next(4); i++ {
		tr.Root.Children = append(tr.Root.Children, build(1))
	}
	return tr
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return out
}

func TestPropStableSynopsisIsExact(t *testing.T) {
	f := func(seed uint64) bool {
		tr := stratifiedDoc(seed)
		st := stable.Build(tr)
		ix := NewIndex(tr)
		sk := sketch.FromStable(st)
		queries := query.Generate(st, 8, query.GenOptions{Seed: int64(seed % (1 << 30))})
		for _, q := range queries {
			ex := Exact(ix, q)
			ap := Approx(sk, q, Options{})
			if ex.Empty != ap.Empty {
				t.Logf("seed %d: %s: Empty exact=%v approx=%v", seed, q, ex.Empty, ap.Empty)
				return false
			}
			if ex.Empty {
				continue
			}
			if ex.Tuples <= 0 {
				t.Logf("seed %d: %s: generated workload query not positive", seed, q)
				return false
			}
			sel := ap.Selectivity()
			if math.Abs(sel-ex.Tuples) > 1e-6*(1+ex.Tuples) {
				t.Logf("seed %d: %s: selectivity %g, exact %g", seed, q, sel, ex.Tuples)
				return false
			}
			if d := esd.Distance(ex.ESDGraph(), ap.ESDGraph()); d > 1e-6 {
				t.Logf("seed %d: %s: ESD %g", seed, q, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// recursiveDoc builds random documents where labels nest freely, the case
// that trips naive per-assignment embedding counting (XPath deduplicates a
// //a//b match even when the b sits under two nested a ancestors).
func recursiveDoc(seed uint64) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	labels := []string{"a", "b", "c"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(labels[next(3)])
		if depth < 5 {
			for i := uint64(0); i < next(4); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	tr.Root = tr.NewNode("r")
	for i := uint64(0); i <= next(3); i++ {
		tr.Root.Children = append(tr.Root.Children, build(1))
	}
	return tr
}

func TestPropStableExactOnRecursiveDocs(t *testing.T) {
	f := func(seed uint64) bool {
		tr := recursiveDoc(seed)
		st := stable.Build(tr)
		ix := NewIndex(tr)
		sk := sketch.FromStable(st)
		for _, q := range query.Generate(st, 6, query.GenOptions{Seed: int64(seed % (1 << 30))}) {
			ex := Exact(ix, q)
			ap := Approx(sk, q, Options{})
			if ex.Empty != ap.Empty {
				t.Logf("seed %d: %s: Empty exact=%v approx=%v", seed, q, ex.Empty, ap.Empty)
				return false
			}
			if ex.Empty {
				continue
			}
			sel := ap.Selectivity()
			if math.Abs(sel-ex.Tuples) > 1e-6*(1+ex.Tuples) {
				t.Logf("seed %d: %s: selectivity %g, exact %g", seed, q, sel, ex.Tuples)
				return false
			}
			if d := esd.Distance(ex.ESDGraph(), ap.ESDGraph()); d > 1e-6 {
				t.Logf("seed %d: %s: ESD %g", seed, q, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPaperModeExactOnStable(t *testing.T) {
	// The refinements are the identity on count-stable synopses, so
	// PaperMode must be exact there too.
	f := func(seed uint64) bool {
		tr := recursiveDoc(seed)
		st := stable.Build(tr)
		ix := NewIndex(tr)
		sk := sketch.FromStable(st)
		for _, q := range query.Generate(st, 4, query.GenOptions{Seed: int64(seed % (1 << 30))}) {
			ex := Exact(ix, q)
			ap := Approx(sk, q, Options{PaperMode: true})
			if ex.Empty != ap.Empty {
				return false
			}
			if ex.Empty {
				continue
			}
			if math.Abs(ap.Selectivity()-ex.Tuples) > 1e-6*(1+ex.Tuples) {
				t.Logf("seed %d: %s: %g vs %g", seed, q, ap.Selectivity(), ex.Tuples)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCompressedSketchStillAnswers(t *testing.T) {
	// On compressed synopses answers are approximate but must be sane:
	// non-negative selectivity, well-formed result graphs, Expand succeeds.
	f := func(seed uint64) bool {
		tr := stratifiedDoc(seed)
		st := stable.Build(tr)
		sk := sketch.FromStable(st)
		queries := query.Generate(st, 4, query.GenOptions{Seed: int64(seed % (1 << 30))})
		for _, q := range queries {
			r := Approx(sk, q, Options{})
			if r.Empty {
				continue
			}
			if r.Selectivity() < 0 {
				return false
			}
			if _, err := r.Expand(1 << 18); err != nil {
				t.Logf("seed %d: expand: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
