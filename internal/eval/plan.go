package eval

import (
	"sync"

	"treesketch/internal/query"
)

// qplan is the compiled, normalized form of a twig query used by the
// approximate evaluator's fast path: query variables stay in pre-order
// (the topological order processEdge relies on), and every path expression
// — main paths and nested branching predicates alike — carries its
// precomputed per-edge label set so enumeration can refuse to start when a
// label is absent from the synopsis.
//
// Plans are immutable after compilation and cached per *query.Query
// process-wide (queries are evaluated repeatedly by the bench and
// experiment harnesses), so concurrent Approx calls share one plan.
type qplan struct {
	paths map[*query.Path]*pathPlan
}

// pathPlan is the compiled form of one path expression.
type pathPlan struct {
	// labels is the deduplicated set of step labels along the main path
	// (predicates compile to their own pathPlan). If any of them does not
	// occur in a synopsis, the path has zero embeddings there.
	labels []string
	// hasPreds marks that some step carries a branching predicate, which
	// forces embeddings to be materialized (the best step assignment is
	// picked per node path); predicate-free paths stream instead.
	hasPreds bool
	// canDup marks that one synopsis node path can be emitted under more
	// than one step assignment, which requires deduplication during
	// enumeration. The emitted node sequence records every traversed
	// synopsis node, so a walk's length pins each Child step and each
	// single Descendant step to one position; only two or more Descendant
	// steps leave assignment freedom.
	canDup bool
}

// planCache memoizes compiled plans per query identity. Entries are tiny
// (a handful of small slices per path expression) and queries are shared
// workload objects, so unbounded growth is not a concern in practice.
var planCache sync.Map // *query.Query -> *qplan

// planFor returns the compiled plan of q, compiling and caching it on
// first use. cached reports whether the plan came from the cache.
func planFor(q *query.Query) (p *qplan, cached bool) {
	if v, ok := planCache.Load(q); ok {
		return v.(*qplan), true
	}
	p = compilePlan(q)
	if v, loaded := planCache.LoadOrStore(q, p); loaded {
		return v.(*qplan), true
	}
	return p, false
}

func compilePlan(q *query.Query) *qplan {
	p := &qplan{paths: make(map[*query.Path]*pathPlan)}
	var addPath func(path *query.Path)
	addPath = func(path *query.Path) {
		if _, ok := p.paths[path]; ok {
			return
		}
		pp := &pathPlan{}
		seen := make(map[string]bool)
		descSteps := 0
		for si := range path.Steps {
			step := &path.Steps[si]
			if !seen[step.Label] {
				seen[step.Label] = true
				pp.labels = append(pp.labels, step.Label)
			}
			if step.Axis == query.Descendant {
				descSteps++
			}
			if len(step.Preds) > 0 {
				pp.hasPreds = true
			}
			for _, pred := range step.Preds {
				addPath(pred)
			}
		}
		pp.canDup = descSteps >= 2
		p.paths[path] = pp
	}
	for _, qn := range q.Vars() {
		for _, e := range qn.Edges {
			addPath(e.Path)
		}
	}
	return p
}

// canTab returns (building on first use) the can-complete memo of one path
// expression over the evaluation's synopsis: plane one holds canRec(node,
// si) — "enumerating steps[si:] from node emits at least one embedding" —
// and plane two holds canDesc(node, si), the same question for the
// descendant-axis search that explores strictly below node. DFS branches
// whose entry is false are pruned without being walked; because the memo
// answers existence exactly (not a label-reachability approximation), every
// surviving branch leads to an emission, which is what bounds the
// enumeration tail by output size rather than synopsis size.
func (a *approxer) canTab(p *query.Path) []int8 {
	if t, ok := a.canTabs[p]; ok {
		return t
	}
	t := make([]int8, 2*len(p.Steps)*len(a.sk.Nodes))
	if a.canTabs == nil {
		a.canTabs = make(map[*query.Path][]int8)
	}
	a.canTabs[p] = t
	return t
}

// canRec reports whether enumerating steps[si:] from node yields at least
// one embedding. Memo values: 0 unknown, 1 yes, 2 no (also the in-progress
// marker, which keeps malformed cyclic inputs from recursing forever).
func (a *approxer) canRec(tab []int8, steps []query.Step, node, si int) bool {
	if si == len(steps) {
		return true
	}
	n := len(a.sk.Nodes)
	slot := si*n + node
	if v := tab[slot]; v != 0 {
		a.canHits++
		return v == 1
	}
	tab[slot] = 2
	a.tickCtx(1)
	step := &steps[si]
	res := false
	if u := a.sk.Nodes[node]; u != nil {
		if step.Axis == query.Child {
			for _, e := range u.Edges {
				c := a.sk.Nodes[e.Child]
				if c != nil && c.Label == step.Label && a.canRec(tab, steps, e.Child, si+1) {
					res = true
					break
				}
			}
		} else {
			res = a.canDesc(tab, steps, node, si)
		}
	}
	if res {
		tab[slot] = 1
	}
	return res
}

// canDesc reports whether the descendant-axis search for steps[si:] rooted
// strictly below node can land on a matching element and complete.
func (a *approxer) canDesc(tab []int8, steps []query.Step, node, si int) bool {
	n := len(a.sk.Nodes)
	slot := (len(steps)+si)*n + node
	if v := tab[slot]; v != 0 {
		a.canHits++
		return v == 1
	}
	tab[slot] = 2
	a.tickCtx(1)
	step := &steps[si]
	res := false
	if u := a.sk.Nodes[node]; u != nil {
		for _, e := range u.Edges {
			c := a.sk.Nodes[e.Child]
			if c == nil {
				continue
			}
			if c.Label == step.Label && a.canRec(tab, steps, e.Child, si+1) {
				res = true
				break
			}
			if a.canDesc(tab, steps, e.Child, si) {
				res = true
				break
			}
		}
	}
	if res {
		tab[slot] = 1
	}
	return res
}
