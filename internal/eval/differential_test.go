package eval

import (
	"math"
	"math/rand"
	"testing"

	"treesketch/internal/datagen"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

// bruteTuples is a brute-force reference twig evaluator: naive recursion
// over the document tree with no memoization and no index. It re-derives
// the binding-tuple count from the semantics alone (a tuple assigns one
// element per required variable, NULL per unmatched optional subtree), so
// agreement with Exact is evidence about the evaluator, not about shared
// plumbing. Exponential in the worst case — callers keep documents small.
func bruteTuples(doc *xmltree.Tree, q *query.Query) float64 {
	qnodes := q.Vars()
	qidx := make(map[*query.Node]int)
	for i, qn := range qnodes {
		qidx[qn] = i
	}

	var axisMatches func(e *xmltree.Node, label string, desc bool, out []*xmltree.Node) []*xmltree.Node
	axisMatches = func(e *xmltree.Node, label string, desc bool, out []*xmltree.Node) []*xmltree.Node {
		for _, c := range e.Children {
			if c.Label == label {
				out = append(out, c)
			}
			if desc {
				out = axisMatches(c, label, desc, out)
			}
		}
		return out
	}

	var pathMatches func(e *xmltree.Node, p *query.Path) []*xmltree.Node
	pathMatches = func(e *xmltree.Node, p *query.Path) []*xmltree.Node {
		cur := []*xmltree.Node{e}
		for si := range p.Steps {
			step := &p.Steps[si]
			seen := make(map[int]bool)
			var next []*xmltree.Node
			for _, c := range cur {
				for _, t := range axisMatches(c, step.Label, step.Axis == query.Descendant, nil) {
					if seen[t.OID] {
						continue
					}
					seen[t.OID] = true
					sat := true
					for _, pred := range step.Preds {
						if len(pathMatches(t, pred)) == 0 {
							sat = false
							break
						}
					}
					if sat {
						next = append(next, t)
					}
				}
			}
			cur = next
		}
		return cur
	}

	var valid func(qi int, e *xmltree.Node) bool
	var tuples func(qi int, e *xmltree.Node) float64
	valid = func(qi int, e *xmltree.Node) bool {
		for _, edge := range qnodes[qi].Edges {
			if edge.Optional {
				continue
			}
			found := false
			for _, m := range pathMatches(e, edge.Path) {
				if valid(qidx[edge.Child], m) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	tuples = func(qi int, e *xmltree.Node) float64 {
		total := 1.0
		for _, edge := range qnodes[qi].Edges {
			var s float64
			for _, m := range pathMatches(e, edge.Path) {
				if valid(qidx[edge.Child], m) {
					s += tuples(qidx[edge.Child], m)
				}
			}
			if s == 0 {
				if edge.Optional {
					s = 1
				} else {
					return 0
				}
			}
			total *= s
		}
		return total
	}

	if doc.Root == nil || !valid(0, doc.Root) {
		return 0
	}
	return tuples(0, doc.Root)
}

// diffDocs yields the differential-test document corpus: every datagen
// family at small scale across several seeds, plus unstructured random
// trees over a tiny recursive alphabet (which stress //-axis dedup and
// the can-complete memo harder than the realistic families do).
func diffDocs(t *testing.T) []*xmltree.Tree {
	t.Helper()
	var docs []*xmltree.Tree
	for _, ds := range datagen.All() {
		for seed := int64(1); seed <= 3; seed++ {
			docs = append(docs, datagen.Generate(ds, 120, seed))
		}
	}
	labels := []string{"a", "b", "c", "d"}
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := xmltree.NewTree()
		root := tr.NewNode("r")
		tr.Root = root
		frontier := []*xmltree.Node{root}
		for len(frontier) > 0 && tr.Size() < 80 {
			n := frontier[0]
			frontier = frontier[1:]
			kids := rng.Intn(4)
			for i := 0; i < kids; i++ {
				c := tr.NewNode(labels[rng.Intn(len(labels))])
				n.Children = append(n.Children, c)
				frontier = append(frontier, c)
			}
		}
		docs = append(docs, tr)
	}
	return docs
}

func diffQueries(t *testing.T, doc *xmltree.Tree, n int, seed int64) []*query.Query {
	t.Helper()
	st := stable.Build(doc)
	return query.Generate(st, n, query.GenOptions{
		Seed:          seed,
		MaxFanout:     2,
		MaxQueryDepth: 2,
		MaxSteps:      2,
	})
}

// TestDifferentialExactVsBruteForce cross-checks Exact against the
// brute-force evaluator on 500+ (document, query) pairs.
func TestDifferentialExactVsBruteForce(t *testing.T) {
	pairs := 0
	for di, doc := range diffDocs(t) {
		ix := NewIndex(doc)
		for _, q := range diffQueries(t, doc, 40, int64(di)+100) {
			pairs++
			got := Exact(ix, q)
			want := bruteTuples(doc, q)
			if got.Tuples != want {
				t.Fatalf("doc %d, query %s: Exact=%g brute=%g", di, q, got.Tuples, want)
			}
			if got.Empty != (want == 0) {
				t.Fatalf("doc %d, query %s: Empty=%v but brute=%g", di, q, got.Empty, want)
			}
		}
	}
	if pairs < 500 {
		t.Fatalf("only %d differential pairs, want >= 500", pairs)
	}
	t.Logf("differential pairs: %d", pairs)
}

// TestDifferentialExactVsReference checks the fast exact path is
// bit-identical to the preserved map-based reference evaluator.
func TestDifferentialExactVsReference(t *testing.T) {
	pairs := 0
	for di, doc := range diffDocs(t) {
		ix := NewIndex(doc)
		for _, q := range diffQueries(t, doc, 40, int64(di)+200) {
			pairs++
			got := Exact(ix, q)
			refT, refE := ExactReference(ix, q)
			if math.Float64bits(got.Tuples) != math.Float64bits(refT) {
				t.Fatalf("doc %d, query %s: fast=%v ref=%v", di, q, got.Tuples, refT)
			}
			if got.Empty != refE {
				t.Fatalf("doc %d, query %s: Empty fast=%v ref=%v", di, q, got.Empty, refE)
			}
		}
	}
	if pairs < 500 {
		t.Fatalf("only %d pairs, want >= 500", pairs)
	}
}

// TestDifferentialApproxFastVsReference checks the plan-driven approximate
// fast path is bit-identical to the reference enumeration — selectivity,
// emptiness, node counts — on every quick-grid dataset family, at two
// synopsis budgets each (a heavily merged and a lightly merged one).
func TestDifferentialApproxFastVsReference(t *testing.T) {
	for _, ds := range datagen.All() {
		doc := datagen.Generate(ds, 2000, 1)
		st := stable.Build(doc)
		for _, div := range []int{2, 8} {
			sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: st.SizeBytes() / div})
			for qi, q := range query.Generate(st, 40, query.GenOptions{Seed: int64(div)}) {
				fast := Approx(sk, q, Options{})
				ref := Approx(sk, q, Options{Reference: true})
				if fast.Truncated || ref.Truncated {
					continue // budgets diverge under truncation by design
				}
				if fast.Empty != ref.Empty {
					t.Fatalf("%s/%d q%d %s: Empty fast=%v ref=%v", ds, div, qi, q, fast.Empty, ref.Empty)
				}
				fs, rs := fast.Selectivity(), ref.Selectivity()
				if math.Float64bits(fs) != math.Float64bits(rs) {
					t.Fatalf("%s/%d q%d %s: selectivity fast=%v ref=%v", ds, div, qi, q, fs, rs)
				}
				if len(fast.Nodes) != len(ref.Nodes) {
					t.Fatalf("%s/%d q%d %s: nodes fast=%d ref=%d", ds, div, qi, q, len(fast.Nodes), len(ref.Nodes))
				}
				for i := range fast.Nodes {
					fn, rn := fast.Nodes[i], ref.Nodes[i]
					if fn.Src != rn.Src || fn.VarID != rn.VarID ||
						math.Float64bits(fn.Count) != math.Float64bits(rn.Count) {
						t.Fatalf("%s/%d q%d %s: node %d fast={src %d var %d count %v} ref={src %d var %d count %v}",
							ds, div, qi, q, i, fn.Src, fn.VarID, fn.Count, rn.Src, rn.VarID, rn.Count)
					}
				}
			}
		}
	}
}
