package eval

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

// TestPropConditioningPreservesSelectivity verifies the key design
// invariant of the conditioning pass: it redistributes counts (parents
// filtered by survival, surviving parents' averages rescaled) without
// changing the selectivity estimate.
func TestPropConditioningPreservesSelectivity(t *testing.T) {
	f := func(seed uint64) bool {
		tr := recursiveDoc(seed)
		st := stable.Build(tr)
		sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: st.SizeBytes() / 2})
		for _, q := range query.Generate(st, 5, query.GenOptions{Seed: int64(seed % (1 << 29))}) {
			with := approxWith(context.Background(), sk, q, Options{}.withDefaults(), true, true)
			without := approxWith(context.Background(), sk, q, Options{}.withDefaults(), false, true)
			if with.Empty != without.Empty {
				t.Logf("seed %d: %s: Empty %v vs %v", seed, q, with.Empty, without.Empty)
				return false
			}
			if with.Empty {
				continue
			}
			a, b := with.Selectivity(), without.Selectivity()
			if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
				t.Logf("seed %d: %s: selectivity %g (conditioned) vs %g", seed, q, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConditioningFiltersUnsatisfiedParents reproduces the scenario that
// motivated the pass: a merged cluster where only a fraction of elements
// has the required child must contribute only that fraction of elements to
// the expanded answer.
func TestConditioningFiltersUnsatisfiedParents(t *testing.T) {
	// 10 a's: 3 with a b child, 7 without. After full compression the a
	// cluster has k(b) = 0.3.
	tr := xmltree.MustCompact("r(a*3(b),a*7(c))")
	st := stable.Build(tr)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})
	q := query.MustParse("//a{/b}")

	with := Approx(sk, q, Options{})
	out, err := with.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	out.PreOrder(func(n *xmltree.Node) { counts[n.Label]++ })
	if counts["a"] != 3 {
		t.Fatalf("conditioned answer has %d a's, want 3", counts["a"])
	}
	if counts["b"] != 3 {
		t.Fatalf("conditioned answer has %d b's, want 3", counts["b"])
	}

	without := Approx(sk, q, Options{PaperMode: true})
	outRaw, err := without.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	raw := map[string]int{}
	outRaw.PreOrder(func(n *xmltree.Node) { raw[n.Label]++ })
	if raw["a"] != 10 {
		t.Fatalf("unconditioned answer has %d a's, want 10 (Figure 7 verbatim)", raw["a"])
	}
	if sel := with.Selectivity(); math.Abs(sel-3) > 1e-9 {
		t.Fatalf("selectivity %g, want 3", sel)
	}
}

// TestConditioningMutuallyExclusiveAlternatives: when one element's single
// child is spread across many alternative result classes (sum k = 1), the
// survival fraction is 1, not the inclusion-exclusion underestimate.
func TestConditioningMutuallyExclusiveAlternatives(t *testing.T) {
	// Ten a's, each with exactly one b child, but ten structurally
	// distinct b variants; compress until the b variants merge partially.
	tr := xmltree.MustCompact("r(a(b(x)),a(b(x,x)),a(b(x,x,x)),a(b(x*4)),a(b(x*5)),a(b(x*6)),a(b(x*7)),a(b(x*8)),a(b(x*9)),a(b(x*10)))")
	st := stable.Build(tr)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: st.SizeBytes() / 2})
	q := query.MustParse("//a{/b}")
	r := Approx(sk, q, Options{})
	if r.Empty {
		t.Fatal("empty")
	}
	// Every a has exactly one b: the expansion must contain all 10 a's.
	out, err := r.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	out.PreOrder(func(n *xmltree.Node) { counts[n.Label]++ })
	if counts["a"] != 10 {
		t.Fatalf("answer has %d a's, want 10 (mutual-exclusivity rule)", counts["a"])
	}
	if counts["b"] != 10 {
		t.Fatalf("answer has %d b's, want 10", counts["b"])
	}
}
