package eval

import (
	"context"
	"strings"
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// TestExactTopKNestingTree pins the exact-side budget contract: best-first
// materialization emits exactly min(k, |NT|) nodes, the frontier accounting
// is exact (EmittedMass + ErrorBound == |NT| for every k), and the
// unbounded run reproduces the full nesting tree's size.
func TestExactTopKNestingTree(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(b(c),d),b(d),c),a(b(c)),a,e(d,d,d))")
	ix := NewIndex(doc)
	for _, src := range []string{"//a{//b?,//d?}", "//a{//b{//c?}}", "//b//b", "//a[//c]{//d?}"} {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res := Exact(ix, q)
		full, err := res.NestingTree(0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		size := full.Size()
		if res.Empty && size != 0 {
			t.Fatalf("%s: empty result with %d-node tree", src, size)
		}

		ut, uinfo, err := res.TopKNestingTree(-1)
		if err != nil {
			t.Fatalf("%s: unbounded: %v", src, err)
		}
		if !uinfo.Exhausted || uinfo.ErrorBound != 0 {
			t.Fatalf("%s: unbounded run Exhausted=%v ErrorBound=%v", src, uinfo.Exhausted, uinfo.ErrorBound)
		}
		if ut.Size() != size {
			t.Fatalf("%s: unbounded top-k tree has %d nodes, NestingTree %d", src, ut.Size(), size)
		}

		for k := 1; k <= size+2; k++ {
			pt, info, err := res.TopKNestingTree(k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", src, k, err)
			}
			want := size
			if k < size {
				want = k
			}
			if pt.Size() != want || info.Expanded != want {
				t.Fatalf("%s k=%d: emitted %d nodes (info %d), want %d", src, k, pt.Size(), info.Expanded, want)
			}
			if got := info.EmittedMass + info.ErrorBound; got != float64(size) {
				t.Fatalf("%s k=%d: emitted %v + bound %v != exact size %d",
					src, k, info.EmittedMass, info.ErrorBound, size)
			}
			if info.Exhausted != (want == size) {
				t.Fatalf("%s k=%d: Exhausted=%v with %d of %d emitted", src, k, info.Exhausted, want, size)
			}
		}
	}
}

// TestExactOptsThreadsLimit checks the ExactOptions.Limit default reaches
// TopKNestingTree when the call site passes zero.
func TestExactOptsThreadsLimit(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b,b),a(b),a)")
	ix := NewIndex(doc)
	q, err := query.Parse("//a{//b?}")
	if err != nil {
		t.Fatal(err)
	}
	res := ExactOpts(context.Background(), ix, q, ExactOptions{Limit: 2})
	tr, info, err := res.TopKNestingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 || info.Expanded != 2 || info.K != 2 {
		t.Fatalf("threaded limit: size=%d expanded=%d k=%d, want 2/2/2", tr.Size(), info.Expanded, info.K)
	}
	if info.Exhausted {
		t.Fatal("budget 2 on a larger answer reported Exhausted")
	}
}

// TestExactContextCanceled pins the exact evaluator's cancellation
// contract: an expired context stops the evaluation (Canceled result, no
// bogus count), a live background context is untouched, and a cancellation
// between TopKNestingTree expansions returns the emitted prefix with
// DeadlineHit set — so a serving deadline can actually free an exact-mode
// admission slot.
func TestExactContextCanceled(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(b(c),d),b(d),c),a(b(c)),a,e(d,d,d))")
	ix := NewIndex(doc)
	q, err := query.Parse("//a{//b?,//d?}")
	if err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	res := ExactContext(expired, ix, q)
	if !res.Canceled {
		t.Fatal("expired context did not cancel the exact evaluation")
	}

	live := ExactContext(context.Background(), ix, q)
	if live.Canceled || live.Empty || live.Tuples <= 0 {
		t.Fatalf("background context result = %+v, want a live exact count", live)
	}

	// Cancel after the count but before materialization: the best-first
	// loop must stop at its boundary check with at least the root emitted.
	ctx2, cancel2 := context.WithCancel(context.Background())
	r2 := ExactOpts(ctx2, ix, q, ExactOptions{Limit: 4})
	if r2.Canceled {
		t.Fatal("live evaluation reported Canceled")
	}
	cancel2()
	nt, info, err := r2.TopKNestingTree(0)
	if err != nil {
		// A cancellation inside the subtree-size DP surfaces as the
		// context's error instead of a partial tree; both are sound.
		if err != context.Canceled {
			t.Fatalf("canceled materialization error = %v, want %v", err, context.Canceled)
		}
		return
	}
	if !info.DeadlineHit || info.Expanded < 1 {
		t.Fatalf("canceled materialization info = %+v, want DeadlineHit with >= 1 node", info)
	}
	if nt.Size() != info.Expanded {
		t.Fatalf("partial tree has %d nodes, info reports %d expanded", nt.Size(), info.Expanded)
	}
}

// countdownCtx is a deterministic stand-in for a deadline: Err() reports
// DeadlineExceeded from its limit-th poll on (0 = never), counting every
// poll either way. It makes mid-walk cancellation reproducible — a real
// timer either fires too early (before the walk starts) or too late
// (after a warm evaluation finishes) depending on machine speed.
type countdownCtx struct {
	context.Context
	polls *int
	limit int
}

func (c countdownCtx) Err() error {
	*c.polls++
	if c.limit > 0 && *c.polls >= c.limit {
		return context.DeadlineExceeded
	}
	return nil
}

// TestExactContextCanceledMidWalk pins the polling cadence on a document
// large enough that the walk's cost lives in label-position scans, not in
// recursion-entry calls: the deadline poll count must scale with traversal
// work (work-proportional tickCtx), and a context that expires mid-walk
// must cancel the evaluation. With call-count-only polling this document
// completes after a single poll, so a lapsed serving deadline would not
// free the admission slot until the document walk finished.
func TestExactContextCanceledMidWalk(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("r(")
	for i := 0; i < 4000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString("a(b(c),b(d))")
	}
	sb.WriteString(")")
	doc := xmltree.MustCompact(sb.String())
	ix := NewIndex(doc)
	q, err := query.Parse("//a[//c]{//b?,//d?}")
	if err != nil {
		t.Fatal(err)
	}

	polls := 0
	res := ExactContext(countdownCtx{Context: context.Background(), polls: &polls}, ix, q)
	if res.Canceled || res.Empty || res.Tuples <= 0 {
		t.Fatalf("live evaluation = %+v, want a real count", res)
	}
	if polls < 5 {
		t.Fatalf("evaluation over %d elements polled ctx only %d times; polling must track traversal work", doc.Size(), polls)
	}

	mid := polls / 2
	polls = 0
	res = ExactContext(countdownCtx{Context: context.Background(), polls: &polls, limit: mid}, ix, q)
	if !res.Canceled {
		t.Fatalf("context expiring at poll %d did not cancel the evaluation", mid)
	}
}
