package eval

import (
	"context"
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// TestExactTopKNestingTree pins the exact-side budget contract: best-first
// materialization emits exactly min(k, |NT|) nodes, the frontier accounting
// is exact (EmittedMass + ErrorBound == |NT| for every k), and the
// unbounded run reproduces the full nesting tree's size.
func TestExactTopKNestingTree(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(b(c),d),b(d),c),a(b(c)),a,e(d,d,d))")
	ix := NewIndex(doc)
	for _, src := range []string{"//a{//b?,//d?}", "//a{//b{//c?}}", "//b//b", "//a[//c]{//d?}"} {
		q, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res := Exact(ix, q)
		full, err := res.NestingTree(0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		size := full.Size()
		if res.Empty && size != 0 {
			t.Fatalf("%s: empty result with %d-node tree", src, size)
		}

		ut, uinfo, err := res.TopKNestingTree(-1)
		if err != nil {
			t.Fatalf("%s: unbounded: %v", src, err)
		}
		if !uinfo.Exhausted || uinfo.ErrorBound != 0 {
			t.Fatalf("%s: unbounded run Exhausted=%v ErrorBound=%v", src, uinfo.Exhausted, uinfo.ErrorBound)
		}
		if ut.Size() != size {
			t.Fatalf("%s: unbounded top-k tree has %d nodes, NestingTree %d", src, ut.Size(), size)
		}

		for k := 1; k <= size+2; k++ {
			pt, info, err := res.TopKNestingTree(k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", src, k, err)
			}
			want := size
			if k < size {
				want = k
			}
			if pt.Size() != want || info.Expanded != want {
				t.Fatalf("%s k=%d: emitted %d nodes (info %d), want %d", src, k, pt.Size(), info.Expanded, want)
			}
			if got := info.EmittedMass + info.ErrorBound; got != float64(size) {
				t.Fatalf("%s k=%d: emitted %v + bound %v != exact size %d",
					src, k, info.EmittedMass, info.ErrorBound, size)
			}
			if info.Exhausted != (want == size) {
				t.Fatalf("%s k=%d: Exhausted=%v with %d of %d emitted", src, k, info.Exhausted, want, size)
			}
		}
	}
}

// TestExactOptsThreadsLimit checks the ExactOptions.Limit default reaches
// TopKNestingTree when the call site passes zero.
func TestExactOptsThreadsLimit(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b,b),a(b),a)")
	ix := NewIndex(doc)
	q, err := query.Parse("//a{//b?}")
	if err != nil {
		t.Fatal(err)
	}
	res := ExactOpts(context.Background(), ix, q, ExactOptions{Limit: 2})
	tr, info, err := res.TopKNestingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 || info.Expanded != 2 || info.K != 2 {
		t.Fatalf("threaded limit: size=%d expanded=%d k=%d, want 2/2/2", tr.Size(), info.Expanded, info.K)
	}
	if info.Exhausted {
		t.Fatal("budget 2 on a larger answer reported Exhausted")
	}
}
