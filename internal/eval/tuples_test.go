package eval

import (
	"testing"
	"testing/quick"

	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func tuplesOf(doc, q string, limit int) ([]BindingTuple, *ExactResult) {
	tr := xmltree.MustCompact(doc)
	r := Exact(NewIndex(tr), query.MustParse(q))
	return r.BindingTuples(limit), r
}

func TestBindingTuplesSimple(t *testing.T) {
	ts, r := tuplesOf("r(a,a,a)", "//a", 0)
	if len(ts) != 3 || r.Tuples != 3 {
		t.Fatalf("%d tuples (count %g), want 3", len(ts), r.Tuples)
	}
	for _, tup := range ts {
		if len(tup) != 2 {
			t.Fatalf("tuple arity %d, want 2 (q0, q1)", len(tup))
		}
		if tup[0].Label != "r" || tup[1].Label != "a" {
			t.Fatalf("tuple labels %s,%s", tup[0].Label, tup[1].Label)
		}
	}
	// Distinct a's.
	if ts[0][1].OID == ts[1][1].OID {
		t.Fatal("duplicate bindings")
	}
}

func TestBindingTuplesJoin(t *testing.T) {
	// (a1 with b1), (a2 with b2, b3): 3 (a,b) tuples.
	ts, r := tuplesOf("r(a(b),a(b,b))", "//a{/b}", 0)
	if len(ts) != 3 || r.Tuples != 3 {
		t.Fatalf("%d tuples (count %g), want 3", len(ts), r.Tuples)
	}
}

func TestBindingTuplesOptionalNull(t *testing.T) {
	ts, r := tuplesOf("r(a(b),a(c))", "//a{/b?}", 0)
	if len(ts) != 2 || r.Tuples != 2 {
		t.Fatalf("%d tuples (count %g), want 2", len(ts), r.Tuples)
	}
	nulls := 0
	for _, tup := range ts {
		if tup[2] == nil {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("null bindings = %d, want 1", nulls)
	}
}

func TestBindingTuplesProductShape(t *testing.T) {
	// Two papers x two keywords each... a(p(k,k),p(k,k)): q1=a (1), then
	// p choices (2) x per-p k choices (2) = 4 tuples.
	ts, r := tuplesOf("r(a(p(k,k),p(k,k)))", "//a{/p{/k}}", 0)
	if len(ts) != 4 || r.Tuples != 4 {
		t.Fatalf("%d tuples (count %g), want 4", len(ts), r.Tuples)
	}
}

func TestBindingTuplesSiblingProduct(t *testing.T) {
	// Sibling variables multiply: a with 2 b's and 3 c's -> 6 tuples.
	ts, r := tuplesOf("r(a(b,b,c,c,c))", "//a{/b,/c}", 0)
	if len(ts) != 6 || r.Tuples != 6 {
		t.Fatalf("%d tuples (count %g), want 6", len(ts), r.Tuples)
	}
}

func TestBindingTuplesLimit(t *testing.T) {
	ts, _ := tuplesOf("r(a*50)", "//a", 10)
	if len(ts) != 10 {
		t.Fatalf("limit ignored: %d tuples", len(ts))
	}
}

func TestBindingTuplesEmpty(t *testing.T) {
	ts, r := tuplesOf("r(a)", "//z", 0)
	if len(ts) != 0 || !r.Empty {
		t.Fatalf("expected no tuples, got %d", len(ts))
	}
}

func TestPropBindingTuplesMatchCount(t *testing.T) {
	// Enumerated tuple count equals the counted Tuples value whenever it
	// fits under the limit.
	f := func(seed uint64) bool {
		tr := recursiveDoc(seed)
		st := stable.Build(tr)
		ix := NewIndex(tr)
		for _, q := range query.Generate(st, 4, query.GenOptions{Seed: int64(seed % (1 << 29))}) {
			r := Exact(ix, q)
			if r.Empty || r.Tuples > 3000 {
				continue
			}
			ts := r.BindingTuples(5000)
			if float64(len(ts)) != r.Tuples {
				t.Logf("seed %d: %s: enumerated %d, counted %g", seed, q, len(ts), r.Tuples)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
