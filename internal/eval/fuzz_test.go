package eval

import (
	"math"
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// fuzzSketch is the small fixed synopsis FuzzEvalApprox runs every input
// against: recursive labels (b under b), branching, and an imperfectly
// merged region (built from a stable synopsis of a deliberately skewed
// document), so both the certain (count-stable) and the probabilistic
// estimation paths are exercised.
func fuzzSketch() *sketch.Sketch {
	tr := xmltree.MustCompact("r(a(b(b(c),d),b(d),c),a(b(c)),a,e(d,d,d))")
	return sketch.FromStable(stable.Build(tr))
}

// FuzzEvalApprox feeds arbitrary parser-accepted twigs to both approximate
// evaluation paths and asserts the invariants that must hold for any query
// against any synopsis: no panics, estimates finite and non-negative, and
// the fast path bit-identical to the reference enumeration whenever
// neither truncated.
func FuzzEvalApprox(f *testing.F) {
	seeds := []string{
		"//a", "//a//b", "/a/b", "//a{/b,//c?}", "//a[//b]",
		"//a[/b[/c]]{//d?}", "//b//b//b", "//a{//b{//c}}", "//z", "//a[//z]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sk := fuzzSketch()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		// Keep enumeration bounded: fuzzing explores adversarial recursive
		// twigs and the invariants must hold under truncation too.
		fast := Approx(sk, q, Options{MaxEmbeddings: 200})
		ref := Approx(sk, q, Options{MaxEmbeddings: 200, Reference: true})
		for name, r := range map[string]*Result{"fast": fast, "ref": ref} {
			sel := r.Selectivity()
			if math.IsNaN(sel) || math.IsInf(sel, 0) || sel < 0 {
				t.Fatalf("%s: query %q: selectivity %v not finite non-negative", name, q, sel)
			}
			for _, rn := range r.Nodes {
				if math.IsNaN(rn.Count) || math.IsInf(rn.Count, 0) || rn.Count < 0 {
					t.Fatalf("%s: query %q: node count %v not finite non-negative", name, q, rn.Count)
				}
			}
		}
		if fast.Truncated || ref.Truncated {
			return
		}
		if fast.Empty != ref.Empty {
			t.Fatalf("query %q: Empty fast=%v ref=%v", q, fast.Empty, ref.Empty)
		}
		if fb, rb := math.Float64bits(fast.Selectivity()), math.Float64bits(ref.Selectivity()); fb != rb {
			t.Fatalf("query %q: selectivity fast=%v ref=%v", q, fast.Selectivity(), ref.Selectivity())
		}
		if len(fast.Nodes) != len(ref.Nodes) {
			t.Fatalf("query %q: nodes fast=%d ref=%d", q, len(fast.Nodes), len(ref.Nodes))
		}
	})
}
