package eval

import (
	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// This file preserves the pre-fast-path exact evaluator: per-query map
// memo tables and per-step map deduplication, exactly as the evaluator
// worked before the dense epoch-stamped scratch and label-indexed child
// scans. It exists so differential tests (and fuzzing) can assert the fast
// path is bit-identical to the original semantics; the approximate
// evaluator's reference enumeration lives behind Options.Reference in
// approx.go for the same reason.

// ExactReference evaluates q with the original map-based exact evaluator
// and returns the binding-tuple count and emptiness. Results are
// bit-identical to Exact (the fast path changes memo layout and scan
// strategy, never the sequence of arithmetic).
func ExactReference(ix *Index, q *query.Query) (tuples float64, empty bool) {
	ev := &refEvaluator{
		ix:        ix,
		qnodes:    q.Vars(),
		qidx:      make(map[*query.Node]int),
		matchMemo: make(map[refMatchKey][]*xmltree.Node),
		validMemo: make(map[refMemoKey]int8),
		tupMemo:   make(map[refMemoKey]float64),
		predMemo:  make(map[refPredKey]bool),
	}
	for i, qn := range ev.qnodes {
		ev.qidx[qn] = i
	}
	root := ix.Doc.Root
	if root == nil || !ev.valid(0, root) {
		return 0, true
	}
	t := ev.tuples(0, root)
	return t, t == 0
}

type refEvaluator struct {
	ix     *Index
	qnodes []*query.Node
	qidx   map[*query.Node]int

	matchMemo map[refMatchKey][]*xmltree.Node
	validMemo map[refMemoKey]int8 // 0 unknown, 1 valid, 2 invalid
	tupMemo   map[refMemoKey]float64
	predMemo  map[refPredKey]bool
}

type refMemoKey struct {
	q   int
	oid int
}

type refMatchKey struct {
	edge *query.Edge
	oid  int
}

type refPredKey struct {
	pred *query.Path
	oid  int
}

// path is the original per-step evaluation: per source element, candidates
// are gathered, predicate-filtered, and deduplicated with a map.
func (ev *refEvaluator) path(e *xmltree.Node, p *query.Path) []*xmltree.Node {
	cur := []*xmltree.Node{e}
	for si := range p.Steps {
		step := &p.Steps[si]
		seen := make(map[int]bool)
		var next []*xmltree.Node
		for _, c := range cur {
			var cands []*xmltree.Node
			if step.Axis == query.Child {
				cands = ev.ix.Children(c, step.Label)
			} else {
				cands = ev.ix.Descendants(c, step.Label)
			}
			for _, t := range cands {
				if seen[t.OID] {
					continue
				}
				if !ev.satisfiesPreds(t, step.Preds) {
					continue
				}
				seen[t.OID] = true
				next = append(next, t)
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func (ev *refEvaluator) satisfiesPreds(e *xmltree.Node, preds []*query.Path) bool {
	for _, pred := range preds {
		k := refPredKey{pred, e.OID}
		sat, ok := ev.predMemo[k]
		if !ok {
			sat = len(ev.path(e, pred)) > 0
			ev.predMemo[k] = sat
		}
		if !sat {
			return false
		}
	}
	return true
}

func (ev *refEvaluator) matches(edge *query.Edge, e *xmltree.Node) []*xmltree.Node {
	k := refMatchKey{edge, e.OID}
	if m, ok := ev.matchMemo[k]; ok {
		return m
	}
	m := ev.path(e, edge.Path)
	ev.matchMemo[k] = m
	return m
}

func (ev *refEvaluator) valid(qi int, e *xmltree.Node) bool {
	k := refMemoKey{qi, e.OID}
	if v, ok := ev.validMemo[k]; ok {
		return v == 1
	}
	ev.validMemo[k] = 2
	qn := ev.qnodes[qi]
	ok := true
	for _, edge := range qn.Edges {
		if edge.Optional {
			continue
		}
		found := false
		for _, m := range ev.matches(edge, e) {
			if ev.valid(ev.qidx[edge.Child], m) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if ok {
		ev.validMemo[k] = 1
	}
	return ok
}

func (ev *refEvaluator) tuples(qi int, e *xmltree.Node) float64 {
	k := refMemoKey{qi, e.OID}
	if v, ok := ev.tupMemo[k]; ok {
		return v
	}
	qn := ev.qnodes[qi]
	total := 1.0
	for _, edge := range qn.Edges {
		var s float64
		for _, m := range ev.matches(edge, e) {
			if ev.valid(ev.qidx[edge.Child], m) {
				s += ev.tuples(ev.qidx[edge.Child], m)
			}
		}
		if s == 0 {
			if edge.Optional {
				s = 1
			} else {
				total = 0
				break
			}
		}
		total *= s
	}
	ev.tupMemo[k] = total
	return total
}
