package eval

import (
	"container/heap"
	"container/list"
	"context"
	"math"
	"sync"

	"treesketch/internal/query"
	"treesketch/internal/sketch"
)

// TopKInfo describes a streaming top-k evaluation (Options.Limit != 0): how
// much of the result graph was expanded, how much answer mass the expanded
// prefix carries, and an upper bound on the mass that was truncated.
//
// Masses are in raw answer-mass units — estimated elements of the
// approximate nesting tree, computed on the unpruned, unconditioned result
// graph (the additive notion TotalNodes uses) — so EmittedMass + ErrorBound
// bounds the full answer's raw mass from above.
type TopKInfo struct {
	// K is the requested node budget; 0 means unbounded streaming.
	K int
	// Expanded counts the result nodes fully expanded (emitted with their
	// outgoing edges); this is what K bounds.
	Expanded int
	// Discovered counts all result nodes reached, including the unexpanded
	// frontier. Discovered - Expanded is the frontier size.
	Discovered int
	// EmittedMass is the raw answer mass of the expanded prefix.
	EmittedMass float64
	// ErrorBound bounds the raw answer mass of everything the expansion did
	// not reach: descendants of frontier nodes plus any mass flowing through
	// them into already-emitted nodes. +Inf when the synopsis is recursive
	// enough that the chain mass below a frontier node genuinely diverges
	// (or cannot cheaply be proven finite). 0 when Exhausted.
	ErrorBound float64
	// Exhausted reports that the expansion covered the full result graph
	// with no enumeration truncated; the result is then bit-identical to
	// the batch path.
	Exhausted bool
	// WorkCapped reports that the shared enumeration work pool (sized from
	// K, not the full batch MaxEmbeddings allowance) ran dry mid-expansion.
	// The truncated enumerations' missing mass is priced into ErrorBound
	// via the per-edge mass DP, so the bound stays sound.
	WorkCapped bool
	// DeadlineHit reports that the expansion stopped at the context
	// deadline. At least one node (the answer root) is always expanded,
	// even past the deadline, so a deadline-bounded caller gets a partial
	// answer rather than nothing.
	DeadlineHit bool
}

// topKWith is the streaming counterpart of approxWith: best-first expansion
// of the result graph under a node budget, followed by a canonical replay
// that rebuilds the result in batch discovery order. With an unbounded
// budget the replayed result is bit-identical to the batch path (node IDs,
// edge order, every float accumulation), because each edge's per-terminal
// sums are a pure function of (source synopsis node, query edge) — see
// edgeTerms — and the replay applies them in exactly the batch order.
func topKWith(ctx context.Context, sk *sketch.Sketch, q *query.Query, opts Options, conditioning, twoMoment bool) *Result {
	a := newApproxer(ctx, sk, q, opts, conditioning, twoMoment)
	span := a.reg.StartSpan("eval.topk.query")
	a.reg.Counter("eval.topk.queries").Inc()
	res := a.runTopK(ctx)
	a.reg.Histogram("eval.topk.latency_seconds").Observe(span.End().Seconds())
	a.flush(res)
	info := res.TopK
	a.reg.Counter("eval.topk.expanded").Add(int64(info.Expanded))
	a.reg.Counter("eval.topk.discovered").Add(int64(info.Discovered))
	switch {
	case info.DeadlineHit:
		a.reg.Counter("eval.topk.deadline_hits").Inc()
	case info.Exhausted:
		a.reg.Counter("eval.topk.exhausted").Inc()
	case info.WorkCapped:
		a.reg.Counter("eval.topk.work_capped").Inc()
	default:
		a.reg.Counter("eval.topk.budget_stops").Inc()
	}
	if !math.IsInf(info.ErrorBound, 1) {
		a.reg.Histogram("eval.topk.error_bound").Observe(info.ErrorBound)
	}
	if a.tr != nil {
		a.tr.AddCounter("topk_expanded", int64(info.Expanded))
		a.tr.AddCounter("topk_frontier", int64(info.Discovered-info.Expanded))
		if info.DeadlineHit {
			a.tr.AddCounter("topk_deadline_hit", 1)
		}
	}
	return res
}

// runTopK drives the two phases. The expansion is the trace's
// "eval.topk.expand" span (it does all the embedding enumeration); the
// replay plus prune/condition/count pipeline is "eval.topk.replay".
func (a *approxer) runTopK(ctx context.Context) *Result {
	info := &TopKInfo{}
	if a.opts.Limit > 0 {
		info.K = a.opts.Limit
	}
	mm := massFor(a.sk, a.q, a.qnodes, a.qidx)
	es := a.tr.StartSpan("eval.topk.expand")
	exp := a.expandBestFirst(ctx, mm, info)
	es.End()
	rs := a.tr.StartSpan("eval.topk.replay")
	res := a.replayTopK(exp, mm, info)
	rs.End()
	res.TopK = info
	return res
}

// tkNode is one discovered result-node key (source synopsis node, query
// variable) during best-first expansion.
type tkNode struct {
	src, qi  int
	seq      int     // discovery order; the deterministic heap tie-break
	count    float64 // running raw extent count (grows as in-edges appear)
	prio     float64 // count x (1 + per-element subtree mass bound)
	heapIdx  int     // position in the frontier heap; -1 once popped
	expanded bool
}

// tkEdgeKey identifies one recorded edge enumeration. The query edge
// pointer determines the parent variable, and result nodes are unique per
// (source, variable), so each key is computed at most once.
type tkEdgeKey struct {
	src  int
	edge *query.Edge
}

// tkExpansion is the outcome of the expansion phase: the discovered keys
// with their expansion state, the recorded per-edge terminal sums the
// replay folds back into a result graph, and the enumerations the work
// pool cut short (their partial terms are kept; the missing remainder is
// priced into the error bound during replay).
type tkExpansion struct {
	nodes map[resKey]*tkNode
	edges map[tkEdgeKey][]termK
	trunc []tkTrunc
}

// tkTrunc records one work-pool-truncated edge enumeration: the expanded
// parent (source synopsis node, query variable) and the query edge whose
// embedding walk stopped early. Per element of the parent's extent, the
// mass missing below that edge is at most pv[edge][src] — the same
// per-edge DP vector computeMass sums into dm — so the replay can charge
// raw(parent) * pv[edge][src] to the error bound.
type tkTrunc struct {
	src, qi int
	edge    *query.Edge
}

// expandBestFirst grows the result graph from the root, always expanding
// the frontier node with the highest estimated answer-mass contribution
// (the priority-queue best-first tree-search idiom). Expansion of a node
// runs the full edge enumeration for every outgoing query edge of its
// variable and records the per-terminal sums; newly reached keys join the
// frontier. The loop stops when the budget is spent, the deadline passed,
// or the frontier drained.
//
// Priorities are heuristic (a node's count can keep growing after its
// priority was last touched), but every input to them is deterministic, so
// the expansion set — and therefore the final result — is reproducible.
func (a *approxer) expandBestFirst(ctx context.Context, mm *queryMass, info *TopKInfo) *tkExpansion {
	exp := &tkExpansion{
		nodes: make(map[resKey]*tkNode),
		edges: make(map[tkEdgeKey][]termK),
	}
	dm := mm.dm
	if info.K > 0 {
		// A finite node budget implies a finite answer prefix, so the
		// expansion must not pay full-batch enumeration prices: all edge
		// enumerations of this evaluation (nested predicate walks included)
		// draw from one shared pool scaled to K instead of taking a fresh
		// MaxEmbeddings allowance per call. Calls the pool cuts short keep
		// their partial terms and are charged to the error bound via
		// exp.trunc. Unbounded streaming (Limit < 0) keeps the per-call
		// batch budgets, preserving bit-identity with the batch path.
		pb := 4 * info.K
		if pb < 128 {
			pb = 128
		}
		if pb > a.opts.MaxEmbeddings {
			pb = a.opts.MaxEmbeddings
		}
		a.poolOn, a.poolBudget, a.poolWork = true, pb, 64*pb
		defer func() { a.poolOn = false }()
	}
	root := &tkNode{src: a.sk.Root, qi: 0, count: 1}
	root.prio = tkPrio(root.count, dm[0][root.src])
	exp.nodes[resKey{root.src, 0}] = root
	h := &tkHeap{}
	heap.Push(h, root)
	seq := 1
	for h.Len() > 0 {
		// The answer root is always expanded, even past the deadline: a
		// streaming caller is promised at least one emitted node.
		if info.Expanded > 0 {
			if err := ctx.Err(); err != nil {
				info.DeadlineHit = true
				break
			}
			if info.K > 0 && info.Expanded >= info.K {
				break
			}
		}
		u := heap.Pop(h).(*tkNode)
		u.expanded = true
		info.Expanded++
		capped := false
		for _, edge := range a.qnodes[u.qi].Edges {
			// Snapshot the sticky truncation flag around the enumeration so
			// a pool-capped call is attributable to this (node, edge) pair.
			// A node is never left half-expanded: once the pool runs dry its
			// remaining edges still enumerate (instantly truncating against
			// the empty pool) so every edge is either complete or recorded.
			was := a.truncated
			a.truncated = false
			terms := a.edgeTerms(u.src, edge)
			if a.truncated && a.poolOn {
				exp.trunc = append(exp.trunc, tkTrunc{src: u.src, qi: u.qi, edge: edge})
				capped = true
			}
			a.truncated = a.truncated || was
			exp.edges[tkEdgeKey{u.src, edge}] = terms
			ci := a.qidx[edge.Child]
			for _, tk := range terms {
				key := resKey{tk.term, ci}
				c := exp.nodes[key]
				if c == nil {
					c = &tkNode{src: tk.term, qi: ci, seq: seq, count: u.count * tk.k}
					seq++
					c.prio = tkPrio(c.count, dm[ci][c.src])
					exp.nodes[key] = c
					heap.Push(h, c)
					continue
				}
				c.count += u.count * tk.k
				if !c.expanded {
					c.prio = tkPrio(c.count, dm[ci][c.src])
					heap.Fix(h, c.heapIdx)
				}
			}
		}
		if capped {
			info.WorkCapped = true
			break
		}
	}
	info.Discovered = len(exp.nodes)
	info.Exhausted = h.Len() == 0 && !info.WorkCapped
	return exp
}

// replayTopK rebuilds the result from the recorded expansion in canonical
// batch order — variables in pre-order, bound nodes in discovery order,
// edges in query order — so every addResultNode and addK call happens in
// exactly the sequence the batch path would have produced for the expanded
// subset. Frontier (unexpanded) nodes keep their incoming edges but emit
// none, are exempt from required-child pruning (their subtrees were never
// searched), and their raw counts price the error bound.
func (a *approxer) replayTopK(exp *tkExpansion, mm *queryMass, info *TopKInfo) *Result {
	dm := mm.dm
	optional := make([]bool, len(a.qnodes))
	for _, qn := range a.qnodes {
		for _, e := range qn.Edges {
			if e.Optional {
				optional[a.qidx[e.Child]] = true
			}
		}
	}
	a.res = &Result{Root: 0, VarOptional: optional}
	a.bind = make([][]int, len(a.qnodes))
	a.addResultNode(a.sk.Root, 0, a.sk.Nodes[a.sk.Root].Label)
	for qi, qn := range a.qnodes {
		for _, uQ := range a.bind[qi] {
			rn := a.res.Nodes[uQ]
			if n := exp.nodes[resKey{rn.Src, qi}]; n == nil || !n.expanded {
				continue
			}
			for _, edge := range qn.Edges {
				a.applyEdgeTerms(rn, edge, exp.edges[tkEdgeKey{rn.Src, edge}])
			}
		}
	}

	// Mass accounting on the raw graph, before pruning and conditioning
	// reshape the counts. The bound sums, per frontier node f, its raw count
	// times the per-element chain-mass bound below (f's variable, f's source
	// cluster): every truncated root-to-node path crosses the frontier at a
	// first unexpanded node, its prefix product is part of that node's raw
	// count, and its suffix product is dominated by the mass DP (which
	// ignores predicate selectivities and enumeration caps, both of which
	// only shrink the real counts).
	raw := a.rawCounts()
	a.pruneExempt = make([]bool, len(a.res.Nodes))
	for i, rn := range a.res.Nodes {
		if n := exp.nodes[resKey{rn.Src, rn.VarID}]; n != nil && n.expanded {
			info.EmittedMass += raw[i]
			continue
		}
		a.pruneExempt[i] = true
		info.ErrorBound += raw[i] * dm[rn.VarID][rn.Src]
	}
	// Pool-truncated enumerations: the frontier term above does not cover
	// them — their parent IS expanded, so the mass missing below the cut
	// edge never reaches a frontier node. Charge, per truncated (node,
	// edge), the parent's raw count times the per-edge DP bound on the
	// mass one parent element can carry through that edge. Over-counts the
	// partial terms already emitted, which only loosens the upper bound.
	// The parent also joins the prune exemption: a required child its cut
	// enumeration never reached must not erase the node (the same
	// not-fully-searched rationale as the frontier), or a capped stream
	// could answer EMPTY while reporting a positive remainder.
	for _, t := range exp.trunc {
		id, ok := a.resIndex[resKey{t.src, t.qi}]
		if !ok {
			info.ErrorBound = math.Inf(1)
			break
		}
		a.pruneExempt[id] = true
		info.ErrorBound += raw[id] * mm.pvAt(t.edge, t.src)
	}

	// The known-empty shortcut (a required variable with no bindings
	// anywhere) is sound only when the whole graph was searched; a partial
	// expansion may simply not have reached the variable yet.
	if info.Exhausted {
		for _, qn := range a.qnodes {
			for _, edge := range qn.Edges {
				if !edge.Optional && len(a.bind[a.qidx[edge.Child]]) == 0 {
					return &Result{Empty: true, Truncated: a.truncated}
				}
			}
		}
	}
	if !a.opts.DisablePrune {
		if !a.prune() {
			return &Result{Empty: true, Truncated: a.truncated}
		}
	}
	if a.conditioning {
		a.conditionOnRequired()
	}
	a.res.Truncated = a.truncated
	a.computeCounts()
	return a.res
}

// rawCounts computes the unconditioned, unpruned extent counts of the
// current result graph: Count(root) = 1, Count(v) = sum over incoming edges
// of Count(u) * k(u, v), accumulated in the same variable pre-order
// computeCounts uses.
func (a *approxer) rawCounts() []float64 {
	order := make([]*RNode, len(a.res.Nodes))
	copy(order, a.res.Nodes)
	sortByVar(order)
	raw := make([]float64, len(a.res.Nodes))
	raw[a.res.Root] = 1
	for _, rn := range order {
		for _, e := range rn.Edges {
			raw[e.Child] += raw[rn.ID] * e.K
		}
	}
	return raw
}

// tkPrio ranks a frontier node: its raw extent count times one (its own
// elements) plus the per-element mass bound of the subtree below it.
func tkPrio(count, mass float64) float64 {
	return count * (1 + mass)
}

// tkHeap is the expansion frontier: a max-heap on priority with discovery
// order as the deterministic tie-break (merged synopses produce exact float
// ties far more often than arbitrary data would).
type tkHeap []*tkNode

func (h tkHeap) Len() int { return len(h) }
func (h tkHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h tkHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *tkHeap) Push(x any) {
	n := x.(*tkNode)
	n.heapIdx = len(*h)
	*h = append(*h, n)
}
func (h *tkHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	n.heapIdx = -1
	*h = old[:len(old)-1]
	return n
}

// massKey keys the mass-bound cache per (synopsis, canonical query text)
// pair. The query is keyed by its printed form, not pointer identity: the
// serving daemon parses a fresh *query.Query per request, and a
// pointer-keyed entry for it could never be hit again — every budgeted
// request would grow the cache by O(queryVars x sketchNodes) float64s
// forever. The printed form is a parse/print fixed point (fuzz-pinned), so
// equal text means an identical mass DP.
type massKey struct {
	sk *sketch.Sketch
	qs string
}

// massCacheCap bounds the mass-DP cache. Unlike planCache entries these are
// not tiny, so the cache is LRU-evicted: a client cycling query shapes
// cannot grow it without bound, and entries pinning a synopsis that
// SetCatalog swapped out age out under any ongoing budgeted traffic instead
// of holding the old sketch forever.
const massCacheCap = 64

var massCache = struct {
	sync.Mutex
	m   map[massKey]*list.Element
	lru list.List // front = most recently used; Element.Value is *massEntry
}{m: make(map[massKey]*list.Element)}

type massEntry struct {
	key massKey
	mm  *queryMass
}

// queryMass is the cached mass DP for one (synopsis, query) pair: dm[qi][u]
// upper-bounds the answer mass strictly below one element of synopsis node
// u bound to query variable qi (the sum over all downward result-graph
// chains of products of average edge counts), and pv[edge][u] is the same
// bound restricted to one outgoing query edge — the per-edge vector dm sums.
// Both feed expansion priorities and the truncation error bound only; they
// never touch fingerprinted values.
type queryMass struct {
	dm [][]float64
	pv map[*query.Edge][]float64
}

// pvAt is the per-edge bound with a defensive +Inf for anything outside the
// DP's domain (it cannot happen for edges reached through the expansion,
// but an unbounded answer is the sound default).
func (m *queryMass) pvAt(e *query.Edge, u int) float64 {
	if v, ok := m.pv[e]; ok && u >= 0 && u < len(v) {
		return v[u]
	}
	return math.Inf(1)
}

// massFor returns the memoized mass DP for (sk, q), computing it outside
// the cache lock on a miss. A racing duplicate computation keeps the copy
// stored first; computeMass is deterministic, so the copies are identical.
func massFor(sk *sketch.Sketch, q *query.Query, qnodes []*query.Node, qidx map[*query.Node]int) *queryMass {
	key := massKey{sk: sk, qs: q.String()}
	c := &massCache
	c.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		mm := el.Value.(*massEntry).mm
		c.Unlock()
		return mm
	}
	c.Unlock()
	mm := computeMass(sk, qnodes, qidx)
	c.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		mm = el.Value.(*massEntry).mm
	} else {
		c.m[key] = c.lru.PushFront(&massEntry{key: key, mm: mm})
		for c.lru.Len() > massCacheCap {
			back := c.lru.Back()
			c.lru.Remove(back)
			delete(c.m, back.Value.(*massEntry).key)
		}
	}
	c.Unlock()
	return mm
}

// computeMass evaluates the mass DP. Child variables carry larger pre-order
// indices than their parents, so a reverse sweep has every child's row
// ready when a parent needs it:
//
//	dm[qi][u] = sum over edges (qi -> qc) of
//	            sum over embeddings of the edge path from u of
//	            (product of Avg along the path) * (1 + dm[qc][terminal])
//
// The per-path sums deliberately over-count relative to the evaluator: step
// assignments are summed without node-path dedup, predicate selectivities
// (always <= 1) are ignored, and no enumeration cap applies — so the DP
// dominates every count the evaluator can produce, which is exactly what an
// upper bound needs.
func computeMass(sk *sketch.Sketch, qnodes []*query.Node, qidx map[*query.Node]int) *queryMass {
	n := len(sk.Nodes)
	mm := &queryMass{
		dm: make([][]float64, len(qnodes)),
		pv: make(map[*query.Edge][]float64),
	}
	// The DP runs uncancelled by design: it is polynomial in the synopsis
	// (itself capped by the build budget) and query size, computed once per
	// (sketch, query) and shared across requests through massFor's cache —
	// aborting one request's computation would poison the entry every later
	// request wants.
	//lint:ctxpoll mass DP is polynomial in the build-budget-capped synopsis and its result is cached across requests
	for qi := len(qnodes) - 1; qi >= 0; qi-- {
		row := make([]float64, n)
		//lint:ctxpoll per-edge pathMass sweeps are bounded by |steps| passes over the capped synopsis
		for _, edge := range qnodes[qi].Edges {
			child := qidx[edge.Child]
			tv := make([]float64, n)
			for u := 0; u < n; u++ {
				tv[u] = 1 + mm.dm[child][u]
			}
			pv := pathMass(sk, edge.Path.MainSteps(), tv)
			mm.pv[edge] = pv
			for u := 0; u < n; u++ {
				row[u] += pv[u]
			}
		}
		mm.dm[qi] = row
	}
	return mm
}

// pathMass computes, per synopsis node u, the sum over all embeddings of
// the step sequence starting at u of the product of average edge counts
// times the terminal value tv[terminal]. Child steps are a single backward
// sweep; descendant steps make the recurrence self-referential across the
// graph (W[u] depends on W[child] at the same step), and merged synopses
// can be cyclic, so the fixpoint is approached by monotone iteration: any
// node still rising after n passes is pinned to +Inf (its chain mass
// diverges, or finiteness cannot cheaply be proven), and +Inf — a fixpoint
// of the recurrence — then propagates to every dependent node.
func pathMass(sk *sketch.Sketch, steps []query.Step, tv []float64) []float64 {
	n := len(sk.Nodes)
	w := tv
	for si := len(steps) - 1; si >= 0; si-- {
		step := &steps[si]
		next := make([]float64, n)
		if step.Axis == query.Child {
			for u := 0; u < n; u++ {
				un := sk.Nodes[u]
				if un == nil {
					continue
				}
				var s float64
				for _, e := range un.Edges {
					c := sk.Nodes[e.Child]
					if c == nil || c.Label != step.Label || e.Avg <= 0 {
						continue
					}
					s += e.Avg * w[e.Child]
				}
				next[u] = s
			}
			w = next
			continue
		}
		// Descendant: W[u] = sum over edges u->c of
		// Avg * ([label(c) = L] * w[c] + W[c]).
		relax := func(pin bool) bool {
			changed := false
			for u := n - 1; u >= 0; u-- {
				un := sk.Nodes[u]
				if un == nil {
					continue
				}
				var s float64
				for _, e := range un.Edges {
					c := sk.Nodes[e.Child]
					if c == nil || e.Avg <= 0 {
						continue
					}
					t := next[e.Child]
					if c.Label == step.Label {
						t += w[e.Child]
					}
					if t > 0 {
						s += e.Avg * t
					}
				}
				if s > next[u] {
					if pin {
						next[u] = math.Inf(1)
					} else {
						next[u] = s
					}
					changed = true
				}
			}
			return changed
		}
		for pass := 0; relax(pass >= n); pass++ {
		}
		w = next
	}
	return w
}
