package eval

import (
	"container/heap"
	"context"
	"fmt"

	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// ExactOptions carries evaluation options for the exact path; the zero
// value is Exact's historical behavior.
type ExactOptions struct {
	// Limit is the default node budget TopKNestingTree applies when its own
	// argument is zero: materialization stops after this many nesting-tree
	// nodes, emitted best-first. 0 or negative means unbounded. The tuple
	// count itself is always exact — the budget only bounds materialization,
	// which is where an answer's memory cost lives.
	Limit int
}

// ExactOpts is ExactContext with options threaded through, mirroring how
// ApproxContext carries Options.Limit on the approximate side.
func ExactOpts(ctx context.Context, ix *Index, q *query.Query, opts ExactOptions) *ExactResult {
	r := ExactContext(ctx, ix, q)
	r.limit = opts.Limit
	return r
}

// ntItem is one pending nesting-tree node: a valid (variable, element)
// binding occurrence waiting to be materialized under its output parent.
type ntItem struct {
	qi   int
	e    *xmltree.Node
	out  *xmltree.Node // parent already materialized in the output tree
	seq  int           // discovery order; deterministic tie-break
	mass float64       // exact node count of the NT subtree rooted here
}

// ntHeap is a max-heap on subtree mass with discovery order as tie-break —
// the exact-side twin of the approximate evaluator's tkHeap.
type ntHeap []*ntItem

func (h ntHeap) Len() int { return len(h) }
func (h ntHeap) Less(i, j int) bool {
	if h[i].mass != h[j].mass {
		return h[i].mass > h[j].mass
	}
	return h[i].seq < h[j].seq
}
func (h ntHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ntHeap) Push(x any)   { *h = append(*h, x.(*ntItem)) }
func (h *ntHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}

// TopKNestingTree materializes the nesting tree NT(Q) best-first: the
// pending subtree with the largest exact node count is emitted next, so a
// budget of limit nodes captures the heaviest-possible prefix of the
// answer. Unlike the approximate side, the accounting here is exact, not a
// bound: EmittedMass + ErrorBound equals the full nesting tree's node count
// (each materialized node contributes mass 1; ErrorBound sums the exact
// sizes of the unexpanded frontier subtrees).
//
// limit == 0 falls back to the ExactOptions.Limit the result was evaluated
// with; a value <= 0 after that fallback materializes the full tree (under
// the same default cap as NestingTree, exceeding it is an error). Children
// appear under their parent in emission (mass) order, not document order —
// the point of the mode is that the heavy answers surface first.
//
// A context deadline (the ctx the result was evaluated under) is observed
// at two granularities: between node expansions the loop stops gracefully
// — the emitted prefix is returned with DeadlineHit set — and inside the
// subtree-size DP or the match replay the evaluator's periodic checkCtx
// aborts the call, which surfaces here as the context's error (the
// partially built tree cannot price a sound ErrorBound, so nothing is
// returned).
func (r *ExactResult) TopKNestingTree(limit int) (t *xmltree.Tree, info *TopKInfo, err error) {
	if limit == 0 {
		limit = r.limit
	}
	info = &TopKInfo{}
	if limit > 0 {
		info.K = limit
	}
	t = xmltree.NewTree()
	if r.Empty {
		info.Exhausted = true
		return t, info, nil
	}
	ev := r.ev
	ev.acquire()
	defer ev.finish(obs.Default())
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(ctxCanceled); !ok {
				panic(p)
			}
			t, info, err = nil, nil, ev.ctx.Err()
		}
	}()

	// ntSize computes the exact NT subtree node count per (variable,
	// element) occurrence. Shared document subtrees are counted once here
	// and re-counted per occurrence by the summation — exactly how
	// NestingTree duplicates them on materialization.
	counts := make(map[int]float64)
	var ntSize func(qi int, e *xmltree.Node) float64
	ntSize = func(qi int, e *xmltree.Node) float64 {
		ev.checkCtx()
		slot := qi*ev.stride + e.OID
		if v, ok := counts[slot]; ok {
			return v
		}
		total := 1.0
		for i := range ev.cedges[qi] {
			ce := &ev.cedges[qi][i]
			for _, m := range ev.matches(ce.slot, ce.path, e) {
				if ev.valid(ce.child, m) {
					total += ntSize(ce.child, m)
				}
			}
		}
		counts[slot] = total
		return total
	}

	budget := limit
	if budget <= 0 {
		budget = 1 << 22
	}
	h := &ntHeap{}
	seq := 0
	heap.Push(h, &ntItem{qi: 0, e: ev.ix.Doc.Root, mass: ntSize(0, ev.ix.Doc.Root)})
	info.Discovered = 1
	for h.Len() > 0 {
		if info.Expanded >= budget {
			if limit <= 0 {
				return nil, nil, fmt.Errorf("eval: nesting tree exceeds %d nodes", budget)
			}
			break
		}
		// Mirror the approximate expansion's deadline contract: at least one
		// node goes out, and a deadline crossed between expansions returns
		// the emitted prefix (the frontier sum below still prices the full
		// remainder, so the accounting stays exact).
		if info.Expanded > 0 && ev.ctxErr() != nil {
			info.DeadlineHit = true
			break
		}
		it := heap.Pop(h).(*ntItem)
		n := t.NewNode(it.e.Label)
		if it.out == nil {
			t.Root = n
		} else {
			it.out.Children = append(it.out.Children, n)
		}
		info.Expanded++
		info.EmittedMass++
		for i := range ev.cedges[it.qi] {
			ce := &ev.cedges[it.qi][i]
			for _, m := range ev.matches(ce.slot, ce.path, it.e) {
				if !ev.valid(ce.child, m) {
					continue
				}
				seq++
				heap.Push(h, &ntItem{qi: ce.child, e: m, out: n, seq: seq, mass: ntSize(ce.child, m)})
				info.Discovered++
			}
		}
	}
	for _, it := range *h {
		info.ErrorBound += it.mass
	}
	info.Exhausted = h.Len() == 0
	return t, info, nil
}
