package eval

import "math"

// pathTrie is the dedup structure behind enumFast's duplicate detection:
// an open-addressed hash table mapping (prefix path ID, synopsis node)
// keys to dense path IDs, so the DFS identifies its entire current node
// stack by a single integer. Slots are epoch-stamped — reset is an epoch
// bump, not a wipe — and the table is reused across all of a query's
// enumerations, so steady-state operation allocates nothing. A flat
// Go map would serve the same purpose at roughly 3-4x the per-op cost,
// which is material because the heavy-twig tail is spent almost entirely
// in this loop.
type pathTrie struct {
	keys  []uint64
	vals  []int32
	ep    []int32
	epoch int32
	used  int

	// Emission dedup, indexed by the dense path IDs vals hands out:
	// seenEp[id] == epoch marks the path as already emitted, seenVal[id]
	// is its emission index (needed to merge step assignments).
	seenEp  []int32
	seenVal []int32
}

const trieHashMult = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

// reset starts a new enumeration: all existing entries become stale via
// the epoch bump.
func (t *pathTrie) reset() {
	if len(t.keys) == 0 {
		const initCap = 1 << 10
		t.keys = make([]uint64, initCap)
		t.vals = make([]int32, initCap)
		t.ep = make([]int32, initCap)
	}
	if t.epoch == math.MaxInt32 {
		clear(t.ep)
		clear(t.seenEp)
		t.epoch = 0
	}
	t.epoch++
	t.used = 0
}

// id returns the dense path ID of key, assigning the next free ID (via
// *nextID) on first sight.
func (t *pathTrie) id(key uint64, nextID *int32) int32 {
	if t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := len(t.keys) - 1
	h := key * trieHashMult
	i := int(h>>32) & mask
	for {
		if t.ep[i] != t.epoch {
			t.ep[i] = t.epoch
			t.keys[i] = key
			id := *nextID
			*nextID++
			t.vals[i] = id
			t.used++
			return id
		}
		if t.keys[i] == key {
			return t.vals[i]
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table, re-inserting only the current epoch's entries
// (the epoch itself is preserved: fresh slots are zero-stamped and epochs
// start at 1, so stale reads cannot collide).
func (t *pathTrie) grow() {
	oldKeys, oldVals, oldEp, oldEpoch := t.keys, t.vals, t.ep, t.epoch
	n := len(oldKeys) * 2
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.ep = make([]int32, n)
	mask := n - 1
	for j, e := range oldEp {
		if e != oldEpoch {
			continue
		}
		key := oldKeys[j]
		h := key * trieHashMult
		i := int(h>>32) & mask
		for t.ep[i] == t.epoch {
			i = (i + 1) & mask
		}
		t.ep[i] = t.epoch
		t.keys[i] = key
		t.vals[i] = oldVals[j]
	}
}

// markEmitted records path id as emitted with the given emission index and
// reports whether it had already been emitted this enumeration (returning
// the previous index).
func (t *pathTrie) markEmitted(id int32, emitIdx int) (prev int32, dup bool) {
	i := int(id)
	if i >= len(t.seenEp) {
		n := max(1024, len(t.seenEp)*2)
		for n <= i {
			n *= 2
		}
		se := make([]int32, n)
		copy(se, t.seenEp)
		t.seenEp = se
		sv := make([]int32, n)
		copy(sv, t.seenVal)
		t.seenVal = sv
	}
	if t.seenEp[i] == t.epoch {
		return t.seenVal[i], true
	}
	t.seenEp[i] = t.epoch
	t.seenVal[i] = int32(emitIdx)
	return 0, false
}
