package eval

import (
	"errors"
	"math"
	"strings"
	"testing"

	"treesketch/internal/datagen"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

// TestApproxPruningOnHeavyTwig is the deterministic tail-latency regression
// guard: the XMark heavy twig (nested recursive parlist/listitem descent
// under a branching item) is exactly the query shape whose enumeration tail
// dominated approx p99 before the fast path. Rather than asserting
// wall-clock numbers (noisy), it asserts the mechanisms that bound the
// tail are engaging: the can-complete memo must prune dead DFS branches
// and must serve repeated sub-questions from cache. Zero prunes here means
// the fast path has regressed to exhaustive enumeration.
func TestApproxPruningOnHeavyTwig(t *testing.T) {
	doc := datagen.Generate(datagen.XMark, 6000, 1)
	st := stable.Build(doc)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 3 * 1024})
	q := query.MustParse("//item{//parlist//listitem{//parlist//listitem?},//description//text?}")

	reg := obs.NewRegistry()
	fast := Approx(sk, q, Options{Metrics: reg})
	if fast.Truncated {
		t.Fatal("heavy twig truncated; enlarge MaxEmbeddings or shrink the document")
	}
	snap := map[string]int64{}
	for _, c := range []string{"eval.approx.embed_prunes", "eval.approx.embed_memo_hits", "eval.approx.embeddings"} {
		snap[c] = reg.Counter(c).Value()
	}
	if snap["eval.approx.embeddings"] == 0 {
		t.Fatal("heavy twig produced no embeddings; test document no longer matches the query")
	}
	if snap["eval.approx.embed_prunes"] == 0 {
		t.Fatalf("no embedding prunes on the heavy twig (counters: %v) — fast path regressed to exhaustive enumeration", snap)
	}
	if snap["eval.approx.embed_memo_hits"] == 0 {
		t.Fatalf("no can-complete memo hits on the heavy twig (counters: %v)", snap)
	}

	// And pruning must not change the answer.
	ref := Approx(sk, q, Options{Reference: true})
	if fb, rb := math.Float64bits(fast.Selectivity()), math.Float64bits(ref.Selectivity()); fb != rb {
		t.Fatalf("selectivity fast=%v ref=%v", fast.Selectivity(), ref.Selectivity())
	}
}

// TestExactCountersOnHeavyTwig checks the exact fast path's observability:
// dense-memo hits and label-index scans must register on a real workload.
func TestExactCountersOnHeavyTwig(t *testing.T) {
	doc := datagen.Generate(datagen.XMark, 3000, 1)
	ix := NewIndex(doc)
	q := query.MustParse("//item{//parlist//listitem,//description//text?}")
	reg := obs.Default()
	memo0 := reg.Counter("eval.exact.memo_hits").Value()
	scans0 := reg.Counter("eval.exact.label_scans").Value()
	r := Exact(ix, q)
	if r.Empty {
		t.Fatal("heavy twig empty on XMark document")
	}
	if hits := reg.Counter("eval.exact.memo_hits").Value() - memo0; hits == 0 {
		t.Fatal("no dense-memo hits on the heavy twig")
	}
	if scans := reg.Counter("eval.exact.label_scans").Value() - scans0; scans == 0 {
		t.Fatal("no label-index scans on the heavy twig")
	}
}

// TestExactTupleOverflow pins the overflow contract: a query whose
// binding-tuple count exceeds float64 range must flag Overflow and surface
// a typed error instead of silently returning +Inf as a usable count.
func TestExactTupleOverflow(t *testing.T) {
	// x has 10 a-children; 400 required /a edges multiply to 10^400 > 1.8e308.
	doc := xmltree.MustCompact("r(x(" + strings.TrimSuffix(strings.Repeat("a,", 10), ",") + "))")
	edges := make([]string, 400)
	for i := range edges {
		edges[i] = "/a"
	}
	q := query.MustParse("//x{" + strings.Join(edges, ",") + "}")
	r := Exact(NewIndex(doc), q)
	if !math.IsInf(r.Tuples, 1) {
		t.Fatalf("Tuples = %v, want +Inf", r.Tuples)
	}
	if !r.Overflow {
		t.Fatal("Overflow not set")
	}
	var oe *TupleOverflowError
	if err := r.Err(); !errors.As(err, &oe) {
		t.Fatalf("Err() = %v, want *TupleOverflowError", err)
	}
	// Sanity: the same shape below the overflow threshold stays finite and
	// error-free.
	q2 := query.MustParse("//x{/a,/a,/a}")
	r2 := Exact(NewIndex(doc), q2)
	if r2.Tuples != 1000 || r2.Err() != nil || r2.Overflow {
		t.Fatalf("small case: tuples=%v overflow=%v err=%v", r2.Tuples, r2.Overflow, r2.Err())
	}
}

// TestPlanCacheReuse checks repeated evaluations of one query object share
// a compiled plan.
func TestPlanCacheReuse(t *testing.T) {
	sk := fuzzSketch()
	q := query.MustParse("//a{//b?}")
	reg := obs.NewRegistry()
	Approx(sk, q, Options{Metrics: reg})
	Approx(sk, q, Options{Metrics: reg})
	if hits := reg.Counter("eval.approx.plan.hits").Value(); hits == 0 {
		t.Fatal("second evaluation did not hit the plan cache")
	}
}
