package eval

import (
	"treesketch/internal/obs"
	"treesketch/internal/xmltree"
)

// BindingTuple assigns one document element to each query variable, in
// variable pre-order (index 0 = q0 = the document root). Entries for
// optional variables with no match are nil (NULL bindings).
type BindingTuple []*xmltree.Node

// BindingTuples enumerates up to limit binding tuples of the query
// (limit <= 0 selects 1000). The count of all tuples is ExactResult.Tuples;
// enumeration materializes them in document order, variables nested
// left-to-right.
func (r *ExactResult) BindingTuples(limit int) []BindingTuple {
	if limit <= 0 {
		limit = 1000
	}
	if r.Empty {
		return nil
	}
	ev := r.ev
	ev.acquire()
	defer ev.finish(obs.Default())
	n := len(ev.qnodes)
	var out []BindingTuple
	cur := make(BindingTuple, n)

	var rec func(qi int, e *xmltree.Node, cont func() bool) bool
	// rec binds (qi, e), then runs the continuation for the remaining
	// variables; it returns false to stop enumeration (limit reached).
	rec = func(qi int, e *xmltree.Node, cont func() bool) bool {
		cur[qi] = e
		defer func() { cur[qi] = nil }()
		qn := ev.qnodes[qi]
		// Chain the child edges of qi, then the outer continuation.
		var chain func(ei int) bool
		chain = func(ei int) bool {
			if ei == len(qn.Edges) {
				return cont()
			}
			ce := &ev.cedges[qi][ei]
			ci := ce.child
			matched := false
			if e != nil {
				for _, m := range ev.matches(ce.slot, ce.path, e) {
					if !ev.valid(ci, m) {
						continue
					}
					matched = true
					if !rec(ci, m, func() bool { return chain(ei + 1) }) {
						return false
					}
				}
			}
			if !matched {
				if !ce.opt {
					return true // dead branch; skip, keep enumerating
				}
				// NULL binding for the optional subtree.
				return nullSubtree(ev, ci, cur, func() bool { return chain(ei + 1) })
			}
			return true
		}
		return chain(0)
	}

	emit := func() bool {
		out = append(out, append(BindingTuple(nil), cur...))
		return len(out) < limit
	}
	rec(0, ev.ix.Doc.Root, emit)
	return out
}

// nullSubtree sets every variable in the subtree rooted at qi to nil and
// runs the continuation once.
func nullSubtree(ev *evaluator, qi int, cur BindingTuple, cont func() bool) bool {
	var clear func(q int)
	clear = func(q int) {
		cur[q] = nil
		for _, e := range ev.qnodes[q].Edges {
			clear(ev.qidx[e.Child])
		}
	}
	clear(qi)
	return cont()
}
