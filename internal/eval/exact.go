package eval

import (
	"fmt"

	"treesketch/internal/esd"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// ExactResult is the ground-truth evaluation of a twig query over a
// document: the nesting tree NT(Q) (Section 2) in lazily materializable
// form, plus the exact number of binding tuples.
type ExactResult struct {
	Empty bool
	// Tuples is the exact number of binding tuples (float64: counts are
	// products of fanouts and can exceed int64 on large documents).
	Tuples float64

	ev *evaluator
}

// Exact evaluates q over the indexed document and returns the true result.
// An element binds a variable only if every required (non-dashed) child
// edge of that variable has at least one valid binding beneath it; dashed
// edges (from the query's return clause) may be empty.
func Exact(ix *Index, q *query.Query) *ExactResult {
	span := obs.StartSpan("eval.exact.query")
	reg := obs.Default()
	// The span feeds the phase timer (count/total/extrema); the histogram
	// additionally keeps the latency distribution so percentiles (p50/p95/
	// p99) survive into snapshots for the bench harness.
	defer func() {
		reg.Histogram("eval.exact.latency_seconds").Observe(span.End().Seconds())
	}()
	reg.Counter("eval.exact.queries").Inc()
	ev := newEvaluator(ix, q)
	r := &ExactResult{ev: ev}
	root := ix.Doc.Root
	if root == nil || !ev.valid(0, root) {
		r.Empty = true
		reg.Counter("eval.exact.empty").Inc()
		return r
	}
	r.Tuples = ev.tuples(0, root)
	if r.Tuples == 0 {
		r.Empty = true
		reg.Counter("eval.exact.empty").Inc()
	}
	return r
}

// evaluator carries per-query memo tables over one document.
type evaluator struct {
	ix     *Index
	q      *query.Query
	qnodes []*query.Node
	qidx   map[*query.Node]int

	matchMemo map[matchKey][]*xmltree.Node
	validMemo map[memoKey]int8 // 0 unknown, 1 valid, 2 invalid
	tupMemo   map[memoKey]float64
	predMemo  map[predKey]bool
}

type memoKey struct {
	q   int
	oid int
}

type matchKey struct {
	edge *query.Edge
	oid  int
}

type predKey struct {
	pred *query.Path
	oid  int
}

func newEvaluator(ix *Index, q *query.Query) *evaluator {
	ev := &evaluator{
		ix:        ix,
		q:         q,
		qnodes:    q.Vars(),
		qidx:      make(map[*query.Node]int),
		matchMemo: make(map[matchKey][]*xmltree.Node),
		validMemo: make(map[memoKey]int8),
		tupMemo:   make(map[memoKey]float64),
		predMemo:  make(map[predKey]bool),
	}
	for i, qn := range ev.qnodes {
		ev.qidx[qn] = i
	}
	return ev
}

// path evaluates a path expression from element e, applying existential
// predicates, and returns matched elements deduplicated in document order.
func (ev *evaluator) path(e *xmltree.Node, p *query.Path) []*xmltree.Node {
	cur := []*xmltree.Node{e}
	for si := range p.Steps {
		step := &p.Steps[si]
		seen := make(map[int]bool)
		var next []*xmltree.Node
		for _, c := range cur {
			var cands []*xmltree.Node
			if step.Axis == query.Child {
				cands = ev.ix.Children(c, step.Label)
			} else {
				cands = ev.ix.Descendants(c, step.Label)
			}
			for _, t := range cands {
				if seen[t.OID] {
					continue
				}
				if !ev.satisfiesPreds(t, step.Preds) {
					continue
				}
				seen[t.OID] = true
				next = append(next, t)
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func (ev *evaluator) satisfiesPreds(e *xmltree.Node, preds []*query.Path) bool {
	for _, pred := range preds {
		k := predKey{pred, e.OID}
		sat, ok := ev.predMemo[k]
		if !ok {
			sat = len(ev.path(e, pred)) > 0
			ev.predMemo[k] = sat
		}
		if !sat {
			return false
		}
	}
	return true
}

// matches returns the elements bound to edge.Child relative to a binding e
// of the edge's source variable (path matches only; validity filtering is
// separate).
func (ev *evaluator) matches(edge *query.Edge, e *xmltree.Node) []*xmltree.Node {
	k := matchKey{edge, e.OID}
	if m, ok := ev.matchMemo[k]; ok {
		return m
	}
	m := ev.path(e, edge.Path)
	ev.matchMemo[k] = m
	return m
}

// valid reports whether element e is a valid binding for query variable
// qi: every required child edge must have at least one valid binding.
func (ev *evaluator) valid(qi int, e *xmltree.Node) bool {
	k := memoKey{qi, e.OID}
	if v, ok := ev.validMemo[k]; ok {
		return v == 1
	}
	// Mark invalid during computation; the query tree is acyclic so no
	// recursion can revisit (qi, e), but keep the invariant obvious.
	ev.validMemo[k] = 2
	qn := ev.qnodes[qi]
	ok := true
	for _, edge := range qn.Edges {
		if edge.Optional {
			continue
		}
		found := false
		for _, m := range ev.matches(edge, e) {
			if ev.valid(ev.qidx[edge.Child], m) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if ok {
		ev.validMemo[k] = 1
	}
	return ok
}

// tuples counts the binding tuples rooted at (qi, e): the product over
// child edges of the summed tuples of valid matches, with empty optional
// groups contributing a NULL binding (factor 1).
func (ev *evaluator) tuples(qi int, e *xmltree.Node) float64 {
	k := memoKey{qi, e.OID}
	if v, ok := ev.tupMemo[k]; ok {
		return v
	}
	qn := ev.qnodes[qi]
	total := 1.0
	for _, edge := range qn.Edges {
		var s float64
		for _, m := range ev.matches(edge, e) {
			if ev.valid(ev.qidx[edge.Child], m) {
				s += ev.tuples(ev.qidx[edge.Child], m)
			}
		}
		if s == 0 {
			if edge.Optional {
				s = 1
			} else {
				total = 0
				break
			}
		}
		total *= s
	}
	ev.tupMemo[k] = total
	return total
}

// NestingTree materializes the nesting tree NT(Q) as an XML tree (element
// labels only). maxNodes caps the output (<= 0 selects a default cap);
// exceeding it is an error.
func (r *ExactResult) NestingTree(maxNodes int) (*xmltree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	t := xmltree.NewTree()
	if r.Empty {
		return t, nil
	}
	ev := r.ev
	var build func(qi int, e *xmltree.Node) (*xmltree.Node, error)
	build = func(qi int, e *xmltree.Node) (*xmltree.Node, error) {
		if t.Size() >= maxNodes {
			return nil, fmt.Errorf("eval: nesting tree exceeds %d nodes", maxNodes)
		}
		n := t.NewNode(e.Label)
		for _, edge := range ev.qnodes[qi].Edges {
			ci := ev.qidx[edge.Child]
			for _, m := range ev.matches(edge, e) {
				if !ev.valid(ci, m) {
					continue
				}
				c, err := build(ci, m)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
			}
		}
		return n, nil
	}
	root, err := build(0, ev.ix.Doc.Root)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

// ESDGraph converts the true nesting tree into the consolidated DAG form
// consumed by the ESD metric, with labels tagged by query variable
// ("q1:author") so that comparisons are restricted to bindings of the same
// variable, per the paper's Section 6.1 methodology. Returns nil for an
// empty result.
func (r *ExactResult) ESDGraph() *esd.Node {
	if r.Empty {
		return nil
	}
	ev := r.ev
	memo := make(map[memoKey]*esd.Node)
	var build func(qi int, e *xmltree.Node) *esd.Node
	build = func(qi int, e *xmltree.Node) *esd.Node {
		k := memoKey{qi, e.OID}
		if n, ok := memo[k]; ok {
			return n
		}
		n := &esd.Node{Label: ev.qnodes[qi].Var + ":" + e.Label}
		memo[k] = n
		mults := make(map[*esd.Node]float64)
		var order []*esd.Node
		for _, edge := range ev.qnodes[qi].Edges {
			ci := ev.qidx[edge.Child]
			for _, m := range ev.matches(edge, e) {
				if !ev.valid(ci, m) {
					continue
				}
				c := build(ci, m)
				if _, seen := mults[c]; !seen {
					order = append(order, c)
				}
				mults[c]++
			}
		}
		for _, c := range order {
			n.Edges = append(n.Edges, esd.Edge{Child: c, Mult: mults[c]})
		}
		return n
	}
	return esd.Consolidate(build(0, ev.ix.Doc.Root))
}
