package eval

import (
	"context"
	"fmt"
	"math"

	"treesketch/internal/esd"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// ExactResult is the ground-truth evaluation of a twig query over a
// document: the nesting tree NT(Q) (Section 2) in lazily materializable
// form, plus the exact number of binding tuples.
type ExactResult struct {
	Empty bool
	// Tuples is the exact number of binding tuples (float64: counts are
	// products of fanouts and can exceed int64 on large documents).
	Tuples float64
	// Overflow marks that the tuple count overflowed float64 (the product
	// of fanouts exceeded ~1.8e308); Tuples is then +Inf and Err returns a
	// typed *TupleOverflowError.
	Overflow bool
	// Canceled marks that the evaluation stopped at the context deadline
	// (or cancellation) before finishing; Tuples and Empty are then
	// meaningless and the result must not be materialized. Only
	// ExactContext callers with a cancelable context can observe it.
	Canceled bool

	ev    *evaluator
	limit int // default TopKNestingTree budget, from ExactOptions.Limit
}

// TupleOverflowError reports that a query's exact binding-tuple count
// exceeded the float64 range.
type TupleOverflowError struct {
	// Query is the textual form of the overflowing query.
	Query string
}

func (e *TupleOverflowError) Error() string {
	return fmt.Sprintf("eval: exact tuple count of %q overflows float64", e.Query)
}

// Err returns a typed *TupleOverflowError when the tuple count overflowed,
// nil otherwise. Selectivity experiments treat +Inf counts as unusable, so
// callers that feed Tuples into further arithmetic should check this.
func (r *ExactResult) Err() error {
	if r.Overflow {
		return &TupleOverflowError{Query: r.ev.q.String()}
	}
	return nil
}

// Exact evaluates q over the indexed document and returns the true result.
// An element binds a variable only if every required (non-dashed) child
// edge of that variable has at least one valid binding beneath it; dashed
// edges (from the query's return clause) may be empty.
//
// The returned ExactResult (and its NestingTree / ESDGraph / BindingTuples
// methods) is not safe for concurrent use; distinct Exact calls on the same
// Index are.
func Exact(ix *Index, q *query.Query) *ExactResult {
	return ExactContext(context.Background(), ix, q)
}

// ExactContext is Exact with request-scoped telemetry and cancellation:
// when ctx carries an obs.Trace (obs.ContextWithTrace), the evaluation
// records its plan and memo phases as spans on that trace, and a ctx that
// expires mid-evaluation stops the match/validity recursion at the next
// periodic check (returning a result marked Canceled) instead of running
// the document to completion — so a serving deadline actually frees the
// evaluator. An untraced background context adds one context lookup and a
// counter increment per memoized call and nothing else — the phase spans
// are inert and read no clocks — so the hot path is unchanged for batch
// callers and float accumulation (hence fingerprints) is untouched.
func ExactContext(ctx context.Context, ix *Index, q *query.Query) (r *ExactResult) {
	tr := obs.TraceFrom(ctx)
	span := obs.StartSpan("eval.exact.query")
	reg := obs.Default()
	// The span feeds the phase timer (count/total/extrema); the histogram
	// additionally keeps the latency distribution so percentiles (p50/p95/
	// p99) survive into snapshots for the bench harness.
	defer func() {
		reg.Histogram("eval.exact.latency_seconds").Observe(span.End().Seconds())
	}()
	reg.Counter("eval.exact.queries").Inc()
	ts := tr.StartSpan("eval.plan")
	ev := newEvaluator(ix, q)
	ev.ctx = ctx
	ts.End()
	defer ev.finish(reg)
	r = &ExactResult{ev: ev}
	// checkCtx aborts a canceled evaluation by panicking with a sentinel;
	// translate it into a Canceled result here. The deferred finish above
	// still runs (LIFO after this recover), so the pooled scratch is
	// returned and counters flush either way.
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(ctxCanceled); !ok {
				panic(p)
			}
			r.Canceled = true
			reg.Counter("eval.exact.canceled").Inc()
		}
	}()
	ts = tr.StartSpan("eval.memo")
	root := ix.Doc.Root
	if root == nil || !ev.valid(0, root) {
		ts.End()
		ev.traceCounters(tr)
		r.Empty = true
		reg.Counter("eval.exact.empty").Inc()
		return r
	}
	r.Tuples = ev.tuples(0, root)
	ts.End()
	ev.traceCounters(tr)
	if math.IsInf(r.Tuples, 0) {
		r.Overflow = true
		reg.Counter("eval.exact.overflow").Inc()
	}
	if r.Tuples == 0 {
		r.Empty = true
		reg.Counter("eval.exact.empty").Inc()
	}
	return r
}

// traceCounters copies the evaluator's per-query counters onto the request
// trace (no-op on untraced requests), before finish flushes them into the
// aggregate registry.
func (ev *evaluator) traceCounters(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.AddCounter("exact_memo_hits", ev.memoHits)
	tr.AddCounter("exact_match_hits", ev.matchHits)
	tr.AddCounter("exact_label_scans", ev.labelScans)
	tr.AddCounter("exact_count_fast", ev.countFast)
}

// evaluator carries the per-query evaluation state over one document: the
// compiled query (edges and predicates numbered so memo cells live in dense
// epoch-stamped arrays), the pooled scratch, and the retained match memo.
type evaluator struct {
	ix     *Index
	q      *query.Query
	qnodes []*query.Node

	// ctx is the evaluation's cancellation signal (nil or Background for
	// batch callers); ctxTick accumulates traversal work (elements visited,
	// not calls — a single descendant step can scan thousands of positions)
	// and rate-limits the Err checks to one read per ctxCheckEvery units.
	ctx     context.Context
	ctxTick uint
	qidx    map[*query.Node]int
	eidx    map[*query.Edge]int   // edge -> dense edge slot base
	pidx    map[*query.Path]int   // predicate -> dense pred slot base
	slids   map[*query.Step]int32 // step -> label ID (-1: label absent from document)
	stride  int                   // OID space of the document

	// cedges holds, per query variable, its compiled outgoing edges, so the
	// hot recursion reads plain struct fields instead of hashing pointers.
	cedges [][]cedge

	// sc is the pooled dense scratch; nil between an Exact return and a
	// later materialization call (which re-acquires it).
	sc *exactScratch

	// bufPool recycles the transient intermediate-step slices of countPath
	// (a freelist stack, so predicate recursion nests safely).
	bufPool [][]*xmltree.Node

	// Locally accumulated counters, flushed once per evaluation.
	memoHits   int64
	matchHits  int64
	labelScans int64
	countFast  int64
}

// ctxCanceled is the panic sentinel checkCtx throws when the evaluation's
// context expires; ExactContext and TopKNestingTree recover it at their
// boundary. A panic (rather than threading error returns through the
// memoized recursion) keeps the hot valid/tuples/matches signatures — and
// their inlining — untouched.
type ctxCanceled struct{}

// ctxCheckEvery is the traversal-work interval between context reads.
// Work is charged in element-visit units (tickCtx) rather than call
// counts: one path call with a descendant axis can scan thousands of
// label positions, so call-count polling would let a heavy query run
// arbitrarily far past its deadline between checks.
const ctxCheckEvery = 1024

// tickCtx charges n element-visits of traversal work against the poll
// budget and reads ctx.Err() once it is spent. The very first charge of
// an evaluation polls immediately, so an already-expired deadline aborts
// before any document walk. Note that a deadline lapsing mid-walk only
// becomes visible through Err() once the runtime delivers the timer; on a
// GOMAXPROCS=1 box a CPU-bound walk delays that until async preemption
// (~10ms), which bounds the overrun there — the same single-core physics
// serve documents for InjectDelay.
func (ev *evaluator) tickCtx(n int) {
	if ev.ctx == nil {
		return
	}
	first := ev.ctxTick == 0
	ev.ctxTick += uint(n)
	if !first && ev.ctxTick < ctxCheckEvery {
		return
	}
	ev.ctxTick = 1
	if ev.ctx.Err() != nil {
		panic(ctxCanceled{})
	}
}

// checkCtx charges the minimal one-unit tick; the recursion entry points
// (valid, tuples, path, countPath) call it so even scan-free query shapes
// keep polling.
func (ev *evaluator) checkCtx() {
	ev.tickCtx(1)
}

// ctxErr reports the evaluation context's status without the panic, for
// loop-boundary checks that want to stop gracefully with partial output.
func (ev *evaluator) ctxErr() error {
	if ev.ctx == nil {
		return nil
	}
	return ev.ctx.Err()
}

// cedge is the compiled form of one query edge.
type cedge struct {
	edge  *query.Edge
	path  *query.Path
	slot  int  // dense edge index (match-memo plane)
	child int  // target variable's index in qnodes
	triv  bool // count-only edge: predicate-free path into a leaf variable
	opt   bool
}

func newEvaluator(ix *Index, q *query.Query) *evaluator {
	ev := &evaluator{
		ix:     ix,
		q:      q,
		qnodes: q.Vars(),
		qidx:   make(map[*query.Node]int),
		eidx:   make(map[*query.Edge]int),
		pidx:   make(map[*query.Path]int),
		slids:  make(map[*query.Step]int32),
		stride: ix.Doc.OIDSpace(),
	}
	// addPath numbers predicates and resolves every step's label ID once,
	// so the hot evaluation loops never hash a label string.
	var addPath func(p *query.Path)
	addPath = func(p *query.Path) {
		for si := range p.Steps {
			step := &p.Steps[si]
			if _, ok := ev.slids[step]; !ok {
				lid := int32(-1)
				if l, present := ix.labelID(step.Label); present {
					lid = int32(l)
				}
				ev.slids[step] = lid
			}
			for _, pred := range step.Preds {
				if _, ok := ev.pidx[pred]; !ok {
					ev.pidx[pred] = len(ev.pidx)
				}
				addPath(pred)
			}
		}
	}
	for i, qn := range ev.qnodes {
		ev.qidx[qn] = i
	}
	ev.cedges = make([][]cedge, len(ev.qnodes))
	for i, qn := range ev.qnodes {
		for _, e := range qn.Edges {
			slot := len(ev.eidx)
			ev.eidx[e] = slot
			addPath(e.Path)
			// A path into a leaf variable binds every path match (leaves are
			// vacuously valid, each contributing one tuple), so as long as
			// the final step carries no predicate, only the match count
			// matters and countPath answers it from the position index
			// without materializing the matches.
			ev.cedges[i] = append(ev.cedges[i], cedge{
				edge:  e,
				path:  e.Path,
				slot:  slot,
				child: ev.qidx[e.Child],
				triv:  countable(e.Path) && len(e.Child.Edges) == 0,
				opt:   e.Optional,
			})
		}
	}
	ev.acquire()
	return ev
}

// acquire grabs (or re-grabs) the index's pooled scratch sized for this
// query. A fresh epoch means every memo cell (including the match memo)
// starts unset, so a materialization call after Exact returns replays the
// evaluation; determinism makes the replay bit-identical.
func (ev *evaluator) acquire() {
	if ev.sc != nil {
		return
	}
	ev.sc = ev.ix.grabScratch()
	ev.sc.ensure(len(ev.qnodes)*ev.stride, len(ev.pidx)*ev.stride,
		len(ev.eidx)*ev.stride, len(ev.ix.order))
}

// finish releases the scratch back to the index pool and flushes the
// locally accumulated counters.
func (ev *evaluator) finish(reg *obs.Registry) {
	if ev.sc != nil {
		ev.ix.releaseScratch(ev.sc)
		ev.sc = nil
	}
	if ev.memoHits > 0 {
		reg.Counter("eval.exact.memo_hits").Add(ev.memoHits)
		ev.memoHits = 0
	}
	if ev.matchHits > 0 {
		reg.Counter("eval.exact.match_hits").Add(ev.matchHits)
		ev.matchHits = 0
	}
	if ev.labelScans > 0 {
		reg.Counter("eval.exact.label_scans").Add(ev.labelScans)
		ev.labelScans = 0
	}
	if ev.countFast > 0 {
		reg.Counter("eval.exact.count_shortcuts").Add(ev.countFast)
		ev.countFast = 0
	}
}

// path evaluates a path expression from element e, applying existential
// predicates, and returns matched elements deduplicated in document order.
//
// Each step gathers its deduplicated candidate set first and filters
// predicates second. The original formulation interleaved the two per
// source element; since predicate outcomes are memoized per element, both
// orders keep exactly the elements whose predicates hold, in first-
// occurrence (document) order.
func (ev *evaluator) path(e *xmltree.Node, p *query.Path) []*xmltree.Node {
	ev.checkCtx()
	ix := ev.ix
	cur := []*xmltree.Node{e}
	for si := range p.Steps {
		step := &p.Steps[si]
		lid := int(ev.slids[step])
		if lid < 0 {
			return nil
		}
		var next []*xmltree.Node
		if step.Axis == query.Child {
			// Children of distinct (deduplicated) parents are disjoint, so
			// concatenation in source order needs no dedup and is document
			// order.
			for _, c := range cur {
				next = ix.appendChildren(next, c, lid)
			}
			ev.labelScans++
		} else if len(cur) == 1 {
			for _, pos := range ix.posRange(lid, cur[0]) {
				next = append(next, ix.order[pos])
			}
			ev.labelScans++
		} else {
			// Descendant sets of multiple sources can overlap (sources may
			// nest); dedup by pre-order position with an epoch mark.
			mark := ev.sc.beginSeen()
			seen := ev.sc.seenEp
			for _, c := range cur {
				for _, pos := range ix.posRange(lid, c) {
					if seen[pos] == mark {
						continue
					}
					seen[pos] = mark
					next = append(next, ix.order[pos])
				}
			}
			ev.labelScans++
		}
		ev.tickCtx(len(next))
		if len(step.Preds) > 0 {
			kept := next[:0]
			for _, t := range next {
				if ev.satisfiesPreds(t, step.Preds) {
					kept = append(kept, t)
				}
			}
			next = kept
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func (ev *evaluator) satisfiesPreds(e *xmltree.Node, preds []*query.Path) bool {
	sc := ev.sc
	for _, pred := range preds {
		slot := ev.pidx[pred]*ev.stride + e.OID
		var sat bool
		if sc.predEp[slot] == sc.epoch {
			sat = sc.predVal[slot]
		} else {
			// Predicates are existential, so a countable path needs only a
			// non-empty match count, not the match list.
			if countable(pred) {
				sat = ev.countPath(e, pred, true) > 0
			} else {
				sat = len(ev.path(e, pred)) > 0
			}
			sc.predEp[slot] = sc.epoch
			sc.predVal[slot] = sat
		}
		if !sat {
			return false
		}
	}
	return true
}

// countable reports whether countPath can count p's matches: the final
// step must be predicate-free (intermediate predicates just filter sources,
// but a final-step predicate would force materializing the matches anyway).
func countable(p *query.Path) bool {
	return len(p.Steps[len(p.Steps)-1].Preds) == 0
}

// countPath returns the number of elements a countable path reaches from e
// without materializing the final (usually largest) match set; with
// existOnly it stops at the first match. Intermediate steps enumerate and
// predicate-filter exactly like path; the final step is counted from the
// label position index. Child-step counts are exact because distinct
// parents have disjoint child sets; a final descendant step sums disjoint
// subtree ranges while no earlier descendant step has run (sources then sit
// in disjoint subtrees), and falls back to dedup counting afterwards.
func (ev *evaluator) countPath(e *xmltree.Node, p *query.Path, existOnly bool) int {
	ev.checkCtx()
	ix := ev.ix
	k := len(p.Steps)
	last := &p.Steps[k-1]
	lastLid := int(ev.slids[last])
	if lastLid < 0 {
		return 0
	}
	if k == 1 {
		ev.labelScans++
		ev.countFast++
		if last.Axis == query.Child {
			return ix.countChildren(e, lastLid)
		}
		return len(ix.posRange(lastLid, e))
	}
	root := [1]*xmltree.Node{e}
	cur := root[:1]
	pooled := false // whether cur came from bufPool
	nonNesting := true
	for si := 0; si < k-1; si++ {
		step := &p.Steps[si]
		lid := int(ev.slids[step])
		if lid < 0 {
			ev.putBuf(cur, pooled)
			return 0
		}
		ev.labelScans++
		next := ev.getBuf()
		if step.Axis == query.Child {
			for _, c := range cur {
				next = ix.appendChildren(next, c, lid)
			}
		} else if len(cur) == 1 {
			for _, pos := range ix.posRange(lid, cur[0]) {
				next = append(next, ix.order[pos])
			}
			nonNesting = false
		} else {
			mark := ev.sc.beginSeen()
			seen := ev.sc.seenEp
			for _, c := range cur {
				for _, pos := range ix.posRange(lid, c) {
					if seen[pos] == mark {
						continue
					}
					seen[pos] = mark
					next = append(next, ix.order[pos])
				}
			}
			nonNesting = false
		}
		ev.tickCtx(len(next))
		if len(step.Preds) > 0 {
			kept := next[:0]
			for _, t := range next {
				if ev.satisfiesPreds(t, step.Preds) {
					kept = append(kept, t)
				}
			}
			next = kept
		}
		ev.putBuf(cur, pooled)
		cur, pooled = next, true
		if len(cur) == 0 {
			ev.putBuf(cur, pooled)
			return 0
		}
	}
	ev.labelScans++
	ev.countFast++
	total := 0
	switch {
	case last.Axis == query.Child:
		for _, c := range cur {
			total += ix.countChildren(c, lastLid)
			if existOnly && total > 0 {
				break
			}
		}
	case nonNesting:
		for _, c := range cur {
			total += len(ix.posRange(lastLid, c))
			if existOnly && total > 0 {
				break
			}
		}
	default:
		mark := ev.sc.beginSeen()
		seen := ev.sc.seenEp
		for _, c := range cur {
			rng := ix.posRange(lastLid, c)
			if existOnly && len(rng) > 0 {
				total = 1
				break
			}
			for _, pos := range rng {
				if seen[pos] != mark {
					seen[pos] = mark
					total++
				}
			}
		}
	}
	ev.tickCtx(len(cur) + total)
	ev.putBuf(cur, pooled)
	return total
}

// getBuf hands out a recycled (empty, capacity-retaining) slice for
// countPath's transient intermediate sets; putBuf returns one.
func (ev *evaluator) getBuf() []*xmltree.Node {
	if n := len(ev.bufPool); n > 0 {
		b := ev.bufPool[n-1][:0]
		ev.bufPool = ev.bufPool[:n-1]
		return b
	}
	return nil
}

func (ev *evaluator) putBuf(b []*xmltree.Node, pooled bool) {
	if pooled && cap(b) > 0 {
		ev.bufPool = append(ev.bufPool, b)
	}
}

// edgeCount returns the match count of a count-only (triv) edge at e,
// memoized per (edge, element) so valid and tuples share one computation.
// The memo forces a full count (no existence early-exit): valid would
// accept a cheaper nonzero answer, but a later tuples call needs the total.
func (ev *evaluator) edgeCount(ce *cedge, e *xmltree.Node) int {
	sc := ev.sc
	k := ce.slot*ev.stride + e.OID
	if sc.countEp[k] == sc.epoch {
		ev.memoHits++
		return int(sc.countVal[k])
	}
	n := ev.countPath(e, ce.path, false)
	sc.countEp[k] = sc.epoch
	sc.countVal[k] = int32(n)
	return n
}

// matches returns the elements bound to an edge's target variable relative
// to a binding e of its source variable (path matches only; validity
// filtering is separate). slot is the edge's dense index.
func (ev *evaluator) matches(slot int, p *query.Path, e *xmltree.Node) []*xmltree.Node {
	sc := ev.sc
	k := slot*ev.stride + e.OID
	if sc.matchEp[k] == sc.epoch {
		ev.matchHits++
		return sc.matchVal[k]
	}
	m := ev.path(e, p)
	sc.matchEp[k] = sc.epoch
	sc.matchVal[k] = m
	return m
}

// valid reports whether element e is a valid binding for query variable
// qi: every required child edge must have at least one valid binding.
func (ev *evaluator) valid(qi int, e *xmltree.Node) bool {
	ev.checkCtx()
	sc := ev.sc
	slot := qi*ev.stride + e.OID
	if sc.validEp[slot] == sc.epoch {
		ev.memoHits++
		return sc.validVal[slot] == 1
	}
	// Mark invalid during computation; the query tree is acyclic so no
	// recursion can revisit (qi, e), but keep the invariant obvious.
	sc.validEp[slot] = sc.epoch
	sc.validVal[slot] = 2
	ok := true
	for i := range ev.cedges[qi] {
		ce := &ev.cedges[qi][i]
		if ce.opt {
			continue
		}
		if ce.triv {
			if ev.edgeCount(ce, e) == 0 {
				ok = false
				break
			}
			continue
		}
		found := false
		for _, m := range ev.matches(ce.slot, ce.path, e) {
			if ev.valid(ce.child, m) {
				found = true
				break
			}
		}
		if !found {
			ok = false
			break
		}
	}
	if ok {
		sc.validVal[slot] = 1
	}
	return ok
}

// tuples counts the binding tuples rooted at (qi, e): the product over
// child edges of the summed tuples of valid matches, with empty optional
// groups contributing a NULL binding (factor 1).
func (ev *evaluator) tuples(qi int, e *xmltree.Node) float64 {
	ev.checkCtx()
	sc := ev.sc
	slot := qi*ev.stride + e.OID
	if sc.tupEp[slot] == sc.epoch {
		ev.memoHits++
		return sc.tupVal[slot]
	}
	total := 1.0
	for i := range ev.cedges[qi] {
		ce := &ev.cedges[qi][i]
		var s float64
		if ce.triv {
			// Each match of a leaf variable is valid and contributes exactly
			// one tuple, and float64(k) is bit-identical to summing 1.0 k
			// times for any count below 2^53.
			s = float64(ev.edgeCount(ce, e))
		} else {
			for _, m := range ev.matches(ce.slot, ce.path, e) {
				if ev.valid(ce.child, m) {
					s += ev.tuples(ce.child, m)
				}
			}
		}
		if s == 0 {
			if ce.opt {
				s = 1
			} else {
				total = 0
				break
			}
		}
		total *= s
	}
	sc.tupEp[slot] = sc.epoch
	sc.tupVal[slot] = total
	return total
}

// NestingTree materializes the nesting tree NT(Q) as an XML tree (element
// labels only). maxNodes caps the output (<= 0 selects a default cap);
// exceeding it is an error.
func (r *ExactResult) NestingTree(maxNodes int) (*xmltree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 22
	}
	t := xmltree.NewTree()
	if r.Empty {
		return t, nil
	}
	ev := r.ev
	ev.acquire()
	defer ev.finish(obs.Default())
	var build func(qi int, e *xmltree.Node) (*xmltree.Node, error)
	build = func(qi int, e *xmltree.Node) (*xmltree.Node, error) {
		if t.Size() >= maxNodes {
			return nil, fmt.Errorf("eval: nesting tree exceeds %d nodes", maxNodes)
		}
		n := t.NewNode(e.Label)
		for i := range ev.cedges[qi] {
			ce := &ev.cedges[qi][i]
			for _, m := range ev.matches(ce.slot, ce.path, e) {
				if !ev.valid(ce.child, m) {
					continue
				}
				c, err := build(ce.child, m)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
			}
		}
		return n, nil
	}
	root, err := build(0, ev.ix.Doc.Root)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

// ESDGraph converts the true nesting tree into the consolidated DAG form
// consumed by the ESD metric, with labels tagged by query variable
// ("q1:author") so that comparisons are restricted to bindings of the same
// variable, per the paper's Section 6.1 methodology. Returns nil for an
// empty result.
func (r *ExactResult) ESDGraph() *esd.Node {
	if r.Empty {
		return nil
	}
	ev := r.ev
	ev.acquire()
	defer ev.finish(obs.Default())
	type esdKey struct {
		q   int
		oid int
	}
	memo := make(map[esdKey]*esd.Node)
	var build func(qi int, e *xmltree.Node) *esd.Node
	build = func(qi int, e *xmltree.Node) *esd.Node {
		k := esdKey{qi, e.OID}
		if n, ok := memo[k]; ok {
			return n
		}
		n := &esd.Node{Label: ev.qnodes[qi].Var + ":" + e.Label}
		memo[k] = n
		mults := make(map[*esd.Node]float64)
		var order []*esd.Node
		for i := range ev.cedges[qi] {
			ce := &ev.cedges[qi][i]
			for _, m := range ev.matches(ce.slot, ce.path, e) {
				if !ev.valid(ce.child, m) {
					continue
				}
				c := build(ce.child, m)
				if _, seen := mults[c]; !seen {
					order = append(order, c)
				}
				mults[c]++
			}
		}
		for _, c := range order {
			n.Edges = append(n.Edges, esd.Edge{Child: c, Mult: mults[c]})
		}
		return n
	}
	return esd.Consolidate(build(0, ev.ix.Doc.Root))
}
