package eval

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"treesketch/internal/esd"
	"treesketch/internal/xmltree"
)

// RNode is one node of a result synopsis TS_Q: it represents the elements
// of one source-synopsis node that appear in the bindings of one query
// variable (the uQ(u, q) association of Section 4.3).
type RNode struct {
	ID    int
	Var   string // query variable name ("q1")
	VarID int    // pre-order index of the variable in the query tree
	Label string // element tag
	Src   int    // source synopsis node ID
	Count float64
	Edges []REdge
}

// REdge carries the estimated per-element descendant count k from a parent
// result node to a child result node.
type REdge struct {
	Child int
	K     float64
}

// addK accumulates descendant count toward a child result node (Figure 7
// line 12: counts along multiple synopsis paths to the same node add up).
func (n *RNode) addK(child int, k float64) {
	for i := range n.Edges {
		if n.Edges[i].Child == child {
			n.Edges[i].K += k
			return
		}
	}
	n.Edges = append(n.Edges, REdge{Child: child, K: k})
}

// Result is the output of approximate query evaluation: a TreeSketch-style
// synopsis of the (approximate) nesting tree.
type Result struct {
	Nodes []*RNode
	Root  int
	// Empty marks a query answer known to be empty (a required variable
	// found no bindings).
	Empty bool
	// Truncated records that embedding enumeration hit MaxEmbeddings; the
	// counts are then lower bounds.
	Truncated bool
	// Canceled marks a batch evaluation aborted because its context expired
	// mid-enumeration. The rest of the result is a bare placeholder (no
	// nodes, no counts) and must not be served as an answer; callers route
	// it to their cancellation path the way ExactResult.Canceled is routed.
	// Canceled results are never fingerprinted.
	Canceled bool
	// VarOptional marks, per query-variable index, whether the variable is
	// bound through a dashed (optional) edge; used by Selectivity.
	VarOptional []bool
	// TopK records the streaming expansion that produced this result when
	// Options.Limit was set; nil on the batch path. It is diagnostic only:
	// Fingerprint ignores it, so a fully exhausted streaming run hashes
	// identically to its batch counterpart.
	TopK *TopKInfo
}

// Fingerprint hashes the result synopsis' canonical bytes (FNV-1a, the same
// construction as sketch.Fingerprint): structure flags, node identities,
// labels, exact count bits, and edge k bits. Two results compare equal iff
// every float matches bit-for-bit, which is the determinism oracle the
// streaming-vs-batch differential tests rely on. TopK metadata is excluded.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wBool := func(v bool) {
		if v {
			wInt(1)
		} else {
			wInt(0)
		}
	}
	wBool(r.Empty)
	wBool(r.Truncated)
	wInt(r.Root)
	wInt(len(r.VarOptional))
	for _, o := range r.VarOptional {
		wBool(o)
	}
	wInt(len(r.Nodes))
	for _, rn := range r.Nodes {
		wInt(rn.ID)
		wInt(rn.VarID)
		wInt(rn.Src)
		wInt(len(rn.Label))
		h.Write([]byte(rn.Label))
		wFloat(rn.Count)
		wInt(len(rn.Edges))
		for _, e := range rn.Edges {
			wInt(e.Child)
			wFloat(e.K)
		}
	}
	return h.Sum64()
}

// Selectivity estimates the number of binding tuples of the query
// (Section 4.4): a single bottom-up pass computes, per result node, the
// average number of binding tuples per element of its extent; the estimate
// is the value at the root.
func (r *Result) Selectivity() float64 {
	if r.Empty || len(r.Nodes) == 0 {
		return 0
	}
	// Group each node's edges by child variable. A node's
	// tuples-per-element is the product over child variables of the summed
	// k * tuples(child). An absent variable contributes factor 1 (for
	// required variables the pruning pass already removed nodes missing
	// them); an optional variable's factor is clamped to at least 1, since
	// elements without matches still contribute a NULL binding.
	memo := make([]float64, len(r.Nodes))
	for i := range memo {
		memo[i] = -1
	}
	var tuples func(id int) float64
	tuples = func(id int) float64 {
		if memo[id] >= 0 {
			return memo[id]
		}
		memo[id] = 0 // cycle guard; result graphs are DAGs
		rn := r.Nodes[id]
		perVar := make(map[int]float64)
		for _, e := range rn.Edges {
			perVar[r.Nodes[e.Child].VarID] += e.K * tuples(e.Child)
		}
		// Sorted drain: the per-variable factors multiply into a float and
		// must not follow map iteration order.
		vars := make([]int, 0, len(perVar))
		for v := range perVar {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		total := 1.0
		for _, v := range vars {
			s := perVar[v]
			if v < len(r.VarOptional) && r.VarOptional[v] && s < 1 {
				s = 1
			}
			total *= s
		}
		memo[id] = total
		return total
	}
	return tuples(r.Root)
}

// esdExpandCap bounds the materialized approximate nesting tree used for
// ESD comparisons; beyond it the fractional synopsis graph is compared
// directly.
const esdExpandCap = 1 << 19

// ESDGraph produces the DAG form of the approximate nesting tree for the
// ESD metric, with variable-tagged labels matching ExactResult.ESDGraph.
//
// Following the paper (the approximate answer is "retrieved by expanding
// TS_Q"), the result synopsis is first expanded: fractional average counts
// materialize as a mixture of integer counts (stochastic rounding with
// carry), which is what the metric should judge. Very large answers fall
// back to comparing the synopsis graph directly, whose fractional
// multiplicities the metric also accepts. Returns nil for an empty result.
func (r *Result) ESDGraph() *esd.Node {
	if r.Empty || len(r.Nodes) == 0 {
		return nil
	}
	if t, err := r.expand(esdExpandCap, true); err == nil {
		return esd.FromTree(t, nil)
	}
	return r.ESDGraphSynopsis()
}

// ESDGraphSynopsis converts the result synopsis directly into the metric's
// DAG form, with fractional edge multiplicities. Returns nil for an empty
// result.
func (r *Result) ESDGraphSynopsis() *esd.Node {
	if r.Empty || len(r.Nodes) == 0 {
		return nil
	}
	nodes := make([]*esd.Node, len(r.Nodes))
	for i, rn := range r.Nodes {
		nodes[i] = &esd.Node{Label: rn.Var + ":" + rn.Label}
	}
	for i, rn := range r.Nodes {
		for _, e := range rn.Edges {
			if e.K > 0 {
				nodes[i].Edges = append(nodes[i].Edges, esd.Edge{Child: nodes[e.Child], Mult: e.K})
			}
		}
	}
	return esd.Consolidate(nodes[r.Root])
}

// Expand materializes an approximate nesting tree: fractional counts are
// realized with deterministic stochastic rounding, exactly like
// sketch.Expand. maxNodes <= 0 selects a default cap.
func (r *Result) Expand(maxNodes int) (*xmltree.Tree, error) {
	return r.expand(maxNodes, false)
}

func (r *Result) expand(maxNodes int, varLabels bool) (*xmltree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	t := xmltree.NewTree()
	if r.Empty || len(r.Nodes) == 0 {
		return t, nil
	}
	// Edges of one result node that bind the same query variable are
	// alternatives (one per surviving source-cluster shape), so expansion
	// realizes the *group* total per element — the number of bindings of
	// that variable — with a rounding carry, and then allocates the
	// children among the group's edges by accumulated credit. Drawing each
	// edge independently would fabricate elements with zero or many
	// bindings where every real element has, say, exactly one.
	type group struct {
		varID int
		total float64
		edges []REdge
		carry float64
		// credit accumulates per-edge entitlement; children go to the
		// highest-credit edge first.
		credit []float64
	}
	groupsOf := make(map[int][]*group)
	groupFor := func(id int) []*group {
		if gs, ok := groupsOf[id]; ok {
			return gs
		}
		rn := r.Nodes[id]
		edges := append([]REdge(nil), rn.Edges...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].Child < edges[j].Child })
		byVar := make(map[int]*group)
		var gs []*group
		for _, e := range edges {
			v := r.Nodes[e.Child].VarID
			g := byVar[v]
			if g == nil {
				g = &group{varID: v}
				byVar[v] = g
				gs = append(gs, g)
			}
			g.total += e.K
			g.edges = append(g.edges, e)
		}
		sort.Slice(gs, func(i, j int) bool { return gs[i].varID < gs[j].varID })
		for _, g := range gs {
			g.credit = make([]float64, len(g.edges))
			// Dithered initial phase so sibling groups do not fire in
			// lockstep across elements.
			h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(g.varID)*0xbf58476d1ce4e5b9
			h ^= h >> 31
			h *= 0x94d049bb133111eb
			h ^= h >> 29
			g.carry = float64(h%(1<<20)) / (1 << 20)
		}
		groupsOf[id] = gs
		return gs
	}

	var build func(id int) (*xmltree.Node, error)
	build = func(id int) (*xmltree.Node, error) {
		if t.Size() >= maxNodes {
			return nil, fmt.Errorf("eval: expansion exceeds %d nodes", maxNodes)
		}
		rn := r.Nodes[id]
		label := rn.Label
		if varLabels {
			label = rn.Var + ":" + rn.Label
		}
		n := t.NewNode(label)
		for _, g := range groupFor(id) {
			want := g.total + g.carry
			count := int(want)
			g.carry = want - float64(count)
			for i := range g.edges {
				g.credit[i] += g.edges[i].K
			}
			for j := 0; j < count; j++ {
				best := 0
				for i := 1; i < len(g.credit); i++ {
					if g.credit[i] > g.credit[best] {
						best = i
					}
				}
				g.credit[best]--
				c, err := build(g.edges[best].Child)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
			}
		}
		return n, nil
	}
	root, err := build(r.Root)
	if err != nil {
		return nil, err
	}
	t.Root = root
	return t, nil
}

// TotalNodes estimates the number of elements in the approximate nesting
// tree (sum of extent counts).
func (r *Result) TotalNodes() float64 {
	var s float64
	for _, rn := range r.Nodes {
		s += rn.Count
	}
	return s
}

// RelativeError computes the paper's error measure for selectivity
// estimation (Section 6.1): |true - est| / max(true, sanity), where sanity
// guards against inflated percentages on low-count queries.
func RelativeError(truth, est, sanity float64) float64 {
	denom := math.Max(truth, sanity)
	if denom <= 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(truth-est) / denom
}
