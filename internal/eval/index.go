// Package eval evaluates twig queries both exactly over XML documents
// (producing the true nesting tree NT(Q) and binding-tuple counts — the
// ground truth of the paper's experiments) and approximately over
// TreeSketch synopses (the EvalQuery / EvalEmbed algorithms of Figures 7
// and 8), including the selectivity-estimation framework of Section 4.4.
package eval

import (
	"sort"

	"treesketch/internal/xmltree"
)

// Index accelerates path evaluation over a document: it assigns pre-order
// positions, records each element's subtree interval, and maintains
// per-label position lists so descendant steps resolve with binary search.
type Index struct {
	Doc *xmltree.Tree

	order   []*xmltree.Node // nodes by pre-order position
	begin   []int           // OID -> pre-order position
	end     []int           // OID -> position just past the subtree
	byLabel map[string][]int
}

// NewIndex builds the evaluation index for doc in O(|T|) time.
func NewIndex(doc *xmltree.Tree) *Index {
	ix := &Index{
		Doc:     doc,
		order:   make([]*xmltree.Node, 0, doc.Size()),
		begin:   make([]int, doc.OIDSpace()),
		end:     make([]int, doc.OIDSpace()),
		byLabel: make(map[string][]int),
	}
	if doc.Root == nil {
		return ix
	}
	// Iterative DFS computing begin/end intervals.
	type frame struct {
		n *xmltree.Node
		i int
	}
	stack := []frame{{doc.Root, 0}}
	ix.enter(doc.Root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Children) {
			c := f.n.Children[f.i]
			f.i++
			ix.enter(c)
			stack = append(stack, frame{c, 0})
			continue
		}
		ix.end[f.n.OID] = len(ix.order)
		stack = stack[:len(stack)-1]
	}
	return ix
}

func (ix *Index) enter(n *xmltree.Node) {
	ix.begin[n.OID] = len(ix.order)
	ix.byLabel[n.Label] = append(ix.byLabel[n.Label], len(ix.order))
	ix.order = append(ix.order, n)
}

// Children returns e's direct children with the given label, in document
// order.
func (ix *Index) Children(e *xmltree.Node, label string) []*xmltree.Node {
	var out []*xmltree.Node
	for _, c := range e.Children {
		if c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// Descendants returns e's proper descendants with the given label, in
// document order.
func (ix *Index) Descendants(e *xmltree.Node, label string) []*xmltree.Node {
	positions := ix.byLabel[label]
	lo := ix.begin[e.OID] + 1
	hi := ix.end[e.OID]
	i := sort.SearchInts(positions, lo)
	var out []*xmltree.Node
	for ; i < len(positions) && positions[i] < hi; i++ {
		out = append(out, ix.order[positions[i]])
	}
	return out
}

// IsAncestor reports whether a is a proper ancestor of d.
func (ix *Index) IsAncestor(a, d *xmltree.Node) bool {
	if a.OID == d.OID {
		return false
	}
	return ix.begin[a.OID] <= ix.begin[d.OID] && ix.begin[d.OID] < ix.end[a.OID]
}
