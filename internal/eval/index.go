// Package eval evaluates twig queries both exactly over XML documents
// (producing the true nesting tree NT(Q) and binding-tuple counts — the
// ground truth of the paper's experiments) and approximately over
// TreeSketch synopses (the EvalQuery / EvalEmbed algorithms of Figures 7
// and 8), including the selectivity-estimation framework of Section 4.4.
package eval

import (
	"sync/atomic"

	"treesketch/internal/xmltree"
)

// Index accelerates path evaluation over a document: it assigns pre-order
// positions, records each element's subtree interval, and maintains
// per-label position lists so descendant steps resolve with binary search
// and child steps can scan by label instead of walking every child.
type Index struct {
	Doc *xmltree.Tree

	order     []*xmltree.Node // nodes by pre-order position
	begin     []int           // OID -> pre-order position
	end       []int           // OID -> position just past the subtree
	parentPos []int32         // pre-order position -> parent's position (-1 for root)
	labelIDs  map[string]int  // label -> dense label ID
	posLists  [][]int32       // label ID -> ascending pre-order positions

	// ranks lazily caches, per frequent label, the prefix-count array
	// ranks[lid][p] = #occurrences of lid at positions < p, which turns
	// posRange (and thus every descendant count) into two O(1) lookups.
	// Built on first use under concurrent Load/Store (a racing double build
	// produces identical arrays, so last-store-wins is safe).
	ranks []atomic.Pointer[[]int32]

	// scratch pools one exactScratch across queries evaluated on this
	// index. Access is a lock-free swap: a concurrent evaluation that finds
	// the pool empty allocates its own scratch, so sharing an Index across
	// goroutines stays safe.
	scratch atomic.Pointer[exactScratch]
}

// NewIndex builds the evaluation index for doc in O(|T|) time.
func NewIndex(doc *xmltree.Tree) *Index {
	ix := &Index{
		Doc:       doc,
		order:     make([]*xmltree.Node, 0, doc.Size()),
		begin:     make([]int, doc.OIDSpace()),
		end:       make([]int, doc.OIDSpace()),
		parentPos: make([]int32, 0, doc.Size()),
		labelIDs:  make(map[string]int),
	}
	if doc.Root == nil {
		return ix
	}
	// Iterative DFS computing begin/end intervals.
	type frame struct {
		n *xmltree.Node
		i int
	}
	stack := []frame{{doc.Root, 0}}
	ix.enter(doc.Root, -1)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Children) {
			c := f.n.Children[f.i]
			f.i++
			ix.enter(c, int32(ix.begin[f.n.OID]))
			stack = append(stack, frame{c, 0})
			continue
		}
		ix.end[f.n.OID] = len(ix.order)
		stack = stack[:len(stack)-1]
	}
	ix.ranks = make([]atomic.Pointer[[]int32], len(ix.posLists))
	return ix
}

func (ix *Index) enter(n *xmltree.Node, parent int32) {
	pos := len(ix.order)
	ix.begin[n.OID] = pos
	lid, ok := ix.labelIDs[n.Label]
	if !ok {
		lid = len(ix.posLists)
		ix.labelIDs[n.Label] = lid
		ix.posLists = append(ix.posLists, nil)
	}
	ix.posLists[lid] = append(ix.posLists[lid], int32(pos))
	ix.parentPos = append(ix.parentPos, parent)
	ix.order = append(ix.order, n)
}

// labelID resolves a label to its dense ID; ok is false when the label does
// not occur in the document (no element can match it).
func (ix *Index) labelID(label string) (int, bool) {
	lid, ok := ix.labelIDs[label]
	return lid, ok
}

// posRange returns the ascending pre-order positions of label-lid elements
// within e's proper subtree, as a sub-slice of the index's position list
// (no allocation).
func (ix *Index) posRange(lid int, e *xmltree.Node) []int32 {
	positions := ix.posLists[lid]
	lo := int32(ix.begin[e.OID] + 1)
	hi := int32(ix.end[e.OID])
	if len(positions) >= rankThreshold {
		r := ix.rank(lid)
		return positions[r[lo]:r[hi]]
	}
	i := searchGE(positions, lo)
	j := i + searchGE(positions[i:], hi)
	return positions[i:j]
}

// rankThreshold is the position-list size above which posRange switches
// from binary search to the O(1) rank array; short lists are not worth the
// O(|T|) build and memory.
const rankThreshold = 64

func (ix *Index) rank(lid int) []int32 {
	if r := ix.ranks[lid].Load(); r != nil {
		return *r
	}
	n := len(ix.order)
	r := make([]int32, n+1)
	for _, pos := range ix.posLists[lid] {
		r[pos+1] = 1
	}
	for p := 1; p <= n; p++ {
		r[p] += r[p-1]
	}
	ix.ranks[lid].Store(&r)
	return r
}

// searchGE returns the first index whose value is >= v in the ascending
// slice a (sort.Search without the per-iteration closure call, which is
// measurable in the eval tail).
func searchGE(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// countChildren counts e's direct children with label lid without
// materializing them; same strategy selection as appendChildren.
func (ix *Index) countChildren(e *xmltree.Node, lid int) int {
	rng := ix.posRange(lid, e)
	if len(rng) == 0 {
		return 0
	}
	n := 0
	if len(rng) < len(e.Children) {
		ep := int32(ix.begin[e.OID])
		for _, pos := range rng {
			if ix.parentPos[pos] == ep {
				n++
			}
		}
		return n
	}
	label := ix.order[rng[0]].Label
	for _, c := range e.Children {
		if c.Label == label {
			n++
		}
	}
	return n
}

// Children returns e's direct children with the given label, in document
// order.
func (ix *Index) Children(e *xmltree.Node, label string) []*xmltree.Node {
	lid, ok := ix.labelIDs[label]
	if !ok {
		return nil
	}
	return ix.appendChildren(nil, e, lid)
}

// appendChildren appends e's direct children with label lid to out, in
// document order. When the subtree holds fewer label occurrences than e has
// children, the label position list is scanned (filtering by parent
// position) instead of walking every child; both strategies produce the
// same sequence.
func (ix *Index) appendChildren(out []*xmltree.Node, e *xmltree.Node, lid int) []*xmltree.Node {
	rng := ix.posRange(lid, e)
	if len(rng) == 0 {
		return out
	}
	if out == nil {
		out = make([]*xmltree.Node, 0, len(rng))
	}
	if len(rng) < len(e.Children) {
		ep := int32(ix.begin[e.OID])
		for _, pos := range rng {
			if ix.parentPos[pos] == ep {
				out = append(out, ix.order[pos])
			}
		}
		return out
	}
	for _, c := range e.Children {
		if c.Label == ix.order[rng[0]].Label {
			out = append(out, c)
		}
	}
	return out
}

// Descendants returns e's proper descendants with the given label, in
// document order.
func (ix *Index) Descendants(e *xmltree.Node, label string) []*xmltree.Node {
	lid, ok := ix.labelIDs[label]
	if !ok {
		return nil
	}
	rng := ix.posRange(lid, e)
	var out []*xmltree.Node
	for _, pos := range rng {
		out = append(out, ix.order[pos])
	}
	return out
}

// IsAncestor reports whether a is a proper ancestor of d.
func (ix *Index) IsAncestor(a, d *xmltree.Node) bool {
	if a.OID == d.OID {
		return false
	}
	return ix.begin[a.OID] <= ix.begin[d.OID] && ix.begin[d.OID] < ix.end[a.OID]
}

// grabScratch takes the pooled scratch (or allocates a fresh one when the
// pool is empty or another evaluation holds it) and advances its epoch so
// every memo cell reads as unset.
func (ix *Index) grabScratch() *exactScratch {
	sc := ix.scratch.Swap(nil)
	if sc == nil {
		sc = &exactScratch{}
	}
	sc.epoch++
	return sc
}

// releaseScratch returns scratch to the pool for the next evaluation.
func (ix *Index) releaseScratch(sc *exactScratch) {
	ix.scratch.Store(sc)
}

// exactScratch holds the dense epoch-stamped memo tables the exact
// evaluator reuses across queries on one index: validity and tuple-count
// cells keyed by (query-variable, element-OID) slot, predicate cells keyed
// by (predicate, element-OID) slot, and a per-position seen array for
// document-order deduplication. Epoch stamping invalidates every cell in
// O(1) when a new evaluation grabs the scratch, replacing the per-query map
// allocations that dominated the exact-eval tail.
type exactScratch struct {
	epoch int32

	validEp  []int32
	validVal []int8 // 1 valid, 2 invalid (or in progress)
	tupEp    []int32
	tupVal   []float64
	predEp   []int32
	predVal  []bool
	matchEp  []int32
	matchVal [][]*xmltree.Node // (edge, element-OID) slot -> path matches
	countEp  []int32
	countVal []int32 // (edge, element-OID) slot -> countPath result

	seenEp  []int32 // pre-order position -> last seen mark
	seenCtr int32
}

// ensure grows the memo tables to cover the given slot counts.
func (sc *exactScratch) ensure(validSlots, predSlots, matchSlots, positions int) {
	if len(sc.validEp) < validSlots {
		sc.validEp = make([]int32, validSlots)
		sc.validVal = make([]int8, validSlots)
		sc.tupEp = make([]int32, validSlots)
		sc.tupVal = make([]float64, validSlots)
	}
	if len(sc.predEp) < predSlots {
		sc.predEp = make([]int32, predSlots)
		sc.predVal = make([]bool, predSlots)
	}
	if len(sc.matchEp) < matchSlots {
		sc.matchEp = make([]int32, matchSlots)
		sc.matchVal = make([][]*xmltree.Node, matchSlots)
		sc.countEp = make([]int32, matchSlots)
		sc.countVal = make([]int32, matchSlots)
	}
	if len(sc.seenEp) < positions {
		sc.seenEp = make([]int32, positions)
	}
}

// beginSeen starts a fresh deduplication pass and returns its mark.
func (sc *exactScratch) beginSeen() int32 {
	sc.seenCtr++
	return sc.seenCtr
}
