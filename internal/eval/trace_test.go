package eval

import (
	"context"
	"testing"

	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
	"treesketch/internal/xmltree"
)

// spanNames collects the distinct span names recorded on a trace.
func spanNames(tr *obs.Trace) map[string]bool {
	names := make(map[string]bool)
	for _, sp := range tr.Snapshot().Spans {
		names[sp.Name] = true
	}
	return names
}

func TestExactContextRecordsTrace(t *testing.T) {
	doc := xmltree.MustCompact("r(e(a,b),e(a),e(b))")
	ix := NewIndex(doc)
	q := query.MustParse("//e[/a]")

	tr := obs.NewTrace(q.String())
	ctx := obs.ContextWithTrace(context.Background(), tr)
	traced := ExactContext(ctx, ix, q)
	plain := Exact(ix, q)
	if traced.Tuples != plain.Tuples || traced.Empty != plain.Empty {
		t.Fatalf("traced result %v differs from untraced %v", traced, plain)
	}

	names := spanNames(tr)
	for _, want := range []string{"eval.plan", "eval.memo"} {
		if !names[want] {
			t.Errorf("exact trace missing span %q (have %v)", want, names)
		}
	}
	if c := tr.Snapshot().Counters; c["exact_label_scans"] == 0 {
		t.Errorf("exact trace counters = %v, want label scans", c)
	}
}

func TestApproxContextRecordsTrace(t *testing.T) {
	doc := xmltree.MustCompact("r(e(a,b),e(a),e(b),e(a,a))")
	st := stable.Build(doc)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})
	q := query.MustParse("//e[/a]")

	tr := obs.NewTrace(q.String())
	ctx := obs.ContextWithTrace(context.Background(), tr)
	traced := ApproxContext(ctx, sk, q, Options{})
	plain := Approx(sk, q, Options{})
	if traced.Selectivity() != plain.Selectivity() {
		t.Fatalf("traced selectivity %g differs from untraced %g",
			traced.Selectivity(), plain.Selectivity())
	}

	names := spanNames(tr)
	for _, want := range []string{"eval.plan", "eval.memo", "eval.emit"} {
		if !names[want] {
			t.Errorf("approx trace missing span %q (have %v)", want, names)
		}
	}
	if c := tr.Snapshot().Counters; c["approx_result_nodes"] == 0 {
		t.Errorf("approx trace counters = %v, want result nodes", c)
	}
}

// TestUntracedContextIsFree pins the disabled path: evaluating with a bare
// context records nothing and changes nothing.
func TestUntracedContextIsFree(t *testing.T) {
	doc := xmltree.MustCompact("r(e(a),e(b))")
	st := stable.Build(doc)
	sk, _ := tsbuild.Build(st, tsbuild.Options{BudgetBytes: 1})
	ix := NewIndex(doc)
	q := query.MustParse("//e")

	if got, want := ExactContext(context.Background(), ix, q).Tuples, Exact(ix, q).Tuples; got != want {
		t.Errorf("exact tuples with bare context = %v, want %v", got, want)
	}
	a := ApproxContext(context.Background(), sk, q, Options{})
	b := Approx(sk, q, Options{})
	if a.Selectivity() != b.Selectivity() {
		t.Errorf("approx selectivity with bare context = %g, want %g", a.Selectivity(), b.Selectivity())
	}
}
