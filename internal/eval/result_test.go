package eval

import (
	"math"
	"strings"
	"testing"

	"treesketch/internal/esd"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestESDGraphExpandsFractionalCounts(t *testing.T) {
	// A result node with avg 1.5 children must expand to a mixture of 1-
	// and 2-child elements, not a single fractional class.
	r := &Result{Root: 0, Nodes: []*RNode{
		{ID: 0, Var: "q0", VarID: 0, Label: "r", Count: 1, Edges: []REdge{{Child: 1, K: 4}}},
		{ID: 1, Var: "q1", VarID: 1, Label: "a", Count: 4, Edges: []REdge{{Child: 2, K: 1.5}}},
		{ID: 2, Var: "q2", VarID: 2, Label: "b", Count: 6},
	}}
	g := r.ESDGraph()
	if g == nil {
		t.Fatal("nil graph")
	}
	// Root has one child group (q1:a) with two distinct classes: a with 1
	// b and a with 2 b's.
	if len(g.Edges) != 2 {
		t.Fatalf("root has %d child classes, want 2 (1-b and 2-b mixture)", len(g.Edges))
	}
	var mults []float64
	for _, e := range g.Edges {
		if !strings.HasPrefix(e.Child.Label, "q1:a") {
			t.Fatalf("child label %q", e.Child.Label)
		}
		mults = append(mults, e.Mult)
	}
	if mults[0]+mults[1] != 4 {
		t.Fatalf("mixture multiplicities %v, want sum 4", mults)
	}
}

func TestESDGraphSynopsisKeepsFractions(t *testing.T) {
	r := &Result{Root: 0, Nodes: []*RNode{
		{ID: 0, Var: "q0", VarID: 0, Label: "r", Count: 1, Edges: []REdge{{Child: 1, K: 2.5}}},
		{ID: 1, Var: "q1", VarID: 1, Label: "a", Count: 2.5},
	}}
	g := r.ESDGraphSynopsis()
	if g == nil || len(g.Edges) != 1 {
		t.Fatalf("graph %+v", g)
	}
	if g.Edges[0].Mult != 2.5 {
		t.Fatalf("mult = %g, want 2.5", g.Edges[0].Mult)
	}
}

func TestESDGraphExpandedBeatsFractionalOnMixtures(t *testing.T) {
	// Ground truth: half the a's have 1 b, half have 2. An averaged answer
	// (k=1.5) should be judged nearly perfect after expansion.
	doc := xmltree.MustCompact("r(a(b),a(b,b),a(b),a(b,b))")
	q := query.MustParse("//a{/b}")
	ex := Exact(NewIndex(doc), q)

	r := &Result{Root: 0, Nodes: []*RNode{
		{ID: 0, Var: "q0", VarID: 0, Label: "r", Count: 1, Edges: []REdge{{Child: 1, K: 4}}},
		{ID: 1, Var: "q1", VarID: 1, Label: "a", Count: 4, Edges: []REdge{{Child: 2, K: 1.5}}},
		{ID: 2, Var: "q2", VarID: 2, Label: "b", Count: 6},
	}}
	dExpanded := esd.Distance(ex.ESDGraph(), r.ESDGraph())
	dFractional := esd.Distance(ex.ESDGraph(), r.ESDGraphSynopsis())
	if !(dExpanded < dFractional) {
		t.Fatalf("expanded ESD %g should beat fractional %g", dExpanded, dFractional)
	}
	if dExpanded > 1e-9 {
		t.Fatalf("expanded ESD = %g, want 0 (mixture matches truth exactly)", dExpanded)
	}
}

func TestExpandVarLabelsFlag(t *testing.T) {
	r := &Result{Root: 0, Nodes: []*RNode{
		{ID: 0, Var: "q0", VarID: 0, Label: "r", Count: 1, Edges: []REdge{{Child: 1, K: 1}}},
		{ID: 1, Var: "q1", VarID: 1, Label: "a", Count: 1},
	}}
	plain, err := r.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Root.Label != "r" || plain.Root.Children[0].Label != "a" {
		t.Fatalf("plain labels: %s", plain.Compact())
	}
	tagged, err := r.expand(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if tagged.Root.Label != "q0:r" || tagged.Root.Children[0].Label != "q1:a" {
		t.Fatalf("tagged labels: %s", tagged.Compact())
	}
}

func TestReachesCache(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b(c)),d)")
	sk := sketch.FromStable(stable.Build(tr))
	a := &approxer{sk: sk}
	ids := map[string]int{}
	for _, u := range sk.Nodes {
		ids[u.Label] = u.ID
	}
	if !a.reaches(ids["r"], "c") {
		t.Fatal("r should reach c")
	}
	if a.reaches(ids["d"], "c") {
		t.Fatal("d should not reach c")
	}
	if !a.reaches(ids["c"], "c") {
		t.Fatal("c should reach itself (label occurrence)")
	}
	if _, ok := a.reachCache["c"]; !ok {
		t.Fatal("reach result not cached")
	}
}

func TestEmbeddingWorkBudgetTruncates(t *testing.T) {
	// A wide synopsis with many fruitless branches: tiny MaxEmbeddings
	// must bound the work and set Truncated rather than hang.
	src := "r("
	for i := 0; i < 30; i++ {
		if i > 0 {
			src += ","
		}
		src += "x(y(z(w(v))))"
	}
	src += ",target)"
	tr := xmltree.MustCompact(src)
	sk := sketch.FromStable(stable.Build(tr))
	r := Approx(sk, query.MustParse("//target"), Options{MaxEmbeddings: 1})
	if r.Empty && !r.Truncated {
		t.Fatal("result empty without truncation flag")
	}
}

func TestSelectivityOptionalClamp(t *testing.T) {
	// An optional variable with average 0.5 matches per element clamps to
	// factor 1 (elements without matches still produce a NULL binding).
	r := &Result{Root: 0, VarOptional: []bool{false, false, true}, Nodes: []*RNode{
		{ID: 0, Var: "q0", VarID: 0, Label: "r", Count: 1, Edges: []REdge{{Child: 1, K: 2}}},
		{ID: 1, Var: "q1", VarID: 1, Label: "a", Count: 2, Edges: []REdge{{Child: 2, K: 0.5}}},
		{ID: 2, Var: "q2", VarID: 2, Label: "b", Count: 1},
	}}
	if sel := r.Selectivity(); math.Abs(sel-2) > 1e-12 {
		t.Fatalf("Selectivity = %g, want 2 (optional clamped)", sel)
	}
	// Required: the 0.5 factor stays.
	r.VarOptional[2] = false
	if sel := r.Selectivity(); math.Abs(sel-1) > 1e-12 {
		t.Fatalf("Selectivity = %g, want 1", sel)
	}
}

func TestTotalNodes(t *testing.T) {
	r := &Result{Root: 0, Nodes: []*RNode{
		{ID: 0, Count: 1},
		{ID: 1, Count: 4.5},
	}}
	if got := r.TotalNodes(); got != 5.5 {
		t.Fatalf("TotalNodes = %g, want 5.5", got)
	}
}
