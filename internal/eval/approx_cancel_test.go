package eval

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// TestApproxContextCanceled pins the batch approximate evaluator's
// cancellation contract (the ctxpoll analyzer's subject): an expired
// context stops the enumeration with a bare Canceled result and a counter
// increment, and a live background context is untouched — so a serving
// deadline actually frees the admission slot a pathological estimate is
// pinning.
func TestApproxContextCanceled(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c),b(d)),a(b(c)),a(e))")
	sk := sketch.FromStable(stable.Build(doc))
	q := query.MustParse("//a{//b?,//c?}")

	reg := obs.NewRegistry()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	res := ApproxContext(expired, sk, q, Options{Metrics: reg})
	if !res.Canceled {
		t.Fatal("expired context did not cancel the batch approximate evaluation")
	}
	if len(res.Nodes) != 0 {
		t.Fatalf("canceled result carries %d nodes; it must be a bare placeholder", len(res.Nodes))
	}
	if got := reg.Counter("eval.approx.canceled").Value(); got != 1 {
		t.Fatalf("eval.approx.canceled = %d, want 1", got)
	}

	live := ApproxContext(context.Background(), sk, q, Options{Metrics: reg})
	if live.Canceled || live.Empty || len(live.Nodes) == 0 {
		t.Fatalf("background context result = %+v, want a live synopsis", live)
	}
}

// TestApproxContextCanceledMidEnumeration pins the polling cadence: on a
// synopsis wide enough that the enumeration's cost lives in edge scans, the
// deadline poll count must scale with traversal work (work-proportional
// tickCtx), and a context expiring mid-enumeration must cancel the
// evaluation. It also pins that arming the poll changes no computed floats:
// the never-expiring polled run fingerprints identically to the background
// run.
func TestApproxContextCanceledMidEnumeration(t *testing.T) {
	// Distinct section labels keep the label-path clusters from merging, so
	// the synopsis itself is wide and the descendant-axis enumerations scan
	// thousands of synopsis edges.
	var sb strings.Builder
	sb.WriteString("r(")
	for i := 0; i < 1500; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString("s" + strconv.Itoa(i) + "(a(b(c),b(d)))")
	}
	sb.WriteString(")")
	sk := sketch.FromStable(stable.Build(xmltree.MustCompact(sb.String())))
	q := query.MustParse("//a[//c]{//b?,//d?}")

	polls := 0
	res := ApproxContext(countdownCtx{Context: context.Background(), polls: &polls}, sk, q, Options{})
	if res.Canceled || res.Empty || len(res.Nodes) == 0 {
		t.Fatalf("live evaluation = %+v, want a real synopsis", res)
	}
	if polls < 3 {
		t.Fatalf("enumeration over %d synopsis nodes polled ctx only %d times; polling must track traversal work", len(sk.Nodes), polls)
	}
	background := Approx(sk, q, Options{})
	if res.Fingerprint() != background.Fingerprint() {
		t.Fatal("arming the ctx poll changed the computed result fingerprint")
	}

	mid := polls / 2
	polls = 0
	res = ApproxContext(countdownCtx{Context: context.Background(), polls: &polls, limit: mid}, sk, q, Options{})
	if !res.Canceled {
		t.Fatalf("context expiring at poll %d did not cancel the evaluation", mid)
	}
}

// TestTopKContextStaysGraceful pins the deliberate asymmetry: the streaming
// top-k path never arms the tick-panic — a context expiring mid-stream
// yields an honest partial (or empty-partial) result, never a Canceled
// abort, because partial top-k output carries its own truncation bound.
func TestTopKContextStaysGraceful(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c),b(d)),a(b(c)),a(e))")
	sk := sketch.FromStable(stable.Build(doc))
	q := query.MustParse("//a{//b?,//c?}")

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	res := ApproxContext(expired, sk, q, Options{Limit: 3})
	if res.Canceled {
		t.Fatal("top-k path reported Canceled; it must degrade to a partial result instead")
	}
	if res.TopK == nil {
		t.Fatal("top-k result lost its TopK block under an expired context")
	}
}
