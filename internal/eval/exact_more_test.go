package eval

import (
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func stableOfDoc(tr *xmltree.Tree) *stable.Synopsis { return stable.Build(tr) }

func sketchOf(st *stable.Synopsis) *sketch.Sketch { return sketch.FromStable(st) }

func TestExactEmptyDocument(t *testing.T) {
	tr := xmltree.NewTree()
	r := Exact(NewIndex(tr), query.MustParse("//a"))
	if !r.Empty || r.Tuples != 0 {
		t.Fatalf("empty doc: Empty=%v Tuples=%g", r.Empty, r.Tuples)
	}
	nt, err := r.NestingTree(0)
	if err != nil || nt.Size() != 0 {
		t.Fatalf("NestingTree of empty result: %v %v", nt.Size(), err)
	}
	if r.ESDGraph() != nil {
		t.Fatal("ESDGraph of empty result not nil")
	}
	if got := r.BindingTuples(0); len(got) != 0 {
		t.Fatalf("BindingTuples of empty result: %d", len(got))
	}
}

func TestExactMixedAxes(t *testing.T) {
	doc := "r(a(x(b),b),a(b))"
	// /a//b: b at any depth under an a child of root.
	if r := exactOf(doc, "/a//b"); r.Tuples != 3 {
		t.Fatalf("/a//b tuples = %g, want 3", r.Tuples)
	}
	// /a/b: direct children only.
	if r := exactOf(doc, "/a/b"); r.Tuples != 2 {
		t.Fatalf("/a/b tuples = %g, want 2", r.Tuples)
	}
	// //x/b: b directly under any x.
	if r := exactOf(doc, "//x/b"); r.Tuples != 1 {
		t.Fatalf("//x/b tuples = %g, want 1", r.Tuples)
	}
}

func TestExactMultiStepPredicate(t *testing.T) {
	doc := "r(a(p(k(z))),a(p(k)),a(p))"
	// Predicate with a two-step path: a's whose p has a k with a z.
	if r := exactOf(doc, "//a[/p/k/z]"); r.Tuples != 1 {
		t.Fatalf("tuples = %g, want 1", r.Tuples)
	}
	if r := exactOf(doc, "//a[/p/k]"); r.Tuples != 2 {
		t.Fatalf("tuples = %g, want 2", r.Tuples)
	}
}

func TestExactDeepQueryTree(t *testing.T) {
	doc := "r(s(a(b(c(d)))))"
	r := exactOf(doc, "//a{/b{/c{/d}}}")
	if r.Tuples != 1 {
		t.Fatalf("tuples = %g, want 1", r.Tuples)
	}
	nt, err := r.NestingTree(0)
	if err != nil {
		t.Fatal(err)
	}
	// r, a, b, c, d.
	if nt.Size() != 5 {
		t.Fatalf("nesting tree size %d, want 5: %s", nt.Size(), nt.Compact())
	}
}

func TestExactSiblingVariableIndependence(t *testing.T) {
	// q2 and q3 bind under the same q1 elements independently.
	doc := "r(a(b,b,c),a(b,c,c))"
	r := exactOf(doc, "//a{/b,/c}")
	// a1: 2 b x 1 c = 2; a2: 1 b x 2 c = 2; total 4.
	if r.Tuples != 4 {
		t.Fatalf("tuples = %g, want 4", r.Tuples)
	}
}

func TestIndexEmptyDoc(t *testing.T) {
	ix := NewIndex(xmltree.NewTree())
	if ix.Doc.Size() != 0 {
		t.Fatal("unexpected size")
	}
}

func TestApproxOnEmptySketchlikeDoc(t *testing.T) {
	tr := xmltree.MustCompact("r")
	st := stableOfDoc(tr)
	r := Approx(sketchOf(st), query.MustParse("//a"), Options{})
	if !r.Empty {
		t.Fatal("query over childless root should be empty")
	}
}
