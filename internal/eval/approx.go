package eval

import (
	"context"
	"sort"
	"sync"

	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
)

// Options configures approximate evaluation.
type Options struct {
	// MaxEmbeddings caps the number of synopsis-path embeddings enumerated
	// per path expression; beyond it the result is truncated (recorded in
	// Result.Truncated). Default 10000.
	MaxEmbeddings int
	// Limit selects streaming top-k result emission (see topk.go). 0 keeps
	// the batch evaluation path. A positive value expands at most Limit
	// result nodes best-first (highest estimated answer-mass contribution
	// first) and reports the truncation in Result.TopK, including an upper
	// bound on the answer mass left unexpanded. A negative value streams
	// without a node budget: the expansion runs to exhaustion (or to the
	// context deadline) and the final Result is bit-identical to the batch
	// path, with Result.TopK attached.
	Limit int
	// DisablePrune skips the pruning pass that removes result nodes whose
	// required child variables found no bindings. Pruning is what makes
	// EvalQuery exact on count-stable synopses; it is on by default.
	DisablePrune bool
	// PaperMode reverts evaluation to the paper's Figures 7 and 8
	// verbatim, switching off two refinements that are otherwise on:
	//
	//   - required-edge conditioning (see conditionOnRequired);
	//   - the two-moment existence estimator for branching predicates
	//     (see branchSel), falling back to inclusion-exclusion over raw
	//     average counts (Figure 8, line 11).
	//
	// Both refinements are the identity on count-stable synopses; the
	// worked example of the paper's Example 4.1 is reproduced exactly
	// with PaperMode set.
	PaperMode bool
	// Reference selects the pre-fast-path embedding enumeration (label-
	// reachability pruning only, no plan compilation, per-embedding
	// count walks). It exists for differential testing: on queries that do
	// not hit the MaxEmbeddings truncation guards, the fast path is
	// bit-identical to the reference.
	Reference bool
	// Metrics receives the evaluation's observability metrics (the
	// eval.approx.* namespace). Nil selects the process-wide obs.Default
	// registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxEmbeddings <= 0 {
		o.MaxEmbeddings = 10000
	}
	return o
}

// Approx runs the EvalQuery algorithm (Figure 7): it processes the twig
// query q over the TreeSketch and produces a Result synopsis summarizing
// the approximate nesting tree. On a count-stable synopsis the result is
// exact (Section 4.3).
func Approx(sk *sketch.Sketch, q *query.Query, opts Options) *Result {
	return ApproxContext(context.Background(), sk, q, opts)
}

// ApproxContext is Approx with request-scoped telemetry: when ctx carries an
// obs.Trace (obs.ContextWithTrace), the evaluation records its plan, memo
// (embedding enumeration), and emit (prune/condition/count) phases as spans
// on that trace, and flushes its per-query counters onto it. An untraced
// context costs one context lookup; the phase spans are inert and read no
// clocks, leaving the hot enumeration loops untouched.
func ApproxContext(ctx context.Context, sk *sketch.Sketch, q *query.Query, opts Options) *Result {
	opts = opts.withDefaults()
	if opts.Limit != 0 {
		return topKWith(ctx, sk, q, opts, !opts.PaperMode, !opts.PaperMode)
	}
	return approxWith(ctx, sk, q, opts, !opts.PaperMode, !opts.PaperMode)
}

// approxWith exposes the two refinements independently for tests.
//
// The batch path is all-or-nothing: a half-built memo phase is not a usable
// synopsis, so the enumeration polls ctx under the tickCtx work budget and
// aborts via the same ctxCanceled panic sentinel the exact evaluator uses,
// translated here into a Canceled result. A Background context costs one
// Err() read per ctxCheckEvery work units and can never fire, so batch
// callers and benchmarks see identical floats (polls compute nothing).
func approxWith(ctx context.Context, sk *sketch.Sketch, q *query.Query, opts Options, conditioning, twoMoment bool) (res *Result) {
	a := newApproxer(ctx, sk, q, opts, conditioning, twoMoment)
	a.ctx = ctx
	span := a.reg.StartSpan("eval.approx.query")
	a.reg.Counter("eval.approx.queries").Inc()
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(ctxCanceled); !ok {
				panic(p)
			}
			res = &Result{Canceled: true}
			a.reg.Counter("eval.approx.canceled").Inc()
		}
		// Keep the full latency distribution alongside the phase timer so
		// snapshots can report p50/p95/p99 (see Histogram.Quantile); canceled
		// runs record the time they burned before aborting.
		a.reg.Histogram("eval.approx.latency_seconds").Observe(span.End().Seconds())
		a.flush(res)
	}()
	return a.run()
}

// tickCtx charges n units of enumeration work (synopsis edges walked, memo
// slots filled, terms folded) against the poll budget and reads ctx.Err()
// once it is spent; a canceled context aborts the evaluation by panicking
// with the shared ctxCanceled sentinel, recovered in approxWith. Inert (one
// nil check) when the evaluation has no cancelable context. The very first
// charge polls immediately so an already-expired deadline aborts before any
// synopsis walk.
func (a *approxer) tickCtx(n int) {
	if a.ctx == nil {
		return
	}
	first := a.ctxTick == 0
	a.ctxTick += uint(n)
	if !first && a.ctxTick < ctxCheckEvery {
		return
	}
	a.ctxTick = 1
	if a.ctx.Err() != nil {
		panic(ctxCanceled{})
	}
}

// checkCtx charges the minimal one-unit tick; enumeration entry points call
// it so even scan-free query shapes keep polling.
func (a *approxer) checkCtx() {
	a.tickCtx(1)
}

// newApproxer builds the shared evaluation state for both the batch path
// (approxWith) and the streaming top-k path (topKWith), recording the plan
// phase as a span on the request trace.
func newApproxer(ctx context.Context, sk *sketch.Sketch, q *query.Query, opts Options, conditioning, twoMoment bool) *approxer {
	reg := obs.Or(opts.Metrics)
	tr := obs.TraceFrom(ctx)
	ps := tr.StartSpan("eval.plan")
	a := &approxer{
		tr:           tr,
		sk:           sk,
		q:            q,
		qnodes:       q.Vars(),
		qidx:         make(map[*query.Node]int),
		opts:         opts.withDefaults(),
		reference:    opts.Reference,
		conditioning: conditioning && !opts.DisablePrune,
		twoMoment:    twoMoment,
		selMemo:      make(map[selKey]float64),
		resIndex:     make(map[resKey]int),
		reg:          reg,
		mEmbeddings:  reg.Counter("eval.approx.embeddings"),
		mEmbedWork:   reg.Counter("eval.approx.embed_steps"),
		mSelHits:     reg.Counter("eval.approx.selmemo.hits"),
		mSelMisses:   reg.Counter("eval.approx.selmemo.misses"),
		hFanout:      reg.Histogram("eval.approx.fanout"),
	}
	for i, qn := range a.qnodes {
		a.qidx[qn] = i
	}
	if !a.reference {
		var cached bool
		a.plan, cached = planFor(q)
		if cached {
			reg.Counter("eval.approx.plan.hits").Inc()
		} else {
			reg.Counter("eval.approx.plan.misses").Inc()
		}
	}
	ps.End()
	return a
}

// flush drains the locally accumulated counters into the registry and the
// request trace once the result is final.
func (a *approxer) flush(res *Result) {
	reg, tr := a.reg, a.tr
	if a.prunes > 0 {
		reg.Counter("eval.approx.embed_prunes").Add(a.prunes)
	}
	if a.canHits > 0 {
		reg.Counter("eval.approx.embed_memo_hits").Add(a.canHits)
	}
	if tr != nil {
		tr.AddCounter("approx_embed_prunes", a.prunes)
		tr.AddCounter("approx_embed_memo_hits", a.canHits)
		tr.AddCounter("approx_result_nodes", int64(len(res.Nodes)))
		if res.Truncated {
			tr.AddCounter("approx_truncated", 1)
		}
	}
	if res.Empty {
		reg.Counter("eval.approx.empty").Inc()
	}
	if res.Truncated {
		reg.Counter("eval.approx.truncated").Inc()
	}
	reg.Histogram("eval.approx.result_nodes").Observe(float64(len(res.Nodes)))
	// Per-query-node fanout: how many synopsis result classes each query
	// variable bound. The spread of this distribution is what drives
	// embedding-enumeration cost.
	for _, ids := range a.bind {
		a.hFanout.Observe(float64(len(ids)))
	}
}

type approxer struct {
	tr *obs.Trace // request trace; nil (inert) for untraced callers

	// ctx is the evaluation's cancellation signal, armed only on the batch
	// path (approxWith). ctxTick accumulates enumeration work (synopsis
	// edges walked, memo slots filled, terms folded) and rate-limits the
	// Err reads to one per ctxCheckEvery units, the same discipline as the
	// exact evaluator. The top-k path deliberately leaves ctx nil (every
	// poll then a single predictable branch): it polls ctx.Err() between
	// expansions and answers with an honest partial result instead of
	// aborting, and its per-expansion work is already pool-bounded.
	ctx     context.Context
	ctxTick uint

	sk     *sketch.Sketch
	q      *query.Query
	qnodes []*query.Node
	qidx   map[*query.Node]int
	opts   Options

	reference    bool
	conditioning bool
	twoMoment    bool

	plan *qplan // nil in reference mode

	res        *Result
	resIndex   map[resKey]int // (synopsis node, query var index) -> result node
	bind       [][]int        // query var index -> result node IDs
	selMemo    map[selKey]float64
	reachCache map[string][]bool // reference-mode label reachability
	labels     map[string]bool   // fast-path synopsis label universe
	canTabs    map[*query.Path][]int8
	truncated  bool

	// Enumeration pool for the finite-budget streaming path: when poolOn,
	// every enumeration draws its embedding budget and work allowance from
	// this shared pool instead of taking a fresh per-call MaxEmbeddings
	// allowance, so a node budget implies a bound on total enumeration work.
	// A call that completes without draining the pool produces exactly the
	// per-call result (enumeration is deterministic and budgets only gate
	// continuation), which is what keeps undrained streaming runs
	// bit-identical to the batch path.
	poolOn     bool
	poolBudget int
	poolWork   int

	// pruneExempt marks result nodes (by pre-prune ID) the pruning pass must
	// not drop for missing required children: the top-k path sets it for
	// unexpanded frontier nodes, whose required subtrees were never searched.
	// Nil on the batch path.
	pruneExempt []bool

	// Locally accumulated fast-path counters, flushed once per query.
	prunes  int64
	canHits int64

	// Reusable dedup state for enumFast (epoch-reset per enumeration): the
	// incremental path trie and the set of already-emitted path IDs.
	trie pathTrie

	// Metric handles, resolved once per query so hot paths pay only an
	// atomic add.
	reg         *obs.Registry
	mEmbeddings *obs.Counter
	mEmbedWork  *obs.Counter
	mSelHits    *obs.Counter
	mSelMisses  *obs.Counter
	hFanout     *obs.Histogram
}

type resKey struct {
	src int
	q   int
}

type selKey struct {
	src  int
	pred *query.Path
}

// embedding is one mapping of a path expression into the synopsis: the
// sequence of synopsis nodes traversed (one per edge, source excluded).
// The same node path can admit several assignments of location steps to
// positions (with recursive labels, //parlist//listitem embeds into a
// nested parlist chain in more than one way); stepAts records all of them.
// Counting each node path once — rather than once per assignment — matches
// XPath's set semantics: the elements along a fixed class path are matched
// if at least one step assignment exists, and elements on distinct class
// paths are distinct.
//
// The fast path additionally stores the product accumulated while walking
// the path (k: average descendant counts; exist: per-hop existence
// probabilities), multiplied hop by hop in path order — the same
// association the reference per-embedding walks use, so values are
// bit-identical.
type embedding struct {
	nodes   []int
	stepAts [][]int
	k       float64
	exist   float64
}

func (a *approxer) run() *Result {
	optional := make([]bool, len(a.qnodes))
	for _, qn := range a.qnodes {
		for _, e := range qn.Edges {
			if e.Optional {
				optional[a.qidx[e.Child]] = true
			}
		}
	}
	a.res = &Result{Root: 0, VarOptional: optional}
	a.bind = make([][]int, len(a.qnodes))
	rootNode := a.sk.Nodes[a.sk.Root]
	a.addResultNode(a.sk.Root, 0, rootNode.Label)

	// Pre-order over query variables: parents first, so bind[q] is
	// complete when q's edges are processed. This enumeration (embedding
	// search plus selectivity memoization) is the trace's "memo" phase.
	ms := a.tr.StartSpan("eval.memo")
	for qi, qn := range a.qnodes {
		for _, uQ := range a.bind[qi] {
			for _, edge := range qn.Edges {
				a.processEdge(uQ, edge)
			}
		}
	}
	ms.End()

	// Everything from here shapes the answer synopsis: the trace's "emit"
	// phase.
	es := a.tr.StartSpan("eval.emit")
	// Figure 7 line 15: a required variable with no bindings anywhere
	// empties the whole answer.
	for _, qn := range a.qnodes {
		for _, edge := range qn.Edges {
			if !edge.Optional && len(a.bind[a.qidx[edge.Child]]) == 0 {
				es.End()
				return &Result{Empty: true, Truncated: a.truncated}
			}
		}
	}

	if !a.opts.DisablePrune {
		if !a.prune() {
			es.End()
			return &Result{Empty: true, Truncated: a.truncated}
		}
	}
	if a.conditioning {
		a.conditionOnRequired()
	}
	a.res.Truncated = a.truncated
	a.computeCounts()
	es.End()
	return a.res
}

// conditionOnRequired refines the result counts for required (solid) child
// edges, which are existential filters on their parent bindings: an
// element of uQ belongs to the answer only if it has at least one
// descendant for every required child variable. The surviving fraction of
// a group g is estimated as
//
//	s_g = min(1, sum over result nodes v of group g of k_v),
//
// i.e. the result classes of one variable are treated as mutually
// exclusive alternatives rather than independent events: a merged
// cluster's single child per element is typically *spread* across many
// small-k result classes (one per surviving stable shape), and
// inclusion-exclusion would wrongly conclude that many elements have no
// child at all. Incoming edge counts of uQ scale by f = prod s_g, and the
// group's outgoing counts rescale to k/s_g (the conditional average among
// survivors), which preserves the selectivity estimate and is the
// identity on count-stable synopses (there s_g is always 0 or 1).
func (a *approxer) conditionOnRequired() {
	n := len(a.res.Nodes)
	f := make([]float64, n)
	// sOf[node][childVar] = survival fraction of that required group.
	sOf := make([]map[int]float64, n)
	required := make([]map[int]bool, len(a.qnodes))
	for qi, qn := range a.qnodes {
		required[qi] = make(map[int]bool)
		for _, e := range qn.Edges {
			if !e.Optional {
				required[qi][a.qidx[e.Child]] = true
			}
		}
	}
	for i, rn := range a.res.Nodes {
		f[i] = 1
		if len(required[rn.VarID]) == 0 {
			continue
		}
		sums := make(map[int]float64) // child var -> sum of k
		for _, e := range rn.Edges {
			cv := a.res.Nodes[e.Child].VarID
			if !required[rn.VarID][cv] {
				continue
			}
			sums[cv] += e.K
		}
		// Drain in sorted child-var order: the survival factors multiply
		// into f[i], and float products must not depend on map order.
		cvs := make([]int, 0, len(sums))
		for cv := range sums {
			cvs = append(cvs, cv)
		}
		sort.Ints(cvs)
		for _, cv := range cvs {
			sum := sums[cv]
			if sum >= 1 {
				continue
			}
			s := sum
			if s <= 0 {
				s = 1e-9
			}
			if sOf[i] == nil {
				sOf[i] = make(map[int]float64)
			}
			sOf[i][cv] = s
			f[i] *= s
		}
	}
	// Apply: outgoing required-group counts become conditional averages;
	// incoming counts scale by the target's survival factor. The root has
	// no incoming edge, so it is left unconditioned (its count stays 1).
	for i, rn := range a.res.Nodes {
		for ei := range rn.Edges {
			e := &rn.Edges[ei]
			if s, ok := sOf[i][a.res.Nodes[e.Child].VarID]; ok && i != a.res.Root {
				e.K /= s
			}
			if e.Child != a.res.Root {
				e.K *= f[e.Child]
			}
		}
	}
}

func (a *approxer) addResultNode(src, qi int, label string) int {
	k := resKey{src, qi}
	if id, ok := a.resIndex[k]; ok {
		return id
	}
	id := len(a.res.Nodes)
	a.res.Nodes = append(a.res.Nodes, &RNode{
		ID:    id,
		Var:   a.qnodes[qi].Var,
		VarID: qi,
		Label: label,
		Src:   src,
	})
	a.resIndex[k] = id
	a.bind[qi] = append(a.bind[qi], id)
	return id
}

// processEdge computes the bindings B(qc, uQ) (Figure 7 lines 4-13) for one
// result node and one query edge.
func (a *approxer) processEdge(uQ int, edge *query.Edge) {
	a.checkCtx()
	rn := a.res.Nodes[uQ]
	a.applyEdgeTerms(rn, edge, a.edgeTerms(rn.Src, edge))
}

// applyEdgeTerms folds one edge's per-terminal sums into the result graph:
// every terminal becomes (or joins) a result node of the child variable, and
// the descendant counts accumulate on the parent's outgoing edges.
func (a *approxer) applyEdgeTerms(rn *RNode, edge *query.Edge, terms []termK) {
	ci := a.qidx[edge.Child]
	for _, tk := range terms {
		a.tickCtx(1)
		vQ := a.addResultNode(tk.term, ci, a.sk.Nodes[tk.term].Label)
		rn.addK(vQ, tk.k)
	}
}

// termK is one terminal synopsis node of an edge enumeration with its
// accumulated descendant count.
type termK struct {
	term int
	k    float64
}

// edgeTerms enumerates edge.Path from synopsis node src and aggregates the
// per-embedding counts per terminal synopsis node, in sorted terminal order
// so result-node IDs (and everything downstream: expansion order, float
// accumulation) are deterministic. The output is a pure function of
// (src, edge) for a fixed synopsis and options — per-call budgets and dedup
// state reset per enumeration, and the selectivity memo caches values only —
// which is what lets the top-k path replay recorded edge outputs in batch
// order and reproduce the batch result bit-identically.
func (a *approxer) edgeTerms(src int, edge *query.Edge) []termK {
	steps := edge.Path.MainSteps()
	perTerm := make(map[int]float64)
	if a.fastStream(edge.Path) {
		a.enumFast(src, edge.Path, false, nil, func(term int, prod float64) {
			if prod > 0 {
				perTerm[term] += prod
			}
		})
	} else {
		for _, e := range a.embeddings(src, edge.Path, false) {
			a.tickCtx(1)
			k := a.evalEmbed(steps, src, e)
			if k > 0 {
				perTerm[e.nodes[len(e.nodes)-1]] += k
			}
		}
	}
	if len(perTerm) == 0 {
		return nil
	}
	terms := make([]int, 0, len(perTerm))
	for v := range perTerm {
		terms = append(terms, v)
	}
	sort.Ints(terms)
	out := make([]termK, 0, len(terms))
	for _, v := range terms {
		out = append(out, termK{term: v, k: perTerm[v]})
	}
	return out
}

// fastStream reports whether path p can be enumerated in streaming mode:
// plan-driven evaluation with no step predicates, where only (terminal,
// product) pairs are needed and embeddings never materialize.
func (a *approxer) fastStream(p *query.Path) bool {
	return !a.reference && !a.plan.paths[p].hasPreds
}

// embeddings enumerates the mappings of p's steps into the synopsis
// starting at node from, dispatching between the fast path and the
// reference enumeration. needExist selects which per-path product the fast
// path accumulates (descendant counts for EvalEmbed, per-hop existence
// probabilities for the two-moment estimator).
func (a *approxer) embeddings(from int, p *query.Path, needExist bool) []embedding {
	if a.reference {
		return a.embeddingsRef(from, p.Steps)
	}
	return a.embeddingsFast(from, p, needExist)
}

// embeddingsFast materializes the plan-driven enumeration. It is the slow
// shape of the fast path, needed only when a step carries predicates (the
// best step assignment is then chosen per node path); predicate-free paths
// go through enumFast's streaming mode and never build embedding values.
func (a *approxer) embeddingsFast(from int, p *query.Path, needExist bool) []embedding {
	var out []embedding
	a.enumFast(from, p, needExist, &out, nil)
	return out
}

// enumFast is the plan-driven enumeration: a DFS over the synopsis that
// (1) refuses to start when a step label is absent from the synopsis
// altogether, (2) prunes any branch whose can-complete memo proves the
// remaining steps cannot all be placed below it — so every surviving
// branch emits at least one embedding — and (3) accumulates the
// per-embedding count (or existence) product hop by hop during the walk,
// eliminating the per-embedding re-walks of the reference path. Emission
// order, and therefore all downstream floating-point accumulation, is
// identical to the reference whenever neither enumeration truncates.
//
// Exactly one of out/stream is set. With out, embeddings are materialized
// (nodes, step assignments, product). With stream, each deduplicated
// emission calls stream(terminal node, product) and nothing is retained —
// no node-path copies, no per-embedding allocation; duplicate node paths
// carry no information a predicate-free caller can use (their extra step
// assignments only matter to bestAssignmentSel), so they are dropped after
// the budget accounting.
func (a *approxer) enumFast(from int, p *query.Path, needExist bool, out *[]embedding, stream func(term int, prod float64)) {
	pp := a.plan.paths[p]
	labels := a.labelSet()
	for _, l := range pp.labels {
		if !labels[l] {
			a.prunes++
			return
		}
	}
	steps := p.Steps
	tab := a.canTab(p)
	// Duplicate node paths (possible only with two or more Descendant
	// steps) are detected with an incremental path trie: every pushed
	// (prefix, node) pair gets a dense integer ID, so the whole current
	// stack is identified by one int — no per-emission key strings. The
	// trie maps live on the approxer and are clear()ed per enumeration to
	// keep their buckets warm across a query's path expressions.
	dedup := pp.canDup
	var nextID int32 = 1
	var pathID int32
	var idStack []int32
	if dedup {
		a.trie.reset()
	}
	budget := a.opts.MaxEmbeddings
	work := 64 * a.opts.MaxEmbeddings
	if a.poolOn {
		budget, work = a.poolBudget, a.poolWork
	}
	startWork := work
	emitted := 0
	var nodes []int
	var stepAt []int

	push := func(node int) {
		if dedup {
			key := uint64(uint32(pathID))<<32 | uint64(uint32(node))
			idStack = append(idStack, pathID)
			pathID = a.trie.id(key, &nextID)
		}
		nodes = append(nodes, node)
	}
	pop := func() {
		if dedup {
			pathID = idStack[len(idStack)-1]
			idStack = idStack[:len(idStack)-1]
		}
		nodes = nodes[:len(nodes)-1]
	}
	emit := func(prod float64) {
		if dedup {
			if prev, dup := a.trie.markEmitted(pathID, emitted); dup {
				if out != nil {
					(*out)[prev].stepAts = append((*out)[prev].stepAts, append([]int(nil), stepAt...))
				}
				return
			}
		}
		emitted++
		if out == nil {
			stream(nodes[len(nodes)-1], prod)
			return
		}
		e := embedding{
			nodes:   append([]int(nil), nodes...),
			stepAts: [][]int{append([]int(nil), stepAt...)},
		}
		if needExist {
			e.exist = prod
		} else {
			e.k = prod
		}
		*out = append(*out, e)
	}
	// extend advances the accumulated product across one synopsis edge, in
	// the same multiplication order as the reference per-embedding walks.
	extend := func(prod float64, e sketch.Edge, parent int) float64 {
		if needExist {
			return prod * edgeExistence(e, a.sk.Nodes[parent].Count)
		}
		return prod * e.Avg
	}
	var desc func(cur, si int, prod float64)
	var rec func(cur, si int, prod float64)
	rec = func(cur, si int, prod float64) {
		if budget <= 0 || work <= 0 {
			a.truncated = true
			return
		}
		if si == len(steps) {
			budget--
			emit(prod)
			return
		}
		step := &steps[si]
		if step.Axis == query.Child {
			for _, e := range a.sk.Nodes[cur].Edges {
				if a.sk.Nodes[e.Child].Label != step.Label {
					continue
				}
				if !a.canRec(tab, steps, e.Child, si+1) {
					a.prunes++
					continue
				}
				work--
				a.tickCtx(1)
				push(e.Child)
				stepAt = append(stepAt, len(nodes)-1)
				rec(e.Child, si+1, extend(prod, e, cur))
				pop()
				stepAt = stepAt[:len(stepAt)-1]
			}
			return
		}
		desc(cur, si, prod)
	}
	// desc explores downward paths for a Descendant step: a matching child
	// that can complete the remaining steps is a landing point, and the
	// search continues deeper wherever the memo proves more landings exist.
	desc = func(cur, si int, prod float64) {
		if budget <= 0 {
			a.truncated = true
			return
		}
		step := &steps[si]
		for _, e := range a.sk.Nodes[cur].Edges {
			if work <= 0 {
				a.truncated = true
				return
			}
			land := a.sk.Nodes[e.Child].Label == step.Label && a.canRec(tab, steps, e.Child, si+1)
			deeper := a.canDesc(tab, steps, e.Child, si)
			if !land && !deeper {
				a.prunes++
				continue
			}
			work--
			a.tickCtx(1)
			next := extend(prod, e, cur)
			push(e.Child)
			if land {
				stepAt = append(stepAt, len(nodes)-1)
				rec(e.Child, si+1, next)
				stepAt = stepAt[:len(stepAt)-1]
			}
			if deeper {
				desc(e.Child, si, next)
			}
			pop()
		}
	}
	rec(from, 0, 1)
	if a.poolOn {
		a.poolBudget, a.poolWork = budget, work
	}
	a.mEmbeddings.Add(int64(emitted))
	a.mEmbedWork.Add(int64(startWork - work))
}

// labelSetCache holds the label universe per synopsis. Sketches are
// immutable once built and shared across concurrent evaluations, so the
// set is computed once per sketch process-wide (same lifetime reasoning as
// planCache: entries are tiny and keyed by objects the caller retains).
var labelSetCache sync.Map // *sketch.Sketch -> map[string]bool

// labelSet returns the synopsis's label universe, cached per sketch.
func (a *approxer) labelSet() map[string]bool {
	if a.labels != nil {
		return a.labels
	}
	if v, ok := labelSetCache.Load(a.sk); ok {
		a.labels = v.(map[string]bool)
		return a.labels
	}
	set := make(map[string]bool)
	for _, u := range a.sk.Nodes {
		if u != nil {
			set[u.Label] = true
		}
	}
	if v, loaded := labelSetCache.LoadOrStore(a.sk, set); loaded {
		set = v.(map[string]bool)
	}
	a.labels = set
	return set
}

// embeddingsRef is the pre-plan reference enumeration: a Child step follows
// one matching edge; a Descendant step follows any downward path ending at
// a matching label. Mappings sharing a node path are merged into one
// embedding with multiple step assignments.
//
// Two guards keep enumeration cheap: descendant exploration skips subgraphs
// from which the target label is unreachable (label-reachability prune),
// and total DFS work is bounded by a step budget proportional to
// MaxEmbeddings so that fruitless dense regions cannot stall evaluation.
func (a *approxer) embeddingsRef(from int, steps []query.Step) []embedding {
	var out []embedding
	byPath := make(map[string]int) // node-path key -> index in out
	budget := a.opts.MaxEmbeddings
	work := 64 * a.opts.MaxEmbeddings
	if a.poolOn {
		budget, work = a.poolBudget, a.poolWork
	}
	startWork := work
	var nodes []int
	var stepAt []int

	var rec func(cur, si int)
	emit := func() {
		key := pathKey(nodes)
		if i, ok := byPath[key]; ok {
			out[i].stepAts = append(out[i].stepAts, append([]int(nil), stepAt...))
			return
		}
		byPath[key] = len(out)
		out = append(out, embedding{
			nodes:   append([]int(nil), nodes...),
			stepAts: [][]int{append([]int(nil), stepAt...)},
		})
	}
	var desc func(cur, si int)
	rec = func(cur, si int) {
		if budget <= 0 || work <= 0 {
			a.truncated = true
			return
		}
		if si == len(steps) {
			budget--
			emit()
			return
		}
		step := &steps[si]
		if step.Axis == query.Child {
			for _, e := range a.sk.Nodes[cur].Edges {
				if a.sk.Nodes[e.Child].Label != step.Label {
					continue
				}
				work--
				a.tickCtx(1)
				nodes = append(nodes, e.Child)
				stepAt = append(stepAt, len(nodes)-1)
				rec(e.Child, si+1)
				nodes = nodes[:len(nodes)-1]
				stepAt = stepAt[:len(stepAt)-1]
			}
			return
		}
		desc(cur, si)
	}
	// desc explores all downward paths for a Descendant step: every node
	// whose label matches is a landing point (and the search continues
	// deeper regardless, since descendants below a match can match too).
	desc = func(cur, si int) {
		if budget <= 0 {
			a.truncated = true
			return
		}
		step := &steps[si]
		for _, e := range a.sk.Nodes[cur].Edges {
			if work <= 0 {
				a.truncated = true
				return
			}
			if !a.reaches(e.Child, step.Label) {
				continue
			}
			work--
			a.tickCtx(1)
			nodes = append(nodes, e.Child)
			if a.sk.Nodes[e.Child].Label == step.Label {
				stepAt = append(stepAt, len(nodes)-1)
				rec(e.Child, si+1)
				stepAt = stepAt[:len(stepAt)-1]
			}
			desc(e.Child, si)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(from, 0)
	if a.poolOn {
		a.poolBudget, a.poolWork = budget, work
	}
	a.mEmbeddings.Add(int64(len(out)))
	a.mEmbedWork.Add(int64(startWork - work))
	return out
}

// reaches reports whether a node with the given label is reachable from id
// (including id itself) following synopsis edges. Computed once per label
// over the whole graph and cached; reference-mode only (the fast path's
// can-complete memo subsumes it).
func (a *approxer) reaches(id int, label string) bool {
	reach, ok := a.reachCache[label]
	if !ok {
		reach = make([]bool, len(a.sk.Nodes))
		// Seed with label occurrences, then propagate along reverse edges
		// until a fixed point; iterate passes for simplicity (graphs are
		// small and the pass count is bounded by the longest chain).
		for _, u := range a.sk.Nodes {
			if u != nil && u.Label == label {
				reach[u.ID] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, u := range a.sk.Nodes {
				if u == nil || reach[u.ID] {
					continue
				}
				for _, e := range u.Edges {
					if reach[e.Child] {
						reach[u.ID] = true
						changed = true
						break
					}
				}
			}
		}
		if a.reachCache == nil {
			a.reachCache = make(map[string][]bool)
		}
		a.reachCache[label] = reach
	}
	return reach[id]
}

// evalEmbed implements EvalEmbed (Figure 8): the descendant count along the
// embedding's main path is the product of the traversed average edge
// counts, scaled by the selectivity of each step's branching predicates.
// With several step assignments on the same node path, the best (highest
// selectivity) assignment is used — an element matches if any assignment's
// predicates hold. The fast path accumulated the count product during
// enumeration; the reference re-walks the path.
func (a *approxer) evalEmbed(steps []query.Step, from int, e embedding) float64 {
	if !a.reference {
		return e.k * a.bestAssignmentSel(steps, e)
	}
	nt := 1.0
	prev := from
	for _, nid := range e.nodes {
		edge, ok := a.sk.Nodes[prev].EdgeTo(nid)
		if !ok {
			return 0
		}
		nt *= edge.Avg
		prev = nid
	}
	return nt * a.bestAssignmentSel(steps, e)
}

// bestAssignmentSel returns the maximum product of branch-predicate
// selectivities over the embedding's step assignments. 1 when no step has
// predicates.
func (a *approxer) bestAssignmentSel(steps []query.Step, e embedding) float64 {
	havePreds := false
	for si := range steps {
		if len(steps[si].Preds) > 0 {
			havePreds = true
			break
		}
	}
	if !havePreds {
		return 1
	}
	best := 0.0
	for _, stepAt := range e.stepAts {
		a.checkCtx()
		sel := 1.0
		for si := range steps {
			at := e.nodes[stepAt[si]]
			for _, pred := range steps[si].Preds {
				sel *= a.branchSel(at, pred)
				if sel == 0 {
					break
				}
			}
			if sel == 0 {
				break
			}
		}
		if sel > best {
			best = sel
		}
	}
	return best
}

// pathKey renders a node-ID sequence as a map key.
func pathKey(nodes []int) string {
	buf := make([]byte, 0, len(nodes)*3)
	for _, n := range nodes {
		for n >= 0x80 {
			buf = append(buf, byte(n)|0x80)
			n >>= 7
		}
		buf = append(buf, byte(n))
	}
	return string(buf)
}

// branchSel estimates the fraction of elements of synopsis node from that
// have at least one descendant along pred (Figure 8, lines 2-13).
//
// In PaperMode, counts per terminal node are summed across embeddings; a
// count >= 1 certifies the predicate for the whole extent, otherwise
// counts are combined as independent probabilities by inclusion-exclusion
// (Figure 8, line 11).
//
// In the default refined mode the existence probability per embedding is
// the product over hops of the per-edge two-moment estimate
//
//	P(c >= 1) ~ Sum^2 / (Count * SumSq),
//
// which the Cauchy-Schwarz inequality bounds by 1 and which is exact
// whenever the per-element child count takes at most two values {0, m} —
// the common shape after merging (a fraction of the cluster has the
// sub-structure). Embeddings combine by min(1, sum): distinct synopsis
// paths carve disjoint descendant sets out of each element's subtree, so
// their existence events are treated as mutually exclusive rather than
// independent. Both rules coincide (and are exact) on count-stable
// synopses.
func (a *approxer) branchSel(from int, pred *query.Path) float64 {
	k := selKey{from, pred}
	if s, ok := a.selMemo[k]; ok {
		a.mSelHits.Inc()
		return s
	}
	a.mSelMisses.Inc()
	a.checkCtx()
	var s float64
	if a.twoMoment {
		var sum float64
		if a.fastStream(pred) {
			a.enumFast(from, pred, true, nil, func(term int, prod float64) {
				sum += prod
			})
		} else {
			for _, e := range a.embeddings(from, pred, true) {
				sum += a.embedExistence(pred.Steps, from, e)
			}
		}
		if sum > 1 {
			sum = 1
		}
		s = sum
	} else {
		perTerm := make(map[int]float64)
		if a.fastStream(pred) {
			a.enumFast(from, pred, false, nil, func(term int, prod float64) {
				perTerm[term] += prod
			})
		} else {
			for _, e := range a.embeddings(from, pred, false) {
				perTerm[e.nodes[len(e.nodes)-1]] += a.evalEmbed(pred.Steps, from, e)
			}
		}
		if len(perTerm) > 0 {
			// Sorted drain: the complement product is a float accumulation
			// and must not follow map iteration order.
			terms := make([]int, 0, len(perTerm))
			for term := range perTerm {
				terms = append(terms, term)
			}
			sort.Ints(terms)
			prod := 1.0
			certain := false
			for _, term := range terms {
				kl := perTerm[term]
				if kl >= 1 {
					certain = true
					break
				}
				prod *= 1 - kl
			}
			if certain {
				s = 1
			} else {
				s = 1 - prod
			}
		}
	}
	a.selMemo[k] = s
	return s
}

// embedExistence estimates the probability that an element of from has at
// least one descendant along the specific embedding: per-hop two-moment
// existence probabilities multiplied along the path, scaled by the best
// step assignment's nested-predicate selectivities. The fast path
// accumulated the per-hop product during enumeration.
func (a *approxer) embedExistence(steps []query.Step, from int, e embedding) float64 {
	if !a.reference {
		return e.exist * a.bestAssignmentSel(steps, e)
	}
	p := 1.0
	prev := from
	for _, nid := range e.nodes {
		edge, ok := a.sk.Nodes[prev].EdgeTo(nid)
		if !ok {
			return 0
		}
		p *= edgeExistence(edge, a.sk.Nodes[prev].Count)
		if p == 0 {
			return 0
		}
		prev = nid
	}
	return p * a.bestAssignmentSel(steps, e)
}

// edgeExistence estimates P(child count >= 1) for one synopsis edge: when
// the exact minimum per-element count certifies universal presence the
// probability is 1; otherwise the two-moment (Paley-Zygmund) estimate
// applies, which is exact for {0,m}-valued counts.
func edgeExistence(e sketch.Edge, count int) float64 {
	if e.MinK >= 1 {
		return 1
	}
	if e.SumSq <= 0 {
		return 0
	}
	p := e.Sum * e.Sum / (float64(count) * e.SumSq)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// prune drops result nodes for which some required child variable has no
// surviving bindings, processing variables bottom-up. Returns false when
// the root itself is pruned (empty answer).
func (a *approxer) prune() bool {
	keep := make([]bool, len(a.res.Nodes))
	for i := range keep {
		keep[i] = true
	}
	// Reverse pre-order: children before parents.
	for qi := len(a.qnodes) - 1; qi >= 0; qi-- {
		qn := a.qnodes[qi]
		required := make([]int, 0, len(qn.Edges))
		for _, e := range qn.Edges {
			if !e.Optional {
				required = append(required, a.qidx[e.Child])
			}
		}
		if len(required) == 0 {
			continue
		}
		for _, uQ := range a.bind[qi] {
			if !keep[uQ] {
				continue
			}
			if a.pruneExempt != nil && a.pruneExempt[uQ] {
				continue
			}
			rn := a.res.Nodes[uQ]
			for _, ci := range required {
				found := false
				for _, re := range rn.Edges {
					if a.res.Nodes[re.Child].VarID == ci && keep[re.Child] && re.K > 0 {
						found = true
						break
					}
				}
				if !found {
					keep[uQ] = false
					break
				}
			}
		}
	}
	if !keep[a.res.Root] {
		return false
	}
	dropped := 0
	for i := range keep {
		if !keep[i] {
			dropped++
		}
	}
	if dropped > 0 {
		a.reg.Counter("eval.approx.prune_dropped").Add(int64(dropped))
	}
	// Drop pruned nodes and edges to them, renumbering densely.
	remap := make([]int, len(a.res.Nodes))
	out := &Result{Truncated: a.res.Truncated, VarOptional: a.res.VarOptional}
	for i, rn := range a.res.Nodes {
		if keep[i] {
			remap[i] = len(out.Nodes)
			out.Nodes = append(out.Nodes, rn)
		} else {
			remap[i] = -1
		}
	}
	for _, rn := range out.Nodes {
		rn.ID = remap[rn.ID]
		kept := rn.Edges[:0]
		for _, e := range rn.Edges {
			if remap[e.Child] >= 0 {
				e.Child = remap[e.Child]
				kept = append(kept, e)
			}
		}
		rn.Edges = kept
	}
	out.Root = remap[a.res.Root]
	a.res = out
	return true
}

// computeCounts derives estimated extent sizes: Count(root) = 1 and
// Count(v) = sum over incoming edges of Count(u) * k(u,v). The result graph
// is a DAG ordered by query-variable depth, so a pass in variable pre-order
// suffices.
func (a *approxer) computeCounts() {
	order := make([]*RNode, len(a.res.Nodes))
	copy(order, a.res.Nodes)
	// Variable index increases from parent to child in the query tree;
	// result edges always go from lower to higher VarID.
	sortByVar(order)
	for _, rn := range order {
		if rn.ID == a.res.Root {
			rn.Count = 1
		}
	}
	for _, rn := range order {
		for _, e := range rn.Edges {
			a.res.Nodes[e.Child].Count += rn.Count * e.K
		}
	}
}

func sortByVar(nodes []*RNode) {
	// Insertion sort by VarID: result sets are small and almost ordered.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j-1].VarID > nodes[j].VarID; j-- {
			nodes[j-1], nodes[j] = nodes[j], nodes[j-1]
		}
	}
}
