package tsbuild

import (
	"testing"

	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// TestStalePopSkipsSupersededEntry forces the regression the generation
// numbers guard against: every registered operation is superseded (removed
// and reinstalled with a different score), leaving the original heap entries
// behind. step must discard those stale copies — which surface first, since
// their priorities are lower — instead of applying them, and still find a
// valid merge.
func TestStalePopSkipsSupersededEntry(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x),a(x,x,x),b(y),b(y,y))")
	st := stable.Build(tr)
	b := newBuilder(st, Options{BudgetBytes: 1}.withDefaults())
	if n := b.createPool(); n < 2 {
		t.Fatalf("createPool = %d ops, want >= 2", n)
	}
	keys := make([]opKey, 0, len(b.ops))
	for k := range b.ops {
		keys = append(keys, k)
	}
	for _, k := range keys {
		o := b.ops[k]
		errd, sized := o.errd, o.sized
		b.removeOp(k)
		b.installOp(k, errd+1, sized)
	}
	if b.stalePops != 0 {
		t.Fatalf("stalePops = %d before any step", b.stalePops)
	}
	if !b.step() {
		t.Fatal("step found no valid merge")
	}
	if b.stalePops == 0 {
		t.Fatal("step applied a merge without discarding any superseded heap entry")
	}
	if err := b.sk.Check(); err != nil {
		t.Fatalf("sketch inconsistent after merge: %v", err)
	}
}

// TestStalePopsAfterEndpointMerge is the end-to-end half of the staleness
// audit: merging a node rewrites the operations that referenced it, but the
// rewritten ops' old heap entries remain behind. Draining the build to the
// label-split graph must pop and discard them (never apply them), and report
// the discards through Stats and the metrics registry.
func TestStalePopsAfterEndpointMerge(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x),a(x,x,x),a(x,x,x,x))")
	st := stable.Build(tr)
	reg := obs.NewRegistry()
	sk, stats := Build(st, Options{BudgetBytes: 1, Metrics: reg})
	if stats.Merges < 2 {
		t.Fatalf("Merges = %d, want >= 2", stats.Merges)
	}
	if stats.StalePops == 0 {
		t.Fatal("StalePops = 0: rewritten ops' old heap entries were never discarded")
	}
	if got := reg.Counter("tsbuild.heap.stale_pops").Value(); got != int64(stats.StalePops) {
		t.Fatalf("counter tsbuild.heap.stale_pops = %d, Stats.StalePops = %d", got, stats.StalePops)
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDeterministicAcrossWorkers: equal inputs must produce
// bit-identical synopses no matter how many evaluation workers run, and
// repeated builds must reproduce themselves exactly.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		tr := randomDoc(seed, 6)
		st := stable.Build(tr)
		budget := st.SizeBytes() / 3
		var want uint64
		var wantStats Stats
		for _, workers := range []int{1, 1, 4, 8} {
			sk, stats := Build(st, Options{BudgetBytes: budget, Workers: workers, Metrics: obs.NewRegistry()})
			fp := sk.Fingerprint()
			if want == 0 {
				want, wantStats = fp, stats
				continue
			}
			if fp != want {
				t.Fatalf("seed %d: Workers=%d fingerprint %#x != Workers=1 fingerprint %#x",
					seed, workers, fp, want)
			}
			if stats.Merges != wantStats.Merges || stats.PoolBuilds != wantStats.PoolBuilds {
				t.Fatalf("seed %d: Workers=%d trajectory (merges=%d pools=%d) != Workers=1 (merges=%d pools=%d)",
					seed, workers, stats.Merges, stats.PoolBuilds, wantStats.Merges, wantStats.PoolBuilds)
			}
		}
	}
}

// TestMaxPairEvalsTruncationReported: a pool pass that hits the evaluation
// cap must say so through Stats.PoolTruncated and the tsbuild.pool.truncated
// counter rather than silently dropping candidates.
func TestMaxPairEvalsTruncationReported(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x),a(x,x,x))")
	st := stable.Build(tr)
	reg := obs.NewRegistry()
	_, stats := Build(st, Options{BudgetBytes: 1, MaxPairEvals: 1, Metrics: reg})
	if stats.PoolTruncated == 0 {
		t.Fatalf("PoolTruncated = 0 with MaxPairEvals=1 (stats: %+v)", stats)
	}
	if got := reg.Counter("tsbuild.pool.truncated").Value(); got != int64(stats.PoolTruncated) {
		t.Fatalf("counter tsbuild.pool.truncated = %d, Stats.PoolTruncated = %d", got, stats.PoolTruncated)
	}
}

// wideDoc builds a document with n same-label children whose child counts
// all differ, yielding n distinct count-stable classes and O(n^2) candidate
// pairs — enough pool pressure to cross the Lh refill threshold.
func wideDoc(n int) *xmltree.Tree {
	tr := xmltree.NewTree()
	tr.Root = tr.NewNode("r")
	for i := 1; i <= n; i++ {
		a := tr.NewNode("a")
		for j := 0; j < i; j++ {
			a.Children = append(a.Children, tr.NewNode("x"))
		}
		tr.Root.Children = append(tr.Root.Children, a)
	}
	return tr
}

// TestIncrementalRefillReplenishes: under Options.IncrementalRefill the Lh
// trigger restocks the pool in place instead of breaking out to a full
// CreatePool regenerate, the restocks are reported, and the result is still
// a valid synopsis that reproduces deterministically.
func TestIncrementalRefillReplenishes(t *testing.T) {
	st := stable.Build(wideDoc(24))
	opts := Options{
		BudgetBytes:       1,
		HeapUpper:         400,
		HeapLower:         50,
		IncrementalRefill: true,
		Metrics:           obs.NewRegistry(),
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	sk, stats := Build(st, opts)
	if stats.PoolReplenishes == 0 {
		t.Fatalf("PoolReplenishes = 0, want > 0 (stats: %+v)", stats)
	}
	if got := reg.Counter("tsbuild.pool.replenishes").Value(); got != int64(stats.PoolReplenishes) {
		t.Fatalf("counter tsbuild.pool.replenishes = %d, Stats.PoolReplenishes = %d", got, stats.PoolReplenishes)
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
	sk2, stats2 := Build(st, Options{
		BudgetBytes: 1, HeapUpper: 400, HeapLower: 50,
		IncrementalRefill: true, Workers: 4, Metrics: obs.NewRegistry(),
	})
	if sk.Fingerprint() != sk2.Fingerprint() {
		t.Fatalf("incremental refill not deterministic: %#x != %#x (merges %d vs %d)",
			sk.Fingerprint(), sk2.Fingerprint(), stats.Merges, stats2.Merges)
	}
}

// TestDefaultRefillRegenerates: without IncrementalRefill the Lh trigger
// falls back to the paper's full CreatePool regenerate, visible as
// PoolRebuilds = PoolBuilds - 1 and no replenishes.
func TestDefaultRefillRegenerates(t *testing.T) {
	st := stable.Build(wideDoc(24))
	_, stats := Build(st, Options{
		BudgetBytes: 1, HeapUpper: 400, HeapLower: 50, Metrics: obs.NewRegistry(),
	})
	if stats.PoolReplenishes != 0 {
		t.Fatalf("PoolReplenishes = %d without IncrementalRefill", stats.PoolReplenishes)
	}
	if stats.PoolBuilds < 2 {
		t.Fatalf("PoolBuilds = %d, want >= 2 (Lh regenerate never fired)", stats.PoolBuilds)
	}
	if stats.PoolRebuilds != stats.PoolBuilds-1 {
		t.Fatalf("PoolRebuilds = %d, want PoolBuilds-1 = %d", stats.PoolRebuilds, stats.PoolBuilds-1)
	}
}
