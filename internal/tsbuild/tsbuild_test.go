package tsbuild

import (
	"math"
	"testing"
	"testing/quick"

	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func buildDoc(src string, budget int) (*xmltree.Tree, *stable.Synopsis, *sketch.Sketch, Stats) {
	tr := xmltree.MustCompact(src)
	st := stable.Build(tr)
	sk, stats := Build(st, Options{BudgetBytes: budget})
	return tr, st, sk, stats
}

func TestBuildNoMergeWhenBudgetSuffices(t *testing.T) {
	tr, st, sk, stats := buildDoc("r(a(b,c),a(b,c))", 1<<20)
	if stats.Merges != 0 {
		t.Fatalf("Merges = %d, want 0", stats.Merges)
	}
	if sk.NumNodes() != st.NumNodes() {
		t.Fatalf("nodes %d, want %d", sk.NumNodes(), st.NumNodes())
	}
	if sk.SqErr() != 0 {
		t.Fatalf("SqErr = %g, want 0", sk.SqErr())
	}
	if sk.TotalElements() != tr.Size() {
		t.Fatalf("TotalElements = %d, want %d", sk.TotalElements(), tr.Size())
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
	if !stats.BudgetReached {
		t.Fatal("BudgetReached = false")
	}
}

func TestBuildPrefersLowErrorMerge(t *testing.T) {
	// Four leaf-parent classes: a variants with 1 vs 2 x-children (cheap to
	// merge: squared error 0.5), b variants with 1 vs 9 y-children
	// (expensive: squared error 32). With a budget allowing exactly one
	// merge, the a pair must fuse and the b pair must survive.
	src := "r(a(x),a(x,x),b(y),b(y*9))"
	_, st, sk, stats := buildDoc(src, stable.Build(xmltree.MustCompact(src)).SizeBytes()-28)
	if stats.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", stats.Merges)
	}
	var aClusters, bClusters int
	var aNode *sketch.Node
	for _, u := range sk.Nodes {
		switch u.Label {
		case "a":
			aClusters++
			aNode = u
		case "b":
			bClusters++
		}
	}
	if aClusters != 1 || bClusters != 2 {
		t.Fatalf("clusters a=%d b=%d, want 1/2", aClusters, bClusters)
	}
	if aNode.Count != 2 {
		t.Fatalf("merged a count = %d, want 2", aNode.Count)
	}
	// Average x-children across the merged extent: (1+2)/2.
	var xID int
	for _, u := range sk.Nodes {
		if u.Label == "x" {
			xID = u.ID
		}
	}
	e, ok := aNode.EdgeTo(xID)
	if !ok || math.Abs(e.Avg-1.5) > 1e-12 {
		t.Fatalf("a->x avg = %v (ok=%v), want 1.5", e.Avg, ok)
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sk.SqErr()-0.5) > 1e-9 {
		t.Fatalf("SqErr = %g, want 0.5", sk.SqErr())
	}
}

func TestBuildDownToLabelSplitGraph(t *testing.T) {
	// With a tiny budget, construction compresses until no same-label merge
	// remains: at most one cluster per (label, up to cycle constraints).
	tr := xmltree.MustCompact("bib(author*4(name,paper(title),paper(title,title)),author*2(name))")
	st := stable.Build(tr)
	sk, stats := Build(st, Options{BudgetBytes: 1})
	byLabel := map[string]int{}
	for _, u := range sk.Nodes {
		byLabel[u.Label]++
	}
	for l, n := range byLabel {
		if n != 1 {
			t.Errorf("label %s has %d clusters at label-split, want 1", l, n)
		}
	}
	if stats.BudgetReached {
		t.Log("budget unexpectedly reached; fine if label-split graph fits")
	}
	if sk.TotalElements() != tr.Size() {
		t.Fatalf("TotalElements = %d, want %d", sk.TotalElements(), tr.Size())
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
}

func TestBuildNeverMergesRoot(t *testing.T) {
	tr := xmltree.MustCompact("a(b(a(b,b),a(b,b,b)),b)")
	st := stable.Build(tr)
	sk, _ := Build(st, Options{BudgetBytes: 1})
	if sk.Nodes[sk.Root].Count != 1 {
		t.Fatalf("root cluster count = %d, want 1", sk.Nodes[sk.Root].Count)
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsCycleCreatingMerges(t *testing.T) {
	// A chain a(b(a(b(a)))) — every same-label pair is ancestor/descendant,
	// so no merge is admissible and construction terminates with the stable
	// summary intact.
	tr := xmltree.MustCompact("a(b(a(b(a))))")
	st := stable.Build(tr)
	sk, stats := Build(st, Options{BudgetBytes: 1})
	if stats.Merges != 0 {
		t.Fatalf("Merges = %d, want 0 (all pairs cycle-creating)", stats.Merges)
	}
	if sk.NumNodes() != st.NumNodes() {
		t.Fatalf("nodes %d, want %d", sk.NumNodes(), st.NumNodes())
	}
	if err := sk.Check(); err != nil {
		t.Fatal(err)
	}
	if stats.CycleRejects == 0 {
		t.Fatal("expected cycle rejections to be recorded")
	}
}

func TestBuildRecursiveDocumentStaysAcyclic(t *testing.T) {
	// Recursion with siblings: some merges are admissible, some would close
	// cycles. The result must always be a DAG.
	tr := xmltree.MustCompact("r(list(item(list(item,item)),item),list(item,item,item))")
	st := stable.Build(tr)
	sk, _ := Build(st, Options{BudgetBytes: 1})
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBudgetMonotonicity(t *testing.T) {
	// Construction follows one merge trajectory; a smaller budget applies a
	// superset of the merges, so squared error is monotone in the budget.
	tr := xmltree.MustCompact("r(a*2(x),a*3(x,x),a(x*5),b*4(y),b(y*3),c(a(x,x,x)))")
	st := stable.Build(tr)
	prevSq := -1.0
	for _, budget := range []int{1 << 20, 200, 150, 100, 1} {
		sk, _ := Build(st, Options{BudgetBytes: budget})
		sq := sk.SqErr()
		if prevSq >= 0 && sq+1e-9 < prevSq {
			t.Fatalf("budget %d: SqErr %g < previous %g (larger budget)", budget, sq, prevSq)
		}
		prevSq = sq
		if err := VerifyAgainstStable(sk, st); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}

func TestBuildSizeAccountingMatchesRecount(t *testing.T) {
	tr := xmltree.MustCompact("r(a*3(b(c),b(c,c)),a*2(b(c*4)),d(b(c)))")
	st := stable.Build(tr)
	for _, budget := range []int{1, 100, 180, 250} {
		sk, stats := Build(st, Options{BudgetBytes: budget})
		if sk.SizeBytes() != stats.FinalBytes {
			t.Fatalf("budget %d: FinalBytes %d != recount %d", budget, stats.FinalBytes, sk.SizeBytes())
		}
		if stats.BudgetReached && stats.FinalBytes > budget {
			t.Fatalf("budget %d: BudgetReached but FinalBytes %d", budget, stats.FinalBytes)
		}
	}
}

func TestBuildSmallHeapBounds(t *testing.T) {
	// Force repeated pool regeneration with a tiny pool.
	tr := xmltree.MustCompact("r(a*2(x),a*2(x,x),a*2(x*3),a*2(x*4),b*3(y),b(y*2))")
	st := stable.Build(tr)
	sk, stats := Build(st, Options{BudgetBytes: 1, HeapUpper: 3, HeapLower: 1})
	if stats.PoolBuilds < 2 {
		t.Fatalf("PoolBuilds = %d, want >= 2 with tiny heap", stats.PoolBuilds)
	}
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWindowedPairGuard(t *testing.T) {
	// Many same-label same-depth classes trigger the windowed pairing path.
	src := "r("
	for i := 0; i < 40; i++ {
		if i > 0 {
			src += ","
		}
		// Distinct child counts make 40 distinct leaf-parent classes.
		src += "a(x"
		for j := 0; j < i%7; j++ {
			src += ",x"
		}
		src += ")"
	}
	src += ")"
	tr := xmltree.MustCompact(src)
	st := stable.Build(tr)
	sk, _ := Build(st, Options{BudgetBytes: 1, GroupCap: 4, PairWindow: 2})
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int{}
	for _, u := range sk.Nodes {
		byLabel[u.Label]++
	}
	if byLabel["a"] != 1 {
		t.Fatalf("a clusters = %d, want 1 even with windowed pairing", byLabel["a"])
	}
}

func TestStatsTelemetry(t *testing.T) {
	_, _, _, stats := buildDoc("r(a(x),a(x,x))", 1)
	if stats.InitialNodes == 0 || stats.InitialBytes == 0 {
		t.Fatalf("initial telemetry empty: %+v", stats)
	}
	if stats.PairEvals == 0 {
		t.Fatalf("PairEvals = 0: %+v", stats)
	}
	if stats.Elapsed <= 0 {
		t.Fatalf("Elapsed = %v", stats.Elapsed)
	}
}

func randomDoc(seed uint64, maxDepth int) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	labels := []string{"a", "b", "c", "d"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(labels[next(4)])
		if depth < maxDepth {
			for i := uint64(0); i < next(4); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	tr.Root = tr.NewNode("r")
	for i := uint64(0); i <= next(6); i++ {
		tr.Root.Children = append(tr.Root.Children, build(1))
	}
	return tr
}

func TestPropBuildInvariants(t *testing.T) {
	f := func(seed uint64, budgetRaw uint16) bool {
		tr := randomDoc(seed, 5)
		st := stable.Build(tr)
		budget := int(budgetRaw)%st.SizeBytes() + 1
		sk, stats := Build(st, Options{BudgetBytes: budget})
		if err := VerifyAgainstStable(sk, st); err != nil {
			t.Logf("seed %d budget %d: %v", seed, budget, err)
			return false
		}
		if sk.TotalElements() != tr.Size() {
			t.Logf("seed %d: elements %d != %d", seed, sk.TotalElements(), tr.Size())
			return false
		}
		if sk.Nodes[sk.Root].Count != 1 {
			t.Logf("seed %d: root count %d", seed, sk.Nodes[sk.Root].Count)
			return false
		}
		if stats.FinalBytes > stats.InitialBytes {
			t.Logf("seed %d: grew from %d to %d bytes", seed, stats.InitialBytes, stats.FinalBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergedSketchExpandPreservesElementTotals(t *testing.T) {
	// Expanding a compressed sketch must reproduce approximately the same
	// number of elements per label (exactly, when rounding carries settle).
	f := func(seed uint64) bool {
		tr := randomDoc(seed, 4)
		st := stable.Build(tr)
		sk, _ := Build(st, Options{BudgetBytes: st.SizeBytes() / 2})
		out, err := sk.Expand(1 << 20)
		if err != nil {
			t.Logf("seed %d: expand: %v", seed, err)
			return false
		}
		// The expansion of a half-budget synopsis stays within a small
		// constant factor of the original document size (rounding carries
		// amplify through nested fractional edges, so the bound is loose).
		ratio := float64(out.Size()) / float64(tr.Size())
		if ratio < 0.25 || ratio > 4.0 {
			t.Logf("seed %d: expand size %d vs doc %d", seed, out.Size(), tr.Size())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
