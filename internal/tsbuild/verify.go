package tsbuild

import (
	"fmt"
	"math"
	"sort"

	"treesketch/internal/sketch"
	"treesketch/internal/stable"
)

// VerifyAgainstStable checks that sk is a consistent clustering of the
// stable summary st: the Members sets partition the stable classes, every
// cluster's count/depth/edge statistics equal the values recomputed from
// scratch, and the structural invariants of sketch.Check hold. It exists to
// catch bugs in the incremental statistics maintenance of the builder and
// is used heavily by tests.
func VerifyAgainstStable(sk *sketch.Sketch, st *stable.Synopsis) error {
	if err := sk.Check(); err != nil {
		return err
	}
	clusterOf := make([]int, len(st.Nodes))
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		if len(u.Members) == 0 {
			return fmt.Errorf("tsbuild: node %d has no members", u.ID)
		}
		for _, sid := range u.Members {
			if sid < 0 || sid >= len(st.Nodes) {
				return fmt.Errorf("tsbuild: node %d member %d out of range", u.ID, sid)
			}
			if clusterOf[sid] != -1 {
				return fmt.Errorf("tsbuild: stable class %d in two clusters (%d and %d)", sid, clusterOf[sid], u.ID)
			}
			clusterOf[sid] = u.ID
			if st.Nodes[sid].Label != u.Label {
				return fmt.Errorf("tsbuild: node %d (label %s) contains class %d (label %s)", u.ID, u.Label, sid, st.Nodes[sid].Label)
			}
		}
	}
	for sid, c := range clusterOf {
		if c == -1 {
			return fmt.Errorf("tsbuild: stable class %d not assigned to any cluster", sid)
		}
	}
	if clusterOf[st.Root] != sk.Root {
		return fmt.Errorf("tsbuild: stable root class %d maps to node %d, sketch root is %d", st.Root, clusterOf[st.Root], sk.Root)
	}

	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		count, edges, depth := recomputeStats(st, clusterOf, u.Members)
		if count != u.Count {
			return fmt.Errorf("tsbuild: node %d count %d, recomputed %d", u.ID, u.Count, count)
		}
		if depth != u.Depth {
			return fmt.Errorf("tsbuild: node %d depth %d, recomputed %d", u.ID, u.Depth, depth)
		}
		if len(edges) != len(u.Edges) {
			return fmt.Errorf("tsbuild: node %d has %d edges, recomputed %d", u.ID, len(u.Edges), len(edges))
		}
		for i, e := range edges {
			got := u.Edges[i]
			if got.Child != e.Child {
				return fmt.Errorf("tsbuild: node %d edge %d child %d, recomputed %d", u.ID, i, got.Child, e.Child)
			}
			if !closeTo(got.Sum, e.Sum) || !closeTo(got.SumSq, e.SumSq) || !closeTo(got.Avg, e.Avg) || !closeTo(got.MinK, e.MinK) {
				return fmt.Errorf("tsbuild: node %d edge to %d stats (%g,%g,%g), recomputed (%g,%g,%g)",
					u.ID, e.Child, got.Avg, got.Sum, got.SumSq, e.Avg, e.Sum, e.SumSq)
			}
		}
	}
	return nil
}

func closeTo(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}

// recomputeStats is the from-scratch counterpart of builder.statsFor.
func recomputeStats(st *stable.Synopsis, clusterOf []int, members []int) (count int, edges []sketch.Edge, depth int) {
	type acc struct {
		sum, sumSq float64
		minK       int
		covered    int
	}
	accs := make(map[int]*acc)
	for _, sid := range members {
		sn := st.Nodes[sid]
		count += sn.Count
		if sn.Depth() > depth {
			depth = sn.Depth()
		}
		perTarget := make(map[int]int)
		for _, e := range sn.Edges {
			perTarget[clusterOf[e.Child]] += e.K
		}
		c := float64(sn.Count)
		for target, k := range perTarget {
			a := accs[target]
			if a == nil {
				a = &acc{minK: k}
				accs[target] = a
			}
			kf := float64(k)
			a.sum += kf * c
			a.sumSq += kf * kf * c
			if k < a.minK {
				a.minK = k
			}
			a.covered++
		}
	}
	edges = make([]sketch.Edge, 0, len(accs))
	for target, a := range accs {
		minK := float64(a.minK)
		if a.covered < len(members) {
			minK = 0
		}
		edges = append(edges, sketch.Edge{Child: target, Avg: a.sum / float64(count), Sum: a.sum, SumSq: a.sumSq, MinK: minK})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Child < edges[j].Child })
	return count, edges, depth
}
