package tsbuild

import (
	"testing"

	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// TestHeapTelemetry checks that the Stats heap fields are populated and
// agree with the counters published to an injected metrics registry.
func TestHeapTelemetry(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x),a(x,x,x),b(y),b(y,y))")
	st := stable.Build(tr)
	reg := obs.NewRegistry()
	_, stats := Build(st, Options{BudgetBytes: 1, Metrics: reg})

	if stats.Merges == 0 {
		t.Fatal("expected merges on a tight budget")
	}
	if stats.HeapPushes == 0 {
		t.Fatal("HeapPushes = 0, want > 0")
	}
	if stats.MaxHeapSize == 0 {
		t.Fatal("MaxHeapSize = 0, want > 0")
	}
	if got := reg.Counter("tsbuild.heap.pushes").Value(); got != int64(stats.HeapPushes) {
		t.Fatalf("counter tsbuild.heap.pushes = %d, Stats.HeapPushes = %d", got, stats.HeapPushes)
	}
	if got := reg.Counter("tsbuild.heap.evictions").Value(); got != int64(stats.HeapEvictions) {
		t.Fatalf("counter tsbuild.heap.evictions = %d, Stats.HeapEvictions = %d", got, stats.HeapEvictions)
	}
	if got := reg.Gauge("tsbuild.heap.max_size").Value(); got != int64(stats.MaxHeapSize) {
		t.Fatalf("gauge tsbuild.heap.max_size = %d, Stats.MaxHeapSize = %d", got, stats.MaxHeapSize)
	}
	if got := reg.Counter("tsbuild.merges").Value(); got != int64(stats.Merges) {
		t.Fatalf("counter tsbuild.merges = %d, Stats.Merges = %d", got, stats.Merges)
	}
	if got := reg.Timer("tsbuild.build").Count(); got != 1 {
		t.Fatalf("timer tsbuild.build count = %d, want 1", got)
	}
	if got := reg.Timer("tsbuild.create_pool").Count(); got != int64(stats.PoolBuilds) {
		t.Fatalf("timer tsbuild.create_pool count = %d, Stats.PoolBuilds = %d", got, stats.PoolBuilds)
	}
	if got := reg.Histogram("tsbuild.merge.gain_ratio").Count(); got != int64(stats.Merges) {
		t.Fatalf("gain histogram count = %d, Stats.Merges = %d", got, stats.Merges)
	}
}

// TestHeapEvictions forces the bounded candidate pool down to one slot:
// the expensive a-pair is offered first (labels scan alphabetically), then
// displaced by the cheaper b-pair.
func TestHeapEvictions(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x*9),b(y),b(y,y))")
	st := stable.Build(tr)
	_, stats := Build(st, Options{BudgetBytes: 1, HeapUpper: 1, HeapLower: 1, Metrics: obs.NewRegistry()})
	if stats.HeapEvictions == 0 {
		t.Fatalf("HeapEvictions = 0, want > 0 (stats: %+v)", stats)
	}
}

func TestProgressCallback(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x),a(x,x,x),a(x,x,x,x),b(y),b(y,y))")
	st := stable.Build(tr)
	var events []ProgressEvent
	_, stats := Build(st, Options{
		BudgetBytes:   1,
		ProgressEvery: 1,
		Progress:      func(e ProgressEvent) { events = append(events, e) },
		Metrics:       obs.NewRegistry(),
	})
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Fatal("last event not marked Final")
	}
	if last.Merges != stats.Merges {
		t.Fatalf("final event Merges = %d, Stats.Merges = %d", last.Merges, stats.Merges)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Merges < events[i-1].Merges {
			t.Fatalf("Merges not monotone at event %d: %d -> %d", i, events[i-1].Merges, events[i].Merges)
		}
		if events[i].Final && i != len(events)-1 {
			t.Fatalf("non-terminal event %d marked Final", i)
		}
	}
	if last.SizeBytes > events[0].SizeBytes {
		t.Fatalf("size grew: %d -> %d", events[0].SizeBytes, last.SizeBytes)
	}
	if last.BudgetBytes != 1 {
		t.Fatalf("BudgetBytes = %d, want 1", last.BudgetBytes)
	}
	// With ProgressEvery=1 there is at least one event per merge plus the
	// pool-build and final events.
	if len(events) < stats.Merges {
		t.Fatalf("%d events for %d merges", len(events), stats.Merges)
	}
}

// TestProgressNilSafe: a nil Progress callback must not be called (and the
// build must not panic), whatever ProgressEvery is.
func TestProgressNilSafe(t *testing.T) {
	tr := xmltree.MustCompact("r(a(x),a(x,x))")
	st := stable.Build(tr)
	_, stats := Build(st, Options{BudgetBytes: 1, Metrics: obs.NewRegistry()})
	if stats.FinalNodes == 0 {
		t.Fatal("build produced nothing")
	}
}
