package tsbuild

import (
	"math"
	"testing"

	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// corrupt applies fn to a freshly built (stable-equivalent) sketch and
// expects VerifyAgainstStable to reject it.
func corrupt(t *testing.T, doc string, fn func(sk *sketch.Sketch, st *stable.Synopsis)) {
	t.Helper()
	tr := xmltree.MustCompact(doc)
	st := stable.Build(tr)
	sk := sketch.FromStable(st)
	if err := VerifyAgainstStable(sk, st); err != nil {
		t.Fatalf("pristine sketch rejected: %v", err)
	}
	fn(sk, st)
	if err := VerifyAgainstStable(sk, st); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestVerifyDetectsWrongCount(t *testing.T) {
	corrupt(t, "r(a(b),a(b))", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		for _, u := range sk.Nodes {
			if u.Label == "a" {
				u.Count++
			}
		}
	})
}

func TestVerifyDetectsWrongDepth(t *testing.T) {
	corrupt(t, "r(a(b))", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		sk.Nodes[sk.Root].Depth += 3
	})
}

func TestVerifyDetectsWrongStats(t *testing.T) {
	corrupt(t, "r(a(b),a(b,b))", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		for _, u := range sk.Nodes {
			if u.Label == "a" && len(u.Edges) > 0 {
				u.Edges[0].Sum += 1
				u.Edges[0].Avg = u.Edges[0].Sum / float64(u.Count)
			}
		}
	})
}

func TestVerifyDetectsMissingMember(t *testing.T) {
	corrupt(t, "r(a,b)", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		for _, u := range sk.Nodes {
			if u.Label == "a" {
				// Claim membership of a class that belongs elsewhere.
				u.Members = nil
			}
		}
	})
}

func TestVerifyDetectsDuplicateMembership(t *testing.T) {
	corrupt(t, "r(a,b)", func(sk *sketch.Sketch, st *stable.Synopsis) {
		var bClass int
		for _, n := range st.Nodes {
			if n.Label == "b" {
				bClass = n.ID
			}
		}
		for _, u := range sk.Nodes {
			if u.Label == "a" {
				u.Members = append(u.Members, bClass)
			}
		}
	})
}

func TestVerifyDetectsLabelMismatch(t *testing.T) {
	corrupt(t, "r(a,b)", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		for _, u := range sk.Nodes {
			if u.Label == "a" {
				u.Label = "z"
			}
		}
	})
}

func TestVerifyDetectsWrongRoot(t *testing.T) {
	corrupt(t, "r(a(b))", func(sk *sketch.Sketch, _ *stable.Synopsis) {
		// Swap labels so the structure stays Check-valid but the root
		// class no longer matches the stable root's class.
		for _, u := range sk.Nodes {
			if u.Label == "a" {
				sk.Root = u.ID
			}
		}
	})
}

func TestRatioInfiniteOnZeroSize(t *testing.T) {
	if got := ratio(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("ratio(5,0) = %v, want +Inf", got)
	}
	if got := ratio(6, 3); got != 2 {
		t.Fatalf("ratio(6,3) = %v, want 2", got)
	}
}
