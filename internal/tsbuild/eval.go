package tsbuild

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"treesketch/internal/sketch"
)

// evalResult is the outcome of scoring one candidate merge against a frozen
// builder state.
type evalResult struct {
	errd  float64
	sized int
	ok    bool // admissible merge
	cycle bool // rejected because it would create a cycle
}

// evalCtx holds the per-worker scratch buffers that make candidate
// evaluation allocation-free: epoch-stamped dense accumulators for the
// sufficient statistics of a hypothetical merged cluster, a visited array
// for reachability checks, and reusable member/parent buffers. Evaluation
// through a context reads the builder's synopsis, cluster assignment, and
// parent index but never writes them, so any number of contexts may
// evaluate concurrently between merges; all mutation happens in the
// sequential apply path.
//
// Epoch stamping replaces map allocation: each array cell carries the epoch
// at which it was last written, and bumping the epoch invalidates every
// cell in O(1). The accumulator values are folded in ascending member order
// exactly as the map-based implementation did, so results are bit-identical
// to sequential evaluation.
type evalCtx struct {
	b *builder

	// Reachability scratch (dense over synopsis node IDs).
	visited []int64
	vepoch  int64
	stack   []int

	// Per-target cluster accumulators for gather.
	tmark   []int64
	tepoch  int64
	targets []int
	sum     []float64
	sumSq   []float64
	minK    []int
	covered []int

	// Per-member child-count scratch (k summed over a member's stable edges
	// into one target cluster).
	kmark  []int64
	kepoch int64
	kval   []int

	// Reusable buffers for merged member lists and parent unions.
	members []int
	parbuf  []int
}

func newEvalCtx(b *builder) *evalCtx {
	c := &evalCtx{b: b}
	c.ensure()
	return c
}

// ensure grows the dense arrays to cover every current node ID. Merges
// append nodes, so capacity only ever grows.
func (c *evalCtx) ensure() {
	n := len(c.b.sk.Nodes)
	if len(c.visited) >= n {
		return
	}
	grow := n + n/4
	next := make([]int64, grow)
	copy(next, c.visited)
	c.visited = next
	next = make([]int64, grow)
	copy(next, c.tmark)
	c.tmark = next
	next = make([]int64, grow)
	copy(next, c.kmark)
	c.kmark = next
	nf := make([]float64, grow)
	copy(nf, c.sum)
	c.sum = nf
	nf = make([]float64, grow)
	copy(nf, c.sumSq)
	c.sumSq = nf
	ni := make([]int, grow)
	copy(ni, c.minK)
	c.minK = ni
	ni = make([]int, grow)
	copy(ni, c.covered)
	c.covered = ni
	ni = make([]int, grow)
	copy(ni, c.kval)
	c.kval = ni
}

// reaches reports whether to is reachable from from along synopsis edges.
// Semantics match sketch.Reaches; the epoch-stamped visited array avoids
// the per-call map allocation that dominated the original profile.
func (c *evalCtx) reaches(from, to int) bool {
	if from == to {
		return true
	}
	c.ensure()
	c.vepoch++
	sk := c.b.sk
	c.stack = append(c.stack[:0], from)
	for len(c.stack) > 0 {
		id := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		u := sk.Nodes[id]
		if u == nil {
			continue
		}
		for _, e := range u.Edges {
			if e.Child == to {
				return true
			}
			if c.visited[e.Child] != c.vepoch {
				c.visited[e.Child] = c.vepoch
				c.stack = append(c.stack, e.Child)
			}
		}
	}
	return false
}

// gather computes the extent count, max depth, and per-target sufficient
// statistics of a hypothetical cluster made of the given stable classes
// under the current cluster assignment, leaving the per-target values in
// the context's dense accumulators with c.targets listing the touched
// target IDs in ascending order. Cost is linear in the stable edges of the
// members, with no allocation.
func (c *evalCtx) gather(members []int) (count, depth int) {
	c.ensure()
	c.tepoch++
	c.targets = c.targets[:0]
	b := c.b
	for _, sid := range members {
		sn := b.st.Nodes[sid]
		count += sn.Count
		if d := sn.Depth(); d > depth {
			depth = d
		}
		// First pass: total child count k per target cluster for this member.
		c.kepoch++
		for _, e := range sn.Edges {
			t := b.clusterOf[e.Child]
			if c.kmark[t] != c.kepoch {
				c.kmark[t] = c.kepoch
				c.kval[t] = 0
			}
			c.kval[t] += e.K
		}
		// Second pass: fold this member's k into the cluster accumulators.
		cf := float64(sn.Count)
		for _, e := range sn.Edges {
			t := b.clusterOf[e.Child]
			if c.kmark[t] != c.kepoch {
				continue // already folded for this member
			}
			c.kmark[t] = c.kepoch - 1 // consume the stamp
			k := c.kval[t]
			if c.tmark[t] != c.tepoch {
				c.tmark[t] = c.tepoch
				c.targets = append(c.targets, t)
				c.sum[t], c.sumSq[t] = 0, 0
				c.minK[t] = k
				c.covered[t] = 0
			}
			kf := float64(k)
			c.sum[t] += kf * cf
			c.sumSq[t] += kf * kf * cf
			if k < c.minK[t] {
				c.minK[t] = k
			}
			c.covered[t]++
		}
	}
	sort.Ints(c.targets)
	return count, depth
}

// gatheredSqW sums the squared clustering error over the gathered targets
// in ascending target order (the same order the map-based implementation
// summed its sorted edge list, keeping the float result bit-identical).
func (c *evalCtx) gatheredSqW(count int) float64 {
	fc := float64(count)
	var sqW float64
	for _, t := range c.targets {
		sqW += c.sumSq[t] - c.sum[t]*c.sum[t]/fc
	}
	return sqW
}

// gatheredEdges materializes the gathered accumulators as a sorted edge
// slice; used by the apply path, which stores the result in the new node.
func (c *evalCtx) gatheredEdges(nMembers, count int) []sketch.Edge {
	edges := make([]sketch.Edge, 0, len(c.targets))
	for _, t := range c.targets {
		mk := float64(c.minK[t])
		if c.covered[t] < nMembers {
			mk = 0 // some member class has no children in the target
		}
		edges = append(edges, sketch.Edge{
			Child: t,
			Avg:   c.sum[t] / float64(count),
			Sum:   c.sum[t],
			SumSq: c.sumSq[t],
			MinK:  mk,
		})
	}
	return edges
}

// mergedMembers merges two ascending member lists into the context buffer.
func (c *evalCtx) mergedMembers(a, b []int) []int {
	c.members = c.members[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			c.members = append(c.members, a[i])
			i++
		} else {
			c.members = append(c.members, b[j])
			j++
		}
	}
	c.members = append(c.members, a[i:]...)
	c.members = append(c.members, b[j:]...)
	return c.members
}

// unionParents merges the (sorted) parent lists of x and y into the context
// buffer, ascending and deduplicated, excluding x and y themselves.
func (c *evalCtx) unionParents(x, y int) []int {
	px, py := c.b.parents[x], c.b.parents[y]
	c.parbuf = c.parbuf[:0]
	i, j := 0, 0
	push := func(p int) {
		if p == x || p == y {
			return
		}
		if n := len(c.parbuf); n > 0 && c.parbuf[n-1] == p {
			return
		}
		c.parbuf = append(c.parbuf, p)
	}
	for i < len(px) && j < len(py) {
		switch {
		case px[i] < py[j]:
			push(px[i])
			i++
		case px[i] > py[j]:
			push(py[j])
			j++
		default:
			push(px[i])
			i++
			j++
		}
	}
	for ; i < len(px); i++ {
		push(px[i])
	}
	for ; j < len(py); j++ {
		push(py[j])
	}
	return c.parbuf
}

// evaluate computes errd and sized for merging live nodes x and y. It is
// read-only with respect to the builder — all intermediate state lives in
// the context — and float operations replay the exact accumulation order of
// the original sequential implementation, so concurrent evaluation through
// per-worker contexts yields bit-identical results.
func (c *evalCtx) evaluate(x, y int) evalResult {
	b := c.b
	nx, ny := b.sk.Nodes[x], b.sk.Nodes[y]
	if x == b.sk.Root || y == b.sk.Root {
		return evalResult{}
	}
	if c.reaches(x, y) || c.reaches(y, x) {
		return evalResult{cycle: true}
	}

	members := c.mergedMembers(nx.Members, ny.Members)
	count, _ := c.gather(members)
	sqW := c.gatheredSqW(count)
	nTargets := len(c.targets)
	delta := sqW - nx.SqErr() - ny.SqErr()

	// Parent side: edges p->x and p->y fuse into p->w. Parents iterate in
	// ascending order so floating-point accumulation is deterministic.
	dupIn := 0
	for _, p := range c.unionParents(x, y) {
		pn := b.sk.Nodes[p]
		var oldSq float64
		hasBoth := 0
		if e, found := pn.EdgeTo(x); found {
			oldSq += edgeSq(e, pn.Count)
			hasBoth++
		}
		if e, found := pn.EdgeTo(y); found {
			oldSq += edgeSq(e, pn.Count)
			hasBoth++
		}
		if hasBoth == 2 {
			dupIn++
		}
		sum, sumSq, _ := b.combinedEdgeStats(pn.Members, x, y)
		newSq := sumSq - sum*sum/float64(pn.Count)
		delta += newSq - oldSq
	}

	dupOut := len(nx.Edges) + len(ny.Edges) - nTargets
	sized := sketch.NodeBytes + sketch.EdgeBytes*(dupOut+dupIn)
	if delta < 0 {
		delta = 0 // numeric noise; coarsening never reduces squared error
	}
	return evalResult{errd: delta, sized: sized, ok: true}
}

// parallelEvalThreshold is the batch size below which the fan-out overhead
// of spawning workers exceeds the evaluation work itself.
const parallelEvalThreshold = 32

// evalPairs scores a batch of candidate pairs, fanning out across the
// builder's worker contexts when the batch is large enough. Results are
// indexed 1:1 with pairs, each computed purely from the pair and the frozen
// builder state, so the reduction is order-independent: the returned slice
// is identical at any GOMAXPROCS. Telemetry counters fold in afterwards, in
// slice order, keeping them deterministic too.
func (b *builder) evalPairs(pairs []opKey) []evalResult {
	res := make([]evalResult, len(pairs))
	n := len(pairs)
	if len(b.ctxs) <= 1 || n < parallelEvalThreshold {
		c := b.ctxs[0]
		for i, k := range pairs {
			res[i] = c.evaluate(k[0], k[1])
		}
	} else {
		workers := len(b.ctxs)
		if workers > n {
			workers = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			c := b.ctxs[w]
			wg.Add(1)
			//lint:nondet workers write disjoint res[i] slots indexed by the work counter; output order is the deterministic pairs order
			go func(c *evalCtx) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					k := pairs[i]
					res[i] = c.evaluate(k[0], k[1])
				}
			}(c)
		}
		wg.Wait()
	}
	b.pairEvals += n
	for _, r := range res {
		if r.cycle {
			b.cycleRejects++
		}
	}
	return res
}

// workerCount resolves the Options.Workers default: one evaluation context
// per available CPU.
func workerCount(opt int) int {
	if opt > 0 {
		return opt
	}
	return runtime.GOMAXPROCS(0)
}
