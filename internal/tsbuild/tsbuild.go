// Package tsbuild implements the TreeSketch construction algorithm
// (TSBuild and CreatePool, Figures 5 and 6 of the paper).
//
// Starting from the count-stable summary — the zero-error TreeSketch —
// TSBuild performs agglomerative bottom-up clustering: it repeatedly merges
// the pair of same-label synopsis nodes with the best marginal-gain ratio
// errd/sized (least increase in squared error per byte of space saved)
// until the synopsis fits the space budget. Candidate merges are generated
// bottom-up by node depth (CreatePool) and kept in a bounded pool;
// sufficient statistics for merged clusters are recomputed exactly from the
// retained count-stable summary, mirroring the paper's remark that the
// algorithm accesses "only the relevant parts of the count-stable summary".
package tsbuild

import (
	"math"
	"sort"
	"time"

	"treesketch/internal/container"
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
)

// Options configures TSBuild. The zero value selects the defaults used in
// the paper's experimental study (Uh = 10000, Lh = 100).
type Options struct {
	// BudgetBytes is the target synopsis size S. Construction stops once
	// SizeBytes() <= BudgetBytes, or when no further merge is possible (the
	// label-split graph has been reached).
	BudgetBytes int
	// HeapUpper is Uh, the maximum number of candidate merge operations the
	// pool may hold. Defaults to 10000.
	HeapUpper int
	// HeapLower is Lh: when the pool shrinks below this bound (and the
	// budget is not yet met) the pool is regenerated. Defaults to 100.
	HeapLower int
	// GroupCap bounds the size of a (label, depth-prefix) group for which
	// all candidate pairs are enumerated. Larger groups are sorted by a
	// structural feature and paired within a sliding window of PairWindow
	// neighbors, keeping candidate generation near-linear on very regular
	// data (see DESIGN.md). Defaults to 128.
	GroupCap int
	// PairWindow is the window width used for oversized groups. Defaults
	// to 16.
	PairWindow int
	// MaxPairEvals caps the number of candidate evaluations per CreatePool
	// invocation. Defaults to 200000.
	MaxPairEvals int
	// Progress, when non-nil, receives construction milestones: one event
	// after every pool build, one every ProgressEvery merges, and a final
	// event when construction stops. Long builds are otherwise silent.
	Progress func(ProgressEvent)
	// ProgressEvery is the merge interval between Progress events. Defaults
	// to 1000.
	ProgressEvery int
	// Metrics receives the build's observability metrics (tsbuild.* phase
	// timings, heap counters, and gain-ratio histograms). Nil selects the
	// process-wide obs.Default registry.
	Metrics *obs.Registry
}

// ProgressEvent is one construction milestone reported through
// Options.Progress.
type ProgressEvent struct {
	// Merges and PoolBuilds are cumulative since Build started.
	Merges     int
	PoolBuilds int
	// SizeBytes is the current synopsis footprint; construction ends when
	// it reaches BudgetBytes (or no merge can shrink it further).
	SizeBytes   int
	BudgetBytes int
	// PoolSize is the number of candidate operations currently held.
	PoolSize int
	Elapsed  time.Duration
	// Final marks the last event of the build.
	Final bool
}

func (o Options) withDefaults() Options {
	if o.HeapUpper <= 0 {
		o.HeapUpper = 10000
	}
	if o.HeapLower < 0 {
		o.HeapLower = 100
	}
	if o.HeapLower == 0 {
		o.HeapLower = 100
	}
	if o.HeapUpper < o.HeapLower {
		o.HeapUpper = o.HeapLower
	}
	if o.GroupCap <= 0 {
		o.GroupCap = 128
	}
	if o.PairWindow <= 0 {
		o.PairWindow = 16
	}
	if o.MaxPairEvals <= 0 {
		o.MaxPairEvals = 200000
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 1000
	}
	return o
}

// Stats reports construction telemetry.
type Stats struct {
	InitialNodes  int
	InitialBytes  int
	FinalNodes    int
	FinalBytes    int
	Merges        int
	PoolBuilds    int
	PairEvals     int
	CycleRejects  int
	FinalSqErr    float64
	Elapsed       time.Duration
	BudgetReached bool

	// Heap telemetry. HeapPushes counts every candidate accepted into the
	// bounded CreatePool set or the merge-loop heap; HeapEvictions counts
	// candidates displaced from the bounded set by better ones;
	// MaxHeapSize is the largest merge-loop heap observed.
	HeapPushes    int
	HeapEvictions int
	MaxHeapSize   int
}

// Build compresses the count-stable summary st down to opts.BudgetBytes and
// returns the resulting TreeSketch (compacted: dense IDs, no tombstones).
func Build(st *stable.Synopsis, opts Options) (*sketch.Sketch, Stats) {
	opts = opts.withDefaults()
	reg := obs.Or(opts.Metrics)
	buildSpan := reg.StartSpan("tsbuild.build")
	start := time.Now()
	b := newBuilder(st, opts)
	stats := Stats{
		InitialNodes: b.sk.NumNodes(),
		InitialBytes: b.size,
	}
	progress := func(final bool) {
		if opts.Progress == nil {
			return
		}
		opts.Progress(ProgressEvent{
			Merges:      stats.Merges,
			PoolBuilds:  stats.PoolBuilds,
			SizeBytes:   b.size,
			BudgetBytes: opts.BudgetBytes,
			PoolSize:    len(b.ops),
			Elapsed:     time.Since(start),
			Final:       final,
		})
	}

	for b.size > opts.BudgetBytes {
		poolSpan := reg.StartSpan("tsbuild.createPool")
		n := b.createPool()
		poolSpan.End()
		stats.PoolBuilds++
		if n == 0 {
			break
		}
		progress(false)
		// When the freshly built pool is already below Lh, drain it fully;
		// otherwise stop at Lh and regenerate (Figure 5, line 5).
		lower := opts.HeapLower
		if n <= lower {
			lower = 0
		}
		progressed := false
		mergeSpan := reg.StartSpan("tsbuild.mergeLoop")
		for b.size > opts.BudgetBytes && len(b.ops) > lower {
			if b.step() {
				stats.Merges++
				progressed = true
				if stats.Merges%opts.ProgressEvery == 0 {
					progress(false)
				}
			} else {
				break
			}
		}
		mergeSpan.End()
		if !progressed {
			break
		}
	}

	compactSpan := reg.StartSpan("tsbuild.compact")
	out := b.sk.Compact()
	compactSpan.End()
	stats.FinalNodes = out.NumNodes()
	stats.FinalBytes = out.SizeBytes()
	stats.FinalSqErr = out.SqErr()
	stats.PairEvals = b.pairEvals
	stats.CycleRejects = b.cycleRejects
	stats.HeapPushes = b.heapPushes
	stats.HeapEvictions = b.heapEvictions
	stats.MaxHeapSize = b.maxHeapSize
	stats.Elapsed = time.Since(start)
	stats.BudgetReached = stats.FinalBytes <= opts.BudgetBytes
	progress(true)
	buildSpan.End()
	b.publish(reg, stats)
	return out, stats
}

// publish folds one build's telemetry into the metrics registry under the
// tsbuild.* namespace.
func (b *builder) publish(reg *obs.Registry, stats Stats) {
	reg.Counter("tsbuild.builds").Inc()
	reg.Counter("tsbuild.merges").Add(int64(stats.Merges))
	reg.Counter("tsbuild.pool.builds").Add(int64(stats.PoolBuilds))
	reg.Counter("tsbuild.pool.pair_evals").Add(int64(stats.PairEvals))
	reg.Counter("tsbuild.pool.cycle_rejects").Add(int64(stats.CycleRejects))
	reg.Counter("tsbuild.pool.op_dupes").Add(int64(b.opDupes))
	reg.Counter("tsbuild.heap.pushes").Add(int64(stats.HeapPushes))
	reg.Counter("tsbuild.heap.evictions").Add(int64(stats.HeapEvictions))
	reg.Gauge("tsbuild.heap.max_size").SetMax(int64(stats.MaxHeapSize))
	reg.Histogram("tsbuild.bytes_saved").Observe(float64(stats.InitialBytes - stats.FinalBytes))
}

// opKey identifies a candidate merge by its (smaller, larger) node IDs.
type opKey [2]int

func keyOf(a, b int) opKey {
	if a > b {
		a, b = b, a
	}
	return opKey{a, b}
}

// op is a candidate merge operation with its current evaluation.
type op struct {
	key   opKey
	errd  float64
	sized int
	prio  float64 // errd/sized as pushed into the heap
	dirty bool    // neighborhood changed since last evaluation
}

type heapEntry struct {
	key  opKey
	prio float64
}

type builder struct {
	st   *stable.Synopsis
	sk   *sketch.Sketch
	opts Options

	clusterOf []int              // stable class ID -> live sketch node ID
	parents   []map[int]struct{} // sketch node ID -> live parent IDs
	size      int                // current SizeBytes, maintained incrementally

	ops     map[opKey]*op
	nodeOps map[int][]opKey // node ID -> keys of ops referencing it
	heap    container.MinHeap[heapEntry]

	pairEvals    int
	cycleRejects int

	heapPushes    int
	heapEvictions int
	maxHeapSize   int
	opDupes       int
	gainHist      *obs.Histogram
}

// pushHeap wraps heap insertion with the telemetry the Stats heap fields
// report.
func (b *builder) pushHeap(prio float64, e heapEntry) {
	b.heap.Push(prio, e)
	b.heapPushes++
	if n := b.heap.Len(); n > b.maxHeapSize {
		b.maxHeapSize = n
	}
}

func newBuilder(st *stable.Synopsis, opts Options) *builder {
	sk := sketch.FromStable(st)
	b := &builder{
		st:        st,
		sk:        sk,
		opts:      opts,
		clusterOf: make([]int, len(st.Nodes)),
		parents:   make([]map[int]struct{}, len(st.Nodes)),
		size:      sk.SizeBytes(),
		ops:       make(map[opKey]*op),
		nodeOps:   make(map[int][]opKey),
		gainHist:  obs.Or(opts.Metrics).Histogram("tsbuild.merge.gain_ratio"),
	}
	for i := range b.clusterOf {
		b.clusterOf[i] = i
	}
	for _, u := range sk.Nodes {
		for _, e := range u.Edges {
			if b.parents[e.Child] == nil {
				b.parents[e.Child] = make(map[int]struct{})
			}
			b.parents[e.Child][u.ID] = struct{}{}
		}
	}
	return b
}

func (b *builder) alive(id int) bool {
	return id >= 0 && id < len(b.sk.Nodes) && b.sk.Nodes[id] != nil
}

// statsFor computes the exact extent count and per-target sufficient
// statistics for a hypothetical cluster made of the given stable classes,
// under the current cluster assignment. Cost is linear in the stable edges
// of the members.
func (b *builder) statsFor(members []int) (count int, edges []sketch.Edge, depth int) {
	type acc struct {
		sum, sumSq float64
		minK       int
		covered    int // members with at least one child in the target
	}
	accs := make(map[int]*acc)
	perTarget := make(map[int]int)
	for _, sid := range members {
		sn := b.st.Nodes[sid]
		count += sn.Count
		if sn.Depth() > depth {
			depth = sn.Depth()
		}
		for k := range perTarget {
			delete(perTarget, k)
		}
		for _, e := range sn.Edges {
			perTarget[b.clusterOf[e.Child]] += e.K
		}
		c := float64(sn.Count)
		for target, k := range perTarget {
			a := accs[target]
			if a == nil {
				a = &acc{minK: k}
				accs[target] = a
			}
			kf := float64(k)
			a.sum += kf * c
			a.sumSq += kf * kf * c
			if k < a.minK {
				a.minK = k
			}
			a.covered++
		}
	}
	edges = make([]sketch.Edge, 0, len(accs))
	for target, a := range accs {
		minK := float64(a.minK)
		if a.covered < len(members) {
			minK = 0 // some member class has no children in the target
		}
		edges = append(edges, sketch.Edge{
			Child: target,
			Avg:   a.sum / float64(count),
			Sum:   a.sum,
			SumSq: a.sumSq,
			MinK:  minK,
		})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Child < edges[j].Child })
	return count, edges, depth
}

// combinedEdgeStats computes the sufficient statistics of the single edge
// from a cluster with the given stable members to the hypothetical union of
// target clusters t1 and t2 (t2 < 0 means just t1).
func (b *builder) combinedEdgeStats(members []int, t1, t2 int) (sum, sumSq, minK float64) {
	first := true
	for _, sid := range members {
		sn := b.st.Nodes[sid]
		k := 0
		for _, e := range sn.Edges {
			c := b.clusterOf[e.Child]
			if c == t1 || c == t2 {
				k += e.K
			}
		}
		if first || float64(k) < minK {
			minK = float64(k)
		}
		first = false
		if k > 0 {
			kf := float64(k)
			c := float64(sn.Count)
			sum += kf * c
			sumSq += kf * kf * c
		}
	}
	return sum, sumSq, minK
}

func edgeSq(e sketch.Edge, count int) float64 {
	return e.SumSq - e.Sum*e.Sum/float64(count)
}

// evaluate computes errd and sized for merging live nodes x and y. ok is
// false when the merge is inadmissible (cycle-creating or involving the
// root cluster).
func (b *builder) evaluate(x, y int) (errd float64, sized int, ok bool) {
	b.pairEvals++
	nx, ny := b.sk.Nodes[x], b.sk.Nodes[y]
	if x == b.sk.Root || y == b.sk.Root {
		return 0, 0, false
	}
	if b.sk.Reaches(x, y) || b.sk.Reaches(y, x) {
		b.cycleRejects++
		return 0, 0, false
	}

	members := mergeSorted(nx.Members, ny.Members)
	count, edges, _ := b.statsFor(members)
	var sqW float64
	for _, e := range edges {
		sqW += edgeSq(e, count)
	}
	delta := sqW - nx.SqErr() - ny.SqErr()

	// Parent side: edges p->x and p->y fuse into p->w. Iterate parents in
	// sorted order so floating-point accumulation is deterministic.
	dupIn := 0
	for _, p := range b.sortedUnionParents(x, y) {
		pn := b.sk.Nodes[p]
		var oldSq float64
		hasBoth := 0
		if e, found := pn.EdgeTo(x); found {
			oldSq += edgeSq(e, pn.Count)
			hasBoth++
		}
		if e, found := pn.EdgeTo(y); found {
			oldSq += edgeSq(e, pn.Count)
			hasBoth++
		}
		if hasBoth == 2 {
			dupIn++
		}
		sum, sumSq, _ := b.combinedEdgeStats(pn.Members, x, y)
		newSq := sumSq - sum*sum/float64(pn.Count)
		delta += newSq - oldSq
	}

	dupOut := len(nx.Edges) + len(ny.Edges) - len(edges)
	sized = sketch.NodeBytes + sketch.EdgeBytes*(dupOut+dupIn)
	if delta < 0 {
		delta = 0 // numeric noise; coarsening never reduces squared error
	}
	return delta, sized, true
}

func (b *builder) unionParents(x, y int) map[int]struct{} {
	out := make(map[int]struct{}, len(b.parents[x])+len(b.parents[y]))
	for p := range b.parents[x] {
		out[p] = struct{}{}
	}
	for p := range b.parents[y] {
		out[p] = struct{}{}
	}
	delete(out, x)
	delete(out, y)
	return out
}

func (b *builder) sortedUnionParents(x, y int) []int {
	set := b.unionParents(x, y)
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// apply performs the merge of x and y, returning the new node's ID. The
// caller must have verified admissibility via evaluate.
func (b *builder) apply(x, y int) int {
	nx, ny := b.sk.Nodes[x], b.sk.Nodes[y]
	members := mergeSorted(nx.Members, ny.Members)

	w := &sketch.Node{
		ID:      len(b.sk.Nodes),
		Label:   nx.Label,
		Members: members,
	}
	b.sk.Nodes = append(b.sk.Nodes, w)
	b.parents = append(b.parents, nil)
	for _, sid := range members {
		b.clusterOf[sid] = w.ID
	}
	w.Count, w.Edges, w.Depth = b.statsFor(members)

	removedEdges := len(nx.Edges) + len(ny.Edges)
	addedEdges := len(w.Edges)

	// Rewire parents: drop p->x and p->y, add p->w with exact stats.
	pset := b.sortedUnionParents(x, y)
	b.parents[w.ID] = make(map[int]struct{}, len(pset))
	for _, p := range pset {
		pn := b.sk.Nodes[p]
		kept := pn.Edges[:0]
		for _, e := range pn.Edges {
			if e.Child == x || e.Child == y {
				removedEdges++
				continue
			}
			kept = append(kept, e)
		}
		// clusterOf already maps the merged members to w, so the combined
		// edge is measured directly against the new cluster.
		sum, sumSq, minK := b.combinedEdgeStats(pn.Members, w.ID, -1)
		kept = append(kept, sketch.Edge{Child: w.ID, Avg: sum / float64(pn.Count), Sum: sum, SumSq: sumSq, MinK: minK})
		sort.Slice(kept, func(i, j int) bool { return kept[i].Child < kept[j].Child })
		pn.Edges = kept
		addedEdges++
		b.parents[w.ID][p] = struct{}{}
	}

	// Children: their parent sets lose x and y and gain w.
	for _, e := range w.Edges {
		ps := b.parents[e.Child]
		if ps == nil {
			ps = make(map[int]struct{})
			b.parents[e.Child] = ps
		}
		delete(ps, x)
		delete(ps, y)
		ps[w.ID] = struct{}{}
	}

	b.sk.Nodes[x] = nil
	b.sk.Nodes[y] = nil
	b.parents[x] = nil
	b.parents[y] = nil

	b.size -= sketch.NodeBytes + sketch.EdgeBytes*(removedEdges-addedEdges)
	return w.ID
}

// step pops candidate operations until one can be applied; it returns false
// when the pool is exhausted without an applicable merge.
func (b *builder) step() bool {
	for {
		entry, ok := b.heap.PopMin()
		if !ok {
			// Registry entries may remain that lost their heap copies
			// (shouldn't happen, but don't loop forever).
			b.ops = make(map[opKey]*op)
			b.nodeOps = make(map[int][]opKey)
			return false
		}
		o, exists := b.ops[entry.key]
		if !exists || o.prio != entry.prio {
			continue // superseded or stale duplicate heap copy
		}
		x, y := o.key[0], o.key[1]
		if !b.alive(x) || !b.alive(y) {
			b.removeOp(o.key)
			continue
		}
		if o.dirty {
			errd, sized, admissible := b.evaluate(x, y)
			if !admissible {
				b.removeOp(o.key)
				continue
			}
			o.errd, o.sized, o.dirty = errd, sized, false
			o.prio = ratio(errd, sized)
			b.pushHeap(o.prio, heapEntry{o.key, o.prio})
			continue
		}
		// Re-check admissibility at application time: the graph may have
		// changed in ways the dirty-marking does not cover (reachability).
		if b.sk.Reaches(x, y) || b.sk.Reaches(y, x) {
			b.cycleRejects++
			b.removeOp(o.key)
			continue
		}
		b.removeOp(o.key)
		b.gainHist.Observe(o.prio)
		wid := b.apply(x, y)
		b.afterMerge(x, y, wid)
		return true
	}
}

func ratio(errd float64, sized int) float64 {
	if sized <= 0 {
		return math.Inf(1)
	}
	return errd / float64(sized)
}

// afterMerge rewrites pool operations that referenced the merged nodes
// (Figure 5, lines 9-13) and marks operations in the affected neighborhood
// dirty for re-evaluation (line 14).
func (b *builder) afterMerge(x, y, wid int) {
	// Replace ops touching x or y with ops pairing the surviving node
	// against w.
	touched := append([]opKey(nil), b.nodeOps[x]...)
	touched = append(touched, b.nodeOps[y]...)
	delete(b.nodeOps, x)
	delete(b.nodeOps, y)
	for _, k := range touched {
		if _, exists := b.ops[k]; !exists {
			continue
		}
		b.removeOp(k)
		other := -1
		switch {
		case k[0] == x || k[0] == y:
			other = k[1]
		case k[1] == x || k[1] == y:
			other = k[0]
		}
		if other == x || other == y || other == wid || !b.alive(other) {
			continue
		}
		if b.sk.Nodes[other].Label != b.sk.Nodes[wid].Label {
			continue
		}
		b.addOp(other, wid)
	}

	// Affected neighborhood: ops referencing parents or children of w.
	// Ops keep their existing heap copy; when popped while dirty they are
	// re-evaluated and re-pushed with the fresh ratio.
	mark := func(id int) {
		for _, k := range b.nodeOps[id] {
			if o, exists := b.ops[k]; exists {
				o.dirty = true
			}
		}
	}
	for p := range b.parents[wid] {
		mark(p)
	}
	for _, e := range b.sk.Nodes[wid].Edges {
		mark(e.Child)
	}
}

// addOp evaluates and registers a candidate merge, returning true when it
// was admissible.
func (b *builder) addOp(x, y int) bool {
	k := keyOf(x, y)
	if _, exists := b.ops[k]; exists {
		b.opDupes++
		return true
	}
	errd, sized, ok := b.evaluate(x, y)
	if !ok {
		return false
	}
	o := &op{key: k, errd: errd, sized: sized, prio: ratio(errd, sized)}
	b.ops[k] = o
	b.nodeOps[k[0]] = append(b.nodeOps[k[0]], k)
	b.nodeOps[k[1]] = append(b.nodeOps[k[1]], k)
	b.pushHeap(o.prio, heapEntry{k, o.prio})
	return true
}

func (b *builder) removeOp(k opKey) {
	delete(b.ops, k)
	for _, id := range k {
		keys := b.nodeOps[id]
		for i, kk := range keys {
			if kk == k {
				keys[i] = keys[len(keys)-1]
				b.nodeOps[id] = keys[:len(keys)-1]
				break
			}
		}
	}
}

// createPool implements CreatePool (Figure 6): it scans same-label node
// pairs bottom-up by depth, evaluates them, and retains the HeapUpper best
// by marginal-gain ratio. It replaces the current pool and returns the
// number of operations installed.
func (b *builder) createPool() int {
	b.ops = make(map[opKey]*op)
	b.nodeOps = make(map[int][]opKey)
	b.heap.Reset()

	type cand struct {
		key   opKey
		errd  float64
		sized int
	}
	pool := container.NewBoundedMinSet[cand](b.opts.HeapUpper)
	evalBudget := b.opts.MaxPairEvals

	offer := func(x, y int) {
		if evalBudget <= 0 {
			return
		}
		k := keyOf(x, y)
		// When the pool is full, an op must beat the current worst to be
		// retained; evaluation is the expensive part so this pre-check on a
		// zero lower bound cannot help — evaluate and let the set decide.
		evalBudget--
		errd, sized, ok := b.evaluate(x, y)
		if !ok {
			return
		}
		wasFull := pool.Full()
		if pool.Push(ratio(errd, sized), cand{k, errd, sized}) {
			b.heapPushes++
			if wasFull {
				b.heapEvictions++
			}
		}
	}

	// Group live non-root nodes by label, each group sorted by depth.
	groups := make(map[string][]*sketch.Node)
	height := 0
	for _, u := range b.sk.Nodes {
		if u == nil || u.ID == b.sk.Root {
			continue
		}
		groups[u.Label] = append(groups[u.Label], u)
		if u.Depth > height {
			height = u.Depth
		}
	}
	labels := make([]string, 0, len(groups))
	for l, g := range groups {
		if len(g) < 2 {
			delete(groups, l)
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].Depth != g[j].Depth {
				return g[i].Depth < g[j].Depth
			}
			return g[i].ID < g[j].ID
		})
		labels = append(labels, l)
	}
	sort.Strings(labels)

	for level := 0; level <= height; level++ {
		if pool.Full() || evalBudget <= 0 {
			break
		}
		for _, l := range labels {
			g := groups[l]
			// prefix: nodes with Depth <= level; newStart: first with
			// Depth == level.
			hi := sort.Search(len(g), func(i int) bool { return g[i].Depth > level })
			lo := sort.Search(len(g), func(i int) bool { return g[i].Depth >= level })
			if lo == hi {
				continue // no new nodes at this level for this label
			}
			if hi <= b.opts.GroupCap {
				// All pairs (u, v) with max depth == level: new x new and
				// new x shallower.
				for i := lo; i < hi; i++ {
					for j := 0; j < i; j++ {
						offer(g[i].ID, g[j].ID)
					}
				}
			} else {
				b.windowedPairs(g[:hi], lo, offer)
			}
		}
	}

	cands, _ := pool.Drain()
	for _, c := range cands {
		if _, exists := b.ops[c.key]; exists {
			continue
		}
		o := &op{key: c.key, errd: c.errd, sized: c.sized, prio: ratio(c.errd, c.sized)}
		b.ops[c.key] = o
		b.nodeOps[c.key[0]] = append(b.nodeOps[c.key[0]], c.key)
		b.nodeOps[c.key[1]] = append(b.nodeOps[c.key[1]], c.key)
		b.pushHeap(o.prio, heapEntry{c.key, o.prio})
	}
	return len(b.ops)
}

// windowedPairs handles oversized (label, depth) groups: nodes are sorted
// by a cheap structural feature and each new node is paired only with its
// PairWindow nearest neighbors in feature order.
func (b *builder) windowedPairs(g []*sketch.Node, newStart int, offer func(x, y int)) {
	feat := func(n *sketch.Node) float64 {
		f := float64(len(n.Edges)) * 1e6
		for _, e := range n.Edges {
			f += e.Avg
			f += float64(e.Child&1023) * 17
		}
		return f
	}
	sorted := append([]*sketch.Node(nil), g...)
	sort.Slice(sorted, func(i, j int) bool { return feat(sorted[i]) < feat(sorted[j]) })
	isNew := make(map[int]bool, len(g)-newStart)
	for _, n := range g[newStart:] {
		isNew[n.ID] = true
	}
	w := b.opts.PairWindow
	for i, n := range sorted {
		for j := i + 1; j < len(sorted) && j <= i+w; j++ {
			m := sorted[j]
			if isNew[n.ID] || isNew[m.ID] {
				offer(n.ID, m.ID)
			}
		}
	}
}
