// Package tsbuild implements the TreeSketch construction algorithm
// (TSBuild and CreatePool, Figures 5 and 6 of the paper).
//
// Starting from the count-stable summary — the zero-error TreeSketch —
// TSBuild performs agglomerative bottom-up clustering: it repeatedly merges
// the pair of same-label synopsis nodes with the best marginal-gain ratio
// errd/sized (least increase in squared error per byte of space saved)
// until the synopsis fits the space budget. Candidate merges are generated
// bottom-up by node depth (CreatePool) and kept in a bounded pool;
// sufficient statistics for merged clusters are recomputed exactly from the
// retained count-stable summary, mirroring the paper's remark that the
// algorithm accesses "only the relevant parts of the count-stable summary".
//
// The pool is maintained incrementally: after a merge, only candidates in
// the merged node's neighborhood are rewritten or re-evaluated — no per-merge
// rebuilds. When the pool drains to Lh with budget remaining it is restocked
// either by the paper's full CreatePool regenerate (the default, preserving
// the paper trajectory bit-for-bit) or by an incremental replenish over
// newly created nodes (Options.IncrementalRefill). Candidate evaluation is
// pure with respect to
// the builder state and fans out over a worker pool (Options.Workers):
// each evaluation replays the exact floating-point accumulation order of
// the sequential implementation, candidates are enumerated in fully sorted
// order (labels, depth levels, node IDs — never map iteration order), and
// every pool or heap mutation happens in the sequential reduction of a
// deterministically ordered batch. Equal seeds therefore produce
// bit-identical synopses at any worker count or GOMAXPROCS.
package tsbuild

import (
	"math"
	"sort"
	"time"

	"treesketch/internal/container"
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
)

// Options configures TSBuild. The zero value selects the defaults used in
// the paper's experimental study (Uh = 10000, Lh = 100).
type Options struct {
	// BudgetBytes is the target synopsis size S. Construction stops once
	// SizeBytes() <= BudgetBytes, or when no further merge is possible (the
	// label-split graph has been reached).
	BudgetBytes int
	// HeapUpper is Uh, the maximum number of candidate merge operations the
	// pool may hold. Defaults to 10000.
	HeapUpper int
	// HeapLower is Lh from Figure 5: when the pool shrinks below this bound
	// (and the budget is not yet met) the paper regenerates it with a full
	// CreatePool pass. That regenerate is kept as the default — it is now a
	// parallel batch evaluation, and it re-enumerates levels the bounded
	// first pass skipped — so builds reproduce the paper trajectory
	// bit-for-bit. Set IncrementalRefill to replace it with a cheaper
	// incremental replenish. Defaults to 100.
	HeapLower int
	// IncrementalRefill replaces the full CreatePool regenerate at the Lh
	// trigger with a replenish step that enumerates only pairs involving
	// nodes created by merges since the pool was last stocked — the one
	// class of candidates that rewriting inherited operations cannot
	// produce. This skips the rebuild cost but can follow a slightly
	// different merge trajectory than the paper's algorithm, because a full
	// regenerate also rediscovers pairs the bounded pool evicted or never
	// enumerated. Builds remain deterministic for any Workers setting
	// either way. A full rebuild still happens when the pool drains
	// completely with budget remaining.
	IncrementalRefill bool
	// GroupCap bounds the size of a (label, depth-prefix) group for which
	// all candidate pairs are enumerated. Larger groups are sorted by a
	// structural feature and paired within a sliding window of PairWindow
	// neighbors, keeping candidate generation near-linear on very regular
	// data (see DESIGN.md). Defaults to 128.
	GroupCap int
	// PairWindow is the window width used for oversized groups. Defaults
	// to 16.
	PairWindow int
	// MaxPairEvals caps the number of candidate evaluations per CreatePool
	// invocation. When the cap fires the truncation is reported through
	// Stats.PoolTruncated and the tsbuild.pool.truncated counter — never
	// silently. Defaults to 200000.
	MaxPairEvals int
	// Workers is the number of parallel candidate-evaluation workers.
	// Zero selects runtime.GOMAXPROCS(0). The build result is identical
	// for every value: evaluations are pure and all reductions are
	// order-independent.
	Workers int
	// Progress, when non-nil, receives construction milestones: one event
	// after every pool build, one every ProgressEvery merges, and a final
	// event when construction stops. Long builds are otherwise silent.
	Progress func(ProgressEvent)
	// ProgressEvery is the merge interval between Progress events. Defaults
	// to 1000.
	ProgressEvery int
	// Metrics receives the build's observability metrics (tsbuild.* phase
	// timings, heap counters, and gain-ratio histograms). Nil selects the
	// process-wide obs.Default registry.
	Metrics *obs.Registry
}

// ProgressEvent is one construction milestone reported through
// Options.Progress.
type ProgressEvent struct {
	// Merges and PoolBuilds are cumulative since Build started.
	Merges     int
	PoolBuilds int
	// SizeBytes is the current synopsis footprint; construction ends when
	// it reaches BudgetBytes (or no merge can shrink it further).
	SizeBytes   int
	BudgetBytes int
	// PoolSize is the number of candidate operations currently held.
	PoolSize int
	Elapsed  time.Duration
	// Final marks the last event of the build.
	Final bool
}

func (o Options) withDefaults() Options {
	if o.HeapUpper <= 0 {
		o.HeapUpper = 10000
	}
	if o.HeapLower < 0 {
		o.HeapLower = 100
	}
	if o.HeapLower == 0 {
		o.HeapLower = 100
	}
	if o.HeapUpper < o.HeapLower {
		o.HeapUpper = o.HeapLower
	}
	if o.GroupCap <= 0 {
		o.GroupCap = 128
	}
	if o.PairWindow <= 0 {
		o.PairWindow = 16
	}
	if o.MaxPairEvals <= 0 {
		o.MaxPairEvals = 200000
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 1000
	}
	return o
}

// Stats reports construction telemetry.
type Stats struct {
	InitialNodes  int
	InitialBytes  int
	FinalNodes    int
	FinalBytes    int
	Merges        int
	PoolBuilds    int
	PairEvals     int
	CycleRejects  int
	FinalSqErr    float64
	Elapsed       time.Duration
	BudgetReached bool

	// Heap telemetry. HeapPushes counts every candidate accepted into the
	// bounded CreatePool set or the merge-loop heap; HeapEvictions counts
	// candidates displaced from the bounded set by better ones;
	// MaxHeapSize is the largest merge-loop heap observed.
	HeapPushes    int
	HeapEvictions int
	MaxHeapSize   int

	// Incremental-pool telemetry. Reevals counts candidate evaluations
	// performed after the initial pool construction — neighborhood rewrites
	// after a merge plus lazy re-evaluation of dirty candidates — i.e. the
	// work the incremental maintenance does instead of full rebuilds.
	// PoolReplenishes counts incremental restocks of a depleted pool (the
	// Lh trigger, under Options.IncrementalRefill). PoolRebuilds counts
	// CreatePool invocations beyond the first (PoolBuilds - 1).
	// PoolTruncated counts CreatePool or replenish passes that hit the
	// MaxPairEvals cap and dropped candidate pairs. StalePops counts heap
	// entries discarded because their operation was superseded (merged
	// endpoint or newer evaluation) after the entry was pushed.
	Reevals         int
	PoolReplenishes int
	PoolRebuilds    int
	PoolTruncated   int
	StalePops       int
}

// Build compresses the count-stable summary st down to opts.BudgetBytes and
// returns the resulting TreeSketch (compacted: dense IDs, no tombstones).
func Build(st *stable.Synopsis, opts Options) (*sketch.Sketch, Stats) {
	opts = opts.withDefaults()
	reg := obs.Or(opts.Metrics)
	buildSpan := reg.StartSpan("tsbuild.build")
	start := time.Now() //lint:nondet wall-clock feeds Stats.Elapsed telemetry only, never the synopsis
	b := newBuilder(st, opts)
	stats := Stats{
		InitialNodes: b.sk.NumNodes(),
		InitialBytes: b.size,
	}
	progress := func(final bool) {
		if opts.Progress == nil {
			return
		}
		opts.Progress(ProgressEvent{
			Merges:      stats.Merges,
			PoolBuilds:  stats.PoolBuilds,
			SizeBytes:   b.size,
			BudgetBytes: opts.BudgetBytes,
			PoolSize:    len(b.ops),
			Elapsed:     time.Since(start), //lint:nondet elapsed time is reported to the progress callback, not used in build decisions
			Final:       final,
		})
	}

	for b.size > opts.BudgetBytes {
		poolSpan := reg.StartSpan("tsbuild.create_pool")
		n := b.createPool()
		poolSpan.End()
		stats.PoolBuilds++
		if stats.PoolBuilds > 1 {
			b.poolRebuilds++
		}
		if n == 0 {
			break
		}
		progress(false)
		// Incremental maintenance (afterMerge) keeps the pool stocked with
		// rewritten and re-scored candidates between merges. When it still
		// shrinks to Lh: regenerate with a full CreatePool pass (Figure 5,
		// line 5 — the default), or, under IncrementalRefill, replenish in
		// place with pairs for the nodes merges created and keep draining.
		lower := opts.HeapLower
		if n <= lower {
			lower = 0
		}
		progressed := false
		mergeSpan := reg.StartSpan("tsbuild.merge_loop")
		for b.size > opts.BudgetBytes && len(b.ops) > 0 {
			if len(b.ops) <= lower {
				if !opts.IncrementalRefill {
					break // regenerate via the outer CreatePool pass
				}
				replSpan := reg.StartSpan("tsbuild.replenish_pool")
				b.replenishPool()
				replSpan.End()
				progress(false)
				lower = opts.HeapLower
				if len(b.ops) <= lower {
					lower = 0 // replenish found too little; drain to empty
				}
			}
			if b.step() {
				stats.Merges++
				progressed = true
				if stats.Merges%opts.ProgressEvery == 0 {
					progress(false)
				}
			} else {
				break
			}
		}
		mergeSpan.End()
		if !progressed {
			break
		}
	}

	compactSpan := reg.StartSpan("tsbuild.compact")
	out := b.sk.Compact()
	compactSpan.End()
	stats.FinalNodes = out.NumNodes()
	stats.FinalBytes = out.SizeBytes()
	stats.FinalSqErr = out.SqErr()
	stats.PairEvals = b.pairEvals
	stats.CycleRejects = b.cycleRejects
	stats.HeapPushes = b.heapPushes
	stats.HeapEvictions = b.heapEvictions
	stats.MaxHeapSize = b.maxHeapSize
	stats.Reevals = b.reevals
	stats.PoolReplenishes = b.poolReplenishes
	stats.PoolRebuilds = b.poolRebuilds
	stats.PoolTruncated = b.poolTruncated
	stats.StalePops = b.stalePops
	stats.Elapsed = time.Since(start) //lint:nondet elapsed time is telemetry in Stats, never an input to merge decisions
	stats.BudgetReached = stats.FinalBytes <= opts.BudgetBytes
	progress(true)
	buildSpan.End()
	b.publish(reg, stats)
	return out, stats
}

// publish folds one build's telemetry into the metrics registry under the
// tsbuild.* namespace.
func (b *builder) publish(reg *obs.Registry, stats Stats) {
	reg.Counter("tsbuild.builds").Inc()
	reg.Counter("tsbuild.merges").Add(int64(stats.Merges))
	reg.Counter("tsbuild.pool.builds").Add(int64(stats.PoolBuilds))
	reg.Counter("tsbuild.pool.rebuilds").Add(int64(stats.PoolRebuilds))
	reg.Counter("tsbuild.pool.replenishes").Add(int64(stats.PoolReplenishes))
	reg.Counter("tsbuild.pool.reevals").Add(int64(stats.Reevals))
	reg.Counter("tsbuild.pool.truncated").Add(int64(stats.PoolTruncated))
	reg.Counter("tsbuild.pool.pair_evals").Add(int64(stats.PairEvals))
	reg.Counter("tsbuild.pool.cycle_rejects").Add(int64(stats.CycleRejects))
	reg.Counter("tsbuild.pool.op_dupes").Add(int64(b.opDupes))
	reg.Counter("tsbuild.heap.pushes").Add(int64(stats.HeapPushes))
	reg.Counter("tsbuild.heap.evictions").Add(int64(stats.HeapEvictions))
	reg.Counter("tsbuild.heap.stale_pops").Add(int64(stats.StalePops))
	reg.Gauge("tsbuild.heap.max_size").SetMax(int64(stats.MaxHeapSize))
	reg.Histogram("tsbuild.bytes_saved").Observe(float64(stats.InitialBytes - stats.FinalBytes))
}

// opKey identifies a candidate merge by its (smaller, larger) node IDs.
type opKey [2]int

func keyOf(a, b int) opKey {
	if a > b {
		a, b = b, a
	}
	return opKey{a, b}
}

// op is a candidate merge operation with its current evaluation. gen is the
// generation at which the operation was last scored; heap entries carry the
// generation they were pushed with, so a popped entry whose generation no
// longer matches the registry is recognized as superseded.
type op struct {
	key   opKey
	errd  float64
	sized int
	prio  float64 // errd/sized as pushed into the heap
	gen   int64   // generation of the evaluation behind prio
	dirty bool    // neighborhood changed since last evaluation
}

type heapEntry struct {
	key  opKey
	prio float64
	gen  int64
}

type builder struct {
	st   *stable.Synopsis
	sk   *sketch.Sketch
	opts Options

	clusterOf []int   // stable class ID -> live sketch node ID
	parents   [][]int // sketch node ID -> sorted live parent IDs
	size      int     // current SizeBytes, maintained incrementally

	// The merge-loop heap orders entries by float priority alone; among
	// equal priorities pop order is a function of the push sequence. Every
	// push happens in the sequential reduction of a deterministically
	// ordered evaluation batch, so pop order — and hence the merge
	// trajectory — is identical at any worker count.
	ops     map[opKey]*op
	nodeOps map[int][]opKey // node ID -> keys of ops referencing it
	heap    container.MinHeap[heapEntry]
	gen     int64 // monotonically increasing op generation

	// Per-worker evaluation contexts; ctxs[0] doubles as the scratch space
	// for the sequential apply path.
	ctxs []*evalCtx

	pairEvals    int
	cycleRejects int

	reevals         int
	poolReplenishes int
	poolRebuilds    int
	poolTruncated   int
	stalePops       int

	// enumeratedTo marks the node-ID horizon of the last full or
	// incremental pool enumeration; replenishPool only pairs nodes at or
	// beyond it.
	enumeratedTo int

	heapPushes    int
	heapEvictions int
	maxHeapSize   int
	opDupes       int
	gainHist      *obs.Histogram

	rewriteOthers []int   // scratch for afterMerge
	rewritePairs  []opKey // scratch for afterMerge
}

// pushHeap wraps heap insertion with the telemetry the Stats heap fields
// report.
func (b *builder) pushHeap(e heapEntry) {
	b.heap.Push(e.prio, e)
	b.heapPushes++
	if n := b.heap.Len(); n > b.maxHeapSize {
		b.maxHeapSize = n
	}
}

func newBuilder(st *stable.Synopsis, opts Options) *builder {
	sk := sketch.FromStable(st)
	b := &builder{
		st:        st,
		sk:        sk,
		opts:      opts,
		clusterOf: make([]int, len(st.Nodes)),
		parents:   make([][]int, len(st.Nodes)),
		size:      sk.SizeBytes(),
		ops:       make(map[opKey]*op),
		nodeOps:   make(map[int][]opKey),
		gainHist:  obs.Or(opts.Metrics).Histogram("tsbuild.merge.gain_ratio"),
	}
	for i := range b.clusterOf {
		b.clusterOf[i] = i
	}
	// Nodes iterate in ascending ID order, so each child's parent list is
	// built already sorted.
	for _, u := range sk.Nodes {
		for _, e := range u.Edges {
			b.parents[e.Child] = append(b.parents[e.Child], u.ID)
		}
	}
	for w := 0; w < workerCount(opts.Workers); w++ {
		b.ctxs = append(b.ctxs, newEvalCtx(b))
	}
	return b
}

func (b *builder) alive(id int) bool {
	return id >= 0 && id < len(b.sk.Nodes) && b.sk.Nodes[id] != nil
}

// combinedEdgeStats computes the sufficient statistics of the single edge
// from a cluster with the given stable members to the hypothetical union of
// target clusters t1 and t2 (t2 < 0 means just t1). It reads only immutable
// stable-summary data and the cluster assignment, so concurrent evaluation
// workers may call it freely between merges.
func (b *builder) combinedEdgeStats(members []int, t1, t2 int) (sum, sumSq, minK float64) {
	first := true
	for _, sid := range members {
		sn := b.st.Nodes[sid]
		k := 0
		for _, e := range sn.Edges {
			c := b.clusterOf[e.Child]
			if c == t1 || c == t2 {
				k += e.K
			}
		}
		if first || float64(k) < minK {
			minK = float64(k)
		}
		first = false
		if k > 0 {
			kf := float64(k)
			c := float64(sn.Count)
			sum += kf * c
			sumSq += kf * kf * c
		}
	}
	return sum, sumSq, minK
}

func edgeSq(e sketch.Edge, count int) float64 {
	return e.SumSq - e.Sum*e.Sum/float64(count)
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// apply performs the merge of x and y, returning the new node's ID. The
// caller must have verified admissibility via evaluate.
func (b *builder) apply(x, y int) int {
	nx, ny := b.sk.Nodes[x], b.sk.Nodes[y]
	members := mergeSorted(nx.Members, ny.Members)

	w := &sketch.Node{
		ID:      len(b.sk.Nodes),
		Label:   nx.Label,
		Members: members,
	}
	b.sk.Nodes = append(b.sk.Nodes, w)
	b.parents = append(b.parents, nil)
	for _, sid := range members {
		b.clusterOf[sid] = w.ID
	}
	c := b.ctxs[0]
	w.Count, w.Depth = c.gather(members)
	w.Edges = c.gatheredEdges(len(members), w.Count)

	removedEdges := len(nx.Edges) + len(ny.Edges)
	addedEdges := len(w.Edges)

	// Rewire parents: drop p->x and p->y, add p->w with exact stats.
	pset := append([]int(nil), c.unionParents(x, y)...)
	b.parents[w.ID] = pset
	for _, p := range pset {
		pn := b.sk.Nodes[p]
		kept := pn.Edges[:0]
		for _, e := range pn.Edges {
			if e.Child == x || e.Child == y {
				removedEdges++
				continue
			}
			kept = append(kept, e)
		}
		// clusterOf already maps the merged members to w, so the combined
		// edge is measured directly against the new cluster. w has the
		// maximum live ID, so appending keeps the edge list sorted.
		sum, sumSq, minK := b.combinedEdgeStats(pn.Members, w.ID, -1)
		kept = append(kept, sketch.Edge{Child: w.ID, Avg: sum / float64(pn.Count), Sum: sum, SumSq: sumSq, MinK: minK})
		pn.Edges = kept
		addedEdges++
	}

	// Children: their (sorted) parent lists lose x and y and gain w, which
	// has the maximum ID, so filtering plus one append preserves order.
	for _, e := range w.Edges {
		ps := b.parents[e.Child][:0]
		for _, p := range b.parents[e.Child] {
			if p != x && p != y {
				ps = append(ps, p)
			}
		}
		b.parents[e.Child] = append(ps, w.ID)
	}

	b.sk.Nodes[x] = nil
	b.sk.Nodes[y] = nil
	b.parents[x] = nil
	b.parents[y] = nil

	b.size -= sketch.NodeBytes + sketch.EdgeBytes*(removedEdges-addedEdges)
	return w.ID
}

// step pops candidate operations until one can be applied; it returns false
// when the pool is exhausted without an applicable merge.
//
// Stale heap entries are impossible to apply incorrectly by construction:
// a candidate whose endpoint merged since the push was removed from the
// registry by afterMerge, so its entry pops to a missing op and is
// discarded; a candidate re-scored since the push carries an older
// generation and a different priority, and is discarded too. The one
// surviving duplicate case — a re-scored candidate whose fresh evaluation
// produced the bit-identical priority — is safe to act on, because apply
// always reads the registry's current errd/sized, never the heap entry's.
// The priority comparison is exact: entry.prio is a copy of o.prio made at
// push time, so equality means "same score", with no float arithmetic in
// between.
func (b *builder) step() bool {
	for {
		entry, ok := b.heap.PopMin()
		if !ok {
			// Registry entries may remain that lost their heap copies
			// (shouldn't happen, but don't loop forever).
			b.ops = make(map[opKey]*op)
			b.nodeOps = make(map[int][]opKey)
			return false
		}
		o, exists := b.ops[entry.key]
		if !exists || (o.gen != entry.gen && o.prio != entry.prio) {
			b.stalePops++
			continue // superseded operation or outdated heap copy
		}
		x, y := o.key[0], o.key[1]
		if !b.alive(x) || !b.alive(y) {
			// Defensive: afterMerge removes ops on merged endpoints, so a
			// live registry entry should never reference a dead node.
			b.stalePops++
			b.removeOp(o.key)
			continue
		}
		c := b.ctxs[0]
		if o.dirty {
			r := c.evaluate(x, y)
			b.pairEvals++
			b.reevals++
			if r.cycle {
				b.cycleRejects++
			}
			if !r.ok {
				b.removeOp(o.key)
				continue
			}
			o.errd, o.sized, o.dirty = r.errd, r.sized, false
			o.prio = ratio(r.errd, r.sized)
			b.gen++
			o.gen = b.gen
			b.pushHeap(heapEntry{o.key, o.prio, o.gen})
			continue
		}
		// Re-check admissibility at application time: the graph may have
		// changed in ways the dirty-marking does not cover (reachability).
		if c.reaches(x, y) || c.reaches(y, x) {
			b.cycleRejects++
			b.removeOp(o.key)
			continue
		}
		b.removeOp(o.key)
		b.gainHist.Observe(o.prio)
		wid := b.apply(x, y)
		b.afterMerge(x, y, wid)
		return true
	}
}

func ratio(errd float64, sized int) float64 {
	if sized <= 0 {
		return math.Inf(1)
	}
	return errd / float64(sized)
}

// afterMerge maintains the pool incrementally (Figure 5, lines 9-14):
// operations that referenced the merged nodes are rewritten to pair the
// surviving endpoint with w and re-evaluated in one parallel batch, and
// operations in the affected neighborhood (parents and children of w) are
// marked dirty for lazy re-evaluation when popped. No per-merge rebuild is
// needed; the pool is only restocked when it drains to Lh.
func (b *builder) afterMerge(x, y, wid int) {
	// Phase 1 — pure scan: collect the unique rewritten pairs (other, wid)
	// that ops touching x or y would produce, without mutating anything.
	// Evaluation is read-only with respect to the registry, so the batch
	// can be scored in parallel before the registry is rewritten.
	touched := append([]opKey(nil), b.nodeOps[x]...)
	touched = append(touched, b.nodeOps[y]...)
	pairs := b.rewritePairs[:0]
	for _, k := range touched {
		other := -1
		switch {
		case k[0] == x || k[0] == y:
			other = k[1]
		case k[1] == x || k[1] == y:
			other = k[0]
		}
		if other == x || other == y || other == wid || !b.alive(other) {
			continue
		}
		if b.sk.Nodes[other].Label != b.sk.Nodes[wid].Label {
			continue
		}
		nk := keyOf(other, wid)
		dup := false
		for _, seen := range pairs {
			if seen == nk {
				dup = true
				break
			}
		}
		if !dup {
			pairs = append(pairs, nk)
		}
	}
	b.rewritePairs = pairs

	// Re-evaluate the rewritten candidates as one batch — this is the bulk
	// of the incremental maintenance work, and it parallelizes.
	res := b.evalPairs(pairs)
	b.reevals += len(pairs)

	// Phase 2 — sequential rewrite: replay the registry mutations in
	// touched order, interleaving each removal with the installation of
	// its rewritten op (the swap-removals in removeOp make nodeOps slice
	// order sensitive to this interleaving, and future rewrite batches
	// inherit that order).
	delete(b.nodeOps, x)
	delete(b.nodeOps, y)
	for _, k := range touched {
		if _, exists := b.ops[k]; !exists {
			continue // the (x,y) op itself appears twice in touched
		}
		b.removeOp(k)
		other := -1
		switch {
		case k[0] == x || k[0] == y:
			other = k[1]
		case k[1] == x || k[1] == y:
			other = k[0]
		}
		if other == x || other == y || other == wid || !b.alive(other) {
			continue
		}
		if b.sk.Nodes[other].Label != b.sk.Nodes[wid].Label {
			continue
		}
		nk := keyOf(other, wid)
		if _, exists := b.ops[nk]; exists {
			b.opDupes++
			continue
		}
		for i, pk := range pairs {
			if pk == nk {
				if res[i].ok {
					b.installOp(nk, res[i].errd, res[i].sized)
				}
				break
			}
		}
	}

	// Affected neighborhood: ops referencing parents or children of w.
	// Ops keep their existing heap copy; when popped while dirty they are
	// re-evaluated and re-pushed with the fresh ratio.
	mark := func(id int) {
		for _, k := range b.nodeOps[id] {
			if o, exists := b.ops[k]; exists {
				o.dirty = true
			}
		}
	}
	for _, p := range b.parents[wid] {
		mark(p)
	}
	for _, e := range b.sk.Nodes[wid].Edges {
		mark(e.Child)
	}
}

// installOp registers an evaluated candidate and pushes its heap entry with
// a fresh generation.
func (b *builder) installOp(k opKey, errd float64, sized int) {
	b.gen++
	o := &op{key: k, errd: errd, sized: sized, prio: ratio(errd, sized), gen: b.gen}
	b.ops[k] = o
	b.nodeOps[k[0]] = append(b.nodeOps[k[0]], k)
	b.nodeOps[k[1]] = append(b.nodeOps[k[1]], k)
	b.pushHeap(heapEntry{k, o.prio, o.gen})
}

func (b *builder) removeOp(k opKey) {
	delete(b.ops, k)
	for _, id := range k {
		keys := b.nodeOps[id]
		for i, kk := range keys {
			if kk == k {
				keys[i] = keys[len(keys)-1]
				b.nodeOps[id] = keys[:len(keys)-1]
				break
			}
		}
	}
}

// cand is a CreatePool candidate before installation.
type cand struct {
	key   opKey
	errd  float64
	sized int
}

// createPool implements CreatePool (Figure 6): it scans same-label node
// pairs bottom-up by depth, evaluates them level by level in parallel
// batches, and retains the HeapUpper best by marginal-gain ratio. It
// replaces the current pool and returns the number of operations installed.
//
// The bounded set sees candidates in enumeration order — the parallel batch
// is reduced sequentially in pair order — so retention is independent of
// evaluation scheduling.
func (b *builder) createPool() int {
	b.ops = make(map[opKey]*op)
	b.nodeOps = make(map[int][]opKey)
	b.heap.Reset()

	pool := container.NewBoundedMinSet[cand](b.opts.HeapUpper)
	evalBudget := b.opts.MaxPairEvals
	truncated := false

	var batch []opKey
	flush := func() {
		if len(batch) == 0 {
			return
		}
		res := b.evalPairs(batch)
		for i, r := range res {
			if !r.ok {
				continue
			}
			c := cand{key: batch[i], errd: r.errd, sized: r.sized}
			wasFull := pool.Full()
			if pool.Push(ratio(c.errd, c.sized), c) {
				b.heapPushes++
				if wasFull {
					b.heapEvictions++
				}
			}
		}
		batch = batch[:0]
	}
	offer := func(x, y int) {
		if evalBudget <= 0 {
			truncated = true
			return
		}
		evalBudget--
		batch = append(batch, keyOf(x, y))
	}

	// Group live non-root nodes by label, each group sorted by depth.
	groups := make(map[string][]*sketch.Node)
	height := 0
	for _, u := range b.sk.Nodes {
		if u == nil || u.ID == b.sk.Root {
			continue
		}
		groups[u.Label] = append(groups[u.Label], u)
		if u.Depth > height {
			height = u.Depth
		}
	}
	labels := make([]string, 0, len(groups))
	for l, g := range groups {
		if len(g) < 2 {
			delete(groups, l)
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].Depth != g[j].Depth {
				return g[i].Depth < g[j].Depth
			}
			return g[i].ID < g[j].ID
		})
		labels = append(labels, l)
	}
	sort.Strings(labels)

	for level := 0; level <= height; level++ {
		if pool.Full() || evalBudget <= 0 {
			break
		}
		for _, l := range labels {
			g := groups[l]
			// prefix: nodes with Depth <= level; newStart: first with
			// Depth == level.
			hi := sort.Search(len(g), func(i int) bool { return g[i].Depth > level })
			lo := sort.Search(len(g), func(i int) bool { return g[i].Depth >= level })
			if lo == hi {
				continue // no new nodes at this level for this label
			}
			if hi <= b.opts.GroupCap {
				// All pairs (u, v) with max depth == level: new x new and
				// new x shallower.
				for i := lo; i < hi; i++ {
					for j := 0; j < i; j++ {
						offer(g[i].ID, g[j].ID)
					}
				}
			} else {
				b.windowedPairs(g[:hi], lo, offer)
			}
		}
		// One parallel evaluation batch per level keeps the bottom-up
		// admission order of Figure 6: the bounded set sees every level-d
		// candidate before any level-(d+1) candidate.
		flush()
	}
	flush()
	if truncated {
		b.poolTruncated++
	}

	cands, _ := pool.Drain()
	for _, c := range cands {
		if _, exists := b.ops[c.key]; exists {
			continue
		}
		b.installOp(c.key, c.errd, c.sized)
	}
	b.enumeratedTo = len(b.sk.Nodes)
	return len(b.ops)
}

// replenishPool restocks a depleted pool incrementally (the Lh trigger of
// Figure 5, line 5, without the full CreatePool regenerate; used under
// Options.IncrementalRefill): it enumerates only candidate pairs involving
// nodes created by merges since the last enumeration horizon. Those are the
// pairs that rewriting inherited operations cannot produce — two merge
// products never paired before, or a merge product against a node it
// inherited no operation with. (Unlike a full regenerate it does not revisit
// pairs the bounded pool evicted or levels the first pass skipped, which is
// why it can deviate from the paper trajectory.) Existing operations, their
// scores, and their heap entries are left untouched. Returns the number of
// operations added.
func (b *builder) replenishPool() int {
	newStart := b.enumeratedTo
	b.enumeratedTo = len(b.sk.Nodes)
	if newStart >= len(b.sk.Nodes) {
		return 0
	}
	b.poolReplenishes++

	// Group live non-root nodes by label, ascending ID, but only for
	// labels that gained a node at or beyond the horizon.
	groups := make(map[string][]*sketch.Node)
	for _, u := range b.sk.Nodes[newStart:] {
		if u == nil || u.ID == b.sk.Root {
			continue
		}
		groups[u.Label] = nil
	}
	if len(groups) == 0 {
		return 0
	}
	labels := make([]string, 0, len(groups))
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, u := range b.sk.Nodes {
		if u == nil || u.ID == b.sk.Root {
			continue
		}
		if _, wanted := groups[u.Label]; wanted {
			groups[u.Label] = append(groups[u.Label], u)
		}
	}

	room := b.opts.HeapUpper - len(b.ops)
	if room <= 0 {
		return 0
	}
	pool := container.NewBoundedMinSet[cand](room)
	evalBudget := b.opts.MaxPairEvals
	truncated := false

	var batch []opKey
	offer := func(x, y int) {
		if _, exists := b.ops[keyOf(x, y)]; exists {
			return // already maintained incrementally
		}
		if evalBudget <= 0 {
			truncated = true
			return
		}
		evalBudget--
		batch = append(batch, keyOf(x, y))
	}
	for _, l := range labels {
		g := groups[l]
		if len(g) < 2 {
			continue
		}
		// Nodes are in ascending ID order; the new ones form the tail.
		lo := sort.Search(len(g), func(i int) bool { return g[i].ID >= newStart })
		if lo == len(g) {
			continue
		}
		if len(g) <= b.opts.GroupCap {
			// All pairs with at least one new endpoint: new x old and
			// new x new, enumerated in ascending ID order.
			for i := lo; i < len(g); i++ {
				for j := 0; j < i; j++ {
					offer(g[i].ID, g[j].ID)
				}
			}
		} else {
			b.windowedPairs(g, lo, offer)
		}
	}
	if len(batch) > 0 {
		res := b.evalPairs(batch)
		for i, r := range res {
			if !r.ok {
				continue
			}
			c := cand{key: batch[i], errd: r.errd, sized: r.sized}
			wasFull := pool.Full()
			if pool.Push(ratio(c.errd, c.sized), c) {
				b.heapPushes++
				if wasFull {
					b.heapEvictions++
				}
			}
		}
	}
	if truncated {
		b.poolTruncated++
	}

	added := 0
	cands, _ := pool.Drain()
	for _, c := range cands {
		if _, exists := b.ops[c.key]; exists {
			continue
		}
		b.installOp(c.key, c.errd, c.sized)
		added++
	}
	return added
}

// windowedPairs handles oversized (label, depth) groups: nodes are sorted
// by a cheap structural feature and each new node is paired only with its
// PairWindow nearest neighbors in feature order. Feature ties sort by node
// ID so the pairing — and hence the candidate pool — is deterministic.
func (b *builder) windowedPairs(g []*sketch.Node, newStart int, offer func(x, y int)) {
	feat := func(n *sketch.Node) float64 {
		f := float64(len(n.Edges)) * 1e6
		for _, e := range n.Edges {
			f += e.Avg
			f += float64(e.Child&1023) * 17
		}
		return f
	}
	type featNode struct {
		f float64
		n *sketch.Node
	}
	sorted := make([]featNode, len(g))
	for i, n := range g {
		sorted[i] = featNode{feat(n), n}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].f != sorted[j].f {
			return sorted[i].f < sorted[j].f
		}
		return sorted[i].n.ID < sorted[j].n.ID
	})
	isNew := make(map[int]bool, len(g)-newStart)
	for _, n := range g[newStart:] {
		isNew[n.ID] = true
	}
	w := b.opts.PairWindow
	for i, fn := range sorted {
		for j := i + 1; j < len(sorted) && j <= i+w; j++ {
			m := sorted[j].n
			if isNew[fn.n.ID] || isNew[m.ID] {
				offer(fn.n.ID, m.ID)
			}
		}
	}
}
