package sketch

import (
	"testing"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestFingerprintDistinguishesStatChanges(t *testing.T) {
	st := stable.Build(xmltree.MustCompact("r(a(x),a(x,x),b(y))"))
	sk := FromStable(st)
	fp := sk.Fingerprint()
	if fp2 := FromStable(st).Fingerprint(); fp2 != fp {
		t.Fatalf("identical sketches fingerprint differently: %#x != %#x", fp, fp2)
	}
	mut := FromStable(st)
	for _, n := range mut.Nodes {
		if len(n.Edges) > 0 {
			n.Edges[0].SumSq += 1e-9 // a bit-level stat change must be visible
			break
		}
	}
	if mut.Fingerprint() == fp {
		t.Fatal("fingerprint ignored an edge statistic change")
	}
	lab := FromStable(st)
	lab.Nodes[len(lab.Nodes)-1].Label += "!"
	if lab.Fingerprint() == fp {
		t.Fatal("fingerprint ignored a label change")
	}
}

func TestFingerprintSeesTombstones(t *testing.T) {
	st := stable.Build(xmltree.MustCompact("r(a(x),b(y))"))
	sk := FromStable(st)
	fp := sk.Fingerprint()
	var victim int
	for _, n := range sk.Nodes {
		if n != nil && n.Label == "x" {
			victim = n.ID
		}
	}
	// Tombstone a leaf (and drop the edge into it to keep the graph sane).
	sk.Nodes[victim] = nil
	for _, n := range sk.Nodes {
		if n == nil {
			continue
		}
		for i, e := range n.Edges {
			if e.Child == victim {
				n.Edges = append(n.Edges[:i], n.Edges[i+1:]...)
				break
			}
		}
	}
	if sk.Fingerprint() == fp {
		t.Fatal("fingerprint ignored a tombstoned node")
	}
}
