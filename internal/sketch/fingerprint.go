package sketch

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit FNV-1a hash of the synopsis' canonical byte
// serialization: nodes in ID order with label, count, depth, member list,
// and edges with the exact IEEE-754 bit patterns of their sufficient
// statistics. Two synopses have equal fingerprints iff they are
// structurally identical with bit-identical statistics, which is the
// property the TSBuild determinism checks assert across worker counts and
// GOMAXPROCS settings. Tombstoned entries hash as explicit markers, so a
// compacted synopsis and its uncompacted origin fingerprint differently;
// compare compacted synopses.
func (s *Sketch) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wInt(s.Root)
	wInt(len(s.Nodes))
	for _, n := range s.Nodes {
		if n == nil {
			wInt(-1)
			continue
		}
		wInt(n.ID)
		wInt(len(n.Label))
		h.Write([]byte(n.Label))
		wInt(n.Count)
		wInt(n.Depth)
		wInt(len(n.Members))
		for _, m := range n.Members {
			wInt(m)
		}
		wInt(len(n.Edges))
		for _, e := range n.Edges {
			wInt(e.Child)
			wFloat(e.Avg)
			wFloat(e.Sum)
			wFloat(e.SumSq)
			wFloat(e.MinK)
		}
	}
	return h.Sum64()
}

// Combine folds an ordered sequence of 64-bit tokens (typically sketch
// fingerprints plus structural counters) into a single fingerprint via
// FNV-1a over their little-endian encodings. The tier stack uses it to
// fingerprint a whole base+delta view so compaction determinism is
// checkable across worker counts with one value.
func Combine(tokens ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, t := range tokens {
		binary.LittleEndian.PutUint64(buf[:], t)
		h.Write(buf[:])
	}
	return h.Sum64()
}
