package sketch

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// fileHeader guards against decoding unrelated gob streams.
const fileHeader = "treesketch-synopsis-v1"

// Encode serializes the sketch (compacted: tombstones dropped) to w.
func (sk *Sketch) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(fileHeader); err != nil {
		return fmt.Errorf("sketch: encode header: %w", err)
	}
	out := sk.Compact()
	if err := enc.Encode(out.Root); err != nil {
		return fmt.Errorf("sketch: encode root: %w", err)
	}
	if err := enc.Encode(out.Nodes); err != nil {
		return fmt.Errorf("sketch: encode nodes: %w", err)
	}
	return bw.Flush()
}

// Decode deserializes a sketch written by Encode and validates it.
func Decode(r io.Reader) (*Sketch, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var header string
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("sketch: decode header: %w", err)
	}
	if header != fileHeader {
		return nil, fmt.Errorf("sketch: bad file header %q", header)
	}
	sk := &Sketch{}
	if err := dec.Decode(&sk.Root); err != nil {
		return nil, fmt.Errorf("sketch: decode root: %w", err)
	}
	if err := dec.Decode(&sk.Nodes); err != nil {
		return nil, fmt.Errorf("sketch: decode nodes: %w", err)
	}
	if err := sk.Check(); err != nil {
		return nil, fmt.Errorf("sketch: decoded synopsis invalid: %w", err)
	}
	return sk, nil
}

// SaveFile writes the sketch to a file.
func (sk *Sketch) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sketch: %w", err)
	}
	if err := sk.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a sketch from a file written by SaveFile.
func LoadFile(path string) (*Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sketch: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
