package sketch

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, _, sk := fromDoc("bib(author*3(name,paper*2(title,year)),author(name))")
	var buf bytes.Buffer
	if err := sk.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != sk.NumNodes() || back.NumEdges() != sk.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumNodes(), back.NumEdges(), sk.NumNodes(), sk.NumEdges())
	}
	if math.Abs(back.SqErr()-sk.SqErr()) > 1e-12 {
		t.Fatalf("SqErr changed: %g vs %g", back.SqErr(), sk.SqErr())
	}
	if back.Nodes[back.Root].Label != sk.Nodes[sk.Root].Label {
		t.Fatal("root changed")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("accepted garbage")
	}
	var buf bytes.Buffer
	buf.WriteString("\x00\x01\x02")
	if _, err := Decode(&buf); err == nil {
		t.Fatal("accepted binary garbage")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b),a(b,b))")
	sk := FromStable(stable.Build(tr))
	path := filepath.Join(t.TempDir(), "syn.bin")
	if err := sk.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalElements() != sk.TotalElements() {
		t.Fatalf("elements %d, want %d", back.TotalElements(), sk.TotalElements())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("loaded missing file")
	}
}

func TestEncodeCompactsTombstones(t *testing.T) {
	_, _, sk := fromDoc("r(a,b)")
	// Tombstone b by hand.
	var bID int
	for _, u := range sk.Nodes {
		if u != nil && u.Label == "b" {
			bID = u.ID
		}
	}
	rn := sk.Nodes[sk.Root]
	kept := rn.Edges[:0]
	for _, e := range rn.Edges {
		if e.Child != bID {
			kept = append(kept, e)
		}
	}
	rn.Edges = kept
	sk.Nodes[bID] = nil

	var buf bytes.Buffer
	if err := sk.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != back.NumNodes() {
		t.Fatal("decoded sketch has holes")
	}
}
