package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func fromDoc(src string) (*xmltree.Tree, *stable.Synopsis, *Sketch) {
	tr := xmltree.MustCompact(src)
	s := stable.Build(tr)
	return tr, s, FromStable(s)
}

func TestFromStableIsZeroError(t *testing.T) {
	_, _, sk := fromDoc("r(a(b(c),b(c,c,c,c)),a(b(c),b(c,c,c,c)))")
	if sq := sk.SqErr(); sq != 0 {
		t.Fatalf("SqErr = %g, want 0", sq)
	}
	if err := sk.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFromStablePreservesCountsAndSize(t *testing.T) {
	tr, s, sk := fromDoc("bib(author*3(name,paper*2(title,year),book))")
	if sk.TotalElements() != tr.Size() {
		t.Fatalf("TotalElements = %d, want %d", sk.TotalElements(), tr.Size())
	}
	if sk.NumNodes() != s.NumNodes() || sk.NumEdges() != s.NumEdges() {
		t.Fatalf("nodes/edges = %d/%d, want %d/%d", sk.NumNodes(), sk.NumEdges(), s.NumNodes(), s.NumEdges())
	}
	if sk.SizeBytes() != s.SizeBytes() {
		t.Fatalf("SizeBytes = %d, want %d", sk.SizeBytes(), s.SizeBytes())
	}
	if sk.Height() != s.Height() {
		t.Fatalf("Height = %d, want %d", sk.Height(), s.Height())
	}
}

func TestNodeSqErrManual(t *testing.T) {
	// A cluster of 2 elements with child counts {1, 4} along one edge:
	// avg 2.5, squared error = (1-2.5)^2 + (4-2.5)^2 = 4.5.
	n := &Node{ID: 0, Label: "a", Count: 2, Edges: []Edge{{Child: 1, Avg: 2.5, Sum: 5, SumSq: 17}}}
	if sq := n.SqErr(); math.Abs(sq-4.5) > 1e-12 {
		t.Fatalf("SqErr = %g, want 4.5", sq)
	}
}

func TestEdgeTo(t *testing.T) {
	n := &Node{Edges: []Edge{{Child: 2, Avg: 1}, {Child: 5, Avg: 3}}}
	if e, ok := n.EdgeTo(5); !ok || e.Avg != 3 {
		t.Fatalf("EdgeTo(5) = %+v,%v", e, ok)
	}
	if _, ok := n.EdgeTo(3); ok {
		t.Fatal("EdgeTo(3) found a missing edge")
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	_, _, sk := fromDoc("r(a(b),c(b))")
	// Kill node "c" and its edge by hand, simulating a merge tombstone.
	var cID int
	for _, u := range sk.Nodes {
		if u != nil && u.Label == "c" {
			cID = u.ID
		}
	}
	rootN := sk.Nodes[sk.Root]
	kept := rootN.Edges[:0]
	for _, e := range rootN.Edges {
		if e.Child != cID {
			kept = append(kept, e)
		}
	}
	rootN.Edges = kept
	rootN.Count = 1
	sk.Nodes[cID] = nil

	out := sk.Compact()
	if out.NumNodes() != sk.NumNodes() {
		t.Fatalf("Compact changed node count: %d vs %d", out.NumNodes(), sk.NumNodes())
	}
	if len(out.Nodes) != out.NumNodes() {
		t.Fatalf("Compact left holes: len %d, live %d", len(out.Nodes), out.NumNodes())
	}
	if err := out.Check(); err != nil {
		t.Fatal(err)
	}
	if out.Nodes[out.Root].Label != "r" {
		t.Fatalf("root label %q", out.Nodes[out.Root].Label)
	}
}

func TestCheckCatchesBadAvg(t *testing.T) {
	_, _, sk := fromDoc("r(a)")
	sk.Nodes[sk.Root].Edges[0].Avg = 99
	if err := sk.Check(); err == nil {
		t.Fatal("Check accepted inconsistent Avg")
	}
}

func TestCheckCatchesDeadEdgeTarget(t *testing.T) {
	_, _, sk := fromDoc("r(a)")
	var aID int
	for _, u := range sk.Nodes {
		if u.Label == "a" {
			aID = u.ID
		}
	}
	sk.Nodes[aID] = nil
	if err := sk.Check(); err == nil {
		t.Fatal("Check accepted edge to tombstone")
	}
}

func TestCheckCatchesCycle(t *testing.T) {
	sk := &Sketch{Root: 0, Nodes: []*Node{
		{ID: 0, Label: "a", Count: 1, Edges: []Edge{{Child: 1, Avg: 1, Sum: 1, SumSq: 1}}},
		{ID: 1, Label: "b", Count: 1, Edges: []Edge{{Child: 0, Avg: 1, Sum: 1, SumSq: 1}}},
	}}
	if err := sk.Check(); err == nil {
		t.Fatal("Check accepted cyclic sketch")
	}
}

func TestCheckCatchesSumSqViolation(t *testing.T) {
	_, _, sk := fromDoc("r(a,a)")
	// Root count 1, edge Sum 2 => SumSq must be >= 4.
	var ed *Edge
	for _, u := range sk.Nodes {
		if u.Label == "r" {
			ed = &u.Edges[0]
		}
	}
	ed.SumSq = 1
	if err := sk.Check(); err == nil {
		t.Fatal("Check accepted SumSq below Cauchy-Schwarz bound")
	}
}

func TestReaches(t *testing.T) {
	_, _, sk := fromDoc("r(a(b(c)),d)")
	ids := map[string]int{}
	for _, u := range sk.Nodes {
		ids[u.Label] = u.ID
	}
	if !sk.Reaches(ids["r"], ids["c"]) {
		t.Fatal("r should reach c")
	}
	if sk.Reaches(ids["c"], ids["r"]) {
		t.Fatal("c should not reach r")
	}
	if sk.Reaches(ids["a"], ids["d"]) {
		t.Fatal("a should not reach d")
	}
	if !sk.Reaches(ids["d"], ids["d"]) {
		t.Fatal("node should reach itself")
	}
}

func TestExpandRoundTripOnStableSketch(t *testing.T) {
	// A sketch equivalent to the count-stable summary expands to a tree
	// isomorphic to the original document.
	docs := []string{
		"r",
		"r(a(b,c),a(b,c))",
		"bib(author*2(name,paper*3(title)))",
	}
	for _, src := range docs {
		tr, _, sk := fromDoc(src)
		out, err := sk.Expand(0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if out.Size() != tr.Size() {
			t.Errorf("%s: expand size %d, want %d", src, out.Size(), tr.Size())
		}
	}
}

func TestExpandFractionalCountsPreserveTotals(t *testing.T) {
	// Root with one child cluster: 4 "a" elements averaging 1.5 "b"
	// children must materialize 6 b's in total.
	sk := &Sketch{Root: 0, Nodes: []*Node{
		{ID: 0, Label: "r", Count: 1, Edges: []Edge{{Child: 1, Avg: 4, Sum: 4, SumSq: 16}}},
		{ID: 1, Label: "a", Count: 4, Edges: []Edge{{Child: 2, Avg: 1.5, Sum: 6, SumSq: 10}}},
		{ID: 2, Label: "b", Count: 6},
	}}
	out, err := sk.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	out.PreOrder(func(n *xmltree.Node) { counts[n.Label]++ })
	if counts["a"] != 4 || counts["b"] != 6 {
		t.Fatalf("expanded counts a=%d b=%d, want 4/6", counts["a"], counts["b"])
	}
}

func TestExpandEnforcesCap(t *testing.T) {
	_, _, sk := fromDoc("r(a*100(b*10))")
	if _, err := sk.Expand(50); err == nil {
		t.Fatal("Expand ignored node cap")
	}
}

func TestExpandRejectsMultiCountRoot(t *testing.T) {
	sk := &Sketch{Root: 0, Nodes: []*Node{{ID: 0, Label: "r", Count: 2}}}
	if _, err := sk.Expand(0); err == nil {
		t.Fatal("Expand accepted root with count 2")
	}
}

func randomDoc(seed uint64) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	labels := []string{"a", "b", "c"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(labels[next(3)])
		if depth < 4 {
			for i := uint64(0); i < next(3); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	tr.Root = tr.NewNode("r")
	for i := uint64(0); i <= next(4); i++ {
		tr.Root.Children = append(tr.Root.Children, build(1))
	}
	return tr
}

func TestPropFromStableInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomDoc(seed)
		sk := FromStable(stable.Build(tr))
		if err := sk.Check(); err != nil {
			t.Logf("Check: %v", err)
			return false
		}
		return sk.SqErr() == 0 && sk.TotalElements() == tr.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCompactPreservesStructure(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomDoc(seed)
		sk := FromStable(stable.Build(tr))
		out := sk.Compact()
		return out.NumNodes() == sk.NumNodes() &&
			out.NumEdges() == sk.NumEdges() &&
			math.Abs(out.SqErr()-sk.SqErr()) < 1e-9 &&
			out.Check() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
