package sketch

import (
	"fmt"

	"treesketch/internal/xmltree"
)

// ExpandLimit bounds Expand's output size by default.
const ExpandLimit = 1 << 22

// Expand materializes an XML tree approximating the documents summarized by
// the sketch. The interpretation of the model (Section 3.2) is that every
// element of extent(u) has count(u,v) children in extent(v); fractional
// averages are realized by deterministic stochastic rounding per edge, so
// that across the whole expansion the number of children produced along an
// edge tracks Count(u)*Avg as closely as integral trees allow.
//
// maxNodes caps the output size (<= 0 selects ExpandLimit); Expand fails if
// the cap would be exceeded or the root cluster does not have count 1.
func (sk *Sketch) Expand(maxNodes int) (*xmltree.Tree, error) {
	if maxNodes <= 0 {
		maxNodes = ExpandLimit
	}
	root := sk.Nodes[sk.Root]
	if root == nil {
		return nil, fmt.Errorf("sketch: expand: root %d is dead", sk.Root)
	}
	if root.Count != 1 {
		return nil, fmt.Errorf("sketch: expand: root cluster has count %d, want 1", root.Count)
	}
	if err := sk.checkAcyclic(); err != nil {
		return nil, err
	}

	t := xmltree.NewTree()
	// Per (node, edge index) rounding accumulator: carries the fractional
	// remainder across the expanded elements of the cluster.
	carry := make(map[[2]int]float64)
	var build func(id int) (*xmltree.Node, error)
	build = func(id int) (*xmltree.Node, error) {
		if t.Size() >= maxNodes {
			return nil, fmt.Errorf("sketch: expand: output exceeds %d nodes", maxNodes)
		}
		u := sk.Nodes[id]
		n := t.NewNode(u.Label)
		for j, e := range u.Edges {
			key := [2]int{id, j}
			want := e.Avg + carry[key]
			k := int(want)
			carry[key] = want - float64(k)
			for i := 0; i < k; i++ {
				c, err := build(e.Child)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, c)
			}
		}
		return n, nil
	}
	rootNode, err := build(sk.Root)
	if err != nil {
		return nil, err
	}
	t.Root = rootNode
	return t, nil
}
