package sketch

import (
	"strings"
	"testing"
)

func TestDumpStableForm(t *testing.T) {
	_, _, sk := fromDoc("r(a(b),a(b))")
	d := sk.Dump()
	if !strings.Contains(d, "(root)") {
		t.Fatalf("dump missing root marker:\n%s", d)
	}
	if !strings.Contains(d, "a#") || !strings.Contains(d, "*1") {
		t.Fatalf("dump missing expected entries:\n%s", d)
	}
	if d != sk.Dump() {
		t.Fatal("Dump not deterministic")
	}
	lines := strings.Count(d, "\n")
	if lines != sk.NumNodes() {
		t.Fatalf("dump has %d lines, want %d", lines, sk.NumNodes())
	}
}

func TestLabelCounts(t *testing.T) {
	tr, _, sk := fromDoc("r(a*3(b*2),c)")
	counts := sk.LabelCounts()
	if counts["a"] != 3 || counts["b"] != 6 || counts["c"] != 1 || counts["r"] != 1 {
		t.Fatalf("LabelCounts = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != tr.Size() {
		t.Fatalf("total %d, want %d", total, tr.Size())
	}
}
