package sketch

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the synopsis in a stable, human-readable form for debugging
// and golden tests: one line per live node, sorted by ID, with edges and
// average counts.
//
//	r#0 x1 -> a#1*3.0
//	a#1 x3 -> b#2*1.5
func (sk *Sketch) Dump() string {
	var b strings.Builder
	ids := make([]int, 0, len(sk.Nodes))
	for id, u := range sk.Nodes {
		if u != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		u := sk.Nodes[id]
		fmt.Fprintf(&b, "%s#%d x%d", u.Label, u.ID, u.Count)
		if id == sk.Root {
			b.WriteString(" (root)")
		}
		if len(u.Edges) > 0 {
			b.WriteString(" ->")
			for _, e := range u.Edges {
				fmt.Fprintf(&b, " %s#%d*%.3g", sk.Nodes[e.Child].Label, e.Child, e.Avg)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LabelCounts reports element totals per label, a quick dataset fingerprint
// used by tools and tests.
func (sk *Sketch) LabelCounts() map[string]int {
	out := make(map[string]int)
	for _, u := range sk.Nodes {
		if u != nil {
			out[u.Label] += u.Count
		}
	}
	return out
}
