package sketch

import (
	"testing"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestParents(t *testing.T) {
	_, _, sk := fromDoc("r(a(c),b(c))")
	parents := sk.Parents()
	ids := map[string]int{}
	for _, u := range sk.Nodes {
		ids[u.Label] = u.ID
	}
	if len(parents[ids["c"]]) != 2 {
		t.Fatalf("c has %d parents, want 2", len(parents[ids["c"]]))
	}
	if len(parents[sk.Root]) != 0 {
		t.Fatalf("root has parents: %v", parents[sk.Root])
	}
	// Tombstones are skipped.
	sk.Nodes[ids["b"]] = nil
	parents = sk.Parents()
	if len(parents[ids["c"]]) != 1 {
		t.Fatalf("c has %d parents after tombstoning b, want 1", len(parents[ids["c"]]))
	}
}

func TestSqErrZeroCountNode(t *testing.T) {
	n := &Node{Count: 0, Edges: []Edge{{Child: 1, Avg: 2, Sum: 4, SumSq: 8}}}
	if got := n.SqErr(); got != 0 {
		t.Fatalf("SqErr of empty extent = %g, want 0", got)
	}
}

func TestSqErrClampsNumericNoise(t *testing.T) {
	// SumSq slightly below Sum^2/Count due to rounding: clamped to 0.
	n := &Node{Count: 3, Edges: []Edge{{Child: 1, Avg: 1, Sum: 3, SumSq: 3 - 1e-9}}}
	if got := n.SqErr(); got != 0 {
		t.Fatalf("SqErr = %g, want 0 (noise clamp)", got)
	}
}

func TestEncodeToFailingWriter(t *testing.T) {
	_, _, sk := fromDoc("r(a)")
	if err := sk.Encode(failWriter{}); err == nil {
		t.Fatal("Encode to failing writer succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestSaveFileBadPath(t *testing.T) {
	tr := xmltree.MustCompact("r(a)")
	sk := FromStable(stable.Build(tr))
	if err := sk.SaveFile("/nonexistent-dir-xyz/out.syn"); err == nil {
		t.Fatal("SaveFile to bad path succeeded")
	}
}

func TestDecodeRejectsCorruptedBody(t *testing.T) {
	// A valid header followed by a truncated body.
	_, _, sk := fromDoc("r(a(b),a(b,b))")
	buf := &truncatingBuffer{cap: 40}
	sk.Encode(buf) // stops writing at cap; ignore error
	if _, err := Decode(&readerOf{buf.data}); err == nil {
		t.Fatal("Decode accepted truncated stream")
	}
}

type truncatingBuffer struct {
	data []byte
	cap  int
}

func (b *truncatingBuffer) Write(p []byte) (int, error) {
	room := b.cap - len(b.data)
	if room <= 0 {
		return 0, errWrite
	}
	if len(p) > room {
		p = p[:room]
	}
	b.data = append(b.data, p...)
	return len(p), nil
}

type readerOf struct{ data []byte }

func (r *readerOf) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

var errEOF = &eofErr{}

type eofErr struct{}

func (*eofErr) Error() string { return "EOF" }
