// Package sketch defines the TreeSketch synopsis data structure
// (Definition 3.2 of the paper): a node- and edge-labeled graph synopsis
// where each node stores an element count and each edge stores the average
// number of children, plus the per-edge sufficient statistics (sum and
// sum-of-squares of child counts) that make the clustering squared error
// (Section 3.2) computable without touching the base data.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"treesketch/internal/stable"
)

// Size model shared with the count-stable summary, so budgets are
// comparable across synopsis kinds.
const (
	NodeBytes = stable.NodeBytes
	EdgeBytes = stable.EdgeBytes
)

// Edge is a TreeSketch synopsis edge u -> Child. Avg is count(u, Child) in
// the paper's notation: the average number of children in extent(Child) per
// element of extent(u). Sum and SumSq are the exact first and second moments
// of the per-element child counts; they are the "sufficient statistics" of
// Section 4.2 from which the squared error is derived. MinK is the exact
// minimum per-element child count over the extent: MinK >= 1 certifies that
// every element has a child along the edge, which the evaluator uses for
// exact existential predicates (a strictly sharper signal than any moment
// bound).
type Edge struct {
	Child int
	Avg   float64
	Sum   float64
	SumSq float64
	MinK  float64
}

// Node is one element cluster of the TreeSketch.
type Node struct {
	ID    int
	Label string
	Count int // |extent|
	Edges []Edge

	// Members lists the count-stable classes clustered into this node, in
	// ascending order. Populated by construction (FromStable and merges);
	// nil in synopses that were not derived from a stable summary, such as
	// query-result sketches.
	Members []int
	// Depth is the longest downward path to a leaf, measured on document
	// elements (i.e. the max stable-class depth among Members). Used by the
	// CreatePool bottom-up heuristic.
	Depth int
}

// SqErr returns the squared clustering error contributed by this node:
// sum over outgoing edges of Sum of (c_i(e) - avg)^2 over extent elements,
// which equals SumSq - Sum^2/Count per edge.
func (n *Node) SqErr() float64 {
	if n.Count == 0 {
		return 0
	}
	var sq float64
	for _, e := range n.Edges {
		sq += e.SumSq - e.Sum*e.Sum/float64(n.Count)
	}
	// Guard against tiny negative values from floating-point cancellation.
	if sq < 0 && sq > -1e-6 {
		sq = 0
	}
	return sq
}

// EdgeTo returns the edge from n to child and true, or a zero Edge and
// false when absent.
func (n *Node) EdgeTo(child int) (Edge, bool) {
	i := sort.Search(len(n.Edges), func(i int) bool { return n.Edges[i].Child >= child })
	if i < len(n.Edges) && n.Edges[i].Child == child {
		return n.Edges[i], true
	}
	return Edge{}, false
}

// Sketch is a TreeSketch synopsis. Nodes is indexed by node ID; entries may
// be nil while a construction algorithm is merging (tombstones). Compact
// renumbers the survivors.
//
// A Sketch has no internal synchronization. All methods are read-only and
// safe for concurrent use as long as no goroutine mutates the synopsis;
// construction algorithms that evaluate candidates in parallel (tsbuild)
// freeze the structure during each evaluation batch and confine mutation
// to a single goroutine between batches.
type Sketch struct {
	Nodes []*Node
	Root  int
}

// FromStable converts a count-stable summary into the equivalent (zero
// squared error) TreeSketch: one cluster per stable class, each edge exactly
// k-stable so Avg = k, Sum = k*Count, SumSq = k^2*Count.
func FromStable(s *stable.Synopsis) *Sketch {
	sk := &Sketch{Root: s.Root, Nodes: make([]*Node, len(s.Nodes))}
	for i, u := range s.Nodes {
		n := &Node{
			ID:      i,
			Label:   u.Label,
			Count:   u.Count,
			Members: []int{i},
			Depth:   u.Depth(),
			Edges:   make([]Edge, len(u.Edges)),
		}
		for j, e := range u.Edges {
			k := float64(e.K)
			c := float64(u.Count)
			n.Edges[j] = Edge{Child: e.Child, Avg: k, Sum: k * c, SumSq: k * k * c, MinK: k}
		}
		sk.Nodes[i] = n
	}
	return sk
}

// NumNodes reports the number of live (non-tombstone) nodes.
func (sk *Sketch) NumNodes() int {
	n := 0
	for _, u := range sk.Nodes {
		if u != nil {
			n++
		}
	}
	return n
}

// NumEdges reports the number of live edges.
func (sk *Sketch) NumEdges() int {
	n := 0
	for _, u := range sk.Nodes {
		if u != nil {
			n += len(u.Edges)
		}
	}
	return n
}

// SizeBytes reports the storage footprint under the package size model.
func (sk *Sketch) SizeBytes() int {
	return sk.NumNodes()*NodeBytes + sk.NumEdges()*EdgeBytes
}

// SqErr returns the total squared error sq(TS): the sum over all clusters.
// A sketch equivalent to a count-stable summary has zero squared error.
func (sk *Sketch) SqErr() float64 {
	var sq float64
	for _, u := range sk.Nodes {
		if u != nil {
			sq += u.SqErr()
		}
	}
	return sq
}

// Height returns the maximum node depth, or -1 when empty.
func (sk *Sketch) Height() int {
	h := -1
	for _, u := range sk.Nodes {
		if u != nil && u.Depth > h {
			h = u.Depth
		}
	}
	return h
}

// Parents returns, for every node ID, the IDs of live nodes with an edge
// into it.
func (sk *Sketch) Parents() [][]int {
	parents := make([][]int, len(sk.Nodes))
	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		for _, e := range u.Edges {
			parents[e.Child] = append(parents[e.Child], u.ID)
		}
	}
	return parents
}

// Compact renumbers live nodes into a dense 0..n-1 ID space, dropping
// tombstones, and returns the new sketch. The receiver is unchanged.
func (sk *Sketch) Compact() *Sketch {
	remap := make(map[int]int, len(sk.Nodes))
	out := &Sketch{}
	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		remap[u.ID] = len(out.Nodes)
		out.Nodes = append(out.Nodes, nil)
	}
	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		v := &Node{
			ID:      remap[u.ID],
			Label:   u.Label,
			Count:   u.Count,
			Depth:   u.Depth,
			Members: append([]int(nil), u.Members...),
			Edges:   make([]Edge, len(u.Edges)),
		}
		for j, e := range u.Edges {
			v.Edges[j] = Edge{Child: remap[e.Child], Avg: e.Avg, Sum: e.Sum, SumSq: e.SumSq, MinK: e.MinK}
		}
		sort.Slice(v.Edges, func(a, b int) bool { return v.Edges[a].Child < v.Edges[b].Child })
		out.Nodes[v.ID] = v
	}
	out.Root = remap[sk.Root]
	return out
}

// Check validates internal consistency: live edges point at live nodes,
// edge Avg equals Sum/Count, counts are positive, edges are sorted and
// deduplicated, the root is live, and the graph is acyclic. It returns the
// first violation found.
func (sk *Sketch) Check() error {
	if sk.Root < 0 || sk.Root >= len(sk.Nodes) || sk.Nodes[sk.Root] == nil {
		return fmt.Errorf("sketch: root %d is not a live node", sk.Root)
	}
	for _, u := range sk.Nodes {
		if u == nil {
			continue
		}
		if u.Count <= 0 {
			return fmt.Errorf("sketch: node %d has count %d", u.ID, u.Count)
		}
		prev := -1
		for _, e := range u.Edges {
			if e.Child <= prev {
				return fmt.Errorf("sketch: node %d edges not sorted/unique at child %d", u.ID, e.Child)
			}
			prev = e.Child
			if e.Child < 0 || e.Child >= len(sk.Nodes) || sk.Nodes[e.Child] == nil {
				return fmt.Errorf("sketch: node %d has edge to dead node %d", u.ID, e.Child)
			}
			wantAvg := e.Sum / float64(u.Count)
			if math.Abs(e.Avg-wantAvg) > 1e-6*(1+math.Abs(wantAvg)) {
				return fmt.Errorf("sketch: node %d edge to %d: Avg %g != Sum/Count %g", u.ID, e.Child, e.Avg, wantAvg)
			}
			// Cauchy-Schwarz: SumSq >= Sum^2 / Count.
			if lb := e.Sum * e.Sum / float64(u.Count); e.SumSq < lb-1e-6*(1+lb) {
				return fmt.Errorf("sketch: node %d edge to %d: SumSq %g < Sum^2/Count %g", u.ID, e.Child, e.SumSq, lb)
			}
			if e.MinK > e.Avg+1e-6*(1+e.Avg) {
				return fmt.Errorf("sketch: node %d edge to %d: MinK %g > Avg %g", u.ID, e.Child, e.MinK, e.Avg)
			}
		}
	}
	return sk.checkAcyclic()
}

func (sk *Sketch) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make([]int8, len(sk.Nodes))
	var visit func(id int) error
	visit = func(id int) error {
		switch state[id] {
		case gray:
			return fmt.Errorf("sketch: cycle through node %d (%s)", id, sk.Nodes[id].Label)
		case black:
			return nil
		}
		state[id] = gray
		for _, e := range sk.Nodes[id].Edges {
			if err := visit(e.Child); err != nil {
				return err
			}
		}
		state[id] = black
		return nil
	}
	for id, u := range sk.Nodes {
		if u == nil {
			continue
		}
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// Reaches reports whether to is reachable from from following synopsis
// edges (used to reject cycle-creating merges).
func (sk *Sketch) Reaches(from, to int) bool {
	if from == to {
		return true
	}
	seen := make(map[int]bool)
	stack := []int{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		u := sk.Nodes[id]
		if u == nil {
			continue
		}
		for _, e := range u.Edges {
			if e.Child == to {
				return true
			}
			if !seen[e.Child] {
				seen[e.Child] = true
				stack = append(stack, e.Child)
			}
		}
	}
	return false
}

// TotalElements reports the summed extent sizes over live nodes.
func (sk *Sketch) TotalElements() int {
	n := 0
	for _, u := range sk.Nodes {
		if u != nil {
			n += u.Count
		}
	}
	return n
}
