package bench

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/serve"
	"treesketch/internal/tsbuild"
)

// benchServe is the under-load serving leg: it stands up the serve.Server
// over a real TCP listener, drives it with closed-loop concurrent HTTP
// clients for the configured duration, and then reads the windowed latency
// percentiles back out of the server's own /metrics exposition — so the
// numbers the gate tracks are exactly the numbers an operator's scraper
// would see, measured under concurrency rather than as per-query minima in
// a quiet process.
func benchServe(res *Result, r *exp.Runner, cfg Config, ds string) error {
	progress := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "bench: "+format+"\n", args...)
		}
	}
	budgetKB := cfg.ServeBudgetKB
	key := fmt.Sprintf("serve/%s/%02dkb", ds, budgetKB)

	// The serving leg gets its own registry: its windowed histograms and
	// serve.* counters describe this load run only, and the grid's own
	// obs.Default snapshot stays comparable with pre-serving baselines.
	sreg := obs.NewRegistry()
	sk, _ := tsbuild.Build(r.Stable(ds), tsbuild.Options{BudgetBytes: budgetKB * 1024, Metrics: sreg})
	srv := serve.New(serve.Options{Metrics: sreg})
	srv.AddSketch(ds, sk)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("bench: serve leg listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		hs.Serve(ln)
		close(done)
	}()
	defer func() {
		hs.Close()
		<-done
	}()
	base := "http://" + ln.Addr().String()

	// Closed-loop clients cycle the same workload the latency legs use,
	// pre-encoded into URLs.
	w := r.Workload(ds, cfg.WorkloadSize, false)
	if len(w) == 0 {
		return fmt.Errorf("bench: serve leg: empty workload for %s", ds)
	}
	urls := make([]string, len(w))
	for i, item := range w {
		urls[i] = base + "/estimate?dataset=" + url.QueryEscape(ds) + "&q=" + url.QueryEscape(item.Q.String())
	}
	clients := cfg.ServeClients
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	defer client.CloseIdleConnections()

	fetch := func(u string) error {
		resp, err := client.Get(u)
		if err != nil {
			return err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	// One sequential warm-up pass primes the plan cache and the HTTP
	// connection pool, then the timed closed loop runs: each client fires
	// its next request the moment the previous response lands.
	for _, u := range urls {
		if err := fetch(u); err != nil {
			return fmt.Errorf("bench: serve leg warm-up: %w", err)
		}
	}
	var completed, failed atomic.Int64
	duration := time.Duration(cfg.ServeSeconds * float64(time.Second))
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for i := offset; time.Now().Before(deadline); i++ {
				if err := fetch(urls[i%len(urls)]); err != nil {
					failed.Add(1)
					continue
				}
				completed.Add(1)
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// Scrape the exposition the way an operator would and pull out the
	// windowed percentiles the daemon computed for itself.
	scraped, err := scrapeMetrics(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("bench: serve leg scrape: %w", err)
	}
	m := Metrics{
		"serve_requests":           float64(completed.Load()),
		"serve_queries_per_sec":    rate(float64(completed.Load()), elapsed),
		"serve_window_p50_seconds": scraped["serve_request_latency_seconds_p50"],
		"serve_window_p99_seconds": scraped["serve_request_latency_seconds_p99"],
	}
	if f := failed.Load(); f > 0 {
		m["serve_errors"] = float64(f)
	}
	m["serve_tail_p99_over_p50"] = ratio(m["serve_window_p99_seconds"], m["serve_window_p50_seconds"])
	res.Benchmarks[key] = m
	for _, nameErr := range sreg.NameErrors() {
		progress("warning: %v", nameErr)
	}
	progress("%-10s serve %2dKB: %d clients x %.1fs -> %.0f q/s, window p50 %s p99 %s",
		ds, budgetKB, clients, cfg.ServeSeconds, m["serve_queries_per_sec"],
		secs(m["serve_window_p50_seconds"]), secs(m["serve_window_p99_seconds"]))
	return nil
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// scrapeMetrics fetches an OpenMetrics exposition and returns every
// unlabeled sample as name -> value.
func scrapeMetrics(client *http.Client, u string) (map[string]float64, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, sc.Err()
}
