package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/exp"
	"treesketch/internal/metricname"
	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/tier"
	"treesketch/internal/xmltree"
)

// benchUpdate is the live-update leg: it drives a tier stack over a private
// copy of the dataset's document through a seeded insert/delete script and
// measures three things the static legs cannot — absorb throughput, query
// latency while a background compaction is in flight, and the accuracy of
// base+delta answers against a from-scratch rebuild of the mutated document.
// After the final compaction the base must fingerprint identically to the
// rebuild oracle; a mismatch fails the whole run, because it means the
// incremental path diverged from the batch pipeline.
func benchUpdate(res *Result, r *exp.Runner, reg *obs.Registry, cfg Config, ds string) error {
	progress := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "bench: "+format+"\n", args...)
		}
	}
	budgetKB := cfg.ServeBudgetKB
	doc := copyTree(r.Doc(ds)) // the runner caches its documents; the stack owns this copy
	st, err := tier.New(doc, tier.Options{
		BudgetBytes: budgetKB * 1024,
		// No auto-compaction: the leg measures the absorb and compaction
		// phases separately, so the trigger is explicit below.
		MinCompactElems: 1 << 30,
		Metrics:         reg,
	})
	if err != nil {
		return fmt.Errorf("bench: %s: %w", ds, err)
	}

	// Absorb phase: op parameters are drawn untimed, the absorb itself
	// (maintainer update + delta-sketch build + view publish) is timed.
	hAbsorb := reg.Histogram("bench." + metricname.Clean(ds) + ".update_absorb_seconds")
	rng := updateRNG(uint64(cfg.Seed)*2654435761 + 1)
	var absorbTotal float64
	elems0 := doc.Size()
	for i := 0; i < cfg.UpdateOps; i++ {
		apply := nextUpdateOp(st, &rng)
		t0 := time.Now()
		if err := apply(); err != nil {
			return fmt.Errorf("bench: %s: update op %d: %w", ds, i, err)
		}
		sec := time.Since(t0).Seconds()
		hAbsorb.Observe(sec)
		absorbTotal += sec
	}
	v := st.View()
	um := Metrics{
		"update_ops":                float64(cfg.UpdateOps),
		"update_delta_elems":        float64(v.DeltaElems()),
		"update_tiers":              float64(v.Tiers()),
		"update_absorbs_per_sec":    rate(float64(cfg.UpdateOps), absorbTotal),
		"update_absorb_p50_seconds": hAbsorb.Quantile(0.50),
		"update_absorb_p95_seconds": hAbsorb.Quantile(0.95),
	}

	// Accuracy phase (pre-compaction): base+delta answers on the generated
	// workload against exact ground truth on the mutated document, using the
	// paper's error measure. Exact truth — not a same-budget rebuild — is
	// the reference because two independently compressed sketches can
	// legitimately disagree on individual queries (compression decisions
	// differ on the mutated label distribution), which would measure the
	// compressor's variance, not the incremental path's fidelity; the
	// rebuild comparison lives in the post-compaction fingerprint check
	// below, where it is exact. Everything is seed-deterministic, so the
	// MRE gates tight like the other accuracy metrics.
	w := r.Workload(ds, cfg.WorkloadSize, false)
	ix := eval.NewIndex(st.Doc())
	truths := make([]float64, len(w))
	for i, item := range w {
		truths[i] = eval.Exact(ix, item.Q).Tuples
	}
	sanity := quantile10(truths)
	var errSum float64
	for i, item := range w {
		_, got, _ := v.Estimate(item.Q, eval.Options{})
		errSum += eval.RelativeError(truths[i], got, sanity)
	}
	um["update_mre_pct"] = 100 * errSum / float64(len(w))

	// Compaction phase: fold the delta back into the base on the background
	// goroutine while this goroutine keeps querying, recording the latency
	// of every estimate that overlapped the in-flight build. The drain-loop
	// Compact runs in a helper goroutine purely to expose the overlap
	// window; the compaction itself is already backgrounded by the stack.
	hDuring := reg.Histogram("bench." + metricname.Clean(ds) + ".update_compact_query_seconds")
	var wg sync.WaitGroup
	wg.Add(1)
	t0 := time.Now()
	go func() { defer wg.Done(); st.Compact() }()
	overlapped := 0
	for st.View().Tiers() > 0 || st.Compacting() {
		inFlight := st.Compacting()
		q0 := time.Now()
		st.View().Estimate(w[overlapped%len(w)].Q, eval.Options{})
		if inFlight {
			hDuring.Observe(time.Since(q0).Seconds())
			overlapped++
		}
	}
	wg.Wait()
	compactSec := time.Since(t0).Seconds()
	um["compaction_seconds"] = compactSec
	um["compact_overlap_queries"] = float64(overlapped)
	if overlapped > 0 {
		um["compact_query_p50_seconds"] = hDuring.Quantile(0.50)
		um["compact_query_p95_seconds"] = hDuring.Quantile(0.95)
	}

	// Post-compaction: the base must be bit-identical to the rebuild oracle.
	finalOracle := tier.CompactSketch(stable.Build(copyTree(st.Doc())), budgetKB*1024, 0, obs.NewRegistry())
	if got, want := st.View().Base.Fingerprint(), finalOracle.Fingerprint(); got != want {
		return fmt.Errorf("bench: %s: post-compaction base fingerprint %016x != rebuild oracle %016x", ds, got, want)
	}
	um["post_compact_fp_match"] = 1

	res.Benchmarks["update/"+ds] = um
	progress("%-10s update: %d ops (%.0f/s), %+d elems, pre-compaction MRE %.2f%%, compaction %.3fs (%d queries overlapped)",
		ds, cfg.UpdateOps, um["update_absorbs_per_sec"], st.Doc().Size()-elems0,
		um["update_mre_pct"], compactSec, overlapped)
	return nil
}

// benchNegative is the negative-workload leg: queries guaranteed empty on
// every dataset must produce empty approximate answers at the serving budget
// (the paper's Section 6.1 claim). One cell per dataset; a non-empty answer
// shows up as empty_answer_rate < 1 and fails the accuracy gate.
func benchNegative(res *Result, r *exp.Runner, cfg Config) {
	for _, row := range r.NegativeWorkload(cfg.ServeBudgetKB) {
		m := Metrics{
			"queries":       float64(row.Queries),
			"empty_answers": float64(row.EmptyAnswers),
		}
		if row.Queries > 0 {
			m["empty_answer_rate"] = float64(row.EmptyAnswers) / float64(row.Queries)
		}
		res.Benchmarks["negative/"+row.Name] = m
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "bench: %-10s negative: %d/%d empty answers\n",
				row.Name, row.EmptyAnswers, row.Queries)
		}
	}
}

// updateRNG is a splitmix-style LCG: deterministic across platforms, cheap,
// and good enough to scatter ops over the document.
type updateRNG uint64

func (r *updateRNG) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// maxProtoElems bounds a cloned insert subtree so a single op stays small
// relative to the document.
const maxProtoElems = 64

// nextUpdateOp draws the next scripted operation against st and returns a
// thunk that applies it, so callers can time the absorb without the untimed
// parameter draw (live-node scan, subtree clone) polluting the measurement.
func nextUpdateOp(st *tier.Stack, rng *updateRNG) func() error {
	var live []*xmltree.Node
	st.Doc().PreOrder(func(n *xmltree.Node) { live = append(live, n) })
	// Bias 5:3 toward inserts so the document grows over the script (and
	// force growth when it is tiny), exercising both signs.
	insert := rng.next()%8 < 5 || len(live) < 16
	if insert {
		src := live[int(rng.next()%uint64(len(live)))]
		for subtreeSize(src, maxProtoElems+1) > maxProtoElems {
			src = src.Children[int(rng.next()%uint64(len(src.Children)))]
		}
		proto := xmltree.NewTree()
		proto.Root = cloneNode(proto, src)
		parent := live[int(rng.next()%uint64(len(live)))]
		return func() error { _, err := st.Insert(parent.OID, proto); return err }
	}
	victim := live[int(rng.next()%uint64(len(live)-1))+1] // never the root
	return func() error { return st.Delete(victim.OID) }
}

// quantile10 is the 10-percentile of the true counts — the same sanity
// bound exp.SanityBound derives for a ground-truth workload (Section 6.1's
// s), recomputed here because the mutated document's truths are fresh.
func quantile10(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/10]
}

// subtreeSize counts nodes under n, giving up at cap (callers only need to
// know whether the subtree is small enough).
func subtreeSize(n *xmltree.Node, cap int) int {
	total := 1
	for _, c := range n.Children {
		if total >= cap {
			return total
		}
		total += subtreeSize(c, cap-total)
	}
	return total
}

// cloneNode deep-copies src into t.
func cloneNode(t *xmltree.Tree, src *xmltree.Node) *xmltree.Node {
	n := t.NewNode(src.Label)
	for _, c := range src.Children {
		n.Children = append(n.Children, cloneNode(t, c))
	}
	return n
}

// copyTree deep-copies a whole document.
func copyTree(src *xmltree.Tree) *xmltree.Tree {
	t := xmltree.NewTree()
	t.Root = cloneNode(t, src.Root)
	return t
}
