package bench

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps the end-to-end harness test fast: one dataset, two
// budgets, a handful of queries.
func tinyConfig() Config {
	return Config{
		Datasets:     []string{"XMark-TX"},
		BudgetsKB:    []int{2, 4},
		Scale:        1500,
		WorkloadSize: 6,
		Seed:         DefaultSeed,
		Quick:        true,
	}
}

func TestRunProducesFullGrid(t *testing.T) {
	var progress bytes.Buffer
	cfg := tinyConfig()
	cfg.Out = &progress
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SchemaVersion != SchemaVersion {
		t.Errorf("schema version = %d, want %d", res.SchemaVersion, SchemaVersion)
	}
	if res.GoVersion == "" || res.GOMAXPROCS <= 0 {
		t.Errorf("run metadata incomplete: %+v", res)
	}

	wantBench := []string{"build/XMark-TX", "sketch/XMark-TX/02kb", "sketch/XMark-TX/04kb", "eval/XMark-TX/02kb", "eval/XMark-TX/04kb"}
	for _, name := range wantBench {
		if _, ok := res.Benchmarks[name]; !ok {
			t.Fatalf("missing benchmark %q (have %v)", name, sortedKeys(res.Benchmarks))
		}
	}

	build := res.Benchmarks["build/XMark-TX"]
	for _, m := range []string{"elements", "stable_seconds", "stable_elems_per_sec", "exact_p50_seconds", "exact_p95_seconds", "exact_p99_seconds"} {
		if build[m] <= 0 {
			t.Errorf("build metric %s = %g, want > 0", m, build[m])
		}
	}
	sk := res.Benchmarks["sketch/XMark-TX/02kb"]
	for _, m := range []string{"tsbuild_seconds", "tsbuild_elems_per_sec", "final_bytes"} {
		if sk[m] <= 0 {
			t.Errorf("sketch metric %s = %g, want > 0", m, sk[m])
		}
	}
	ev := res.Benchmarks["eval/XMark-TX/02kb"]
	for _, m := range []string{"approx_p50_seconds", "approx_p95_seconds", "approx_p99_seconds", "approx_queries_per_sec"} {
		if ev[m] <= 0 {
			t.Errorf("eval metric %s = %g, want > 0", m, ev[m])
		}
	}
	if _, ok := ev["sel_mre_pct"]; !ok {
		t.Error("eval benchmark missing sel_mre_pct")
	}
	if _, ok := ev["esd_avg"]; !ok {
		t.Error("eval benchmark missing esd_avg")
	}
	if ev["approx_p50_seconds"] > ev["approx_p95_seconds"] || ev["approx_p95_seconds"] > ev["approx_p99_seconds"] {
		t.Errorf("latency percentiles not monotone: p50=%g p95=%g p99=%g",
			ev["approx_p50_seconds"], ev["approx_p95_seconds"], ev["approx_p99_seconds"])
	}

	// The embedded obs snapshot carries the raw latency distributions and
	// the tsbuild phase timers the headline metrics were derived from.
	if _, ok := res.Obs.Histograms["bench.xmark_tx.02kb.approx_latency_seconds"]; !ok {
		t.Errorf("obs snapshot missing bench latency histogram (have %v)", sortedKeys(res.Obs.Histograms))
	}
	if _, ok := res.Obs.Timers["tsbuild.build"]; !ok {
		t.Errorf("obs snapshot missing tsbuild.build timer (have %v)", sortedKeys(res.Obs.Timers))
	}
	if !strings.Contains(progress.String(), "XMark-TX") {
		t.Error("no progress output written")
	}
}

func TestRunIsSeedReproducible(t *testing.T) {
	a, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Timing metrics vary run to run; the accuracy metrics must be
	// bit-identical for equal seeds.
	for _, bench := range []string{"eval/XMark-TX/02kb", "eval/XMark-TX/04kb"} {
		for _, m := range []string{"sel_mre_pct", "esd_avg"} {
			if a.Benchmarks[bench][m] != b.Benchmarks[bench][m] {
				t.Errorf("%s %s not reproducible: %g vs %g", bench, m, a.Benchmarks[bench][m], b.Benchmarks[bench][m])
			}
		}
	}

	other := tinyConfig()
	other.Seed = 99
	c, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.Seed != 99 {
		t.Errorf("config seed not recorded: %+v", c.Config)
	}
	same := true
	for _, bench := range []string{"eval/XMark-TX/02kb", "eval/XMark-TX/04kb"} {
		for _, m := range []string{"sel_mre_pct", "esd_avg"} {
			if a.Benchmarks[bench][m] != c.Benchmarks[bench][m] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical accuracy metrics (workload not seeded?)")
	}
}

func TestRunCompareRoundTripGates(t *testing.T) {
	res, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_treesketch.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compare(loaded, res, 1).Gate(); err != nil {
		t.Fatalf("self-comparison failed gate: %v", err)
	}

	// Injected regression must trip the gate end to end.
	bad := clone(res)
	for name, m := range bad.Benchmarks {
		if strings.HasPrefix(name, "eval/") {
			m["approx_p99_seconds"] *= 10
		}
	}
	err = Compare(loaded, bad, 1).Gate()
	if err == nil {
		t.Fatal("10x p99 regression passed the gate")
	}
	if !strings.Contains(err.Error(), "approx_p99_seconds") {
		t.Errorf("gate error does not name the regressed metric: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	got := Config{}.withDefaults()
	if got.Seed != DefaultSeed {
		t.Errorf("default seed = %d, want %d", got.Seed, DefaultSeed)
	}
	if len(got.Datasets) == 0 || len(got.BudgetsKB) == 0 || got.Scale <= 0 || got.WorkloadSize <= 0 {
		t.Errorf("defaults incomplete: %+v", got)
	}
	for _, cfg := range []Config{FullConfig(), QuickConfig()} {
		if len(cfg.Datasets) < 3 || len(cfg.BudgetsKB) < 3 {
			t.Errorf("config grid smaller than 3 datasets x 3 budgets: %+v", cfg)
		}
		if cfg.Seed != DefaultSeed {
			t.Errorf("config seed = %d, want documented default %d", cfg.Seed, DefaultSeed)
		}
	}
	if fmt.Sprintf("%d", DefaultSeed) != "1" {
		t.Errorf("DefaultSeed changed; update the README documentation")
	}
}
