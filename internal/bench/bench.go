// Package bench is the standardized end-to-end benchmark harness: it runs
// the dataset x budget grid the paper's Section 6 evaluates (build
// throughput, TSBuild phase breakdown, exact/approx evaluation latency
// percentiles, selectivity and ESD accuracy) and produces a versioned,
// machine-readable Result suitable for committing as a baseline
// (BENCH_treesketch.json) and for regression gating via Compare.
//
// The harness reuses the internal/exp Runner for dataset synthesis,
// workload generation, and ground truth, so benchmark numbers are computed
// on exactly the documents and queries the experiment suite uses, and it
// reads latency percentiles out of obs histograms (Histogram.Quantile)
// rather than keeping its own sample buffers.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/exp"
	"treesketch/internal/metricname"
	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
)

// SchemaVersion identifies the Result JSON layout. Compare refuses to diff
// files with mismatched versions, so bump it whenever a field changes
// meaning.
const SchemaVersion = 1

// DefaultSeed seeds every benchmark run that does not override it; runs
// with equal configs and seeds are bit-reproducible.
const DefaultSeed int64 = 1

// Config controls benchmark scale. The zero value is not runnable; start
// from FullConfig or QuickConfig (or fill every field).
type Config struct {
	// Datasets names the harness datasets to benchmark (see exp.TXNames
	// and exp.LargeNames for the known names).
	Datasets []string `json:"datasets"`
	// BudgetsKB is the synopsis budget grid.
	BudgetsKB []int `json:"budgets_kb"`
	// Scale is the element count of each synthesized document.
	Scale int `json:"scale"`
	// WorkloadSize is the number of evaluation queries per dataset.
	WorkloadSize int `json:"workload_size"`
	// Seed makes the run reproducible; 0 means DefaultSeed.
	Seed int64 `json:"seed"`
	// Repeats is how many recorded measurement passes each latency leg
	// runs (after one unrecorded warm-up pass); percentiles aggregate
	// over Repeats x WorkloadSize observations. Default 3.
	Repeats int `json:"repeats"`
	// Quick records whether this was a reduced-scale run; compare warns
	// when gating a quick run against a full baseline.
	Quick bool `json:"quick"`
	// TopKLimit is the node budget of the streaming top-k evaluation leg
	// (eval.Options.Limit): every eval cell gets a companion "topk/" cell
	// measuring best-first emission latency under this budget. 0 selects
	// the default 16; negative disables the leg.
	TopKLimit int `json:"topk_limit,omitempty"`
	// ReferenceEval runs the approximate-evaluation legs through the
	// pre-fast-path reference enumeration (eval.Options.Reference). Useful
	// for measuring what the plan-driven fast path buys: accuracy metrics
	// must be bit-identical between the two modes, only latency may differ.
	ReferenceEval bool `json:"reference_eval,omitempty"`
	// ServeSeconds is how long the under-load serving leg drives each
	// dataset's tsserve instance with closed-loop concurrent clients.
	// 0 selects a scale-appropriate default; negative disables the leg.
	ServeSeconds float64 `json:"serve_seconds,omitempty"`
	// ServeClients is the closed-loop client concurrency of the serving
	// leg. Default 8.
	ServeClients int `json:"serve_clients,omitempty"`
	// ServeBudgetKB is the synopsis budget the serving leg uses; 0 means
	// the largest budget of the grid.
	ServeBudgetKB int `json:"serve_budget_kb,omitempty"`
	// OpenLoopSeconds is how long the open-loop overload leg offers
	// Poisson arrivals to each dataset's tsserve instance. 0 selects a
	// scale-appropriate default; negative disables the leg.
	OpenLoopSeconds float64 `json:"openloop_seconds,omitempty"`
	// OpenLoopOverload is the offered-load multiple of the measured
	// closed-loop capacity. Default 1.5: deliberately past saturation, so
	// the admission gate has something to shed.
	OpenLoopOverload float64 `json:"openloop_overload,omitempty"`
	// OpenLoopInflight is the serve.Options.MaxInflight of the open-loop
	// leg's server; 0 means 4. Together with the leg's injected service
	// floor it pins the leg's capacity, so overload means the same thing
	// on every machine.
	OpenLoopInflight int `json:"openloop_inflight,omitempty"`
	// UpdateOps is how many seeded insert/delete operations the live-update
	// leg absorbs into each dataset's tier stack before measuring accuracy
	// against a rebuild and compacting. 0 selects a scale-appropriate
	// default; negative disables the leg.
	UpdateOps int `json:"update_ops,omitempty"`
	// Negative enables the negative-workload leg: guaranteed-empty queries
	// on every dataset must produce empty approximate answers at the
	// serving budget. Off by default (the scheduled full-grid run turns it
	// on).
	Negative bool `json:"negative,omitempty"`
	// Out receives human-readable progress lines; nil discards them.
	Out io.Writer `json:"-"`
}

// FullConfig is the reference benchmark scale: the paper's three -TX
// datasets at their ~100k-element size (Table 1: 42-60KB stable
// summaries) over the paper's 10-50KB budget grid.
func FullConfig() Config {
	return Config{
		Datasets:     exp.TXNames(),
		BudgetsKB:    []int{10, 20, 30, 40, 50},
		Scale:        100000,
		WorkloadSize: 100,
		Seed:         DefaultSeed,
	}
}

// QuickConfig is the reduced-scale grid used for CI smoke runs and the
// committed baseline: the same three datasets, three budgets small enough
// that every cell actually compresses (nonzero merges and error) at this
// document size, completing in a couple of seconds.
func QuickConfig() Config {
	return Config{
		Datasets:     exp.TXNames(),
		BudgetsKB:    []int{3, 6, 9},
		Scale:        15000,
		WorkloadSize: 40,
		Seed:         DefaultSeed,
		Quick:        true,
	}
}

func (c Config) withDefaults() Config {
	if len(c.Datasets) == 0 {
		c.Datasets = exp.TXNames()
	}
	if len(c.BudgetsKB) == 0 {
		c.BudgetsKB = []int{10, 20, 30, 40, 50}
	}
	if c.Scale <= 0 {
		c.Scale = 40000
	}
	if c.WorkloadSize <= 0 {
		c.WorkloadSize = 100
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.TopKLimit == 0 {
		c.TopKLimit = 16
	}
	if c.ServeSeconds == 0 {
		c.ServeSeconds = 1
		if !c.Quick {
			c.ServeSeconds = 5
		}
	}
	if c.ServeClients <= 0 {
		c.ServeClients = 8
	}
	if c.OpenLoopSeconds == 0 {
		c.OpenLoopSeconds = 1
		if !c.Quick {
			c.OpenLoopSeconds = 5
		}
	}
	if c.OpenLoopOverload <= 0 {
		c.OpenLoopOverload = 1.5
	}
	if c.OpenLoopInflight == 0 {
		// A fixed limiter (not GOMAXPROCS-derived) keeps the leg's capacity
		// — MaxInflight / openLoopServiceFloor — comparable across machines.
		c.OpenLoopInflight = 4
	}
	if c.UpdateOps == 0 {
		c.UpdateOps = 600
		if c.Quick {
			c.UpdateOps = 120
		}
	}
	if c.ServeBudgetKB <= 0 {
		for _, kb := range c.BudgetsKB {
			if kb > c.ServeBudgetKB {
				c.ServeBudgetKB = kb
			}
		}
	}
	return c
}

// Metrics is one benchmark's named measurements. Durations are in seconds,
// throughputs in elements or queries per second, accuracy metrics unitless
// (sel_mre_pct is a percentage).
type Metrics map[string]float64

// Result is the machine-readable output of one benchmark run.
type Result struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedUnix   int64  `json:"created_unix,omitempty"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Config        Config `json:"config"`
	// Benchmarks maps a benchmark key ("build/<dataset>",
	// "sketch/<dataset>/<budget>kb", "eval/<dataset>/<budget>kb") to its
	// metric map.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// Obs embeds the full observability snapshot accumulated during the
	// run (phase timers, eval counters, latency histograms), so deeper
	// distributions survive alongside the headline metrics.
	Obs obs.Snapshot `json:"obs"`
}

// Run executes the benchmark grid and returns its Result. All
// instrumentation flows through the process-wide obs.Default registry,
// which is reset at the start so the embedded snapshot covers exactly this
// run.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	reg := obs.Default()
	reg.Reset()
	// The runtime collector starts after the reset (Reset orphans any
	// previously registered instruments) and stops before the final
	// snapshot, so the runtime.* families land in res.Obs covering exactly
	// this run.
	rc := obs.StartRuntimeCollector(reg, obs.DefaultRuntimeInterval)
	defer rc.Stop()
	res := &Result{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Config:        cfg,
		Benchmarks:    make(map[string]Metrics),
	}
	r := newRunner(cfg)
	for _, ds := range cfg.Datasets {
		if err := benchDataset(res, r, reg, cfg, ds); err != nil {
			return nil, err
		}
		if cfg.ServeSeconds > 0 {
			if err := benchServe(res, r, cfg, ds); err != nil {
				return nil, err
			}
		}
		if cfg.OpenLoopSeconds > 0 {
			if err := benchServeOpenLoop(res, r, cfg, ds); err != nil {
				return nil, err
			}
		}
		if cfg.UpdateOps > 0 {
			if err := benchUpdate(res, r, reg, cfg, ds); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Negative {
		benchNegative(res, r, cfg)
	}
	rc.Stop()
	res.Obs = reg.Snapshot()
	res.CreatedUnix = time.Now().Unix()
	return res, nil
}

// newRunner builds the exp Runner every leg shares: same documents,
// workloads, and ground truth as the experiment suite.
func newRunner(cfg Config) *exp.Runner {
	return exp.NewRunner(exp.Config{
		TXScale:      cfg.Scale,
		LargeScale:   cfg.Scale,
		WorkloadSize: cfg.WorkloadSize,
		BudgetsKB:    cfg.BudgetsKB,
		Seed:         cfg.Seed,
	})
}

// benchDataset runs the build, sketch, and eval legs for one dataset.
func benchDataset(res *Result, r *exp.Runner, reg *obs.Registry, cfg Config, ds string) error {
	progress := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "bench: "+format+"\n", args...)
		}
	}
	doc := r.Doc(ds)
	elements := float64(doc.Size())

	// Build leg: count-stable summarization throughput. The runner caches
	// its own summary; these timed builds measure cold constructions,
	// keeping the fastest of Repeats runs (the standard robust estimator
	// for a single-shot duration).
	stableSec := 0.0
	for i := 0; i < cfg.Repeats; i++ {
		t0 := time.Now()
		st := stable.Build(doc)
		sec := time.Since(t0).Seconds()
		if st.NumNodes() == 0 {
			return fmt.Errorf("bench: %s: empty stable summary", ds)
		}
		if i == 0 || sec < stableSec {
			stableSec = sec
		}
	}
	build := Metrics{
		"elements":             elements,
		"stable_seconds":       stableSec,
		"stable_elems_per_sec": rate(elements, stableSec),
	}
	progress("%-10s stable build: %d elems in %.3fs (%.0f elems/s)", ds, doc.Size(), stableSec, build["stable_elems_per_sec"])

	// Workload with ground truth (exact counts + true ESD graphs).
	w := r.Workload(ds, cfg.WorkloadSize, true)
	sanity := exp.SanityBound(w)
	ix := r.Index(ds)

	// Exact-evaluation latency leg (budget-independent).
	hExact := reg.Histogram("bench." + metricname.Clean(ds) + ".exact_latency_seconds")
	exactCounters0 := counterTotals(reg, "eval.exact.")
	exactTotal := measureLatencies(hExact, cfg.Repeats, len(w), func(i int) {
		eval.Exact(ix, w[i].Q)
	})
	build["exact_p50_seconds"] = hExact.Quantile(0.50)
	build["exact_p95_seconds"] = hExact.Quantile(0.95)
	build["exact_p99_seconds"] = hExact.Quantile(0.99)
	build["exact_tail_p99_over_p50"] = ratio(build["exact_p99_seconds"], build["exact_p50_seconds"])
	build["exact_queries_per_sec"] = rate(float64(len(w)), exactTotal)
	for name, v := range counterDeltas(reg, "eval.exact.", exactCounters0) {
		build["exact_"+name] = v
	}
	res.Benchmarks["build/"+ds] = build

	for _, budgetKB := range cfg.BudgetsKB {
		key := fmt.Sprintf("%s/%02dkb", ds, budgetKB)

		// Sketch leg: compression throughput plus the phase breakdown
		// read from the obs span timers (delta across this build).
		before := timerTotals(reg)
		sk, stats := tsbuild.Build(r.Stable(ds), tsbuild.Options{BudgetBytes: budgetKB * 1024})
		after := timerTotals(reg)
		tsSec := stats.Elapsed.Seconds()
		res.Benchmarks["sketch/"+key] = Metrics{
			"tsbuild_seconds":           tsSec,
			"tsbuild_elems_per_sec":     rate(elements, tsSec),
			"tsbuild_merges":            float64(stats.Merges),
			"final_bytes":               float64(stats.FinalBytes),
			"final_nodes":               float64(stats.FinalNodes),
			"build.reevals":             float64(stats.Reevals),
			"build.pool_rebuilds":       float64(stats.PoolRebuilds),
			"build.pool_truncated":      float64(stats.PoolTruncated),
			"build.stale_pops":          float64(stats.StalePops),
			"phase_create_pool_seconds": after["tsbuild.create_pool"] - before["tsbuild.create_pool"],
			"phase_merge_loop_seconds":  after["tsbuild.merge_loop"] - before["tsbuild.merge_loop"],
			"phase_compact_seconds":     after["tsbuild.compact"] - before["tsbuild.compact"],
		}

		// Eval leg: approximate-answer latency percentiles plus the two
		// paper accuracy measures (Figures 11 and 12) on this budget.
		// The accuracy pass doubles as the latency warm-up (the ESD and
		// error computations are seed-deterministic, one pass suffices);
		// the recorded passes then time only the evaluation itself.
		hApprox := reg.Histogram(fmt.Sprintf("bench.%s.%02dkb.approx_latency_seconds", metricname.Clean(ds), budgetKB))
		evalOpts := eval.Options{Reference: cfg.ReferenceEval}
		approxCounters0 := counterTotals(reg, "eval.approx.")
		var errSum, esdSum float64
		n := 0
		for _, item := range w {
			ar := eval.Approx(sk, item.Q, evalOpts)
			if item.Empty {
				continue
			}
			n++
			errSum += eval.RelativeError(item.Truth, ar.Selectivity(), sanity)
			esdSum += esd.Distance(item.TruthESD, ar.ESDGraph())
		}
		approxTotal := measureLatencies(hApprox, cfg.Repeats, len(w), func(i int) {
			eval.Approx(sk, w[i].Q, evalOpts)
		})
		em := Metrics{
			"approx_p50_seconds":     hApprox.Quantile(0.50),
			"approx_p95_seconds":     hApprox.Quantile(0.95),
			"approx_p99_seconds":     hApprox.Quantile(0.99),
			"approx_queries_per_sec": rate(float64(len(w)), approxTotal),
		}
		em["approx_tail_p99_over_p50"] = ratio(em["approx_p99_seconds"], em["approx_p50_seconds"])
		for name, v := range counterDeltas(reg, "eval.approx.", approxCounters0) {
			em["approx_"+name] = v
		}
		if n > 0 {
			em["sel_mre_pct"] = 100 * errSum / float64(n)
			em["esd_avg"] = esdSum / float64(n)
		}
		res.Benchmarks["eval/"+key] = em
		progress("%-10s %2dKB: tsbuild %.3fs (%d merges), approx p50 %s, MRE %.2f%%, ESD %.2f",
			ds, budgetKB, tsSec, stats.Merges,
			time.Duration(em["approx_p50_seconds"]*float64(time.Second)).Round(time.Microsecond),
			em["sel_mre_pct"], em["esd_avg"])

		// Top-k leg: the same workload through the streaming best-first
		// emitter under a fixed node budget. The cell reuses the approx_*
		// metric names so the compare policies (tail ratio, percentile and
		// throughput bands) gate it like any other eval cell; the eval.topk.*
		// counter deltas and the mean truncation bound ride along as context.
		if cfg.TopKLimit > 0 {
			hTopK := reg.Histogram(fmt.Sprintf("bench.%s.%02dkb.topk_latency_seconds", metricname.Clean(ds), budgetKB))
			topkOpts := eval.Options{Limit: cfg.TopKLimit, Reference: cfg.ReferenceEval}
			topkCounters0 := counterTotals(reg, "eval.topk.")
			var boundSum float64
			finite := 0
			// Warm-up pass doubles as the bound survey (seed-deterministic).
			for _, item := range w {
				tr := eval.Approx(sk, item.Q, topkOpts)
				if tr.TopK != nil && !math.IsInf(tr.TopK.ErrorBound, 1) {
					boundSum += tr.TopK.ErrorBound
					finite++
				}
			}
			topkTotal := measureLatencies(hTopK, cfg.Repeats, len(w), func(i int) {
				eval.Approx(sk, w[i].Q, topkOpts)
			})
			tm := Metrics{
				"approx_p50_seconds":     hTopK.Quantile(0.50),
				"approx_p95_seconds":     hTopK.Quantile(0.95),
				"approx_p99_seconds":     hTopK.Quantile(0.99),
				"approx_queries_per_sec": rate(float64(len(w)), topkTotal),
				"k_limit":                float64(cfg.TopKLimit),
			}
			tm["approx_tail_p99_over_p50"] = ratio(tm["approx_p99_seconds"], tm["approx_p50_seconds"])
			for name, v := range counterDeltas(reg, "eval.topk.", topkCounters0) {
				tm["topk_"+name] = v
			}
			if finite > 0 {
				tm["error_bound_avg"] = boundSum / float64(finite)
			}
			res.Benchmarks["topk/"+key] = tm
			progress("%-10s %2dKB: topk(k=%d) p50 %s, tail %.1fx, avg bound %.1f",
				ds, budgetKB, cfg.TopKLimit,
				time.Duration(tm["approx_p50_seconds"]*float64(time.Second)).Round(time.Microsecond),
				tm["approx_tail_p99_over_p50"], tm["error_bound_avg"])
		}
	}
	return nil
}

// measureLatencies times fn over n work items, repeats passes, and records
// each item's fastest observed duration into h. Taking the per-item minimum
// across passes strips GC pauses and scheduler preemption out of the
// distribution, so the reported percentiles reflect the deterministic
// cross-query latency profile rather than the unluckiest moment of the
// run — which is what a regression gate needs to be stable. Returns the sum
// of the per-item minima (the best-case wall time for one pass), from which
// callers derive throughput.
func measureLatencies(h *obs.Histogram, repeats, n int, fn func(i int)) float64 {
	best := make([]float64, n)
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < n; i++ {
			q0 := time.Now()
			fn(i)
			sec := time.Since(q0).Seconds()
			if rep == 0 || sec < best[i] {
				best[i] = sec
			}
		}
	}
	var total float64
	for _, sec := range best {
		h.Observe(sec)
		total += sec
	}
	return total
}

// rate is n/seconds, guarded so a clock too coarse to resolve the phase
// yields 0 instead of +Inf (which would poison the JSON encoding).
func rate(n, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return n / seconds
}

// timerTotals reads the cumulative seconds of every phase timer, used to
// attribute span time to an individual build by differencing.
// ratio is p99/p50, guarded so an unresolvably fast p50 (clock granularity)
// yields 0 rather than +Inf. The tail-ratio metric is what the ROADMAP's
// "p99 <= 5x p50" target gates on.
func ratio(p99, p50 float64) float64 {
	if p50 <= 0 {
		return 0
	}
	return p99 / p50
}

// counterTotals snapshots the counters under a name prefix.
func counterTotals(reg *obs.Registry, prefix string) map[string]int64 {
	s := reg.Snapshot()
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out[name] = v
		}
	}
	return out
}

// counterDeltas returns the growth of the counters under prefix since the
// before snapshot, keyed by the suffix with dots flattened to underscores
// ("eval.approx.embed_prunes" -> "embed_prunes"). Zero deltas are dropped:
// per-cell benchmark metrics only carry counters that actually moved.
func counterDeltas(reg *obs.Registry, prefix string, before map[string]int64) map[string]float64 {
	s := reg.Snapshot()
	out := make(map[string]float64)
	for name, v := range s.Counters {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if d := v - before[name]; d > 0 {
			out[strings.ReplaceAll(strings.TrimPrefix(name, prefix), ".", "_")] = float64(d)
		}
	}
	return out
}

func timerTotals(reg *obs.Registry) map[string]float64 {
	s := reg.Snapshot()
	out := make(map[string]float64, len(s.Timers))
	for name, t := range s.Timers {
		out[name] = t.TotalSeconds
	}
	return out
}
