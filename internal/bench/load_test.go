package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestBenchServeLeg(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeSeconds = 0.3
	cfg.ServeClients = 4
	cfg = cfg.withDefaults()
	res := &Result{Benchmarks: make(map[string]Metrics)}
	if err := benchServe(res, newRunner(cfg), cfg, "XMark-TX"); err != nil {
		t.Fatal(err)
	}
	// ServeBudgetKB defaulted to the largest budget of the grid.
	m, ok := res.Benchmarks["serve/XMark-TX/04kb"]
	if !ok {
		t.Fatalf("missing serve benchmark, have %v", sortedKeys(res.Benchmarks))
	}
	if m["serve_requests"] <= 0 || m["serve_queries_per_sec"] <= 0 {
		t.Errorf("throughput metrics = %v", m)
	}
	// The windowed percentiles come back through the /metrics scrape: they
	// must be present, positive, and ordered.
	p50, p99 := m["serve_window_p50_seconds"], m["serve_window_p99_seconds"]
	if p50 <= 0 || p99 < p50 {
		t.Errorf("windowed percentiles p50=%g p99=%g", p50, p99)
	}
	if m["serve_tail_p99_over_p50"] < 1 {
		t.Errorf("tail ratio = %g, want >= 1", m["serve_tail_p99_over_p50"])
	}
	if _, ok := m["serve_errors"]; ok {
		t.Errorf("closed-loop run reported errors: %v", m)
	}
}

func TestServeLegRunsInsideGrid(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeSeconds = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["serve/XMark-TX/04kb"]; !ok {
		t.Fatalf("grid run missing serve leg, have %v", sortedKeys(res.Benchmarks))
	}
	// Negative disables the leg.
	cfg.ServeSeconds = -1
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["serve/XMark-TX/04kb"]; ok {
		t.Error("ServeSeconds < 0 should disable the serve leg")
	}
}

func TestScrapeMetrics(t *testing.T) {
	exposition := "# TYPE a_b counter\na_b_total 3\n" +
		"a_latency_p50 0.5\n" +
		"a_latency_bucket{le=\"+Inf\"} 9\n" + // labeled: skipped
		"malformed_line\n" +
		"a_latency_p99 1.25\n" +
		"# EOF\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, exposition)
	}))
	defer ts.Close()
	got, err := scrapeMetrics(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a_b_total": 3, "a_latency_p50": 0.5, "a_latency_p99": 1.25}
	if len(got) != len(want) {
		t.Errorf("scraped %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("scraped[%s] = %g, want %g", k, got[k], v)
		}
	}
}
