package bench

import (
	"fmt"
	"io"
	"runtime"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/tier"
	"treesketch/internal/tsbuild"
)

// Determinism builds every (dataset, budget) cell of the config's grid
// twice — once with a single evaluation worker and once with one worker per
// CPU — and verifies the two synopses are bit-identical via
// sketch.Fingerprint. With the live-update leg enabled it also replays the
// leg's seeded update script against two tier stacks (Workers=1 and
// Workers=N), compacts both, and requires identical view fingerprints.
// It writes one stable line per cell,
//
//	determinism sketch/<dataset>/<budget>kb fp=<hex>
//	determinism update/<dataset> fp=<hex>
//
// so runs of the same seed under different GOMAXPROCS settings can be
// diffed textually: CI runs the check under GOMAXPROCS=1 and GOMAXPROCS=4
// and requires identical output. Returns an error on the first in-process
// mismatch.
func Determinism(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	r := newRunner(cfg)
	for _, ds := range cfg.Datasets {
		st := r.Stable(ds)
		for _, budgetKB := range cfg.BudgetsKB {
			var fps [2]uint64
			for i, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				sk, _ := tsbuild.Build(st, tsbuild.Options{
					BudgetBytes: budgetKB * 1024,
					Workers:     workers,
					Metrics:     obs.NewRegistry(),
				})
				fps[i] = sk.Fingerprint()
			}
			cell := fmt.Sprintf("sketch/%s/%02dkb", ds, budgetKB)
			if fps[0] != fps[1] {
				return fmt.Errorf("bench: %s: Workers=1 fingerprint %016x != Workers=%d fingerprint %016x",
					cell, fps[0], runtime.GOMAXPROCS(0), fps[1])
			}
			if w != nil {
				if _, err := fmt.Fprintf(w, "determinism %s fp=%016x\n", cell, fps[0]); err != nil {
					return err
				}
			}
		}
		if cfg.UpdateOps > 0 {
			fp, err := updateDeterminism(r, cfg, ds)
			if err != nil {
				return err
			}
			if w != nil {
				if _, err := fmt.Fprintf(w, "determinism update/%s fp=%016x\n", ds, fp); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// updateDeterminism replays the update leg's script on two synchronous
// stacks that differ only in compaction worker count and checks the final
// (fully compacted) views fingerprint identically.
func updateDeterminism(r *exp.Runner, cfg Config, ds string) (uint64, error) {
	var fps [2]uint64
	for i, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		st, err := tier.New(copyTree(r.Doc(ds)), tier.Options{
			BudgetBytes:     cfg.ServeBudgetKB * 1024,
			Workers:         workers,
			MinCompactElems: 1 << 30,
			Synchronous:     true,
			Metrics:         obs.NewRegistry(),
		})
		if err != nil {
			return 0, fmt.Errorf("bench: %s: %w", ds, err)
		}
		rng := updateRNG(uint64(cfg.Seed)*2654435761 + 1)
		for op := 0; op < cfg.UpdateOps; op++ {
			if err := nextUpdateOp(st, &rng)(); err != nil {
				return 0, fmt.Errorf("bench: %s: update op %d: %w", ds, op, err)
			}
		}
		st.Compact()
		fps[i] = st.View().Fingerprint()
	}
	if fps[0] != fps[1] {
		return 0, fmt.Errorf("bench: update/%s: Workers=1 view fingerprint %016x != Workers=%d fingerprint %016x",
			ds, fps[0], runtime.GOMAXPROCS(0), fps[1])
	}
	return fps[0], nil
}
