package bench

import (
	"fmt"
	"io"
	"runtime"

	"treesketch/internal/obs"
	"treesketch/internal/tsbuild"
)

// Determinism builds every (dataset, budget) cell of the config's grid
// twice — once with a single evaluation worker and once with one worker per
// CPU — and verifies the two synopses are bit-identical via
// sketch.Fingerprint. It writes one stable line per cell,
//
//	determinism sketch/<dataset>/<budget>kb fp=<hex>
//
// so runs of the same seed under different GOMAXPROCS settings can be
// diffed textually: CI runs the check under GOMAXPROCS=1 and GOMAXPROCS=4
// and requires identical output. Returns an error on the first in-process
// mismatch.
func Determinism(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	r := newRunner(cfg)
	for _, ds := range cfg.Datasets {
		st := r.Stable(ds)
		for _, budgetKB := range cfg.BudgetsKB {
			var fps [2]uint64
			for i, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				sk, _ := tsbuild.Build(st, tsbuild.Options{
					BudgetBytes: budgetKB * 1024,
					Workers:     workers,
					Metrics:     obs.NewRegistry(),
				})
				fps[i] = sk.Fingerprint()
			}
			cell := fmt.Sprintf("sketch/%s/%02dkb", ds, budgetKB)
			if fps[0] != fps[1] {
				return fmt.Errorf("bench: %s: Workers=1 fingerprint %016x != Workers=%d fingerprint %016x",
					cell, fps[0], runtime.GOMAXPROCS(0), fps[1])
			}
			if w != nil {
				if _, err := fmt.Fprintf(w, "determinism %s fp=%016x\n", cell, fps[0]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
