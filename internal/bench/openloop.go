package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/serve"
	"treesketch/internal/tsbuild"
)

// openLoopDeadline is the per-request budget of the open-loop leg: tight
// enough that queue waits visibly eat into it at overload, long enough that
// admitted requests on the quick grid finish comfortably inside it.
const openLoopDeadline = 150 * time.Millisecond

// openLoopServiceFloor is the serve.Options.InjectDelay the leg runs with.
// The harness datasets evaluate in microseconds, so an uninstrumented
// open loop would measure CPU scheduling rather than admission dynamics
// (on a single-core machine, handlers that never yield can never overlap
// at the gate, and nothing would ever shed). Injecting a few milliseconds
// of service time per admitted request makes the leg a well-conditioned
// queueing experiment — capacity = MaxInflight / floor on any machine —
// while every request still runs the real parse/eval/emit stack.
const openLoopServiceFloor = 5 * time.Millisecond

// maxOpenLoopArrivals caps the arrivals one open-loop cell generates, so a
// machine with very high closed-loop capacity cannot turn the leg into a
// socket-churn stress test. When the cap bites, the run is shortened — never
// the offered rate, which would undo the overload — and the progress line
// says so.
const maxOpenLoopArrivals = 4000

// benchServeOpenLoop is the overload leg: unlike the closed-loop serving
// leg, whose clients implicitly back off to whatever the server can sustain,
// this leg offers load the server did NOT agree to — Poisson arrivals at a
// deliberate multiple of the measured closed-loop capacity — and records how
// the admission gate spends the shortfall: goodput (answered within
// deadline), shed ratio, and the queue-wait tail. A healthy gate keeps
// accepted-request latency inside the deadline budget and sheds the rest
// fast; a missing or broken gate shows up here as collapsed goodput and a
// latency window blown past the deadline.
func benchServeOpenLoop(res *Result, r *exp.Runner, cfg Config, ds string) error {
	progress := func(format string, args ...any) {
		if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "bench: "+format+"\n", args...)
		}
	}
	budgetKB := cfg.ServeBudgetKB
	key := fmt.Sprintf("openloop/%s/%02dkb", ds, budgetKB)

	// Like the closed-loop leg, the open-loop leg runs against its own
	// registry; it also runs a fast runtime collector so the scrape carries
	// the runtime.* families a production scraper would see.
	sreg := obs.NewRegistry()
	rc := obs.StartRuntimeCollector(sreg, 100*time.Millisecond)
	defer rc.Stop()
	sk, _ := tsbuild.Build(r.Stable(ds), tsbuild.Options{BudgetBytes: budgetKB * 1024, Metrics: sreg})
	srv := serve.New(serve.Options{
		Metrics:     sreg,
		Deadline:    openLoopDeadline,
		MaxInflight: cfg.OpenLoopInflight,
		InjectDelay: openLoopServiceFloor,
	})
	srv.AddSketch(ds, sk)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("bench: openloop leg listen: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		hs.Serve(ln)
		close(done)
	}()
	defer func() {
		hs.Close()
		<-done
	}()
	base := "http://" + ln.Addr().String()

	w := r.Workload(ds, cfg.WorkloadSize, false)
	if len(w) == 0 {
		return fmt.Errorf("bench: openloop leg: empty workload for %s", ds)
	}
	urls := make([]string, len(w))
	for i, item := range w {
		urls[i] = base + "/estimate?dataset=" + url.QueryEscape(ds) + "&q=" + url.QueryEscape(item.Q.String())
	}
	clients := cfg.ServeClients
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 4,
		MaxIdleConnsPerHost: clients * 4,
	}}
	defer client.CloseIdleConnections()

	// fetch returns the HTTP status (0 on transport error); the open loop
	// classifies outcomes rather than failing on 503, which is the point.
	fetch := func(u string) int {
		resp, err := client.Get(u)
		if err != nil {
			return 0
		}
		drainBody(resp)
		return resp.StatusCode
	}

	// Warm-up, then a short closed-loop probe measures what this process on
	// this machine can actually sustain; the open loop offers a multiple of
	// that, so "1.5x overload" means the same thing on every machine.
	for _, u := range urls {
		if st := fetch(u); st != http.StatusOK {
			return fmt.Errorf("bench: openloop warm-up: status %d", st)
		}
	}
	probeSec := cfg.OpenLoopSeconds / 4
	if probeSec < 0.25 {
		probeSec = 0.25
	}
	capacity := closedLoopRate(urls, clients, probeSec, fetch)
	if capacity <= 0 {
		return fmt.Errorf("bench: openloop probe measured no capacity for %s", ds)
	}

	offered := capacity * cfg.OpenLoopOverload
	duration := time.Duration(cfg.OpenLoopSeconds * float64(time.Second))
	if expect := offered * duration.Seconds(); expect > maxOpenLoopArrivals {
		duration = time.Duration(maxOpenLoopArrivals / offered * float64(time.Second))
		progress("%-10s openloop: shortening run to %.2fs (%d arrivals max at %.0f/s offered)",
			ds, duration.Seconds(), maxOpenLoopArrivals, offered)
	}

	// Poisson arrival schedule, precomputed and seeded: exponential
	// inter-arrival gaps at the offered rate. Replaying a fixed schedule
	// (sleep-until-due, so a late wake-up bursts to catch up) is what makes
	// the loop open: arrivals do not wait for responses.
	h := fnv.New64a()
	h.Write([]byte(ds))
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64())))
	var schedule []time.Duration
	for at := time.Duration(0); at < duration; {
		at += time.Duration(rng.ExpFloat64() / offered * float64(time.Second))
		if at < duration {
			schedule = append(schedule, at)
		}
	}

	var good, shed, failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range schedule {
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			switch fetch(u) {
			case http.StatusOK:
				good.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}(urls[i%len(urls)])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	rc.Stop()

	scraped, err := scrapeMetrics(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("bench: openloop scrape: %w", err)
	}
	arrivals := float64(len(schedule))
	m := Metrics{
		"serve_offered_rate":           offered,
		"serve_capacity_rate":          capacity,
		"serve_arrivals":               arrivals,
		"serve_shed":                   float64(shed.Load()),
		"serve_goodput_per_sec":        rate(float64(good.Load()), elapsed),
		"serve_window_p50_seconds":     scraped["serve_request_latency_seconds_p50"],
		"serve_window_p99_seconds":     scraped["serve_request_latency_seconds_p99"],
		"serve_queue_wait_p99_seconds": scraped["serve_admission_queue_wait_seconds_p99"],
		"runtime_goroutines":           scraped["runtime_goroutines"],
		"runtime_gc_cycles":            scraped["runtime_gc_cycles_total"],
	}
	if arrivals > 0 {
		m["serve_shed_ratio"] = float64(shed.Load()) / arrivals
	}
	if f := failed.Load(); f > 0 {
		m["serve_errors"] = float64(f)
	}
	res.Benchmarks[key] = m
	for _, nameErr := range sreg.NameErrors() {
		progress("warning: %v", nameErr)
	}
	progress("%-10s openloop %2dKB: offered %.0f/s (%.1fx of %.0f/s) -> goodput %.0f/s, shed %.0f%%, window p99 %s, queue wait p99 %s",
		ds, budgetKB, offered, cfg.OpenLoopOverload, capacity,
		m["serve_goodput_per_sec"], 100*m["serve_shed_ratio"],
		secs(m["serve_window_p99_seconds"]), secs(m["serve_queue_wait_p99_seconds"]))
	return nil
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// closedLoopRate drives the URLs with `clients` closed-loop workers for
// `seconds` and returns the successful completion rate — the capacity
// estimate the open loop overloads against.
func closedLoopRate(urls []string, clients int, seconds float64, fetch func(string) int) float64 {
	var completed atomic.Int64
	deadline := time.Now().Add(time.Duration(seconds * float64(time.Second)))
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for i := offset; time.Now().Before(deadline); i++ {
				if fetch(urls[i%len(urls)]) == http.StatusOK {
					completed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	return rate(float64(completed.Load()), time.Since(start).Seconds())
}
