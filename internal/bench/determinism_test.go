package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestDeterminismCheck runs the fingerprint check on a tiny grid: it must
// pass (Workers=1 and Workers=N builds agree), emit one stable line per
// sketch cell plus one per dataset for the update-script replay, and
// reproduce the same output when run again.
func TestDeterminismCheck(t *testing.T) {
	cfg := Config{
		Datasets:     []string{"XMark-TX"},
		BudgetsKB:    []int{2, 3},
		Scale:        4000,
		WorkloadSize: 1,
		UpdateOps:    20,
		Quick:        true,
	}
	var a, b bytes.Buffer
	if err := Determinism(cfg, &a); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 3:\n%s", len(lines), a.String())
	}
	for _, line := range lines[:2] {
		if !strings.HasPrefix(line, "determinism sketch/XMark-TX/") || !strings.Contains(line, " fp=") {
			t.Fatalf("malformed determinism line %q", line)
		}
	}
	if line := lines[2]; !strings.HasPrefix(line, "determinism update/XMark-TX fp=") {
		t.Fatalf("malformed update determinism line %q", line)
	}
	if err := Determinism(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("repeated check output differs:\n%s\nvs\n%s", a.String(), b.String())
	}
}
