package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// WriteJSON serializes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the result to path (the committed baseline lives at
// BENCH_treesketch.json in the repo root).
func (r *Result) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadFile loads a previously written result and validates its schema
// version.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this binary speaks %d — regenerate the file", path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Status classifies one metric's baseline-vs-current delta.
type Status string

const (
	// StatusOK: gated metric within its noise threshold.
	StatusOK Status = "ok"
	// StatusImproved: gated metric moved in the good direction beyond the
	// threshold.
	StatusImproved Status = "improved"
	// StatusRegressed: gated metric moved in the bad direction beyond the
	// threshold; fails the gate.
	StatusRegressed Status = "REGRESSED"
	// StatusMissing: the baseline has this metric but the current run does
	// not. Informational: metrics come and go as instrumentation evolves,
	// and a comparison between builds with different metric sets should
	// gate on the metrics they share. The lost coverage is surfaced as a
	// warning instead.
	StatusMissing Status = "missing"
	// StatusNew: the current run has this metric but the baseline does
	// not; informational.
	StatusNew Status = "new"
	// StatusInfo: ungated metric (counts, sizes) shown for context only.
	StatusInfo Status = "info"
	// StatusSkip: gated metric whose baseline value is 0, so no relative
	// delta exists; never fails the gate.
	StatusSkip Status = "skip"
)

// DeltaRow is one metric's comparison between a baseline and a current run.
type DeltaRow struct {
	Benchmark string
	Metric    string
	Old, New  float64
	// Delta is the relative change (new-old)/|old|; NaN when undefined.
	Delta float64
	// Threshold is the effective noise threshold (after slack); 0 for
	// ungated metrics.
	Threshold float64
	Status    Status
}

// Comparison is the full delta between two benchmark results.
type Comparison struct {
	Rows        []DeltaRow
	Regressions []DeltaRow // rows with StatusRegressed
	Warnings    []string
}

// metricPolicy returns the gating policy for a metric name: whether the
// metric participates in the gate, whether larger values are better, and
// the relative noise threshold within which a delta is ignored.
//
// Timing and throughput metrics get a wide 30% band — they measure the
// machine as much as the code. Accuracy metrics (selectivity MRE, ESD) are
// seed-deterministic, so they gate at 2%. Structural counts (merges, node
// and byte totals) are shown but not gated: they legitimately change with
// algorithm work, in either direction. The phase_* breakdown is diagnostic
// only: each value is a single sub-millisecond span, so its run-to-run
// jitter dwarfs any real signal (the aggregate tsbuild_seconds is gated
// instead).
func metricPolicy(name string) (gated, higherBetter bool, threshold float64) {
	switch {
	case strings.HasPrefix(name, "phase_"):
		return false, false, 0
	case strings.Contains(name, "_tail_"):
		// p99/p50 ratio: the ROADMAP's tail target (p99 <= 5x p50). It is
		// a quotient of two timing percentiles, so it inherits the tail
		// band; lower is better. Gated once a baseline that carries the
		// metric exists (against older baselines it surfaces as new /
		// informational).
		return true, false, 0.50
	case strings.Contains(name, "per_sec"):
		return true, true, 0.30
	case strings.Contains(name, "_p95_") || strings.Contains(name, "_p99_"):
		// Tail percentiles are the jumpiest timing metrics even after
		// the repeated passes; give them a wider band than the medians.
		return true, false, 0.50
	case strings.Contains(name, "seconds"):
		return true, false, 0.30
	case strings.Contains(name, "mre") || strings.Contains(name, "esd"):
		return true, false, 0.02
	default:
		return false, false, 0
	}
}

// Compare diffs a current run against a baseline. slack multiplies every
// noise threshold (CI uses slack > 1 to tolerate noisy shared runners);
// values <= 0 mean 1.
func Compare(base, cur *Result, slack float64) *Comparison {
	if slack <= 0 {
		slack = 1
	}
	c := &Comparison{}
	if base.Config.Quick != cur.Config.Quick {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"baseline quick=%v but current quick=%v: numbers are not at the same scale", base.Config.Quick, cur.Config.Quick))
	}
	for _, bname := range sortedKeys(base.Benchmarks) {
		bm := base.Benchmarks[bname]
		cm, ok := cur.Benchmarks[bname]
		if !ok {
			c.Warnings = append(c.Warnings, fmt.Sprintf(
				"benchmark %s is in the baseline but not the current run", bname))
			for _, metric := range sortedKeys(bm) {
				c.Rows = append(c.Rows, DeltaRow{Benchmark: bname, Metric: metric, Old: bm[metric], New: math.NaN(), Delta: math.NaN(), Status: StatusMissing})
			}
			continue
		}
		missing := 0
		for _, metric := range sortedKeys(bm) {
			row := compareMetric(bname, metric, bm[metric], cm, slack)
			c.Rows = append(c.Rows, row)
			switch row.Status {
			case StatusRegressed:
				c.Regressions = append(c.Regressions, row)
			case StatusMissing:
				missing++
			}
		}
		if missing > 0 {
			c.Warnings = append(c.Warnings, fmt.Sprintf(
				"benchmark %s: %d baseline metric(s) absent from the current run", bname, missing))
		}
		for _, metric := range sortedKeys(cm) {
			if _, ok := bm[metric]; !ok {
				c.Rows = append(c.Rows, DeltaRow{Benchmark: bname, Metric: metric, Old: math.NaN(), New: cm[metric], Delta: math.NaN(), Status: StatusNew})
			}
		}
	}
	for _, bname := range sortedKeys(cur.Benchmarks) {
		if _, ok := base.Benchmarks[bname]; !ok {
			for _, metric := range sortedKeys(cur.Benchmarks[bname]) {
				c.Rows = append(c.Rows, DeltaRow{Benchmark: bname, Metric: metric, Old: math.NaN(), New: cur.Benchmarks[bname][metric], Delta: math.NaN(), Status: StatusNew})
			}
		}
	}
	return c
}

func compareMetric(bname, metric string, old float64, cm Metrics, slack float64) DeltaRow {
	row := DeltaRow{Benchmark: bname, Metric: metric, Old: old, Delta: math.NaN()}
	nv, ok := cm[metric]
	if !ok {
		row.New = math.NaN()
		row.Status = StatusMissing
		return row
	}
	row.New = nv
	gated, higherBetter, threshold := metricPolicy(metric)
	if !gated {
		row.Status = StatusInfo
		if old != 0 {
			row.Delta = (nv - old) / math.Abs(old)
		}
		return row
	}
	row.Threshold = threshold * slack
	if old == 0 {
		// No relative delta exists against a zero baseline; surface the
		// value but never fail the gate on it.
		if nv == 0 {
			row.Delta = 0
			row.Status = StatusOK
		} else {
			row.Status = StatusSkip
		}
		return row
	}
	row.Delta = (nv - old) / math.Abs(old)
	worse := row.Delta // for lower-is-better, a positive delta is worse
	if higherBetter {
		worse = -row.Delta
	}
	switch {
	case worse > row.Threshold:
		row.Status = StatusRegressed
	case -worse > row.Threshold:
		row.Status = StatusImproved
	default:
		row.Status = StatusOK
	}
	return row
}

// Gate returns an error describing every regression, or nil when the
// comparison is clean. CLI callers turn the error into a nonzero exit.
func (c *Comparison) Gate() error {
	if len(c.Regressions) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d metric(s) failed the regression gate:", len(c.Regressions))
	for _, r := range c.Regressions {
		fmt.Fprintf(&b, "\n  %s %s: %.4g -> %.4g (%+.1f%%, threshold ±%.0f%%)",
			r.Benchmark, r.Metric, r.Old, r.New, 100*r.Delta, 100*r.Threshold)
	}
	return fmt.Errorf("%s", b.String())
}

// WriteTable prints the delta table: every gated metric plus any
// non-ok rows, grouped by benchmark, followed by a one-line summary.
func (c *Comparison) WriteTable(w io.Writer) error {
	for _, warn := range c.Warnings {
		if _, err := fmt.Fprintf(w, "warning: %s\n", warn); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-18s %-26s %12s %12s %9s %7s  %s\n",
		"benchmark", "metric", "old", "new", "delta", "thresh", "status"); err != nil {
		return err
	}
	var ok, improved, regressed, missing int
	for _, r := range c.Rows {
		switch r.Status {
		case StatusOK:
			ok++
		case StatusImproved:
			improved++
		case StatusRegressed:
			regressed++
		case StatusMissing:
			missing++
		}
		// Keep the table focused: ungated in-noise context rows are
		// summarized, not printed.
		if r.Status == StatusInfo || r.Status == StatusNew {
			continue
		}
		delta, thresh := "n/a", "-"
		if !math.IsNaN(r.Delta) {
			delta = fmt.Sprintf("%+.1f%%", 100*r.Delta)
		}
		if r.Threshold > 0 {
			thresh = fmt.Sprintf("%.0f%%", 100*r.Threshold)
		}
		if _, err := fmt.Fprintf(w, "%-18s %-26s %12.5g %12.5g %9s %7s  %s\n",
			r.Benchmark, r.Metric, r.Old, r.New, delta, thresh, r.Status); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "compare: %d ok, %d improved, %d regressed, %d missing (of %d rows)\n",
		ok, improved, regressed, missing, len(c.Rows))
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
