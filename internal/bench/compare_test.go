package bench

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// baseResult builds a minimal two-benchmark baseline for compare tests.
func baseResult() *Result {
	return &Result{
		SchemaVersion: SchemaVersion,
		GoVersion:     "go-test",
		Config:        Config{Quick: true},
		Benchmarks: map[string]Metrics{
			"build/XMark-TX": {
				"elements":             10000,
				"stable_seconds":       0.10,
				"stable_elems_per_sec": 100000,
			},
			"eval/XMark-TX/10kb": {
				"approx_p50_seconds": 0.001,
				"sel_mre_pct":        12.5,
				"esd_avg":            0.30,
			},
		},
	}
}

// clone deep-copies a Result's benchmark maps so tests can inject deltas.
func clone(r *Result) *Result {
	out := *r
	out.Benchmarks = make(map[string]Metrics, len(r.Benchmarks))
	for k, m := range r.Benchmarks {
		mm := make(Metrics, len(m))
		for n, v := range m {
			mm[n] = v
		}
		out.Benchmarks[k] = mm
	}
	return &out
}

func TestCompareIdenticalPasses(t *testing.T) {
	base := baseResult()
	c := Compare(base, clone(base), 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("identical results failed gate: %v", err)
	}
	if len(c.Regressions) != 0 {
		t.Fatalf("identical results produced %d regressions", len(c.Regressions))
	}
}

func TestCompareWithinNoisePasses(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	// 20% slower is inside the 30% timing band; 1% worse MRE is inside
	// the 2% accuracy band.
	cur.Benchmarks["eval/XMark-TX/10kb"]["approx_p50_seconds"] = 0.0012
	cur.Benchmarks["eval/XMark-TX/10kb"]["sel_mre_pct"] = 12.625
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("within-noise delta failed gate: %v", err)
	}
	for _, r := range c.Rows {
		if r.Status == StatusRegressed {
			t.Fatalf("unexpected regression: %+v", r)
		}
	}
}

func TestCompareRegressionFailsGate(t *testing.T) {
	base := baseResult()

	cases := []struct {
		name      string
		mutate    func(*Result)
		benchmark string
		metric    string
	}{
		{"latency regression", func(r *Result) {
			r.Benchmarks["eval/XMark-TX/10kb"]["approx_p50_seconds"] = 0.002 // 2x slower
		}, "eval/XMark-TX/10kb", "approx_p50_seconds"},
		{"throughput regression", func(r *Result) {
			r.Benchmarks["build/XMark-TX"]["stable_elems_per_sec"] = 50000 // half the rate
		}, "build/XMark-TX", "stable_elems_per_sec"},
		{"accuracy regression", func(r *Result) {
			r.Benchmarks["eval/XMark-TX/10kb"]["sel_mre_pct"] = 13.5 // +8% rel
		}, "eval/XMark-TX/10kb", "sel_mre_pct"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := clone(base)
			tc.mutate(cur)
			c := Compare(base, cur, 1)
			err := c.Gate()
			if err == nil {
				t.Fatal("injected regression passed the gate")
			}
			if !strings.Contains(err.Error(), tc.metric) {
				t.Errorf("gate error does not name %s: %v", tc.metric, err)
			}
			found := false
			for _, r := range c.Regressions {
				if r.Benchmark == tc.benchmark && r.Metric == tc.metric {
					found = true
				}
			}
			if !found {
				t.Errorf("regression list missing %s %s: %+v", tc.benchmark, tc.metric, c.Regressions)
			}
		})
	}
}

func TestCompareSlackWidensThresholds(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Benchmarks["eval/XMark-TX/10kb"]["approx_p50_seconds"] = 0.0015 // +50%
	if err := Compare(base, cur, 1).Gate(); err == nil {
		t.Fatal("+50% latency passed at slack 1")
	}
	if err := Compare(base, cur, 2).Gate(); err != nil {
		t.Fatalf("+50%% latency failed at slack 2 (60%% band): %v", err)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Benchmarks["eval/XMark-TX/10kb"]["approx_p50_seconds"] = 0.0004 // 2.5x faster
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("improvement failed gate: %v", err)
	}
	var improved bool
	for _, r := range c.Rows {
		if r.Metric == "approx_p50_seconds" && r.Status == StatusImproved {
			improved = true
		}
	}
	if !improved {
		t.Error("2.5x latency improvement not marked improved")
	}
}

func TestCompareMissingBenchmarkInCurrentIsInformational(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	delete(cur.Benchmarks, "eval/XMark-TX/10kb")
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("missing benchmark failed the gate: %v", err)
	}
	var sawMissing bool
	for _, r := range c.Rows {
		if r.Benchmark == "eval/XMark-TX/10kb" && r.Status == StatusMissing {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Error("dropped benchmark not reported as missing")
	}
	var warned bool
	for _, w := range c.Warnings {
		if strings.Contains(w, "eval/XMark-TX/10kb") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("lost coverage not surfaced as a warning: %v", c.Warnings)
	}
}

func TestCompareMissingMetricIsInformational(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	delete(cur.Benchmarks["eval/XMark-TX/10kb"], "approx_p50_seconds")
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("missing metric failed the gate: %v", err)
	}
	var sawMissing bool
	for _, r := range c.Rows {
		if r.Metric == "approx_p50_seconds" && r.Status == StatusMissing {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Error("dropped metric not reported as missing")
	}
	if len(c.Warnings) == 0 {
		t.Error("lost metric coverage not surfaced as a warning")
	}
}

func TestCompareMissingBenchmarkInBaselineIsInformational(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Benchmarks["eval/XMark-TX/20kb"] = Metrics{"approx_p50_seconds": 0.001}
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("new benchmark failed gate: %v", err)
	}
	var sawNew bool
	for _, r := range c.Rows {
		if r.Benchmark == "eval/XMark-TX/20kb" && r.Status == StatusNew {
			sawNew = true
		}
	}
	if !sawNew {
		t.Error("benchmark missing from baseline not reported as new")
	}
}

func TestCompareZeroBaselineMetricNeverGates(t *testing.T) {
	base := baseResult()
	base.Benchmarks["build/XMark-TX"]["stable_seconds"] = 0
	cur := clone(base)
	cur.Benchmarks["build/XMark-TX"]["stable_seconds"] = 0.5
	c := Compare(base, cur, 1)
	if err := c.Gate(); err != nil {
		t.Fatalf("zero baseline metric failed gate: %v", err)
	}
	var skip bool
	for _, r := range c.Rows {
		if r.Metric == "stable_seconds" {
			if r.Status != StatusSkip {
				t.Errorf("zero baseline status = %s, want skip", r.Status)
			}
			if !math.IsNaN(r.Delta) {
				t.Errorf("zero baseline delta = %g, want NaN", r.Delta)
			}
			skip = true
		}
	}
	if !skip {
		t.Fatal("stable_seconds row missing")
	}

	// Zero baseline and zero current is a clean pass.
	cur2 := clone(base)
	if err := Compare(base, cur2, 1).Gate(); err != nil {
		t.Fatalf("0 -> 0 failed gate: %v", err)
	}
}

func TestCompareUngatedMetricsNeverFail(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Benchmarks["build/XMark-TX"]["elements"] = 99999999 // wild structural change
	if err := Compare(base, cur, 1).Gate(); err != nil {
		t.Fatalf("ungated metric failed gate: %v", err)
	}
}

func TestCompareQuickMismatchWarns(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Config.Quick = false
	c := Compare(base, cur, 1)
	if len(c.Warnings) == 0 {
		t.Fatal("quick/full mismatch produced no warning")
	}
}

func TestWriteTableRuns(t *testing.T) {
	base := baseResult()
	cur := clone(base)
	cur.Benchmarks["eval/XMark-TX/10kb"]["approx_p50_seconds"] = 0.01
	c := Compare(base, cur, 1)
	var buf bytes.Buffer
	if err := c.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "approx_p50_seconds", "compare:"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestResultRoundTripAndSchemaCheck(t *testing.T) {
	base := baseResult()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["build/XMark-TX"]["elements"] != 10000 {
		t.Errorf("round-trip lost metrics: %+v", got.Benchmarks)
	}
	if err := Compare(base, got, 1).Gate(); err != nil {
		t.Errorf("round-trip result failed gate: %v", err)
	}

	bad := clone(base)
	bad.SchemaVersion = SchemaVersion + 1
	badPath := filepath.Join(dir, "bad.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil {
		t.Fatal("mismatched schema version accepted")
	}

	if _, err := ReadFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
