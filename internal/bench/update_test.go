package bench

import (
	"bytes"
	"strings"
	"testing"

	"treesketch/internal/obs"
)

func TestBenchUpdateLeg(t *testing.T) {
	cfg := tinyConfig()
	cfg.UpdateOps = 40
	cfg = cfg.withDefaults()
	res := &Result{Benchmarks: make(map[string]Metrics)}
	if err := benchUpdate(res, newRunner(cfg), obs.NewRegistry(), cfg, "XMark-TX"); err != nil {
		t.Fatal(err)
	}
	m, ok := res.Benchmarks["update/XMark-TX"]
	if !ok {
		t.Fatalf("missing update benchmark, have %v", sortedKeys(res.Benchmarks))
	}
	t.Logf("update metrics: %v", m)
	if m["update_ops"] != 40 {
		t.Errorf("update_ops = %g, want 40", m["update_ops"])
	}
	if m["update_absorbs_per_sec"] <= 0 || m["update_absorb_p50_seconds"] <= 0 {
		t.Errorf("absorb metrics = %v", m)
	}
	if m["update_delta_elems"] == 0 || m["update_tiers"] <= 0 {
		t.Errorf("pre-compaction delta shape = %v, want nonzero delta over >= 1 tier", m)
	}
	// The pre-compaction answer must track exact truth on the mutated
	// document; the bound is deliberately loose (it includes the base
	// sketch's own compression error at this tiny budget).
	if mre := m["update_mre_pct"]; mre < 0 || mre > 50 {
		t.Errorf("update_mre_pct = %g, want within [0, 50]", mre)
	}
	if m["compaction_seconds"] <= 0 {
		t.Errorf("compaction_seconds = %g, want > 0", m["compaction_seconds"])
	}
	// The fingerprint identity check ran (benchUpdate errors on mismatch).
	if m["post_compact_fp_match"] != 1 {
		t.Errorf("post_compact_fp_match = %g, want 1", m["post_compact_fp_match"])
	}
}

func TestUpdateLegRunsInsideGrid(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeSeconds = -1
	cfg.OpenLoopSeconds = -1
	cfg.UpdateOps = 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["update/XMark-TX"]; !ok {
		t.Fatalf("grid run missing update leg, have %v", sortedKeys(res.Benchmarks))
	}
	// The tier stack reports into the run's registry.
	if res.Obs.Counters["tier.absorbs"] < 20 {
		t.Errorf("tier.absorbs = %d, want >= 20", res.Obs.Counters["tier.absorbs"])
	}
	if res.Obs.Counters["tier.compactions"] == 0 {
		t.Error("tier.compactions = 0, want >= 1 (the leg forces one)")
	}

	// Negative disables the leg.
	cfg.UpdateOps = -1
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["update/XMark-TX"]; ok {
		t.Error("UpdateOps < 0 should disable the update leg")
	}
}

func TestBenchNegativeLeg(t *testing.T) {
	cfg := tinyConfig()
	cfg.Negative = true
	cfg = cfg.withDefaults()
	res := &Result{Benchmarks: make(map[string]Metrics)}
	benchNegative(res, newRunner(cfg), cfg)
	// One cell per -TX dataset regardless of cfg.Datasets: the leg is a
	// cross-dataset claim check.
	for _, ds := range []string{"IMDB-TX", "XMark-TX", "SProt-TX"} {
		m, ok := res.Benchmarks["negative/"+ds]
		if !ok {
			t.Fatalf("missing negative/%s, have %v", ds, sortedKeys(res.Benchmarks))
		}
		if m["queries"] <= 0 {
			t.Errorf("%s: queries = %g, want > 0", ds, m["queries"])
		}
		if m["empty_answer_rate"] != 1 {
			t.Errorf("%s: empty_answer_rate = %g, want 1 (the paper's negative-workload claim)", ds, m["empty_answer_rate"])
		}
	}
}

func TestDeterminismIncludesUpdateCells(t *testing.T) {
	cfg := tinyConfig()
	cfg.BudgetsKB = []int{4}
	cfg.UpdateOps = 20
	var out bytes.Buffer
	if err := Determinism(cfg, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "determinism sketch/XMark-TX/04kb fp=") {
		t.Errorf("missing sketch determinism line:\n%s", text)
	}
	if !strings.Contains(text, "determinism update/XMark-TX fp=") {
		t.Errorf("missing update determinism line:\n%s", text)
	}
}
