package bench

import "testing"

func TestBenchOpenLoopLeg(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeSeconds = -1 // isolate the open-loop leg
	cfg.OpenLoopSeconds = 0.5
	cfg.OpenLoopInflight = 1 // a tiny limiter guarantees sheds at 1.5x overload
	cfg = cfg.withDefaults()
	res := &Result{Benchmarks: make(map[string]Metrics)}
	if err := benchServeOpenLoop(res, newRunner(cfg), cfg, "XMark-TX"); err != nil {
		t.Fatal(err)
	}
	m, ok := res.Benchmarks["openloop/XMark-TX/04kb"]
	if !ok {
		t.Fatalf("missing openloop benchmark, have %v", sortedKeys(res.Benchmarks))
	}
	t.Logf("openloop metrics: %v", m)
	if m["serve_arrivals"] <= 0 || m["serve_capacity_rate"] <= 0 {
		t.Fatalf("load metrics = %v", m)
	}
	if m["serve_offered_rate"] <= m["serve_capacity_rate"] {
		t.Errorf("offered %g not above capacity %g: the leg must overload",
			m["serve_offered_rate"], m["serve_capacity_rate"])
	}
	if m["serve_goodput_per_sec"] <= 0 {
		t.Errorf("goodput = %g, want > 0", m["serve_goodput_per_sec"])
	}
	if r := m["serve_shed_ratio"]; r <= 0 || r >= 1 {
		t.Errorf("shed ratio = %g, want in (0, 1) under 1.5x overload with a size-1 limiter", r)
	}
	// Accepted requests stay within the deadline budget: that is what the
	// admission gate buys, and what the gated window p99 tracks.
	if p99 := m["serve_window_p99_seconds"]; p99 <= 0 || p99 > openLoopDeadline.Seconds() {
		t.Errorf("window p99 = %gs, want within (0, %gs]", p99, openLoopDeadline.Seconds())
	}
	if _, ok := m["serve_queue_wait_p99_seconds"]; !ok {
		t.Error("missing serve_queue_wait_p99_seconds")
	}
	// The scrape carries the runtime.* families of the leg's collector.
	if m["runtime_goroutines"] <= 0 {
		t.Errorf("runtime_goroutines = %g, want > 0", m["runtime_goroutines"])
	}
	if _, ok := m["serve_errors"]; ok {
		t.Errorf("open-loop run reported transport errors: %v", m)
	}
}

func TestOpenLoopLegRunsInsideGrid(t *testing.T) {
	cfg := tinyConfig()
	cfg.ServeSeconds = -1
	cfg.OpenLoopSeconds = 0.3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["openloop/XMark-TX/04kb"]; !ok {
		t.Fatalf("grid run missing openloop leg, have %v", sortedKeys(res.Benchmarks))
	}
	// The grid-level runtime collector lands its families in the embedded
	// obs snapshot.
	if res.Obs.Gauges["runtime.goroutines"] <= 0 {
		t.Errorf("obs snapshot runtime.goroutines = %d, want > 0", res.Obs.Gauges["runtime.goroutines"])
	}
	if _, ok := res.Obs.Windows["runtime.sched.latency_seconds"]; !ok {
		t.Error("obs snapshot missing runtime.sched.latency_seconds window")
	}

	// Negative disables the leg.
	cfg.OpenLoopSeconds = -1
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Benchmarks["openloop/XMark-TX/04kb"]; ok {
		t.Error("OpenLoopSeconds < 0 should disable the openloop leg")
	}
}
