package datagen

import "treesketch/internal/xmltree"

// imdb synthesizes a movie database. Movies come in three archetypes
// (indie, mainstream, blockbuster) with correlated cast / keyword / trivia
// profiles; shows in two (miniseries, long-running).
func (g *gen) imdb(target int) {
	root := g.node(nil, "imdb")
	g.t.Root = root
	for g.t.Size() < target {
		if g.chance(0.85) {
			g.movie(root)
		} else {
			g.show(root)
		}
	}
}

func (g *gen) movie(root *xmltree.Node) {
	m := g.node(root, "movie")
	g.node(m, "title")
	g.node(m, "year")

	// Archetype: genres, directors, actors, keywords, trivia, hasRating.
	type arch struct {
		genres, directors, actors, keywords, trivia int
		rating                                      bool
	}
	profiles := []arch{
		{1, 1, 3, 2, 0, false}, // indie
		{2, 1, 8, 5, 2, true},  // mainstream
		{3, 2, 15, 8, 4, true}, // blockbuster
	}
	p := profiles[g.pick(45, 40, 15)]

	g.leafRun(m, "genre", g.jitter(p.genres))
	d := g.node(m, "directors")
	for i := 0; i < p.directors; i++ {
		g.node(g.node(d, "director"), "name")
	}
	cast := g.node(m, "cast")
	actors := g.jitter(p.actors)
	for i := 0; i < actors; i++ {
		a := g.node(cast, "actor")
		g.node(a, "name")
		// Credited roles correlate with production size.
		if p.actors >= 8 {
			g.node(a, "role")
		}
		// Rare per-actor decorations compose into many distinct cast
		// shapes, the class diversity real collections exhibit.
		if g.chance(0.06) {
			g.node(a, "award")
		}
	}
	if g.chance(0.25) {
		g.node(m, "country")
	}
	if p.rating {
		g.node(m, "rating")
	}
	if p.trivia > 0 {
		g.leafRun(m, "trivia", g.jitter(p.trivia))
	}
	if p.keywords > 0 {
		k := g.node(m, "keywords")
		g.leafRun(k, "keyword", g.jitter(p.keywords))
	}
}

func (g *gen) show(root *xmltree.Node) {
	s := g.node(root, "show")
	g.node(s, "title")
	g.node(s, "year")
	type arch struct{ seasons, episodes int }
	profiles := []arch{{1, 3}, {4, 8}}
	p := profiles[g.pick(50, 50)]
	seasons := g.jitter(p.seasons)
	for i := 0; i < seasons; i++ {
		season := g.node(s, "season")
		for j := 0; j < g.jitter(p.episodes); j++ {
			e := g.node(season, "episode")
			g.node(e, "title")
			if p.episodes >= 8 {
				g.node(e, "airdate")
			}
			if g.chance(0.08) {
				g.node(e, "guest")
			}
		}
	}
}

// xmark synthesizes the auction-site benchmark's shape: six sections under
// the site root, recursive parlist/listitem descriptions, and archetyped
// items, persons, and auctions.
func (g *gen) xmark(target int) {
	root := g.node(nil, "site")
	g.t.Root = root
	regions := g.node(root, "regions")
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	regionNodes := make([]*xmltree.Node, len(regionNames))
	for i, rn := range regionNames {
		regionNodes[i] = g.node(regions, rn)
	}
	categories := g.node(root, "categories")
	people := g.node(root, "people")
	open := g.node(root, "open_auctions")
	closed := g.node(root, "closed_auctions")

	for g.t.Size() < target {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			g.xmarkItem(regionNodes[g.rng.Intn(len(regionNodes))])
		case 3:
			c := g.node(categories, "category")
			g.node(c, "name")
			g.description(c, 0, g.chance(0.5))
		case 4, 5:
			g.xmarkPerson(people)
		case 6, 7, 8:
			g.xmarkOpenAuction(open)
		default:
			g.xmarkClosedAuction(closed)
		}
	}
}

func (g *gen) xmarkItem(region *xmltree.Node) {
	it := g.node(region, "item")
	g.node(it, "location")
	g.node(it, "quantity")
	g.node(it, "name")
	g.leafRun(it, "incategory", g.jitter(1))
	// Archetypes: basic listing vs premium listing with rich description,
	// payment/shipping details, and an active mailbox.
	premium := g.pick(60, 40) == 1
	if premium {
		g.node(it, "payment")
		g.node(it, "shipping")
	}
	g.description(it, 0, premium)
	if premium {
		m := g.node(it, "mailbox")
		for i := 0; i < g.jitter(3); i++ {
			mail := g.node(m, "mail")
			g.node(mail, "from")
			g.node(mail, "to")
			g.node(mail, "date")
			if g.chance(0.2) {
				g.node(mail, "text")
			}
		}
	}
}

// description recursively nests parlists, XMark's signature recursion;
// rich descriptions nest deeper.
func (g *gen) description(parent *xmltree.Node, depth int, rich bool) {
	d := g.node(parent, "description")
	if rich && depth < 3 {
		g.parlist(d, depth, rich)
	} else {
		g.node(d, "text")
	}
}

func (g *gen) parlist(parent *xmltree.Node, depth int, rich bool) {
	pl := g.node(parent, "parlist")
	items := 2
	if !rich {
		items = 1
	}
	for i := 0; i < g.jitter(items); i++ {
		li := g.node(pl, "listitem")
		if depth < 2 && rich && g.chance(0.4) {
			g.parlist(li, depth+1, rich)
		} else {
			g.node(li, "text")
		}
	}
}

func (g *gen) xmarkPerson(people *xmltree.Node) {
	p := g.node(people, "person")
	g.node(p, "name")
	g.node(p, "emailaddress")
	// Archetypes: casual browser, active bidder, power user.
	type arch struct {
		phone, address bool
		watches        int
		interests      int
	}
	profiles := []arch{
		{false, false, 0, 0}, // casual
		{true, true, 2, 1},   // active
		{true, true, 5, 3},   // power
	}
	a := profiles[g.pick(45, 35, 20)]
	if a.phone {
		g.node(p, "phone")
	}
	if a.address {
		ad := g.node(p, "address")
		g.node(ad, "street")
		g.node(ad, "city")
		g.node(ad, "country")
	}
	if a.watches > 0 {
		w := g.node(p, "watches")
		g.leafRun(w, "watch", g.jitter(a.watches))
	}
	if a.interests > 0 {
		prof := g.node(p, "profile")
		g.node(prof, "education")
		g.leafRun(prof, "interest", g.jitter(a.interests))
	}
}

func (g *gen) xmarkOpenAuction(open *xmltree.Node) {
	a := g.node(open, "open_auction")
	g.node(a, "initial")
	// Archetypes: cold, warm, hot auctions; hot auctions also carry
	// privacy flags and longer intervals.
	type arch struct {
		bidders int
		privacy bool
	}
	profiles := []arch{{1, false}, {4, false}, {10, true}}
	p := profiles[g.pick(40, 40, 20)]
	for i := 0; i < g.jitter(p.bidders); i++ {
		b := g.node(a, "bidder")
		g.node(b, "date")
		g.node(b, "increase")
		if g.chance(0.1) {
			g.node(b, "personref")
		}
	}
	g.node(a, "current")
	g.node(a, "itemref")
	if p.privacy {
		g.node(a, "privacy")
	}
	g.node(a, "seller")
	g.node(a, "quantity")
	g.node(a, "type")
	g.node(a, "interval")
}

func (g *gen) xmarkClosedAuction(closed *xmltree.Node) {
	a := g.node(closed, "closed_auction")
	g.node(a, "seller")
	g.node(a, "buyer")
	g.node(a, "itemref")
	g.node(a, "price")
	g.node(a, "date")
	g.node(a, "quantity")
	g.node(a, "type")
	if g.pick(70, 30) == 1 {
		ann := g.node(a, "annotation")
		g.description(ann, 1, true)
	}
}

// swissprot synthesizes protein entries in three archetypes: obscure,
// studied, and hub proteins, whose reference / feature / keyword counts
// are correlated.
func (g *gen) swissprot(target int) {
	root := g.node(nil, "sptr")
	g.t.Root = root
	type arch struct {
		refs, authorsPerRef, features, keywords, accessions int
		lineage, sequence                                   bool
	}
	profiles := []arch{
		{1, 1, 6, 2, 1, false, true},  // obscure
		{4, 3, 15, 6, 2, true, true},  // studied
		{8, 5, 25, 10, 3, true, true}, // hub
	}
	for g.t.Size() < target {
		e := g.node(root, "entry")
		a := profiles[g.pick(40, 40, 20)]
		p := g.node(e, "protein")
		g.node(p, "name")
		org := g.node(e, "organism")
		g.node(org, "name")
		if a.lineage {
			g.node(org, "lineage")
		}
		g.leafRun(e, "accession", g.jitter(a.accessions))
		for i := 0; i < g.jitter(a.refs); i++ {
			r := g.node(e, "reference")
			for j := 0; j < a.authorsPerRef; j++ {
				g.node(r, "author")
			}
			g.node(r, "title")
			g.node(r, "cite")
			if g.chance(0.15) {
				g.node(r, "year")
			}
		}
		for i := 0; i < g.jitter(a.features); i++ {
			f := g.node(e, "feature")
			g.node(f, "type")
			loc := g.node(f, "location")
			g.node(loc, "begin")
			g.node(loc, "end")
			if g.chance(0.07) {
				g.node(f, "description")
			}
			// Hub entries carry evidence on features.
			if a.features >= 25 {
				g.node(f, "evidence")
			}
		}
		g.leafRun(e, "keyword", g.jitter(a.keywords))
		if a.sequence {
			g.node(e, "sequence")
		}
	}
}

// dblp synthesizes the bibliography: millions of records drawn from a
// handful of nearly identical shapes, so the count-stable summary is tiny
// relative to the document.
func (g *gen) dblp(target int) {
	root := g.node(nil, "dblp")
	g.t.Root = root
	authorCounts := []int{1, 2, 3, 4}
	for g.t.Size() < target {
		var rec *xmltree.Node
		switch g.rng.Intn(10) {
		case 0, 1, 2, 3:
			rec = g.node(root, "article")
			g.node(rec, "journal")
		case 4, 5, 6, 7:
			rec = g.node(root, "inproceedings")
			g.node(rec, "booktitle")
		case 8:
			rec = g.node(root, "phdthesis")
			g.node(rec, "school")
		default:
			rec = g.node(root, "book")
			g.node(rec, "publisher")
		}
		g.leafRun(rec, "author", authorCounts[g.pick(30, 40, 20, 10)])
		g.node(rec, "title")
		g.node(rec, "year")
		if g.pick(30, 70) == 1 {
			g.node(rec, "pages")
		}
		if g.pick(50, 50) == 1 {
			g.node(rec, "ee")
		}
		// The real DBLP dump has a long tail of rare fields; they give it
		// a sizable stable summary despite its regularity.
		if g.chance(0.15) {
			g.node(rec, "url")
		}
		if g.chance(0.03) {
			g.node(rec, "note")
		}
		if g.chance(0.05) {
			g.node(rec, "crossref")
		}
	}
}
