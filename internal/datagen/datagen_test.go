package datagen

import (
	"testing"

	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, d := range All() {
		a := Generate(d, 2000, 7)
		b := Generate(d, 2000, 7)
		if a.Compact() != b.Compact() {
			t.Errorf("%s: same seed produced different documents", d)
		}
		c := Generate(d, 2000, 8)
		if a.Compact() == c.Compact() {
			t.Errorf("%s: different seeds produced identical documents", d)
		}
	}
}

func TestGenerateReachesTarget(t *testing.T) {
	for _, d := range All() {
		for _, target := range []int{1, 100, 5000} {
			tr := Generate(d, target, 1)
			if tr.Size() < target {
				t.Errorf("%s(%d): size %d below target", d, target, tr.Size())
			}
			// Overshoot is bounded by one record.
			if target >= 1000 && tr.Size() > 2*target {
				t.Errorf("%s(%d): size %d overshoots badly", d, target, tr.Size())
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s(%d): %v", d, target, err)
			}
		}
	}
}

func TestStructuralSignatures(t *testing.T) {
	// The property Table 1 exercises: compressibility of the stable
	// summary differs sharply across families. DBLP must compress far
	// better than XMark. Measured at a scale where class populations have
	// saturated (class counts stop growing well before this size).
	const target = 60000
	ratio := func(d Dataset) float64 {
		tr := Generate(d, target, 3)
		st := stable.Build(tr)
		return float64(st.NumNodes()) / float64(tr.Size())
	}
	dblp := ratio(DBLP)
	xmark := ratio(XMark)
	sprot := ratio(SwissProt)
	if !(dblp < xmark) {
		t.Errorf("DBLP ratio %.4f should be < XMark %.4f", dblp, xmark)
	}
	if !(dblp < sprot) {
		t.Errorf("DBLP ratio %.4f should be < SwissProt %.4f", dblp, sprot)
	}
	if dblp > 0.05 {
		t.Errorf("DBLP stable ratio %.4f too high; generator not regular enough", dblp)
	}
}

func TestXMarkHasRecursion(t *testing.T) {
	tr := Generate(XMark, 30000, 2)
	st := stable.Build(tr)
	// parlist classes at different depths witness the recursion.
	parlists := 0
	for _, n := range st.Nodes {
		if n.Label == "parlist" {
			parlists++
		}
	}
	if parlists < 2 {
		t.Fatalf("XMark has %d parlist classes, want >= 2 (recursive nesting)", parlists)
	}
}

func TestSwissProtFanout(t *testing.T) {
	tr := Generate(SwissProt, 10000, 4)
	counts := map[string]int{}
	tr.PreOrder(func(n *xmltree.Node) { counts[n.Label]++ })
	entries := counts["entry"]
	if entries == 0 {
		t.Fatal("no entries generated")
	}
	// Entries are wide: on average >= 8 features and >= 2 references each.
	if counts["feature"] < 8*entries {
		t.Errorf("features per entry = %.1f, want >= 8", float64(counts["feature"])/float64(entries))
	}
	if counts["reference"] < 2*entries {
		t.Errorf("references per entry = %.1f, want >= 2", float64(counts["reference"])/float64(entries))
	}
}

func TestParseName(t *testing.T) {
	cases := map[string]Dataset{
		"imdb": IMDB, "IMDB": IMDB,
		"xmark": XMark, "XMark": XMark,
		"swissprot": SwissProt, "sprot": SwissProt,
		"dblp": DBLP,
	}
	for s, want := range cases {
		got, err := ParseName(s)
		if err != nil || got != want {
			t.Errorf("ParseName(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseName("nope"); err == nil {
		t.Error("ParseName accepted unknown name")
	}
}

func TestStringNames(t *testing.T) {
	want := []string{"IMDB", "XMark", "SwissProt", "DBLP"}
	for i, d := range All() {
		if d.String() != want[i] {
			t.Errorf("String() = %q, want %q", d.String(), want[i])
		}
	}
	if Dataset(99).String() == "" {
		t.Error("unknown dataset String empty")
	}
}
