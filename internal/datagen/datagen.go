// Package datagen synthesizes XML documents whose structural signatures
// mimic the four datasets of the paper's experimental study (Section 6.1):
// IMDB (movie database), XMark (on-line auction benchmark), SwissProt
// (protein annotations), and DBLP (bibliography).
//
// The real dumps are not redistributable, but every algorithm in this
// repository consumes only the label structure, so the generators aim at
// the properties the evaluation exercises (see DESIGN.md §4):
//
//   - IMDB: moderately heterogeneous records with optional sub-elements
//     and skewed fanouts (casts of widely varying size).
//   - XMark: a diverse schema with six top-level sections and recursive
//     description parlists, yielding the largest stable summaries relative
//     to document size — exactly XMark's role in Table 1.
//   - SwissProt: entries with many repeated annotation children (features,
//     references, keywords), producing very large binding-tuple counts for
//     twig queries, as in Table 2.
//   - DBLP: highly regular flat records, so the stable summary is a tiny
//     fraction of the document — DBLP compresses best in Table 1.
//
// Generation is deterministic for a given (dataset, target, seed).
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"treesketch/internal/xmltree"
)

// Dataset identifies one of the four synthesized document families.
type Dataset int

// The supported datasets.
const (
	IMDB Dataset = iota
	XMark
	SwissProt
	DBLP
)

// String returns the canonical dataset name.
func (d Dataset) String() string {
	switch d {
	case IMDB:
		return "IMDB"
	case XMark:
		return "XMark"
	case SwissProt:
		return "SwissProt"
	case DBLP:
		return "DBLP"
	}
	return fmt.Sprintf("Dataset(%d)", int(d))
}

// All lists every dataset in the order used by the paper's tables.
func All() []Dataset { return []Dataset{IMDB, XMark, SwissProt, DBLP} }

// ParseName resolves a dataset from its (case-insensitive) name.
func ParseName(s string) (Dataset, error) {
	switch strings.ToLower(s) {
	case "imdb":
		return IMDB, nil
	case "xmark":
		return XMark, nil
	case "swissprot", "sprot":
		return SwissProt, nil
	case "dblp":
		return DBLP, nil
	}
	return 0, fmt.Errorf("datagen: unknown dataset %q (want imdb, xmark, swissprot, or dblp)", s)
}

// Generate synthesizes a document of roughly targetElements element nodes
// (top-level records are appended until the target is reached, so the
// result slightly overshoots). The same (dataset, target, seed) always
// yields the same tree.
func Generate(d Dataset, targetElements int, seed int64) *xmltree.Tree {
	if targetElements < 1 {
		targetElements = 1
	}
	g := &gen{t: xmltree.NewTree(), rng: rand.New(rand.NewSource(seed ^ int64(d)<<32))}
	switch d {
	case IMDB:
		g.imdb(targetElements)
	case XMark:
		g.xmark(targetElements)
	case SwissProt:
		g.swissprot(targetElements)
	case DBLP:
		g.dblp(targetElements)
	default:
		panic("datagen: unknown dataset")
	}
	return g.t
}

type gen struct {
	t   *xmltree.Tree
	rng *rand.Rand
}

func (g *gen) node(parent *xmltree.Node, label string) *xmltree.Node {
	n := g.t.NewNode(label)
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// leafRun appends n leaf children with the same label.
func (g *gen) leafRun(parent *xmltree.Node, label string, n int) {
	for i := 0; i < n; i++ {
		g.node(parent, label)
	}
}

// chance reports true with probability p.
func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

// pick returns an index into weights chosen with the given relative
// weights. Records in real XML collections come in a handful of shape
// families ("archetypes"); generators draw an archetype per record and
// derive correlated counts from it, producing the intrinsic sub-structure
// similarity the TreeSketch clustering model exploits (Section 3 of the
// paper). Independent per-edge randomness would instead produce data whose
// only structure is its marginals — the regime edge histograms summarize
// perfectly and clustering cannot compress.
func (g *gen) pick(weights ...int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := g.rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}

// jitter perturbs an archetype count by +/-1 (occasionally +/-2), keeping
// archetypes recognizable (low within-archetype variance) while making the
// count-stable summary rich enough to be worth compressing: real
// collections have many distinct-but-similar record shapes, which is what
// gives Table 1 its large stable summaries. Nonpositive inputs pass
// through.
func (g *gen) jitter(v int) int {
	if v <= 0 {
		return v
	}
	out := v
	if g.chance(0.35) {
		if g.chance(0.5) && out > 1 {
			out--
		} else {
			out++
		}
	}
	if g.chance(0.12) {
		if g.chance(0.5) && out > 1 {
			out--
		} else {
			out++
		}
	}
	return out
}
