// Package core groups the paper's primary contribution — the TreeSketch
// synopsis model, its construction algorithm, and the approximate query
// evaluation framework — behind one import for internal callers. The
// implementations live in the sibling packages:
//
//   - sketch:  the TreeSketch data structure (Definition 3.2)
//   - tsbuild: TSBuild / CreatePool construction (Figures 5, 6)
//   - eval:    EvalQuery / EvalEmbed and selectivity estimation
//     (Figures 7, 8; Section 4.4)
//   - esd:     the Element Simulation Distance metric (Section 5)
//
// The public module-level API is the root package treesketch.
package core

import (
	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
)

// Aliases for the contribution's central types.
type (
	// Sketch is a TreeSketch synopsis.
	Sketch = sketch.Sketch
	// Node is one element cluster of a TreeSketch.
	Node = sketch.Node
	// Edge is a synopsis edge with its average child count.
	Edge = sketch.Edge
	// StableSummary is the count-stable summary construction starts from.
	StableSummary = stable.Synopsis
	// BuildOptions configures TSBuild.
	BuildOptions = tsbuild.Options
	// Result is an approximate answer synopsis.
	Result = eval.Result
)

// Build runs TSBuild on a count-stable summary.
func Build(st *StableSummary, opts BuildOptions) (*Sketch, tsbuild.Stats) {
	return tsbuild.Build(st, opts)
}

// Distance is the ESD metric over answer graphs.
func Distance(a, b *esd.Node) float64 { return esd.Distance(a, b) }
