package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestFindingJSONSchemaStable pins the `tslint -json` wire format: the
// bench tooling and CI scripts parse these exact field names, so a rename
// here is a breaking change that must show up as a test failure, not as a
// silently empty dashboard.
func TestFindingJSONSchemaStable(t *testing.T) {
	f := Finding{
		Analyzer: "mapiter",
		File:     "internal/tsbuild/cluster.go",
		Line:     41,
		Column:   2,
		Message:  "map iteration order leaks",
	}
	got, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"mapiter","file":"internal/tsbuild/cluster.go","line":41,"column":2,"message":"map iteration order leaks"}`
	if string(got) != want {
		t.Fatalf("Finding JSON schema drifted:\n got %s\nwant %s", got, want)
	}
}

// TestWriteSARIF checks the SARIF log against the subset GitHub code
// scanning requires, and that the writer is byte-deterministic.
func TestWriteSARIF(t *testing.T) {
	analyzers := Analyzers()
	findings := []Finding{
		{Analyzer: "ctxpoll", File: "internal/eval/approx.go", Line: 10, Column: 3, Message: "loop without poll"},
		{Analyzer: "pubmut", File: "internal/serve/serve.go", Line: 7, Column: 1, Message: "post-publish write"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, analyzers, findings); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Fatalf("version %q schema %q, want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tslint" {
		t.Fatalf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzers) {
		t.Fatalf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(analyzers))
	}
	for i, a := range analyzers {
		if run.Tool.Driver.Rules[i].ID != a.Name {
			t.Fatalf("rule[%d] = %q, want %q", i, run.Tool.Driver.Rules[i].ID, a.Name)
		}
	}
	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(findings))
	}
	for i, f := range findings {
		r := run.Results[i]
		loc := r.Locations[0].PhysicalLocation
		if r.RuleID != f.Analyzer || r.Level != "error" || r.Message.Text != f.Message ||
			loc.ArtifactLocation.URI != f.File || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" ||
			loc.Region.StartLine != f.Line || loc.Region.StartColumn != f.Column {
			t.Fatalf("result[%d] = %+v, want projection of %+v", i, r, f)
		}
		if r.RuleIndex < 0 || r.RuleIndex >= len(analyzers) || analyzers[r.RuleIndex].Name != f.Analyzer {
			t.Fatalf("result[%d] ruleIndex %d does not point at %s", i, r.RuleIndex, f.Analyzer)
		}
	}

	var again bytes.Buffer
	if err := WriteSARIF(&again, analyzers, findings); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("SARIF output is not byte-deterministic")
	}
}

// TestBaseline covers the allowlist lifecycle: justified entries filter
// matching findings, unmatched findings survive, stale entries are
// reported, and a reason-less entry is rejected at load time.
func TestBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.baseline.json")
	write := func(content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write(`{"entries": [
		{"analyzer": "ctxpoll", "file": "internal/eval/a.go", "message": "old debt", "justification": "tracked for the next PR"},
		{"analyzer": "pubmut", "file": "internal/serve/b.go", "message": "gone", "justification": "was fixed"}
	]}`)
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{Analyzer: "ctxpoll", File: "internal/eval/a.go", Line: 5, Message: "old debt"},
		{Analyzer: "ctxpoll", File: "internal/eval/a.go", Line: 9, Message: "new violation"},
	}
	kept, stale := b.Apply(findings)
	if len(kept) != 1 || kept[0].Message != "new violation" {
		t.Fatalf("kept = %+v, want only the new violation", kept)
	}
	if len(stale) != 1 || stale[0].Analyzer != "pubmut" {
		t.Fatalf("stale = %+v, want the fixed pubmut entry", stale)
	}

	write(`{"entries": [{"analyzer": "ctxpoll", "file": "a.go", "message": "m", "justification": ""}]}`)
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "justification") {
		t.Fatalf("reason-less baseline entry loaded without error (err = %v)", err)
	}

	write(`{"entries": [{"analyzer": "", "file": "a.go", "message": "m", "justification": "j"}]}`)
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("entry missing its analyzer loaded without error")
	}
}

// TestRepoBaselineLoads keeps the committed baseline file valid: CI points
// tslint at it, so a malformed or unjustified entry must fail here first.
func TestRepoBaselineLoads(t *testing.T) {
	b, err := LoadBaseline(filepath.Join("..", "..", "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The suite is currently clean; new entries need a justification and a
	// matching finding, which TestModuleClean would surface.
	if !reflect.DeepEqual(b.Entries, []BaselineEntry(nil)) && len(b.Entries) != 0 {
		t.Fatalf("committed baseline has %d entries; the suite is expected clean", len(b.Entries))
	}
}
