package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// NonDetAnalyzer forbids nondeterminism sources in functions reachable from
// the two fingerprint-critical entry points: tsbuild.Build and
// sketch.Fingerprint. The build must produce bit-identical synopses for a
// given input and budget regardless of wall-clock time, scheduling, or the
// global random source, so on those paths the analyzer reports:
//
//   - time.Now, time.Since, and time.Until calls (wall-clock reads);
//   - package-level math/rand functions (the shared, unseeded global
//     source) — explicitly constructed sources via rand.New/NewSource are
//     allowed, since builders seed them deterministically;
//   - `go` statements, whose completion order is scheduler-dependent and
//     must be justified by a "//lint:nondet <reason>" comment explaining
//     how result ordering is normalized.
//
// The call graph is intra-module: call edges through function values or
// interfaces are not followed, and edges into package obs are cut — the
// telemetry layer reads clocks by design and never feeds the synopsis.
var NonDetAnalyzer = &Analyzer{
	Name:      "nondet",
	Doc:       "wall-clock, global randomness, or unordered concurrency on a fingerprint-critical path",
	Directive: "nondet",
	Run:       runNonDet,
}

// nondetRoots lists the entry points whose call closures must be
// deterministic, as (package name, function name) pairs.
var nondetRoots = [][2]string{
	{"tsbuild", "Build"},
	{"sketch", "Fingerprint"},
	// The tier stack's compaction product must be bit-identical to a
	// from-scratch rebuild (the update determinism and differential tests
	// diff its fingerprints across GOMAXPROCS), so its build path carries
	// the same discipline.
	{"tier", "CompactSketch"},
}

func runNonDet(p *Program) []Finding {
	// Index every module FuncDecl by its types.Func object.
	decls := make(map[*types.Func]*funcNode)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj] = &funcNode{pkg: pkg, decl: fd}
			}
		}
	}

	// Build call edges. Function literals are attributed to their enclosing
	// declaration, so a goroutine body inherits its parent's reachability.
	for _, node := range decls {
		ast.Inspect(node.decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(node.pkg, call)
			if callee == nil {
				return true
			}
			target, ok := decls[callee]
			if !ok {
				return true
			}
			if target.pkg.Name == "obs" {
				return true // telemetry boundary
			}
			node.calls = append(node.calls, callee)
			return true
		})
	}

	// BFS from the roots.
	var work []*types.Func
	reachable := make(map[*types.Func]bool)
	for obj, node := range decls {
		for _, root := range nondetRoots {
			if node.pkg.Name == root[0] && obj.Name() == root[1] && isPackageLevel(obj) {
				reachable[obj] = true
				work = append(work, obj)
			}
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range decls[obj].calls {
			if !reachable[callee] {
				reachable[callee] = true
				work = append(work, callee)
			}
		}
	}

	// Deterministic iteration over the reachable set.
	reached := make([]*types.Func, 0, len(reachable))
	for obj := range reachable {
		reached = append(reached, obj)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].Pos() < reached[j].Pos() })

	var out []Finding
	for _, obj := range reached {
		node := decls[obj]
		qualified := node.pkg.Name + "." + obj.Name()
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				out = append(out, finding(p, n.Pos(),
					"go statement in %s is reachable from a fingerprint-critical entry point; justify how result ordering stays deterministic with //lint:nondet", qualified))
			case *ast.CallExpr:
				if name := forbiddenCall(node.pkg, n); name != "" {
					out = append(out, finding(p, n.Pos(),
						"%s in %s is reachable from a fingerprint-critical entry point", name, qualified))
				}
			}
			return true
		})
	}
	return out
}

type funcNode struct {
	pkg   *Package
	decl  *ast.FuncDecl
	calls []*types.Func
}

// calleeOf resolves a call expression to a statically known *types.Func
// (plain function or method call; not function values or interfaces).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// forbiddenCall returns a display name when the call hits a forbidden
// stdlib nondeterminism source, and "" otherwise.
func forbiddenCall(pkg *Package, call *ast.CallExpr) string {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !isPackageLevel(fn) {
			return "" // methods on an explicitly seeded *rand.Rand are fine
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return "" // constructing a seeded source is the sanctioned path
		}
		return "global " + fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}
