package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CtxPollAnalyzer generalizes the exact-eval cancellation fix (PR 8): a
// request that hits a pathological query must stop burning its serving slot
// the moment its context is canceled, which requires every long walk on a
// request path to poll ctx within a bounded work budget (the tickCtx
// pattern: charge per element visited, check every N charges). The
// analyzer keeps the next evaluator from reintroducing slot-pinning.
//
// It builds the intra-module call graph (function values and interface
// dispatch are not followed; edges into package obs are cut as the
// telemetry boundary) and computes the closure reachable from the serving
// entry points: eval.ExactContext, eval.ApproxContext, and the serve
// handler methods (handle*). Within that closure, restricted to the
// serving packages (serve, eval, tier), it reports every for/range loop
// whose per-iteration work is unbounded — the body calls a module function
// that (transitively) loops — unless the iteration polls:
//
//   - the loop body calls tickCtx / checkCtx / pollCtx, or
//   - the loop body checks ctx directly (ctx.Err(), <-ctx.Done()), or
//   - the loop body calls a module function that transitively polls, or
//   - the enclosing function polls anywhere in its own body — the
//     post-charge idiom, where an enclosing loop ticks a work-proportional
//     budget after each inner scan (the exact evaluator's
//     `ev.tickCtx(len(next))` after its per-step child scans).
//
// Loops whose bodies only do straight-line work per iteration are exempt:
// the enclosing walk charges them through its own budget; calls into
// package obs are likewise ignored (the telemetry boundary — histogram
// bucket walks are constant-bounded). Loops that are bounded by
// construction (a capped replay, input capped by a request-body limit)
// carry a "//lint:ctxpoll <reason>" justification naming the bound.
var CtxPollAnalyzer = &Analyzer{
	Name:      "ctxpoll",
	Doc:       "unbounded per-iteration loop on a serving path without a ctx poll",
	Directive: "ctxpoll",
	Run:       runCtxPoll,
}

// ctxpollRoots are the package-level serving entry points, as (package
// name, function name) pairs; serve handler methods (handle*) are added by
// pattern.
var ctxpollRoots = [][2]string{
	{"eval", "ExactContext"},
	{"eval", "ApproxContext"},
}

// ctxpollPackages is the report scope: packages whose loops serve
// requests. Helper packages (query parsing, sketch lookups) are bounded by
// input size and are charged through their callers' budgets.
var ctxpollPackages = []string{"serve", "eval", "tier"}

// pollNames are the method/function names recognized as work-budget ctx
// polls.
var pollNames = map[string]bool{"tickCtx": true, "checkCtx": true, "pollCtx": true}

func runCtxPoll(p *Program) []Finding {
	decls := moduleFuncs(p)

	// Call edges, telemetry boundary cut. Closures are attributed to their
	// enclosing declaration, so a handler's inline goroutine or callback
	// inherits its reachability.
	for _, node := range decls {
		node.calls = nil
		ast.Inspect(node.decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(node.pkg, call)
			if callee == nil {
				return true
			}
			target, ok := decls[callee]
			if !ok || target.pkg.Name == "obs" {
				return true
			}
			node.calls = append(node.calls, callee)
			return true
		})
	}

	reachable := closureFrom(decls, func(obj *types.Func, node *funcNode) bool {
		for _, root := range ctxpollRoots {
			if node.pkg.Name == root[0] && obj.Name() == root[1] && isPackageLevel(obj) {
				return true
			}
		}
		if node.pkg.Name == "serve" && !isPackageLevel(obj) &&
			len(obj.Name()) > 6 && obj.Name()[:6] == "handle" {
			return true
		}
		return false
	})

	loopy := transitively(decls, func(node *funcNode) bool {
		found := false
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				found = true
			}
			return !found
		})
		return found
	})
	polls := transitively(decls, func(node *funcNode) bool {
		return hasPollSite(node.pkg, node.decl.Body)
	})

	// Deterministic function order.
	var fns []*types.Func
	for obj := range reachable {
		fns = append(fns, obj)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	var out []Finding
	for _, obj := range fns {
		node := decls[obj]
		if !contains(ctxpollPackages, node.pkg.Name) {
			continue
		}
		if hasPollSite(node.pkg, node.decl.Body) {
			// The function participates in the tickCtx discipline itself;
			// trust its charge placement (post-charge siblings included).
			continue
		}
		qualified := node.pkg.Name + "." + obj.Name()
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			unbounded, polled := classifyLoop(node.pkg, decls, body, loopy, polls)
			if unbounded && !polled {
				out = append(out, finding(p, n.Pos(),
					"loop in %s is reachable from a serving entry point and does unbounded per-iteration work without polling ctx; poll via the tickCtx pattern or justify the bound with //lint:ctxpoll", qualified))
			}
			return true
		})
	}
	return out
}

// classifyLoop inspects one loop body: unbounded when some direct call
// lands on a module function that transitively loops; polled when the body
// polls ctx directly or calls a function that transitively polls.
func classifyLoop(pkg *Package, decls map[*types.Func]*funcNode, body *ast.BlockStmt,
	loopy, polls map[*types.Func]bool) (unbounded, polled bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollSite(pkg, call) {
			polled = true
			return true
		}
		callee := calleeOf(pkg, call)
		if callee == nil {
			return true
		}
		target, inModule := decls[callee]
		if !inModule || target.pkg.Name == "obs" {
			return true // telemetry boundary: bucket walks are constant-bounded
		}
		if loopy[callee] {
			unbounded = true
		}
		if polls[callee] {
			polled = true
		}
		return true
	})
	// A receive from ctx.Done() inside a select counts as a poll even
	// without a call: <-ctx.Done() is itself a CallExpr (Done), handled
	// above, so nothing extra is needed here.
	return unbounded, polled
}

// hasPollSite reports whether a body contains a direct ctx poll.
func hasPollSite(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPollSite(pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// isPollSite reports whether a call checks for cancellation: a tickCtx-
// pattern budget poll, or Err/Done on a context.Context value.
func isPollSite(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pollNames[fun.Name]
	case *ast.SelectorExpr:
		if pollNames[fun.Sel.Name] {
			return true
		}
		if fun.Sel.Name != "Err" && fun.Sel.Name != "Done" {
			return false
		}
		tv, ok := pkg.Info.Types[fun.X]
		if !ok {
			return false
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}
	return false
}

// closureFrom BFS-computes the call closure of the decls whose isRoot
// predicate holds.
func closureFrom(decls map[*types.Func]*funcNode, isRoot func(*types.Func, *funcNode) bool) map[*types.Func]bool {
	reachable := make(map[*types.Func]bool)
	var work []*types.Func
	for obj, node := range decls {
		if isRoot(obj, node) {
			reachable[obj] = true
			work = append(work, obj)
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range decls[obj].calls {
			if !reachable[callee] {
				reachable[callee] = true
				work = append(work, callee)
			}
		}
	}
	return reachable
}

// transitively marks every function for which the local predicate holds,
// then propagates the mark backwards over call edges: a caller of a marked
// function is marked. Used for "transitively loops" and "transitively
// polls".
func transitively(decls map[*types.Func]*funcNode, local func(*funcNode) bool) map[*types.Func]bool {
	marked := make(map[*types.Func]bool)
	for obj, node := range decls {
		if local(node) {
			marked[obj] = true
		}
	}
	// Fixpoint: with |E| edges this converges in at most depth passes;
	// module graphs are shallow.
	for changed := true; changed; {
		changed = false
		for obj, node := range decls {
			if marked[obj] {
				continue
			}
			for _, callee := range node.calls {
				if marked[callee] {
					marked[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return marked
}
