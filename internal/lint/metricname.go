package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"treesketch/internal/metricname"
)

// MetricNameAnalyzer checks every obs metric registration site — Counter,
// Gauge, Histogram, Timer, StartSpan, Observe, Windowed — against the canonical
// metric-name grammar shared with the runtime validator in
// internal/metricname, and reports one name registered under two different
// metric kinds anywhere in the module.
//
// Constant names (including constant-folded concatenations) are validated
// exactly. Composed names are validated structurally: constant fragments
// are kept, numeric components become a digit placeholder, and string
// components are only accepted when routed through metricname.Clean — a raw
// dynamic string (a dataset label, user input) can smuggle uppercase or
// punctuation past the grammar, which Clean exists to prevent.
var MetricNameAnalyzer = &Analyzer{
	Name:      "metricname",
	Doc:       "obs metric registration with a non-canonical or kind-colliding name",
	Directive: "metricname",
	Run:       runMetricName,
}

// metricKinds maps obs registration entry points to the metric kind they
// create.
var metricKinds = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
	"Timer":     "timer",
	"StartSpan": "timer",
	"Observe":   "timer",
	"Windowed":  "windowed",
}

type registration struct {
	kind string
	pos  token.Pos
	pkg  *Package
}

func runMetricName(p *Program) []Finding {
	var out []Finding
	byName := make(map[string][]registration)
	for _, pkg := range p.Packages {
		if pkg.Name == "obs" || pkg.Name == "metricname" {
			// The registry's own plumbing and the grammar package pass names
			// through variables by design.
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				kind, ok := metricRegistrationKind(pkg, call)
				if !ok {
					return true
				}
				arg := call.Args[0]
				if name, isConst := constString(pkg, arg); isConst {
					if err := metricname.Valid(name); err != nil {
						out = append(out, finding(p, arg.Pos(), "metric name: %v", err))
					} else {
						byName[name] = append(byName[name], registration{kind: kind, pos: arg.Pos(), pkg: pkg})
					}
					return true
				}
				template, fs := composedTemplate(p, pkg, arg)
				out = append(out, fs...)
				if template != "" && len(fs) == 0 {
					if err := metricname.Valid(template); err != nil {
						out = append(out, finding(p, arg.Pos(), "composed metric name: %v", err))
					}
				}
				return true
			})
		}
	}
	out = append(out, duplicateKindFindings(p, byName)...)
	return out
}

// metricRegistrationKind resolves a call to an obs registration entry point
// (method on Registry or package-level helper) and returns its metric kind.
func metricRegistrationKind(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	kind, ok := metricKinds[sel.Sel.Name]
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return "", false
	}
	// Registration entry points take the metric name as their first
	// parameter; measurement methods sharing a name (Histogram.Observe)
	// take numbers and are not registrations.
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return "", false
	}
	first, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	if !ok || first.Kind() != types.String {
		return "", false
	}
	return kind, true
}

// constString returns the constant-folded string value of e, if any.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// composedTemplate reduces a dynamically composed name expression to a
// grammar-checkable template. Constant fragments survive verbatim, numeric
// components become "0", and Clean() calls become a safe placeholder. Any
// other string-typed component is reported: it must be sanitized with
// metricname.Clean before entering a metric name. An empty template means
// the expression shape is not recognized (also reported).
func composedTemplate(p *Program, pkg *Package, e ast.Expr) (string, []Finding) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			break
		}
		lt, lf := composedTemplate(p, pkg, e.X)
		rt, rf := composedTemplate(p, pkg, e.Y)
		return lt + rt, append(lf, rf...)
	case *ast.CallExpr:
		if isSprintfCall(pkg, e) {
			return sprintfTemplate(p, pkg, e)
		}
		if isCleanCall(pkg, e) {
			return "c0", nil
		}
	}
	if name, ok := constString(pkg, e); ok {
		return name, nil
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
			return "0", nil
		}
	}
	return "", []Finding{finding(p, e.Pos(),
		"dynamic metric name component is not sanitized: route it through metricname.Clean")}
}

// sprintfTemplate expands a fmt.Sprintf metric name: the constant format
// string keeps its literal text, and each verb is replaced by the template
// of its corresponding argument.
func sprintfTemplate(p *Program, pkg *Package, call *ast.CallExpr) (string, []Finding) {
	if len(call.Args) == 0 {
		return "", nil
	}
	format, ok := constString(pkg, call.Args[0])
	if !ok {
		return "", []Finding{finding(p, call.Pos(), "metric name Sprintf format is not a constant")}
	}
	args := call.Args[1:]
	var b strings.Builder
	var fs []Finding
	argIdx := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			b.WriteByte(format[i])
			continue
		}
		// Consume flags, width, and precision up to the verb.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[j])) {
			j++
		}
		if j >= len(format) {
			break
		}
		verb := format[j]
		i = j
		if verb == '%' {
			b.WriteByte('%')
			continue
		}
		if argIdx >= len(args) {
			break
		}
		t, f := composedTemplate(p, pkg, args[argIdx])
		argIdx++
		b.WriteString(t)
		fs = append(fs, f...)
	}
	return b.String(), fs
}

// isSprintfCall recognizes fmt.Sprintf.
func isSprintfCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

// isCleanCall recognizes metricname.Clean.
func isCleanCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Clean" {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Name() == "metricname"
}

// duplicateKindFindings reports every constant name registered under more
// than one metric kind, across all packages, at each site beyond the first
// kind encountered (in deterministic name order).
func duplicateKindFindings(p *Program, byName map[string][]registration) []Finding {
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		regs := byName[name]
		kinds := make(map[string]bool)
		for _, r := range regs {
			kinds[r.kind] = true
		}
		if len(kinds) < 2 {
			continue
		}
		sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })
		first := regs[0]
		for _, r := range regs[1:] {
			if r.kind == first.kind {
				continue
			}
			out = append(out, finding(p, r.pos,
				"metric %q registered as %s here but as %s at %s", name, r.kind, first.kind,
				relPos(p, first.pos)))
		}
	}
	return out
}

func relPos(p *Program, pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.RelFile(position.Filename), position.Line)
}
