package sketch

// Fingerprint is a nondet root; pure arithmetic is fine.
func Fingerprint(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
