// Clean fixture: conforming code across all analyzers must produce zero
// findings.
package tsbuild

import "sort"

// Build is a nondet root; it reaches only deterministic code.
func Build(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += weights[k]
	}
	return total
}
