package eval

import "sync"

type scratch struct {
	epoch  int32
	selEp  []int32
	selVal []float64
}

// lookup follows the epoch protocol: guarded read, stamp before write.
func lookup(s *scratch, i int, compute func() float64) float64 {
	if s.selEp[i] == s.epoch {
		return s.selVal[i]
	}
	v := compute()
	s.selEp[i] = s.epoch
	s.selVal[i] = v
	return v
}

// reduce uses per-goroutine slots and a fixed-order fold.
func reduce(items []float64, workers int) float64 {
	parts := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				parts[w] += items[i]
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}
