// Fixture for the epochguard analyzer: dense memo planes (selEp/selVal,
// cntEp/cntVal) on an epoch-carrying struct may only be read under an
// epoch-validity check and written after an epoch stamp.
package eval

type scratch struct {
	epoch  int32
	selEp  []int32
	selVal []float64
	cntEp  []int32
	cntVal []int64
	marks  []int32 // not a plane: no matching Val pair
}

// goodRead is the canonical guarded read.
func goodRead(s *scratch, i int) float64 {
	if s.selEp[i] == s.epoch {
		return s.selVal[i]
	}
	return 0
}

// goodWrite stamps first; the stamp dominates the rest of the block.
func goodWrite(s *scratch, i int, v float64) {
	s.selEp[i] = s.epoch
	s.selVal[i] = v
}

// goodParallel stamps and writes in one assignment.
func goodParallel(s *scratch, i int, v float64) {
	s.selEp[i], s.selVal[i] = s.epoch, v
}

// goodElse reads in the else-branch of a != check.
func goodElse(s *scratch, i int) float64 {
	if s.selEp[i] != s.epoch {
		return 0
	} else {
		return s.selVal[i]
	}
}

// goodConj unions guards across &&.
func goodConj(s *scratch, i int) float64 {
	if i >= 0 && s.selEp[i] == s.epoch && s.cntEp[i] == s.epoch {
		return s.selVal[i] + float64(s.cntVal[i])
	}
	return 0
}

// badRead reads a plane value with no guard anywhere.
func badRead(s *scratch, i int) float64 {
	return s.selVal[i] /* want "not dominated by an epoch check" */
}

// badWrite writes before stamping; the late stamp does not help.
func badWrite(s *scratch, i int, v float64) {
	s.selVal[i] = v /* want "without a dominating epoch stamp" */
	s.selEp[i] = s.epoch
}

// badCross guards one plane but reads another.
func badCross(s *scratch, i int) float64 {
	if s.cntEp[i] == s.epoch {
		return s.selVal[i] /* want "not dominated by an epoch check" */
	}
	return 0
}

// badClosure shows that guards do not flow into function literals: by the
// time the closure runs, the epoch may have advanced.
func badClosure(s *scratch, i int) func() float64 {
	if s.selEp[i] == s.epoch {
		return func() float64 {
			return s.selVal[i] /* want "not dominated by an epoch check" */
		}
	}
	return nil
}

// justified suppresses a read whose validity the caller established.
func justified(s *scratch, i int) float64 {
	//lint:epochguard caller stamped slot i in this epoch before dispatching
	return s.selVal[i]
}

// nonPlane types without an epoch field are never tracked.
type nonPlane struct {
	selEp  []int32
	selVal []float64
}

func nonPlaneOK(p *nonPlane, i int) float64 {
	return p.selVal[i]
}

// marksOK: a lone Ep-suffixed slice with no Val twin is not a plane.
func marksOK(s *scratch, i int) int32 {
	return s.marks[i]
}
