// Fixture for the nondet analyzer: wall-clock reads, the global math/rand
// source, and unjustified go statements are forbidden in the call closure
// of tsbuild.Build.
package tsbuild

import (
	"math/rand"
	"time"
)

// Build is a fingerprint-critical entry point: everything it reaches is
// checked.
func Build() int {
	n := helper() + seeded(42)
	//lint:nondet results drain through a channel in submission order
	go spawnWork()
	go spawnWork() /* want "go statement" */
	return n
}

func helper() int {
	start := time.Now() /* want "time.Now" */
	_ = start
	deadline := time.Now() //lint:nondet deadline only bounds work, never changes output
	_ = deadline
	return rand.Int() /* want "global.*rand.Int" */
}

// seeded builds its own deterministic source: rand.New/NewSource are the
// sanctioned constructors, and methods on the seeded *rand.Rand are fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func spawnWork() {}

// unreachable is not in Build's closure: its clock read is not reported.
func unreachable() time.Time {
	return time.Now()
}
