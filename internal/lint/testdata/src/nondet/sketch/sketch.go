// Second root of the nondet fixture: sketch.Fingerprint has its own
// checked closure.
package sketch

import "time"

var epoch time.Time

// Fingerprint is a fingerprint-critical entry point.
func Fingerprint(data []byte) uint64 {
	return mix(uint64(len(data)))
}

func mix(x uint64) uint64 {
	if time.Since(epoch) > 0 { /* want "time.Since" */
		x++
	}
	return x * 0x9e3779b97f4a7c15
}
