// Fixture for the metricname analyzer: registration names must satisfy the
// canonical grammar, dynamic components must pass through metricname.Clean,
// and one name must not be registered under two kinds.
package bench

import (
	"fmt"

	"fix/metricname"
	"fix/obs"
)

func register(r *obs.Registry, ds string, kb int) {
	r.Counter("bench.runs")                // ok
	r.Counter("single")                    /* want "has 1 segment" */
	r.Timer("bench.createPool")            /* want "contains .P." */
	r.Gauge("bench.pool._hidden")          /* want "starts with '_'" */
	r.StartSpan("bench.phase.setup").End() // ok: spans are timers

	// Dynamic composition: a raw string component can smuggle uppercase or
	// punctuation past the grammar; Clean sanitizes it.
	r.Histogram("bench." + ds + ".latency_seconds")                   /* want "not sanitized" */
	r.Histogram("bench." + metricname.Clean(ds) + ".latency_seconds") // ok

	r.Histogram(fmt.Sprintf("bench.%s.%02dkb.latency", ds, kb))                   /* want "not sanitized" */
	r.Histogram(fmt.Sprintf("bench.%s.%02dkb.latency", metricname.Clean(ds), kb)) // ok
	r.Histogram(fmt.Sprintf("bench%d.latency", kb))                               // ok: numeric verb mid-segment

	// Same name, same kind, in two places: allowed (lookup semantics).
	r.Histogram("bench.shared.latency")
	r.Histogram("bench.shared.latency")

	// Registered again as a counter in package exporter: flagged there.
	r.Histogram("bench.dup.metric")

	// Measurement methods that share a registration method's name are not
	// registrations.
	h := r.Histogram("bench.ok.latency")
	h.Observe(1.5)

	// A justified exception for a name the grammar cannot express.
	r.Counter("legacy") //lint:metricname kept for dashboard compatibility until the Q3 migration
}
