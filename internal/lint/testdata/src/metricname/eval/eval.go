// Fourth package of the metricname fixture: the streaming top-k evaluation
// family. The eval.topk.* counters and histograms, the serve-side partial-
// answer counters, and the trace spans of the best-first emitter all go
// through the standard grammar.
package eval

import "fix/obs"

func registerTopK(r *obs.Registry) {
	r.Counter("eval.topk.queries")           // ok
	r.Counter("eval.topk.expanded")          // ok
	r.Counter("eval.topk.discovered")        // ok
	r.Counter("eval.topk.deadline_hits")     // ok
	r.Counter("eval.topk.exhausted")         // ok
	r.Counter("eval.topk.budget_stops")      // ok
	r.Counter("eval.topk.work_capped")       // ok
	r.Histogram("eval.topk.latency_seconds") // ok
	r.Histogram("eval.topk.error_bound")     // ok
	r.Counter("serve.http.deadline_partial") // ok
	r.Counter("serve.http.tuple_overflow")   // ok

	r.Counter("eval.topK.queries")     /* want "contains .K." */
	r.Counter("eval.topk.error-bound") /* want "contains .-." */
	r.Histogram("topk")                /* want "has 1 segment" */
}

// The emitter's phase spans are timers and share the grammar.
func spans(tr *obs.Trace) {
	s := tr.StartSpan("eval.topk.query") // ok
	s.End()
	e := tr.StartSpan("eval.topk.expand") // ok
	e.End()
	p := tr.StartSpan("eval.topk.replay") // ok
	p.End()
	bad := tr.StartSpan("eval.topk.bestFirst") /* want "contains .F." */
	bad.End()
}
