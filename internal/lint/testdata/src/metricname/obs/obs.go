// Minimal stand-in for the real obs package: just enough surface for the
// metricname analyzer to resolve registration entry points. The analyzer
// matches by package name and method signature, so this fixture exercises
// the same code paths as the real registry.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Timer struct{}
type Span struct{}

func (r *Registry) Counter(name string) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }
func (r *Registry) Timer(name string) *Timer         { return &Timer{} }
func (r *Registry) StartSpan(name string) *Span      { return &Span{} }
func (r *Registry) Observe(name string, f func())    {}

func (h *Histogram) Observe(v float64) {}
func (s *Span) End()                   {}

func StartSpan(name string) *Span { return &Span{} }
