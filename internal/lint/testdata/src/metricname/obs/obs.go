// Minimal stand-in for the real obs package: just enough surface for the
// metricname analyzer to resolve registration entry points. The analyzer
// matches by package name and method signature, so this fixture exercises
// the same code paths as the real registry.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Timer struct{}
type Span struct{}
type WindowedHistogram struct{}
type Trace struct{}
type TraceSpan struct{}

func (r *Registry) Counter(name string) *Counter            { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                { return &Gauge{} }
func (r *Registry) Histogram(name string) *Histogram        { return &Histogram{} }
func (r *Registry) Timer(name string) *Timer                { return &Timer{} }
func (r *Registry) StartSpan(name string) *Span             { return &Span{} }
func (r *Registry) Observe(name string, f func())           {}
func (r *Registry) Windowed(name string) *WindowedHistogram { return &WindowedHistogram{} }

func (h *Histogram) Observe(v float64)         {}
func (w *WindowedHistogram) Observe(v float64) {}
func (s *Span) End()                           {}

func StartSpan(name string) *Span { return &Span{} }

// NewTrace's argument is a request label (often the raw query text), not a
// metric name: the analyzer must leave it alone.
func NewTrace(name string) *Trace { return &Trace{} }

func (t *Trace) StartSpan(name string) *TraceSpan { return &TraceSpan{} }
func (s *TraceSpan) End()                         {}
