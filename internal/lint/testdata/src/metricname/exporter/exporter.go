// Second package of the metricname fixture: registering a name the bench
// package already registered as a histogram, but as a counter, is a
// cross-package kind collision.
package exporter

import "fix/obs"

func export(r *obs.Registry) {
	r.Counter("bench.dup.metric") /* want "registered as counter here but as histogram at" */
	r.Counter("exporter.rows")    // ok
}
