// Minimal stand-in for the real metricname package: the analyzer only
// needs to resolve Clean by package name and function name.
package metricname

func Clean(s string) string { return s }
