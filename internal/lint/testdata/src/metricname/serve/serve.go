// Third package of the metricname fixture: the serving-layer registration
// surface. Windowed histograms are registrations like any other (and their
// names join the cross-kind collision check), request-trace span names go
// through the same grammar, and trace labels (NewTrace's argument) are
// exempt because they carry raw query text.
package serve

import "fix/obs"

func register(r *obs.Registry) {
	r.Windowed("serve.request.latency_seconds") // ok
	r.Windowed("latency")                       /* want "has 1 segment" */
	r.Windowed("serve.Request.latency")         /* want "contains .R." */
	r.Counter("trace.slow.retained")            // ok
	r.Counter("serve.http.requests")            // ok

	// Same name as a windowed histogram here, a gauge below: kind collision.
	r.Windowed("serve.dup.latency")
	r.Gauge("serve.dup.latency") /* want "registered as gauge here but as windowed at" */
}

// registerAdmission covers the admission-control family added with the
// overload work: queue depth/wait instrumentation and shed counters all go
// through the standard grammar.
func registerAdmission(r *obs.Registry) {
	r.Counter("serve.admission.admitted")        // ok
	r.Counter("serve.admission.queued")          // ok
	r.Counter("serve.admission.shed_queue_full") // ok
	r.Counter("serve.admission.shed_deadline")   // ok
	r.Gauge("serve.admission.queue_depth")       // ok
	r.Windowed("serve.admission.queue_wait_seconds")

	r.Counter("serve.admission.shed-deadline")    /* want "contains .-." */
	r.Counter("serve.Admission.shed")             /* want "contains .A." */
	r.Counter("serve.admission.queue.wait.depth") /* want "has 5 segment" */
}

// registerRuntime covers the runtime telemetry family. In the real tree
// these names are registered inside package obs (which the analyzer skips
// as the instrument implementation); this fixture pins that the names
// themselves satisfy the grammar any other package would be held to.
func registerRuntime(r *obs.Registry) {
	r.Gauge("runtime.goroutines")               // ok
	r.Gauge("runtime.heap.alloc_bytes")         // ok
	r.Counter("runtime.gc.cycles")              // ok
	r.Windowed("runtime.gc.pause_seconds")      // ok
	r.Windowed("runtime.sched.latency_seconds") // ok

	r.Gauge("runtime.heapAlloc")     /* want "contains .A." */
	r.Counter("runtime.gc.cycles.")  /* want "empty segment" */
	r.Gauge("2runtime.gc.cycles")    /* want "must start with a letter" */
	r.Gauge("runtime.2nd_gc.cycles") // ok: later segments may start with a digit
}

func handle(r *obs.Registry) {
	// The trace label is raw request text, not a metric name: exempt.
	tr := obs.NewTrace("//item[//keyword]{//name?}")

	// Span names on a trace are timers and must satisfy the grammar.
	s := tr.StartSpan("serve.parse") // ok
	s.End()
	bad := tr.StartSpan("parse") /* want "has 1 segment" */
	bad.End()
}
