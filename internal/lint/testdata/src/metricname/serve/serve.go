// Third package of the metricname fixture: the serving-layer registration
// surface. Windowed histograms are registrations like any other (and their
// names join the cross-kind collision check), request-trace span names go
// through the same grammar, and trace labels (NewTrace's argument) are
// exempt because they carry raw query text.
package serve

import "fix/obs"

func register(r *obs.Registry) {
	r.Windowed("serve.request.latency_seconds") // ok
	r.Windowed("latency")                       /* want "has 1 segment" */
	r.Windowed("serve.Request.latency")         /* want "contains .R." */
	r.Counter("trace.slow.retained")            // ok
	r.Counter("serve.http.requests")            // ok

	// Same name as a windowed histogram here, a gauge below: kind collision.
	r.Windowed("serve.dup.latency")
	r.Gauge("serve.dup.latency") /* want "registered as gauge here but as windowed at" */
}

func handle(r *obs.Registry) {
	// The trace label is raw request text, not a metric name: exempt.
	tr := obs.NewTrace("//item[//keyword]{//name?}")

	// Span names on a trace are timers and must satisfy the grammar.
	s := tr.StartSpan("serve.parse") // ok
	s.End()
	bad := tr.StartSpan("parse") /* want "has 1 segment" */
	bad.End()
}
