// A directory holding only _test.go files must never become a package:
// neither packageDirs nor parseDir may see it.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
