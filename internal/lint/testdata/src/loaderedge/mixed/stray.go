// A stray file from another package (a tool artifact left behind);
// the loader must not let it break the directory's real package.
package other

func O() int { return 4 }
