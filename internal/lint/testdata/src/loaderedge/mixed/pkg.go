// Package mixed has a stray file declaring another package name; the
// loader keeps the first package and drops the stray.
package mixed

func M() int { return 3 }
