// Underscore-prefixed directories are skipped wholesale.
package skip

func Skip() int { return 6 }
