// Package generics pins that the loader's type-check pass survives
// generic declarations, instantiations, and methods on generic types
// (the Instances map in types.Info).
package generics

type box[T any] struct {
	v T
}

func (b *box[T]) get() T { return b.v }

func sum[T ~int | ~float64](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// Use instantiates both the generic function and the generic type.
func Use() int {
	b := &box[int]{v: sum([]int{1, 2, 3})}
	return b.get()
}
