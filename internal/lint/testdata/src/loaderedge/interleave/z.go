package interleave

import "fix/interleave/sub"

func Z() int { return A() + sub.S() }
