// Package sub sits between a.go and z.go in directory order.
package sub

// S is imported by the parent package to exercise module-internal
// import resolution across the interleaved walk.
func S() int { return 2 }
