// Package interleave's files sort around the sub/ directory entry
// (a.go, sub/, z.go): WalkDir yields the directory's files in two runs,
// which is the double-collection regression this fixture pins. The bare
// directive below must be reported exactly once.
package interleave

//lint:sorted
func A() int { return 1 }
