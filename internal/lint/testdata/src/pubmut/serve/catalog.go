// Fixture for the pubmut analyzer: values published through atomic
// pointers are frozen at the Store, and loaded snapshots are always
// read-only. Good patterns are uncommented; violations carry position-
// exact want comments.
package serve

import "sync/atomic"

type catalog struct {
	entries map[string]int
	n       int
}

var ptr atomic.Pointer[catalog]
var boxed atomic.Value
var retained *catalog

// publishThenWrite is the core violation: the builder keeps writing
// after the value went live for concurrent readers.
func publishThenWrite() {
	c := &catalog{entries: map[string]int{}}
	c.n = 1 // pre-publish writes are the builder phase: fine
	ptr.Store(c)
	c.n = 2            /* want "published through an atomic pointer" */
	c.entries["x"] = 3 /* want "published through an atomic pointer" */
	c.n++              /* want "published through an atomic pointer" */
}

// publishValueForm covers the Store(&v) spelling.
func publishValueForm() {
	var c catalog
	ptr.Store(&c)
	c.n = 1 /* want "published through an atomic pointer" */
}

// publishViaValue covers atomic.Value, which boxes rather than points.
func publishViaValue() {
	c := &catalog{}
	boxed.Store(c)
	c.n = 1 /* want "published through an atomic pointer" */
}

// aliasWrite mutates through a pointer alias taken before the publish.
func aliasWrite() {
	c := &catalog{}
	w := c
	ptr.Store(c)
	w.n = 1 /* want "published through an atomic pointer" */
}

// escapeAfterPublish parks the published value in a longer-lived
// location, inviting a later out-of-band mutation.
func escapeAfterPublish() {
	c := &catalog{}
	ptr.Store(c)
	retained = c /* want "aliased into a longer-lived location" */
}

// snapshotWrite mutates a loaded snapshot some other goroutine may be
// reading through its own Load.
func snapshotWrite() {
	c := ptr.Load()
	c.n = 1 /* want "mutates a published snapshot" */
}

// directLoadWrite writes through the Load call itself.
func directLoadWrite() {
	ptr.Load().n = 1 /* want "mutates a published snapshot" */
}

// view is a load-shaped accessor: every return path hands out the
// published value, so its callers hold snapshots too.
func view() *catalog {
	return ptr.Load()
}

// accessorSnapshotWrite mutates an accessor result two hops from the
// atomic itself.
func accessorSnapshotWrite() {
	c := view()
	c.n = 1 /* want "mutates a published snapshot" */
}

// buildFreshOK is the sanctioned pattern: build, publish, hand back for
// reading.
func buildFreshOK() *catalog {
	c := &catalog{entries: map[string]int{}}
	c.n = 7
	ptr.Store(c)
	return c
}

// reassignOK rebinds the variable to a fresh value after publishing, so
// the later writes never touch the shared one.
func reassignOK() {
	c := &catalog{}
	ptr.Store(c)
	c = &catalog{}
	c.n = 1
	ptr.Store(c)
}

// swapTakeOK takes ownership of the old value through Swap; the taker
// is its only holder and may mutate freely.
func swapTakeOK() {
	old := ptr.Swap(nil)
	if old != nil {
		old.n = 0
	}
}

// readOnlyUseOK reads fields and calls methods on snapshots: only
// writes are the hazard.
func readOnlyUseOK() int {
	c := ptr.Load()
	if c == nil {
		return 0
	}
	return c.n + len(c.entries)
}

// seedThenFill publishes a placeholder before filling it so readers
// never observe nil; the single-threaded handoff justifies the
// post-publish write.
func seedThenFill() {
	c := &catalog{entries: map[string]int{}}
	ptr.Store(c)
	//lint:prepublish single-threaded startup: readers begin only after seedThenFill returns
	c.n = 9
}

// bareDirective pins the reason-less directive rule: it suppresses
// nothing and is itself a finding.
func bareDirective() {
	c := &catalog{}
	ptr.Store(c)
	/* want "requires a justification" */ //lint:prepublish
	c.n = 1                               /* want "published through an atomic pointer" */
}
