// Fixture for the mapiter analyzer: map ranges in a determinism-critical
// package must drain into a sorted slice, live in a sorted-drain helper, or
// carry a //lint:sorted justification.
package tsbuild

import "sort"

// labelsOf is the canonical good pattern: drain, then sort.
func labelsOf(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sum accumulates a float in map order: the classic bug.
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { /* want "map iteration order is random" */
		s += v
	}
	return s
}

// sortedKeys is exempt by name: an allowlisted sorted-drain helper.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// keysSorted is exempt by the suffix form of the allowlist.
func keysSorted(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// justified shows a suppressed range: counting is order-independent.
func justified(m map[string]int) int {
	n := 0
	//lint:sorted entry count does not depend on iteration order
	for range m {
		n++
	}
	return n
}

// bare carries a directive without a reason: the range stays flagged and
// the empty justification is reported too.
func bare(m map[string]int) int {
	n := 0
	for range m { /* want "map iteration order is random" "requires a justification" */ //lint:sorted
		n++
	}
	return n
}

// sortBefore sorts before the range, which proves nothing about the map
// drain: still flagged.
func sortBefore(m map[string]int, xs []int) int {
	sort.Ints(xs)
	n := 0
	for range m { /* want "map iteration order is random" */
		n++
	}
	return n
}

// sliceRange is not a map range and is never flagged.
func sliceRange(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}
