// Fixture for the floatorder analyzer: float compound accumulation into a
// variable captured by a goroutine depends on completion order (float
// addition is not associative), even when the writes are mutex-protected.
// The sanctioned shapes are per-goroutine slots and goroutine-local
// accumulators reduced afterwards in fixed order.
package eval

import "sync"

// sharedAccum is the bug: every goroutine folds into one float.
func sharedAccum(items []float64) float64 {
	var mu sync.Mutex
	var total float64
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			mu.Lock()
			total += v /* want "completion-order dependent" */
			mu.Unlock()
		}(items[i])
	}
	wg.Wait()
	return total
}

// perSlot is the order-independent shape: each goroutine owns a slot
// indexed by its own parameter, reduced sequentially afterwards.
func perSlot(items []float64, workers int) float64 {
	parts := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				parts[w] += items[i]
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total
}

// localAccum accumulates into a goroutine-local variable and ships the
// result over a channel: also fine.
func localAccum(items []float64) float64 {
	ch := make(chan float64, 1)
	go func() {
		sum := 0.0
		for _, v := range items {
			sum += v
		}
		ch <- sum
	}()
	return <-ch
}

// intAccum shows the analyzer's scope: integer accumulation is exact under
// any order, so it is not floatorder's concern (the race detector owns it).
func intAccum(items []int) int {
	var n int
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		n += len(items)
		mu.Unlock()
	}()
	wg.Wait()
	return n
}

// structField flags accumulation through a captured struct pointer too.
type acc struct{ sum float64 }

func structField(items []float64, a *acc) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range items {
			a.sum += v /* want "completion-order dependent" */
		}
	}()
	wg.Wait()
}

// justified documents a single-goroutine case where order is fixed.
func justified(items []float64, a *acc) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, v := range items {
			//lint:floatorder one goroutine folds the whole slice; order is the slice order
			a.sum += v
		}
	}()
	<-done
}
