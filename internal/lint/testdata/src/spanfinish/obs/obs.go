// Tracing stand-in for the spanfinish fixture: a named type ending in
// "Span", started via StartSpan and finished via End.
package obs

// Span times one phase of a request.
type Span struct {
	done bool
}

// End finishes the span.
func (s *Span) End() { s.done = true }

// StartSpan opens a free-standing span.
func StartSpan(name string) *Span {
	_ = name
	return &Span{}
}

// Trace groups the spans of one request.
type Trace struct{}

// StartSpan opens a span under the trace.
func (t *Trace) StartSpan(name string) *Span {
	_ = name
	return &Span{}
}
