// Span-lifecycle half of the spanfinish fixture: every started span must
// be finished on all paths out of its live range. Good patterns are
// uncommented; violations carry position-exact want comments.
package eval

import (
	"errors"

	"fix/obs"
)

var errFail = errors.New("fail")

func work() int { return 1 }

func sortFunc(xs []int, less func(a, b int) bool) {
	_ = xs
	_ = less
}

// allPathsOK ends the span explicitly on both exits.
func allPathsOK(tr *obs.Trace, fail bool) error {
	span := tr.StartSpan("eval.memo")
	if fail {
		span.End()
		return errFail
	}
	span.End()
	return nil
}

// deferOK finishes through the canonical defer.
func deferOK(tr *obs.Trace) error {
	span := tr.StartSpan("eval.plan")
	defer span.End()
	if work() == 0 {
		return errFail
	}
	return nil
}

// deferClosureOK finishes inside a deferred closure.
func deferClosureOK(tr *obs.Trace) {
	span := tr.StartSpan("eval.emit")
	defer func() {
		span.End()
	}()
	work()
}

// blockScopedOK confines the span to the if-block and ends it there.
func blockScopedOK(tr *obs.Trace, slow bool) int {
	if slow {
		ds := tr.StartSpan("serve.delay")
		work()
		ds.End()
	}
	return work()
}

// handedOff passes the span on: the new owner finishes it.
func handedOff(tr *obs.Trace) {
	span := tr.StartSpan("eval.emit")
	finishLater(span)
}

func finishLater(s *obs.Span) { s.End() }

// closureReturnOK: the return inside the comparator exits the closure,
// not this function, so it is not one of the span's exit paths.
func closureReturnOK(tr *obs.Trace, xs []int) {
	span := tr.StartSpan("eval.sort")
	sortFunc(xs, func(a, b int) bool {
		return a < b
	})
	span.End()
}

// discarded drops StartSpan results outright, in both spellings.
func discarded(tr *obs.Trace) {
	tr.StartSpan("eval.plan") /* want "StartSpan result is discarded" */
	_ = obs.StartSpan("x")    /* want "StartSpan result is discarded" */
}

// leakyError misses the End on the error path.
func leakyError(tr *obs.Trace, fail bool) error {
	span := tr.StartSpan("eval.memo")
	if fail {
		return errFail /* want "return path does not finish span span" */
	}
	span.End()
	return nil
}

// rebindDropsFirst rebinds the variable while the first span is still
// open; the first instance is never finished.
func rebindDropsFirst(tr *obs.Trace) {
	span := tr.StartSpan("eval.plan") /* want "span span is never finished" */
	span = tr.StartSpan("eval.memo")
	span.End()
}

// rebindCond ends the first span only conditionally before rebinding.
func rebindCond(tr *obs.Trace, c bool) {
	span := tr.StartSpan("eval.step")
	if c {
		span.End()
	}
	span = tr.StartSpan("eval.next") /* want "rebound before the previous span was finished" */
	span.End()
}

// blockLeak can fall out of the if-block with the span still open.
func blockLeak(tr *obs.Trace, slow bool) int {
	if slow {
		ds := tr.StartSpan("serve.delay") /* want "may leak when its scope falls through" */
		if work() > 0 {
			ds.End()
		}
	}
	return work()
}

// justifiedLeak intentionally leaves the span open on the error path for
// the shutdown flusher, and says so.
func justifiedLeak(tr *obs.Trace, fail bool) error {
	span := tr.StartSpan("eval.load")
	if fail {
		//lint:spanfinish the shutdown hook flushes spans left open by aborted loads
		return errFail
	}
	span.End()
	return nil
}
