// Error-path half of the spanfinish fixture: serving error paths answer
// through fail/shed helpers whose code argument names a registered
// package-level constant.
package serve

import "net/http"

const (
	codeBadInput = "bad_input"
	codeOverload = "overload"
)

type server struct{}

// fail writes the structured JSON error answer.
func (s *server) fail(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status)
	_, _ = w.Write([]byte(code + ": " + msg))
}

// shed refuses a request at admission.
func shed(w http.ResponseWriter, code string) {
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte(code))
}

func (s *server) handleThing(w http.ResponseWriter, bad bool) {
	if bad {
		s.fail(w, http.StatusBadRequest, codeBadInput, "bad input")
		return
	}
	s.fail(w, http.StatusBadRequest, "bad_input", "literal spelling") /* want "spelled as a bare literal" */
	s.fail(w, http.StatusNotFound, "mystery_code", "unregistered")    /* want "not a registered package-level code constant" */
	http.Error(w, "nope", http.StatusInternalServerError)             /* want "bare http.Error bypasses the structured JSON error contract" */
}

func (s *server) handleLoad(w http.ResponseWriter) {
	shed(w, codeOverload)
	shed(w, "overload") /* want "spelled as a bare literal" */
}
