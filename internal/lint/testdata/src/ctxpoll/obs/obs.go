// Telemetry stand-in for the ctxpoll fixture: calls into package obs are
// the cut boundary, so Observe's constant-bounded bucket walk must not
// make its callers' loops count as unbounded.
package obs

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	buckets []int64
}

// Observe walks the constant-size bucket array.
func (h *Histogram) Observe(v int64) {
	for i := range h.buckets {
		h.buckets[i] += v
	}
}
