// Fixture for the ctxpoll analyzer: loops reachable from the serving
// entry points that do unbounded per-iteration work must poll ctx via
// the tickCtx pattern. Good patterns are uncommented; violations carry
// position-exact want comments.
package eval

import (
	"context"

	"fix/obs"
)

type sketch struct {
	edges []int
}

// scanAll loops over the synopsis: any caller iterating over it does
// unbounded per-iteration work.
func scanAll(sk *sketch) int {
	total := 0
	for _, e := range sk.edges {
		total += e
	}
	return total
}

type evaluator struct {
	ctx     context.Context
	ctxTick uint
}

// tickCtx charges n work units against the cancellation budget.
func (ev *evaluator) tickCtx(n int) {
	if ev.ctx == nil {
		return
	}
	ev.ctxTick += uint(n)
}

// ExactContext is a serving root; its own unpolled sweep is the first
// violation.
func ExactContext(ctx context.Context, h *obs.Histogram, sks []*sketch) int {
	ev := &evaluator{ctx: ctx}
	total := 0
	for _, sk := range sks { /* want "unbounded per-iteration work without polling ctx" */
		total += scanAll(sk)
	}
	total += ev.unpolledWalk(sks)
	total += ev.polledWalk(sks)
	total += ev.postChargeWalk(sks)
	total += ev.calleePollOK(sks)
	total += justifiedWalk(sks)
	total += directErrWalk(ctx, sks)
	telemetryOK(h, sks)
	return total
}

// unpolledWalk is the transitive case: not itself a root, but reachable
// from one, looping over unbounded scans with no poll anywhere.
func (ev *evaluator) unpolledWalk(sks []*sketch) int {
	total := 0
	for _, sk := range sks { /* want "unbounded per-iteration work without polling ctx" */
		total += scanAll(sk)
	}
	return total
}

// polledWalk charges the budget inside the loop: the canonical pattern.
func (ev *evaluator) polledWalk(sks []*sketch) int {
	total := 0
	for _, sk := range sks {
		ev.tickCtx(1)
		total += scanAll(sk)
	}
	return total
}

// postChargeWalk polls once after the inner scans (the post-charge
// idiom); the function-level poll site covers its loops.
func (ev *evaluator) postChargeWalk(sks []*sketch) int {
	total := 0
	for _, sk := range sks {
		total += scanAll(sk)
	}
	ev.tickCtx(total)
	return total
}

// calleePollOK delegates the polling to its callee, which participates
// in the discipline itself.
func (ev *evaluator) calleePollOK(sks []*sketch) int {
	total := 0
	for _, sk := range sks {
		total += ev.polledScan(sk)
	}
	return total
}

func (ev *evaluator) polledScan(sk *sketch) int {
	total := 0
	for _, e := range sk.edges {
		ev.tickCtx(1)
		total += e
	}
	return total
}

// justifiedWalk is bounded by construction and says so at the loop.
func justifiedWalk(sks []*sketch) int {
	total := 0
	//lint:ctxpoll sks is capped by the request-body limit upstream
	for _, sk := range sks {
		total += scanAll(sk)
	}
	return total
}

// directErrWalk checks the context itself each iteration.
func directErrWalk(ctx context.Context, sks []*sketch) int {
	total := 0
	for _, sk := range sks {
		if ctx.Err() != nil {
			return total
		}
		total += scanAll(sk)
	}
	return total
}

// telemetryOK loops only over telemetry calls: the obs boundary is cut,
// so the bucket walk inside Observe does not count as unbounded work.
func telemetryOK(h *obs.Histogram, sks []*sketch) {
	for range sks {
		h.Observe(1)
	}
}
