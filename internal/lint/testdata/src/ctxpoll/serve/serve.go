// Serve-side half of the ctxpoll fixture: handler methods (handle*) are
// serving roots by pattern, and functions no root reaches stay silent.
package serve

// Server fans requests out over its catalog.
type Server struct {
	names []string
}

// handleQuery is a serving root by method-name pattern.
func (s *Server) handleQuery() int {
	total := 0
	for _, n := range s.names { /* want "unbounded per-iteration work without polling ctx" */
		total += expand(n)
	}
	return total
}

// expand loops, making it unbounded per-iteration work for callers.
func expand(n string) int {
	total := 0
	for range n {
		total++
	}
	return total
}

// notReachable has the identical unpolled shape, but no serving root
// reaches it: the analyzer must stay silent here.
func notReachable(names []string) int {
	total := 0
	for _, n := range names {
		total += expand(n)
	}
	return total
}
