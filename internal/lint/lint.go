// Package lint is the project-specific static-analysis suite for the
// TreeSketch repository. It is built purely on the standard library's
// go/ast, go/parser, go/types, and go/token packages (no external analysis
// framework) and enforces invariants the compiler cannot: deterministic
// iteration in build/eval code, epoch-guarded access to dense memo planes,
// canonical observability metric names, absence of wall-clock and global
// randomness on fingerprint-critical paths, and order-independent float
// reduction across goroutines.
//
// Each Analyzer runs over a type-checked Program (see Load) and returns
// Findings. A finding can be suppressed by a justification comment on the
// same line or the line immediately above:
//
//	//lint:<directive> <reason>
//
// where <directive> is the analyzer's directive name (e.g. "sorted" for
// mapiter, "nondet" for the determinism analyzer). The reason is mandatory;
// a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-relative path
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	Name      string
	Doc       string
	Directive string // suppression directive accepted in //lint: comments
	Run       func(p *Program) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIterAnalyzer,
		EpochGuardAnalyzer,
		MetricNameAnalyzer,
		NonDetAnalyzer,
		FloatOrderAnalyzer,
		PubMutAnalyzer,
		CtxPollAnalyzer,
		SpanFinishAnalyzer,
	}
}

// suppression is one parsed //lint:<directive> <reason> comment.
type suppression struct {
	directive string
	reason    string
	line      int
	pos       token.Position
}

// collectSuppressions extracts //lint: directives from a file's comments.
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			directive, reason, _ := strings.Cut(text, " ")
			pos := fset.Position(c.Pos())
			out = append(out, suppression{
				directive: strings.TrimSpace(directive),
				reason:    strings.TrimSpace(reason),
				line:      pos.Line,
				pos:       pos,
			})
		}
	}
	return out
}

// suppressed reports whether a finding at pos is covered by a justified
// directive on the same line or the line immediately above.
func (p *Program) suppressed(directive string, pos token.Position) bool {
	for _, sups := range p.suppress {
		for _, s := range sups {
			if s.directive == directive && s.reason != "" && s.pos.Filename == pos.Filename &&
				(s.line == pos.Line || s.line == pos.Line-1) {
				return true
			}
		}
	}
	return false
}

// RunAll executes the given analyzers over the program, applies //lint:
// suppressions, reports bare (reason-less) directives, and returns the
// surviving findings sorted by file, line, column, and analyzer.
func RunAll(prog *Program, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if prog.suppressed(a.Directive, f.Pos) {
				continue
			}
			f.Analyzer = a.Name
			f.File = prog.RelFile(f.Pos.Filename)
			f.Line = f.Pos.Line
			f.Column = f.Pos.Column
			out = append(out, f)
		}
		// A bare directive asserts an exemption without saying why; that is
		// a finding in its own right.
		for _, sups := range prog.suppress {
			for _, s := range sups {
				if s.directive == a.Directive && s.reason == "" {
					out = append(out, Finding{
						Analyzer: a.Name,
						Pos:      s.pos,
						File:     prog.RelFile(s.pos.Filename),
						Line:     s.pos.Line,
						Column:   s.pos.Column,
						Message:  fmt.Sprintf("//lint:%s requires a justification (\"//lint:%s <reason>\")", a.Directive, a.Directive),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// --- shared analyzer helpers ---

// packagesNamed yields the loaded packages whose package name (not import
// path) is in names. Matching by name lets testdata fixtures replicate the
// real packages' configuration.
func packagesNamed(p *Program, names ...string) []*Package {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Package
	for _, pkg := range p.Packages {
		if want[pkg.Name] {
			out = append(out, pkg)
		}
	}
	return out
}

// contains reports whether a string slice holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// finding builds a Finding at pos with a formatted message.
func finding(p *Program, pos token.Pos, format string, args ...any) Finding {
	return Finding{Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// moduleFuncs indexes every module function declaration (with a body) by
// its *types.Func object. Call-graph analyzers build their edges on top of
// this shared index.
func moduleFuncs(p *Program) map[*types.Func]*funcNode {
	decls := make(map[*types.Func]*funcNode)
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj] = &funcNode{pkg: pkg, decl: fd}
			}
		}
	}
	return decls
}
