package lint

import (
	"encoding/json"
	"io"
)

// SARIF output (Static Analysis Results Interchange Format 2.1.0), the
// subset GitHub code scanning ingests: one run, one tool driver carrying a
// rule per analyzer, and one result per finding with a physical location.
// The writer is deterministic — rules follow the analyzer slice order and
// results follow the (already sorted) findings order — so CI uploads are
// byte-stable for identical findings.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Every analyzer in
// the suite appears as a rule (so code scanning shows the full rule set
// even on a clean run); every finding becomes an error-level result whose
// artifact URI is the module-relative path RunAll already assigned.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	ruleIndex := make(map[string]int, len(analyzers))
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		ruleIndex[a.Name] = i
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
