package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIterAnalyzer flags `range` statements over maps in the
// determinism-critical packages (tsbuild, sketch, eval, tier). Go randomizes map
// iteration order, so any map range that feeds floats, slices, heaps, or
// fingerprints in those packages is a latent nondeterminism bug.
//
// Two escape hatches exist for the legitimate pattern of draining a map into
// a slice that is subsequently sorted:
//
//   - the enclosing function is an allowlisted sorted-drain helper (its name
//     starts with "sorted" or ends with "Sorted"), or
//   - the enclosing function sorts after the range (a sort.* or
//     slices.Sort* call lexically follows the range statement), or
//   - the statement carries a "//lint:sorted <reason>" justification.
var MapIterAnalyzer = &Analyzer{
	Name:      "mapiter",
	Doc:       "range over map in determinism-critical packages without a sorted drain",
	Directive: "sorted",
	Run:       runMapIter,
}

func runMapIter(p *Program) []Finding {
	var out []Finding
	for _, pkg := range packagesNamed(p, "tsbuild", "sketch", "eval", "tier") {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, mapRangesIn(p, pkg, fd)...)
			}
		}
	}
	return out
}

// sortedDrainName reports whether a function name marks a helper whose whole
// purpose is draining a map in sorted order.
func sortedDrainName(name string) bool {
	return strings.HasPrefix(name, "sorted") || strings.HasSuffix(name, "Sorted")
}

func mapRangesIn(p *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	if sortedDrainName(fd.Name.Name) {
		return nil
	}
	// Collect the positions of sort calls in the function first, then flag
	// map ranges that no sort call follows.
	var sortPos []ast.Node
	var ranges []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isSortCall(pkg, n) {
				sortPos = append(sortPos, n)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[n.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, n)
				}
			}
		}
		return true
	})
	var out []Finding
	for _, rs := range ranges {
		sortedAfter := false
		for _, sc := range sortPos {
			if sc.Pos() > rs.Pos() {
				sortedAfter = true
				break
			}
		}
		if sortedAfter {
			continue
		}
		out = append(out, finding(p, rs.Pos(),
			"map iteration order is random: range over map in package %s must drain into a sorted slice or carry //lint:sorted", pkg.Name))
	}
	return out
}

// isSortCall recognizes sort.* and slices.Sort* calls.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
