package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrderAnalyzer flags floating-point compound accumulation (+=, -=,
// *=, /=) into variables captured from outside a goroutine body, in the
// packages that run parallel numeric work (tsbuild, eval). Float addition
// is not associative: accumulating into a shared variable from concurrently
// scheduled goroutines makes the final bits depend on completion order even
// when the writes are mutex-protected. Parallel code must instead
// accumulate into per-goroutine slots (an indexed slice cell or a worker
// context passed as the goroutine's parameter) and reduce in a fixed order
// afterwards — the order-independent reduction pattern used by the TSBuild
// candidate evaluator.
var FloatOrderAnalyzer = &Analyzer{
	Name:      "floatorder",
	Doc:       "order-dependent float accumulation into a captured variable inside a goroutine",
	Directive: "floatorder",
	Run:       runFloatOrder,
}

func runFloatOrder(p *Program) []Finding {
	var out []Finding
	for _, pkg := range packagesNamed(p, "tsbuild", "eval") {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				out = append(out, capturedFloatAccums(p, pkg, lit)...)
				return true
			})
		}
	}
	return out
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

// capturedFloatAccums reports float compound assignments inside lit whose
// target's root variable is declared outside the literal (i.e. captured and
// potentially shared with other goroutines).
func capturedFloatAccums(p *Program, pkg *Package, lit *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[as.Tok] || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloatExpr(pkg, lhs) {
			return true
		}
		root := rootIdent(lhs)
		if root == nil {
			return true
		}
		obj := pkg.Info.Uses[root]
		if obj == nil {
			obj = pkg.Info.Defs[root]
		}
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the goroutine (parameter or local)
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if indexedByInnerVar(pkg, lhs, lit) {
			// Captured slice indexed by a goroutine-local variable: the
			// per-worker-slot shape of the order-independent reduction.
			return true
		}
		out = append(out, finding(p, as.Pos(),
			"float accumulation into captured %q inside a goroutine is completion-order dependent; accumulate per-goroutine and reduce in fixed order", root.Name))
		return true
	})
	return out
}

// isFloatExpr reports whether e has a floating-point type.
func isFloatExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// indexedByInnerVar reports whether any index expression along the lvalue
// chain references a variable declared inside the goroutine literal — the
// per-worker slot (acc[worker] += v) that makes concurrent accumulation
// order-independent.
func indexedByInnerVar(pkg *Package, e ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			inner := false
			ast.Inspect(t.Index, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					obj = pkg.Info.Defs[id]
				}
				if v, okVar := obj.(*types.Var); okVar &&
					v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
					inner = true
				}
				return !inner
			})
			if inner {
				return true
			}
			e = t.X
		default:
			return false
		}
	}
}

// rootIdent returns the base identifier of an lvalue chain like
// x.field[i].y, or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}
