package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochGuardAnalyzer enforces the epoch-stamped dense memo plane protocol in
// package eval. A "plane" is a pair of parallel slices `<p>Ep`/`<p>Val` on a
// struct that also carries an `epoch` field: a slot's value is only
// meaningful when its Ep entry equals the current epoch, which lets the
// scratch space be recycled without clearing (see exactScratch and
// pathTrie).
//
// The analyzer performs a lexical dominance walk over every function in
// package eval:
//
//   - reading `x.<p>Val[i]` requires an enclosing `x.<p>Ep[i] == e.epoch`
//     check (the then-branch of ==, the else-branch of !=; && unions guards),
//     or an earlier `x.<p>Ep[i] = e.epoch` stamp in the same block;
//   - writing `x.<p>Val[i]` requires the stamp (or a guard) to dominate the
//     write, so a slot can never hold a fresh value with a stale epoch.
//
// Function literals start with an empty guard set: a closure cannot inherit
// a guard that may no longer hold when it runs.
var EpochGuardAnalyzer = &Analyzer{
	Name:      "epochguard",
	Doc:       "epoch-plane access not dominated by an epoch check or stamp",
	Directive: "epochguard",
	Run:       runEpochGuard,
}

func runEpochGuard(p *Program) []Finding {
	var out []Finding
	for _, pkg := range packagesNamed(p, "eval") {
		planes := epochPlanes(pkg)
		if len(planes) == 0 {
			continue
		}
		w := &epochWalker{prog: p, pkg: pkg, planes: planes}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					w.block(fd.Body, newGuardSet(nil))
				}
			}
		}
		out = append(out, w.findings...)
	}
	return out
}

// epochPlanes scans the package's struct types for epoch-stamped planes:
// a struct with an `epoch` field and at least one `<p>Ep`/`<p>Val` slice
// pair. The result maps the *types.Struct to its plane prefixes.
func epochPlanes(pkg *Package) map[*types.Struct]map[string]bool {
	out := make(map[*types.Struct]map[string]bool)
	if pkg.Types == nil {
		return out
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		hasEpoch := false
		fields := make(map[string]types.Type, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fields[f.Name()] = f.Type()
			if f.Name() == "epoch" {
				if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					hasEpoch = true
				}
			}
		}
		if !hasEpoch {
			continue
		}
		prefixes := make(map[string]bool)
		for fname, ftype := range fields {
			prefix, ok := strings.CutSuffix(fname, "Ep")
			if !ok || prefix == "" {
				continue
			}
			if _, ok := ftype.Underlying().(*types.Slice); !ok {
				continue
			}
			val, ok := fields[prefix+"Val"]
			if !ok {
				continue
			}
			if _, ok := val.Underlying().(*types.Slice); !ok {
				continue
			}
			prefixes[prefix] = true
		}
		if len(prefixes) > 0 {
			out[st] = prefixes
		}
	}
	return out
}

// guardSet tracks which plane slots are currently proven valid. Keys are
// canonical "base.prefix[index]" strings from planeKey. Sets are persistent:
// with extends a parent without mutating it.
type guardSet struct {
	parent *guardSet
	keys   map[string]bool
}

func newGuardSet(parent *guardSet) *guardSet { return &guardSet{parent: parent} }

func (g *guardSet) has(key string) bool {
	for s := g; s != nil; s = s.parent {
		if s.keys[key] {
			return true
		}
	}
	return false
}

func (g *guardSet) add(key string) {
	if g.keys == nil {
		g.keys = make(map[string]bool)
	}
	g.keys[key] = true
}

// planeAccess describes one syntactic access x.<p>Ep[i] or x.<p>Val[i].
type planeAccess struct {
	key    string // "x.p[i]" canonical slot identity
	prefix string
	isVal  bool
	node   *ast.IndexExpr
}

type epochWalker struct {
	prog     *Program
	pkg      *Package
	planes   map[*types.Struct]map[string]bool
	findings []Finding
}

// planeAccessOf decodes an index expression into a plane access if its base
// is a `<p>Ep` or `<p>Val` field of a plane-carrying struct.
func (w *epochWalker) planeAccessOf(idx *ast.IndexExpr) *planeAccess {
	sel, ok := idx.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recvType := w.pkg.Info.Types[sel.X].Type
	if recvType == nil {
		return nil
	}
	if ptr, ok := recvType.Underlying().(*types.Pointer); ok {
		recvType = ptr.Elem()
	}
	st, ok := recvType.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	prefixes := w.planesFor(st)
	if prefixes == nil {
		return nil
	}
	name := sel.Sel.Name
	for _, suffix := range []string{"Ep", "Val"} {
		prefix, ok := strings.CutSuffix(name, suffix)
		if !ok || !prefixes[prefix] {
			continue
		}
		key := types.ExprString(sel.X) + "." + prefix + "[" + types.ExprString(idx.Index) + "]"
		return &planeAccess{key: key, prefix: prefix, isVal: suffix == "Val", node: idx}
	}
	return nil
}

// planesFor matches a struct against the discovered plane set, comparing by
// identity first and by structural equality as a fallback (the struct seen
// through a field access can be a distinct *types.Struct value).
func (w *epochWalker) planesFor(st *types.Struct) map[string]bool {
	if p, ok := w.planes[st]; ok {
		return p
	}
	for known, p := range w.planes {
		if types.Identical(known, st) {
			return p
		}
	}
	return nil
}

// isEpochExpr reports whether e reads the `epoch` field of some struct (the
// right-hand side of a guard comparison or a stamp).
func (w *epochWalker) isEpochExpr(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "epoch"
}

// guardsOf extracts the plane slots proven valid by cond being true (eq) or
// false (!eq). `a && b` unions its operands' guards for the true branch;
// `a || b` unions for the false branch.
func (w *epochWalker) guardsOf(cond ast.Expr, wantTrue bool) []string {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if wantTrue {
				return append(w.guardsOf(e.X, true), w.guardsOf(e.Y, true)...)
			}
		case token.LOR:
			if !wantTrue {
				return append(w.guardsOf(e.X, false), w.guardsOf(e.Y, false)...)
			}
		case token.EQL, token.NEQ:
			matches := (e.Op == token.EQL) == wantTrue
			if !matches {
				return nil
			}
			for _, pair := range [][2]ast.Expr{{e.X, e.Y}, {e.Y, e.X}} {
				idx, ok := ast.Unparen(pair[0]).(*ast.IndexExpr)
				if !ok {
					continue
				}
				pa := w.planeAccessOf(idx)
				if pa == nil || pa.isVal {
					continue
				}
				if w.isEpochExpr(pair[1]) {
					return []string{pa.key}
				}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return w.guardsOf(e.X, !wantTrue)
		}
	}
	return nil
}

// stampOf returns the slot key when stmt is an epoch stamp
// `x.<p>Ep[i] = e.epoch` (possibly among parallel assignments).
func (w *epochWalker) stampOf(stmt ast.Stmt) []string {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil
	}
	var keys []string
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		pa := w.planeAccessOf(idx)
		if pa == nil || pa.isVal {
			continue
		}
		if w.isEpochExpr(as.Rhs[i]) {
			keys = append(keys, pa.key)
		}
	}
	return keys
}

// block walks a statement list, threading stamps forward: a stamp enables
// the remainder of its block and all nested scopes.
func (w *epochWalker) block(b *ast.BlockStmt, g *guardSet) {
	local := newGuardSet(g)
	for _, stmt := range b.List {
		w.stmt(stmt, local)
		for _, key := range w.stampOf(stmt) {
			local.add(key)
		}
	}
}

func (w *epochWalker) stmt(s ast.Stmt, g *guardSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s, g)
	case *ast.IfStmt:
		scope := g
		if s.Init != nil {
			scope = newGuardSet(g)
			w.stmt(s.Init, scope)
			for _, key := range w.stampOf(s.Init) {
				scope.add(key)
			}
		}
		w.expr(s.Cond, scope)
		then := newGuardSet(scope)
		for _, key := range w.guardsOf(s.Cond, true) {
			then.add(key)
		}
		w.block(s.Body, then)
		if s.Else != nil {
			els := newGuardSet(scope)
			for _, key := range w.guardsOf(s.Cond, false) {
				els.add(key)
			}
			w.stmt(s.Else, els)
		}
	case *ast.ForStmt:
		scope := newGuardSet(g)
		if s.Init != nil {
			w.stmt(s.Init, scope)
		}
		if s.Cond != nil {
			w.expr(s.Cond, scope)
		}
		if s.Post != nil {
			w.stmt(s.Post, scope)
		}
		w.block(s.Body, scope)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.block(s.Body, newGuardSet(g))
	case *ast.SwitchStmt:
		scope := newGuardSet(g)
		if s.Init != nil {
			w.stmt(s.Init, scope)
			for _, key := range w.stampOf(s.Init) {
				scope.add(key)
			}
		}
		if s.Tag != nil {
			w.expr(s.Tag, scope)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, scope)
				}
				inner := newGuardSet(scope)
				for _, st := range cc.Body {
					w.stmt(st, inner)
					for _, key := range w.stampOf(st) {
						inner.add(key)
					}
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.walkExprsIn(s, g)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, g)
		}
		stamps := w.stampOf(s)
		for _, lhs := range s.Lhs {
			w.assignTarget(lhs, g, stamps)
		}
	case *ast.IncDecStmt:
		w.assignTarget(s.X, g, nil)
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeclStmt:
		w.walkExprsIn(s, g)
	case *ast.GoStmt:
		w.expr(s.Call, g)
	case *ast.DeferStmt:
		w.expr(s.Call, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, g)
				}
				inner := newGuardSet(g)
				for _, st := range cc.Body {
					w.stmt(st, inner)
					for _, key := range w.stampOf(st) {
						inner.add(key)
					}
				}
			}
		}
	}
}

// assignTarget checks a left-hand side. A Val write is legal when its slot
// is enabled by a guard, an earlier stamp, or a stamp in this very
// statement (the common `Ep[i], Val[i] = epoch, v` form).
func (w *epochWalker) assignTarget(lhs ast.Expr, g *guardSet, stamps []string) {
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if pa := w.planeAccessOf(idx); pa != nil {
			if pa.isVal && !g.has(pa.key) && !contains(stamps, pa.key) {
				w.findings = append(w.findings, finding(w.prog, idx.Pos(),
					"write to epoch plane %sVal without a dominating epoch stamp (%sEp[...] = epoch)", pa.prefix, pa.prefix))
			}
			w.expr(idx.Index, g)
			return
		}
	}
	w.expr(lhs, g)
}

// expr flags unguarded Val reads anywhere in an expression tree. Function
// literals restart with an empty guard set.
func (w *epochWalker) expr(e ast.Expr, g *guardSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != nil {
				w.block(n.Body, newGuardSet(nil))
			}
			return false
		case *ast.IndexExpr:
			if pa := w.planeAccessOf(n); pa != nil && pa.isVal && !g.has(pa.key) {
				w.findings = append(w.findings, finding(w.prog, n.Pos(),
					"read of epoch plane %sVal not dominated by an epoch check (%sEp[...] == epoch)", pa.prefix, pa.prefix))
				w.expr(n.Index, g)
				return false
			}
		}
		return true
	})
}

// walkExprsIn is the conservative fallback for statements with no special
// dominance handling: visit every nested expression with the current set.
func (w *epochWalker) walkExprsIn(n ast.Node, g *guardSet) {
	ast.Inspect(n, func(child ast.Node) bool {
		if e, ok := child.(ast.Expr); ok {
			w.expr(e, g)
			return false
		}
		return true
	})
}
