package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline is the committed allowlist of known findings (lint.baseline.json
// at the module root). CI gates on "no findings outside the baseline", so a
// new violation fails the build while a pre-existing, justified one does
// not. Entries match findings by analyzer, module-relative file, and exact
// message — deliberately not by line, so unrelated edits shifting a file do
// not churn the baseline. Every entry carries a mandatory justification;
// the in-source //lint: directives remain the preferred suppression (they
// sit next to the code and are themselves linted), and the baseline exists
// for the bootstrap window when a new analyzer lands against real debt.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Message       string `json:"message"`
	Justification string `json:"justification"`
}

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// LoadBaseline reads and validates a baseline file. A reason-less entry is
// rejected outright: the baseline is an audited debt ledger, not a mute
// button.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("lint: baseline %s: entry %d is missing analyzer, file, or message", path, i)
		}
		if e.Justification == "" {
			return nil, fmt.Errorf("lint: baseline %s: entry %d (%s in %s) has no justification", path, i, e.Analyzer, e.File)
		}
	}
	return &b, nil
}

// Apply splits findings into those not covered by the baseline (which
// should fail the build) and reports the stale entries — baseline lines
// whose finding no longer exists and which should be deleted so the ledger
// tracks reality.
func (b *Baseline) Apply(findings []Finding) (kept []Finding, stale []BaselineEntry) {
	matched := make(map[string]bool, len(b.Entries))
	covered := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		covered[baselineKey(e.Analyzer, e.File, e.Message)] = true
	}
	for _, f := range findings {
		key := baselineKey(f.Analyzer, f.File, f.Message)
		if covered[key] {
			matched[key] = true
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range b.Entries {
		if !matched[baselineKey(e.Analyzer, e.File, e.Message)] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}
