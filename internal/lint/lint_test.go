package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// analyzerByName resolves one analyzer from the registered suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// want is one expectation parsed from a fixture comment: the finding's
// message at (file, line) must match re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRe extracts the quoted regexes of a `want "re" "re"...` comment body.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants scans every fixture .go file for comments of the form
// `/* want "regex" ... */` or `// want "regex" ...`. Paths are returned
// relative to root, matching Finding.File.
func collectWants(t *testing.T, root string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "want \"")
			if idx < 0 {
				continue
			}
			if pre := strings.TrimSpace(line[:idx]); !strings.HasSuffix(pre, "/*") && !strings.HasSuffix(pre, "//") {
				continue
			}
			for _, q := range wantRe.FindAllString(line[idx:], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want string %s: %v", rel, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", rel, i+1, pat, err)
				}
				wants = append(wants, &want{file: rel, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestFixtures runs each analyzer over its deliberately broken fixture
// module and asserts the produced findings line up one-to-one with the
// `want` comments: every finding must be expected at its exact position,
// and every expectation must be hit.
func TestFixtures(t *testing.T) {
	cases := []string{"mapiter", "epochguard", "metricname", "nondet", "floatorder", "pubmut", "ctxpoll", "spanfinish"}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(t, name)
			root := filepath.Join("testdata", "src", name)
			prog, err := Load(root)
			if err != nil {
				t.Fatalf("Load(%s): %v", root, err)
			}
			for _, pkg := range prog.Packages {
				if len(pkg.TypeErrors) > 0 {
					t.Fatalf("fixture %s has type errors: %v", pkg.ImportPath, pkg.TypeErrors)
				}
			}
			findings := RunAll(prog, []*Analyzer{a})
			wants := collectWants(t, root)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no want comments", name)
			}
			for _, f := range findings {
				matched := false
				for _, w := range wants {
					if !w.used && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
						w.used = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.used {
					t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestCleanFixture runs the entire suite over a fully conforming module:
// zero findings.
func TestCleanFixture(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "clean"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("clean fixture %s has type errors: %v", pkg.ImportPath, pkg.TypeErrors)
		}
	}
	if findings := RunAll(prog, Analyzers()); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("clean fixture finding: %s", f)
		}
	}
}

// TestModuleClean is the self-check the CI lint job relies on: the suite
// must be green over the repository itself.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if findings := RunAll(prog, Analyzers()); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("module finding: %s", f)
		}
	}
}

// TestRunAllDeterministic guards the ordering contract: two runs over the
// same fixture produce identical output.
func TestRunAllDeterministic(t *testing.T) {
	root := filepath.Join("testdata", "src", "metricname")
	render := func() string {
		prog, err := Load(root)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range RunAll(prog, Analyzers()) {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}
