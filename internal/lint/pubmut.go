package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PubMutAnalyzer enforces the immutable-after-publish discipline on values
// shared through atomic pointers. The serving-era read paths (the serve
// catalogs, tier's View, eval's rank arrays and scratch pool) are lock-free
// because a value, once Store/Swap-published through an
// `atomic.Pointer[T]`, is never written again: readers load a pointer and
// rely on the happens-before edge of the publishing store covering every
// prior initialization write. A write after the publish point races every
// concurrent reader — the class of bug `-race` only catches when a test
// happens to overlap the two operations.
//
// The analyzer is lexically flow-sensitive within each function:
//
//   - a local value published via `p.Store(v)` / `p.Swap(v)` (including
//     `&v` forms and simple pointer aliases of v) must not be written
//     through after the publish call: field writes, slice/map element
//     writes, and pointer-target writes are all flagged;
//   - after the publish point, storing the published value (or its
//     address) into a struct field, element, or package-level variable is
//     flagged as an aliased escape — the alias outlives the function and
//     invites a later mutation the analyzer cannot see;
//   - a value obtained from `p.Load()` — or from a snapshot-shaped
//     accessor, i.e. an in-module function/method whose returned value is
//     (transitively) an atomic-pointer Load — is a published snapshot and
//     must not be written through at all.
//
// Sanctioned patterns stay silent without suppression: returning the value
// just published (the lazily-built accessor in eval's rank cache), taking
// ownership with `Swap` (the Swap result — e.g. the scratch pool's
// Swap(nil) take — is the taker's private copy), reassigning the variable
// to a fresh value after publishing the old one, and calling methods on a
// published value (internal synchronization is the method's contract).
// Builder patterns that intentionally write around their own publish point
// carry a "//lint:prepublish <reason>" justification.
var PubMutAnalyzer = &Analyzer{
	Name:      "pubmut",
	Doc:       "write to a value after it was published through an atomic pointer, or to a loaded snapshot",
	Directive: "prepublish",
	Run:       runPubMut,
}

func runPubMut(p *Program) []Finding {
	decls := moduleFuncs(p)
	shape := &loadShapeMemo{decls: decls, shaped: make(map[*types.Func]int)}
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, pubMutFunc(p, pkg, fd, shape)...)
			}
		}
	}
	return out
}

// pubMutFunc analyzes one function body for post-publish and snapshot
// mutation.
func pubMutFunc(p *Program, pkg *Package, fd *ast.FuncDecl, shape *loadShapeMemo) []Finding {
	st := &pubState{
		pkg:       pkg,
		shape:     shape,
		parent:    make(map[*types.Var]*types.Var),
		published: make(map[*types.Var]token.Pos),
		snapshot:  make(map[*types.Var]token.Pos),
		kills:     make(map[*types.Var][]token.Pos),
	}

	// Pass 1 (source order): publish events, snapshot bindings, pointer
	// aliases, and whole-variable reassignments (kills).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			st.recordPublish(n)
		case *ast.AssignStmt:
			st.recordAssign(n)
		}
		return true
	})
	// Pass 2 must run even with no tracked bindings: a direct
	// `p.Load().Field = x` write needs no local variable to be a snapshot
	// mutation.
	//
	// Aliases recorded after a publish may have merged groups; re-key the
	// publish positions by each group's final representative.
	norm := make(map[*types.Var]token.Pos, len(st.published))
	for v, pos := range st.published {
		r := st.find(v)
		if prev, ok := norm[r]; !ok || pos < prev {
			norm[r] = pos
		}
	}
	st.published = norm

	// Pass 2: violations.
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f, ok := st.checkWrite(p, lhs); ok {
					out = append(out, f)
				}
			}
			out = append(out, st.checkEscapes(p, n)...)
		case *ast.IncDecStmt:
			if f, ok := st.checkWrite(p, n.X); ok {
				out = append(out, f)
			}
		}
		return true
	})
	return out
}

// pubState is the per-function tracking state.
type pubState struct {
	pkg   *Package
	shape *loadShapeMemo
	// parent is a union-find over local pointer variables that may share a
	// pointee (w := v, w := &v).
	parent map[*types.Var]*types.Var
	// published maps a group representative to the position of the earliest
	// publishing Store/Swap whose argument resolved into the group.
	published map[*types.Var]token.Pos
	// snapshot maps a local variable to the position where it was bound to
	// an atomic Load (or snapshot-accessor) result.
	snapshot map[*types.Var]token.Pos
	// kills lists positions where a variable is wholly reassigned; a write
	// after a kill targets a fresh value, not the published one.
	kills map[*types.Var][]token.Pos
}

func (st *pubState) find(v *types.Var) *types.Var {
	for {
		p, ok := st.parent[v]
		if !ok || p == v {
			return v
		}
		st.parent[v] = st.parent[p]
		v = p
	}
}

func (st *pubState) union(a, b *types.Var) {
	ra, rb := st.find(a), st.find(b)
	if ra != rb {
		st.parent[ra] = rb
	}
}

// recordPublish registers `recv.Store(v)` / `recv.Swap(v)` on an atomic
// pointer when the argument resolves to a local variable (directly or via
// &v). The publish position is the end of the call: uses inside the call
// itself are pre-publish.
func (st *pubState) recordPublish(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	switch atomicPtrMethod(st.pkg, sel) {
	case "Store", "Swap":
	default:
		return
	}
	v := st.localVar(call.Args[0])
	if v == nil {
		return
	}
	root := st.find(v)
	if pos, ok := st.published[root]; !ok || call.End() < pos {
		st.published[root] = call.End()
	}
}

// recordAssign registers snapshot bindings, pointer aliases, and kills from
// one assignment statement.
func (st *pubState) recordAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call/comma-ok forms carry no tracked value
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		lv := st.objOf(id)
		if lv == nil {
			continue
		}
		// Whole-variable reassignment kills prior publish/snapshot facts for
		// writes that follow it.
		st.kills[lv] = append(st.kills[lv], as.Pos())

		rhs := ast.Unparen(as.Rhs[i])
		if call, ok := rhs.(*ast.CallExpr); ok {
			if st.isSnapshotCall(call) {
				if _, ok := st.snapshot[lv]; !ok {
					st.snapshot[lv] = as.End()
				}
			}
			continue
		}
		if rv := st.localVar(rhs); rv != nil {
			// w := v / w := &v — w may reach v's pointee (alias), and a
			// snapshot's alias is itself a snapshot.
			if pointerish(lv.Type()) {
				st.union(lv, rv)
			}
			if pos, ok := st.snapshot[rv]; ok {
				if _, dup := st.snapshot[lv]; !dup {
					st.snapshot[lv] = pos
				}
			}
		}
	}
}

// checkWrite flags a write *through* expr (field, element, or pointee —
// never a plain variable reassignment) when the base variable holds a
// published or snapshot value at that point.
func (st *pubState) checkWrite(p *Program, expr ast.Expr) (Finding, bool) {
	base, wrapped := writeBase(expr)
	if !wrapped {
		return Finding{}, false
	}
	switch base := base.(type) {
	case *ast.Ident:
		v := st.objOf(base)
		if v == nil {
			return Finding{}, false
		}
		pos := expr.Pos()
		if pub, ok := st.published[st.find(v)]; ok && pub < pos && !st.killedBetween(v, pub, pos) {
			return finding(p, pos,
				"%s is written after being published through an atomic pointer; published values are immutable (move the write before the Store/Swap, or justify a builder with //lint:prepublish)",
				base.Name), true
		}
		if snap, ok := st.snapshot[v]; ok && snap < pos && !st.killedBetween(v, snap, pos) {
			return finding(p, pos,
				"write through %s mutates a published snapshot (atomic Load / snapshot accessor result); copy the value before mutating", base.Name), true
		}
	case *ast.CallExpr:
		// Direct `p.Load().Field = x` style writes.
		if st.isSnapshotCall(base) {
			return finding(p, expr.Pos(),
				"write through an atomic Load result mutates a published snapshot; copy the value before mutating"), true
		}
	}
	return Finding{}, false
}

// checkEscapes flags assignments that store a published value (or its
// address) into a location that outlives the function: a struct field,
// element, pointee, or package-level variable.
func (st *pubState) checkEscapes(p *Program, as *ast.AssignStmt) []Finding {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	var out []Finding
	for i, rhs := range as.Rhs {
		v := st.localVar(rhs)
		if v == nil {
			continue
		}
		pub, ok := st.published[st.find(v)]
		if !ok || pub >= rhs.Pos() || st.killedBetween(v, pub, rhs.Pos()) {
			continue
		}
		lhs := ast.Unparen(as.Lhs[i])
		escapes := false
		switch l := lhs.(type) {
		case *ast.Ident:
			// A copy into another local is tracked by the alias groups; only
			// package-level targets escape.
			if lv := st.objOf(l); lv != nil && lv.Pkg() != nil && lv.Parent() == lv.Pkg().Scope() {
				escapes = true
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			escapes = true
		}
		if escapes {
			out = append(out, finding(p, rhs.Pos(),
				"%s is aliased into a longer-lived location after being published; the escape invites a post-publish write no reader can tolerate", nameOf(rhs)))
		}
	}
	return out
}

func (st *pubState) killedBetween(v *types.Var, from, to token.Pos) bool {
	for _, k := range st.kills[v] {
		if from < k && k < to {
			return true
		}
	}
	return false
}

// localVar resolves `v` or `&v` to a function-local *types.Var, or nil.
func (st *pubState) localVar(expr ast.Expr) *types.Var {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return st.objOf(id)
}

// objOf resolves an identifier to a non-field *types.Var.
func (st *pubState) objOf(id *ast.Ident) *types.Var {
	obj := st.pkg.Info.Uses[id]
	if obj == nil {
		obj = st.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// isSnapshotCall reports whether a call yields a published snapshot: an
// atomic-pointer Load, or a call to an in-module load-shaped accessor.
func (st *pubState) isSnapshotCall(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if atomicPtrMethod(st.pkg, sel) == "Load" {
			return true
		}
	}
	if callee := calleeOf(st.pkg, call); callee != nil {
		return st.shape.loadShaped(callee)
	}
	return false
}

// writeBase strips field selections, index expressions, and dereferences
// off an assignment target, returning the base expression and whether at
// least one such wrapper was stripped (a write *through* the base rather
// than a plain reassignment of it).
func writeBase(expr ast.Expr) (ast.Expr, bool) {
	wrapped := false
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr, wrapped = e.X, true
		case *ast.IndexExpr:
			expr, wrapped = e.X, true
		case *ast.StarExpr:
			expr, wrapped = e.X, true
		default:
			return expr, wrapped
		}
	}
}

// atomicPtrMethod returns the method name when sel resolves to a method on
// sync/atomic's pointer-carrying types (Pointer[T] or Value), else "".
func atomicPtrMethod(pkg *Package, sel *ast.SelectorExpr) string {
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	switch named.Obj().Name() {
	case "Pointer", "Value":
		return fn.Name()
	}
	return ""
}

// pointerish reports whether copying a value of type t shares underlying
// storage with the original (so a write through the copy is a write through
// the original).
func pointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// nameOf renders a short display name for a tracked expression.
func nameOf(expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
		expr = ast.Unparen(u.X)
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return "published value"
}

// loadShapeMemo memoizes which module functions are snapshot-shaped
// accessors: such a function has at least one return statement whose
// result is an atomic-pointer Load (or a call to another load-shaped
// function). tier.Stack.View — `return s.view.Load()` — is the canonical
// case.
type loadShapeMemo struct {
	decls  map[*types.Func]*funcNode
	shaped map[*types.Func]int // 0 unknown/visiting, 1 no, 2 yes
}

func (m *loadShapeMemo) loadShaped(fn *types.Func) bool {
	switch m.shaped[fn] {
	case 1:
		return false
	case 2:
		return true
	}
	node, ok := m.decls[fn]
	if !ok {
		m.shaped[fn] = 1
		return false
	}
	m.shaped[fn] = 1 // break recursion cycles pessimistically
	result := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || result {
			return !result
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				atomicPtrMethod(node.pkg, sel) == "Load" {
				result = true
				return false
			}
			if callee := calleeOf(node.pkg, call); callee != nil && callee != fn && m.loadShaped(callee) {
				result = true
				return false
			}
		}
		return true
	})
	if result {
		m.shaped[fn] = 2
	}
	return result
}
