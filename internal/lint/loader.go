package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package as the analyzers see it:
// parsed non-test files plus the go/types artifacts for them.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints without aborting the
	// load; analyzers run best-effort over partially checked packages.
	TypeErrors []error
}

// Program is a loaded module: every package under the module root (tests
// and testdata excluded), type-checked in dependency order against a shared
// FileSet.
type Program struct {
	ModulePath string
	Root       string
	Fset       *token.FileSet
	Packages   []*Package // sorted by import path

	byPath   map[string]*Package
	suppress map[*ast.File][]suppression
}

// Load parses and type-checks the module rooted at root (the directory
// holding go.mod). Test files, testdata, vendor, and hidden directories are
// skipped. Module-internal imports resolve to the packages being loaded;
// everything else resolves through the toolchain's export data (with a
// source-importer fallback), so the loader stays on the standard library.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	prog := &Program{
		ModulePath: modPath,
		Root:       root,
		Fset:       token.NewFileSet(),
		byPath:     make(map[string]*Package),
		suppress:   make(map[*ast.File][]suppression),
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
			prog.byPath[pkg.ImportPath] = pkg
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].ImportPath < prog.Packages[j].ImportPath
	})

	if err := prog.typeCheckAll(); err != nil {
		return nil, err
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			prog.suppress[f] = collectSuppressions(prog.Fset, f)
		}
	}
	return prog, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs walks the module tree collecting directories that hold
// loadable (non-test, non-generated) Go files. The seen map — rather than a
// last-element check — is what keeps a directory whose files sort around a
// subdirectory entry (a.go, sub/, z.go: WalkDir yields the directory's
// files in two runs) from being collected twice; a double-collected
// directory used to load its package twice, double-counting every finding
// and every //lint: suppression in it.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if loadableGoFile(filepath.Base(path)) {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// loadableGoFile is the single source-file filter shared by packageDirs and
// parseDir, so the directory collection and the per-directory parse cannot
// disagree about what constitutes a package: non-test, non-hidden Go
// sources. A directory holding only _test.go files therefore never becomes
// a package at either layer.
func loadableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// generatedFile reports whether a parsed file carries the canonical
// generated-code marker ("// Code generated ... DO NOT EDIT.") before its
// package clause, per the convention in golang.org/s/generatedcode.
// Generated sources (protobufs, stringers, //go:generate outputs) are not
// hand-maintained, so project invariants are not enforceable on them and
// the loader drops them before type-checking.
func generatedFile(fset *token.FileSet, f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "// Code generated ") && strings.HasSuffix(c.Text, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}

// parseDir parses the non-test Go files of one directory into a Package
// (types not yet checked). Returns nil when the directory holds no
// parseable package.
func (p *Program) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := p.ModulePath
	if rel != "." {
		importPath = p.ModulePath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !loadableGoFile(name) {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if generatedFile(p.Fset, f) {
			continue
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			// Mixed-package directory (stray file); keep the first package.
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// typeCheckAll checks every package in dependency order, so that module
// imports resolve to already-checked packages.
func (p *Program) typeCheckAll() error {
	checked := make(map[*Package]bool)
	checking := make(map[*Package]bool)
	imp := &chainImporter{prog: p}
	var check func(pkg *Package) error
	check = func(pkg *Package) error {
		if checked[pkg] {
			return nil
		}
		if checking[pkg] {
			return fmt.Errorf("lint: import cycle through %s", pkg.ImportPath)
		}
		checking[pkg] = true
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if dep, ok := p.byPath[path]; ok {
					if err := check(dep); err != nil {
						return err
					}
				}
			}
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			// Instances records each generic instantiation's type arguments;
			// without it, analyzers resolving a use of an instantiated
			// function or type see only the uninstantiated object and
			// signature queries can mismatch.
			Instances: make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, err := conf.Check(pkg.ImportPath, p.Fset, pkg.Files, pkg.Info)
		if err != nil && tpkg == nil {
			return fmt.Errorf("lint: type-checking %s: %w", pkg.ImportPath, err)
		}
		pkg.Types = tpkg
		checking[pkg] = false
		checked[pkg] = true
		return nil
	}
	for _, pkg := range p.Packages {
		if err := check(pkg); err != nil {
			return err
		}
	}
	return nil
}

// chainImporter resolves module-internal imports to the packages being
// loaded and everything else through the gc export-data importer, falling
// back to the source importer for paths the toolchain has no export data
// for.
type chainImporter struct {
	prog   *Program
	gc     types.Importer
	source types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.prog.byPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	if c.gc == nil {
		c.gc = importer.Default()
	}
	if tp, err := c.gc.Import(path); err == nil {
		return tp, nil
	}
	if c.source == nil {
		c.source = importer.ForCompiler(c.prog.Fset, "source", nil)
	}
	return c.source.Import(path)
}

// PackageOf returns the loaded package containing the given file position's
// filename, or nil.
func (p *Program) PackageOf(importPath string) *Package { return p.byPath[importPath] }

// RelFile rewrites an absolute file path relative to the module root for
// stable, machine-readable output.
func (p *Program) RelFile(file string) string {
	if rel, err := filepath.Rel(p.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}
