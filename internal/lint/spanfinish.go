package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanFinishAnalyzer enforces the trace-span lifecycle and the serving
// error-path contract.
//
// Span rule (module-wide): every span bound from a StartSpan call must be
// finished on all paths out of its live range. A span instance's live
// range runs from its binding to the variable's next StartSpan rebinding
// or the function's end, and it is satisfied by a deferred End (direct
// `defer v.End()` or a deferred closure calling it) or by an End call that
// lexically dominates each exit (an unconditional `v.End()` earlier in the
// same or an enclosing block). The analyzer reports:
//
//   - a StartSpan result that is discarded outright;
//   - a return path (or fall-off-the-end of a void function) not dominated
//     by an End;
//   - a rebinding `v = tr.StartSpan(...)` that drops the previous instance
//     before it was finished;
//   - a span instance with no End and no defer anywhere in its range.
//
// A span that escapes — passed to another function, stored, or returned —
// is assumed to be finished by its new owner and is skipped. An
// intentional leak (there are none today) would carry
// "//lint:spanfinish <reason>".
//
// Error-path rule (package serve): handler error paths answer structured
// JSON with an enumerable machine code. Bare http.Error calls are
// reported, and the code argument of the fail/shed helpers must be a
// registered package-level constant — a bare string literal is reported
// even when its value happens to match one, because unregistered spellings
// are how the enumeration drifts.
var SpanFinishAnalyzer = &Analyzer{
	Name:      "spanfinish",
	Doc:       "trace span not finished on every path, or a serving error path outside the structured-error contract",
	Directive: "spanfinish",
	Run:       runSpanFinish,
}

func runSpanFinish(p *Program) []Finding {
	var out []Finding
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, spanLifecycle(p, pkg, fd)...)
			}
		}
	}
	for _, pkg := range packagesNamed(p, "serve") {
		out = append(out, serveErrorPaths(p, pkg)...)
	}
	return out
}

// spanInstance is one live range of a span variable: from its StartSpan
// binding to the next rebinding of the same variable, the end of the
// binding's enclosing scope (block, case, or select clause — a block-scoped
// span cannot leak past its block), or the end of the function, whichever
// comes first.
type spanInstance struct {
	obj  *types.Var
	name string
	bind *ast.AssignStmt
	from token.Pos // end of the binding statement
	to   token.Pos // start of the next rebinding, or the scope's end
	// funcBody is the body of the innermost function literal holding the
	// binding (or the declaration's body): returns inside other closures
	// exit a different function and are not this span's exits.
	funcBody *ast.BlockStmt
	// scope is the statement list directly holding the binding; scopeEnd is
	// its closing position.
	scope    []ast.Stmt
	scopeEnd token.Pos
	// scopeIsFuncBody marks that the scope is funcBody itself, where
	// falling off the end is only possible for result-less functions.
	scopeIsFuncBody bool
}

func spanLifecycle(p *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding

	// Collect span bindings (and flag discarded starts).
	var instances []*spanInstance
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isStartSpanCall(pkg, call) {
				out = append(out, finding(p, n.Pos(),
					"StartSpan result is discarded; bind the span and finish it with End"))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isStartSpanCall(pkg, call) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					out = append(out, finding(p, n.Pos(),
						"StartSpan result is discarded; bind the span and finish it with End"))
					continue
				}
				obj := spanVarOf(pkg, id)
				if obj == nil {
					continue
				}
				instances = append(instances, &spanInstance{obj: obj, name: id.Name, bind: n, from: n.End()})
			}
		}
		return true
	})
	if len(instances) == 0 {
		return out
	}

	// Close each instance's range at its scope's end or the next rebinding
	// of the same variable within the same function body, whichever comes
	// first (rebindings are in source order within instances).
	for i, inst := range instances {
		inst.funcBody = enclosingFuncBody(fd, inst.bind.Pos())
		inst.scope, inst.scopeEnd = enclosingScope(fd.Body, inst.bind)
		inst.scopeIsFuncBody = inst.scopeEnd == inst.funcBody.Rbrace
		inst.to = inst.scopeEnd
		for _, later := range instances[i+1:] {
			if later.obj == inst.obj && later.bind.Pos() < inst.to &&
				enclosingFuncBody(fd, later.bind.Pos()) == inst.funcBody {
				inst.to = later.bind.Pos()
				break
			}
		}
	}

	for _, inst := range instances {
		out = append(out, checkSpanInstance(p, pkg, fd, inst)...)
	}
	return out
}

// enclosingFuncBody returns the body of the innermost function literal
// containing pos, or the declaration's own body.
func enclosingFuncBody(fd *ast.FuncDecl, pos token.Pos) *ast.BlockStmt {
	body := fd.Body
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if ok && lit.Body.Pos() <= pos && pos < lit.Body.End() {
			body = lit.Body
		}
		return true
	})
	return body
}

// enclosingScope finds the statement list directly holding stmt (a block's
// List or a case/select clause's Body) and the position where that scope
// closes.
func enclosingScope(body *ast.BlockStmt, stmt ast.Stmt) ([]ast.Stmt, token.Pos) {
	list, end := body.List, body.Rbrace
	ast.Inspect(body, func(n ast.Node) bool {
		var cand []ast.Stmt
		var candEnd token.Pos
		switch n := n.(type) {
		case *ast.BlockStmt:
			cand, candEnd = n.List, n.Rbrace
		case *ast.CaseClause:
			cand, candEnd = n.Body, n.End()
		case *ast.CommClause:
			cand, candEnd = n.Body, n.End()
		default:
			return true
		}
		for _, s := range cand {
			if s == stmt {
				list, end = cand, candEnd
			}
		}
		return true
	})
	return list, end
}

func checkSpanInstance(p *Program, pkg *Package, fd *ast.FuncDecl, inst *spanInstance) []Finding {
	inRange := func(pos token.Pos) bool { return inst.from <= pos && pos < inst.to }
	isEnd := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndAt") {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && spanVarOf(pkg, id) == inst.obj && inRange(n.Pos())
	}

	// One classification walk over the function: deferred Ends, any End,
	// escapes, and the returns inside the range.
	deferred, anyEnd, escapes := false, false, false
	endRecvPos := make(map[token.Pos]bool) // positions of `v` in v.End() receivers
	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if !inRange(n.Pos()) {
				return true
			}
			if isEnd(n.Call) {
				deferred = true
			} else if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if isEnd(m) {
						deferred = true
					}
					return !deferred
				})
			}
		case *ast.CallExpr:
			if isEnd(n) {
				anyEnd = true
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						endRecvPos[id.Pos()] = true
					}
				}
			}
		case *ast.ReturnStmt:
			// A return exits this span's function only when it is not inside
			// some other closure.
			if inRange(n.Pos()) && enclosingFuncBody(fd, n.Pos()) == inst.funcBody {
				returns = append(returns, n)
			}
		}
		return true
	})

	// Escape scan: any use of the span variable in range that is neither
	// its binding nor the receiver of an End call hands the span to someone
	// else (argument, field store, return value); assume the new owner
	// finishes it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !inRange(id.Pos()) || endRecvPos[id.Pos()] {
			return true
		}
		if spanVarOf(pkg, id) == inst.obj {
			escapes = true
		}
		return !escapes
	})
	if escapes || deferred {
		return nil
	}

	if !anyEnd {
		return []Finding{finding(p, inst.bind.Pos(),
			"span %s is never finished in this function; End it on every path (defer or dominating call)", inst.name)}
	}

	dominated := func(at token.Pos) bool {
		return hasDominatingCall(fd.Body, at, func(n ast.Node) bool { return isEnd(n) })
	}
	var out []Finding
	for _, ret := range returns {
		if !dominated(ret.Pos()) {
			out = append(out, finding(p, ret.Pos(),
				"return path does not finish span %s; End it before returning (or defer the End)", inst.name))
		}
	}
	if inst.to != inst.scopeEnd {
		// Rebinding drops the previous instance.
		if !dominated(inst.to) {
			out = append(out, finding(p, inst.to,
				"span %s is rebound before the previous span was finished", inst.name))
		}
		return out
	}
	// The scope flows out at its end unless its last statement is a return
	// (checked above as a return path). A value-returning function body
	// cannot fall off its end at all.
	if inst.scopeIsFuncBody && fd.Type.Results != nil {
		return out
	}
	if !endsTerminal(inst.scope) && !dominated(inst.scopeEnd) {
		out = append(out, finding(p, inst.bind.Pos(),
			"span %s may leak when its scope falls through; End it after the last use or defer the End", inst.name))
	}
	return out
}

// endsTerminal reports whether a scope's final statement is a return (so
// the fall-through exit is unreachable).
func endsTerminal(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	_, ok := list[len(list)-1].(*ast.ReturnStmt)
	return ok
}

// hasDominatingCall reports whether a node matched by isHit appears in a
// statement that lexically dominates position at: a preceding sibling (or
// preceding sibling of an ancestor) in an enclosing block, with the hit
// not nested under a conditional, loop, or function literal inside that
// sibling.
func hasDominatingCall(body *ast.BlockStmt, at token.Pos, isHit func(ast.Node) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Case and select clause bodies are statement lists too: an End in
		// a clause dominates the rest of that clause.
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n.Pos() >= at || n.End() < at {
				return true
			}
			list = n.List
		case *ast.CaseClause:
			if n.Pos() >= at || n.End() < at {
				return true
			}
			list = n.Body
		case *ast.CommClause:
			if n.Pos() >= at || n.End() < at {
				return true
			}
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s.End() > at {
				break
			}
			if unconditionally(s, isHit) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// unconditionally searches a statement for a hit that executes whenever
// the statement does: nested conditionals, loops, switches, selects, and
// function literals are not descended into.
func unconditionally(n ast.Node, isHit func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if isHit(m) {
			found = true
		}
		return !found
	})
	return found
}

// isStartSpanCall reports whether the call statically resolves to a
// function or method named StartSpan.
func isStartSpanCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeOf(pkg, call)
	return fn != nil && fn.Name() == "StartSpan"
}

// spanVarOf resolves an identifier to a local variable whose type is a
// span (a named type whose name ends in "Span"), or nil.
func spanVarOf(pkg *Package, id *ast.Ident) *types.Var {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	t := v.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	name := named.Obj().Name()
	if len(name) >= 4 && name[len(name)-4:] == "Span" {
		return v
	}
	return nil
}

// serveErrorPaths enforces the structured-error contract in package serve.
func serveErrorPaths(p *Program, pkg *Package) []Finding {
	registered := registeredCodes(pkg)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg, call)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				out = append(out, finding(p, call.Pos(),
					"bare http.Error bypasses the structured JSON error contract; answer through the registered-code fail/shed helpers"))
				return true
			}
			if fn.Name() != "fail" && fn.Name() != "shed" {
				return true
			}
			idx := codeParamIndex(fn)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			if _, ok := ast.Unparen(arg).(*ast.BasicLit); !ok {
				return true // constants and variables are fine; literals drift
			}
			code := constStringValue(pkg, arg)
			if registered[code] {
				out = append(out, finding(p, arg.Pos(),
					"error code %q is spelled as a bare literal; use the registered code constant so the enumeration cannot drift", code))
			} else {
				out = append(out, finding(p, arg.Pos(),
					"error code %q is not a registered package-level code constant; declare it alongside the other codes", code))
			}
			return true
		})
	}
	return out
}

// registeredCodes collects the string values of the package-level string
// constants in pkg — the registered error-code enumeration.
func registeredCodes(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	if pkg.Types == nil {
		return out
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			out[constantStringOf(c)] = true
		}
	}
	return out
}

func constantStringOf(c *types.Const) string {
	s := c.Val().ExactString()
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// constStringValue extracts the constant string value of an expression.
func constStringValue(pkg *Package, expr ast.Expr) string {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil {
		return ""
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// codeParamIndex finds the index of the parameter named "code" in fn's
// signature, or -1.
func codeParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == "code" {
			return i
		}
	}
	return -1
}
