package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestLoaderEdgeCases drives the loader over a fixture module built from
// the directory shapes that have broken (or could break) package
// collection: files interleaved around a subdirectory entry, _test.go-only
// directories, generated-only directories, mixed-package directories,
// underscore-prefixed directories, and generic code.
func TestLoaderEdgeCases(t *testing.T) {
	root := filepath.Join("testdata", "src", "loaderedge")
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}

	wantPkgs := []struct {
		path  string
		name  string
		files int
	}{
		{"fix/generics", "generics", 1},
		{"fix/interleave", "interleave", 2},
		{"fix/interleave/sub", "sub", 1},
		{"fix/mixed", "mixed", 1},
	}
	if len(prog.Packages) != len(wantPkgs) {
		var got []string
		for _, pkg := range prog.Packages {
			got = append(got, pkg.ImportPath)
		}
		t.Fatalf("loaded packages = %v, want %d packages", got, len(wantPkgs))
	}
	for i, want := range wantPkgs {
		pkg := prog.Packages[i]
		if pkg.ImportPath != want.path || pkg.Name != want.name || len(pkg.Files) != want.files {
			t.Errorf("package[%d] = %s (name %s, %d files), want %s (name %s, %d files)",
				i, pkg.ImportPath, pkg.Name, len(pkg.Files), want.path, want.name, want.files)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("package %s: type error: %v", pkg.ImportPath, terr)
		}
	}

	// The interleaved directory (a.go, sub/, z.go) holds one bare //lint:
	// directive; the seen-map dedupe in packageDirs is what keeps it from
	// being loaded — and therefore counted — twice.
	findings := RunAll(prog, Analyzers())
	if len(findings) != 1 {
		t.Fatalf("findings over loaderedge = %v, want exactly the one bare directive", findings)
	}
	f := findings[0]
	if f.Analyzer != "mapiter" || f.File != "interleave/a.go" || f.Line != 7 ||
		!strings.Contains(f.Message, "requires a justification") {
		t.Fatalf("bare-directive finding = %+v, want mapiter interleave/a.go:7 requires-a-justification", f)
	}

	// A second load must see the identical package list and findings:
	// -list and -json output builds on this order.
	again, err := Load(root)
	if err != nil {
		t.Fatalf("second Load: %v", err)
	}
	pathsOf := func(p *Program) []string {
		var out []string
		for _, pkg := range p.Packages {
			out = append(out, pkg.ImportPath)
		}
		return out
	}
	if !reflect.DeepEqual(pathsOf(prog), pathsOf(again)) {
		t.Fatalf("package order differs across loads: %v vs %v", pathsOf(prog), pathsOf(again))
	}
	if !reflect.DeepEqual(findings, RunAll(again, Analyzers())) {
		t.Fatal("findings differ across loads")
	}
}
