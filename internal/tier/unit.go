package tier

import (
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// unit is one absorbed update in spine-relative form: two tiny exact
// sketches (bare ancestor spine, and spine with the subtree grafted on)
// whose estimate difference is the update's contribution to a query.
// Units are immutable once built.
type unit struct {
	seq   uint64
	sign  int // +1 insert, -1 delete
	elems int // subtree element count, always > 0

	spineLabels []string      // labels of document root .. parent
	spineOIDs   []int         // OIDs of document root .. parent (segment merge keys)
	sub         *xmltree.Node // detached copy of the subtree, in a scratch tree

	full  *sketch.Sketch // exact sketch of spine + subtree
	spine *sketch.Sketch // exact sketch of the bare spine
}

// segment is a sealed tier: the units of one seal merged into at most two
// forest sketches per sign, with spines shared by ancestor OID so repeated
// updates under the same parent do not replicate the ancestor chain.
// Segments are immutable once built.
type segment struct {
	maxSeq   uint64
	elems    int // signed element delta
	absElems int // unsigned absorbed element total
	units    int

	pos, posSpine *sketch.Sketch // insert side; nil when no inserts
	neg, negSpine *sketch.Sketch // delete side; nil when no deletes
}

// newUnit snapshots an update as a unit. src is the subtree root in the
// live document (for an insert, the just-adopted root; for a delete, the
// victim before detachment); it is deep-copied, so the unit stays valid
// after the document moves on.
func newUnit(seq uint64, sign int, spineLabels []string, spineOIDs []int, src *xmltree.Node) *unit {
	scratch := xmltree.NewTree()
	sub := copyInto(scratch, src)

	spineTree := chainTree(spineLabels)
	full := chainTree(spineLabels)
	graft(full, deepestChild(full.Root), copyInto(full, src))

	return &unit{
		seq:         seq,
		sign:        sign,
		elems:       countNodes(sub),
		spineLabels: spineLabels,
		spineOIDs:   spineOIDs,
		sub:         sub,
		full:        sketch.FromStable(stable.Build(full)),
		spine:       sketch.FromStable(stable.Build(spineTree)),
	}
}

// newSegment merges units (in absorb order) into one sealed segment.
func newSegment(units []*unit) *segment {
	seg := &segment{units: len(units)}
	type side struct {
		full  *xmltree.Tree
		spine *xmltree.Tree
		// byOID maps a live-document ancestor OID to its copy in each
		// forest, so units sharing ancestors share spine nodes.
		fullByOID  map[int]*xmltree.Node
		spineByOID map[int]*xmltree.Node
	}
	sides := map[int]*side{}
	ensure := func(sign int) *side {
		sd := sides[sign]
		if sd == nil {
			sd = &side{
				full: xmltree.NewTree(), spine: xmltree.NewTree(),
				fullByOID: map[int]*xmltree.Node{}, spineByOID: map[int]*xmltree.Node{},
			}
			sides[sign] = sd
		}
		return sd
	}
	chain := func(t *xmltree.Tree, byOID map[int]*xmltree.Node, u *unit) *xmltree.Node {
		var parent *xmltree.Node
		for i, oid := range u.spineOIDs {
			n := byOID[oid]
			if n == nil {
				n = t.NewNode(u.spineLabels[i])
				byOID[oid] = n
				if parent == nil {
					t.Root = n
				} else {
					parent.Children = append(parent.Children, n)
				}
			}
			parent = n
		}
		return parent
	}
	// Bounded by construction: units come from one decoded update batch,
	// whose size the serve layer caps before decoding (http.MaxBytesReader),
	// so the whole build is proportional to an already-admitted request body.
	//lint:ctxpoll unit batch and subtree sizes are bounded by the serve layer's request-body cap
	for _, u := range units {
		seg.elems += u.sign * u.elems
		seg.absElems += u.elems
		if u.seq > seg.maxSeq {
			seg.maxSeq = u.seq
		}
		sd := ensure(u.sign)
		graft(sd.full, chain(sd.full, sd.fullByOID, u), copyInto(sd.full, u.sub))
		chain(sd.spine, sd.spineByOID, u)
	}
	if sd := sides[+1]; sd != nil {
		seg.pos = sketch.FromStable(stable.Build(sd.full))
		seg.posSpine = sketch.FromStable(stable.Build(sd.spine))
	}
	if sd := sides[-1]; sd != nil {
		seg.neg = sketch.FromStable(stable.Build(sd.full))
		seg.negSpine = sketch.FromStable(stable.Build(sd.spine))
	}
	return seg
}

// chainTree builds a single root-to-leaf chain with the given labels.
func chainTree(labels []string) *xmltree.Tree {
	t := xmltree.NewTree()
	var parent *xmltree.Node
	for _, l := range labels {
		n := t.NewNode(l)
		if parent == nil {
			t.Root = n
		} else {
			parent.Children = append(parent.Children, n)
		}
		parent = n
	}
	return t
}

// deepestChild follows first children to the end of a chain.
func deepestChild(n *xmltree.Node) *xmltree.Node {
	for len(n.Children) > 0 {
		n = n.Children[0]
	}
	return n
}

// graft attaches an already-copied subtree under parent. The subtree's
// nodes must have been created through t.NewNode (see copyInto) so the
// tree's size bookkeeping is already right.
func graft(t *xmltree.Tree, parent, sub *xmltree.Node) {
	_ = t
	parent.Children = append(parent.Children, sub)
}

// copyInto deep-copies the subtree rooted at src into t and returns the
// copy's root (not yet attached to anything).
func copyInto(t *xmltree.Tree, src *xmltree.Node) *xmltree.Node {
	n := t.NewNode(src.Label)
	//lint:ctxpoll subtree size is bounded by the serve layer's request-body cap
	for _, c := range src.Children {
		n.Children = append(n.Children, copyInto(t, c))
	}
	return n
}

func countNodes(n *xmltree.Node) int {
	total := 1
	//lint:ctxpoll subtree size is bounded by the serve layer's request-body cap
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}
