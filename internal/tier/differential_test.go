package tier

import (
	"testing"

	"treesketch/internal/eval"
	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// preCompactionMREFloor is the accuracy floor the spine-relative delta must
// hold against a from-scratch rebuild oracle *before* compaction (after
// compaction the two are bit-identical). The delta representation cannot
// see matches pairing new elements with off-spine base elements, so it is
// an approximation; observed mean relative error on the seeded scripts
// below stays under 0.01 across all three dataset families, so this floor
// carries a 5x margin.
const preCompactionMREFloor = 0.05

// TestDifferentialUpdatesVsRebuildOracle replays seeded randomized
// insert/delete sequences on each -TX dataset family and checks, after
// every batch of updates, that base+delta selectivities track a
// from-scratch stable.Build + tsbuild.Build oracle within the floor — and
// that after a forced compaction the stack is *exactly* the oracle:
// identical selectivity on every query and identical sketch fingerprint.
func TestDifferentialUpdatesVsRebuildOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay is a long test")
	}
	r := exp.NewRunner(exp.Config{TXScale: 3000, WorkloadSize: 40, Seed: 1})
	const budget = 6 * 1024
	for _, name := range exp.TXNames() {
		t.Run(name, func(t *testing.T) {
			doc := xmltree.NewTree()
			doc.Root = copyInto(doc, r.Doc(name).Root) // private copy; the runner caches its docs
			queries := query.Generate(r.Stable(name), 40, query.GenOptions{Seed: 11})

			opts := Options{
				BudgetBytes:     budget,
				Synchronous:     true,
				MinCompactElems: 1 << 30, // compaction only when the test asks
				Metrics:         obs.NewRegistry(),
			}
			st, err := New(doc, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := testRNG(5)
			for batch := 0; batch < 4; batch++ {
				for op := 0; op < 10; op++ {
					randomOp(t, st, &rng)
				}
				v := st.View()
				if err := v.CheckConservation(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}

				oracle := rebuildOracle(t, st, budget)
				var sumErr float64
				for _, q := range queries {
					want := eval.Approx(oracle, q, eval.Options{}).Selectivity()
					_, got, _ := v.Estimate(q, eval.Options{})
					sumErr += relErr(got, want)
				}
				mre := sumErr / float64(len(queries))
				t.Logf("batch %d: pre-compaction MRE %.4f (delta %d elems, %d tiers)", batch, mre, v.DeltaElems(), v.Tiers())
				if mre > preCompactionMREFloor {
					t.Fatalf("batch %d: pre-compaction MRE %.4f above floor %.4f", batch, mre, preCompactionMREFloor)
				}
			}

			st.Compact()
			v := st.View()
			oracle := rebuildOracle(t, st, budget)
			if got, want := v.Base.Fingerprint(), oracle.Fingerprint(); got != want {
				t.Fatalf("post-compaction base fp %016x, rebuild oracle fp %016x", got, want)
			}
			for _, q := range queries {
				want := eval.Approx(oracle, q, eval.Options{}).Selectivity()
				_, got, _ := v.Estimate(q, eval.Options{})
				if got != want {
					t.Fatalf("post-compaction selectivity %v, oracle %v for %s", got, want, q)
				}
			}
		})
	}
}

// rebuildOracle builds the from-scratch reference sketch for the stack's
// current document state.
func rebuildOracle(t *testing.T, st *Stack, budget int) *sketch.Sketch {
	t.Helper()
	fresh := xmltree.NewTree()
	fresh.Root = copyInto(fresh, st.Doc().Root)
	return CompactSketch(stable.Build(fresh), budget, 0, obs.NewRegistry())
}

// relErr is the relative error with a unit sanity bound, mirroring
// eval.RelativeError's shape for estimate-vs-estimate comparison.
func relErr(got, want float64) float64 {
	den := want
	if den < 1 {
		den = 1
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / den
}
