package tier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// TestQueriesNeverBlockOnCompaction forces a background compaction whose
// build phase is artificially stretched to compactDelay and hammers
// estimates from several goroutines the whole time. Every estimate must
// finish far inside the build time (queries take the atomic view load, no
// lock), every loaded view must satisfy element conservation (no torn
// view), and at least one estimate must demonstrably overlap the in-flight
// compaction. Run under -race in CI.
func TestQueriesNeverBlockOnCompaction(t *testing.T) {
	const compactDelay = 300 * time.Millisecond
	opts := Options{
		BudgetBytes:     4096,
		CompactDelay:    compactDelay,
		MinCompactElems: 1 << 30, // only the explicit Compact below
		Metrics:         obs.NewRegistry(),
	}
	st := mustStack(t, "r(a(b,b),a(b),c(d),c(d,d))", opts)
	rng := testRNG(9)
	for i := 0; i < 20; i++ {
		randomOp(t, st, &rng)
	}
	q := mustQuery(t, "//a/b")

	var (
		wg          sync.WaitGroup
		overlapped  atomic.Int64
		worst       atomic.Int64 // nanoseconds
		stop        atomic.Bool
		tornOrError atomic.Pointer[string]
	)
	fail := func(msg string) {
		tornOrError.CompareAndSwap(nil, &msg)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				inFlight := st.Compacting()
				begin := time.Now()
				v := st.View()
				if err := v.CheckConservation(); err != nil {
					fail(err.Error())
					return
				}
				_, sel, _ := v.Estimate(q, eval.Options{})
				took := time.Since(begin)
				if sel < 0 {
					fail("negative merged selectivity")
					return
				}
				for {
					w := worst.Load()
					if int64(took) <= w || worst.CompareAndSwap(w, int64(took)) {
						break
					}
				}
				if inFlight {
					overlapped.Add(1)
				}
			}
		}()
	}

	// Interleave absorbs with the hammering, then force the compaction.
	for i := 0; i < 5; i++ {
		randomOp(t, st, &rng)
	}
	begin := time.Now()
	st.Compact()
	compactTook := time.Since(begin)
	stop.Store(true)
	wg.Wait()

	if msg := tornOrError.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if compactTook < compactDelay {
		t.Fatalf("compaction finished in %v, delay hook %v did not engage", compactTook, compactDelay)
	}
	if overlapped.Load() == 0 {
		t.Fatal("no estimate observed an in-flight compaction; overlap not exercised")
	}
	// The non-blocking bound: estimates must complete far inside the build
	// phase. The generous bound absorbs -race and CI scheduling noise while
	// still catching any path where a query waits out the build.
	if bound := compactDelay / 2; time.Duration(worst.Load()) > bound {
		t.Fatalf("worst estimate latency %v exceeds non-blocking bound %v", time.Duration(worst.Load()), bound)
	}
	if err := st.View().CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if st.View().Epoch == 0 {
		t.Fatal("compaction did not publish a new epoch")
	}
}

// TestConcurrentUpdatesAndQueries mixes writers and readers: one goroutine
// absorbs a seeded script (with auto-compaction enabled and slowed) while
// readers continuously load views. Checks the stack stays consistent and
// every intermediate view conserves elements. Run under -race.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	opts := Options{
		BudgetBytes:     4096,
		CompactDelay:    20 * time.Millisecond,
		MinCompactElems: 32,
		CompactFraction: 0.01,
		SealUnits:       4,
		Metrics:         obs.NewRegistry(),
	}
	st := mustStack(t, "r(a(b,b),a(b),c(d),c(d,d))", opts)
	q := mustQuery(t, "//c/d")

	var wg sync.WaitGroup
	var stop atomic.Bool
	var failMsg atomic.Pointer[string]
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := st.View()
				if err := v.CheckConservation(); err != nil {
					msg := err.Error()
					failMsg.CompareAndSwap(nil, &msg)
					return
				}
				v.Estimate(q, eval.Options{})
			}
		}()
	}

	rng := testRNG(17)
	for i := 0; i < 60; i++ {
		randomOp(t, st, &rng)
	}
	st.Compact()
	stop.Store(true)
	wg.Wait()

	if msg := failMsg.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if err := st.Doc().Validate(); err != nil {
		t.Fatal(err)
	}
	// The maintained summary survived the concurrent episode intact.
	fresh := xmltree.NewTree()
	fresh.Root = copyInto(fresh, st.Doc().Root)
	oracle := CompactSketch(stable.Build(fresh), opts.BudgetBytes, 0, obs.NewRegistry())
	if got, want := st.View().Base.Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("post-episode base fp %016x, rebuild fp %016x", got, want)
	}
}
