// Package tier maintains a queryable TreeSketch over a live document as an
// LSM-style stack of synopses: a compacted immutable base plus small delta
// tiers absorbed from stable.Maintainer insert/delete events. Queries are
// answered over base+delta through an immutable View published with the
// same atomic-swap discipline internal/serve's catalog uses, so estimates
// never block on a build; deterministic background compactions fold the
// delta back into a fresh base when it exceeds a size ratio.
//
// The delta representation is spine-relative: each absorbed update becomes
// a pair of tiny exact sketches — the root-to-parent label spine with the
// inserted (or deleted) subtree grafted on, and the bare spine — and
// contributes sign x (est(spine+subtree) - est(spine)) to an estimate.
// The subtraction cancels matches the base already counts along the spine
// while keeping predicate activation the new subtree causes on its own
// ancestor chain. Matches that pair new elements with off-spine base
// elements are not visible to a delta tier; that approximation is bounded
// by the differential test layer and disappears entirely at the next
// compaction, which rebuilds from the maintained count-stable summary
// (exact by Lemma 3.1).
package tier

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// Options configures a Stack.
type Options struct {
	// BudgetBytes is the byte budget handed to TSBuild for the compacted
	// base. Defaults to 8192.
	BudgetBytes int
	// Workers is the TSBuild worker count for compactions. 0 lets TSBuild
	// pick GOMAXPROCS; output is bit-identical for any value.
	Workers int
	// SealUnits bounds the unsealed tier-0 unit list: when reached, the
	// units are folded into one merged segment (shared spines, two sketches
	// per sign). Defaults to 32.
	SealUnits int
	// CompactFraction triggers a major compaction when the absorbed delta
	// exceeds this fraction of the base element count. Defaults to 0.10.
	CompactFraction float64
	// MinCompactElems is an absolute floor on the absorbed delta before the
	// ratio test applies, so small documents do not compact on every
	// update. Defaults to 512.
	MinCompactElems int
	// Synchronous runs compactions inline in the triggering call instead of
	// a background goroutine. Tests and determinism checks use this; the
	// serving path leaves it false.
	Synchronous bool
	// CompactDelay artificially lengthens a compaction's build phase. It is
	// a test hook (like serve's injected eval delay) for overlapping
	// queries with an in-flight compaction deterministically.
	CompactDelay time.Duration
	// Metrics receives the tier.* telemetry. Nil selects obs.Default.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.BudgetBytes <= 0 {
		o.BudgetBytes = 8192
	}
	if o.SealUnits <= 0 {
		o.SealUnits = 32
	}
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.10
	}
	if o.MinCompactElems <= 0 {
		o.MinCompactElems = 512
	}
	o.Metrics = obs.Or(o.Metrics)
	return o
}

// Stack is a tiered synopsis over one live document. All updates are
// serialized through an internal mutex; estimates take no lock at all —
// they load the current immutable View from an atomic pointer.
type Stack struct {
	opts Options
	reg  *obs.Registry

	mu        sync.Mutex
	m         *stable.Maintainer
	byOID     map[int]*xmltree.Node
	seq       uint64
	tier0     []*unit
	segments  []*segment
	base      *sketch.Sketch
	baseElems int
	epoch     uint64
	deltaAbs  int // absorbed elements (unsigned) since the last compaction

	view        atomic.Pointer[View]
	compacting  atomic.Bool
	compactDone chan struct{} // closed when the in-flight compaction publishes

	mAbsorbs     *obs.Counter
	mSeals       *obs.Counter
	mCompactions *obs.Counter
	mEstimates   *obs.Counter
	gDelta       *obs.Gauge
	gDepth       *obs.Gauge
	wCompactLat  *obs.WindowedHistogram
}

// New builds a Stack over doc: a count-stable Maintainer plus an initial
// compacted base. The document must not be mutated except through the
// Stack.
func New(doc *xmltree.Tree, opts Options) (*Stack, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("tier: New: empty document")
	}
	opts = opts.withDefaults()
	s := &Stack{
		opts:  opts,
		reg:   opts.Metrics,
		m:     stable.NewMaintainer(doc),
		byOID: make(map[int]*xmltree.Node, doc.Size()),
	}
	doc.PreOrder(func(n *xmltree.Node) { s.byOID[n.OID] = n })
	s.mAbsorbs = s.reg.Counter("tier.absorbs")
	s.mSeals = s.reg.Counter("tier.seals")
	s.mCompactions = s.reg.Counter("tier.compactions")
	s.mEstimates = s.reg.Counter("tier.estimates")
	s.gDelta = s.reg.Gauge("tier.delta_elems")
	s.gDepth = s.reg.Gauge("tier.depth")
	s.wCompactLat = s.reg.Windowed("tier.compaction.latency_seconds")

	s.base = CompactSketch(s.m.CanonicalSynopsis(), opts.BudgetBytes, opts.Workers, s.reg)
	s.baseElems = doc.Size()
	s.publishLocked() // no concurrency yet; lock not needed but harmless to reuse
	return s, nil
}

// Doc returns the maintained document. Callers must not mutate it.
func (s *Stack) Doc() *xmltree.Tree { return s.m.Doc() }

// View returns the current immutable base+delta view. The returned value is
// never mutated; successive calls may return different views.
func (s *Stack) View() *View { return s.view.Load() }

// Compacting reports whether a background compaction is in flight.
func (s *Stack) Compacting() bool { return s.compacting.Load() }

// Insert absorbs a subtree insertion: proto is cloned as a new child of the
// element with OID parentOID. Returns the OID of the adopted subtree root.
func (s *Stack) Insert(parentOID int, proto *xmltree.Tree) (int, error) {
	if proto == nil || proto.Root == nil {
		return 0, fmt.Errorf("tier: Insert: empty subtree")
	}
	s.mu.Lock()
	parent := s.byOID[parentOID]
	if parent == nil {
		s.mu.Unlock()
		return 0, fmt.Errorf("tier: Insert: unknown parent OID %d", parentOID)
	}
	spineLabels := s.spineLabelsLocked(parent)
	spineOIDs := s.spineOIDsLocked(parent)
	root, err := s.m.InsertSubtree(parent, proto)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	var register func(n *xmltree.Node)
	register = func(n *xmltree.Node) {
		s.byOID[n.OID] = n
		for _, c := range n.Children {
			register(c)
		}
	}
	register(root)
	s.seq++
	u := newUnit(s.seq, +1, spineLabels, spineOIDs, root)
	run := s.absorbLocked(u)
	s.mu.Unlock()
	if run != nil {
		run()
	}
	return root.OID, nil
}

// Delete absorbs a subtree deletion by OID. The document root cannot be
// deleted.
func (s *Stack) Delete(oid int) error {
	s.mu.Lock()
	victim := s.byOID[oid]
	if victim == nil {
		s.mu.Unlock()
		return fmt.Errorf("tier: Delete: unknown OID %d", oid)
	}
	parent := s.m.Parent(victim)
	if parent == nil {
		s.mu.Unlock()
		return fmt.Errorf("tier: Delete: cannot delete the document root")
	}
	spineLabels := s.spineLabelsLocked(parent)
	spineOIDs := s.spineOIDsLocked(parent)
	s.seq++
	u := newUnit(s.seq, -1, spineLabels, spineOIDs, victim)
	if err := s.m.DeleteSubtree(victim); err != nil {
		s.seq--
		s.mu.Unlock()
		return err
	}
	var deregister func(n *xmltree.Node)
	deregister = func(n *xmltree.Node) {
		delete(s.byOID, n.OID)
		for _, c := range n.Children {
			deregister(c)
		}
	}
	deregister(victim)
	run := s.absorbLocked(u)
	s.mu.Unlock()
	if run != nil {
		run()
	}
	return nil
}

// EstimateContext answers q over the current view; see View.EstimateContext.
func (s *Stack) EstimateContext(ctx context.Context, q *query.Query, opts eval.Options) (*eval.Result, float64, Info) {
	s.mEstimates.Inc()
	return s.View().EstimateContext(ctx, q, opts)
}

// Compact folds every delta tier absorbed before the call into the base
// and waits for the publish; a compaction already in flight is waited out
// first (its snapshot may predate recent absorbs, so another round runs).
// Absorbs issued concurrently with Compact may leave fresh tiers behind.
func (s *Stack) Compact() {
	for {
		s.mu.Lock()
		if s.compacting.Load() {
			ch := s.compactDone
			s.mu.Unlock()
			<-ch
			continue
		}
		if len(s.segments) == 0 && len(s.tier0) == 0 {
			s.mu.Unlock()
			return
		}
		run := s.startCompactionLocked()
		ch := s.compactDone
		s.mu.Unlock()
		if run != nil {
			run()
		}
		<-ch
	}
}

// absorbLocked records a freshly built unit, reseals/publishes, and decides
// whether to start a compaction. The returned thunk is non-nil only in
// Synchronous mode; the caller must invoke it after releasing the lock.
func (s *Stack) absorbLocked(u *unit) func() {
	s.tier0 = append(s.tier0, u)
	s.deltaAbs += u.elems
	s.mAbsorbs.Inc()
	if len(s.tier0) >= s.opts.SealUnits {
		s.sealLocked()
	}
	s.publishLocked()
	if s.compacting.Load() {
		return nil
	}
	if s.deltaAbs < s.opts.MinCompactElems {
		return nil
	}
	if float64(s.deltaAbs) < s.opts.CompactFraction*float64(s.baseElems) {
		return nil
	}
	return s.startCompactionLocked()
}

// sealLocked folds the unsealed tier-0 units into one merged segment.
func (s *Stack) sealLocked() {
	if len(s.tier0) == 0 {
		return
	}
	s.segments = append(s.segments, newSegment(s.tier0))
	s.tier0 = nil
	s.mSeals.Inc()
}

// startCompactionLocked seals the open tier, snapshots the maintained
// summary, and schedules the rebuild. In Synchronous mode the returned
// thunk runs the compaction; otherwise it runs on a background goroutine
// and nil is returned. Either way compactDone is closed at publish.
func (s *Stack) startCompactionLocked() func() {
	s.sealLocked()
	boundary := s.seq
	canon := s.m.CanonicalSynopsis()
	elems := s.m.Doc().Size()
	s.compacting.Store(true)
	done := make(chan struct{})
	s.compactDone = done
	run := func() {
		defer close(done)
		s.runCompaction(canon, elems, boundary)
	}
	if s.opts.Synchronous {
		return run
	}
	go run() //lint:nondet compaction runs off the query path; its product is the deterministic CompactSketch output
	return nil
}

// runCompaction builds a fresh base from the snapshot and publishes it,
// dropping every delta segment the snapshot covers. Queries keep hitting
// the previous view until the single atomic store below.
func (s *Stack) runCompaction(canon *stable.Synopsis, elems int, boundary uint64) {
	start := time.Now()
	if d := s.opts.CompactDelay; d > 0 {
		time.Sleep(d)
	}
	base := CompactSketch(canon, s.opts.BudgetBytes, s.opts.Workers, s.reg)
	s.mu.Lock()
	keep := s.segments[:0:0]
	for _, seg := range s.segments {
		if seg.maxSeq > boundary {
			keep = append(keep, seg)
		}
	}
	s.segments = keep
	s.base = base
	s.baseElems = elems
	s.epoch++
	s.deltaAbs = 0
	for _, seg := range s.segments {
		s.deltaAbs += seg.absElems
	}
	for _, u := range s.tier0 {
		s.deltaAbs += u.elems
	}
	s.publishLocked()
	s.compacting.Store(false)
	s.mu.Unlock()
	s.mCompactions.Inc()
	s.wCompactLat.Observe(time.Since(start).Seconds())
}

// publishLocked swaps in a fresh immutable View of the current state.
func (s *Stack) publishLocked() {
	v := &View{
		Base:      s.base,
		BaseElems: s.baseElems,
		Elems:     s.m.Doc().Size(),
		Epoch:     s.epoch,
		Seq:       s.seq,
		segments:  append([]*segment(nil), s.segments...),
		units:     append([]*unit(nil), s.tier0...),
	}
	s.view.Store(v)
	s.gDelta.Set(int64(s.deltaAbs))
	depth := int64(1 + len(s.segments))
	if len(s.tier0) > 0 {
		depth++
	}
	s.gDepth.Set(depth)
}

// spineLabelsLocked returns the labels of the path document root .. n.
func (s *Stack) spineLabelsLocked(n *xmltree.Node) []string {
	var rev []string
	for cur := n; cur != nil; cur = s.m.Parent(cur) {
		rev = append(rev, cur.Label)
	}
	out := make([]string, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out
}

// spineOIDsLocked returns the OIDs of the path document root .. n.
func (s *Stack) spineOIDsLocked(n *xmltree.Node) []int {
	var rev []int
	for cur := n; cur != nil; cur = s.m.Parent(cur) {
		rev = append(rev, cur.OID)
	}
	out := make([]int, len(rev))
	for i, oid := range rev {
		out[len(rev)-1-i] = oid
	}
	return out
}
