package tier

import (
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/tsbuild"
)

// CompactSketch builds the compacted base sketch for a canonical
// count-stable snapshot (stable.Maintainer.CanonicalSynopsis or
// stable.Build output). It is the deterministic core of tier compaction:
// the snapshot is numbered by document post-order and TSBuild is
// bit-identical for any worker count, so the result fingerprints equal for
// GOMAXPROCS=1 and N and equal to a from-scratch rebuild of the same
// document. The tslint nondet analyzer polices this function's call graph
// (it is registered as a root next to tsbuild.Build), so clocks, map
// iteration, and unannotated goroutines cannot creep onto the path.
func CompactSketch(canon *stable.Synopsis, budgetBytes, workers int, reg *obs.Registry) *sketch.Sketch {
	sk, _ := tsbuild.Build(canon, tsbuild.Options{
		BudgetBytes: budgetBytes,
		Workers:     workers,
		Metrics:     reg,
	})
	return sk
}
