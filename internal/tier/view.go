package tier

import (
	"context"
	"fmt"

	"treesketch/internal/eval"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
)

// View is one immutable published state of a Stack: a compacted base sketch
// plus the delta tiers absorbed since that base was built. Views are never
// mutated after publication; estimates read whichever view was current when
// they started and are therefore wait-free with respect to updates and
// compactions.
type View struct {
	// Base is the compacted base sketch (TSBuild output).
	Base *sketch.Sketch
	// BaseElems is the document element count the base summarizes.
	BaseElems int
	// Elems is the live document element count at publication. The
	// conservation invariant Elems == BaseElems + signed delta elements is
	// what the fuzz and concurrency layers assert against torn views.
	Elems int
	// Epoch counts compactions applied; Seq counts updates absorbed.
	Epoch uint64
	Seq   uint64

	segments []*segment
	units    []*unit
}

// Info reports how a merged estimate was put together.
type Info struct {
	// BaseSelectivity is the estimate from the base sketch alone.
	BaseSelectivity float64
	// Delta is the signed correction contributed by the delta tiers.
	Delta float64
	// DeltaElems is the signed element delta the tiers carry vs the base.
	DeltaElems int
	// Tiers is the number of delta tiers consulted (sealed segments plus
	// one unsealed tier when present).
	Tiers int
	// Epoch is the view's compaction epoch.
	Epoch uint64
}

// DeltaElems returns the signed element delta the view's tiers carry.
func (v *View) DeltaElems() int {
	d := 0
	for _, seg := range v.segments {
		d += seg.elems
	}
	for _, u := range v.units {
		d += u.sign * u.elems
	}
	return d
}

// Tiers reports the number of delta tiers in the view.
func (v *View) Tiers() int {
	n := len(v.segments)
	if len(v.units) > 0 {
		n++
	}
	return n
}

// CheckConservation verifies the view's element accounting: the published
// live count must equal the base count plus the signed tier deltas. A
// torn view (base from one state, tiers from another) cannot satisfy it.
func (v *View) CheckConservation() error {
	if got := v.BaseElems + v.DeltaElems(); got != v.Elems {
		return fmt.Errorf("tier: view conservation violated: base %d + delta %d = %d, published %d",
			v.BaseElems, v.DeltaElems(), got, v.Elems)
	}
	return nil
}

// EstimateContext answers q over base+delta. The returned Result is the
// base evaluation (its result synopsis drives answer shapes and top-k);
// the float is the merged selectivity: the base estimate plus each tier's
// spine-subtracted contribution, clamped at zero. opts applies to the base
// evaluation; delta sketches are tiny and always evaluated in batch mode.
func (v *View) EstimateContext(ctx context.Context, q *query.Query, opts eval.Options) (*eval.Result, float64, Info) {
	res := eval.ApproxContext(ctx, v.Base, q, opts)
	if res.Canceled {
		// The base evaluation aborted at the deadline: there is no synopsis
		// to merge deltas into, so skip the tier sweeps entirely and let the
		// caller route the cancellation.
		return res, 0, Info{DeltaElems: v.DeltaElems(), Tiers: v.Tiers(), Epoch: v.Epoch}
	}
	info := Info{
		BaseSelectivity: res.Selectivity(),
		DeltaElems:      v.DeltaElems(),
		Tiers:           v.Tiers(),
		Epoch:           v.Epoch,
	}
	dopts := eval.Options{MaxEmbeddings: opts.MaxEmbeddings, Metrics: opts.Metrics}
	canceled := false
	sel := func(sk *sketch.Sketch) float64 {
		if sk == nil || canceled {
			return 0
		}
		dres := eval.ApproxContext(ctx, sk, q, dopts)
		if dres.Canceled {
			// A canceled delta sweep poisons the merge: short-circuit the
			// remaining sketches (each would just re-observe the same expired
			// ctx) and cancel the whole estimate — a base answer missing its
			// deltas would silently misreport a live dataset.
			canceled = true
			return 0
		}
		return dres.Selectivity()
	}
	for _, seg := range v.segments {
		info.Delta += sel(seg.pos) - sel(seg.posSpine)
		info.Delta -= sel(seg.neg) - sel(seg.negSpine)
	}
	for _, u := range v.units {
		info.Delta += float64(u.sign) * (sel(u.full) - sel(u.spine))
	}
	if canceled {
		res.Canceled = true
		return res, 0, info
	}
	merged := info.BaseSelectivity + info.Delta
	if merged < 0 {
		merged = 0
	}
	return res, merged, info
}

// Estimate is EstimateContext without request-scoped telemetry.
func (v *View) Estimate(q *query.Query, opts eval.Options) (*eval.Result, float64, Info) {
	return v.EstimateContext(context.Background(), q, opts)
}

// Fingerprint extends sketch.Fingerprint to the whole tier stack: the base
// fingerprint plus every tier's structure and statistics, folded in absorb
// order. Two stacks that absorbed the same update script have equal view
// fingerprints regardless of worker count or GOMAXPROCS; a fully compacted
// view fingerprints identically to a fresh stack built from the final
// document, which is the oracle the differential and fuzz layers check.
func (v *View) Fingerprint() uint64 {
	fp := func(sk *sketch.Sketch) uint64 {
		if sk == nil {
			return 0
		}
		return sk.Fingerprint()
	}
	tokens := []uint64{
		fp(v.Base),
		uint64(int64(v.BaseElems)),
		uint64(int64(v.Elems)),
		uint64(len(v.segments)),
		uint64(len(v.units)),
	}
	for _, seg := range v.segments {
		tokens = append(tokens,
			uint64(int64(seg.elems)), uint64(seg.maxSeq),
			fp(seg.pos), fp(seg.posSpine), fp(seg.neg), fp(seg.negSpine))
	}
	for _, u := range v.units {
		tokens = append(tokens,
			uint64(int64(u.sign)), uint64(int64(u.elems)),
			fp(u.full), fp(u.spine))
	}
	return sketch.Combine(tokens...)
}
