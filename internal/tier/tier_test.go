package tier

import (
	"context"
	"testing"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func testOpts() Options {
	return Options{
		BudgetBytes: 1 << 16, // roomy: base stays count-stable on tiny docs
		Synchronous: true,
		Metrics:     obs.NewRegistry(),
	}
}

func mustStack(t *testing.T, compact string, opts Options) *Stack {
	t.Helper()
	st, err := New(xmltree.MustCompact(compact), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustQuery(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestStackValidation(t *testing.T) {
	if _, err := New(nil, testOpts()); err == nil {
		t.Fatal("accepted nil document")
	}
	st := mustStack(t, "r(a(b),c)", testOpts())
	if _, err := st.Insert(9999, xmltree.MustCompact("x")); err == nil {
		t.Fatal("accepted unknown parent OID")
	}
	if err := st.Delete(9999); err == nil {
		t.Fatal("accepted unknown victim OID")
	}
	if err := st.Delete(st.Doc().Root.OID); err == nil {
		t.Fatal("accepted root deletion")
	}
	if _, err := st.Insert(st.Doc().Root.OID, xmltree.NewTree()); err == nil {
		t.Fatal("accepted empty subtree")
	}
}

func TestStackAbsorbAndConservation(t *testing.T) {
	st := mustStack(t, "r(a(b,b),a(b),c)", testOpts())
	v := st.View()
	if v.Elems != 7 || v.BaseElems != 7 || v.Tiers() != 0 {
		t.Fatalf("initial view: elems=%d base=%d tiers=%d", v.Elems, v.BaseElems, v.Tiers())
	}

	oid, err := st.Insert(st.Doc().Root.OID, xmltree.MustCompact("a(b,b,b)"))
	if err != nil {
		t.Fatal(err)
	}
	v = st.View()
	if v.Elems != 11 || v.DeltaElems() != 4 || v.Tiers() == 0 {
		t.Fatalf("after insert: elems=%d delta=%d tiers=%d", v.Elems, v.DeltaElems(), v.Tiers())
	}
	if err := v.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	if err := st.Delete(oid); err != nil {
		t.Fatal(err)
	}
	v = st.View()
	if v.Elems != 7 || v.DeltaElems() != 0 {
		t.Fatalf("after delete: elems=%d delta=%d", v.Elems, v.DeltaElems())
	}
	if err := v.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := st.Doc().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStackDeltaEstimateExactOnChainInsert checks the spine-subtraction
// arithmetic on a case where the delta must be exact: a count-stable base
// and an inserted subtree whose matches never pair with off-spine base
// elements.
func TestStackDeltaEstimateExactOnChainInsert(t *testing.T) {
	st := mustStack(t, "r(a(b),a(b))", testOpts())
	q := mustQuery(t, "//a/b")
	_, got, info := st.EstimateContext(t.Context(), q, eval.Options{})
	if got != 2 {
		t.Fatalf("pre-update estimate %v, want 2 (info %+v)", got, info)
	}
	if _, err := st.Insert(st.Doc().Root.OID, xmltree.MustCompact("a(b,b)")); err != nil {
		t.Fatal(err)
	}
	_, got, info = st.EstimateContext(t.Context(), q, eval.Options{})
	if got != 4 {
		t.Fatalf("post-insert estimate %v, want 4 (base %v delta %v)", got, info.BaseSelectivity, info.Delta)
	}
	// The base alone must still answer 2: it has not been compacted.
	if info.BaseSelectivity != 2 || info.Delta != 2 {
		t.Fatalf("contributions base=%v delta=%v, want 2+2", info.BaseSelectivity, info.Delta)
	}
}

func TestStackSealing(t *testing.T) {
	opts := testOpts()
	opts.SealUnits = 3
	// Keep compaction out of the way; this test is about seals.
	opts.MinCompactElems = 1 << 30
	st := mustStack(t, "r(a(b),a(b))", opts)
	rng := testRNG(7)
	for i := 0; i < 10; i++ {
		randomOp(t, st, &rng)
		if err := st.View().CheckConservation(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	v := st.View()
	if len(v.segments) == 0 {
		t.Fatal("no segments sealed after 10 ops with SealUnits=3")
	}
	if len(v.units) >= opts.SealUnits {
		t.Fatalf("unsealed tier holds %d units, seal bound %d", len(v.units), opts.SealUnits)
	}
	if got := st.reg.Counter("tier.seals").Value(); got == 0 {
		t.Fatal("tier.seals not incremented")
	}
}

// TestStackCompactionMatchesFreshStack is the core determinism identity:
// after a full compaction, the stack's view fingerprints identically to a
// brand-new stack built from the final document state.
func TestStackCompactionMatchesFreshStack(t *testing.T) {
	opts := testOpts()
	opts.BudgetBytes = 2048 // force real TSBuild compression
	st := mustStack(t, "r(a(b,b),a(b),c(d),c(d,d))", opts)
	rng := testRNG(42)
	for i := 0; i < 25; i++ {
		randomOp(t, st, &rng)
	}
	st.Compact()
	v := st.View()
	if v.Tiers() != 0 || v.DeltaElems() != 0 {
		t.Fatalf("post-compaction view still has %d tiers, delta %d", v.Tiers(), v.DeltaElems())
	}
	if err := v.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	fresh := xmltree.NewTree()
	fresh.Root = copyInto(fresh, st.Doc().Root)
	oracle := CompactSketch(stable.Build(fresh), opts.BudgetBytes, 0, obs.NewRegistry())
	if got, want := v.Base.Fingerprint(), oracle.Fingerprint(); got != want {
		t.Fatalf("compacted base fp %016x, from-scratch rebuild fp %016x", got, want)
	}

	fst, err := New(fresh, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Fingerprint(), fst.View().Fingerprint(); got != want {
		t.Fatalf("view fp %016x, fresh-stack fp %016x", got, want)
	}
	if got := st.reg.Counter("tier.compactions").Value(); got == 0 {
		t.Fatal("tier.compactions not incremented")
	}
}

// TestStackFingerprintAcrossWorkers replays one script on stacks with
// different TSBuild worker counts: every published view must fingerprint
// identically, which is the property the CI GOMAXPROCS diff asserts.
func TestStackFingerprintAcrossWorkers(t *testing.T) {
	build := func(workers int) *Stack {
		opts := testOpts()
		opts.BudgetBytes = 2048
		opts.Workers = workers
		opts.MinCompactElems = 48 // compact eagerly so the script crosses epochs
		opts.CompactFraction = 0.01
		return mustStack(t, "r(a(b,b),a(b),c(d),c(d,d))", opts)
	}
	a, b := build(1), build(4)
	rngA, rngB := testRNG(3), testRNG(3)
	for i := 0; i < 30; i++ {
		randomOp(t, a, &rngA)
		randomOp(t, b, &rngB)
		if fa, fb := a.View().Fingerprint(), b.View().Fingerprint(); fa != fb {
			t.Fatalf("op %d: workers=1 fp %016x, workers=4 fp %016x", i, fa, fb)
		}
	}
	a.Compact()
	b.Compact()
	if fa, fb := a.View().Fingerprint(), b.View().Fingerprint(); fa != fb {
		t.Fatalf("post-compaction: workers=1 fp %016x, workers=4 fp %016x", fa, fb)
	}
}

func TestStackTelemetryNamesClean(t *testing.T) {
	reg := obs.NewRegistry()
	opts := testOpts()
	opts.Metrics = reg
	st := mustStack(t, "r(a(b))", opts)
	if _, err := st.Insert(st.Doc().Root.OID, xmltree.MustCompact("a(b)")); err != nil {
		t.Fatal(err)
	}
	st.Compact()
	if errs := reg.NameErrors(); len(errs) != 0 {
		t.Fatalf("metric name errors: %v", errs)
	}
}

// TestStackEstimateContextCanceled pins cancellation through the tiered
// view: an expired context cancels the merged estimate (no partial
// base+delta arithmetic escapes as an answer), while a live context on the
// same stack still merges normally.
func TestStackEstimateContextCanceled(t *testing.T) {
	st := mustStack(t, "r(a(b),a(b))", testOpts())
	if _, err := st.Insert(st.Doc().Root.OID, xmltree.MustCompact("a(b,b)")); err != nil {
		t.Fatal(err)
	}
	q := mustQuery(t, "//a/b")

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	res, sel, _ := st.EstimateContext(expired, q, eval.Options{})
	if !res.Canceled {
		t.Fatal("expired context did not cancel the tiered estimate")
	}
	if sel != 0 {
		t.Fatalf("canceled estimate leaked selectivity %v, want 0", sel)
	}

	res, sel, _ = st.EstimateContext(t.Context(), q, eval.Options{})
	if res.Canceled || sel != 4 {
		t.Fatalf("live estimate after a canceled one: canceled=%v sel=%v, want 4", res.Canceled, sel)
	}
}
