package tier

import (
	"math"
	"testing"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// FuzzTierUpdates decodes an arbitrary byte script into a sequence of
// insert / delete / compact / query operations against a tier stack and
// asserts the invariants that must hold for any script:
//
//   - no panic anywhere in the stack;
//   - element-count conservation on every published view (base elements
//     plus signed tier deltas equals the live document size);
//   - estimates stay finite and non-negative;
//   - after a final full compaction the view fingerprints identically to
//     a fresh stack built from the final document (and hence to the
//     from-scratch stable.Build + tsbuild.Build oracle).
//
// Script encoding: each op consumes one selector byte (mod 8: 0-2 insert,
// 3-4 delete, 5 compact, 6-7 query) plus parameter bytes indexing the
// live-element list, a fixed proto table, or a fixed query table.
func FuzzTierUpdates(f *testing.F) {
	seeds := [][]byte{
		{0, 0, 0},                                                 // one insert
		{0, 1, 1, 3, 2, 6, 0},                                     // insert, delete, query
		{0, 2, 2, 0, 3, 4, 5, 6, 1},                               // inserts, compact, query
		{1, 0, 3, 1, 0, 1, 5, 3, 2, 6, 4, 5},                      // mixed with two compacts
		{3, 1, 3, 2, 3, 3, 0, 0, 5, 7, 2},                         // delete-heavy then compact
		{6, 0, 6, 1, 6, 2, 6, 3, 6, 4},                            // query-only
		{0, 4, 5, 2, 9, 0, 7, 5, 5, 0, 1, 2, 3, 9, 6, 2, 0, 3, 3}, // long mix
	}
	for _, s := range seeds {
		f.Add(s)
	}
	protoStrs := []string{"a(b)", "a(b,b)", "x(y(z))", "c", "a(b(c),b)", "e(d,d,d)"}
	queryStrs := []string{"//a", "//a/b", "//x//z", "//e[/d]", "//c", "//a{/b,//c?}"}
	queries := make([]*query.Query, len(queryStrs))
	for i, s := range queryStrs {
		q, err := query.Parse(s)
		if err != nil {
			f.Fatal(err)
		}
		queries[i] = q
	}

	f.Fuzz(func(t *testing.T, script []byte) {
		doc := xmltree.MustCompact("r(a(b,b),a(b),c(d),e(d,d))")
		st, err := New(doc, Options{
			BudgetBytes:     4096,
			Synchronous:     true,
			SealUnits:       4,
			MinCompactElems: 64,
			CompactFraction: 0.05,
			Metrics:         obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		pop := func() (byte, bool) {
			if pos >= len(script) {
				return 0, false
			}
			b := script[pos]
			pos++
			return b, true
		}
	ops:
		for op := 0; op < 64; op++ {
			sel, ok := pop()
			if !ok {
				break
			}
			switch sel % 8 {
			case 0, 1, 2:
				pb, ok1 := pop()
				sb, ok2 := pop()
				if !ok1 || !ok2 {
					break ops
				}
				if st.Doc().Size() > 4096 {
					continue // keep scripts bounded in work, not in ops
				}
				els := liveNodes(st)
				proto := xmltree.MustCompact(protoStrs[int(sb)%len(protoStrs)])
				if _, err := st.Insert(els[int(pb)%len(els)].OID, proto); err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
			case 3, 4:
				vb, ok1 := pop()
				if !ok1 {
					break ops
				}
				els := liveNodes(st)
				if len(els) <= 4 {
					continue // never delete the document away
				}
				victim := els[int(vb)%(len(els)-1)+1]
				if err := st.Delete(victim.OID); err != nil {
					t.Fatalf("op %d: delete OID %d: %v", op, victim.OID, err)
				}
			case 5:
				st.Compact()
			default:
				qb, ok1 := pop()
				if !ok1 {
					break ops
				}
				q := queries[int(qb)%len(queries)]
				_, est, info := st.View().Estimate(q, eval.Options{MaxEmbeddings: 200})
				if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
					t.Fatalf("op %d: query %q: estimate %v not finite non-negative (info %+v)", op, q, est, info)
				}
			}
			v := st.View()
			if err := v.CheckConservation(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if v.Elems != st.Doc().Size() {
				t.Fatalf("op %d: view elems %d, document size %d", op, v.Elems, st.Doc().Size())
			}
		}

		if err := st.Doc().Validate(); err != nil {
			t.Fatal(err)
		}
		st.Compact()
		v := st.View()
		if v.Tiers() != 0 {
			t.Fatalf("full compaction left %d tiers", v.Tiers())
		}
		fresh := xmltree.NewTree()
		fresh.Root = copyInto(fresh, st.Doc().Root)
		oracle := CompactSketch(stable.Build(fresh), 4096, 0, obs.NewRegistry())
		if got, want := v.Base.Fingerprint(), oracle.Fingerprint(); got != want {
			t.Fatalf("compacted base fp %016x, rebuild oracle fp %016x", got, want)
		}
		fst, err := New(fresh, Options{BudgetBytes: 4096, Synchronous: true, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := v.Fingerprint(), fst.View().Fingerprint(); got != want {
			t.Fatalf("view fp %016x after full compaction, fresh-stack fp %016x", got, want)
		}
	})
}
