package tier

import (
	"testing"

	"treesketch/internal/xmltree"
)

// testRNG is the same LCG the stable property tests use, so update scripts
// are reproducible from a single seed with no global random state.
type testRNG uint64

func (r *testRNG) next(n int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int((uint64(*r) >> 33) % uint64(n))
}

// protoCap bounds the size of subtrees the scripter clones for insertion.
const protoCap = 64

// liveNodes returns the current document elements in preorder.
func liveNodes(st *Stack) []*xmltree.Node {
	var out []*xmltree.Node
	st.Doc().PreOrder(func(n *xmltree.Node) { out = append(out, n) })
	return out
}

// randomOp applies one seeded insert (cloning a random existing subtree of
// bounded size under a random parent) or delete (random non-root element).
// Inserts are forced while the document is small so scripts cannot delete
// a document away.
func randomOp(t *testing.T, st *Stack, rng *testRNG) {
	t.Helper()
	els := liveNodes(st)
	insert := rng.next(2) == 0 || len(els) < 16
	if insert {
		src := els[rng.next(len(els))]
		for countNodes(src) > protoCap {
			src = src.Children[rng.next(len(src.Children))]
		}
		proto := xmltree.NewTree()
		proto.Root = copyInto(proto, src)
		parent := els[rng.next(len(els))]
		if _, err := st.Insert(parent.OID, proto); err != nil {
			t.Fatalf("insert under OID %d: %v", parent.OID, err)
		}
		return
	}
	victim := els[rng.next(len(els)-1)+1] // never the root
	if err := st.Delete(victim.OID); err != nil {
		t.Fatalf("delete OID %d: %v", victim.OID, err)
	}
}
