package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewNodeAssignsSequentialOIDs(t *testing.T) {
	tr := NewTree()
	a := tr.NewNode("a")
	b := tr.NewNode("b")
	c := tr.NewNode("a")
	if a.OID != 0 || b.OID != 1 || c.OID != 2 {
		t.Fatalf("OIDs = %d,%d,%d; want 0,1,2", a.OID, b.OID, c.OID)
	}
	if tr.Size() != 3 {
		t.Fatalf("Size = %d, want 3", tr.Size())
	}
}

func TestInternReturnsCanonicalInstance(t *testing.T) {
	tr := NewTree()
	l1 := tr.Intern("paper")
	l2 := tr.Intern("pa" + strings.Repeat("per", 1)) // force a distinct string
	if l1 != l2 {
		t.Fatalf("interned labels differ: %q vs %q", l1, l2)
	}
}

func TestPreOrderVisitsDocumentOrder(t *testing.T) {
	tr := MustCompact("r(a(b,c),d)")
	var got []string
	tr.PreOrder(func(n *Node) { got = append(got, n.Label) })
	want := []string{"r", "a", "b", "c", "d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("pre-order = %v, want %v", got, want)
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	tr := MustCompact("r(a(b,c),d)")
	var got []string
	tr.PostOrder(func(n *Node) { got = append(got, n.Label) })
	want := []string{"b", "c", "a", "d", "r"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("post-order = %v, want %v", got, want)
	}
}

func TestPostOrderOIDOrderingInvariant(t *testing.T) {
	// In a pre-order-numbered tree, post-order must visit every parent after
	// all nodes of its subtree; in particular each node's OID is <= OIDs of
	// everything visited before it within its own subtree.
	tr := MustCompact("r(a(b(c,d),e),f(g))")
	visited := make(map[int]bool)
	tr.PostOrder(func(n *Node) {
		for _, c := range n.Children {
			if !visited[c.OID] {
				t.Fatalf("node %d visited before child %d", n.OID, c.OID)
			}
		}
		visited[n.OID] = true
	})
}

func TestHeight(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"r", 0},
		{"r(a)", 1},
		{"r(a(b),c)", 2},
		{"r(a(b(c(d))),e)", 4},
	}
	for _, c := range cases {
		if got := MustCompact(c.src).Height(); got != c.want {
			t.Errorf("Height(%q) = %d, want %d", c.src, got, c.want)
		}
	}
	empty := NewTree()
	if got := empty.Height(); got != -1 {
		t.Errorf("Height(empty) = %d, want -1", got)
	}
}

func TestSubtreeSizeAndDepth(t *testing.T) {
	tr := MustCompact("r(a(b,c),d(e(f)))")
	if got := SubtreeSize(tr.Root); got != 7 {
		t.Errorf("SubtreeSize(root) = %d, want 7", got)
	}
	a := tr.Root.Children[0]
	if got := SubtreeSize(a); got != 3 {
		t.Errorf("SubtreeSize(a) = %d, want 3", got)
	}
	if got := Depth(tr.Root); got != 3 {
		t.Errorf("Depth(root) = %d, want 3", got)
	}
	if got := Depth(a); got != 1 {
		t.Errorf("Depth(a) = %d, want 1", got)
	}
	if got := Depth(a.Children[0]); got != 0 {
		t.Errorf("Depth(leaf) = %d, want 0", got)
	}
	if got := SubtreeSize(nil); got != 0 {
		t.Errorf("SubtreeSize(nil) = %d, want 0", got)
	}
}

func TestLabels(t *testing.T) {
	tr := MustCompact("r(b(a),a,c(a,b))")
	got := tr.Labels()
	want := []string{"a", "b", "c", "r"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := MustCompact("r(a*10(b*3),c)")
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsDuplicateOIDs(t *testing.T) {
	tr := MustCompact("r(a,b)")
	tr.Root.Children[1].OID = tr.Root.Children[0].OID
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate OIDs")
	}
}

func TestValidateRejectsWrongSize(t *testing.T) {
	tr := MustCompact("r(a)")
	tr.SetSize(5)
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted wrong size counter")
	}
}

func TestValidateEmptyTree(t *testing.T) {
	tr := NewTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate(empty): %v", err)
	}
	tr.SetSize(1)
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted nil root with nonzero size")
	}
}

func TestCountNodesMatchesSize(t *testing.T) {
	tr := MustCompact("r(a*4(b*2(c)),d*3)")
	if tr.CountNodes() != tr.Size() {
		t.Fatalf("CountNodes = %d, Size = %d", tr.CountNodes(), tr.Size())
	}
}

// propTreeFromSeed builds a small deterministic tree from an arbitrary seed
// for property tests.
func propTreeFromSeed(seed uint64) *Tree {
	tr := NewTree()
	labels := []string{"a", "b", "c", "d"}
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	tr.Root = tr.NewNode("r")
	frontier := []*Node{tr.Root}
	budget := int(next(40)) + 1
	for budget > 0 && len(frontier) > 0 {
		p := frontier[next(uint64(len(frontier)))]
		c := tr.NewNode(labels[next(uint64(len(labels)))])
		p.Children = append(p.Children, c)
		frontier = append(frontier, c)
		budget--
	}
	return tr
}

func TestPropPrePostOrderVisitEveryNodeOnce(t *testing.T) {
	f := func(seed uint64) bool {
		tr := propTreeFromSeed(seed)
		pre := make(map[int]int)
		post := make(map[int]int)
		tr.PreOrder(func(n *Node) { pre[n.OID]++ })
		tr.PostOrder(func(n *Node) { post[n.OID]++ })
		if len(pre) != tr.Size() || len(post) != tr.Size() {
			return false
		}
		for _, c := range pre {
			if c != 1 {
				return false
			}
		}
		for _, c := range post {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubtreeSizesSumAtRoot(t *testing.T) {
	f := func(seed uint64) bool {
		tr := propTreeFromSeed(seed)
		return SubtreeSize(tr.Root) == tr.Size() && tr.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
