package xmltree

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"

	"treesketch/internal/obs"
)

// Parse reads an XML document from r and returns its element tree. Text
// content, attributes, comments, and processing instructions are discarded:
// the TreeSketch framework summarizes only the label structure (Section 2 of
// the paper). Parse fails on malformed XML or on documents with no element.
//
// Parse reports xmltree.parse.* metrics (documents, elements, depth, phase
// timing) to the obs.Default registry; elements/sec is the elements counter
// over the phase timer's total.
func Parse(r io.Reader) (*Tree, error) {
	// Deferred so every malformed-document return still closes the span;
	// error paths therefore contribute their (short) durations to the phase
	// timer, which is the honest accounting — the time was spent parsing.
	span := obs.StartSpan("xmltree.parse")
	defer span.End()
	t := NewTree()
	dec := xml.NewDecoder(bufio.NewReader(r))
	var stack []*Node
	maxDepth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			n := t.NewNode(el.Name.Local)
			if len(stack) == 0 {
				if t.Root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements (%q and %q)", t.Root.Label, n.Label)
				}
				t.Root = n
			} else {
				p := stack[len(stack)-1]
				p.Children = append(p.Children, n)
			}
			stack = append(stack, n)
			if len(stack) > maxDepth {
				maxDepth = len(stack)
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if t.Root == nil {
		return nil, fmt.Errorf("xmltree: parse: document has no elements")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unclosed elements", len(stack))
	}
	reg := obs.Default()
	reg.Counter("xmltree.parse.docs").Inc()
	reg.Counter("xmltree.parse.elements").Add(int64(t.Size()))
	reg.Gauge("xmltree.parse.max_depth").SetMax(int64(maxDepth - 1))
	return t, nil
}

// ParseString parses a document held in a string; a convenience for tests
// and examples.
func ParseString(s string) (*Tree, error) {
	return Parse(strings.NewReader(s))
}

// ParseFile parses the XML document stored at path.
func ParseFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmltree: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Write serializes the tree as XML to w. Elements carry no attributes or
// text, so the output is a pure tag skeleton; it round-trips through Parse.
func (t *Tree) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Root != nil {
		if err := writeNode(bw, t.Root, 0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeNode(w *bufio.Writer, n *Node, depth int) error {
	for i := 0; i < depth; i++ {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "<%s/>\n", n.Label)
		return err
	}
	if _, err := fmt.Fprintf(w, "<%s>\n", n.Label); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	for i := 0; i < depth; i++ {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>\n", n.Label)
	return err
}

// WriteFile serializes the tree as XML to the file at path.
func (t *Tree) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmltree: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// XMLSize reports the number of bytes the document occupies when serialized
// by Write. It is the "file size" used for the Table 1 dataset statistics.
func (t *Tree) XMLSize() int64 {
	var cw countingWriter
	// Write through the counting writer; errors are impossible.
	t.Write(&cw)
	return cw.n
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
