package xmltree

import (
	"fmt"
	"strconv"
	"strings"
)

// maxCompactNodes bounds BuildCompact output, guarding against replication
// bombs like "r(a*99999999(b*99999999))".
const maxCompactNodes = 1 << 20

// BuildCompact constructs a tree from a compact textual notation used
// pervasively in tests and examples:
//
//	tree    := node
//	node    := label [ '*' count ] [ '(' node (',' node)* ')' ]
//	label   := [A-Za-z0-9_-]+
//
// "r(a(b,c*3),a(b))" is a root r with two a children; the first a has one b
// and three c leaves. '*count' replicates the node (with its subtree)
// count times under its parent; it is not allowed on the root. Whitespace is
// ignored.
func BuildCompact(s string) (*Tree, error) {
	p := &compactParser{src: s}
	t := NewTree()
	nodes, err := p.node(t)
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("xmltree: compact: root cannot be replicated")
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xmltree: compact: trailing input at offset %d", p.pos)
	}
	t.Root = nodes[0]
	return t, nil
}

// MustCompact is BuildCompact that panics on error; for tests with literal
// inputs.
func MustCompact(s string) *Tree {
	t, err := BuildCompact(s)
	if err != nil {
		panic(err)
	}
	return t
}

type compactParser struct {
	src string
	pos int
}

func (p *compactParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func isLabelByte(b byte) bool {
	return b == '_' || b == '-' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

// node parses one node spec and returns the replicated instances.
func (p *compactParser) node(t *Tree) ([]*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isLabelByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("xmltree: compact: expected label at offset %d", p.pos)
	}
	label := p.src[start:p.pos]
	count := 1
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		numStart := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[numStart:p.pos])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("xmltree: compact: bad replication count at offset %d", numStart)
		}
		count = n
	}
	var childSpecs [][]*Node
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			kids, err := p.node(t)
			if err != nil {
				return nil, err
			}
			childSpecs = append(childSpecs, kids)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("xmltree: compact: unterminated '('")
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("xmltree: compact: expected ',' or ')' at offset %d", p.pos)
		}
	}
	out := make([]*Node, count)
	for i := range out {
		if t.Size() > maxCompactNodes {
			return nil, fmt.Errorf("xmltree: compact: tree exceeds %d nodes", maxCompactNodes)
		}
		n := t.NewNode(label)
		for _, group := range childSpecs {
			if i == 0 {
				n.Children = append(n.Children, group...)
			} else {
				for _, proto := range group {
					c, err := cloneInto(t, proto)
					if err != nil {
						return nil, err
					}
					n.Children = append(n.Children, c)
				}
			}
		}
		out[i] = n
	}
	return out, nil
}

func cloneInto(t *Tree, proto *Node) (*Node, error) {
	if t.Size() > maxCompactNodes {
		return nil, fmt.Errorf("xmltree: compact: tree exceeds %d nodes", maxCompactNodes)
	}
	n := t.NewNode(proto.Label)
	for _, c := range proto.Children {
		cc, err := cloneInto(t, c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cc)
	}
	return n, nil
}

// Compact renders the tree in (a canonicalized form of) the compact
// notation, with children in original order and without replication
// shorthand. Useful for golden comparisons in tests.
func (t *Tree) Compact() string {
	if t.Root == nil {
		return ""
	}
	var b strings.Builder
	writeCompact(&b, t.Root)
	return b.String()
}

func writeCompact(b *strings.Builder, n *Node) {
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		writeCompact(b, c)
	}
	b.WriteByte(')')
}
