package xmltree

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"treesketch/internal/obs"
)

func TestParseBasicDocument(t *testing.T) {
	tr, err := ParseString(`<author><name/><paper><title/><year/></paper></author>`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Label != "author" {
		t.Fatalf("root = %q, want author", tr.Root.Label)
	}
	if got := tr.Compact(); got != "author(name,paper(title,year))" {
		t.Fatalf("Compact = %q", got)
	}
	if tr.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tr.Size())
	}
}

func TestParseDiscardsTextAttributesComments(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!-- a comment -->
<a id="1">hello <b x="y">world</b><!-- inner --> tail</a>`
	tr, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Compact(); got != "a(b)" {
		t.Fatalf("Compact = %q, want a(b)", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"text only", "just text"},
		{"unclosed", "<a><b></b>"},
		{"mismatched", "<a></b>"},
		{"two roots", "<a/><b/>"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.doc); err == nil {
			t.Errorf("%s: Parse accepted %q", c.name, c.doc)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := MustCompact("bib(author*3(name,paper*2(title,year,keyword*2),book(title)))")
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Compact() != orig.Compact() {
		t.Fatalf("round trip changed structure:\n  orig: %s\n  back: %s", orig.Compact(), back.Compact())
	}
}

func TestWriteFileParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	orig := MustCompact("r(a(b),a(b,c))")
	if err := orig.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Compact() != orig.Compact() {
		t.Fatalf("file round trip changed structure: %s vs %s", orig.Compact(), back.Compact())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("ParseFile accepted missing file")
	}
}

func TestXMLSizeMatchesWrite(t *testing.T) {
	tr := MustCompact("r(a*5(b,c),d)")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got := tr.XMLSize(); got != int64(buf.Len()) {
		t.Fatalf("XMLSize = %d, want %d", got, buf.Len())
	}
}

func TestWriteIndentsNesting(t *testing.T) {
	tr := MustCompact("r(a(b))")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	want := "<r>\n <a>\n  <b/>\n </a>\n</r>\n"
	if buf.String() != want {
		t.Fatalf("Write output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestCompactErrors(t *testing.T) {
	cases := []string{
		"",
		"r(",
		"r(a",
		"r(a,,b)",
		"r)",
		"r*2",
		"r(a*0)",
		"r(a*x)",
		"r(a)b",
		"(a)",
	}
	for _, c := range cases {
		if _, err := BuildCompact(c); err == nil {
			t.Errorf("BuildCompact accepted %q", c)
		}
	}
}

func TestCompactReplication(t *testing.T) {
	tr := MustCompact("r(a*3(b*2))")
	if tr.Size() != 1+3+6 {
		t.Fatalf("Size = %d, want 10", tr.Size())
	}
	if len(tr.Root.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(tr.Root.Children))
	}
	for _, a := range tr.Root.Children {
		if a.Label != "a" || len(a.Children) != 2 {
			t.Fatalf("bad replica: %s with %d children", a.Label, len(a.Children))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCompactWhitespaceTolerated(t *testing.T) {
	a := MustCompact(" r ( a ( b , c ) , d ) ")
	b := MustCompact("r(a(b,c),d)")
	if a.Compact() != b.Compact() {
		t.Fatalf("whitespace changed parse: %s vs %s", a.Compact(), b.Compact())
	}
}

func TestMustCompactPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompact did not panic")
		}
	}()
	MustCompact("r(")
}

func TestParseDeeplyNested(t *testing.T) {
	var b strings.Builder
	const depth = 2000
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	tr, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != depth {
		t.Fatalf("Size = %d, want %d", tr.Size(), depth)
	}
	if tr.Height() != depth-1 {
		t.Fatalf("Height = %d, want %d", tr.Height(), depth-1)
	}
}

// TestParseErrorPathFinishesSpan pins the spanfinish fix: Parse's phase
// span must be closed on every malformed-document return, not just on
// success, so the xmltree.parse timer's invocation count tracks attempts —
// a leaked span would silently drop error-path durations and make the
// phase timer disagree with the parse error rate.
func TestParseErrorPathFinishesSpan(t *testing.T) {
	count := func() int64 {
		return obs.Default().Snapshot().Timers["xmltree.parse"].Count
	}
	for _, malformed := range []string{"", "<a><b></a>", "<a></a><b></b>", "</a>", "<a>"} {
		before := count()
		if _, err := ParseString(malformed); err == nil {
			t.Fatalf("ParseString(%q) did not fail", malformed)
		}
		if got := count(); got != before+1 {
			t.Fatalf("ParseString(%q): parse timer count %d -> %d, want +1 (span leaked on the error path)",
				malformed, before, got)
		}
	}
}
