package xmltree

import "testing"

// FuzzParse checks the XML parser never panics and that accepted documents
// survive a write/parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b/><b></b></a>",
		"<a>text<b x='1'/><!--c--></a>",
		"<a><b><c/></b></a>",
		"<a",
		"<a></b>",
		"<a/><b/>",
		"<?xml version=\"1.0\"?><a/>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ParseString(src)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted document fails Validate: %v", err)
		}
		var out string
		{
			var b cappedBuilder
			if err := tr.Write(&b); err != nil {
				t.Fatalf("Write: %v", err)
			}
			out = string(b.data)
		}
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("round trip parse failed: %v\noutput: %q", err, out)
		}
		if back.Size() != tr.Size() {
			t.Fatalf("round trip changed size: %d -> %d", tr.Size(), back.Size())
		}
	})
}

type cappedBuilder struct{ data []byte }

func (b *cappedBuilder) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// FuzzCompact checks the compact-notation parser never panics and accepted
// inputs re-render to a fixed point.
func FuzzCompact(f *testing.F) {
	for _, s := range []string{
		"r",
		"r(a,b)",
		"r(a*3(b*2),c)",
		"r(",
		"r)(",
		"r(a*0)",
		"r(a*9999999)",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 200 {
			return // replication bombs are uninteresting
		}
		tr, err := BuildCompact(src)
		if err != nil {
			return
		}
		if tr.Size() > 1<<20 {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted tree fails Validate: %v", err)
		}
		c := tr.Compact()
		back, err := BuildCompact(c)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", c, err)
		}
		if back.Compact() != c {
			t.Fatalf("not a fixed point: %q -> %q", c, back.Compact())
		}
	})
}
