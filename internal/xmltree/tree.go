// Package xmltree defines the node-labeled tree model for XML documents
// used throughout the TreeSketch framework.
//
// Following the paper's data model (Section 2), an XML document is a large
// node-labeled tree T(V, E): each node corresponds to an element with a
// unique object identifier (OID) and a label drawn from an alphabet of
// string literals; edges capture element containment. Values (text content)
// are outside the scope of the structural summarization problem and are
// dropped at parse time.
package xmltree

import (
	"fmt"
	"sort"
)

// Node is a single element node in an XML document tree.
type Node struct {
	// OID is the unique object identifier of the element. BuildTree and the
	// parser assign OIDs in document (pre-)order starting at 0 for the root.
	OID int
	// Label is the element tag. Labels are interned per Tree, so comparing
	// labels of nodes from the same tree is cheap.
	Label string
	// Children holds the ordered sub-elements.
	Children []*Node
}

// Tree is a parsed XML document: a rooted, ordered, node-labeled tree.
type Tree struct {
	Root *Node

	size    int
	nextOID int
	intern  map[string]string
}

// NewTree returns an empty tree ready to have nodes added via NewNode.
func NewTree() *Tree {
	return &Tree{intern: make(map[string]string)}
}

// Intern returns the canonical instance of label for this tree, interning it
// on first use. All construction paths route labels through Intern so that
// label comparisons between nodes of the same tree hit the pointer-equality
// fast path.
func (t *Tree) Intern(label string) string {
	if t.intern == nil {
		t.intern = make(map[string]string)
	}
	if s, ok := t.intern[label]; ok {
		return s
	}
	t.intern[label] = label
	return label
}

// NewNode allocates a node with the next OID and the given (interned) label.
// The caller is responsible for linking it into the tree. OIDs are never
// reused, even after deletions, so they stay unique for the lifetime of
// the tree.
func (t *Tree) NewNode(label string) *Node {
	n := &Node{OID: t.nextOID, Label: t.Intern(label)}
	t.nextOID++
	t.size++
	return n
}

// Size reports the number of element nodes in the tree.
func (t *Tree) Size() int { return t.size }

// OIDSpace reports an exclusive upper bound on element OIDs: arrays
// indexed by OID must have at least this length. For documents never
// edited it equals Size; after deletions it can be larger.
func (t *Tree) OIDSpace() int { return t.nextOID }

// SetSize overrides the recorded node count. It is used by builders that
// assemble trees from externally allocated nodes and by deletion-style
// editors; OID allocation is unaffected.
func (t *Tree) SetSize(n int) { t.size = n }

// Labels returns the sorted set of distinct labels appearing in the tree.
func (t *Tree) Labels() []string {
	seen := make(map[string]bool)
	t.PreOrder(func(n *Node) { seen[n.Label] = true })
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// PreOrder visits every node in document order (parents before children).
func (t *Tree) PreOrder(visit func(*Node)) {
	if t.Root == nil {
		return
	}
	stack := []*Node{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(n)
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, n.Children[i])
		}
	}
}

// PostOrder visits every node with all children visited before their parent.
// BuildStable relies on this ordering to have child equivalence classes
// available when an element is processed.
func (t *Tree) PostOrder(visit func(*Node)) {
	if t.Root == nil {
		return
	}
	// Iterative post-order: stack of (node, childIndex) frames.
	type frame struct {
		n *Node
		i int
	}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.n.Children) {
			child := f.n.Children[f.i]
			f.i++
			stack = append(stack, frame{child, 0})
			continue
		}
		visit(f.n)
		stack = stack[:len(stack)-1]
	}
}

// Height returns the number of edges on the longest root-to-leaf path.
// The empty tree has height -1 and a single root has height 0.
func (t *Tree) Height() int {
	if t.Root == nil {
		return -1
	}
	var rec func(n *Node) int
	rec = func(n *Node) int {
		h := -1
		for _, c := range n.Children {
			if ch := rec(c); ch > h {
				h = ch
			}
		}
		return h + 1
	}
	return rec(t.Root)
}

// CountNodes walks the tree and counts nodes; it is the slow, authoritative
// version of Size used by tests and by builders that bypass NewNode.
func (t *Tree) CountNodes() int {
	n := 0
	t.PreOrder(func(*Node) { n++ })
	return n
}

// SubtreeSize returns the number of nodes in the subtree rooted at n
// (including n itself).
func SubtreeSize(n *Node) int {
	if n == nil {
		return 0
	}
	size := 1
	for _, c := range n.Children {
		size += SubtreeSize(c)
	}
	return size
}

// Depth returns the "depth" of a node as defined by the paper's CreatePool
// heuristic (Section 4.2): 0 for a leaf, otherwise 1 + the maximum depth of
// its children. Intuitively, the longest path from the node down to a leaf.
func Depth(n *Node) int {
	if len(n.Children) == 0 {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := Depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Validate checks structural invariants: a single root, unique OIDs, no
// cycles (every node reachable exactly once), and an accurate size counter.
// It is used by tests and by tools loading untrusted documents.
func (t *Tree) Validate() error {
	if t.Root == nil {
		if t.size != 0 {
			return fmt.Errorf("xmltree: nil root but size %d", t.size)
		}
		return nil
	}
	seen := make(map[int]bool)
	count := 0
	var err error
	t.PreOrder(func(n *Node) {
		if err != nil {
			return
		}
		if seen[n.OID] {
			err = fmt.Errorf("xmltree: duplicate OID %d (label %q)", n.OID, n.Label)
			return
		}
		seen[n.OID] = true
		count++
	})
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("xmltree: size counter %d but %d reachable nodes", t.size, count)
	}
	return nil
}
