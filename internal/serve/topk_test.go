package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

// getEstimate fetches path and decodes a successful estimate body.
func getEstimate(t *testing.T, ts *httptest.Server, path string) EstimateResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
	}
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("GET %s: body not JSON: %v", path, err)
	}
	return er
}

// TestEstimateTopKStreaming drives ?k= end to end: a finite budget yields a
// budget-respecting partial answer with truncation accounting, and an
// unbounded streaming request (?k=-1) reproduces the batch selectivity
// bit for bit.
func TestEstimateTopKStreaming(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := "/estimate?dataset=imdb&q=" + urlQueryEscape(q)

	batch := getEstimate(t, ts, base)
	if batch.TopK != nil || batch.Partial {
		t.Fatalf("batch response carries top-k fields: %+v", batch)
	}

	bounded := getEstimate(t, ts, base+"&k=4")
	if bounded.TopK == nil {
		t.Fatal("?k=4 response has no topk block")
	}
	if bounded.TopK.K != 4 || bounded.TopK.Expanded > 4 || bounded.TopK.Expanded < 1 {
		t.Fatalf("?k=4 coverage = %+v", bounded.TopK)
	}
	if bounded.Partial != !bounded.TopK.Exhausted {
		t.Fatalf("Partial=%v but Exhausted=%v", bounded.Partial, bounded.TopK.Exhausted)
	}
	if bounded.TopK.EmittedMass < 0 || (bounded.TopK.ErrorBoundFinite && bounded.TopK.ErrorBound < 0) {
		t.Fatalf("negative masses: %+v", bounded.TopK)
	}
	if !bounded.TopK.EmittedMassFinite {
		t.Fatalf("finite emitted mass not flagged: %+v", bounded.TopK)
	}

	streamed := getEstimate(t, ts, base+"&k=-1")
	if streamed.TopK == nil || !streamed.TopK.Exhausted || streamed.Partial {
		t.Fatalf("unbounded stream = %+v", streamed.TopK)
	}
	if streamed.TopK.ErrorBound != 0 || !streamed.TopK.ErrorBoundFinite {
		t.Fatalf("exhausted stream ErrorBound = %+v", streamed.TopK)
	}
	if math.Float64bits(streamed.Selectivity) != math.Float64bits(batch.Selectivity) {
		t.Fatalf("streamed selectivity %v != batch %v", streamed.Selectivity, batch.Selectivity)
	}
	if streamed.ResultNodes != batch.ResultNodes {
		t.Fatalf("streamed nodes %d != batch %d", streamed.ResultNodes, batch.ResultNodes)
	}

	snap := s.Registry().Snapshot()
	if n := snap.Counters["eval.topk.queries"]; n != 2 {
		t.Errorf("eval.topk.queries = %d, want 2", n)
	}
	if snap.Counters["eval.topk.expanded"] < 1 {
		t.Error("eval.topk.expanded not incremented")
	}

	// Malformed budgets are client errors with a stable code.
	for _, bad := range []string{"&k=0", "&k=abc"} {
		resp, err := ts.Client().Get(ts.URL + base + bad)
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != 400 || er.Code != "bad_k" {
			t.Errorf("%s: status %d code %q, want 400 bad_k", bad, resp.StatusCode, er.Code)
		}
	}
}

// TestEstimateMaxResultBytes checks the server-wide byte budget converts to
// a default node budget when the request names none.
func TestEstimateMaxResultBytes(t *testing.T) {
	s, q := newTestServer(t, Options{MaxResultBytes: 3 * resultNodeBytes})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	er := getEstimate(t, ts, "/estimate?dataset=imdb&q="+urlQueryEscape(q))
	if er.TopK == nil || er.TopK.K != 3 {
		t.Fatalf("default byte budget response = %+v", er.TopK)
	}
	// An explicit ?k= below the cap picks the smaller budget.
	er = getEstimate(t, ts, "/estimate?dataset=imdb&k=1&q="+urlQueryEscape(q))
	if er.TopK == nil || er.TopK.K != 1 {
		t.Fatalf("?k=1 override response = %+v", er.TopK)
	}
	// The operator cap is a hard ceiling: a ?k= above it, or a negative
	// (unbounded-streaming) k, is clamped back to the derived node budget —
	// an untrusted client cannot lift the daemon's per-query memory cap.
	er = getEstimate(t, ts, "/estimate?dataset=imdb&k=100&q="+urlQueryEscape(q))
	if er.TopK == nil || er.TopK.K != 3 {
		t.Fatalf("?k=100 over cap response = %+v, want clamp to 3", er.TopK)
	}
	er = getEstimate(t, ts, "/estimate?dataset=imdb&k=-1&q="+urlQueryEscape(q))
	if er.TopK == nil || er.TopK.K != 3 {
		t.Fatalf("?k=-1 under cap response = %+v, want clamp to 3", er.TopK)
	}
}

// TestEstimateDeadlinePartialAnswer pins the tentpole's deadline semantics:
// with streaming enabled, an exhausted deadline returns the partial answer
// plus its bound as a 200 marked Partial — while the batch path keeps its
// historical 503.
func TestEstimateDeadlinePartialAnswer(t *testing.T) {
	s, q := newTestServer(t, Options{Deadline: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := "/estimate?dataset=imdb&q=" + urlQueryEscape(q)

	// Batch mode: deadline hit stays a 503.
	resp, err := ts.Client().Get(ts.URL + base)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("batch deadline status = %d, want 503", resp.StatusCode)
	}

	// Streaming mode: the root is always expanded, so the client gets the
	// partial answer it was promised.
	er := getEstimate(t, ts, base+"&k=8")
	if er.TopK == nil || !er.TopK.DeadlineHit || !er.Partial {
		t.Fatalf("deadline-partial response = %+v (topk %+v)", er, er.TopK)
	}
	if er.TopK.Expanded < 1 {
		t.Fatalf("deadline-partial expanded %d nodes, want >= 1", er.TopK.Expanded)
	}

	snap := s.Registry().Snapshot()
	if n := snap.Counters["serve.http.deadline_partial"]; n != 1 {
		t.Errorf("serve.http.deadline_partial = %d, want 1", n)
	}
	if n := snap.Counters["serve.http.deadline_exceeded"]; n != 1 {
		t.Errorf("serve.http.deadline_exceeded = %d, want 1", n)
	}
}

// exactTestServer publishes one small dataset with both a synopsis and a
// document index, plus a synopsis-only dataset.
func exactTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	doc := xmltree.MustCompact("r(a(b(c),b,d),a(b),a,e(d,d))")
	sk := sketch.FromStable(stable.Build(doc))
	s := New(Options{Metrics: obs.NewRegistry()})
	s.AddSketch("tiny", sk)
	s.AddIndex("tiny", eval.NewIndex(doc))
	s.AddSketch("synonly", sk)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestExactModeHTTP drives ?mode=exact end to end: true counts, budgeted
// best-first materialization, and the structured 404 for synopsis-only
// datasets.
func TestExactModeHTTP(t *testing.T) {
	_, ts := exactTestServer(t)
	q := urlQueryEscape("//a{//b?}")

	er := getEstimate(t, ts, "/estimate?dataset=tiny&mode=exact&q="+q)
	if er.Mode != "exact" {
		t.Fatalf("mode = %q", er.Mode)
	}
	// Three a-elements with 2, 1, 0 b-descendants contribute 2 + 1 + 1(NULL)
	// binding tuples; the count is exact, so pin it.
	if er.Selectivity != 4 || er.Empty {
		t.Fatalf("exact count = %v empty=%v, want 4/false", er.Selectivity, er.Empty)
	}

	full := getEstimate(t, ts, "/estimate?dataset=tiny&mode=exact&k=-1&q="+q)
	if full.TopK == nil || !full.TopK.Exhausted || full.Partial {
		t.Fatalf("unbounded exact materialization = %+v", full.TopK)
	}
	part := getEstimate(t, ts, "/estimate?dataset=tiny&mode=exact&k=2&q="+q)
	if part.TopK == nil || part.ResultNodes != 2 || !part.Partial {
		t.Fatalf("budgeted exact materialization = %+v (topk %+v)", part, part.TopK)
	}
	if part.TopK.EmittedMass+part.TopK.ErrorBound != full.TopK.EmittedMass {
		t.Fatalf("exact accounting: %v emitted + %v bound != %v total",
			part.TopK.EmittedMass, part.TopK.ErrorBound, full.TopK.EmittedMass)
	}

	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=synonly&mode=exact&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	var ee errorResponse
	json.NewDecoder(resp.Body).Decode(&ee)
	resp.Body.Close()
	if resp.StatusCode != 404 || ee.Code != "no_exact_index" {
		t.Fatalf("synopsis-only exact: status %d code %q, want 404 no_exact_index", resp.StatusCode, ee.Code)
	}

	resp, err = ts.Client().Get(ts.URL + "/estimate?dataset=tiny&mode=bogus&q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&ee)
	resp.Body.Close()
	if resp.StatusCode != 400 || ee.Code != "bad_mode" {
		t.Fatalf("bad mode: status %d code %q, want 400 bad_mode", resp.StatusCode, ee.Code)
	}
}

// TestTupleOverflowHTTP is the satellite regression: a query whose exact
// tuple count overflows float64 must come back as a structured 422 with its
// own code — not an unstructured 500, and not a JSON-encoder failure from
// +Inf — with the trace shed-tagged for overload forensics.
func TestTupleOverflowHTTP(t *testing.T) {
	// A root child x with 10 children of each of 350 distinct labels; the
	// tuple count of a query with all 350 branches required is 10^350 > the
	// float64 max of ~1.8e308.
	doc := xmltree.NewTree()
	root := doc.NewNode("r")
	doc.Root = root
	x := doc.NewNode("x")
	root.Children = append(root.Children, x)
	var branches []string
	for i := 0; i < 350; i++ {
		label := fmt.Sprintf("l%03d", i)
		branches = append(branches, "/"+label)
		for j := 0; j < 10; j++ {
			c := doc.NewNode(label)
			x.Children = append(x.Children, c)
		}
	}
	qsrc := "/x{" + strings.Join(branches, ",") + "}"

	s := New(Options{Metrics: obs.NewRegistry()})
	s.AddSketch("big", sketch.FromStable(stable.Build(doc)))
	s.AddIndex("big", eval.NewIndex(doc))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=big&mode=exact&q=" + urlQueryEscape(qsrc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("overflow status = %d, want 422", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("overflow body not JSON: %v", err)
	}
	if er.Code != "tuple_overflow" || er.TraceID == "" || er.Error == "" {
		t.Fatalf("overflow body = %+v", er)
	}

	snap := s.Registry().Snapshot()
	if n := snap.Counters["serve.http.tuple_overflow"]; n != 1 {
		t.Errorf("serve.http.tuple_overflow = %d, want 1", n)
	}
	tagged := false
	for _, trace := range s.FlightRecorder().Slowest() {
		if trace.Labels["shed"] == "tuple_overflow" {
			tagged = true
		}
	}
	if !tagged {
		t.Error("overflow trace not shed-tagged in the flight recorder")
	}

	// The same query through the approximate path must still answer 200:
	// approximate counts saturate instead of erroring.
	resp2, err := ts.Client().Get(ts.URL + "/estimate?dataset=big&q=" + urlQueryEscape(qsrc))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("approx path on overflowing query: status %d, want 200", resp2.StatusCode)
	}
}

// TestExactModeDeadline503 pins exact-mode cancellation through the serve
// path: a request deadline that expires during exact evaluation must come
// back as the standard deadline 503 — with the evaluator actually stopped —
// instead of occupying an admission slot until the full document walk
// completes.
func TestExactModeDeadline503(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c),b,d),a(b),a,e(d,d))")
	s := New(Options{Deadline: time.Nanosecond, Metrics: obs.NewRegistry()})
	s.AddSketch("tiny", sketch.FromStable(stable.Build(doc)))
	s.AddIndex("tiny", eval.NewIndex(doc))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=tiny&mode=exact&q=" + urlQueryEscape("//a{//b?}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("exact-mode deadline status = %d, want 503", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("deadline body not JSON: %v", err)
	}
	if er.Code != "deadline_exceeded" {
		t.Fatalf("deadline code = %q, want deadline_exceeded", er.Code)
	}
	if n := s.Registry().Snapshot().Counters["serve.http.deadline_exceeded"]; n != 1 {
		t.Errorf("serve.http.deadline_exceeded = %d, want 1", n)
	}
	// The evaluator-side cancellation counter lands in the process-wide
	// default registry (ExactContext has no registry injection point).
	if n := obs.Default().Snapshot().Counters["eval.exact.canceled"]; n < 1 {
		t.Errorf("eval.exact.canceled = %d, want >= 1", n)
	}
}

// TestFinishEstimateExhaustedNotPartial pins the deadline-settlement
// matrix: an Exhausted streamed answer whose deadline lapsed only after the
// work finished is a complete answer (200, Partial false, eval's
// DeadlineHit report preserved); a non-exhausted stream with >= 1 node goes
// out 200 Partial with DeadlineHit forced; nothing emitted stays a 503.
func TestFinishEstimateExhaustedNotPartial(t *testing.T) {
	s := New(Options{Metrics: obs.NewRegistry()})
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	settle := func(resp EstimateResponse) (*httptest.ResponseRecorder, EstimateResponse) {
		t.Helper()
		w := httptest.NewRecorder()
		s.finishEstimate(w, expired, obs.NewTrace("q"), resp)
		var out EstimateResponse
		if w.Code == 200 {
			if err := json.NewDecoder(w.Body).Decode(&out); err != nil {
				t.Fatalf("200 body not JSON: %v", err)
			}
		}
		return w, out
	}

	w, out := settle(EstimateResponse{TopK: &TopKResponse{Expanded: 5, Exhausted: true}})
	if w.Code != 200 || out.Partial || out.TopK.DeadlineHit {
		t.Fatalf("exhausted past deadline: status %d partial=%v deadline_hit=%v, want 200/false/false",
			w.Code, out.Partial, out.TopK.DeadlineHit)
	}

	w, out = settle(EstimateResponse{TopK: &TopKResponse{Expanded: 1}})
	if w.Code != 200 || !out.Partial || !out.TopK.DeadlineHit {
		t.Fatalf("truncated past deadline: status %d partial=%v deadline_hit=%v, want 200/true/true",
			w.Code, out.Partial, out.TopK.DeadlineHit)
	}

	w, _ = settle(EstimateResponse{})
	if w.Code != 503 {
		t.Fatalf("batch past deadline: status %d, want 503", w.Code)
	}

	snap := s.Registry().Snapshot()
	if n := snap.Counters["serve.http.deadline_partial"]; n != 1 {
		t.Errorf("serve.http.deadline_partial = %d, want 1", n)
	}
	if n := snap.Counters["serve.http.deadline_exceeded"]; n != 1 {
		t.Errorf("serve.http.deadline_exceeded = %d, want 1", n)
	}
}

// TestTopKResponseNonFinite pins the wire conversion's non-finite routing:
// encoding/json cannot carry Inf or NaN, so each mass travels with its own
// finiteness flag instead of silently collapsing to an ambiguous zero.
func TestTopKResponseNonFinite(t *testing.T) {
	r := topKResponse(&eval.TopKInfo{EmittedMass: math.Inf(1), ErrorBound: math.NaN()})
	if r.EmittedMass != 0 || r.EmittedMassFinite {
		t.Fatalf("infinite emitted mass = %v finite=%v, want 0/false", r.EmittedMass, r.EmittedMassFinite)
	}
	if r.ErrorBound != 0 || r.ErrorBoundFinite {
		t.Fatalf("NaN error bound = %v finite=%v, want 0/false", r.ErrorBound, r.ErrorBoundFinite)
	}
	r = topKResponse(&eval.TopKInfo{EmittedMass: 3, ErrorBound: 0.5})
	if r.EmittedMass != 3 || !r.EmittedMassFinite || r.ErrorBound != 0.5 || !r.ErrorBoundFinite {
		t.Fatalf("finite masses = %+v, want both values with flags set", r)
	}
}

// TestApproxModeDeadline503 pins batch-approx cancellation through the
// serve path (the approximate twin of TestExactModeDeadline503): a request
// deadline that expires during batch evaluation comes back as the standard
// deadline 503 with the enumeration actually stopped — no partial synopsis
// escapes as an answer — and the evaluator-side counter records the abort
// in the server's own registry.
func TestApproxModeDeadline503(t *testing.T) {
	doc := xmltree.MustCompact("r(a(b(c),b,d),a(b),a,e(d,d))")
	s := New(Options{Deadline: time.Nanosecond, Metrics: obs.NewRegistry()})
	s.AddSketch("tiny", sketch.FromStable(stable.Build(doc)))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=tiny&q=" + urlQueryEscape("//a{//b?}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("approx-mode deadline status = %d, want 503", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("deadline body not JSON: %v", err)
	}
	if er.Code != codeDeadlineExceeded {
		t.Fatalf("deadline code = %q, want %q", er.Code, codeDeadlineExceeded)
	}
	snap := s.Registry().Snapshot()
	if n := snap.Counters["serve.http.deadline_exceeded"]; n != 1 {
		t.Errorf("serve.http.deadline_exceeded = %d, want 1", n)
	}
	if n := snap.Counters["eval.approx.canceled"]; n < 1 {
		t.Errorf("eval.approx.canceled = %d, want >= 1", n)
	}
}
