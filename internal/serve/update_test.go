package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"treesketch/internal/obs"
	"treesketch/internal/tier"
	"treesketch/internal/xmltree"
)

// newLiveServer builds a Server publishing one live dataset backed by a tier
// stack over a small compact-syntax document.
func newLiveServer(t *testing.T, doc string, topts tier.Options) (*Server, *tier.Stack) {
	t.Helper()
	reg := obs.NewRegistry()
	if topts.BudgetBytes == 0 {
		topts.BudgetBytes = 4096
	}
	topts.Metrics = reg
	stk, err := tier.New(xmltree.MustCompact(doc), topts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Metrics: reg})
	s.AddStack("live", stk)
	return s, stk
}

// postUpdate sends req to ts and decodes the response body into out (a
// *UpdateResponse or *errorResponse), returning the status code.
func postUpdate(t *testing.T, ts *httptest.Server, req UpdateRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func estimate(t *testing.T, ts *httptest.Server, q string) EstimateResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/estimate?q=" + urlQueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate %s: status %d", q, resp.StatusCode)
	}
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return er
}

func TestUpdateEndToEnd(t *testing.T) {
	s, stk := newLiveServer(t, "r(a(b),a(b))", tier.Options{Synchronous: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if got := estimate(t, ts, "//a/b"); got.Selectivity != 2 {
		t.Fatalf("baseline //a/b selectivity %v, want 2", got.Selectivity)
	}

	// Insert a(b) under the root: //a/b goes 2 -> 3, served from base+delta.
	var ur UpdateResponse
	if code := postUpdate(t, ts, UpdateRequest{Op: "insert", ParentOID: stk.Doc().Root.OID, Subtree: "a(b)"}, &ur); code != 200 {
		t.Fatalf("insert status %d (%+v)", code, ur)
	}
	if ur.Dataset != "live" || ur.Op != "insert" || ur.OID == 0 {
		t.Errorf("insert response %+v", ur)
	}
	if ur.Elems != 7 || ur.DeltaElems != 2 || ur.Tiers == 0 {
		t.Errorf("insert response shape %+v, want elems 7, delta 2, tiers > 0", ur)
	}
	if ur.TraceID == "" || ur.Seconds <= 0 {
		t.Errorf("insert trace/seconds %+v", ur)
	}

	er := estimate(t, ts, "//a/b")
	if er.Selectivity != 3 {
		t.Errorf("post-insert //a/b selectivity %v, want 3", er.Selectivity)
	}
	if er.Tier == nil {
		t.Fatal("live estimate has no tier block")
	}
	if er.Tier.BaseSelectivity != 2 || er.Tier.Delta != 1 || er.Tier.DeltaElems != 2 {
		t.Errorf("tier block %+v, want base 2 delta 1 delta_elems 2", er.Tier)
	}

	// Delete the inserted subtree: back to the baseline answer.
	if code := postUpdate(t, ts, UpdateRequest{Op: "delete", OID: ur.OID}, &ur); code != 200 {
		t.Fatalf("delete status %d", code)
	}
	if ur.Op != "delete" || ur.Elems != 5 || ur.DeltaElems != 0 {
		t.Errorf("delete response %+v, want elems 5, delta 0", ur)
	}
	if got := estimate(t, ts, "//a/b").Selectivity; got != 2 {
		t.Errorf("post-delete //a/b selectivity %v, want 2", got)
	}

	snap := s.Registry().Snapshot()
	if snap.Counters["serve.http.updates"] != 2 {
		t.Errorf("updates counter = %d, want 2", snap.Counters["serve.http.updates"])
	}
	if snap.Counters["tier.absorbs"] != 2 {
		t.Errorf("tier.absorbs = %d, want 2", snap.Counters["tier.absorbs"])
	}
}

func TestUpdateXMLSubtree(t *testing.T) {
	s, stk := newLiveServer(t, "r(a(b))", tier.Options{Synchronous: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ur UpdateResponse
	req := UpdateRequest{Op: "insert", ParentOID: stk.Doc().Root.OID, Subtree: "<a><b/><b/></a>"}
	if code := postUpdate(t, ts, req, &ur); code != 200 {
		t.Fatalf("XML insert status %d", code)
	}
	if got := estimate(t, ts, "//a/b").Selectivity; got != 3 {
		t.Errorf("//a/b selectivity %v after XML insert, want 3", got)
	}
}

func TestUpdateErrors(t *testing.T) {
	s, stk := newLiveServer(t, "r(a(b))", tier.Options{Synchronous: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Non-POST methods are refused outright.
	resp, err := ts.Client().Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: status %d, want 405", resp.StatusCode)
	}

	check := func(req UpdateRequest, wantStatus int, wantCode string) {
		t.Helper()
		var er errorResponse
		if code := postUpdate(t, ts, req, &er); code != wantStatus || er.Code != wantCode {
			t.Errorf("%+v: status %d code %q, want %d %q", req, code, er.Code, wantStatus, wantCode)
		}
	}
	check(UpdateRequest{Op: "rename"}, 400, "bad_op")
	check(UpdateRequest{Op: "insert", Dataset: "nope", ParentOID: 0, Subtree: "a"}, 404, "unknown_dataset")
	check(UpdateRequest{Op: "insert", ParentOID: 1 << 30, Subtree: "a"}, 422, "update_rejected")
	check(UpdateRequest{Op: "insert", ParentOID: stk.Doc().Root.OID, Subtree: "a(("}, 400, "parse_error")
	check(UpdateRequest{Op: "delete", OID: stk.Doc().Root.OID}, 422, "update_rejected")
	check(UpdateRequest{Op: "delete", OID: 1 << 30}, 422, "update_rejected")

	// Malformed JSON body.
	resp, err = ts.Client().Post(ts.URL+"/update", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// None of the rejected updates touched the document.
	if stk.Doc().Size() != 3 {
		t.Errorf("document size %d after rejected updates, want 3", stk.Doc().Size())
	}
}

func TestUpdateDuringCompactionDoesNotBlockEstimates(t *testing.T) {
	// Thresholds low enough that the insert below trips a background
	// compaction, with the build phase stretched so the follow-up estimate
	// provably overlaps it.
	const delay = 250 * time.Millisecond
	s, stk := newLiveServer(t, "r(a(b),a(b),c(d))", tier.Options{
		MinCompactElems: 1,
		CompactFraction: 0.01,
		CompactDelay:    delay,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ur UpdateResponse
	req := UpdateRequest{Op: "insert", ParentOID: stk.Doc().Root.OID, Subtree: "a(b)"}
	if code := postUpdate(t, ts, req, &ur); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	if !ur.Compacting {
		t.Fatal("insert did not report the in-flight compaction it triggered")
	}

	begin := time.Now()
	er := estimate(t, ts, "//a/b")
	took := time.Since(begin)
	if er.Tier == nil || !er.Tier.Compacting {
		t.Fatalf("estimate during compaction: tier block %+v, want compacting", er.Tier)
	}
	if er.Selectivity != 3 {
		t.Errorf("estimate during compaction: selectivity %v, want 3", er.Selectivity)
	}
	if took > delay/2 {
		t.Errorf("estimate took %v during a %v compaction; the query path blocked", took, delay)
	}
	stk.Compact()
	if got := estimate(t, ts, "//a/b"); got.Selectivity != 3 || got.Tier.Tiers != 0 {
		t.Errorf("post-compaction estimate %+v, want selectivity 3 over 0 tiers", got)
	}
}

func TestExactModeOnLiveDataset(t *testing.T) {
	s, _ := newLiveServer(t, "r(a(b))", tier.Options{Synchronous: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/estimate?mode=exact&q=" + urlQueryEscape("//a"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 || er.Code != "no_exact_index" {
		t.Errorf("exact on live dataset: status %d code %q, want 404 no_exact_index", resp.StatusCode, er.Code)
	}
}

func TestUpdateShedWhileDraining(t *testing.T) {
	s, stk := newLiveServer(t, "r(a(b))", tier.Options{Synchronous: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.StartDrain()
	var er errorResponse
	req := UpdateRequest{Op: "insert", ParentOID: stk.Doc().Root.OID, Subtree: "a"}
	if code := postUpdate(t, ts, req, &er); code != 503 || er.Code != "draining" {
		t.Errorf("draining update: status %d code %q, want 503 draining", code, er.Code)
	}
	if stk.Doc().Size() != 3 {
		t.Errorf("draining update mutated the document (size %d)", stk.Doc().Size())
	}
}
