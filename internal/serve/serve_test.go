package serve

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/tsbuild"
)

// newTestServer builds a Server over a small synthesized dataset and returns
// it with a workload query known to be parseable.
func newTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	r := exp.NewRunner(exp.Config{TXScale: 2000, WorkloadSize: 8, Seed: 1})
	sk, _ := tsbuild.Build(r.Stable("IMDB-TX"), tsbuild.Options{BudgetBytes: 10 << 10})
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	s := New(opts)
	s.AddSketch("imdb", sk)
	return s, r.Workload("IMDB-TX", 1, false)[0].Q.String()
}

func TestEstimateEndToEnd(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=imdb&q=" + urlQueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceID == "" || len(er.TraceID) != 16 {
		t.Errorf("trace_id = %q", er.TraceID)
	}
	if er.Dataset != "imdb" || er.Query == "" {
		t.Errorf("response = %+v", er)
	}
	if er.Selectivity < 0 || er.Seconds <= 0 {
		t.Errorf("selectivity/seconds = %v/%v", er.Selectivity, er.Seconds)
	}

	// The request must now be visible in the serving metrics and, having
	// been the slowest (and only) request, in the flight recorder.
	snap := s.Registry().Snapshot()
	if snap.Counters["serve.http.requests"] != 1 {
		t.Errorf("request counter = %d", snap.Counters["serve.http.requests"])
	}
	if w := snap.Windows["serve.request.latency_seconds"]; w.Count != 1 {
		t.Errorf("windowed latency count = %d", w.Count)
	}
	slow := s.FlightRecorder().Slowest()
	if len(slow) != 1 {
		t.Fatalf("flight recorder retained %d traces", len(slow))
	}
	spanNames := make(map[string]bool)
	for _, sp := range slow[0].Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"serve.parse", "eval.plan", "eval.memo", "eval.emit", "serve.emit"} {
		if !spanNames[want] {
			t.Errorf("slow trace missing span %q (have %v)", want, slow[0].Spans)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/estimate"); got != 400 {
		t.Errorf("missing q: status %d, want 400", got)
	}
	if got := status("/estimate?q=" + urlQueryEscape("//[broken")); got != 400 {
		t.Errorf("parse error: status %d, want 400", got)
	}
	if got := status("/estimate?dataset=nope&q=" + urlQueryEscape(q)); got != 404 {
		t.Errorf("unknown dataset: status %d, want 404", got)
	}
	// With exactly one dataset published, the dataset parameter is optional.
	if got := status("/estimate?q=" + urlQueryEscape(q)); got != 200 {
		t.Errorf("implicit dataset: status %d, want 200", got)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve.http.errors"] != 3 {
		t.Errorf("error counter = %d, want 3", snap.Counters["serve.http.errors"])
	}
	if snap.Counters["serve.http.not_found"] != 1 {
		t.Errorf("not_found counter = %d, want 1", snap.Counters["serve.http.not_found"])
	}
}

func TestEstimateDeadline(t *testing.T) {
	s, q := newTestServer(t, Options{Deadline: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=imdb&q=" + urlQueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503 under a 1ns deadline", resp.StatusCode)
	}
	if n := s.Registry().Snapshot().Counters["serve.http.deadline_exceeded"]; n != 1 {
		t.Errorf("deadline counter = %d, want 1", n)
	}
}

func TestMetricsExposition(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=imdb&q=" + urlQueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Errorf("content type = %q", ct)
	}
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := b.String()
	for _, want := range []string{
		"serve_http_requests_total 5",
		"serve_request_latency_seconds_p50 ",
		"serve_request_latency_seconds_p99 ",
		"serve_request_latency_seconds_per_sec ",
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDatasetsAndCatalogSwap(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	if got := s.Datasets(); len(got) != 1 || got[0] != "imdb" {
		t.Fatalf("Datasets() = %v", got)
	}
	r := exp.NewRunner(exp.Config{TXScale: 2000, Seed: 1})
	sk, _ := tsbuild.Build(r.Stable("XMark-TX"), tsbuild.Options{BudgetBytes: 10 << 10})
	s.AddSketch("xmark", sk)
	if got := s.Datasets(); len(got) != 2 || got[0] != "imdb" || got[1] != "xmark" {
		t.Fatalf("after add, Datasets() = %v", got)
	}
	if g := s.Registry().Snapshot().Gauges["serve.catalog.sketches"]; g != 2 {
		t.Errorf("catalog gauge = %d, want 2", g)
	}
	// Two datasets published: an empty dataset parameter is now ambiguous.
	if _, _, ok := s.lookup(""); ok {
		t.Error("empty dataset name should not resolve with two sketches")
	}
}

// urlQueryEscape is a tiny local alias to keep test call sites short.
func urlQueryEscape(s string) string { return url.QueryEscape(s) }
