// Package serve is the query-serving layer of the TreeSketch system: a
// long-running HTTP server that loads one or more synopses and answers
// selectivity-estimate requests from many concurrent clients, with the
// serving-grade telemetry the batch CLIs never needed — per-request span
// traces, a sliding-window latency histogram (so p50/p99 describe the last
// minute under load, not the process lifetime), a slow-query flight
// recorder, and an OpenMetrics /metrics endpoint.
//
// The read path is lock-light: synopses are published into an immutable map
// swapped atomically (the same read-mostly pattern eval's rank arrays use),
// so request goroutines never contend on the catalog. Each request gets a
// deadline-bounded context carrying an obs.Trace; the eval layer records its
// plan/memo/emit phases onto it.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
	"treesketch/internal/tier"
)

// DefaultDeadline bounds request handling when Options.Deadline is unset.
const DefaultDeadline = 2 * time.Second

// Options configures a Server.
type Options struct {
	// Deadline is the per-request processing budget; requests past it get
	// 503 with a deadline_exceeded error. 0 means DefaultDeadline;
	// negative disables the deadline.
	Deadline time.Duration
	// MaxEmbeddings caps embedding enumeration per query (eval.Options).
	// 0 keeps eval's default.
	MaxEmbeddings int
	// MaxResultBytes is the default per-request answer budget in bytes,
	// converted to a result-synopsis node budget at about 64 bytes per node
	// and served through the streaming top-k path (eval.Options.Limit). An
	// explicit ?k= on the request may pick a smaller budget but is clamped
	// to this cap (including negative, i.e. unbounded, k). 0 means
	// unbudgeted batch emission. This is the serving daemon's per-query
	// memory cap: a query whose full answer would be arbitrarily large
	// emits its highest-contribution nodes and a bound on what was cut.
	MaxResultBytes int
	// MaxInflight caps the requests evaluating concurrently; arrivals
	// beyond it wait in a short queue, and beyond that are shed with 503
	// before any parse or eval work. 0 means 2x GOMAXPROCS; negative
	// disables admission control entirely.
	MaxInflight int
	// MaxQueue bounds the admission wait queue. 0 means 4x the effective
	// MaxInflight; negative means no waiting room, so saturation sheds
	// immediately.
	MaxQueue int
	// InjectDelay adds an artificial service delay to every admitted
	// request, after admission and before parsing — a latency-injection
	// hook for load and overload testing. The open-loop bench leg uses it
	// to emulate production-scale service times on small harness datasets,
	// so admission-queue dynamics (slot holding, queue waits, shedding)
	// are exercised even where the real evaluation is microseconds. 0
	// (the production value) disables it. Shed requests never pay the
	// delay: rejection stays fast.
	InjectDelay time.Duration
	// SlowTraces is the flight recorder's capacity: how many of the
	// slowest request traces /debug/obs/slow retains. 0 means
	// obs.DefaultFlightRecorderSize.
	SlowTraces int
	// Metrics receives the server's serve.* metrics and the eval.approx.*
	// metrics of the queries it runs. Nil selects obs.Default.
	Metrics *obs.Registry
}

// Server answers selectivity estimates over HTTP. Construct with New, add
// synopses with AddSketch, and mount Handler on an http.Server.
type Server struct {
	reg            *obs.Registry
	rec            *obs.FlightRecorder
	deadline       time.Duration
	maxEmb         int
	maxResultBytes int
	injectDelay    time.Duration

	// catalog is an immutable map[string]*sketch.Sketch swapped wholesale
	// on update, so lookups are a single atomic load.
	catalog atomic.Pointer[map[string]*sketch.Sketch]
	// ixCatalog maps dataset names to their document indexes for
	// ?mode=exact; same immutable-swap discipline. Synopsis-only datasets
	// have no entry.
	ixCatalog atomic.Pointer[map[string]*eval.Index]
	// stacks maps live datasets to their tier stacks (POST /update +
	// base+delta estimates); same immutable-swap discipline. Static
	// datasets have no entry.
	stacks atomic.Pointer[map[string]*tier.Stack]
	mu     sync.Mutex // serializes catalog writers

	gate     *admissionGate // nil: admission control disabled
	draining atomic.Bool

	mRequests        *obs.Counter
	mUpdates         *obs.Counter
	mErrors          *obs.Counter
	mDeadline        *obs.Counter
	mDeadlinePartial *obs.Counter
	mOverflow        *obs.Counter
	mNotFound        *obs.Counter
	mRetained        *obs.Counter
	mDrainDone       *obs.Counter
	mDrainShed       *obs.Counter
	gInflight        *obs.Gauge
	gSketches        *obs.Gauge
	wLatency         *obs.WindowedHistogram
}

// New builds a Server.
func New(opts Options) *Server {
	reg := obs.Or(opts.Metrics)
	deadline := opts.Deadline
	if deadline == 0 {
		deadline = DefaultDeadline
	}
	s := &Server{
		reg:            reg,
		rec:            obs.NewFlightRecorder(opts.SlowTraces),
		deadline:       deadline,
		maxEmb:         opts.MaxEmbeddings,
		maxResultBytes: opts.MaxResultBytes,
		injectDelay:    opts.InjectDelay,

		gate: newAdmissionGate(reg, opts.MaxInflight, opts.MaxQueue),

		mRequests:        reg.Counter("serve.http.requests"),
		mUpdates:         reg.Counter("serve.http.updates"),
		mErrors:          reg.Counter("serve.http.errors"),
		mDeadline:        reg.Counter("serve.http.deadline_exceeded"),
		mDeadlinePartial: reg.Counter("serve.http.deadline_partial"),
		mOverflow:        reg.Counter("serve.http.tuple_overflow"),
		mNotFound:        reg.Counter("serve.http.not_found"),
		mRetained:        reg.Counter("trace.slow.retained"),
		mDrainDone:       reg.Counter("serve.drain.completed"),
		mDrainShed:       reg.Counter("serve.drain.shed"),
		gInflight:        reg.Gauge("serve.http.inflight"),
		gSketches:        reg.Gauge("serve.catalog.sketches"),
		wLatency:         reg.Windowed("serve.request.latency_seconds"),
	}
	empty := map[string]*sketch.Sketch{}
	s.catalog.Store(&empty)
	emptyIx := map[string]*eval.Index{}
	s.ixCatalog.Store(&emptyIx)
	emptyStacks := map[string]*tier.Stack{}
	s.stacks.Store(&emptyStacks)
	return s
}

// FlightRecorder exposes the server's slow-trace recorder (for tests and
// embedding binaries).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.rec }

// Registry returns the registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AddSketch publishes a synopsis under the given dataset name, replacing any
// previous synopsis of that name. The swap is atomic: in-flight requests
// keep the catalog they already loaded.
func (s *Server) AddSketch(name string, sk *sketch.Sketch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.catalog.Load()
	next := make(map[string]*sketch.Sketch, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = sk
	s.catalog.Store(&next)
	s.gSketches.Set(int64(len(next)))
}

// AddIndex publishes the document index backing a dataset, enabling
// ?mode=exact for it. Separate from AddSketch because synopsis-only
// deployments (loading .syn files) have no document to index; exact
// requests against such datasets get a structured 404.
func (s *Server) AddIndex(name string, ix *eval.Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.ixCatalog.Load()
	next := make(map[string]*eval.Index, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = ix
	s.ixCatalog.Store(&next)
}

// AddStack publishes a live (updatable) dataset: estimates answer over the
// stack's base+delta view and POST /update mutates it. The name is also
// entered in the sketch catalog (with the stack's current base) so dataset
// listing and name resolution treat live and static datasets uniformly —
// but the estimate path always reads the stack's current view, never that
// snapshot.
func (s *Server) AddStack(name string, st *tier.Stack) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.stacks.Load()
	next := make(map[string]*tier.Stack, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = st
	s.stacks.Store(&next)

	oldCat := *s.catalog.Load()
	nextCat := make(map[string]*sketch.Sketch, len(oldCat)+1)
	for k, v := range oldCat {
		nextCat[k] = v
	}
	nextCat[name] = st.View().Base
	s.catalog.Store(&nextCat)
	s.gSketches.Set(int64(len(nextCat)))
}

// stackFor resolves a live dataset; an empty name resolves iff exactly one
// stack is published.
func (s *Server) stackFor(name string) (*tier.Stack, string, bool) {
	stacks := *s.stacks.Load()
	if name == "" {
		if len(stacks) == 1 {
			for n, st := range stacks {
				return st, n, true
			}
		}
		return nil, "", false
	}
	st, ok := stacks[name]
	return st, name, ok
}

// SetCatalog atomically replaces the whole catalog. In-flight requests keep
// the catalog they already resolved against; only requests that look up a
// dataset after the swap see the new set.
func (s *Server) SetCatalog(cat map[string]*sketch.Sketch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*sketch.Sketch, len(cat))
	for k, v := range cat {
		next[k] = v
	}
	s.catalog.Store(&next)
	s.gSketches.Set(int64(len(next)))
}

// StartDrain puts the server into draining mode: new requests are shed with
// 503 code "draining" while requests already admitted run to completion.
// Call before http.Server.Shutdown so the connection drain and the work
// drain agree.
func (s *Server) StartDrain() { s.draining.Store(true) }

// DrainStats reports how the drain went: requests that completed normally
// after the drain started vs. requests shed because they arrived during it.
func (s *Server) DrainStats() (completed, shed int64) {
	return s.mDrainDone.Value(), s.mDrainShed.Value()
}

// Datasets returns the published dataset names, sorted.
func (s *Server) Datasets() []string {
	cat := *s.catalog.Load()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a dataset name; an empty name resolves iff exactly one
// synopsis is published.
func (s *Server) lookup(name string) (*sketch.Sketch, string, bool) {
	cat := *s.catalog.Load()
	if name == "" {
		if len(cat) == 1 {
			for n, sk := range cat {
				return sk, n, true
			}
		}
		return nil, "", false
	}
	sk, ok := cat[name]
	return sk, name, ok
}

// Handler returns the server's full HTTP surface: the estimate API plus the
// obs debug mux (/metrics, /debug/obs, /debug/obs/slow, /debug/pprof/*).
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux(s.reg, s.rec)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// EstimateResponse is the JSON body of a successful /estimate call.
type EstimateResponse struct {
	TraceID     string  `json:"trace_id"`
	Dataset     string  `json:"dataset"`
	Mode        string  `json:"mode"`
	Query       string  `json:"query"`
	Selectivity float64 `json:"selectivity"`
	ResultNodes int     `json:"result_nodes"`
	Empty       bool    `json:"empty"`
	Truncated   bool    `json:"truncated"`
	// Partial marks a streamed answer that did not cover the full result
	// graph (node budget or deadline); TopK then carries the coverage and
	// the truncation bound.
	Partial bool          `json:"partial,omitempty"`
	TopK    *TopKResponse `json:"topk,omitempty"`
	// Tier reports how a live (updatable) dataset's answer was merged from
	// its base sketch and delta tiers; nil for static datasets.
	Tier    *TierResponse `json:"tier,omitempty"`
	Seconds float64       `json:"seconds"`
}

// TierResponse is the base+delta breakdown of an estimate served from a
// tier stack.
type TierResponse struct {
	// Epoch counts compactions applied to the base; Tiers is the number of
	// delta tiers consulted; DeltaElems is the signed element delta they
	// carry relative to the base.
	Epoch      uint64 `json:"epoch"`
	Tiers      int    `json:"tiers"`
	DeltaElems int    `json:"delta_elems"`
	// BaseSelectivity is the base sketch's estimate alone; Delta is the
	// signed correction the tiers contributed.
	BaseSelectivity float64 `json:"base_selectivity"`
	Delta           float64 `json:"delta"`
	// Compacting reports an in-flight background compaction at answer
	// time (the answer did not wait on it).
	Compacting bool `json:"compacting,omitempty"`
}

// TopKResponse is the streaming-emission report on a budgeted answer
// (?k= or -max-result-bytes): how much was emitted and an upper bound on
// the answer mass that was truncated.
type TopKResponse struct {
	K          int `json:"k"`
	Expanded   int `json:"expanded"`
	Discovered int `json:"discovered"`
	// EmittedMass is meaningful only when EmittedMassFinite: a divergent
	// prefix mass leaves the field at 0, and without the flag a client
	// could not tell "nothing emitted" from "emitted mass overflowed" —
	// exactly the cases the non-finite guard exists for.
	EmittedMass       float64 `json:"emitted_mass"`
	EmittedMassFinite bool    `json:"emitted_mass_finite"`
	// ErrorBound is meaningful only when ErrorBoundFinite; a recursive
	// synopsis can make the truncated chain mass genuinely unbounded, and
	// JSON has no encoding for +Inf.
	ErrorBound       float64 `json:"error_bound"`
	ErrorBoundFinite bool    `json:"error_bound_finite"`
	Exhausted        bool    `json:"exhausted"`
	// WorkCapped reports that the evaluator's shared enumeration pool ran
	// dry: the truncated enumerations' missing mass is included in
	// ErrorBound, but the prefix stopped short of the node budget.
	WorkCapped  bool `json:"work_capped,omitempty"`
	DeadlineHit bool `json:"deadline_hit,omitempty"`
}

// topKResponse converts eval's info into the wire form, routing non-finite
// masses away from the JSON encoder (encoding/json rejects +Inf outright —
// the whole response would turn into a 200 with an empty body).
func topKResponse(info *eval.TopKInfo) *TopKResponse {
	r := &TopKResponse{
		K:           info.K,
		Expanded:    info.Expanded,
		Discovered:  info.Discovered,
		Exhausted:   info.Exhausted,
		WorkCapped:  info.WorkCapped,
		DeadlineHit: info.DeadlineHit,
	}
	if jsonFinite(info.EmittedMass) {
		r.EmittedMass = info.EmittedMass
		r.EmittedMassFinite = true
	}
	if jsonFinite(info.ErrorBound) {
		r.ErrorBound = info.ErrorBound
		r.ErrorBoundFinite = true
	}
	return r
}

// jsonFinite reports whether encoding/json can carry f at all.
func jsonFinite(f float64) bool {
	return !math.IsInf(f, 0) && !math.IsNaN(f)
}

// errorResponse is the JSON body of a failed call. Code is a stable
// machine-readable discriminator (missing_query, parse_error,
// unknown_dataset, deadline_exceeded, shed_queue_full, shed_deadline,
// draining); Error is the human-readable detail. 503 bodies additionally
// carry RetryAfterSeconds, mirroring the Retry-After header, so clients
// behind header-stripping proxies still see the backoff hint.
type errorResponse struct {
	Error             string `json:"error"`
	Code              string `json:"code,omitempty"`
	TraceID           string `json:"trace_id,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// retryAfterSeconds picks the backoff hint for a refused request, by shed
// code. The old flat one-deadline hint was wrong in two modes: a draining
// server will never take the retry — the client should fail over to
// another replica immediately, not politely wait out a deadline that has
// nothing to do with recovery — and a gate with no waiting room
// (-max-queue negative) sheds on slot saturation, where slots turn over in
// about one service time, far sooner than one deadline. Both advertise the
// minimum hint; queue-full sheds with a real queue keep the deadline-based
// hint (the queue needs roughly that long to drain). Never zero or
// negative: a "Retry-After: 0" invites an immediate retry storm.
func (s *Server) retryAfterSeconds(code string) int {
	switch code {
	case codeDraining:
		return 1
	case shedQueueFull:
		if s.gate != nil && s.gate.queueCap() == 0 {
			return 1
		}
	}
	if sec := int(s.deadline / time.Second); sec > 1 {
		return sec
	}
	return 1
}

// resultLimit derives the per-request result-node budget. An explicit ?k=
// selects the budget (negative: unbounded streaming — full answer plus TopK
// accounting); when the operator configured MaxResultBytes, the derived
// node budget is both the default and a hard ceiling on ?k=, so an
// untrusted client can shrink its answer but never lift the daemon's
// per-query memory cap (a negative k is clamped to the cap too). Without
// MaxResultBytes, no ?k= means 0 (batch emission).
func (s *Server) resultLimit(r *http.Request) (int, error) {
	capK := 0
	if s.maxResultBytes > 0 {
		capK = s.maxResultBytes / resultNodeBytes
		if capK < 1 {
			capK = 1
		}
	}
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil || k == 0 {
			return 0, fmt.Errorf("k must be a non-zero integer (negative: unbounded streaming), got %q", ks)
		}
		if capK > 0 && (k < 0 || k > capK) {
			k = capK
		}
		return k, nil
	}
	return capK, nil
}

// resultNodeBytes is the approximate wire-and-heap cost of one
// result-synopsis node (ID, variable, label, source, count, a couple of
// edges), used to convert a byte budget into a node budget.
const resultNodeBytes = 64

// handleEstimate serves GET /estimate?q=<twig query>[&dataset=<name>]
// [&k=<node budget>][&mode=approx|exact]: it admits the request through the
// admission gate, parses the query, evaluates it over the named synopsis
// (or, for mode=exact, the dataset's document index) under the request
// deadline, and reports the selectivity estimate. With a node budget — an
// explicit ?k= or the server-wide MaxResultBytes default — evaluation
// streams the result best-first and the response reports coverage plus a
// bound on the truncated remainder. The request runs under an obs.Trace
// whose admission/parse/plan/memo/emit phase breakdown lands in the flight
// recorder when the request ranks among the slowest.
//
// Overload is handled before work is done: a draining server, a full
// admission queue, or a queue wait that exhausts the deadline budget all
// produce an immediate 503 with a Retry-After hint, without touching the
// parser or the synopsis. The latency window therefore measures answered
// requests only — sheds are visible in the serve.admission.* counters and
// the queue-wait window instead.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	s.gInflight.Add(1)
	defer s.gInflight.Add(-1)
	span := s.reg.StartSpan("serve.request.handle")
	defer span.End()

	ctx := r.Context()
	if s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}

	qsrc := r.URL.Query().Get("q")
	if qsrc == "" {
		s.fail(w, http.StatusBadRequest, codeMissingQuery, "", "missing q parameter")
		return
	}
	tr := obs.NewTrace(qsrc)
	ctx = obs.ContextWithTrace(ctx, tr)

	if s.draining.Load() {
		s.mDrainShed.Inc()
		s.shed(w, tr, codeDraining, "server is draining")
		return
	}
	if s.gate != nil {
		release, reason := s.gate.acquire(ctx, tr)
		if release == nil {
			s.shed(w, tr, reason, "server overloaded: "+reason)
			return
		}
		defer release()
	}
	if s.injectDelay > 0 {
		ds := tr.StartSpan("serve.inject_delay")
		time.Sleep(s.injectDelay)
		ds.End()
	}

	limit, err := s.resultLimit(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, codeBadK, tr.IDString(), err.Error())
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "approx"
	}
	if mode != "approx" && mode != "exact" {
		s.fail(w, http.StatusBadRequest, codeBadMode, tr.IDString(),
			fmt.Sprintf("mode must be approx or exact, got %q", mode))
		return
	}

	ps := tr.StartSpan("serve.parse")
	q, err := query.Parse(qsrc)
	ps.End()
	if err != nil {
		s.fail(w, http.StatusBadRequest, codeParseError, tr.IDString(), fmt.Sprintf("parse: %v", err))
		return
	}

	sk, dsName, ok := s.lookup(r.URL.Query().Get("dataset"))
	if !ok {
		s.mNotFound.Inc()
		s.fail(w, http.StatusNotFound, codeUnknownDataset, tr.IDString(),
			fmt.Sprintf("unknown dataset %q (have %v)", r.URL.Query().Get("dataset"), s.Datasets()))
		return
	}
	tr.SetLabel("dataset", dsName)

	if mode == "exact" {
		s.serveExact(w, ctx, tr, q, dsName, limit)
		return
	}

	var (
		res      *eval.Result
		sel      float64
		tierResp *TierResponse
	)
	if st, _, live := s.stackFor(dsName); live {
		// Live dataset: answer over the stack's current immutable view
		// (base+delta), which never blocks on an in-flight compaction.
		var info tier.Info
		res, sel, info = st.EstimateContext(ctx, q, eval.Options{
			MaxEmbeddings: s.maxEmb,
			Limit:         limit,
			Metrics:       s.reg,
		})
		tierResp = &TierResponse{
			Epoch:           info.Epoch,
			Tiers:           info.Tiers,
			DeltaElems:      info.DeltaElems,
			BaseSelectivity: jsonSafe(info.BaseSelectivity),
			Delta:           jsonSafe(info.Delta),
			Compacting:      st.Compacting(),
		}
	} else {
		res = eval.ApproxContext(ctx, sk, q, eval.Options{
			MaxEmbeddings: s.maxEmb,
			Limit:         limit,
			Metrics:       s.reg,
		})
		if !res.Canceled {
			sel = res.Selectivity()
		}
	}
	if res.Canceled {
		// The evaluation aborted at the request deadline with no usable
		// synopsis; finishEstimate sees the expired ctx and no TopK block
		// and answers the standard deadline 503 (the serveExact route for
		// ExactResult.Canceled, applied to the approximate path).
		s.finishEstimate(w, ctx, tr, EstimateResponse{
			TraceID: tr.IDString(),
			Dataset: dsName,
			Mode:    mode,
			Query:   q.String(),
		})
		return
	}

	es := tr.StartSpan("serve.emit")
	resp := EstimateResponse{
		TraceID:     tr.IDString(),
		Dataset:     dsName,
		Mode:        mode,
		Query:       q.String(),
		Selectivity: jsonSafe(sel),
		ResultNodes: len(res.Nodes),
		Empty:       res.Empty && sel == 0,
		Truncated:   res.Truncated,
		Tier:        tierResp,
	}
	if res.TopK != nil {
		resp.TopK = topKResponse(res.TopK)
		resp.Partial = !res.TopK.Exhausted
	}
	es.End()
	s.finishEstimate(w, ctx, tr, resp)
}

// serveExact answers ?mode=exact from the dataset's document index: the
// true binding-tuple count, plus — under a node budget — a best-first
// materialization report with the exact remaining-mass bound.
func (s *Server) serveExact(w http.ResponseWriter, ctx context.Context, tr *obs.Trace, q *query.Query, dsName string, limit int) {
	ix, ok := (*s.ixCatalog.Load())[dsName]
	if !ok {
		s.mNotFound.Inc()
		s.fail(w, http.StatusNotFound, codeNoExactIndex, tr.IDString(),
			fmt.Sprintf("dataset %q has no document index (built from a synopsis only); exact mode needs -doc", dsName))
		return
	}
	res := eval.ExactOpts(ctx, ix, q, eval.ExactOptions{Limit: limit})
	if res.Canceled {
		// The evaluator stopped at the request deadline with no usable
		// count; finishEstimate sees the expired ctx and no TopK block and
		// answers the standard deadline 503.
		s.finishEstimate(w, ctx, tr, EstimateResponse{
			TraceID: tr.IDString(),
			Dataset: dsName,
			Mode:    "exact",
			Query:   q.String(),
		})
		return
	}
	if res.Overflow {
		// An overflowed count is a property of the query, not a server
		// fault: answer 422 with a stable code instead of letting the +Inf
		// escape as an unstructured 500 (or worse, through the JSON encoder,
		// which rejects it and truncates the body). The trace is shed-tagged
		// so overload forensics see these alongside admission sheds.
		s.mOverflow.Inc()
		tr.SetLabel("shed", codeTupleOverflow)
		tr.Finish()
		if s.rec.Record(tr) {
			s.mRetained.Inc()
		}
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:   res.Err().Error(),
			Code:    codeTupleOverflow,
			TraceID: tr.IDString(),
		})
		return
	}
	resp := EstimateResponse{
		TraceID:     tr.IDString(),
		Dataset:     dsName,
		Mode:        "exact",
		Query:       q.String(),
		Selectivity: res.Tuples,
		Empty:       res.Empty,
	}
	if limit != 0 {
		es := tr.StartSpan("serve.emit")
		nt, info, err := res.TopKNestingTree(limit)
		es.End()
		if err != nil {
			if ctx.Err() != nil {
				// Materialization was cut off by the request deadline with
				// nothing soundly emittable; answer the deadline 503 rather
				// than misreporting a client error.
				s.finishEstimate(w, ctx, tr, resp)
				return
			}
			s.fail(w, http.StatusUnprocessableEntity, codeResultTooLarge, tr.IDString(), err.Error())
			return
		}
		resp.ResultNodes = nt.Size()
		resp.TopK = topKResponse(info)
		resp.Partial = !info.Exhausted
	}
	s.finishEstimate(w, ctx, tr, resp)
}

// finishEstimate settles a computed answer against the deadline. The
// deadline is enforced at phase boundaries rather than inside the
// enumeration loops: a request that finished over budget is answered with
// 503 so closed-loop clients see the overload, even though its work is
// already done — unless the request ran in streaming mode and emitted at
// least one node, in which case the partial answer plus its truncation
// bound is worth more to the client than a retry hint, and goes out as a
// 200 marked Partial. A streamed answer whose expansion Exhausted the
// result graph is complete — the deadline merely lapsed after the work
// finished — so it goes out as a normal 200 with Partial false and eval's
// own DeadlineHit report intact.
func (s *Server) finishEstimate(w http.ResponseWriter, ctx context.Context, tr *obs.Trace, resp EstimateResponse) {
	total := tr.Finish()
	resp.Seconds = total.Seconds()
	if s.rec.Record(tr) {
		s.mRetained.Inc()
	}
	if ctx.Err() != nil && (resp.TopK == nil || !resp.TopK.Exhausted) {
		if resp.TopK != nil && resp.TopK.Expanded >= 1 {
			resp.Partial = true
			resp.TopK.DeadlineHit = true
			s.mDeadlinePartial.Inc()
		} else {
			s.mDeadline.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(codeDeadlineExceeded)))
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error:             fmt.Sprintf("deadline exceeded after %s", total.Round(time.Microsecond)),
				Code:              codeDeadlineExceeded,
				TraceID:           tr.IDString(),
				RetryAfterSeconds: s.retryAfterSeconds(codeDeadlineExceeded),
			})
			return
		}
	}
	s.wLatency.Observe(total.Seconds())
	if s.draining.Load() {
		s.mDrainDone.Inc()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// jsonSafe clamps non-finite floats (which encoding/json rejects, killing
// the whole response body) to the largest representable value with the
// right sign.
func jsonSafe(f float64) float64 {
	if math.IsInf(f, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(f, -1) {
		return -math.MaxFloat64
	}
	return f
}

// shed answers a request the server refuses to work on: 503 with a
// machine-readable code, a Retry-After hint, and the trace ID. The trace is
// finished (with a "shed" label) and offered to the flight recorder so an
// operator inspecting /debug/obs/slow during an overload sees what was
// turned away, not just what ran.
func (s *Server) shed(w http.ResponseWriter, tr *obs.Trace, code, msg string) {
	tr.SetLabel("shed", code)
	tr.Finish()
	if s.rec.Record(tr) {
		s.mRetained.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(code)))
	s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:             msg,
		Code:              code,
		TraceID:           tr.IDString(),
		RetryAfterSeconds: s.retryAfterSeconds(code),
	})
}

// handleDatasets serves GET /datasets: the published dataset names.
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Datasets())
}

// fail answers a client error (4xx). Sheds and deadline 503s do not go
// through here: they are server-side refusals, not client mistakes, and
// serve.http.errors counts only the latter.
func (s *Server) fail(w http.ResponseWriter, status int, code, traceID, msg string) {
	s.mErrors.Inc()
	s.writeJSON(w, status, errorResponse{Error: msg, Code: code, TraceID: traceID})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
