// Package serve is the query-serving layer of the TreeSketch system: a
// long-running HTTP server that loads one or more synopses and answers
// selectivity-estimate requests from many concurrent clients, with the
// serving-grade telemetry the batch CLIs never needed — per-request span
// traces, a sliding-window latency histogram (so p50/p99 describe the last
// minute under load, not the process lifetime), a slow-query flight
// recorder, and an OpenMetrics /metrics endpoint.
//
// The read path is lock-light: synopses are published into an immutable map
// swapped atomically (the same read-mostly pattern eval's rank arrays use),
// so request goroutines never contend on the catalog. Each request gets a
// deadline-bounded context carrying an obs.Trace; the eval layer records its
// plan/memo/emit phases onto it.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"treesketch/internal/eval"
	"treesketch/internal/obs"
	"treesketch/internal/query"
	"treesketch/internal/sketch"
)

// DefaultDeadline bounds request handling when Options.Deadline is unset.
const DefaultDeadline = 2 * time.Second

// Options configures a Server.
type Options struct {
	// Deadline is the per-request processing budget; requests past it get
	// 503 with a deadline_exceeded error. 0 means DefaultDeadline;
	// negative disables the deadline.
	Deadline time.Duration
	// MaxEmbeddings caps embedding enumeration per query (eval.Options).
	// 0 keeps eval's default.
	MaxEmbeddings int
	// MaxInflight caps the requests evaluating concurrently; arrivals
	// beyond it wait in a short queue, and beyond that are shed with 503
	// before any parse or eval work. 0 means 2x GOMAXPROCS; negative
	// disables admission control entirely.
	MaxInflight int
	// MaxQueue bounds the admission wait queue. 0 means 4x the effective
	// MaxInflight; negative means no waiting room, so saturation sheds
	// immediately.
	MaxQueue int
	// InjectDelay adds an artificial service delay to every admitted
	// request, after admission and before parsing — a latency-injection
	// hook for load and overload testing. The open-loop bench leg uses it
	// to emulate production-scale service times on small harness datasets,
	// so admission-queue dynamics (slot holding, queue waits, shedding)
	// are exercised even where the real evaluation is microseconds. 0
	// (the production value) disables it. Shed requests never pay the
	// delay: rejection stays fast.
	InjectDelay time.Duration
	// SlowTraces is the flight recorder's capacity: how many of the
	// slowest request traces /debug/obs/slow retains. 0 means
	// obs.DefaultFlightRecorderSize.
	SlowTraces int
	// Metrics receives the server's serve.* metrics and the eval.approx.*
	// metrics of the queries it runs. Nil selects obs.Default.
	Metrics *obs.Registry
}

// Server answers selectivity estimates over HTTP. Construct with New, add
// synopses with AddSketch, and mount Handler on an http.Server.
type Server struct {
	reg         *obs.Registry
	rec         *obs.FlightRecorder
	deadline    time.Duration
	maxEmb      int
	injectDelay time.Duration

	// catalog is an immutable map[string]*sketch.Sketch swapped wholesale
	// on update, so lookups are a single atomic load.
	catalog atomic.Pointer[map[string]*sketch.Sketch]
	mu      sync.Mutex // serializes catalog writers

	gate     *admissionGate // nil: admission control disabled
	draining atomic.Bool

	mRequests  *obs.Counter
	mErrors    *obs.Counter
	mDeadline  *obs.Counter
	mNotFound  *obs.Counter
	mRetained  *obs.Counter
	mDrainDone *obs.Counter
	mDrainShed *obs.Counter
	gInflight  *obs.Gauge
	gSketches  *obs.Gauge
	wLatency   *obs.WindowedHistogram
}

// New builds a Server.
func New(opts Options) *Server {
	reg := obs.Or(opts.Metrics)
	deadline := opts.Deadline
	if deadline == 0 {
		deadline = DefaultDeadline
	}
	s := &Server{
		reg:         reg,
		rec:         obs.NewFlightRecorder(opts.SlowTraces),
		deadline:    deadline,
		maxEmb:      opts.MaxEmbeddings,
		injectDelay: opts.InjectDelay,

		gate: newAdmissionGate(reg, opts.MaxInflight, opts.MaxQueue),

		mRequests:  reg.Counter("serve.http.requests"),
		mErrors:    reg.Counter("serve.http.errors"),
		mDeadline:  reg.Counter("serve.http.deadline_exceeded"),
		mNotFound:  reg.Counter("serve.http.not_found"),
		mRetained:  reg.Counter("trace.slow.retained"),
		mDrainDone: reg.Counter("serve.drain.completed"),
		mDrainShed: reg.Counter("serve.drain.shed"),
		gInflight:  reg.Gauge("serve.http.inflight"),
		gSketches:  reg.Gauge("serve.catalog.sketches"),
		wLatency:   reg.Windowed("serve.request.latency_seconds"),
	}
	empty := map[string]*sketch.Sketch{}
	s.catalog.Store(&empty)
	return s
}

// FlightRecorder exposes the server's slow-trace recorder (for tests and
// embedding binaries).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.rec }

// Registry returns the registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AddSketch publishes a synopsis under the given dataset name, replacing any
// previous synopsis of that name. The swap is atomic: in-flight requests
// keep the catalog they already loaded.
func (s *Server) AddSketch(name string, sk *sketch.Sketch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.catalog.Load()
	next := make(map[string]*sketch.Sketch, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = sk
	s.catalog.Store(&next)
	s.gSketches.Set(int64(len(next)))
}

// SetCatalog atomically replaces the whole catalog. In-flight requests keep
// the catalog they already resolved against; only requests that look up a
// dataset after the swap see the new set.
func (s *Server) SetCatalog(cat map[string]*sketch.Sketch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*sketch.Sketch, len(cat))
	for k, v := range cat {
		next[k] = v
	}
	s.catalog.Store(&next)
	s.gSketches.Set(int64(len(next)))
}

// StartDrain puts the server into draining mode: new requests are shed with
// 503 code "draining" while requests already admitted run to completion.
// Call before http.Server.Shutdown so the connection drain and the work
// drain agree.
func (s *Server) StartDrain() { s.draining.Store(true) }

// DrainStats reports how the drain went: requests that completed normally
// after the drain started vs. requests shed because they arrived during it.
func (s *Server) DrainStats() (completed, shed int64) {
	return s.mDrainDone.Value(), s.mDrainShed.Value()
}

// Datasets returns the published dataset names, sorted.
func (s *Server) Datasets() []string {
	cat := *s.catalog.Load()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a dataset name; an empty name resolves iff exactly one
// synopsis is published.
func (s *Server) lookup(name string) (*sketch.Sketch, string, bool) {
	cat := *s.catalog.Load()
	if name == "" {
		if len(cat) == 1 {
			for n, sk := range cat {
				return sk, n, true
			}
		}
		return nil, "", false
	}
	sk, ok := cat[name]
	return sk, name, ok
}

// Handler returns the server's full HTTP surface: the estimate API plus the
// obs debug mux (/metrics, /debug/obs, /debug/obs/slow, /debug/pprof/*).
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux(s.reg, s.rec)
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// EstimateResponse is the JSON body of a successful /estimate call.
type EstimateResponse struct {
	TraceID     string  `json:"trace_id"`
	Dataset     string  `json:"dataset"`
	Query       string  `json:"query"`
	Selectivity float64 `json:"selectivity"`
	ResultNodes int     `json:"result_nodes"`
	Empty       bool    `json:"empty"`
	Truncated   bool    `json:"truncated"`
	Seconds     float64 `json:"seconds"`
}

// errorResponse is the JSON body of a failed call. Code is a stable
// machine-readable discriminator (missing_query, parse_error,
// unknown_dataset, deadline_exceeded, shed_queue_full, shed_deadline,
// draining); Error is the human-readable detail. 503 bodies additionally
// carry RetryAfterSeconds, mirroring the Retry-After header, so clients
// behind header-stripping proxies still see the backoff hint.
type errorResponse struct {
	Error             string `json:"error"`
	Code              string `json:"code,omitempty"`
	TraceID           string `json:"trace_id,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// retryAfterSeconds is the backoff hint on every 503: one deadline's worth
// of waiting (at least a second) gives the queue time to drain.
func (s *Server) retryAfterSeconds() int {
	if sec := int(s.deadline / time.Second); sec > 1 {
		return sec
	}
	return 1
}

// handleEstimate serves GET /estimate?q=<twig query>[&dataset=<name>]: it
// admits the request through the admission gate, parses the query, evaluates
// it approximately over the named synopsis under the request deadline, and
// reports the selectivity estimate. The request runs under an obs.Trace
// whose admission/parse/plan/memo/emit phase breakdown lands in the flight
// recorder when the request ranks among the slowest.
//
// Overload is handled before work is done: a draining server, a full
// admission queue, or a queue wait that exhausts the deadline budget all
// produce an immediate 503 with a Retry-After hint, without touching the
// parser or the synopsis. The latency window therefore measures answered
// requests only — sheds are visible in the serve.admission.* counters and
// the queue-wait window instead.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	s.gInflight.Add(1)
	defer s.gInflight.Add(-1)
	span := s.reg.StartSpan("serve.request.handle")
	defer span.End()

	ctx := r.Context()
	if s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}

	qsrc := r.URL.Query().Get("q")
	if qsrc == "" {
		s.fail(w, http.StatusBadRequest, "missing_query", "", "missing q parameter")
		return
	}
	tr := obs.NewTrace(qsrc)
	ctx = obs.ContextWithTrace(ctx, tr)

	if s.draining.Load() {
		s.mDrainShed.Inc()
		s.shed(w, tr, "draining", "server is draining")
		return
	}
	if s.gate != nil {
		release, reason := s.gate.acquire(ctx, tr)
		if release == nil {
			s.shed(w, tr, reason, "server overloaded: "+reason)
			return
		}
		defer release()
	}
	if s.injectDelay > 0 {
		ds := tr.StartSpan("serve.inject_delay")
		time.Sleep(s.injectDelay)
		ds.End()
	}

	ps := tr.StartSpan("serve.parse")
	q, err := query.Parse(qsrc)
	ps.End()
	if err != nil {
		s.fail(w, http.StatusBadRequest, "parse_error", tr.IDString(), fmt.Sprintf("parse: %v", err))
		return
	}

	sk, dsName, ok := s.lookup(r.URL.Query().Get("dataset"))
	if !ok {
		s.mNotFound.Inc()
		s.fail(w, http.StatusNotFound, "unknown_dataset", tr.IDString(),
			fmt.Sprintf("unknown dataset %q (have %v)", r.URL.Query().Get("dataset"), s.Datasets()))
		return
	}
	tr.SetLabel("dataset", dsName)

	res := eval.ApproxContext(ctx, sk, q, eval.Options{
		MaxEmbeddings: s.maxEmb,
		Metrics:       s.reg,
	})

	es := tr.StartSpan("serve.emit")
	resp := EstimateResponse{
		TraceID:     tr.IDString(),
		Dataset:     dsName,
		Query:       q.String(),
		Selectivity: res.Selectivity(),
		ResultNodes: len(res.Nodes),
		Empty:       res.Empty,
		Truncated:   res.Truncated,
	}
	es.End()

	total := tr.Finish()
	resp.Seconds = total.Seconds()
	if s.rec.Record(tr) {
		s.mRetained.Inc()
	}

	// The deadline is enforced at phase boundaries rather than inside the
	// enumeration loops: a request that finished over budget is answered
	// with 503 so closed-loop clients see the overload, even though its
	// work is already done.
	if ctx.Err() != nil {
		s.mDeadline.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:             fmt.Sprintf("deadline exceeded after %s", total.Round(time.Microsecond)),
			Code:              "deadline_exceeded",
			TraceID:           tr.IDString(),
			RetryAfterSeconds: s.retryAfterSeconds(),
		})
		return
	}
	s.wLatency.Observe(total.Seconds())
	if s.draining.Load() {
		s.mDrainDone.Inc()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// shed answers a request the server refuses to work on: 503 with a
// machine-readable code, a Retry-After hint, and the trace ID. The trace is
// finished (with a "shed" label) and offered to the flight recorder so an
// operator inspecting /debug/obs/slow during an overload sees what was
// turned away, not just what ran.
func (s *Server) shed(w http.ResponseWriter, tr *obs.Trace, code, msg string) {
	tr.SetLabel("shed", code)
	tr.Finish()
	if s.rec.Record(tr) {
		s.mRetained.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:             msg,
		Code:              code,
		TraceID:           tr.IDString(),
		RetryAfterSeconds: s.retryAfterSeconds(),
	})
}

// handleDatasets serves GET /datasets: the published dataset names.
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Datasets())
}

// fail answers a client error (4xx). Sheds and deadline 503s do not go
// through here: they are server-side refusals, not client mistakes, and
// serve.http.errors counts only the latter.
func (s *Server) fail(w http.ResponseWriter, status int, code, traceID, msg string) {
	s.mErrors.Inc()
	s.writeJSON(w, status, errorResponse{Error: msg, Code: code, TraceID: traceID})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
