package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treesketch/internal/exp"
	"treesketch/internal/obs"
	"treesketch/internal/sketch"
	"treesketch/internal/tsbuild"
)

// waitFor polls cond until it holds or the test times out; the admission
// tests use it to sequence goroutines on observable state (gauges) instead
// of sleeps.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// get503 fetches path and decodes the structured error body, asserting 503.
func get503(t *testing.T, ts *httptest.Server, path string) (errorResponse, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("GET %s: status %d, want 503", path, resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("503 body not JSON: %v", err)
	}
	return er, resp.Header
}

// TestAdmissionShedBeforeEval drives the gate deterministically: the test
// occupies the single eval slot white-box, so one request queues (and sheds
// on its deadline) and the next sheds on the full queue — all before any
// parse or eval work, which the eval counters prove.
func TestAdmissionShedBeforeEval(t *testing.T) {
	s, q := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 1, Deadline: 60 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	path := "/estimate?dataset=imdb&q=" + urlQueryEscape(q)

	s.gate.sem <- struct{}{} // occupy the only eval slot

	// First request takes the only queue slot and waits.
	var wg sync.WaitGroup
	wg.Add(1)
	var queuedErr errorResponse
	go func() {
		defer wg.Done()
		queuedErr, _ = get503(t, ts, path)
	}()
	waitFor(t, "request to queue", func() bool { return s.gate.qm.Depth.Value() == 1 })

	// Second request finds slot and queue both full: immediate shed.
	er, hdr := get503(t, ts, path)
	if er.Code != "shed_queue_full" {
		t.Errorf("queue-full shed code = %q", er.Code)
	}
	if er.TraceID == "" || er.RetryAfterSeconds < 1 {
		t.Errorf("queue-full shed body = %+v", er)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("queue-full shed missing Retry-After header")
	}

	// The queued request runs out of deadline budget while waiting.
	wg.Wait()
	if queuedErr.Code != "shed_deadline" {
		t.Errorf("queued shed code = %q", queuedErr.Code)
	}

	// Nothing was admitted, so nothing was parsed or evaluated.
	snap := s.Registry().Snapshot()
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "eval.") && v != 0 {
			t.Errorf("shed requests did eval work: %s = %d", name, v)
		}
	}
	if n := snap.Counters["serve.admission.shed_queue_full"]; n != 1 {
		t.Errorf("shed_queue_full = %d, want 1", n)
	}
	if n := snap.Counters["serve.admission.shed_deadline"]; n != 1 {
		t.Errorf("shed_deadline = %d, want 1", n)
	}
	if n := snap.Counters["serve.admission.queued"]; n != 1 {
		t.Errorf("queued = %d, want 1", n)
	}
	if n := snap.Counters["serve.http.errors"]; n != 0 {
		t.Errorf("sheds must not count as client errors, got %d", n)
	}
	if w := snap.Windows["serve.admission.queue_wait_seconds"]; w.Count != 1 {
		t.Errorf("queue wait observations = %d, want 1", w.Count)
	}
	// The latency window holds answered requests only.
	if w := snap.Windows["serve.request.latency_seconds"]; w.Count != 0 {
		t.Errorf("latency window counted shed requests: %d", w.Count)
	}

	// Shed traces land in the flight recorder, labeled with their reason.
	reasons := map[string]int{}
	for _, trace := range s.FlightRecorder().Slowest() {
		reasons[trace.Labels["shed"]]++
	}
	if reasons["shed_queue_full"] != 1 || reasons["shed_deadline"] != 1 {
		t.Errorf("flight recorder shed labels = %v", reasons)
	}

	// Free the slot: the server admits and answers again.
	<-s.gate.sem
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("post-release status = %d, want 200", resp.StatusCode)
	}
	if n := s.Registry().Snapshot().Counters["serve.admission.admitted"]; n != 1 {
		t.Errorf("admitted = %d, want 1", n)
	}
}

// TestAdmissionSaturation hammers a limiter of size 1 with many concurrent
// clients (run under -race): every request gets exactly one terminal
// outcome, and the admission counters account for all of them.
func TestAdmissionSaturation(t *testing.T) {
	s, q := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	path := "/estimate?dataset=imdb&q=" + urlQueryEscape(q)

	const clients = 24
	statuses := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Error(err)
				statuses <- 0
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for st := range statuses {
		counts[st]++
	}
	if got := counts[200] + counts[503]; got != clients {
		t.Fatalf("status counts = %v, want %d requests all 200 or 503", counts, clients)
	}

	snap := s.Registry().Snapshot()
	admitted := snap.Counters["serve.admission.admitted"]
	shedFull := snap.Counters["serve.admission.shed_queue_full"]
	shedDl := snap.Counters["serve.admission.shed_deadline"]
	if admitted+shedFull+shedDl != clients {
		t.Errorf("admitted %d + shed_queue_full %d + shed_deadline %d != %d",
			admitted, shedFull, shedDl, clients)
	}
	if int64(counts[200]) != admitted {
		t.Errorf("200s = %d but admitted = %d", counts[200], admitted)
	}
	if snap.Counters["serve.http.requests"] != clients {
		t.Errorf("request counter = %d, want %d", snap.Counters["serve.http.requests"], clients)
	}
	if d := snap.Gauges["serve.admission.queue_depth"]; d != 0 {
		t.Errorf("queue depth after drain = %d, want 0", d)
	}
	if d := snap.Gauges["serve.http.inflight"]; d != 0 {
		t.Errorf("inflight after drain = %d, want 0", d)
	}
}

// TestConcurrentCatalogSwap races SetCatalog against in-flight estimates
// (run under -race): requests see either the old or the new catalog, never
// a torn one, and every response is a terminal 200 or 404.
func TestConcurrentCatalogSwap(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := exp.NewRunner(exp.Config{TXScale: 2000, Seed: 1})
	xm, _ := tsbuild.Build(r.Stable("XMark-TX"), tsbuild.Options{BudgetBytes: 10 << 10})
	imdb := (*s.catalog.Load())["imdb"]

	stop := make(chan struct{})
	var swaps sync.WaitGroup
	swaps.Add(1)
	go func() {
		defer swaps.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.SetCatalog(map[string]*sketch.Sketch{"imdb": imdb, "xmark": xm})
			} else {
				s.SetCatalog(map[string]*sketch.Sketch{"imdb": imdb})
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ds := "imdb"
				if j%2 == 1 {
					ds = "xmark"
				}
				resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=" + ds + "&q=" + urlQueryEscape(q))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 404 {
					t.Errorf("dataset %s: status %d", ds, resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swaps.Wait()

	s.SetCatalog(map[string]*sketch.Sketch{"imdb": imdb})
	if got := s.Datasets(); len(got) != 1 || got[0] != "imdb" {
		t.Errorf("final catalog = %v", got)
	}
	if g := s.Registry().Snapshot().Gauges["serve.catalog.sketches"]; g != 1 {
		t.Errorf("catalog gauge = %d, want 1", g)
	}
}

// TestDrain sequences a graceful drain deterministically: a request queued
// before StartDrain completes (counted drained), a request arriving after
// is shed with code "draining".
func TestDrain(t *testing.T) {
	s, q := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	path := "/estimate?dataset=imdb&q=" + urlQueryEscape(q)

	s.gate.sem <- struct{}{} // park the pre-drain request in the queue
	var wg sync.WaitGroup
	wg.Add(1)
	var preDrainStatus int
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		preDrainStatus = resp.StatusCode
	}()
	waitFor(t, "request to queue", func() bool { return s.gate.qm.Depth.Value() == 1 })

	s.StartDrain()

	// Arrivals during the drain are refused up front.
	er, _ := get503(t, ts, path)
	if er.Code != "draining" {
		t.Errorf("drain shed code = %q", er.Code)
	}

	// The queued request was admitted before the drain: it runs to completion.
	<-s.gate.sem
	wg.Wait()
	if preDrainStatus != 200 {
		t.Errorf("pre-drain request status = %d, want 200", preDrainStatus)
	}

	completed, shed := s.DrainStats()
	if completed != 1 || shed != 1 {
		t.Errorf("DrainStats() = (%d, %d), want (1, 1)", completed, shed)
	}
}

// TestSlowTracesDatasetFilter exercises the /debug/obs/slow?dataset= filter
// through the serving stack: traces carry the dataset label the handler
// sets, and the filter scopes the flight recorder to one dataset.
func TestSlowTracesDatasetFilter(t *testing.T) {
	s, q := newTestServer(t, Options{})
	r := exp.NewRunner(exp.Config{TXScale: 2000, Seed: 1})
	xm, _ := tsbuild.Build(r.Stable("XMark-TX"), tsbuild.Options{BudgetBytes: 10 << 10})
	s.AddSketch("xmark", xm)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ds := range []string{"imdb", "xmark", "imdb"} {
		resp, err := ts.Client().Get(ts.URL + "/estimate?dataset=" + ds + "&q=" + urlQueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("estimate %s: status %d", ds, resp.StatusCode)
		}
	}

	slow := func(path string) []obs.TraceSnapshot {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var traces []obs.TraceSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
			t.Fatal(err)
		}
		return traces
	}
	if got := slow("/debug/obs/slow"); len(got) != 3 {
		t.Fatalf("unfiltered slow traces = %d, want 3", len(got))
	}
	xmOnly := slow("/debug/obs/slow?dataset=xmark")
	if len(xmOnly) != 1 || xmOnly[0].Labels["dataset"] != "xmark" {
		t.Errorf("dataset=xmark filter = %+v", xmOnly)
	}
}

// TestErrorCodes pins the machine-readable code on each client-error body.
func TestErrorCodes(t *testing.T) {
	s, q := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code := func(path string) string {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er.Code
	}
	if got := code("/estimate"); got != "missing_query" {
		t.Errorf("missing q code = %q", got)
	}
	if got := code("/estimate?q=" + urlQueryEscape("//[broken")); got != "parse_error" {
		t.Errorf("parse code = %q", got)
	}
	if got := code("/estimate?dataset=nope&q=" + urlQueryEscape(q)); got != "unknown_dataset" {
		t.Errorf("dataset code = %q", got)
	}
}

// TestRetryAfterNoWaitingRoom pins the backoff hint when the gate runs with
// no queue (-max-queue negative): slots turn over in about one service
// time, so a saturated-slot shed must advertise the minimum hint (1s), not
// a stale full-deadline wait.
func TestRetryAfterNoWaitingRoom(t *testing.T) {
	s, q := newTestServer(t, Options{MaxInflight: 1, MaxQueue: -1, Deadline: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.gate.sem <- struct{}{} // occupy the only eval slot; no queue exists
	er, hdr := get503(t, ts, "/estimate?dataset=imdb&q="+urlQueryEscape(q))
	if er.Code != "shed_queue_full" {
		t.Fatalf("shed code = %q", er.Code)
	}
	if er.RetryAfterSeconds != 1 {
		t.Errorf("no-waiting-room RetryAfterSeconds = %d, want 1 (one service time, not one deadline)", er.RetryAfterSeconds)
	}
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Errorf("no-waiting-room Retry-After header = %q, want \"1\"", got)
	}
}

// TestRetryAfterRealQueue is the counterpart: with actual waiting room, a
// queue-full shed keeps the deadline-derived hint — the queue needs roughly
// that long to drain.
func TestRetryAfterRealQueue(t *testing.T) {
	s, q := newTestServer(t, Options{MaxInflight: 1, MaxQueue: 2, Deadline: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.gate.sem <- struct{}{} // occupy the eval slot
	s.gate.queue <- struct{}{}
	s.gate.queue <- struct{}{} // fill the waiting room white-box
	er, _ := get503(t, ts, "/estimate?dataset=imdb&q="+urlQueryEscape(q))
	if er.Code != "shed_queue_full" {
		t.Fatalf("shed code = %q", er.Code)
	}
	if er.RetryAfterSeconds != 5 {
		t.Errorf("queue-full RetryAfterSeconds = %d, want 5 (the deadline)", er.RetryAfterSeconds)
	}
}

// TestRetryAfterDraining pins the drain hint: a draining process never
// takes the retry, so the client should fail over immediately (1s), not
// wait out a deadline that has nothing to do with recovery.
func TestRetryAfterDraining(t *testing.T) {
	s, q := newTestServer(t, Options{Deadline: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.StartDrain()
	er, hdr := get503(t, ts, "/estimate?dataset=imdb&q="+urlQueryEscape(q))
	if er.Code != "draining" {
		t.Fatalf("shed code = %q", er.Code)
	}
	if er.RetryAfterSeconds != 1 {
		t.Errorf("draining RetryAfterSeconds = %d, want 1 (fail over now)", er.RetryAfterSeconds)
	}
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Errorf("draining Retry-After header = %q, want \"1\"", got)
	}
}
