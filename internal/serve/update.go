package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"treesketch/internal/obs"
	"treesketch/internal/xmltree"
)

// maxUpdateBody bounds a POST /update request body. An update carries one
// subtree in compact or XML syntax; a megabyte is orders of magnitude above
// any sane increment and merely keeps a misbehaving client from streaming
// the server's memory full before json.Decode notices.
const maxUpdateBody = 1 << 20

// UpdateRequest is the JSON body of POST /update.
type UpdateRequest struct {
	// Dataset names the live dataset to mutate; may be omitted when exactly
	// one live dataset is published.
	Dataset string `json:"dataset,omitempty"`
	// Op is "insert" or "delete".
	Op string `json:"op"`
	// ParentOID addresses the element adopting the inserted subtree
	// (insert only).
	ParentOID int `json:"parent_oid,omitempty"`
	// OID addresses the subtree root to remove (delete only).
	OID int `json:"oid,omitempty"`
	// Subtree is the inserted subtree, in compact syntax ("a(b,b)") or XML
	// if it starts with '<' (insert only).
	Subtree string `json:"subtree,omitempty"`
}

// UpdateResponse is the JSON body of a successful POST /update.
type UpdateResponse struct {
	TraceID string `json:"trace_id"`
	Dataset string `json:"dataset"`
	Op      string `json:"op"`
	// OID is the adopted subtree root for an insert, the removed root for a
	// delete.
	OID int `json:"oid"`
	// Elems is the live document's element count after the update.
	Elems int `json:"elems"`
	// DeltaElems and Tiers describe the stack's uncompacted delta right
	// after the absorb; Epoch counts compactions folded into the base so
	// far; Compacting reports an in-flight background compaction (possibly
	// the one this update triggered — the response never waits on it).
	DeltaElems int     `json:"delta_elems"`
	Tiers      int     `json:"tiers"`
	Epoch      uint64  `json:"epoch"`
	Compacting bool    `json:"compacting,omitempty"`
	Seconds    float64 `json:"seconds"`
}

// handleUpdate serves POST /update: it admits the request through the same
// gate /estimate uses (updates compete with queries for serving capacity),
// decodes an insert or delete against a live dataset's tier stack, and
// reports the stack's post-absorb shape. The absorb itself is the only
// synchronous work — if it tips the stack over its compaction threshold the
// rebuild runs on a background goroutine and the response returns
// immediately with compacting=true.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	s.mUpdates.Inc()
	s.gInflight.Add(1)
	defer s.gInflight.Add(-1)

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, "", "POST only")
		return
	}

	ctx := r.Context()
	if s.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.deadline)
		defer cancel()
	}
	tr := obs.NewTrace("update")
	ctx = obs.ContextWithTrace(ctx, tr)

	if s.draining.Load() {
		s.mDrainShed.Inc()
		s.shed(w, tr, codeDraining, "server is draining")
		return
	}
	if s.gate != nil {
		release, reason := s.gate.acquire(ctx, tr)
		if release == nil {
			s.shed(w, tr, reason, "server overloaded: "+reason)
			return
		}
		defer release()
	}

	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUpdateBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, codeParseError, tr.IDString(), fmt.Sprintf("decode body: %v", err))
		return
	}
	if req.Op != "insert" && req.Op != "delete" {
		s.fail(w, http.StatusBadRequest, codeBadOp, tr.IDString(),
			fmt.Sprintf("op must be insert or delete, got %q", req.Op))
		return
	}

	st, dsName, ok := s.stackFor(req.Dataset)
	if !ok {
		s.mNotFound.Inc()
		s.fail(w, http.StatusNotFound, codeUnknownDataset, tr.IDString(),
			fmt.Sprintf("no live dataset %q (static datasets cannot be updated; restart tsserve with -live)", req.Dataset))
		return
	}
	tr.SetLabel("dataset", dsName)
	tr.SetLabel("op", req.Op)

	var (
		oid int
		err error
	)
	as := tr.StartSpan("serve.absorb")
	switch req.Op {
	case "insert":
		var proto *xmltree.Tree
		if strings.HasPrefix(strings.TrimSpace(req.Subtree), "<") {
			proto, err = xmltree.ParseString(req.Subtree)
		} else {
			proto, err = xmltree.BuildCompact(req.Subtree)
		}
		if err != nil {
			as.End()
			s.fail(w, http.StatusBadRequest, codeParseError, tr.IDString(), fmt.Sprintf("subtree: %v", err))
			return
		}
		oid, err = st.Insert(req.ParentOID, proto)
	case "delete":
		oid, err = req.OID, st.Delete(req.OID)
	}
	as.End()
	if err != nil {
		// The stack refused the mutation (unknown OID, root delete): the
		// request was well-formed but not applicable to the live document.
		s.fail(w, http.StatusUnprocessableEntity, codeUpdateRejected, tr.IDString(), err.Error())
		return
	}

	v := st.View()
	resp := UpdateResponse{
		TraceID:    tr.IDString(),
		Dataset:    dsName,
		Op:         req.Op,
		OID:        oid,
		Elems:      v.Elems,
		DeltaElems: v.DeltaElems(),
		Tiers:      v.Tiers(),
		Epoch:      v.Epoch,
		Compacting: st.Compacting(),
	}
	total := tr.Finish()
	resp.Seconds = total.Seconds()
	if s.rec.Record(tr) {
		s.mRetained.Inc()
	}
	s.wLatency.Observe(total.Seconds())
	if s.draining.Load() {
		s.mDrainDone.Inc()
	}
	s.writeJSON(w, http.StatusOK, resp)
}
