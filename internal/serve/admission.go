package serve

import (
	"context"
	"runtime"
	"time"

	"treesketch/internal/obs"
)

// admissionGate bounds the work the server accepts: at most `inflight`
// requests evaluate concurrently, at most `queue` more wait their turn, and
// everything beyond that is shed immediately with 503 — before any parse or
// eval work, so a saturated server spends its cycles finishing admitted
// requests instead of half-serving everything (the classic congestion
// collapse). A queued request that runs out of deadline budget while waiting
// is shed too: admitting it would only burn an eval slot on an answer the
// client has already given up on.
//
// The gate is two buffered channels used as counting semaphores. sem holds
// the eval slots; queue holds the waiting slots. Acquire order is
// fast-path-first so an idle server never pays the queue bookkeeping.
type admissionGate struct {
	sem   chan struct{} // eval slots; len(sem) = requests evaluating
	queue chan struct{} // wait slots; len(queue) = requests queued

	qm            *obs.QueueMetrics
	mAdmitted     *obs.Counter
	mQueued       *obs.Counter
	mShedFull     *obs.Counter
	mShedDeadline *obs.Counter
}

// newAdmissionGate sizes the gate from Options semantics: inflight 0 means
// 2x GOMAXPROCS (enough to cover stalls without losing the bound), negative
// disables the gate entirely (returns nil); queue 0 means 4x inflight,
// negative means no waiting room (saturation sheds immediately).
func newAdmissionGate(reg *obs.Registry, inflight, queue int) *admissionGate {
	if inflight < 0 {
		return nil
	}
	if inflight == 0 {
		inflight = 2 * runtime.GOMAXPROCS(0)
	}
	if queue == 0 {
		queue = 4 * inflight
	}
	if queue < 0 {
		queue = 0
	}
	return &admissionGate{
		sem:           make(chan struct{}, inflight),
		queue:         make(chan struct{}, queue),
		qm:            obs.NewQueueMetrics(reg, "serve.admission"),
		mAdmitted:     reg.Counter("serve.admission.admitted"),
		mQueued:       reg.Counter("serve.admission.queued"),
		mShedFull:     reg.Counter("serve.admission.shed_queue_full"),
		mShedDeadline: reg.Counter("serve.admission.shed_deadline"),
	}
}

// Shed reasons returned by acquire; they double as error codes in 503
// bodies and as the "shed" trace label.
const (
	shedQueueFull = "shed_queue_full"
	shedDeadline  = "shed_deadline"
)

// acquire tries to win an eval slot, queueing within the request's deadline
// budget if none is free. It returns a release func on admission, or
// (nil, reason) when the request must be shed. The wait, if any, is recorded
// as a "serve.admission" span on the trace and in the queue-wait window.
func (g *admissionGate) acquire(ctx context.Context, tr *obs.Trace) (func(), string) {
	// Fast path: a free slot means no queue bookkeeping and no clock reads
	// beyond the span the trace keeps anyway.
	select {
	case g.sem <- struct{}{}:
		g.mAdmitted.Inc()
		return g.release, ""
	default:
	}

	// Saturated: claim a waiting slot or shed.
	select {
	case g.queue <- struct{}{}:
	default:
		g.mShedFull.Inc()
		return nil, shedQueueFull
	}

	g.mQueued.Inc()
	g.qm.Enter()
	span := tr.StartSpan("serve.admission")
	t0 := time.Now()
	select {
	case g.sem <- struct{}{}:
		<-g.queue
		g.qm.Exit(time.Since(t0))
		span.End()
		g.mAdmitted.Inc()
		return g.release, ""
	case <-ctx.Done():
		<-g.queue
		g.qm.Exit(time.Since(t0))
		span.End()
		g.mShedDeadline.Inc()
		return nil, shedDeadline
	}
}

func (g *admissionGate) release() { <-g.sem }

// queueCap reports the gate's waiting-room capacity; zero means saturation
// sheds immediately, which changes what a useful Retry-After hint is.
func (g *admissionGate) queueCap() int { return cap(g.queue) }
