package serve

// Machine-readable error codes for the structured JSON error contract
// (errorResponse.Code). This block is the registry: every fail/shed call
// site names a constant from it, which is what keeps the enumeration —
// documented in the README's error table and matched by closed-loop bench
// clients — from drifting one hand-typed literal at a time. The spanfinish
// analyzer enforces the discipline; the admission shed reasons
// (shedQueueFull, shedDeadline in admission.go) are registered the same way.
const (
	// Client mistakes (4xx).
	codeMissingQuery     = "missing_query"      // no q parameter
	codeParseError       = "parse_error"        // query text or request body does not parse
	codeBadK             = "bad_k"              // k parameter not a positive integer
	codeBadMode          = "bad_mode"           // mode parameter outside the mode enum
	codeBadOp            = "bad_op"             // update op outside the op enum
	codeUnknownDataset   = "unknown_dataset"    // dataset name not in the catalog
	codeNoExactIndex     = "no_exact_index"     // exact mode on a synopsis-only dataset
	codeMethodNotAllowed = "method_not_allowed" // wrong HTTP method
	codeUpdateRejected   = "update_rejected"    // update failed tier admission checks
	codeTupleOverflow    = "tuple_overflow"     // exact count overflowed float64
	codeResultTooLarge   = "result_too_large"   // materialization exceeded the node budget

	// Server-side refusals (503).
	codeDraining         = "draining"          // server is draining before shutdown
	codeDeadlineExceeded = "deadline_exceeded" // request deadline lapsed before an answer
)
