package xsketch

import (
	"math"
	"testing"

	"treesketch/internal/esd"
	"treesketch/internal/eval"
	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func labelSplitOf(doc string) (*xmltree.Tree, *Sketch) {
	tr := xmltree.MustCompact(doc)
	st := stable.Build(tr)
	return tr, labelSplit(st, 4)
}

func TestLabelSplitStructure(t *testing.T) {
	tr, s := labelSplitOf("r(a(b),a(b,b),c(b))")
	if s.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (one per label)", s.NumNodes())
	}
	byLabel := map[string]*Node{}
	total := 0
	for _, u := range s.Nodes {
		byLabel[u.Label] = u
		total += u.Count
	}
	if total != tr.Size() {
		t.Fatalf("total count %d, want %d", total, tr.Size())
	}
	if byLabel["a"].Count != 2 || byLabel["b"].Count != 4 {
		t.Fatalf("counts a=%d b=%d", byLabel["a"].Count, byLabel["b"].Count)
	}
	if s.Nodes[s.Root].Label != "r" {
		t.Fatalf("root label %q", s.Nodes[s.Root].Label)
	}
}

func TestHistogramBucketsAndDerivedStats(t *testing.T) {
	_, s := labelSplitOf("r(a(b),a(b,b))")
	var a *Node
	for _, u := range s.Nodes {
		if u.Label == "a" {
			a = u
		}
	}
	if len(a.Hist.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(a.Hist.Buckets))
	}
	var fracSum float64
	for _, b := range a.Hist.Buckets {
		fracSum += b.Frac
	}
	if math.Abs(fracSum-1) > 1e-12 {
		t.Fatalf("bucket fracs sum to %g", fracSum)
	}
	if len(a.Edges) != 1 {
		t.Fatalf("edges = %d", len(a.Edges))
	}
	if math.Abs(a.Edges[0].Avg-1.5) > 1e-12 {
		t.Fatalf("avg = %g, want 1.5", a.Edges[0].Avg)
	}
	if math.Abs(a.Edges[0].PGe1-1) > 1e-12 {
		t.Fatalf("PGe1 = %g, want 1", a.Edges[0].PGe1)
	}
}

func TestHistogramEndBiased(t *testing.T) {
	// 5 distinct vectors with maxBuckets 2: top-2 exact, rest collapsed.
	tr := xmltree.MustCompact("r(a*4(b),a*3(b,b),a(b*3),a(b*4),a(b*5))")
	st := stable.Build(tr)
	s := labelSplit(st, 2)
	var a *Node
	for _, u := range s.Nodes {
		if u.Label == "a" {
			a = u
		}
	}
	if len(a.Hist.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(a.Hist.Buckets))
	}
	if a.Hist.Buckets[0].Vec[0] != 1 || a.Hist.Buckets[1].Vec[0] != 2 {
		t.Fatalf("top buckets = %v, %v", a.Hist.Buckets[0], a.Hist.Buckets[1])
	}
	if a.Hist.RestFrac <= 0 {
		t.Fatal("rest bucket missing")
	}
	// Rest average: (3+4+5)/3 = 4.
	if math.Abs(a.Hist.RestVec[0]-4) > 1e-12 {
		t.Fatalf("rest avg = %g, want 4", a.Hist.RestVec[0])
	}
	// Overall mean: (4*1 + 3*2 + 3+4+5)/10 = 2.2.
	if math.Abs(a.Edges[0].Avg-2.2) > 1e-12 {
		t.Fatalf("avg = %g, want 2.2", a.Edges[0].Avg)
	}
}

func TestEstimateSimpleCases(t *testing.T) {
	cases := []struct {
		doc, q string
		want   float64
	}{
		{"r(a,a,a)", "//a", 3},
		{"r(a(b),a(b,b))", "//a{/b}", 3},
		{"r(a(b),a(c))", "//a[/b]", 1},
		{"r(a(b),a(c))", "//a{/b?}", 2},
		{"r(a,b)", "//z", 0},
		{"r(a(b))", "//a{/z}", 0},
	}
	for _, c := range cases {
		_, s := labelSplitOf(c.doc)
		if got := s.Estimate(query.MustParse(c.q), EstOptions{}); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s on %s: estimate %g, want %g", c.q, c.doc, got, c.want)
		}
	}
}

func TestEstimateCyclicGraphTerminates(t *testing.T) {
	// Recursive labels make the label-split graph cyclic; estimation must
	// terminate via the hop bound.
	_, s := labelSplitOf("r(list(item(list(item)),item))")
	got := s.Estimate(query.MustParse("//item"), EstOptions{MaxHops: 8})
	if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("estimate = %g", got)
	}
}

func buildWorkload(tr *xmltree.Tree, st *stable.Synopsis, n int) []SampleQuery {
	ix := eval.NewIndex(tr)
	qs := query.Generate(st, n, query.GenOptions{Seed: 11})
	out := make([]SampleQuery, 0, len(qs))
	for _, q := range qs {
		ex := eval.Exact(ix, q)
		out = append(out, SampleQuery{Q: q, Truth: ex.Tuples})
	}
	return out
}

func TestBuildRefinesWithinBudget(t *testing.T) {
	tr := xmltree.MustCompact("r(a*5(b),a*3(b,b,b),a*2(b*7),c*4(d(e)),c*2(d))")
	st := stable.Build(tr)
	w := buildWorkload(tr, st, 20)
	base := labelSplit(st, 4)
	budget := base.SizeBytes() + 200
	s, stats := Build(st, BuildOptions{BudgetBytes: budget, Workload: w})
	if s.SizeBytes() > budget {
		t.Fatalf("size %d exceeds budget %d", s.SizeBytes(), budget)
	}
	if stats.WorkloadEvals == 0 || stats.Elapsed <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	baseErr := base.workloadError(w, sanityBound(w))
	if stats.FinalError > baseErr+1e-9 {
		t.Fatalf("refinement worsened error: %g -> %g", baseErr, stats.FinalError)
	}
}

func TestBuildStopsWhenNoSplitsRemain(t *testing.T) {
	// A perfectly homogeneous document: label-split is already stable, no
	// split candidates exist.
	tr := xmltree.MustCompact("r(a*4(b,b))")
	st := stable.Build(tr)
	s, stats := Build(st, BuildOptions{BudgetBytes: 1 << 20, Workload: buildWorkload(tr, st, 5)})
	if stats.SplitsApplied != 0 {
		t.Fatalf("SplitsApplied = %d, want 0", stats.SplitsApplied)
	}
	if s.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", s.NumNodes())
	}
}

func TestSplitImprovesPredicateEstimate(t *testing.T) {
	// Document where a-elements differ in having b children, correlated
	// with parent: x(a(b)) vs y(a(c)). Splitting the a node by parents
	// makes //x/a[/b] exact.
	tr := xmltree.MustCompact("r(x*4(a(b)),y*4(a(c)))")
	st := stable.Build(tr)
	q := query.MustParse("/x/a[/b]")
	ix := eval.NewIndex(tr)
	truth := eval.Exact(ix, q).Tuples
	w := []SampleQuery{{Q: q, Truth: truth}}

	base := labelSplit(st, 4)
	baseEst := base.Estimate(q, EstOptions{})
	s, _ := Build(st, BuildOptions{BudgetBytes: base.SizeBytes() + 400, Workload: w})
	refEst := s.Estimate(q, EstOptions{})
	if math.Abs(refEst-truth) > math.Abs(baseEst-truth)+1e-9 {
		t.Fatalf("refinement did not help: base %g, refined %g, truth %g", baseEst, refEst, truth)
	}
}

func TestApproxAnswerDeterministicAndSane(t *testing.T) {
	tr := xmltree.MustCompact("r(a*3(b,b),a*2(b))")
	st := stable.Build(tr)
	s := labelSplit(st, 4)
	q := query.MustParse("//a{/b}")
	a1 := s.ApproxAnswer(q, AnswerOptions{Seed: 5})
	a2 := s.ApproxAnswer(q, AnswerOptions{Seed: 5})
	if a1.Empty || a2.Empty {
		t.Fatal("answer empty")
	}
	if a1.Tree.Compact() != a2.Tree.Compact() {
		t.Fatal("same seed produced different answers")
	}
	if a1.Tree.Root.Label != "q0:r" {
		t.Fatalf("root label %q", a1.Tree.Root.Label)
	}
	// Sampled answer sizes should be in the right ballpark: truth has
	// 1 root + 5 a's + 8 b's = 14 nodes.
	size := a1.Tree.Size()
	if size < 4 || size > 40 {
		t.Fatalf("answer size %d wildly off (truth 14)", size)
	}
}

func TestApproxAnswerEmptyOnNegativeQuery(t *testing.T) {
	_, s := labelSplitOf("r(a(b))")
	a := s.ApproxAnswer(query.MustParse("//z"), AnswerOptions{Seed: 1})
	if !a.Empty {
		t.Fatal("negative query produced non-empty answer")
	}
	if a.ESDGraph() != nil {
		t.Fatal("empty answer has non-nil ESD graph")
	}
}

func TestApproxAnswerComparableToExactViaESD(t *testing.T) {
	// On a perfectly regular document the sampled answer is structurally
	// exact, so its ESD to the truth must be zero.
	doc := "r(a*4(b,b))"
	tr := xmltree.MustCompact(doc)
	st := stable.Build(tr)
	s := labelSplit(st, 4)
	q := query.MustParse("//a{/b}")
	truthG := eval.Exact(eval.NewIndex(tr), q).ESDGraph()
	ansG := s.ApproxAnswer(q, AnswerOptions{Seed: 3}).ESDGraph()
	if d := esd.Distance(truthG, ansG); d > 1e-9 {
		t.Fatalf("ESD = %g, want 0 on regular document", d)
	}
}

func TestApproxAnswerRespectsNodeCap(t *testing.T) {
	tr := xmltree.MustCompact("r(a*10(b*10(c*5)))")
	st := stable.Build(tr)
	s := labelSplit(st, 4)
	a := s.ApproxAnswer(query.MustParse("//a{/b{/c}}"), AnswerOptions{Seed: 1, MaxNodes: 30})
	if !a.Truncated {
		t.Fatal("expected truncation")
	}
	if a.Tree != nil && a.Tree.Size() > 40 {
		t.Fatalf("size %d far above cap", a.Tree.Size())
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, s := labelSplitOf("r(a(b),a(b,b))")
	c := s.clone()
	c.Nodes[0].Count = 999
	c.clusterOf[0] = 77
	if s.Nodes[0].Count == 999 || s.clusterOf[0] == 77 {
		t.Fatal("clone shares mutable state")
	}
}

func TestSizeBytesCountsHistograms(t *testing.T) {
	_, s := labelSplitOf("r(a(b),a(b,b))")
	base := s.NumNodes()*NodeBytes + 2*EdgeBytes // r->a, a->b
	// a has 2 buckets of 1 dim; r has 1 bucket of 1 dim; b has none.
	hist := 3*(BucketBytes+DimBytes) + 0
	if got := s.SizeBytes(); got != base+hist {
		t.Fatalf("SizeBytes = %d, want %d", got, base+hist)
	}
}
