package xsketch

import (
	"math"
	"math/rand"
	"testing"

	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSampleCountDrawsFromBuckets(t *testing.T) {
	// a-elements with 1 or 3 b's (50/50): samples must be in {1,3} and
	// average near 2.
	tr := xmltree.MustCompact("r(a*10(b),a*10(b,b,b))")
	st := stable.Build(tr)
	s := labelSplit(st, 4)
	a := &answerer{s: s}
	a.rng = newTestRng(7)
	var aID, bID int
	for _, u := range s.Nodes {
		switch u.Label {
		case "a":
			aID = u.ID
		case "b":
			bID = u.ID
		}
	}
	sum := 0
	for i := 0; i < 2000; i++ {
		v := a.sampleCount(aID, bID)
		if v != 1 && v != 3 {
			t.Fatalf("sample %d outside {1,3}", v)
		}
		sum += v
	}
	avg := float64(sum) / 2000
	if math.Abs(avg-2) > 0.15 {
		t.Fatalf("avg = %g, want ~2", avg)
	}
	// Missing edge: zero.
	if v := a.sampleCount(bID, aID); v != 0 {
		t.Fatalf("sample along missing edge = %d", v)
	}
}

func TestSampleCountRestBucket(t *testing.T) {
	// Five distinct fanouts with one exact bucket: most mass lands in the
	// rest bucket, whose samples round its average.
	tr := xmltree.MustCompact("r(a(b),a(b,b),a(b*3),a(b*4),a(b*5))")
	st := stable.Build(tr)
	s := labelSplit(st, 1)
	a := &answerer{s: s}
	a.rng = newTestRng(3)
	var aID, bID int
	for _, u := range s.Nodes {
		switch u.Label {
		case "a":
			aID = u.ID
		case "b":
			bID = u.ID
		}
	}
	sum := 0
	for i := 0; i < 4000; i++ {
		sum += a.sampleCount(aID, bID)
	}
	// True mean fanout is 3.
	if avg := float64(sum) / 4000; math.Abs(avg-3) > 0.25 {
		t.Fatalf("avg = %g, want ~3", avg)
	}
}

func TestSampleAlongMultiHop(t *testing.T) {
	// r -> a (2 each) -> b (3 each): descendants of r along //b ~ 6.
	tr := xmltree.MustCompact("r(a(b,b,b),a(b,b,b))")
	st := stable.Build(tr)
	s := labelSplit(st, 4)
	q := query.MustParse("//b")
	a := &answerer{
		s:      s,
		est:    &estimator{s: s, opts: EstOptions{MaxEmbeddings: 100, MaxHops: 8}},
		opts:   AnswerOptions{MaxNodes: 100000}.withDefaults(),
		qnodes: q.Vars(),
	}
	a.rng = newTestRng(5)
	embs := a.est.embeddings(s.Root, q.Root.Edges[0].Path.Steps)
	if len(embs) == 0 {
		t.Fatal("no embeddings")
	}
	total := 0
	for i := 0; i < 500; i++ {
		for _, emb := range embs {
			total += a.sampleAlong(s.Root, q.Root.Edges[0].Path.Steps, emb)
		}
	}
	if avg := float64(total) / 500; math.Abs(avg-6) > 0.5 {
		t.Fatalf("avg sampled descendants = %g, want ~6", avg)
	}
}

func TestVectorLess(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1, 2}, false},
		{[]int{1}, []int{1, 0}, true},
		{[]int{1, 0}, []int{1}, false},
	}
	for _, c := range cases {
		if got := less(c.a, c.b); got != c.want {
			t.Errorf("less(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestXsketchPathKey(t *testing.T) {
	a := pathKey([]int{1, 2, 300})
	b := pathKey([]int{1, 2, 300})
	c := pathKey([]int{1, 2, 301})
	if a != b || a == c {
		t.Fatal("pathKey not injective-ish")
	}
	if pathKey(nil) != "" {
		t.Fatal("empty path key not empty")
	}
}
