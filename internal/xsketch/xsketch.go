// Package xsketch reimplements the twig-XSketch baseline that the paper
// compares against (Polyzotis, Garofalakis, Ioannidis: "Selectivity
// Estimation for XML Twigs", ICDE 2004), from its published description:
//
//   - a graph synopsis over element partitions (here: clusters of
//     count-stable classes, a lossless proxy for element partitions);
//   - per-node *edge histograms* capturing the joint distribution of child
//     counts across the node's outgoing edges (an end-biased histogram:
//     the most frequent child-count vectors exactly, one average bucket
//     for the remainder);
//   - top-down, workload-driven construction: starting from the coarse
//     label-split graph, candidate node splits are evaluated by measuring
//     the estimation error of the refined synopsis on a sample workload of
//     twig queries, and the best split is applied until the space budget
//     is exhausted — the expensive step Table 3 contrasts with TSBuild's
//     workload-independent squared-error metric;
//   - selectivity estimation via path embeddings with histogram-derived
//     per-edge means and P(count >= 1) branch probabilities;
//   - approximate answers by sampling descendant counts from the
//     histograms (Section 6.1 notes the answer generator was built for
//     the comparison, as the original system estimated selectivity only).
//
// The B/F-stability flags of the original are subsumed here by the
// histograms, which record P(count >= 1) exactly per bucket.
package xsketch

import (
	"sort"

	"treesketch/internal/stable"
)

// Size model: shared node/edge costs plus a per-histogram-bucket cost so
// that budgets are comparable with TreeSketch synopses. A bucket stores a
// child-count vector and a frequency.
const (
	NodeBytes   = stable.NodeBytes
	EdgeBytes   = stable.EdgeBytes
	BucketBytes = 8
	DimBytes    = 2 // per vector entry within a bucket
)

// Edge is a synopsis edge with histogram-derived summary statistics.
type Edge struct {
	Child int
	// Avg is the mean child count along this edge per source element.
	Avg float64
	// PGe1 is the fraction of source elements with at least one child
	// along this edge.
	PGe1 float64
}

// Bucket is one exact entry of an edge histogram: a child-count vector over
// the node's outgoing edges and the fraction of the extent exhibiting it.
type Bucket struct {
	Vec  []int
	Frac float64
}

// Histogram is an end-biased joint edge histogram: Buckets hold the most
// frequent vectors exactly; the remainder collapses into an average vector.
type Histogram struct {
	Buckets  []Bucket
	RestVec  []float64 // average vector of the collapsed remainder
	RestFrac float64
}

// Node is one partition of the twig-XSketch.
type Node struct {
	ID      int
	Label   string
	Count   int
	Edges   []Edge // sorted by Child
	Hist    Histogram
	Members []int // stable class IDs in this partition
}

// EdgeTo returns the index of the edge to child, or -1.
func (n *Node) EdgeTo(child int) int {
	i := sort.Search(len(n.Edges), func(i int) bool { return n.Edges[i].Child >= child })
	if i < len(n.Edges) && n.Edges[i].Child == child {
		return i
	}
	return -1
}

// Sketch is a twig-XSketch synopsis. Unlike TreeSketches, the graph may be
// cyclic (the label-split graph of a recursive document is), so evaluation
// bounds path exploration.
type Sketch struct {
	Nodes []*Node
	Root  int

	st        *stable.Synopsis
	clusterOf []int
}

// SizeBytes reports the synopsis footprint: nodes, edges, and histogram
// buckets (the rest-bucket counts as one).
func (s *Sketch) SizeBytes() int {
	total := 0
	for _, u := range s.Nodes {
		if u == nil {
			continue
		}
		total += NodeBytes + len(u.Edges)*EdgeBytes
		for _, b := range u.Hist.Buckets {
			total += BucketBytes + DimBytes*len(b.Vec)
		}
		if u.Hist.RestFrac > 0 {
			total += BucketBytes + DimBytes*len(u.Hist.RestVec)
		}
	}
	return total
}

// NumNodes reports live node count.
func (s *Sketch) NumNodes() int {
	n := 0
	for _, u := range s.Nodes {
		if u != nil {
			n++
		}
	}
	return n
}

// rebuildNode recomputes a node's edges and histogram from its members
// under the current cluster assignment, keeping at most maxBuckets exact
// buckets.
func (s *Sketch) rebuildNode(u *Node, maxBuckets int) {
	// Per-member child-count vectors over target clusters.
	type vecEntry struct {
		counts map[int]int
		weight int
	}
	entries := make([]vecEntry, 0, len(u.Members))
	targets := make(map[int]bool)
	total := 0
	for _, sid := range u.Members {
		sn := s.st.Nodes[sid]
		counts := make(map[int]int)
		for _, e := range sn.Edges {
			t := s.clusterOf[e.Child]
			counts[t] += e.K
			targets[t] = true
		}
		entries = append(entries, vecEntry{counts, sn.Count})
		total += sn.Count
	}
	u.Count = total

	dims := make([]int, 0, len(targets))
	for t := range targets {
		dims = append(dims, t)
	}
	sort.Ints(dims)
	if len(dims) == 0 {
		// Leaf partition: no edges, no histogram.
		u.Hist = Histogram{}
		u.Edges = u.Edges[:0]
		return
	}
	dimIdx := make(map[int]int, len(dims))
	for i, d := range dims {
		dimIdx[d] = i
	}

	// Group identical vectors.
	type group struct {
		vec    []int
		weight int
	}
	byKey := make(map[string]*group)
	for _, e := range entries {
		vec := make([]int, len(dims))
		for t, c := range e.counts {
			vec[dimIdx[t]] = c
		}
		key := ""
		for _, v := range vec {
			key += itoa(v) + ","
		}
		g := byKey[key]
		if g == nil {
			g = &group{vec: vec}
			byKey[key] = g
		}
		g.weight += e.weight
	}
	groups := make([]*group, 0, len(byKey))
	for _, g := range byKey {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].weight != groups[j].weight {
			return groups[i].weight > groups[j].weight
		}
		return less(groups[i].vec, groups[j].vec)
	})

	hist := Histogram{}
	restWeight := 0
	restSum := make([]float64, len(dims))
	for gi, g := range groups {
		if gi < maxBuckets {
			hist.Buckets = append(hist.Buckets, Bucket{Vec: g.vec, Frac: float64(g.weight) / float64(total)})
			continue
		}
		restWeight += g.weight
		for i, v := range g.vec {
			restSum[i] += float64(v) * float64(g.weight)
		}
	}
	if restWeight > 0 {
		hist.RestFrac = float64(restWeight) / float64(total)
		hist.RestVec = make([]float64, len(dims))
		for i := range restSum {
			hist.RestVec[i] = restSum[i] / float64(restWeight)
		}
	}
	u.Hist = hist

	// Derived per-edge stats.
	u.Edges = u.Edges[:0]
	for i, d := range dims {
		var avg, pge1 float64
		for _, b := range hist.Buckets {
			avg += b.Frac * float64(b.Vec[i])
			if b.Vec[i] >= 1 {
				pge1 += b.Frac
			}
		}
		if hist.RestFrac > 0 {
			avg += hist.RestFrac * hist.RestVec[i]
			p := hist.RestVec[i]
			if p > 1 {
				p = 1
			}
			pge1 += hist.RestFrac * p
		}
		if avg > 0 {
			u.Edges = append(u.Edges, Edge{Child: d, Avg: avg, PGe1: pge1})
		}
	}
}

func less(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
