package xsketch

import (
	"math"
	"testing"
	"time"

	"treesketch/internal/query"
	"treesketch/internal/stable"
	"treesketch/internal/xmltree"
)

func TestReachesOnCyclicGraph(t *testing.T) {
	_, s := labelSplitOf("r(list(item(list(item)),item),other)")
	e := &estimator{s: s}
	ids := map[string]int{}
	for _, u := range s.Nodes {
		ids[u.Label] = u.ID
	}
	if !e.reaches(ids["r"], "item") {
		t.Fatal("r should reach item")
	}
	if !e.reaches(ids["item"], "list") {
		t.Fatal("item should reach list (recursion)")
	}
	if e.reaches(ids["other"], "item") {
		t.Fatal("other should not reach item")
	}
}

func TestEstimateDenseGraphFastEvenWithDeepHops(t *testing.T) {
	// A wide document whose label-split graph has many fruitless branches:
	// without reachability pruning and the work budget this explodes.
	src := "r("
	for i := 0; i < 20; i++ {
		if i > 0 {
			src += ","
		}
		src += "s" + string(rune('a'+i)) + "(m(n(o(p(q)))))"
	}
	src += ")"
	tr := xmltree.MustCompact(src)
	s := labelSplit(stable.Build(tr), 4)
	start := time.Now()
	got := s.Estimate(query.MustParse("//q"), EstOptions{MaxHops: 16, MaxEmbeddings: 100})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("estimate took %v", elapsed)
	}
	if got <= 0 {
		t.Fatalf("estimate = %g", got)
	}
}

func TestEstimateDescendantDedupOnRecursion(t *testing.T) {
	// //list//item on nested lists: each item counted once despite two
	// step assignments on nested paths. The label-split graph of this
	// document is exact per class, so the estimate should match truth.
	doc := "r(list(item(list(item))))"
	tr := xmltree.MustCompact(doc)
	// truth: items with a list ancestor: both items -> //list//item
	// bindings: outer list contributes both items, deduped = 2.
	s := labelSplit(stable.Build(tr), 8)
	got := s.Estimate(query.MustParse("//list//item"), EstOptions{})
	if math.Abs(got-2) > 0.5 {
		t.Fatalf("estimate = %g, want ~2", got)
	}
}

func TestEstimateOptionalVarClamp(t *testing.T) {
	_, s := labelSplitOf("r(a(b),a(c))")
	got := s.Estimate(query.MustParse("//a{/b?}"), EstOptions{})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("estimate = %g, want 2", got)
	}
}
