package xsketch

import (
	"sort"
	"time"

	"treesketch/internal/query"
	"treesketch/internal/stable"
)

// SampleQuery is one entry of the construction workload: a twig query and
// its true selectivity (binding-tuple count) on the summarized document.
type SampleQuery struct {
	Q     *query.Query
	Truth float64
}

// BuildOptions configures twig-XSketch construction.
type BuildOptions struct {
	// BudgetBytes is the space budget the refined synopsis may use.
	BudgetBytes int
	// Workload is the sample workload driving refinement, with true
	// selectivities. Construction quality (and cost) scales with it.
	Workload []SampleQuery
	// MaxBuckets bounds the exact buckets per node histogram (default 4).
	MaxBuckets int
	// CandidatesPerRound bounds the node-split candidates evaluated per
	// greedy round (default 6). Every evaluation runs the whole sample
	// workload — the expensive step of workload-driven construction.
	CandidatesPerRound int
	// MaxRounds bounds refinement rounds (default 1000).
	MaxRounds int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.MaxBuckets <= 0 {
		o.MaxBuckets = 4
	}
	if o.CandidatesPerRound <= 0 {
		o.CandidatesPerRound = 6
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 1000
	}
	return o
}

// Stats reports construction telemetry.
type Stats struct {
	Rounds          int
	SplitsApplied   int
	WorkloadEvals   int // candidate evaluations, each running the workload
	FinalBytes      int
	FinalNodes      int
	FinalError      float64 // avg relative error on the sample workload
	Elapsed         time.Duration
	BudgetExhausted bool
}

// Build constructs a twig-XSketch for the document summarized by st:
// starting from the label-split graph it greedily applies the node split
// that most reduces the sample-workload estimation error per byte of
// growth, until the budget is exhausted or no split helps.
func Build(st *stable.Synopsis, opts BuildOptions) (*Sketch, Stats) {
	opts = opts.withDefaults()
	start := time.Now()
	s := labelSplit(st, opts.MaxBuckets)
	stats := Stats{}

	sanity := sanityBound(opts.Workload)
	currentErr := s.workloadError(opts.Workload, sanity)
	stats.WorkloadEvals++

	parentsOf := stableParents(st)

	for stats.Rounds < opts.MaxRounds {
		stats.Rounds++
		if s.SizeBytes() >= opts.BudgetBytes {
			stats.BudgetExhausted = true
			break
		}
		cands := s.candidateSplits(opts.CandidatesPerRound)
		if len(cands) == 0 {
			break
		}
		bestGain := 0.0
		var best *Sketch
		var bestErr float64
		for _, c := range cands {
			trial := s.clone()
			grew := trial.applySplit(c, parentsOf, opts.MaxBuckets)
			if !grew || trial.SizeBytes() > opts.BudgetBytes {
				continue
			}
			err := trial.workloadError(opts.Workload, sanity)
			stats.WorkloadEvals++
			addedBytes := trial.SizeBytes() - s.SizeBytes()
			if addedBytes <= 0 {
				addedBytes = 1
			}
			gain := (currentErr - err) / float64(addedBytes)
			if best == nil || gain > bestGain {
				bestGain = gain
				best = trial
				bestErr = err
			}
		}
		if best == nil {
			break
		}
		s = best
		currentErr = bestErr
		stats.SplitsApplied++
	}

	stats.FinalBytes = s.SizeBytes()
	stats.FinalNodes = s.NumNodes()
	stats.FinalError = currentErr
	stats.Elapsed = time.Since(start)
	return s, stats
}

// labelSplit builds the coarsest synopsis: one node per label.
func labelSplit(st *stable.Synopsis, maxBuckets int) *Sketch {
	s := &Sketch{st: st, clusterOf: make([]int, len(st.Nodes))}
	byLabel := make(map[string]*Node)
	for _, sn := range st.Nodes {
		u, ok := byLabel[sn.Label]
		if !ok {
			u = &Node{ID: len(s.Nodes), Label: sn.Label}
			s.Nodes = append(s.Nodes, u)
			byLabel[sn.Label] = u
		}
		u.Members = append(u.Members, sn.ID)
		s.clusterOf[sn.ID] = u.ID
	}
	for _, u := range s.Nodes {
		s.rebuildNode(u, maxBuckets)
	}
	if st.Root >= 0 {
		s.Root = s.clusterOf[st.Root]
	}
	return s
}

func stableParents(st *stable.Synopsis) [][]int {
	return st.Parents()
}

// sanityBound is the 10-percentile of true workload counts (Section 6.1).
func sanityBound(w []SampleQuery) float64 {
	if len(w) == 0 {
		return 1
	}
	truths := make([]float64, len(w))
	for i, sq := range w {
		truths[i] = sq.Truth
	}
	sort.Float64s(truths)
	s := truths[len(truths)/10]
	if s < 1 {
		s = 1
	}
	return s
}

func (s *Sketch) workloadError(w []SampleQuery, sanity float64) float64 {
	if len(w) == 0 {
		return 0
	}
	// Construction-time estimates use a reduced embedding budget: they
	// only steer the greedy search, so precision matters less than the
	// sheer number of evaluations.
	var sum float64
	for _, sq := range w {
		est := s.Estimate(sq.Q, EstOptions{MaxEmbeddings: 400, MaxHops: 10})
		denom := sq.Truth
		if denom < sanity {
			denom = sanity
		}
		d := sq.Truth - est
		if d < 0 {
			d = -d
		}
		sum += d / denom
	}
	return sum / float64(len(w))
}

// splitCand describes a candidate node split: partition member classes of
// node ID into two groups.
type splitCand struct {
	node   int
	groupA []int // member stable IDs moved to the new node
}

// candidateSplits proposes up to limit splits on the most heterogeneous
// high-count nodes: by dominant child-count vector and by parent set.
func (s *Sketch) candidateSplits(limit int) []splitCand {
	type scored struct {
		node  int
		score float64
	}
	var nodes []scored
	for _, u := range s.Nodes {
		if u == nil || len(u.Members) < 2 {
			continue
		}
		hetero := float64(len(u.Hist.Buckets))
		if u.Hist.RestFrac > 0 {
			hetero += 2
		}
		if hetero < 2 {
			continue
		}
		nodes = append(nodes, scored{u.ID, float64(u.Count) * hetero})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].score > nodes[j].score })
	var out []splitCand
	for _, sc := range nodes {
		if len(out) >= limit {
			break
		}
		u := s.Nodes[sc.node]
		if c, ok := s.splitByVector(u); ok {
			out = append(out, c)
		}
		if len(out) >= limit {
			break
		}
		if c, ok := s.splitByParents(u); ok {
			out = append(out, c)
		}
	}
	return out
}

// splitByVector separates the members exhibiting the node's most frequent
// child-count vector from the rest.
func (s *Sketch) splitByVector(u *Node) (splitCand, bool) {
	keyOf := func(sid int) string {
		sn := s.st.Nodes[sid]
		counts := make(map[int]int)
		for _, e := range sn.Edges {
			counts[s.clusterOf[e.Child]] += e.K
		}
		targets := make([]int, 0, len(counts))
		for t := range counts {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		key := ""
		for _, t := range targets {
			key += itoa(t) + ":" + itoa(counts[t]) + ";"
		}
		return key
	}
	weight := make(map[string]int)
	for _, sid := range u.Members {
		weight[keyOf(sid)] += s.st.Nodes[sid].Count
	}
	if len(weight) < 2 {
		return splitCand{}, false
	}
	bestKey, bestW := "", -1
	for k, w := range weight {
		if w > bestW || (w == bestW && k < bestKey) {
			bestKey, bestW = k, w
		}
	}
	var groupA []int
	for _, sid := range u.Members {
		if keyOf(sid) == bestKey {
			groupA = append(groupA, sid)
		}
	}
	if len(groupA) == 0 || len(groupA) == len(u.Members) {
		return splitCand{}, false
	}
	return splitCand{node: u.ID, groupA: groupA}, true
}

// splitByParents separates members by their set of parent clusters
// (B-stability-style refinement).
func (s *Sketch) splitByParents(u *Node) (splitCand, bool) {
	parents := s.st.Parents()
	keyOf := func(sid int) string {
		set := make(map[int]bool)
		for _, p := range parents[sid] {
			set[s.clusterOf[p]] = true
		}
		ids := make([]int, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		key := ""
		for _, id := range ids {
			key += itoa(id) + ";"
		}
		return key
	}
	weight := make(map[string]int)
	for _, sid := range u.Members {
		weight[keyOf(sid)] += s.st.Nodes[sid].Count
	}
	if len(weight) < 2 {
		return splitCand{}, false
	}
	bestKey, bestW := "", -1
	for k, w := range weight {
		if w > bestW || (w == bestW && k < bestKey) {
			bestKey, bestW = k, w
		}
	}
	var groupA []int
	for _, sid := range u.Members {
		if keyOf(sid) == bestKey {
			groupA = append(groupA, sid)
		}
	}
	if len(groupA) == 0 || len(groupA) == len(u.Members) {
		return splitCand{}, false
	}
	return splitCand{node: u.ID, groupA: groupA}, true
}

// clone deep-copies the synopsis (shared immutable stable summary).
func (s *Sketch) clone() *Sketch {
	out := &Sketch{
		st:        s.st,
		Root:      s.Root,
		clusterOf: append([]int(nil), s.clusterOf...),
		Nodes:     make([]*Node, len(s.Nodes)),
	}
	for i, u := range s.Nodes {
		if u == nil {
			continue
		}
		v := &Node{
			ID:      u.ID,
			Label:   u.Label,
			Count:   u.Count,
			Edges:   append([]Edge(nil), u.Edges...),
			Members: append([]int(nil), u.Members...),
		}
		v.Hist.Buckets = make([]Bucket, len(u.Hist.Buckets))
		for j, b := range u.Hist.Buckets {
			v.Hist.Buckets[j] = Bucket{Vec: append([]int(nil), b.Vec...), Frac: b.Frac}
		}
		v.Hist.RestVec = append([]float64(nil), u.Hist.RestVec...)
		v.Hist.RestFrac = u.Hist.RestFrac
		out.Nodes[i] = v
	}
	return out
}

// applySplit performs the split and rebuilds affected nodes. Returns false
// when the split is degenerate.
func (s *Sketch) applySplit(c splitCand, parentsOf [][]int, maxBuckets int) bool {
	u := s.Nodes[c.node]
	inA := make(map[int]bool, len(c.groupA))
	for _, sid := range c.groupA {
		inA[sid] = true
	}
	var groupB []int
	for _, sid := range u.Members {
		if !inA[sid] {
			groupB = append(groupB, sid)
		}
	}
	if len(groupB) == 0 || len(c.groupA) == 0 {
		return false
	}
	w := &Node{ID: len(s.Nodes), Label: u.Label, Members: append([]int(nil), c.groupA...)}
	s.Nodes = append(s.Nodes, w)
	u.Members = groupB
	for _, sid := range c.groupA {
		s.clusterOf[sid] = w.ID
	}
	if s.st.Root >= 0 {
		s.Root = s.clusterOf[s.st.Root]
	}

	// Rebuild the two halves plus every cluster containing a parent of a
	// moved member (their edge dimensions changed).
	dirty := map[int]bool{u.ID: true, w.ID: true}
	for _, sid := range c.groupA {
		for _, p := range parentsOf[sid] {
			dirty[s.clusterOf[p]] = true
		}
	}
	for id := range dirty {
		s.rebuildNode(s.Nodes[id], maxBuckets)
	}
	return true
}
