package xsketch

import (
	"treesketch/internal/query"
)

// EstOptions configures selectivity estimation.
type EstOptions struct {
	// MaxEmbeddings caps path-embedding enumeration (default 2000).
	MaxEmbeddings int
	// MaxHops bounds the length of a descendant-step path, which keeps
	// enumeration finite on cyclic label-split graphs (default 12).
	MaxHops int
}

func (o EstOptions) withDefaults() EstOptions {
	if o.MaxEmbeddings <= 0 {
		o.MaxEmbeddings = 2000
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 12
	}
	return o
}

// rnode is one node of the intermediate result synopsis: the elements of a
// source partition bound to one query variable.
type rnode struct {
	src   int
	varID int
	edges map[int]float64 // result node ID -> estimated descendant count k
}

// Estimate computes the estimated number of binding tuples for the twig
// query: expected child counts multiply along path embeddings, and
// branching predicates contribute P(count >= 1) factors combined by
// inclusion-exclusion, mirroring the estimation framework of the original
// twig-XSketch work.
func (s *Sketch) Estimate(q *query.Query, opts EstOptions) float64 {
	e := &estimator{s: s, opts: opts.withDefaults()}
	qnodes := q.Vars()
	qidx := make(map[*query.Node]int, len(qnodes))
	for i, qn := range qnodes {
		qidx[qn] = i
	}

	var nodes []*rnode
	index := make(map[[2]int]int)
	bind := make([][]int, len(qnodes))
	addNode := func(src, varID int) int {
		key := [2]int{src, varID}
		if id, ok := index[key]; ok {
			return id
		}
		id := len(nodes)
		nodes = append(nodes, &rnode{src: src, varID: varID, edges: make(map[int]float64)})
		index[key] = id
		bind[varID] = append(bind[varID], id)
		return id
	}
	addNode(s.Root, 0)

	for qi, qn := range qnodes {
		for _, uQ := range bind[qi] {
			rn := nodes[uQ]
			for _, edge := range qn.Edges {
				perTerm := make(map[int]float64)
				for _, emb := range e.embeddings(rn.src, edge.Path.Steps) {
					k := e.evalEmbed(edge.Path.Steps, rn.src, emb)
					if k > 0 {
						perTerm[emb.nodes[len(emb.nodes)-1]] += k
					}
				}
				ci := qidx[edge.Child]
				for v, k := range perTerm {
					vQ := addNode(v, ci)
					rn.edges[vQ] += k
				}
			}
		}
	}

	// A required variable with no bindings empties the answer.
	for _, qn := range qnodes {
		for _, edge := range qn.Edges {
			if !edge.Optional && len(bind[qidx[edge.Child]]) == 0 {
				return 0
			}
		}
	}

	// Bottom-up tuples-per-element, grouping edges by child variable. A
	// node whose required child variable found no descendants contributes
	// zero tuples; an optional variable's factor is at least 1 (elements
	// without matches contribute a NULL binding).
	requiredChildren := make([][]int, len(qnodes))
	optionalVar := make([]bool, len(qnodes))
	for qi, qn := range qnodes {
		for _, edge := range qn.Edges {
			if !edge.Optional {
				requiredChildren[qi] = append(requiredChildren[qi], qidx[edge.Child])
			} else {
				optionalVar[qidx[edge.Child]] = true
			}
		}
	}
	memo := make([]float64, len(nodes))
	for i := range memo {
		memo[i] = -1
	}
	var tuples func(id int) float64
	tuples = func(id int) float64 {
		if memo[id] >= 0 {
			return memo[id]
		}
		memo[id] = 0
		rn := nodes[id]
		perVar := make(map[int]float64)
		for child, k := range rn.edges {
			perVar[nodes[child].varID] += k * tuples(child)
		}
		total := 1.0
		for _, cv := range requiredChildren[rn.varID] {
			if perVar[cv] == 0 {
				memo[id] = 0
				return 0
			}
		}
		for cv, sum := range perVar {
			if optionalVar[cv] && sum < 1 {
				sum = 1
			}
			total *= sum
		}
		memo[id] = total
		return total
	}
	return tuples(index[[2]int{s.Root, 0}])
}

// estimator carries embedding enumeration state.
type estimator struct {
	s          *Sketch
	opts       EstOptions
	reachCache map[string][]bool
}

// reaches reports whether a node labeled label is reachable from id
// (including id itself); cached per label.
func (e *estimator) reaches(id int, label string) bool {
	reach, ok := e.reachCache[label]
	if !ok {
		reach = make([]bool, len(e.s.Nodes))
		for _, u := range e.s.Nodes {
			if u != nil && u.Label == label {
				reach[u.ID] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, u := range e.s.Nodes {
				if u == nil || reach[u.ID] {
					continue
				}
				for _, ed := range u.Edges {
					if reach[ed.Child] {
						reach[u.ID] = true
						changed = true
						break
					}
				}
			}
		}
		if e.reachCache == nil {
			e.reachCache = make(map[string][]bool)
		}
		e.reachCache[label] = reach
	}
	return reach[id]
}

type xemb struct {
	nodes   []int
	stepAts [][]int
}

// embeddings enumerates mappings of the steps into the (possibly cyclic)
// synopsis graph: Child steps follow one matching edge; Descendant steps
// follow any path of at most MaxHops edges ending at a matching label.
// Mappings sharing a node path merge into one embedding with several step
// assignments (set semantics; see internal/eval for the rationale).
func (e *estimator) embeddings(from int, steps []query.Step) []xemb {
	var out []xemb
	byPath := make(map[string]int)
	budget := e.opts.MaxEmbeddings
	work := 64 * e.opts.MaxEmbeddings
	var nodes []int
	var stepAt []int

	var rec func(cur, si int)
	var desc func(cur, si, hops int)
	emit := func() {
		key := pathKey(nodes)
		if i, ok := byPath[key]; ok {
			out[i].stepAts = append(out[i].stepAts, append([]int(nil), stepAt...))
			return
		}
		byPath[key] = len(out)
		out = append(out, xemb{
			nodes:   append([]int(nil), nodes...),
			stepAts: [][]int{append([]int(nil), stepAt...)},
		})
	}
	rec = func(cur, si int) {
		if budget <= 0 || work <= 0 {
			return
		}
		if si == len(steps) {
			budget--
			emit()
			return
		}
		step := &steps[si]
		if step.Axis == query.Child {
			for _, ed := range e.s.Nodes[cur].Edges {
				if e.s.Nodes[ed.Child].Label != step.Label {
					continue
				}
				work--
				nodes = append(nodes, ed.Child)
				stepAt = append(stepAt, len(nodes)-1)
				rec(ed.Child, si+1)
				nodes = nodes[:len(nodes)-1]
				stepAt = stepAt[:len(stepAt)-1]
			}
			return
		}
		desc(cur, si, 0)
	}
	desc = func(cur, si, hops int) {
		if budget <= 0 || hops >= e.opts.MaxHops {
			return
		}
		step := &steps[si]
		for _, ed := range e.s.Nodes[cur].Edges {
			if work <= 0 {
				return
			}
			if !e.reaches(ed.Child, step.Label) {
				continue
			}
			work--
			nodes = append(nodes, ed.Child)
			if e.s.Nodes[ed.Child].Label == step.Label {
				stepAt = append(stepAt, len(nodes)-1)
				rec(ed.Child, si+1)
				stepAt = stepAt[:len(stepAt)-1]
			}
			desc(ed.Child, si, hops+1)
			nodes = nodes[:len(nodes)-1]
		}
	}
	rec(from, 0)
	return out
}

// evalEmbed multiplies expected edge counts along the embedding and scales
// by branch-predicate selectivities; the best step assignment wins.
func (e *estimator) evalEmbed(steps []query.Step, from int, emb xemb) float64 {
	nt := 1.0
	prev := from
	for _, nid := range emb.nodes {
		i := e.s.Nodes[prev].EdgeTo(nid)
		if i < 0 {
			return 0
		}
		nt *= e.s.Nodes[prev].Edges[i].Avg
		prev = nid
	}
	havePreds := false
	for si := range steps {
		if len(steps[si].Preds) > 0 {
			havePreds = true
			break
		}
	}
	if !havePreds {
		return nt
	}
	best := 0.0
	for _, stepAt := range emb.stepAts {
		sel := 1.0
		for si := range steps {
			at := emb.nodes[stepAt[si]]
			for _, pred := range steps[si].Preds {
				sel *= e.branchSel(at, pred)
				if sel == 0 {
					break
				}
			}
			if sel == 0 {
				break
			}
		}
		if sel > best {
			best = sel
		}
	}
	return nt * best
}

// pathKey renders a node-ID sequence as a map key.
func pathKey(nodes []int) string {
	buf := make([]byte, 0, len(nodes)*3)
	for _, n := range nodes {
		for n >= 0x80 {
			buf = append(buf, byte(n)|0x80)
			n >>= 7
		}
		buf = append(buf, byte(n))
	}
	return string(buf)
}

// branchSel estimates the fraction of elements of the source partition
// with at least one descendant along pred: per embedding the probability
// is the product of per-edge P(count >= 1); embeddings combine by
// inclusion-exclusion under independence.
func (e *estimator) branchSel(from int, pred *query.Path) float64 {
	embs := e.embeddings(from, pred.Steps)
	if len(embs) == 0 {
		return 0
	}
	prod := 1.0
	for _, emb := range embs {
		p := 1.0
		prev := from
		for _, nid := range emb.nodes {
			i := e.s.Nodes[prev].EdgeTo(nid)
			if i < 0 {
				p = 0
				break
			}
			p *= e.s.Nodes[prev].Edges[i].PGe1
			prev = nid
		}
		// Nested predicates scale the per-embedding probability; the best
		// step assignment wins.
		if p > 0 {
			bestSub := 0.0
			for _, stepAt := range emb.stepAts {
				sub := 1.0
				for si := range pred.Steps {
					at := emb.nodes[stepAt[si]]
					for _, nested := range pred.Steps[si].Preds {
						sub *= e.branchSel(at, nested)
					}
				}
				if sub > bestSub {
					bestSub = sub
				}
			}
			p *= bestSub
		}
		if p > 1 {
			p = 1
		}
		prod *= 1 - p
	}
	return 1 - prod
}
