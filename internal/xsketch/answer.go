package xsketch

import (
	"math/rand"

	"treesketch/internal/esd"
	"treesketch/internal/query"
	"treesketch/internal/xmltree"
)

// AnswerOptions configures sampled approximate answers.
type AnswerOptions struct {
	// Seed drives the sampling.
	Seed int64
	// MaxNodes caps the materialized answer (default 100000); hitting the
	// cap truncates the answer.
	MaxNodes int
	// MaxEmbeddings / MaxHops bound path exploration, as in EstOptions.
	MaxEmbeddings int
	MaxHops       int
}

func (o AnswerOptions) withDefaults() AnswerOptions {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 100000
	}
	if o.MaxEmbeddings <= 0 {
		o.MaxEmbeddings = 2000
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 12
	}
	return o
}

// Answer is a sampled approximate answer: an approximate nesting tree with
// variable-tagged labels ("q1:author"), directly comparable via the ESD
// metric against ExactResult.ESDGraph.
type Answer struct {
	Tree      *xmltree.Tree
	Empty     bool
	Truncated bool
}

// ESDGraph hash-conses the sampled answer into the metric's DAG form.
func (a *Answer) ESDGraph() *esd.Node {
	if a.Empty || a.Tree == nil || a.Tree.Root == nil {
		return nil
	}
	return esd.FromTree(a.Tree, nil)
}

// ApproxAnswer generates an approximate tree-structured answer from the
// twig-XSketch by sampling descendant counts from the edge histograms: the
// algorithm the paper implemented on top of twig-XSketches for the
// comparison in Section 6. The answer traverses the query tree; for every
// element placed in the result it samples, per path embedding, how many
// descendants that element has, using the recorded joint distributions.
func (s *Sketch) ApproxAnswer(q *query.Query, opts AnswerOptions) *Answer {
	opts = opts.withDefaults()
	a := &answerer{
		s:    s,
		est:  &estimator{s: s, opts: EstOptions{MaxEmbeddings: opts.MaxEmbeddings, MaxHops: opts.MaxHops}},
		rng:  rand.New(rand.NewSource(opts.Seed)),
		opts: opts,
		t:    xmltree.NewTree(),
	}
	qnodes := q.Vars()
	a.qidx = make(map[*query.Node]int, len(qnodes))
	for i, qn := range qnodes {
		a.qidx[qn] = i
	}
	a.qnodes = qnodes

	root := a.t.NewNode(qnodes[0].Var + ":" + s.Nodes[s.Root].Label)
	a.t.Root = root
	ok := a.fill(root, s.Root, 0)
	if !ok {
		return &Answer{Empty: true, Truncated: a.truncated}
	}
	return &Answer{Tree: a.t, Truncated: a.truncated}
}

type answerer struct {
	s         *Sketch
	est       *estimator
	rng       *rand.Rand
	opts      AnswerOptions
	t         *xmltree.Tree
	qnodes    []*query.Node
	qidx      map[*query.Node]int
	truncated bool
}

// fill attaches sampled bindings for every child edge of query variable qi
// under the result element n (bound to synopsis node src). It returns
// false when a required edge sampled no bindings.
func (a *answerer) fill(n *xmltree.Node, src, qi int) bool {
	for _, edge := range a.qnodes[qi].Edges {
		ci := a.qidx[edge.Child]
		placed := 0
		for _, emb := range a.est.embeddings(src, edge.Path.Steps) {
			count := a.sampleAlong(src, edge.Path.Steps, emb)
			term := emb.nodes[len(emb.nodes)-1]
			for i := 0; i < count; i++ {
				if a.t.Size() >= a.opts.MaxNodes {
					a.truncated = true
					break
				}
				c := a.t.NewNode(a.qnodes[ci].Var + ":" + a.s.Nodes[term].Label)
				n.Children = append(n.Children, c)
				if !a.fill(c, term, ci) {
					// The sampled element fails a required sub-edge; drop it.
					n.Children = n.Children[:len(n.Children)-1]
					continue
				}
				placed++
			}
		}
		if placed == 0 && !edge.Optional {
			return false
		}
	}
	return true
}

// sampleAlong samples how many descendants one element at src has along
// the embedding: a branching-process walk where each hop samples a child
// count from the source node's histogram, and each step's predicates gate
// the element by a Bernoulli draw of the branch selectivity.
func (a *answerer) sampleAlong(src int, steps []query.Step, emb xemb) int {
	cur := 1
	prev := src
	for hop, nid := range emb.nodes {
		next := 0
		for i := 0; i < cur; i++ {
			next += a.sampleCount(prev, nid)
			if next > a.opts.MaxNodes {
				a.truncated = true
				next = a.opts.MaxNodes
				break
			}
		}
		cur = next
		if cur == 0 {
			return 0
		}
		// Predicates anchored at a step landing on this hop gate each
		// element independently (first step assignment).
		for si := range steps {
			if emb.stepAts[0][si] != hop {
				continue
			}
			for _, pred := range steps[si].Preds {
				sel := a.est.branchSel(nid, pred)
				kept := 0
				for i := 0; i < cur; i++ {
					if a.rng.Float64() < sel {
						kept++
					}
				}
				cur = kept
			}
			if cur == 0 {
				return 0
			}
		}
		prev = nid
	}
	return cur
}

// sampleCount draws a child count along edge src -> child from the source
// node's histogram: exact buckets by frequency, the rest bucket via
// probabilistic rounding of its average.
func (a *answerer) sampleCount(src, child int) int {
	u := a.s.Nodes[src]
	ei := u.EdgeTo(child)
	if ei < 0 {
		return 0
	}
	// Locate the histogram dimension: Edges and histogram dims share order
	// only when every dim has a positive average, so recompute the dim
	// index by counting positive-avg dims before ei. Histogram vectors are
	// indexed over all dims; Edges skip zero-avg dims, which cannot occur
	// for an existing edge. The dim order equals the sorted target order
	// used by rebuildNode, which matches Edges order.
	dim := ei
	r := a.rng.Float64()
	acc := 0.0
	for _, b := range u.Hist.Buckets {
		acc += b.Frac
		if r < acc {
			if dim < len(b.Vec) {
				return b.Vec[dim]
			}
			return 0
		}
	}
	if u.Hist.RestFrac > 0 && dim < len(u.Hist.RestVec) {
		avg := u.Hist.RestVec[dim]
		base := int(avg)
		if a.rng.Float64() < avg-float64(base) {
			base++
		}
		return base
	}
	return 0
}
