package esd

import (
	"testing"

	"treesketch/internal/xmltree"
)

func TestConsolidateMergesIsomorphicNodes(t *testing.T) {
	// Build a deliberately redundant DAG: two distinct leaf nodes with the
	// same label, referenced by a root.
	b1 := &Node{Label: "b"}
	b2 := &Node{Label: "b"}
	root := &Node{Label: "r", Edges: []Edge{{b1, 1}, {b2, 2}}}
	out := Consolidate(root)
	if len(out.Edges) != 1 {
		t.Fatalf("root edges = %d, want 1 (duplicates merged)", len(out.Edges))
	}
	if out.Edges[0].Mult != 3 {
		t.Fatalf("mult = %g, want 3", out.Edges[0].Mult)
	}
}

func TestConsolidateDistinguishesDifferentStructure(t *testing.T) {
	b1 := &Node{Label: "b", Edges: []Edge{{&Node{Label: "c"}, 1}}}
	b2 := &Node{Label: "b"} // no children: different class
	root := &Node{Label: "r", Edges: []Edge{{b1, 1}, {b2, 1}}}
	out := Consolidate(root)
	if len(out.Edges) != 2 {
		t.Fatalf("root edges = %d, want 2 (different structures kept apart)", len(out.Edges))
	}
}

func TestConsolidatePreservesDistanceZero(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b,b),a(b,b),a(b))")
	g := FromTree(tr, nil)
	c := Consolidate(g)
	if d := Distance(g, c); d != 0 {
		t.Fatalf("consolidation changed the represented tree: distance %g", d)
	}
	if Size(c) != Size(g) {
		t.Fatalf("sizes differ: %g vs %g", Size(c), Size(g))
	}
}

func TestConsolidateNil(t *testing.T) {
	if Consolidate(nil) != nil {
		t.Fatal("Consolidate(nil) != nil")
	}
}

func TestConsolidateFractionalMults(t *testing.T) {
	b := &Node{Label: "b"}
	root := &Node{Label: "r", Edges: []Edge{{b, 0.5}, {b, 0.25}}}
	out := Consolidate(root)
	if len(out.Edges) != 1 || out.Edges[0].Mult != 0.75 {
		t.Fatalf("edges = %+v, want single mult 0.75", out.Edges)
	}
}

func TestConsolidateIdempotent(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b(c),b(c)),a(b(c)))")
	g := Consolidate(FromTree(tr, nil))
	g2 := Consolidate(g)
	if d := Distance(g, g2); d != 0 {
		t.Fatalf("second consolidation changed distance: %g", d)
	}
	count := func(n *Node) int {
		seen := map[*Node]bool{}
		var rec func(*Node)
		rec = func(x *Node) {
			if seen[x] {
				return
			}
			seen[x] = true
			for _, e := range x.Edges {
				rec(e.Child)
			}
		}
		rec(n)
		return len(seen)
	}
	if count(g) != count(g2) {
		t.Fatalf("node counts differ: %d vs %d", count(g), count(g2))
	}
}
