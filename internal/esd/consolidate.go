package esd

import (
	"fmt"
	"sort"
	"strings"
)

// Consolidate hash-conses an existing DAG bottom-up: nodes with the same
// label and the same multiset of (consolidated child, multiplicity) edges
// are merged, and duplicate edges to the same child are combined by summing
// multiplicities. This is the on-the-fly "stable summary" step the paper
// prescribes before evaluating the metric (end of Section 5); it shrinks
// the pairwise comparisons setDist performs inside large same-tag groups.
func Consolidate(root *Node) *Node {
	if root == nil {
		return nil
	}
	c := &consolidator{
		classes: make(map[string]*Node),
		done:    make(map[*Node]*Node),
		ids:     make(map[*Node]int),
	}
	return c.walk(root)
}

type consolidator struct {
	classes map[string]*Node
	done    map[*Node]*Node
	ids     map[*Node]int
}

func (c *consolidator) id(n *Node) int {
	id, ok := c.ids[n]
	if !ok {
		id = len(c.ids)
		c.ids[n] = id
	}
	return id
}

func (c *consolidator) walk(n *Node) *Node {
	if out, ok := c.done[n]; ok {
		return out
	}
	// Mark in progress to guard against (unexpected) cycles.
	c.done[n] = n

	mults := make(map[*Node]float64)
	order := make([]*Node, 0, len(n.Edges))
	for _, e := range n.Edges {
		ch := c.walk(e.Child)
		if _, seen := mults[ch]; !seen {
			order = append(order, ch)
		}
		mults[ch] += e.Mult
	}
	sort.Slice(order, func(i, j int) bool { return c.id(order[i]) < c.id(order[j]) })

	var key strings.Builder
	key.WriteString(n.Label)
	for _, ch := range order {
		fmt.Fprintf(&key, "|%d*%g", c.id(ch), mults[ch])
	}
	out, ok := c.classes[key.String()]
	if !ok {
		out = &Node{Label: n.Label}
		for _, ch := range order {
			out.Edges = append(out.Edges, Edge{Child: ch, Mult: mults[ch]})
		}
		c.classes[key.String()] = out
		c.id(out)
	}
	c.done[n] = out
	return out
}
