package esd

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"treesketch/internal/xmltree"
)

func leaf(label string) *Node { return &Node{Label: label} }

func withKids(label string, kids ...Edge) *Node { return &Node{Label: label, Edges: kids} }

func TestSizeSimple(t *testing.T) {
	// r with 2 a's, each with 3 b's: 1 + 2*(1 + 3*1) = 9.
	b := leaf("b")
	a := withKids("a", Edge{b, 3})
	r := withKids("r", Edge{a, 2})
	if got := Size(r); got != 9 {
		t.Fatalf("Size = %g, want 9", got)
	}
}

func TestSizeFractional(t *testing.T) {
	b := leaf("b")
	a := withKids("a", Edge{b, 0.5})
	if got := Size(a); got != 1.5 {
		t.Fatalf("Size = %g, want 1.5", got)
	}
}

func TestDistanceIdentity(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b,b),a(b))")
	n := FromTree(tr, nil)
	if d := Distance(n, n); d != 0 {
		t.Fatalf("Distance(x,x) = %g", d)
	}
	m := FromTree(xmltree.MustCompact("r(a(b),a(b,b))"), nil)
	if d := Distance(n, m); d != 0 {
		t.Fatalf("Distance between isomorphic trees = %g", d)
	}
}

func TestDistanceToEmpty(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b,b),c)")
	n := FromTree(tr, nil)
	if d := Distance(nil, n); d != float64(tr.Size()) {
		t.Fatalf("Distance(nil, n) = %g, want %d", d, tr.Size())
	}
	if d := Distance(n, nil); d != float64(tr.Size()) {
		t.Fatalf("Distance(n, nil) = %g, want %d", d, tr.Size())
	}
	if d := Distance(nil, nil); d != 0 {
		t.Fatalf("Distance(nil,nil) = %g", d)
	}
}

func TestDistanceLabelMismatch(t *testing.T) {
	a := FromTree(xmltree.MustCompact("a(x)"), nil)
	b := FromTree(xmltree.MustCompact("b(x,y)"), nil)
	if d := Distance(a, b); d != 2+3 {
		t.Fatalf("Distance across labels = %g, want sizes sum 5", d)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	x := FromTree(xmltree.MustCompact("r(a(b,b,c),a(c))"), nil)
	y := FromTree(xmltree.MustCompact("r(a(b,c,c),a(b),d)"), nil)
	if dxy, dyx := Distance(x, y), Distance(y, x); math.Abs(dxy-dyx) > 1e-9 {
		t.Fatalf("asymmetric: %g vs %g", dxy, dyx)
	}
}

func TestFigure10Ordering(t *testing.T) {
	// The paper's Figure 10: T has a(4 Sc, 1 Sd) and a(1 Sc, 4 Sd);
	// T1 decorrelates the counts (1,1) and (4,4); T2 scales them
	// proportionally (6,2) and (2,6). Tree-edit distance rates T1 and T2
	// equally; ESD must rate T2 strictly closer to T.
	// Sc = c(u,u) with |Sc| = 3; Sd = d(w) with |Sd| = 2.
	sc := func(n int) string { return "c*" + itoa(n) + "(u,u)" }
	sd := func(n int) string { return "d*" + itoa(n) + "(w)" }
	mk := func(c1, d1, c2, d2 int) *Node {
		var b strings.Builder
		b.WriteString("r(a(" + sc(c1) + "," + sd(d1) + "),a(" + sc(c2) + "," + sd(d2) + "))")
		return FromTree(xmltree.MustCompact(b.String()), nil)
	}
	tTrue := mk(4, 1, 1, 4)
	t1 := mk(1, 1, 4, 4)
	t2 := mk(6, 2, 2, 6)
	d1 := Distance(tTrue, t1)
	d2 := Distance(tTrue, t2)
	if !(d2 < d1) {
		t.Fatalf("ESD(T,T2)=%g should be < ESD(T,T1)=%g", d2, d1)
	}
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("distances must be positive: %g, %g", d1, d2)
	}
}

func itoa(v int) string {
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(digits[v%10]) + out
		v /= 10
	}
	return out
}

func TestLinearMetricCannotDistinguishFigure10(t *testing.T) {
	// The ablation behind Section 5's argument: with a linear
	// (transport-style) penalty — tree-edit distance's behavior — the
	// decorrelated answer T1 scores no worse than the proportionally
	// scaled answer T2 (under min-cost matching it even scores better),
	// while the MAC-style superlinear penalty correctly prefers T2
	// (TestFigure10Ordering).
	sc := func(n int) string { return "c*" + itoa(n) + "(u,u)" }
	sd := func(n int) string { return "d*" + itoa(n) + "(w)" }
	mk := func(c1, d1, c2, d2 int) *Node {
		return FromTree(xmltree.MustCompact("r(a("+sc(c1)+","+sd(d1)+"),a("+sc(c2)+","+sd(d2)+"))"), nil)
	}
	tTrue := mk(4, 1, 1, 4)
	t1 := mk(1, 1, 4, 4)
	t2 := mk(6, 2, 2, 6)
	d1 := DistanceWith(tTrue, t1, Linear)
	d2 := DistanceWith(tTrue, t2, Linear)
	if d2 < d1 {
		t.Fatalf("linear metric unexpectedly prefers T2: %g vs %g", d2, d1)
	}
}

func TestLinearMetricStillAMetricish(t *testing.T) {
	a := FromTree(xmltree.MustCompact("r(a(b,b),c)"), nil)
	b := FromTree(xmltree.MustCompact("r(a(b),c,c)"), nil)
	if d := DistanceWith(a, a, Linear); d != 0 {
		t.Fatalf("identity: %g", d)
	}
	dab := DistanceWith(a, b, Linear)
	dba := DistanceWith(b, a, Linear)
	if dab <= 0 || math.Abs(dab-dba) > 1e-9 {
		t.Fatalf("linear distance %g / %g", dab, dba)
	}
	// Linear never exceeds MAC-style.
	if mac := Distance(a, b); dab > mac+1e-9 {
		t.Fatalf("linear %g > mac %g", dab, mac)
	}
}

func TestMultiplicityPenaltySuperlinear(t *testing.T) {
	// 4 vs 1 copies of the same subtree should cost more than twice
	// (4 vs 3 copies), not linearly.
	base := func(n int) *Node {
		return FromTree(xmltree.MustCompact("r(a*"+itoa(n)+"(x))"), nil)
	}
	d41 := Distance(base(4), base(1))
	d43 := Distance(base(4), base(3))
	if !(d41 > 2*d43) {
		t.Fatalf("penalty not superlinear: d(4,1)=%g, d(4,3)=%g", d41, d43)
	}
}

func TestFractionalMultiplicities(t *testing.T) {
	// An approximate answer with avg 1.5 children must sit strictly
	// between answers with 1 and with 2 children.
	b := leaf("b")
	exact2 := withKids("r", Edge{b, 2})
	approx := withKids("r", Edge{b, 1.5})
	exact1 := withKids("r", Edge{b, 1})
	dApprox := Distance(exact2, approx)
	dWrong := Distance(exact2, exact1)
	if !(dApprox < dWrong) {
		t.Fatalf("fractional approx %g should beat integer-off-by-one %g", dApprox, dWrong)
	}
	if dApprox <= 0 {
		t.Fatalf("approx distance = %g, want > 0", dApprox)
	}
}

func TestVarAwareLabels(t *testing.T) {
	// Same tags bound to different query variables must not match when the
	// caller tags labels with variables.
	tr := xmltree.MustCompact("r(a,a)")
	i := 0
	byVar := FromTree(tr, func(n *xmltree.Node) string {
		if n.Label == "a" {
			i++
			return "q" + itoa(i) + ":a"
		}
		return n.Label
	})
	plain := FromTree(tr, nil)
	if d := Distance(byVar, plain); d == 0 {
		t.Fatal("var-tagged labels compared equal to plain labels")
	}
}

func TestFromTreeSharesIdenticalSubtrees(t *testing.T) {
	tr := xmltree.MustCompact("r(a(b,b),a(b,b),a(b))")
	n := FromTree(tr, nil)
	if len(n.Edges) != 2 {
		t.Fatalf("root has %d distinct child classes, want 2", len(n.Edges))
	}
	var m2, m1 bool
	for _, e := range n.Edges {
		switch e.Mult {
		case 2:
			m2 = true
		case 1:
			m1 = true
		}
	}
	if !m2 || !m1 {
		t.Fatalf("root edges = %+v, want mults {2,1}", n.Edges)
	}
}

func TestDistanceReflectsStructuralDivergence(t *testing.T) {
	// Progressively more divergent answers must score progressively larger
	// distances.
	truth := FromTree(xmltree.MustCompact("r(a(b,b,c),a(b,c))"), nil)
	close1 := FromTree(xmltree.MustCompact("r(a(b,b,c),a(b))"), nil)
	far := FromTree(xmltree.MustCompact("r(a(c,c,c),d)"), nil)
	d1 := Distance(truth, close1)
	d2 := Distance(truth, far)
	if !(0 < d1 && d1 < d2) {
		t.Fatalf("want 0 < %g < %g", d1, d2)
	}
}

func randomTree(seed uint64) *xmltree.Tree {
	tr := xmltree.NewTree()
	rng := seed
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	labels := []string{"a", "b", "c"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := tr.NewNode(labels[next(3)])
		if depth < 4 {
			for i := uint64(0); i < next(3); i++ {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	tr.Root = tr.NewNode("r")
	for i := uint64(0); i <= next(3); i++ {
		tr.Root.Children = append(tr.Root.Children, build(1))
	}
	return tr
}

func TestPropMetricBasics(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := FromTree(randomTree(s1), nil)
		b := FromTree(randomTree(s2), nil)
		dab := Distance(a, b)
		dba := Distance(b, a)
		if dab < 0 {
			return false
		}
		if math.Abs(dab-dba) > 1e-9*(1+dab) {
			return false
		}
		if Distance(a, a) != 0 || Distance(b, b) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDistanceBoundedBySizes(t *testing.T) {
	// Matching is at least as good as throwing both trees away, and the
	// penalty is superlinear only in per-class multiplicity, which for
	// hash-consed trees is bounded by the class count. A loose but useful
	// sanity bound: distance between trees with the same root label never
	// exceeds (|T1| + |T2|)^2.
	f := func(s1, s2 uint64) bool {
		t1, t2 := randomTree(s1), randomTree(s2)
		d := Distance(FromTree(t1, nil), FromTree(t2, nil))
		bound := float64(t1.Size()+t2.Size()) * float64(t1.Size()+t2.Size())
		return d <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
