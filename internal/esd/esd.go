// Package esd implements the Element Simulation Distance (Section 5 of the
// paper): a distance metric between XML trees that, unlike tree-edit
// distance, captures approximate similarity — it compares both the overall
// path structure and the distribution of document edges.
//
// ESD(u, v) between two same-label elements is the sum, over child tags t,
// of a multiset distance distS(Ut, Vt) between the children of u and v with
// tag t, where the ground distance between child elements is ESD applied
// recursively. Following the paper's closing remark of Section 5, the
// metric is evaluated on summary DAGs (count-stable-style hash-consed
// graphs) rather than raw trees, with memoization on node pairs; this also
// lets the approximate result synopsis, whose edge multiplicities are
// fractional averages, enter the computation directly.
//
// The set distance is a MAC-style metric (the paper used "a slightly
// revised version of MAC", obtained privately): matched mass pays the
// recursive ESD of the matched pair (greedy min-cost matching), while
// unmatched multiplicity m of an element of subtree size s pays
// s * m * max(1, m) — a superlinear penalty for multiplicity mismatch.
// This preserves the property motivating ESD in the paper's Figure 10: a
// proportionally scaled answer (T2) is closer to the truth than a
// decorrelated one (T1), which tree-edit distance cannot distinguish.
package esd

import (
	"fmt"
	"sort"
	"strings"

	"treesketch/internal/xmltree"
)

// Node is an element class in the summary DAG form consumed by the metric.
type Node struct {
	// Label is the compared tag. Callers performing query-variable-aware
	// comparison (Section 6.1) encode the variable into the label.
	Label string
	// Edges lead to child classes with (possibly fractional) per-element
	// multiplicities.
	Edges []Edge

	size     float64
	sizeDone bool
}

// Edge is a child-class reference with a per-element multiplicity.
type Edge struct {
	Child *Node
	Mult  float64
}

// mass is one side's child class with its remaining multiplicity.
type mass struct {
	node *Node
	mult float64
}

// Size returns the expected subtree size of one element of the class:
// 1 + sum of Mult * Size(child). Nodes must form a DAG.
func Size(n *Node) float64 {
	if n.sizeDone {
		return n.size
	}
	s := 1.0
	for _, e := range n.Edges {
		s += e.Mult * Size(e.Child)
	}
	n.size = s
	n.sizeDone = true
	return s
}

// Metric selects the unmatched-multiplicity penalty of the set distance.
type Metric int

const (
	// MACStyle (the default) charges unmatched multiplicity m of subtree
	// size s as s*m*max(1,m): superlinear, like the MAC metric the paper
	// uses, so that multiplicity mismatch is penalized heavily.
	MACStyle Metric = iota
	// Linear charges s*m — the transport-style penalty equivalent to
	// tree-edit distance's behavior on the paper's Figure 10, where it
	// fails to distinguish a proportionally scaled answer from a
	// decorrelated one. Provided for ablation.
	Linear
)

// Distance computes the ESD between the elements represented by a and b
// under the default MAC-style metric. Nil arguments denote an empty tree:
// the distance to an empty tree is the size of the other side.
func Distance(a, b *Node) float64 {
	return DistanceWith(a, b, MACStyle)
}

// DistanceWith computes the ESD under the chosen penalty metric.
func DistanceWith(a, b *Node, m Metric) float64 {
	c := &calc{memo: make(map[pairKey]float64), metric: m}
	return c.dist(a, b)
}

type pairKey struct{ a, b *Node }

type calc struct {
	memo   map[pairKey]float64
	metric Metric
}

func (c *calc) dist(a, b *Node) float64 {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return Size(b)
	case b == nil:
		return Size(a)
	}
	if a == b {
		return 0
	}
	if a.Label != b.Label {
		// Completely dissimilar elements: as if each was inserted whole.
		return Size(a) + Size(b)
	}
	k := pairKey{a, b}
	if d, ok := c.memo[k]; ok {
		return d
	}
	// Defensive cycle break (inputs are DAGs): a self-referential
	// comparison contributes zero while the outer computation completes.
	c.memo[k] = 0

	// Group both sides' children by tag.
	groups := make(map[string]*[2][]mass)
	for _, e := range a.Edges {
		g := groups[e.Child.Label]
		if g == nil {
			g = &[2][]mass{}
			groups[e.Child.Label] = g
		}
		g[0] = append(g[0], mass{e.Child, e.Mult})
	}
	for _, e := range b.Edges {
		g := groups[e.Child.Label]
		if g == nil {
			g = &[2][]mass{}
			groups[e.Child.Label] = g
		}
		g[1] = append(g[1], mass{e.Child, e.Mult})
	}

	var total float64
	for _, g := range groups {
		total += c.setDist(g[0], g[1])
	}
	c.memo[k] = total
	return total
}

// setDist is the MAC-style multiset distance between two groups of child
// classes sharing a tag. Matched mass flows greedily along cheapest
// recursive distances; leftover mass m of an element with subtree size s
// costs s * m * max(1, m).
func (c *calc) setDist(us, vs []mass) float64 {
	remU := make([]float64, len(us))
	for i, m := range us {
		remU[i] = m.mult
	}
	remV := make([]float64, len(vs))
	for i, m := range vs {
		remV[i] = m.mult
	}

	type pair struct {
		i, j int
		d    float64
	}
	pairs := make([]pair, 0, len(us)*len(vs))
	for i := range us {
		for j := range vs {
			pairs = append(pairs, pair{i, j, c.dist(us[i].node, vs[j].node)})
		}
	}
	sort.Slice(pairs, func(x, y int) bool { return pairs[x].d < pairs[y].d })

	var cost float64
	for _, p := range pairs {
		if remU[p.i] <= 0 || remV[p.j] <= 0 {
			continue
		}
		f := remU[p.i]
		if remV[p.j] < f {
			f = remV[p.j]
		}
		cost += f * p.d
		remU[p.i] -= f
		remV[p.j] -= f
	}
	for i, m := range remU {
		if m > 1e-12 {
			cost += c.penalty(Size(us[i].node), m)
		}
	}
	for j, m := range remV {
		if m > 1e-12 {
			cost += c.penalty(Size(vs[j].node), m)
		}
	}
	return cost
}

// penalty charges unmatched multiplicity m of subtree size s. MACStyle is
// linear below one unit of mass and quadratic above (superlinear, per the
// MAC-style design); Linear is s*m throughout.
func (c *calc) penalty(s, m float64) float64 {
	f := m
	if c.metric == MACStyle && m > 1 {
		f = m * m
	}
	return s * f
}

// FromTree hash-conses a document tree into the DAG form: elements with
// identical label and identical (child class, multiplicity) signatures
// share a Node, exactly like the count-stable summary. labelOf maps a tree
// node to its compared label (pass nil to use the element tag). The
// returned node represents the root element; nil for an empty tree.
func FromTree(t *xmltree.Tree, labelOf func(*xmltree.Node) string) *Node {
	if t == nil || t.Root == nil {
		return nil
	}
	if labelOf == nil {
		labelOf = func(n *xmltree.Node) string { return n.Label }
	}
	classes := make(map[string]*Node)
	ids := make(map[*Node]int)
	classOf := make(map[int]*Node, t.Size())
	idOf := func(n *Node) int {
		id, ok := ids[n]
		if !ok {
			id = len(ids)
			ids[n] = id
		}
		return id
	}
	var keyBuf strings.Builder
	t.PostOrder(func(n *xmltree.Node) {
		counts := make(map[*Node]float64)
		order := make([]*Node, 0, len(n.Children))
		for _, ch := range n.Children {
			cl := classOf[ch.OID]
			if _, seen := counts[cl]; !seen {
				order = append(order, cl)
			}
			counts[cl]++
		}
		sort.Slice(order, func(i, j int) bool { return idOf(order[i]) < idOf(order[j]) })
		keyBuf.Reset()
		keyBuf.WriteString(labelOf(n))
		for _, cl := range order {
			fmt.Fprintf(&keyBuf, "|%d*%g", idOf(cl), counts[cl])
		}
		key := keyBuf.String()
		cl, ok := classes[key]
		if !ok {
			cl = &Node{Label: labelOf(n)}
			for _, ch := range order {
				cl.Edges = append(cl.Edges, Edge{Child: ch, Mult: counts[ch]})
			}
			classes[key] = cl
			idOf(cl)
		}
		classOf[n.OID] = cl
	})
	return classOf[t.Root.OID]
}
