package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// populated builds a registry with one metric of every kind, on a frozen
// clock for the windowed histogram.
func populated(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("serve.http.requests").Add(42)
	r.Gauge("serve.http.inflight").Set(3)
	r.Observe("serve.request.handle", 250*time.Millisecond)
	h := r.Histogram("eval.approx.nodes")
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	w := r.Windowed("serve.request.latency_seconds")
	for i := 0; i < 100; i++ {
		w.Observe(0.010)
	}
	w.Observe(0.080) // a tail outlier
	return r
}

func TestWriteOpenMetrics(t *testing.T) {
	var b strings.Builder
	if err := populated(t).WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition must end with # EOF, got tail %q", out[max(0, len(out)-40):])
	}
	for _, want := range []string{
		"# TYPE serve_http_requests counter\nserve_http_requests_total 42\n",
		"serve_http_inflight 3\n",
		"# TYPE serve_request_handle_seconds summary\n",
		"serve_request_handle_seconds_count 1\n",
		"# TYPE eval_approx_nodes histogram\n",
		"serve_request_latency_seconds_window_seconds 60\n",
		"# TYPE serve_request_latency_seconds_p50 gauge\n",
		"# TYPE serve_request_latency_seconds_p99 gauge\n",
		"# TYPE serve_request_latency_seconds_per_sec gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Histogram buckets must be cumulative and capped by the +Inf bucket.
	var lastCum int64 = -1
	infSeen := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "eval_approx_nodes_bucket") {
			continue
		}
		_, val, _ := strings.Cut(line, "} ")
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < lastCum {
			t.Errorf("bucket counts not cumulative: %q after %d", line, lastCum)
		}
		lastCum = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != 4 {
				t.Errorf("+Inf bucket = %d, want total count 4", n)
			}
		}
	}
	if !infSeen {
		t.Error("histogram family must include the +Inf bucket")
	}

	// The windowed rate is count over the window span.
	if !strings.Contains(out, "serve_request_latency_seconds_per_sec "+promFloat(101.0/60)) {
		t.Errorf("missing per_sec sample in:\n%s", out)
	}
}

func TestOpenMetricsWindowQuantiles(t *testing.T) {
	r := NewRegistry()
	w := r.Windowed("serve.request.latency_seconds")
	for i := 0; i < 99; i++ {
		w.Observe(0.010)
	}
	for i := 0; i < 99; i++ {
		w.Observe(1.5)
	}
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	p50 := sampleValue(t, b.String(), "serve_request_latency_seconds_p50")
	p99 := sampleValue(t, b.String(), "serve_request_latency_seconds_p99")
	if p50 >= 1 {
		t.Errorf("p50 = %v, want below the slow mode", p50)
	}
	if p99 < 1 || p99 > 2 {
		t.Errorf("p99 = %v, want within the slow mode", p99)
	}
}

// TestOpenMetricsColdWindow pins the cold-start scrape contract: a windowed
// histogram with zero observations must not leak NaN quantiles (strict
// OpenMetrics parsers reject "NaN" as a sample value). The _p50/_p99
// families are omitted entirely — absent metric, the Prometheus idiom for
// "no data yet" — while the structural families (window span, rate, the
// histogram itself) still expose.
func TestOpenMetricsColdWindow(t *testing.T) {
	r := NewRegistry()
	r.Windowed("serve.request.latency_seconds") // registered, never observed
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Every sample value must be a finite float; the "+Inf" inside the
	// histogram's le-label is the one legitimate appearance of Inf.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Errorf("unparseable sample value in %q: %v", line, err)
			continue
		}
		if v != v || v > 1e300 || v < -1e300 {
			t.Errorf("non-finite sample leaked: %q", line)
		}
	}
	for _, absent := range []string{
		"serve_request_latency_seconds_p50",
		"serve_request_latency_seconds_p99",
	} {
		if strings.Contains(out, absent) {
			t.Errorf("empty window must omit the %s family:\n%s", absent, out)
		}
	}
	for _, want := range []string{
		"serve_request_latency_seconds_window_seconds 60\n",
		"serve_request_latency_seconds_per_sec 0\n",
		"serve_request_latency_seconds_count 0\n",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cold scrape missing %q:\n%s", want, out)
		}
	}

	// One observation flips the quantile families back on.
	r.Windowed("serve.request.latency_seconds").Observe(0.010)
	b.Reset()
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE serve_request_latency_seconds_p50 gauge\n") {
		t.Errorf("warm window lost its p50 family:\n%s", b.String())
	}
}

// sampleValue extracts one unlabeled sample from an exposition.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample named %s in:\n%s", name, exposition)
	return 0
}

func TestDebugMuxEndpoints(t *testing.T) {
	r := populated(t)
	rec := NewFlightRecorder(4)
	tr := NewTrace("//slow/query")
	tr.StartSpan("eval.plan").End()
	tr.Finish()
	rec.Record(tr)
	mux := DebugMux(r, rec)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != 200 {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		return w
	}

	if w := get("/metrics"); w.Header().Get("Content-Type") != OpenMetricsContentType {
		t.Errorf("/metrics content type = %q", w.Header().Get("Content-Type"))
	} else if !strings.Contains(w.Body.String(), "serve_http_requests_total 42") {
		t.Error("/metrics missing counter sample")
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/obs").Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/obs not JSON: %v", err)
	}
	if snap.Counters["serve.http.requests"] != 42 {
		t.Errorf("/debug/obs counters = %v", snap.Counters)
	}
	if snap.Windows["serve.request.latency_seconds"].Count != 101 {
		t.Errorf("/debug/obs windows = %v", snap.Windows)
	}

	if body := get("/debug/obs/text").Body.String(); !strings.Contains(body, "serve.http.requests 42") {
		t.Errorf("/debug/obs/text missing flat sample:\n%s", body)
	}

	var traces []TraceSnapshot
	if err := json.Unmarshal(get("/debug/obs/slow").Body.Bytes(), &traces); err != nil {
		t.Fatalf("/debug/obs/slow not JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Name != "//slow/query" {
		t.Errorf("/debug/obs/slow = %+v", traces)
	}

	var errs []string
	if err := json.Unmarshal(get("/debug/obs/errors").Body.Bytes(), &errs); err != nil {
		t.Fatalf("/debug/obs/errors not JSON: %v", err)
	}
	if len(errs) != 0 {
		t.Errorf("clean registry reported errors: %v", errs)
	}

	if body := get("/debug/pprof/").Body.String(); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

// TestDebugMuxSlowDatasetFilter checks the per-tenant flight-recorder view:
// ?dataset= keeps only traces labeled with that dataset.
func TestDebugMuxSlowDatasetFilter(t *testing.T) {
	rec := NewFlightRecorder(8)
	for _, ds := range []string{"imdb", "xmark", "imdb"} {
		tr := NewTrace("//q/" + ds)
		tr.SetLabel("dataset", ds)
		tr.Finish()
		rec.Record(tr)
	}
	mux := DebugMux(NewRegistry(), rec)
	slow := func(path string) []TraceSnapshot {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		var traces []TraceSnapshot
		if err := json.Unmarshal(w.Body.Bytes(), &traces); err != nil {
			t.Fatalf("GET %s not JSON: %v", path, err)
		}
		return traces
	}
	if got := slow("/debug/obs/slow"); len(got) != 3 {
		t.Errorf("unfiltered slow log has %d traces, want 3", len(got))
	}
	imdb := slow("/debug/obs/slow?dataset=imdb")
	if len(imdb) != 2 {
		t.Fatalf("dataset=imdb kept %d traces, want 2", len(imdb))
	}
	for _, tr := range imdb {
		if tr.Labels["dataset"] != "imdb" {
			t.Errorf("filtered trace has labels %v", tr.Labels)
		}
	}
	if got := slow("/debug/obs/slow?dataset=nope"); len(got) != 0 {
		t.Errorf("dataset=nope kept %d traces, want 0", len(got))
	}
}

// TestDebugMuxNilRecorder pins the embedding contract: a mux without a
// flight recorder serves an empty JSON array, not null.
func TestDebugMuxNilRecorder(t *testing.T) {
	mux := DebugMux(NewRegistry(), nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/obs/slow", nil))
	if got := strings.TrimSpace(w.Body.String()); got != "[]" {
		t.Errorf("/debug/obs/slow with nil recorder = %q, want []", got)
	}
}
