package obs

import "time"

// QueueMetrics bundles the standard telemetry of one bounded queue: a depth
// gauge ("<base>.queue_depth") and a windowed wait-time histogram
// ("<base>.queue_wait_seconds"), so every queue in the system — the serving
// layer's admission queue today, compaction or fan-out queues tomorrow —
// exports the same two families and an operator can read any of them the
// same way: depth says how backed up the queue is right now, the windowed
// wait p99 says what the backlog cost recent requests.
//
// The instrument does not own the queue; the owner calls Enter when an
// element starts waiting and Exit with the measured wait when it stops
// (whether it was ultimately served or shed). Both operations are lock-free
// atomic updates, safe from any number of goroutines.
type QueueMetrics struct {
	// Depth is the current number of waiting elements.
	Depth *Gauge
	// Wait is the recent distribution of time spent waiting, in seconds.
	Wait *WindowedHistogram
}

// NewQueueMetrics registers the queue family under base (for example
// "serve.admission" yields "serve.admission.queue_depth" and
// "serve.admission.queue_wait_seconds") on r (nil means Default).
func NewQueueMetrics(r *Registry, base string) *QueueMetrics {
	r = Or(r)
	return &QueueMetrics{
		Depth: r.Gauge(base + ".queue_depth"),
		Wait:  r.Windowed(base + ".queue_wait_seconds"),
	}
}

// Enter records one element joining the queue.
func (q *QueueMetrics) Enter() { q.Depth.Add(1) }

// Exit records one element leaving the queue after waiting d.
func (q *QueueMetrics) Exit(d time.Duration) {
	q.Depth.Add(-1)
	q.Wait.Observe(d.Seconds())
}
